package repro_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its experiment end to end (cluster construction,
// seeding, workload) and reports the headline metric of that figure as
// a custom benchmark unit, so `go test -bench=.` reproduces the whole
// evaluation section.

import (
	"testing"

	"repro/internal/experiments"
)

func BenchmarkTable1Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(8)
		if !r.Fits() {
			b.Fatal("design does not fit")
		}
	}
	luts, _, _, _ := experiments.Table1(8).Totals()
	b.ReportMetric(float64(luts), "artix-LUTs")
}

func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(8)
		if !r.Fits() {
			b.Fatal("design does not fit")
		}
	}
	luts, _, _, _ := experiments.Table2(8).Totals()
	b.ReportMetric(float64(luts), "virtex-LUTs")
}

func BenchmarkTable3Power(b *testing.B) {
	var watts float64
	for i := 0; i < b.N; i++ {
		watts = experiments.Table3(2).Total()
	}
	b.ReportMetric(watts, "node-W")
}

func BenchmarkFig11NetworkHops(b *testing.B) {
	var gbps, latency float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig11(5)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		gbps = last.GbpsPerLane
		latency = last.LatencyUs / float64(last.Hops)
	}
	b.ReportMetric(gbps, "Gbps/lane")
	b.ReportMetric(latency, "us/hop")
}

func BenchmarkFig12RemoteLatency(b *testing.B) {
	var ispf, hrhf float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Path {
			case "ISP-F":
				ispf = r.TotalUs
			case "H-RH-F":
				hrhf = r.TotalUs
			}
		}
	}
	b.ReportMetric(ispf, "ISP-F-us")
	b.ReportMetric(hrhf, "H-RH-F-us")
}

func BenchmarkFig13Bandwidth(b *testing.B) {
	var local, three float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scenario {
			case "ISP-Local":
				local = r.GBps
			case "ISP-3Nodes":
				three = r.GBps
			}
		}
	}
	b.ReportMetric(local, "ISP-local-GBps")
	b.ReportMetric(three, "ISP-3nodes-GBps")
}

func BenchmarkFig16NearestNeighbor(b *testing.B) {
	var isp, dram16 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig16([]int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Series == "1 Node" && p.Threads == 4 {
				isp = p.KCmpSec
			}
			if p.Series == "DRAM" && p.Threads == 16 {
				dram16 = p.KCmpSec
			}
		}
	}
	b.ReportMetric(isp, "ISP-Kcmp/s")
	b.ReportMetric(dram16, "DRAM16-Kcmp/s")
}

func BenchmarkFig17MostlyDRAM(b *testing.B) {
	var flash10 float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig17([]int{8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Series == "10% Flash" {
				flash10 = p.KCmpSec
			}
		}
	}
	b.ReportMetric(flash10, "10pctFlash-Kcmp/s")
}

func BenchmarkFig18OffTheShelfSSD(b *testing.B) {
	var rnd, seq float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig18([]int{8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			switch p.Series {
			case "Full Flash":
				rnd = p.KCmpSec
			case "Seq Flash":
				seq = p.KCmpSec
			}
		}
	}
	b.ReportMetric(rnd, "random-Kcmp/s")
	b.ReportMetric(seq, "seq-Kcmp/s")
}

func BenchmarkFig19ISPAdvantage(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig19([]int{8})
		if err != nil {
			b.Fatal(err)
		}
		var isp, sw float64
		for _, p := range pts {
			switch p.Series {
			case "ISP":
				isp = p.KCmpSec
			case "BlueDBM+SW":
				sw = p.KCmpSec
			}
		}
		adv = isp / sw
	}
	b.ReportMetric(adv, "ISP-advantage-x")
}

func BenchmarkFig20GraphTraversal(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig20()
		if err != nil {
			b.Fatal(err)
		}
		var ispf, hrhf float64
		for _, r := range rows {
			switch r.Access {
			case "ISP-F":
				ispf = r.LookupsPerSec
			case "H-RH-F":
				hrhf = r.LookupsPerSec
			}
		}
		ratio = ispf / hrhf
	}
	b.ReportMetric(ratio, "ISPF-over-HRHF-x")
}

// BenchmarkMultiStreamSched goes beyond the paper: 64 concurrent
// QoS-classed streams through the internal/sched request scheduler,
// comparing batched doorbells against one-doorbell-per-request and
// depth-1 submission. Headline units: aggregate batched throughput,
// realtime p99, and the batched-over-depth1 speedup.
func BenchmarkMultiStreamSched(b *testing.B) {
	var cmp experiments.BatchComparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = experiments.MultiStreamBatchComparison(experiments.DefaultMultiStream(true))
		if err != nil {
			b.Fatal(err)
		}
	}
	var rtP99 float64
	for _, cs := range cmp.Batched.Sched.Classes {
		if cs.Class == "realtime" {
			rtP99 = cs.P99Us
		}
	}
	b.ReportMetric(cmp.Batched.Sched.TotalOpsPerSec/1e3, "batched-Kops/s")
	b.ReportMetric(rtP99, "rt-p99-us")
	b.ReportMetric(cmp.SpeedupVsDepth1, "vs-depth1-x")
}

func BenchmarkFig21StringSearch(b *testing.B) {
	var ispMBps, speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig21()
		if err != nil {
			b.Fatal(err)
		}
		var hdd float64
		for _, r := range rows {
			switch r.Method {
			case "Flash/ISP":
				ispMBps = r.MBps
			case "HDD/SW Grep":
				hdd = r.MBps
			}
		}
		speedup = ispMBps / hdd
	}
	b.ReportMetric(ispMBps, "ISP-MBps")
	b.ReportMetric(speedup, "vs-HDD-x")
}
