// Command simlint statically enforces the simulator's determinism and
// alloc-free invariants over this repository: order-dependent map
// iteration (maprange), wall-clock time and global math/rand
// (walltime), concurrency in the single-threaded core (noconcurrency),
// allocation sources in //simlint:hotpath functions (hotpath), and
// discarded errors (errdrop). See internal/lint for the analyzers and
// the //simlint:allow suppression grammar.
//
// Usage, from the module root:
//
//	go run ./cmd/simlint ./...
//
// Findings print one per line as file:line:col: check: message, and a
// non-empty finding set exits 1 — CI treats every finding class as a
// build break. The tool is self-contained on the standard library (no
// golang.org/x/tools vettool protocol): it loads, parses and
// type-checks the packages itself via the go toolchain.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	root := flag.String("C", ".", "module root directory to lint from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Lint(*root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
