// Command simlint statically enforces the simulator's determinism and
// alloc-free invariants over this repository: order-dependent map
// iteration (maprange), wall-clock time and global math/rand
// (walltime), concurrency in the single-threaded core (noconcurrency),
// allocation sources in //simlint:hotpath functions (hotpath) and in
// functions transitively reachable from them (hotcall), discarded
// errors (errdrop), pool get/put pairing (poolleak), and exactly-once
// completion callbacks (oncedone). See internal/lint for the analyzers
// and the //simlint:allow suppression grammar.
//
// Usage, from the module root:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -escapes ./...
//	go run ./cmd/simlint -json ./...
//
// The default mode runs the AST suite. -escapes instead compiles the
// packages with -gcflags=-m and cross-checks the compiler's escape
// analysis against the AST hotpath verdicts (the escapecheck
// analyzer): heap allocations in hotpath-reachable functions that the
// AST suite did not see. Both modes share one loaded snapshot per
// invocation.
//
// Findings print one per line as file:line:col: check: message (or as
// a JSON array with -json), and a non-empty finding set exits 1 — CI
// treats every finding class as a build break. The tool is
// self-contained on the standard library (no golang.org/x/tools
// vettool protocol): it loads, parses and type-checks the packages
// itself via the go toolchain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	root := flag.String("C", ".", "module root directory to lint from")
	escapes := flag.Bool("escapes", false, "cross-check compiler escape analysis (-gcflags=-m) against hotpath verdicts")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-C dir] [-escapes] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	snap, err := lint.LoadSnapshot(*root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	var diags []lint.Diagnostic
	if *escapes {
		diags, err = lint.Escapes(snap, patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	} else {
		diags = snap.Run(lint.Analyzers())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
