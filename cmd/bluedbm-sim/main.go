// Command bluedbm-sim boots a BlueDBM cluster, drives a mixed workload
// against it (local and remote reads through the in-store path, plus
// host-path traffic), and prints an operator dashboard of flash, ECC,
// network and host activity. It is the "kick the tires" tool for
// cluster configurations.
//
// Usage:
//
//	bluedbm-sim -nodes 8 -ops 2000 -topology ring -lanes 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster size")
	ops := flag.Int("ops", 2000, "operations to run")
	topoKind := flag.String("topology", "ring", "ring, line, mesh, full")
	lanes := flag.Int("lanes", 4, "parallel cables per edge (ring/line)")
	errRate := flag.Float64("biterr", 1e-7, "per-bit flash error rate")
	flag.Parse()

	p := core.DefaultParams(*nodes)
	p.Reliability.BitErrorRate = *errRate
	if *nodes > 1 {
		switch *topoKind {
		case "ring":
			p.Topology = fabric.Ring(*nodes, *lanes)
		case "line":
			p.Topology = fabric.Line(*nodes, *lanes)
		case "mesh":
			w := 1
			for w*w < *nodes {
				w++
			}
			if w*((*nodes+w-1)/w) != *nodes {
				fatal(fmt.Errorf("mesh needs a rectangular node count, got %d", *nodes))
			}
			p.Topology = fabric.Mesh2D(w, *nodes/w)
		case "full":
			p.Topology = fabric.FullMesh(*nodes)
		default:
			fatal(fmt.Errorf("unknown topology %q", *topoKind))
		}
		if err := p.Topology.Validate(p.Net.PortsPerNode); err != nil {
			fatal(err)
		}
	}
	c, err := core.NewCluster(p)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("booted %d nodes (%s), %d MB flash/node\n",
		*nodes, p.Topology.Name, p.NodeCapacity()>>20)

	// Seed a working set on every node.
	const seedPages = 64
	for n := 0; n < *nodes; n++ {
		if err := c.SeedLinear(n, seedPages, func(idx int, page []byte) {
			page[0] = byte(n)
			page[1] = byte(idx)
		}); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("seeded %d pages per node\n", seedPages)

	// Mixed workload: 70% ISP reads (local+remote), 30% host reads.
	rng := sim.NewRNG(123)
	errors := 0
	done := 0
	for i := 0; i < *ops; i++ {
		src := rng.Intn(*nodes)
		dst := rng.Intn(*nodes)
		a := core.LinearPage(p, dst, rng.Intn(seedPages))
		cb := func(d []byte, err error) {
			if err != nil {
				errors++
			} else if d[0] != byte(dst) {
				errors++
			}
			done++
		}
		if rng.Intn(10) < 7 {
			c.Node(src).ISPRead(a, cb)
		} else {
			c.Node(src).HostRead(a, core.PathHF, nil, cb)
		}
		if i%256 == 255 {
			c.Run()
		}
	}
	c.Run()
	fmt.Printf("ran %d operations (%d errors)\n\n", done, errors)

	fmt.Print(report.Snapshot(c).Format())
	if errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bluedbm-sim:", err)
	os.Exit(1)
}
