// Command bluedbm-fs demonstrates the BlueDBM software stack (paper
// §4): an RFS-style flash-aware file system mounted on a simulated
// node, with the physical-address query that feeds in-store
// processors. It boots a one-node appliance, runs a small file
// workload, and reports the file system and flash statistics —
// including the physical layout of each file, which is exactly what a
// host application would stream to an accelerator.
//
// Usage:
//
//	bluedbm-fs -files 4 -pages 64
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rfs"
	"repro/internal/workload"
)

func main() {
	files := flag.Int("files", 4, "number of files to create")
	pages := flag.Int("pages", 64, "pages per file")
	churn := flag.Int("churn", 2, "extra create/delete rounds to exercise the cleaner")
	flag.Parse()

	p := core.DefaultParams(1)
	c, err := core.NewCluster(p)
	if err != nil {
		fatal(err)
	}
	fs, err := rfs.New(c.Node(0).NewIface(0, "fs"), c.Params.Geometry, rfs.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mounted RFS on node 0 card 0: %d x %d-byte pages, %d segments free\n",
		p.Geometry.TotalPages(), p.Geometry.PageSize, fs.FreeSegments())

	gen := workload.TextPages(7, "bluedbm", 8)
	write := func(name string, pages int) *rfs.File {
		f, err := fs.Create(name)
		if err != nil {
			fatal(err)
		}
		buf := make([]byte, p.Geometry.PageSize)
		for i := 0; i < pages; i++ {
			gen(i, buf)
			var werr error
			f.AppendPage(buf, func(err error) { werr = err })
			c.Run()
			if werr != nil {
				fatal(fmt.Errorf("writing %s page %d: %w", name, i, werr))
			}
		}
		return f
	}

	for i := 0; i < *files; i++ {
		name := fmt.Sprintf("data-%02d.bin", i)
		f := write(name, *pages)
		addrs, err := f.PhysicalAddrs()
		if err != nil {
			fatal(err)
		}
		buses := map[int]int{}
		for _, a := range addrs {
			buses[a.Addr.Bus]++
		}
		fmt.Printf("  %s: %d pages, physical layout over %d buses (handle %d)\n",
			name, f.Pages(), len(buses), f.Handle())
	}

	for r := 0; r < *churn; r++ {
		f := write("churn.tmp", *pages)
		_ = f
		if err := fs.Remove("churn.tmp"); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("\nfiles: %v\n", fs.List())
	fmt.Printf("pages written: %d, cleaner moves: %d, segments cleaned: %d, free segments: %d\n",
		fs.PagesWritten, fs.CleanMoves, fs.SegsCleaned, fs.FreeSegments())
	fmt.Printf("simulated time elapsed: %v\n", c.Eng.Now())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bluedbm-fs:", err)
	os.Exit(1)
}
