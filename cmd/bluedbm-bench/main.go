// Command bluedbm-bench regenerates the paper's evaluation — every
// table and figure of "BlueDBM: An Appliance for Big Data Analytics"
// (ISCA 2015), printed in the paper's layout — plus the multi-stream
// scheduler benchmark that goes beyond the paper.
//
// Usage:
//
//	bluedbm-bench                  # run everything
//	bluedbm-bench -run fig13,fig20 # run a subset
//	bluedbm-bench -run sched -json sched.json -short
//	                               # scheduler smoke run, JSON metrics
//	bluedbm-bench -run gc -json BENCH_GC.json
//	                               # GC-aware vs GC-oblivious QoS comparison
//	bluedbm-bench -run isp -json BENCH_ISP.json
//	                               # distributed ISP-F vs host-mediated + QoS
//	bluedbm-bench -run fs -json BENCH_FS.json
//	                               # blockfs-on-FTL vs cluster RFS vs RFS + ISP file scans
//	bluedbm-bench -run apps -json BENCH_APPS.json
//	                               # distributed NN + migrating traversal vs host twins
//	bluedbm-bench -run fault -json BENCH_FAULT.json
//	                               # node-kill on a mirrored volume: degraded p99 + rebuild
//	bluedbm-bench -run engine -json BENCH_ENGINE.json
//	                               # event-engine speed: events/sec at 4/16/64 nodes
//	bluedbm-bench -run cache -json BENCH_CACHE.json
//	                               # host-DRAM cache tier: hit regimes, perf-per-watt, invalidation p99
//	bluedbm-bench -list            # list experiment ids
//
// Profiling the simulator itself (any experiment selection):
//
//	bluedbm-bench -run engine -cpuprofile cpu.pb.gz
//	bluedbm-bench -run engine -memprofile mem.pb.gz
//	bluedbm-bench -run engine -trace trace.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"

	"repro/internal/experiments"
)

type runner struct {
	id   string
	desc string
	// writesJSON marks experiments that emit metrics to the -json
	// file; at most one may be selected per invocation.
	writesJSON bool
	run        func() (string, error)
}

// writeJSON marshals v to jsonPath (no-op when jsonPath is empty).
func writeJSON(jsonPath string, v any) error {
	if jsonPath == "" {
		return nil
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(b, '\n'), 0o644)
}

// schedRunner drives the multi-stream scheduler comparison (batched
// vs unbatched vs depth-1 submission) and optionally writes the full
// JSON metrics — per-QoS-class p50/p99 latency and throughput for
// every discipline — to jsonPath.
func schedRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		cmp, err := experiments.MultiStreamBatchComparison(experiments.DefaultMultiStream(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, cmp); err != nil {
			return "", err
		}
		return experiments.FormatMultiStream(cmp.Batched) + "\n" +
			experiments.FormatBatchComparison(cmp), nil
	}
}

// gcRunner drives the GC-isolation experiment: the same write-churn
// workload over the logical volume layer under GC-aware and
// GC-oblivious dispatch, comparing realtime tail latency.
func gcRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.GCIsolation(experiments.DefaultGCIsolation(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatGCIsolation(res), nil
	}
}

// ispRunner drives the ISP-contention experiment: distributed
// in-store search queries sharing the appliance with 32 host streams,
// compared across no-ISP / scheduler-bypass / Accel-admitted /
// host-mediated arms.
func ispRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.ISPContention(experiments.DefaultISPContention(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatISPContention(res), nil
	}
}

// fsRunner drives the file-stack experiment: blockfs-on-FTL vs the
// cluster-wide RFS vs cluster RFS with distributed/host-mediated file
// scans (the paper's Figure 8 pipeline end-to-end).
func fsRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.FileStack(experiments.DefaultFileStack(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatFileStack(res), nil
	}
}

// appsRunner drives the distributed-applications experiment: cluster
// nearest-neighbor and migrating in-store graph traversal vs their
// host-centric twins, under concurrent realtime foreground load.
func appsRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.Apps(experiments.DefaultApps(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatApps(res), nil
	}
}

// faultRunner drives the fault-scenario experiment: a mirrored volume
// under realtime + churn load with a whole node killed mid-window,
// served degraded, then rebuilt on the Background class.
func faultRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.Fault(experiments.DefaultFault(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatFault(res), nil
	}
}

// cacheRunner drives the cache-tier experiment: hot/cold readers
// against the host-DRAM write-back cache at increasing capacity (plus
// a DRAM-cluster strawman for perf-per-watt), and the
// invalidation-heavy cross-node write pair.
func cacheRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.CacheTier(experiments.DefaultCacheTier(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatCacheTier(res), nil
	}
}

// engineRunner drives the event-engine benchmark: the synthetic
// full-stack load swept over cluster sizes, measuring the simulation
// substrate (events/sec, ns/event, allocs/event) rather than the
// modeled hardware.
func engineRunner(short bool, jsonPath string) func() (string, error) {
	return func() (string, error) {
		res, err := experiments.EngineBench(experiments.DefaultEngineBench(short))
		if err != nil {
			return "", err
		}
		if err := writeJSON(jsonPath, res); err != nil {
			return "", err
		}
		return experiments.FormatEngineBench(res), nil
	}
}

func allRunners(short bool, jsonPath string) []runner {
	return []runner{
		{"engine", "event-engine speed: events/sec, ns/event, allocs/event at 4/16/64 nodes", true, engineRunner(short, jsonPath)},
		{"sched", "multi-stream scheduler: QoS latency and batched-submission throughput", true, schedRunner(short, jsonPath)},
		{"gc", "logical volume + FTL garbage collection: GC-aware vs GC-oblivious realtime p99", true, gcRunner(short, jsonPath)},
		{"isp", "distributed in-store processing: ISP-F vs host-mediated throughput + realtime p99 under contention", true, ispRunner(short, jsonPath)},
		{"fs", "file stack: blockfs-on-FTL vs cluster RFS vs cluster RFS + distributed file scans (Figure 8 end-to-end)", true, fsRunner(short, jsonPath)},
		{"apps", "distributed applications: cluster nearest-neighbor + migrating graph traversal vs host-centric twins", true, appsRunner(short, jsonPath)},
		{"fault", "fault tolerance: node kill on a mirrored volume — degraded p99 and time-to-rebuild vs baseline", true, faultRunner(short, jsonPath)},
		{"cache", "host-DRAM cache tier: hit regimes + DRAM strawman perf-per-watt + invalidation-heavy p99", true, cacheRunner(short, jsonPath)},
		{"table1", "Artix-7 flash controller resources", false, func() (string, error) {
			return experiments.FormatTable1(8), nil
		}},
		{"table2", "Virtex-7 host FPGA resources", false, func() (string, error) {
			return experiments.FormatTable2(8), nil
		}},
		{"table3", "node power budget", false, func() (string, error) {
			return experiments.FormatTable3(2), nil
		}},
		{"fig11", "integrated network bandwidth/latency vs hops", false, func() (string, error) {
			pts, err := experiments.Fig11(5)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig11(pts), nil
		}},
		{"fig12", "remote access latency breakdown", false, func() (string, error) {
			rows, err := experiments.Fig12()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig12(rows), nil
		}},
		{"fig13", "read bandwidth by access mix", false, func() (string, error) {
			rows, err := experiments.Fig13()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig13(rows), nil
		}},
		{"fig16", "nearest neighbor: BlueDBM vs DRAM", false, func() (string, error) {
			pts, err := experiments.Fig16(nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatNN("Figure 16: nearest neighbor, BlueDBM up to two nodes", pts), nil
		}},
		{"fig17", "nearest neighbor: mostly-DRAM configurations", false, func() (string, error) {
			pts, err := experiments.Fig17(nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatNN("Figure 17: nearest neighbor with mostly DRAM", pts), nil
		}},
		{"fig18", "nearest neighbor: off-the-shelf SSD", false, func() (string, error) {
			pts, err := experiments.Fig18(nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatNN("Figure 18: nearest neighbor with off-the-shelf SSD", pts), nil
		}},
		{"fig19", "nearest neighbor: in-store processing advantage", false, func() (string, error) {
			pts, err := experiments.Fig19(nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatNN("Figure 19: nearest neighbor with in-store processing", pts), nil
		}},
		{"fig20", "graph traversal performance", false, func() (string, error) {
			rows, err := experiments.Fig20()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig20(rows), nil
		}},
		{"fig21", "string search bandwidth and CPU utilization", false, func() (string, error) {
			rows, err := experiments.Fig21()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig21(rows), nil
		}},
	}
}

func main() {
	os.Exit(run())
}

// run is main's body; it returns the exit code so profiling defers
// (StopCPUProfile, trace.Stop, the -memprofile writer) run before the
// process exits.
func run() int {
	runFlag := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	short := flag.Bool("short", false, "reduced request counts for smoke runs (sched, gc)")
	jsonPath := flag.String("json", "", "write the sched/gc experiment's JSON metrics to this file (run them separately)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (after the run) to this file")
	traceFile := flag.String("trace", "", "write a runtime execution trace of the selected experiments to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluedbm-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bluedbm-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluedbm-bench: -trace: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "bluedbm-bench: -trace: %v\n", err)
			return 1
		}
		defer trace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bluedbm-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "bluedbm-bench: -memprofile: %v\n", err)
			}
		}()
	}

	runners := allRunners(*short, *jsonPath)
	if *list {
		for _, r := range runners {
			fmt.Printf("%-8s %s\n", r.id, r.desc)
		}
		return 0
	}

	want := map[string]bool{}
	if *runFlag != "all" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, r := range runners {
			known[r.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "bluedbm-bench: unknown experiment(s): %s\n", strings.Join(unknown, ", "))
			return 2
		}
	}

	// -json writes one file; refuse to let two experiments silently
	// overwrite each other's metrics.
	if *jsonPath != "" {
		jsonRunners := 0
		for _, r := range runners {
			if r.writesJSON && (len(want) == 0 || want[r.id]) {
				jsonRunners++
			}
		}
		if jsonRunners > 1 {
			fmt.Fprintln(os.Stderr, "bluedbm-bench: -json selects one output file; run the sched/gc/isp/fs/apps/fault/cache/engine experiments separately")
			return 2
		}
	}

	failed := false
	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bluedbm-bench: %s: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(out)
	}
	if failed {
		return 1
	}
	return 0
}
