// Command bluedbm-topo builds, validates and inspects storage-network
// topologies (paper §3.2, Figure 5): BlueDBM relies on a network
// configuration file instead of a discovery protocol, and this tool is
// the configuration-file workflow.
//
// Usage:
//
//	bluedbm-topo -gen ring -nodes 20 -lanes 4 > ring20.json
//	bluedbm-topo -check ring20.json
//	bluedbm-topo -check ring20.json -routes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func main() {
	gen := flag.String("gen", "", "generate a topology: ring, line, mesh, star, full")
	nodes := flag.Int("nodes", 20, "node count (mesh uses the nearest WxH grid)")
	lanes := flag.Int("lanes", 1, "parallel cables per logical edge (ring/line)")
	hubs := flag.Int("hubs", 4, "hub count for star topologies")
	check := flag.String("check", "", "validate a topology config file")
	routes := flag.Bool("routes", false, "with -check: print hop-distance matrix")
	ports := flag.Int("ports", 8, "ports per node budget")
	flag.Parse()

	switch {
	case *gen != "":
		topo, err := generate(*gen, *nodes, *lanes, *hubs)
		if err != nil {
			fatal(err)
		}
		b, err := topo.Encode()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
	case *check != "":
		b, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		topo, err := fabric.DecodeTopology(b)
		if err != nil {
			fatal(err)
		}
		if err := topo.Validate(*ports); err != nil {
			fatal(err)
		}
		eng := sim.NewEngine()
		net, err := topo.Build(eng, fabric.DefaultConfig(), 7)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("topology %q: %d nodes, %d cables, fits %d ports/node, connected\n",
			topo.Name, topo.Nodes, net.Links(), *ports)
		if *routes {
			printDistances(net)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(kind string, nodes, lanes, hubs int) (fabric.Topology, error) {
	switch kind {
	case "ring":
		return fabric.Ring(nodes, lanes), nil
	case "line":
		return fabric.Line(nodes, lanes), nil
	case "mesh":
		w := 1
		for w*w < nodes {
			w++
		}
		h := (nodes + w - 1) / w
		return fabric.Mesh2D(w, h), nil
	case "star":
		return fabric.DistributedStar(nodes, hubs), nil
	case "full":
		return fabric.FullMesh(nodes), nil
	default:
		return fabric.Topology{}, fmt.Errorf("unknown topology kind %q", kind)
	}
}

func printDistances(net *fabric.Network) {
	n := net.Nodes()
	fmt.Print("hops")
	for j := 0; j < n; j++ {
		fmt.Printf("%4d", j)
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%4d", i)
		dist := bfs(net, i)
		for j := 0; j < n; j++ {
			fmt.Printf("%4d", dist[j])
		}
		fmt.Println()
	}
}

func bfs(net *fabric.Network, from int) []int {
	dist := make([]int, net.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, peer := range net.Node(fabric.NodeID(v)).Neighbors() {
			if dist[peer] < 0 {
				dist[peer] = dist[v] + 1
				queue = append(queue, int(peer))
			}
		}
	}
	return dist
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bluedbm-topo:", err)
	os.Exit(1)
}
