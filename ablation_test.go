package repro_test

// Ablation benchmarks for the design decisions DESIGN.md §5 calls out.
// Each reports the metric a designer would compare, so `go test
// -bench=Ablation` answers "what did this mechanism buy?".

import (
	"testing"

	"repro/internal/accel/spmv"
	"repro/internal/accel/tablescan"
	"repro/internal/blockfs"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/ftl"
	"repro/internal/hostmodel"
	"repro/internal/nand"
	"repro/internal/rfs"
	"repro/internal/sim"
)

// streamGbps pushes msgs 2KB messages from node 0 to node 1 of a
// 2-node topology with `lanes` parallel cables, using `endpoints`
// logical endpoints, and returns aggregate Gbps.
func streamGbps(b *testing.B, cfg fabric.Config, lanes, endpoints, msgs int) float64 {
	b.Helper()
	eng := sim.NewEngine()
	topo := fabric.Topology{Name: "ab", Nodes: 2}
	for l := 0; l < lanes; l++ {
		topo.Edges = append(topo.Edges, [2]int{0, 1})
	}
	net, err := topo.Build(eng, cfg, endpoints)
	if err != nil {
		b.Fatal(err)
	}
	received := 0
	const size = 2048
	for ep := 0; ep < endpoints; ep++ {
		src, err := net.Node(0).BindEndpoint(ep)
		if err != nil {
			b.Fatal(err)
		}
		dst, err := net.Node(1).BindEndpoint(ep)
		if err != nil {
			b.Fatal(err)
		}
		dst.OnReceive = func(fabric.NodeID, int, any) { received++ }
		sent := 0
		var pump func()
		pump = func() {
			if sent >= msgs/endpoints {
				return
			}
			sent++
			if err := src.Send(1, size, nil, pump); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			pump()
		}
	}
	eng.Run()
	if received < msgs-endpoints {
		b.Fatalf("delivered %d of %d", received, msgs)
	}
	return float64(received*size*8) / eng.Now().Seconds() / 1e9
}

// BenchmarkAblationRouting: deterministic per-endpoint routing means a
// single endpoint is pinned to one lane; spreading traffic over
// multiple endpoints recovers the parallel cables' aggregate bandwidth
// (why BlueDBM stripes its flash traffic over FlashLanes endpoints).
func BenchmarkAblationRouting(b *testing.B) {
	var one, eight float64
	for i := 0; i < b.N; i++ {
		one = streamGbps(b, fabric.DefaultConfig(), 4, 1, 2000)
		eight = streamGbps(b, fabric.DefaultConfig(), 4, 8, 2000)
	}
	b.ReportMetric(one, "1ep-Gbps")
	b.ReportMetric(eight, "8ep-Gbps")
}

// BenchmarkAblationFlowControl: the token depth per link bounds
// buffering; starving the credits (depth 1) costs throughput on a
// multi-segment stream, while modest depth already saturates — the
// "simple design with low buffer requirements" trade-off of §3.2.
func BenchmarkAblationFlowControl(b *testing.B) {
	var starved, normal float64
	for i := 0; i < b.N; i++ {
		tight := fabric.DefaultConfig()
		tight.LinkTokens = 1
		starved = streamGbps(b, tight, 1, 1, 1500)
		normal = streamGbps(b, fabric.DefaultConfig(), 1, 1, 1500)
	}
	b.ReportMetric(starved, "tokens1-Gbps")
	b.ReportMetric(normal, "tokens16-Gbps")
}

// BenchmarkAblationEndToEnd: optional end-to-end flow control (§3.2.3)
// buys safety at a latency cost; this measures the per-message cost of
// a window of 1 versus none on a one-hop link.
func BenchmarkAblationEndToEnd(b *testing.B) {
	run := func(window int) float64 {
		eng := sim.NewEngine()
		net, err := fabric.Line(2, 1).Build(eng, fabric.DefaultConfig(), 0)
		if err != nil {
			b.Fatal(err)
		}
		src, _ := net.Node(0).BindEndpoint(0)
		dst, _ := net.Node(1).BindEndpoint(0)
		if window > 0 {
			src.SetEndToEnd(window)
		}
		got := 0
		dst.OnReceive = func(fabric.NodeID, int, any) { got++ }
		const msgs = 500
		for i := 0; i < msgs; i++ {
			if err := src.Send(1, 512, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		eng.Run()
		if got != msgs {
			b.Fatalf("delivered %d", got)
		}
		return eng.Now().Micros() / msgs
	}
	var without, with float64
	for i := 0; i < b.N; i++ {
		without = run(0)
		with = run(1)
	}
	b.ReportMetric(without, "noE2E-us/msg")
	b.ReportMetric(with, "E2E1-us/msg")
}

// ftlWA runs a random-overwrite workload against an FTL with the given
// over-provisioning and returns the resulting write amplification.
func ftlWA(b *testing.B, overProvision float64) float64 {
	b.Helper()
	eng := sim.NewEngine()
	geo := nand.Geometry{
		Buses: 2, ChipsPerBus: 1, BlocksPerChip: 16, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 64,
	}
	card, err := nand.NewCard(eng, "wa", geo, nand.DefaultTiming(), nand.Reliability{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	var sp *flashserver.Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, c int, err error) { sp.Handlers().ReadDone(tag, c, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		b.Fatal(err)
	}
	sp = flashserver.NewSplitter(ctl)
	srv := flashserver.NewServer(sp, "wa", 16)
	f, err := ftl.New(srv.NewIface("wa"), geo, ftl.Config{
		OverProvision: overProvision, GCLowWater: 2, WearLevelEvery: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(3)
	lpns := f.LogicalPages()
	page := make([]byte, geo.PageSize)
	write := func(lpn int) {
		var werr error
		f.Write(lpn, page, func(err error) { werr = err })
		eng.Run()
		if werr != nil {
			b.Fatalf("write: %v", werr)
		}
	}
	for lpn := 0; lpn < lpns; lpn++ {
		write(lpn)
	}
	for i := 0; i < 3*lpns; i++ {
		write(rng.Intn(lpns))
	}
	return f.WriteAmplification()
}

// BenchmarkAblationOverprovisioning: classic FTL trade-off — GC write
// amplification versus reserved capacity, the knob that motivates
// moving flash management into software where the file system can do
// better (§4).
func BenchmarkAblationOverprovisioning(b *testing.B) {
	var tight, roomy float64
	for i := 0; i < b.N; i++ {
		tight = ftlWA(b, 0.10)
		roomy = ftlWA(b, 0.40)
	}
	b.ReportMetric(tight, "WA-at-10pct-OP")
	b.ReportMetric(roomy, "WA-at-40pct-OP")
}

// buildStack wires engine -> card -> controller -> splitter -> server
// for the file system ablations.
func buildStack(b *testing.B, geo nand.Geometry) (*sim.Engine, *flashserver.Server) {
	b.Helper()
	eng := sim.NewEngine()
	card, err := nand.NewCard(eng, "fsab", geo, nand.DefaultTiming(), nand.Reliability{}, 7)
	if err != nil {
		b.Fatal(err)
	}
	var sp *flashserver.Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, c int, err error) { sp.Handlers().ReadDone(tag, c, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		b.Fatal(err)
	}
	sp = flashserver.NewSplitter(ctl)
	return eng, flashserver.NewServer(sp, "fsab", 16)
}

// BenchmarkAblationFTLvsRFS quantifies §4's architectural argument:
// the same overwrite-heavy file workload run through a conventional
// file system stacked on a driver FTL, versus the flash-aware RFS that
// performs the mapping itself. The metric is end-to-end write
// amplification (flash programs per host page written).
func BenchmarkAblationFTLvsRFS(b *testing.B) {
	geo := nand.Geometry{
		Buses: 2, ChipsPerBus: 1, BlocksPerChip: 16, PagesPerBlock: 8,
		PageSize: 512, OOBSize: 64,
	}
	const filePages = 120
	const overwrites = 500

	var ftlWAv, rfsWAv float64
	for iter := 0; iter < b.N; iter++ {
		// --- conventional FS on FTL ---------------------------------
		eng, srv := buildStack(b, geo)
		dev, err := ftl.New(srv.NewIface("dev"), geo, ftl.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		bfs := blockfs.New(dev)
		bf, err := bfs.Create("t")
		if err != nil {
			b.Fatal(err)
		}
		page := make([]byte, geo.PageSize)
		run := func(op func(cb func(error))) {
			var werr error
			op(func(err error) { werr = err })
			eng.Run()
			if werr != nil {
				b.Fatal(werr)
			}
		}
		for i := 0; i < filePages; i++ {
			run(func(cb func(error)) { bf.AppendPage(page, cb) })
		}
		rng := sim.NewRNG(4)
		for i := 0; i < overwrites; i++ {
			idx := rng.Intn(filePages)
			run(func(cb func(error)) { bf.WritePage(idx, page, cb) })
		}
		ftlWAv = dev.WriteAmplification()

		// --- flash-aware RFS -----------------------------------------
		eng2, srv2 := buildStack(b, geo)
		rf, err := rfs.New(srv2.NewIface("rfs"), geo, rfs.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		f2, err := rf.Create("t")
		if err != nil {
			b.Fatal(err)
		}
		run2 := func(op func(cb func(error))) {
			var werr error
			op(func(err error) { werr = err })
			eng2.Run()
			if werr != nil {
				b.Fatal(werr)
			}
		}
		for i := 0; i < filePages; i++ {
			run2(func(cb func(error)) { f2.AppendPage(page, cb) })
		}
		rng2 := sim.NewRNG(4)
		for i := 0; i < overwrites; i++ {
			idx := rng2.Intn(filePages)
			run2(func(cb func(error)) { f2.WritePage(idx, page, cb) })
		}
		hostWrites := float64(rf.PagesWritten)
		rfsWAv = (hostWrites + float64(rf.CleanMoves)) / hostWrites

		// The paper's RFS claim is as much about memory as WA: the FTL
		// maps the whole logical space; RFS maps only live data.
		b.ReportMetric(float64(dev.MappingEntries()), "FTL-map-entries")
		b.ReportMetric(float64(rf.LiveMappings()), "RFS-map-entries")
	}
	b.ReportMetric(ftlWAv, "FTL-stack-WA")
	b.ReportMetric(rfsWAv, "RFS-WA")
}

// BenchmarkExtensionTableScan: the §8 future-work SQL offload — rows
// per second and bytes over PCIe for in-store filtering versus host
// filtering at ~1% selectivity.
func BenchmarkExtensionTableScan(b *testing.B) {
	var ispRows, hostRows, dataRatio float64
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams(1)
		p.Geometry.BlocksPerChip = 16
		c, err := core.NewCluster(p)
		if err != nil {
			b.Fatal(err)
		}
		addrs, err := tablescan.BuildTable(c, 0, 96, 13)
		if err != nil {
			b.Fatal(err)
		}
		pred := tablescan.Predicate{Col: tablescan.ColB, Op: tablescan.OpEQ, Value: 3}
		isp, err := tablescan.ScanISP(c, 0, addrs, pred)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := core.NewCluster(p)
		if err != nil {
			b.Fatal(err)
		}
		addrs2, err := tablescan.BuildTable(c2, 0, 96, 13)
		if err != nil {
			b.Fatal(err)
		}
		host, err := tablescan.ScanHost(c2, 0, addrs2, pred, 8)
		if err != nil {
			b.Fatal(err)
		}
		ispRows = isp.RowsPerSec
		hostRows = host.RowsPerSec
		dataRatio = float64(host.BytesToHost) / float64(isp.BytesToHost)
	}
	b.ReportMetric(ispRows/1e6, "ISP-Mrows/s")
	b.ReportMetric(hostRows/1e6, "host-Mrows/s")
	b.ReportMetric(dataRatio, "PCIe-data-saved-x")
}

// BenchmarkExtensionSpMV: the §8 sparse-linear-algebra extension —
// non-zeros per second for in-store multiply-accumulate versus host
// software, and the PCIe data reduction from returning only the dense
// result vector.
func BenchmarkExtensionSpMV(b *testing.B) {
	var ispRate, hostRate, saved float64
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams(1)
		p.Geometry.BlocksPerChip = 16
		c, err := core.NewCluster(p)
		if err != nil {
			b.Fatal(err)
		}
		m, addrs, err := spmv.BuildRandom(c, 0, 5000, 200, 12, 9)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]int64, 200)
		for j := range x {
			x[j] = int64(j%7 - 3)
		}
		isp, err := spmv.MultiplyISP(c, 0, m, addrs, x)
		if err != nil {
			b.Fatal(err)
		}
		c2, err := core.NewCluster(p)
		if err != nil {
			b.Fatal(err)
		}
		m2, addrs2, err := spmv.BuildRandom(c2, 0, 5000, 200, 12, 9)
		if err != nil {
			b.Fatal(err)
		}
		cpu, err := hostmodel.New(c2.Eng, "h", hostmodel.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		host, err := spmv.MultiplyHost(c2, 0, m2, addrs2, x, cpu, 8)
		if err != nil {
			b.Fatal(err)
		}
		ispRate = isp.NNZPerSec / 1e6
		hostRate = host.NNZPerSec / 1e6
		saved = float64(host.BytesToHost) / float64(isp.BytesToHost)
	}
	b.ReportMetric(ispRate, "ISP-Mnnz/s")
	b.ReportMetric(hostRate, "host-Mnnz/s")
	b.ReportMetric(saved, "PCIe-data-saved-x")
}
