// Distributed graph traversal (paper §7.2): a graph's adjacency pages
// are spread over a 20-node BlueDBM cluster's flash, and a traversal —
// a chain of dependent lookups — runs from node 0 under each access
// configuration. Because each lookup's target is known only after the
// previous page is parsed, the workload is latency-bound and the
// access path dominates: the in-store processor over the integrated
// network (ISP-F) is ~3x faster than going through remote host
// software (H-RH-F), and still beats a store with half its accesses
// served by DRAM.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/graph"
	"repro/internal/core"
)

func main() {
	// The paper's rack: 20 nodes, ring with 4 lanes between neighbors.
	cluster, err := core.NewCluster(core.DefaultParams(20))
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Build(cluster, graph.Config{
		Vertices:  1900,
		AvgDegree: 12,
		Seed:      42,
		HomeNode:  0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices striped over %d storage nodes\n\n", g.Vertices(), cluster.Nodes()-1)

	fmt.Printf("%-12s %12s %14s\n", "access", "lookups/s", "walk checksum")
	var first uint64
	for _, cfg := range []struct {
		name string
		mode graph.Mode
		pct  int
	}{
		{"ISP-F", graph.ModeISPF, 0},
		{"H-F", graph.ModeHF, 0},
		{"H-RH-F", graph.ModeHRHF, 0},
		{"50%F", graph.ModeMixed, 50},
		{"H-DRAM", graph.ModeHDRAM, 0},
	} {
		res, err := graph.Traverse(cluster, 0, g, graph.TraverseConfig{
			Start: 5, Steps: 400, Mode: cfg.mode, PctFlash: cfg.pct, Seed: 31, Walkers: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.0f %14x\n", cfg.name, res.LookupsPerSec, res.VisitSum)
		if cfg.mode == graph.ModeISPF {
			first = res.VisitSum
			if want := graph.ReferenceWalk(g, graph.TraverseConfig{
				Start: 5, Steps: 400, Seed: 31,
			}); want != res.VisitSum {
				log.Fatal("walk diverged from in-memory reference")
			}
		} else if res.VisitSum != first {
			// ModeMixed included: path choice draws from its own RNG
			// stream, so the visited sequence is mode-independent.
			log.Fatalf("%s visited different vertices", cfg.name)
		}
	}
	fmt.Println("\nall access paths walk the identical vertex sequence; only latency differs.")
}
