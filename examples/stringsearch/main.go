// String search offload (paper §7.3): a DNA-motif scan over a file in
// the BlueDBM file system. The host compiles the Morris-Pratt pattern,
// DMAs it to the in-store engines (4 per flash bus), streams the
// file's physical addresses from the file system, and receives only
// match positions — the scan itself runs at full flash bandwidth with
// essentially zero host CPU. The same scan through software grep on a
// modeled SSD and HDD shows the contrast of Figure 21.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/search"
	"repro/internal/altstore"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/rfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	motif = "GATTACAGATTACA"
	pages = 512
)

func main() {
	cluster, err := core.NewCluster(core.DefaultParams(1))
	if err != nil {
		log.Fatal(err)
	}
	fs, err := rfs.New(cluster.Node(0).NewIface(0, "fs"), cluster.Params.Geometry, rfs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A genome-like haystack with the motif planted every 32 pages.
	gen := workload.DNAPages(5, motif, 32)
	f, err := fs.Create("genome.dna")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, cluster.Params.PageSize())
	for i := 0; i < pages; i++ {
		gen(i, buf)
		var werr error
		f.AppendPage(buf, func(err error) { werr = err })
		cluster.Run()
		if werr != nil {
			log.Fatalf("writing page %d: %v", i, werr)
		}
	}
	total := int64(pages) * int64(cluster.Params.PageSize())
	fmt.Printf("wrote %s: %d MB across %d flash pages\n", f.Name(), total>>20, f.Pages())

	// In-store scan.
	isp, err := search.SearchISP(cluster, 0, 0, f, []byte(motif))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-14s %8.0f MB/s   %5.1f%% CPU   %d matches\n",
		"Flash/ISP", isp.Throughput/1e6, isp.CPUUtil*100, len(isp.Matches))

	// Software grep over comparator devices.
	for _, dev := range []string{"SSD", "HDD"} {
		eng := sim.NewEngine()
		cpu, err := hostmodel.New(eng, "host", hostmodel.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		var reader search.DeviceReader
		if dev == "SSD" {
			reader, err = altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
		} else {
			reader, err = altstore.NewHDD(eng, "disk", altstore.DefaultHDD())
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err := search.SearchSoftware(eng, cpu, reader, pages, cluster.Params.PageSize(),
			gen, []byte(motif), 16)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8.0f MB/s   %5.1f%% CPU   %d matches\n",
			dev+"/SW grep", res.Throughput/1e6, res.CPUUtil*100, len(res.Matches))
		if len(res.Matches) != len(isp.Matches) {
			log.Fatal("software scan found a different match set")
		}
	}
	fmt.Println("\nidentical match sets; the ISP frees the entire host CPU for the real query.")
}
