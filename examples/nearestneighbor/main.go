// Nearest-neighbor image search (paper §7.1): an LSH index over 8 KB
// binary items stored in BlueDBM flash. The host hashes the query,
// looks up candidate buckets, and streams the candidates' physical
// addresses to the in-store processor, which Hamming-compares each
// item next to the flash and returns only the best match.
//
// The example plants a near-duplicate of the query in the dataset and
// shows the ISP finding it, then compares the in-store rate against
// multithreaded host software on DRAM-resident data.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/lsh"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	items     = 256
	target    = 123 // the planted near-duplicate
	flips     = 60  // bits flipped between query and target
	numTables = 8
	hashBits  = 5 // coarse buckets so the shortlist has real work in it
)

func main() {
	cluster, err := core.NewCluster(core.DefaultParams(1))
	if err != nil {
		log.Fatal(err)
	}
	pageSize := cluster.Params.PageSize()

	// Dataset with ground truth: item `target` is the query with a few
	// bits flipped.
	data, query, err := workload.NearDuplicateSet(items, pageSize, target, flips, 99)
	if err != nil {
		log.Fatal(err)
	}

	// Host software builds the real LSH index...
	index, err := lsh.NewIndex(pageSize, numTables, hashBits, 7)
	if err != nil {
		log.Fatal(err)
	}
	for id, item := range data {
		if err := index.Add(id, item); err != nil {
			log.Fatal(err)
		}
	}
	// ...and the dataset lives in flash.
	if err := cluster.SeedLinear(0, items, func(idx int, page []byte) {
		copy(page, data[idx])
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d items (%d tables x %d bits), dataset on flash\n",
		index.Items(), numTables, hashBits)

	// Query: hash -> candidate addresses -> in-store processor.
	candIDs, err := index.Candidates(query)
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]core.PageAddr, len(candIDs))
	for i, id := range candIDs {
		addrs[i] = core.LinearPage(cluster.Params, 0, id)
	}
	fmt.Printf("LSH shortlisted %d of %d items\n", len(candIDs), items)

	res, err := lsh.RunISP(cluster, 0, addrs, candIDs, query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISP best match: item %d at Hamming distance %d (%.0fK comparisons/s)\n",
		res.BestID, res.BestDist, res.PerSec/1000)
	if res.BestID != target {
		log.Fatalf("expected planted item %d", target)
	}

	// Contrast: host software over DRAM-resident data, 4 threads.
	eng := sim.NewEngine()
	cpu, err := hostmodel.New(eng, "host", hostmodel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sw, err := lsh.RunHostDRAM(eng, cpu, data, candIDs, query, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host DRAM (4 threads):     item %d at distance %d (%.0fK comparisons/s)\n",
		sw.BestID, sw.BestDist, sw.PerSec/1000)
	fmt.Println("\nsame answer; the flash-resident dataset is 10-40x cheaper per TB than DRAM.")
}
