// SQL table-scan offload (the paper's §8 planned work, implemented):
// a table of fixed-size rows lives in BlueDBM flash; a selective
// predicate is pushed down into the storage device, so only matching
// rows cross PCIe. The same query through the conventional path hauls
// the entire table to the host and filters in software.
//
// This is the Ibex/Netezza-style selection offload the related-work
// section discusses, expressed as a BlueDBM in-store processor.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/tablescan"
	"repro/internal/core"
)

func main() {
	const pages = 192
	pred := tablescan.Predicate{Col: tablescan.ColB, Op: tablescan.OpEQ, Value: 42} // ~1% selectivity

	build := func() (*core.Cluster, []core.PageAddr) {
		cluster, err := core.NewCluster(core.DefaultParams(1))
		if err != nil {
			log.Fatal(err)
		}
		addrs, err := tablescan.BuildTable(cluster, 0, pages, 77)
		if err != nil {
			log.Fatal(err)
		}
		return cluster, addrs
	}

	c1, addrs1 := build()
	rowsTotal := int64(pages * tablescan.RecordsPerPage(c1.Params.PageSize()))
	fmt.Printf("table: %d rows in %d flash pages; query: SELECT * WHERE colB = 42\n\n",
		rowsTotal, pages)

	isp, err := tablescan.ScanISP(c1, 0, addrs1, pred)
	if err != nil {
		log.Fatal(err)
	}
	c2, addrs2 := build()
	host, err := tablescan.ScanHost(c2, 0, addrs2, pred, 8)
	if err != nil {
		log.Fatal(err)
	}

	if len(isp.Matches) != len(host.Matches) {
		log.Fatalf("result mismatch: %d vs %d rows", len(isp.Matches), len(host.Matches))
	}

	fmt.Printf("%-18s %12s %14s %12s\n", "path", "Mrows/s", "bytes to host", "host CPU")
	fmt.Printf("%-18s %12.1f %14d %11.1f%%\n", "in-store filter",
		isp.RowsPerSec/1e6, isp.BytesToHost, isp.CPUUtil*100)
	fmt.Printf("%-18s %12.1f %14d %11.1f%%\n", "host filter",
		host.RowsPerSec/1e6, host.BytesToHost, host.CPUUtil*100)
	fmt.Printf("\nboth returned %d rows; pushdown moved %.0fx less data over PCIe.\n",
		len(isp.Matches), float64(host.BytesToHost)/float64(isp.BytesToHost))
}
