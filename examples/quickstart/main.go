// Quickstart: boot a 4-node BlueDBM appliance, write a page on one
// node's flash, and read it back three ways — locally, from a remote
// in-store processor over the integrated storage network (ISP-F), and
// from a remote host through its software stack (H-RH-F) — printing
// the latency of each, which is the architecture's whole point.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// A 4-node cluster wired as the default ring with 4 lanes between
	// neighbors, flash/network/PCIe parameters from the paper.
	params := core.DefaultParams(4)
	cluster, err := core.NewCluster(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted %d-node BlueDBM: %d MB flash/node (capacity-scaled), %d B pages\n",
		cluster.Nodes(), params.NodeCapacity()>>20, params.PageSize())

	// Write one page on node 2.
	addr := core.LinearPage(params, 2, 0)
	payload := bytes.Repeat([]byte("bluedbm!"), params.PageSize()/8)
	var werr error
	cluster.Node(2).WriteLocal(addr.Card, addr.Addr, payload, func(err error) { werr = err })
	cluster.Run()
	if werr != nil {
		log.Fatalf("write: %v", werr)
	}
	fmt.Printf("wrote page %v\n", addr)

	// 1. Local read on node 2 (device-side).
	measure := func(label string, read func(cb func([]byte, error))) {
		start := cluster.Eng.Now()
		var got []byte
		read(func(data []byte, err error) {
			if err != nil {
				log.Fatalf("%s: %v", label, err)
			}
			got = data
		})
		cluster.Run()
		if !bytes.Equal(got, payload) {
			log.Fatalf("%s: data mismatch", label)
		}
		fmt.Printf("%-28s %8.1f us\n", label, (cluster.Eng.Now() - start).Micros())
	}

	measure("local ISP read (node 2)", func(cb func([]byte, error)) {
		cluster.Node(2).ReadLocal(addr.Card, addr.Addr, cb)
	})
	measure("remote ISP-F read (node 0)", func(cb func([]byte, error)) {
		cluster.Node(0).ISPRead(addr, cb)
	})
	measure("remote H-RH-F read (node 0)", func(cb func([]byte, error)) {
		cluster.Node(0).HostRead(addr, core.PathHRHF, nil, cb)
	})

	fmt.Printf("\nsimulated time: %v; the ISP-F path skips every software layer,\n", cluster.Eng.Now())
	fmt.Println("which is why BlueDBM gives near-uniform latency into all 4 nodes' flash.")
	_ = sim.Microsecond
}
