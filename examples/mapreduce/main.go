// BlueDBM-optimized MapReduce (the paper's §8 planned work,
// implemented): word count where the map phase runs in-store on every
// node's flash shard and the shuffle travels storage-device to
// storage-device over the integrated network — the host only receives
// reduced results.
package main

import (
	"fmt"
	"log"

	"repro/internal/accel/mapreduce"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	const nodes = 8
	const pagesPerNode = 48

	cluster, err := core.NewCluster(core.DefaultParams(nodes))
	if err != nil {
		log.Fatal(err)
	}
	gen := func(node, idx int, page []byte) {
		workload.TextPages(2026+uint64(node)*101, "", 0)(idx, page)
	}

	res, err := mapreduce.WordCount(cluster, mapreduce.Config{
		PagesPerNode: pagesPerNode,
		Reducers:     nodes * 2,
		Gen:          gen,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the in-memory oracle.
	want := mapreduce.ReferenceCounts(nodes, pagesPerNode, cluster.Params.PageSize(), gen)
	for w, c := range want {
		if res.Counts[w] != c {
			log.Fatalf("count[%q] = %d, want %d", w, res.Counts[w], c)
		}
	}

	inputMB := float64(res.PagesMapped) * float64(cluster.Params.PageSize()) / 1e6
	fmt.Printf("word count over %d nodes x %d pages (%.1f MB of text)\n",
		nodes, pagesPerNode, inputMB)
	fmt.Printf("map+shuffle+reduce in %v simulated (%.1fM words/s)\n",
		res.Elapsed, res.WordsPerSec/1e6)
	fmt.Printf("shuffle traffic: %d KB (vs %.0f KB if raw pages moved to one host)\n\n",
		res.BytesShuffled/1024, inputMB*1000)
	fmt.Println("top words:")
	for _, w := range mapreduce.TopWords(res.Counts, 8) {
		fmt.Printf("  %-14s %d\n", w, res.Counts[w])
	}
	fmt.Println("\nresults verified against the in-memory oracle.")
}
