// Package repro is a full reproduction of "BlueDBM: An Appliance for
// Big Data Analytics" (Jun et al., ISCA 2015) as a Go library: a
// deterministic discrete-event simulation of the hardware substrate
// (raw NAND flash, the tag-based flash controller with real SEC-DED
// ECC, the integrated storage network with token flow control and
// deterministic per-endpoint routing, the PCIe host interface) plus
// real implementations of the software stack (page-mapped FTL,
// RFS-style flash file system) and the in-store accelerators (LSH
// nearest-neighbor, distributed graph traversal, Morris-Pratt string
// search).
//
// Start with examples/quickstart, then see DESIGN.md for the system
// inventory and EXPERIMENTS.md for measured-vs-paper results. The
// bench harness in bench_test.go regenerates every table and figure of
// the paper's evaluation; cmd/bluedbm-bench does the same from the
// command line.
package repro
