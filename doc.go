// Package repro is a full reproduction of "BlueDBM: An Appliance for
// Big Data Analytics" (Jun et al., ISCA 2015) as a Go library: a
// deterministic discrete-event simulation of the hardware substrate
// (raw NAND flash, the tag-based flash controller with real SEC-DED
// ECC, the integrated storage network with token flow control and
// deterministic per-endpoint routing, the PCIe host interface) plus
// real implementations of the software stack (page-mapped FTL,
// RFS-style flash file system) and the in-store accelerators (LSH
// nearest-neighbor, distributed graph traversal, Morris-Pratt string
// search, predicate-pushdown table scan).
//
// Package map, bottom up:
//
//	internal/sim          allocation-free event engine (hierarchical timer
//	                      wheel + far heap, pooled generation-counted
//	                      events, reusable Timers), pipes, token pools
//	                      with ring-buffered waiters, RNG, tallies
//	internal/nand         raw NAND cards: buses, chips, blocks, pages;
//	                      deterministic wear-scaled bit-error injection
//	                      and whole-card failure (Fail/Replace)
//	internal/ecc          SEC-DED Hamming codes over every page,
//	                      allocation-free in-place decode
//	internal/flashctl     tagged flash controller (paper §3.1.1)
//	internal/flashserver  flash server: in-order interfaces, ATU (§3.1.2)
//	internal/fabric       integrated storage network (§3.2)
//	internal/hostif       PCIe host interface: DMA, RPC, interrupts (§3.3)
//	internal/hostmodel    host Xeon: cores, threads, DRAM bandwidth
//	internal/core         the assembled appliance: nodes, global address
//	                      space, Fig. 12 access paths, batched submission
//	internal/sched        multi-tenant QoS request scheduler: admission,
//	                      batching, coalescing; Accel class + token budget
//	                      for in-store processor reads, Background class +
//	                      GC token budget for FTL housekeeping
//	internal/ftl          page-mapped FTL: mapping, GC, wear leveling
//	internal/volume       cluster-wide logical volume over per-card FTLs;
//	                      physical-address queries (Locate/PhysMap);
//	                      optional cross-node mirroring: degraded-read
//	                      failover, Background-class rebuild reusing the
//	                      GC urgency-token machinery
//	internal/cache        per-node host-DRAM write-back page cache above
//	                      the volume: CLOCK eviction over dense alloc-free
//	                      state, hits charged to hostmodel DRAM bandwidth,
//	                      dirty flush on Background with urgency feedback,
//	                      cross-node invalidation over the fabric
//	                      (invalidate-on-flash-visibility, last flusher
//	                      wins), cold-page demotion to altstore devices
//	                      with promotion on re-reference
//	internal/rfs          RFS-style flash file system (§4): FS core generic
//	                      over a Backend — per-card (flashserver iface) or
//	                      cluster-wide (log striped over every chip of every
//	                      node, I/O admitted through sched at the handle's
//	                      class, cleaning on Background) — with cluster-wide
//	                      physical-address queries (Figure 8 step 1)
//	internal/blockfs      conventional file system over a block Device
//	                      (per-card FTL or a volume stream)
//	internal/altstore     comparator devices (SSD/HDD models)
//	internal/isp          in-store processor framework + FIFO unit scheduler
//	internal/accel/...    the accelerators: lsh, graph, search, tablescan,
//	                      mapreduce, spmv
//	internal/ispvol       distributed in-store processing over
//	                      volume+sched+fabric: per-node engines admitted at
//	                      the Accel class, fan-out/merge queries over volume
//	                      ranges and over cluster-RFS files (Figure 8) —
//	                      string search, table scan, nearest-neighbor
//	                      (NearestNeighbor/-File + host twins) — and
//	                      in-store graph traversal with walker migration
//	                      (WalkMigrate: state moves to the data over the
//	                      fabric instead of pages moving to a home node)
//	internal/workload     deterministic generators and traffic drivers
//	internal/experiments  the paper's tables and figures + the sched/gc/
//	                      isp/fs/apps/fault/cache/engine benchmark
//	                      experiments
//	internal/report       observability
//	internal/fpga         FPGA resource models (Tables 1-2)
//	internal/power        node power model (Table 3)
//	internal/lint         simlint: static analyzers enforcing the
//	                      determinism and alloc-free invariants
//	                      (maprange, walltime, noconcurrency, hotpath,
//	                      errdrop); cmd/simlint is the CI driver
//
// Start with examples/quickstart, then see DESIGN.md for the system
// inventory and EXPERIMENTS.md for measured-vs-paper results. The
// bench harness in bench_test.go regenerates every table and figure of
// the paper's evaluation; cmd/bluedbm-bench does the same from the
// command line, including the beyond-the-paper experiments (-run
// engine, -run sched, -run gc, -run isp, -run fs, -run apps, -run
// fault, -run cache) whose committed artifacts are BENCH_ENGINE.json,
// BENCH_SCHED.json, BENCH_GC.json, BENCH_ISP.json, BENCH_FS.json,
// BENCH_APPS.json, BENCH_FAULT.json and BENCH_CACHE.json.
// Profiling flags (-cpuprofile, -memprofile, -trace) work with every
// experiment.
package repro
