// Package hostif models BlueDBM's host interface (paper §3.3, §5.3):
// a Connectal-style PCIe endpoint providing RPC and DMA between the
// host server and the storage device.
//
// Faithful elements:
//
//   - 128 page buffers each for reads and writes, handed out from free
//     queues, to keep many transfers in flight;
//   - a DMA engine that needs enough contiguous data before issuing a
//     burst, fed by dual-ported per-buffer FIFOs ("a vector of FIFOs",
//     Figure 7) because flash data arrives interleaved across buses
//     and remote nodes;
//   - PCIe Gen1 bandwidth caps: 1.6 GB/s device-to-host and 1.0 GB/s
//     host-to-device, which Figure 13 shows capping Host-Local reads;
//   - RPC doorbell and completion-interrupt latencies, plus the driver
//     software overhead that in-store processing avoids (Figure 12).
package hostif

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrBadBuffer is the panic value (wrapped) raised when a device-side
// producer names a read-buffer index that was never granted. A bad
// index is a modeling bug in the caller, never a runtime condition, so
// the host interface fails loudly instead of returning an error that
// no production caller has a way to recover from.
var ErrBadBuffer = errors.New("hostif: buffer index out of range or not busy")

// Config sizes the host interface.
type Config struct {
	ReadBuffers         int   // device -> host page buffers
	WriteBuffers        int   // host -> device page buffers
	PageBytes           int   // page buffer size
	ToHostBytesPerSec   int64 // DMA write into host DRAM (reads)
	FromHostBytesPerSec int64 // DMA read from host DRAM (writes)
	PCIeLatency         sim.Time
	RPCLatency          sim.Time // doorbell -> hardware dispatch
	InterruptLatency    sim.Time // hardware completion -> host wakeup
	DMABurst            int      // minimum contiguous bytes per DMA burst
	// SoftwareOverhead is the host storage-stack cost (driver, block
	// layer, context switches) charged to every host-initiated flash
	// operation — the dominant "Software" band of Fig. 12.
	SoftwareOverhead sim.Time
	// LightSoftware is the cost of a lightweight user-level request
	// path that never enters the storage stack (serving a cached page
	// from DRAM, key-value style). It is what makes the H-D path fast.
	LightSoftware sim.Time
	// BatchRequestOverhead is the incremental software cost of each
	// additional request in a batched doorbell (descriptor setup and
	// marshalling), far below the fixed SoftwareOverhead a doorbell
	// pays once. It is what makes batched submission pay off.
	BatchRequestOverhead sim.Time
}

// DefaultConfig matches the paper's Connectal PCIe Gen 1 deployment.
func DefaultConfig() Config {
	return Config{
		ReadBuffers:          128,
		WriteBuffers:         128,
		PageBytes:            8192,
		ToHostBytesPerSec:    1_600_000_000,
		FromHostBytesPerSec:  1_000_000_000,
		PCIeLatency:          700 * sim.Nanosecond,
		RPCLatency:           900 * sim.Nanosecond,
		InterruptLatency:     2 * sim.Microsecond,
		DMABurst:             512,
		SoftwareOverhead:     70 * sim.Microsecond,
		LightSoftware:        15 * sim.Microsecond,
		BatchRequestOverhead: 5 * sim.Microsecond,
	}
}

// bufState tracks one read buffer's per-buffer FIFO.
type bufState struct {
	fifo      int  // bytes accumulated, not yet bursted
	dmaQueued int  // bytes handed to the DMA pipe
	dmaDone   int  // bytes landed in host memory
	expect    int  // total bytes of the page transfer (when known)
	lastSeen  bool // producer finished filling
	onDone    func()
}

// HostIf is one node's PCIe host link.
type HostIf struct {
	eng *sim.Engine
	cfg Config

	toHost   *sim.Pipe
	fromHost *sim.Pipe

	readFree    *sim.TokenPool
	writeFree   *sim.TokenPool
	readBufs    []bufState
	readFreeIdx []int // stack of free read-buffer indices

	// stats
	RPCs       sim.Counter
	PagesUp    sim.Counter // device -> host pages completed
	PagesDown  sim.Counter // host -> device pages completed
	Interrupts sim.Counter
}

// New builds a host interface.
func New(eng *sim.Engine, name string, cfg Config) (*HostIf, error) {
	if cfg.ReadBuffers <= 0 || cfg.WriteBuffers <= 0 || cfg.PageBytes <= 0 ||
		cfg.ToHostBytesPerSec <= 0 || cfg.FromHostBytesPerSec <= 0 || cfg.DMABurst <= 0 {
		return nil, fmt.Errorf("hostif: invalid config %+v", cfg)
	}
	h := &HostIf{
		eng:       eng,
		cfg:       cfg,
		toHost:    sim.NewPipe(eng, name+"/pcie-up", cfg.ToHostBytesPerSec, cfg.PCIeLatency),
		fromHost:  sim.NewPipe(eng, name+"/pcie-down", cfg.FromHostBytesPerSec, cfg.PCIeLatency),
		readFree:  sim.NewTokenPool(name+"/rdbuf", cfg.ReadBuffers),
		writeFree: sim.NewTokenPool(name+"/wrbuf", cfg.WriteBuffers),
		readBufs:  make([]bufState, cfg.ReadBuffers),
	}
	for i := cfg.ReadBuffers - 1; i >= 0; i-- {
		h.readFreeIdx = append(h.readFreeIdx, i)
	}
	return h, nil
}

// Config returns the interface configuration.
func (h *HostIf) Config() Config { return h.cfg }

// FreeReadBuffers returns the number of available read buffers.
func (h *HostIf) FreeReadBuffers() int { return h.readFree.Available() }

// RPC models the host ringing the device doorbell: fn runs device-side
// after the RPC latency. It does not include SoftwareOverhead — call
// ChargeSoftware for the driver path explicitly so in-store paths can
// skip it, as the paper's architecture does.
func (h *HostIf) RPC(fn func()) {
	h.RPCs.Inc()
	h.eng.After(h.cfg.RPCLatency, fn)
}

// ChargeSoftware runs fn after the host storage-stack overhead.
func (h *HostIf) ChargeSoftware(fn func()) {
	h.eng.After(h.cfg.SoftwareOverhead, fn)
}

// ChargeLightSoftware runs fn after the lightweight (non-storage)
// request-serving overhead.
func (h *HostIf) ChargeLightSoftware(fn func()) {
	h.eng.After(h.cfg.LightSoftware, fn)
}

// --- device -> host (read) path -------------------------------------

// AcquireReadBuffer grants a free read-buffer index to fn, queueing
// FIFO when all 128 are in use. onDone fires host-side (after the
// completion interrupt) when the page transfer into host memory
// finishes; the buffer stays owned until ReleaseReadBuffer.
func (h *HostIf) AcquireReadBuffer(expectBytes int, onDone func(buf int), fn func(buf int)) {
	h.readFree.Acquire(1, func() {
		buf := h.readFreeIdx[len(h.readFreeIdx)-1]
		h.readFreeIdx = h.readFreeIdx[:len(h.readFreeIdx)-1]
		h.readBufs[buf] = bufState{expect: expectBytes}
		if onDone != nil {
			b := buf
			h.readBufs[buf].onDone = func() { onDone(b) }
		}
		fn(buf)
	})
}

// DeviceWriteChunk is called by device-side producers (flash interface,
// network interface, in-store processor) as interleaved data lands in
// read buffer buf. The per-buffer FIFO gates DMA bursts: only when
// DMABurst contiguous bytes are queued (or the page is complete) does
// the DMA engine issue a burst over PCIe. Panics on a buffer index
// that AcquireReadBuffer never granted: that is a caller bug.
func (h *HostIf) DeviceWriteChunk(buf, n int, last bool) {
	if buf < 0 || buf >= len(h.readBufs) {
		panic(fmt.Errorf("%w: %d", ErrBadBuffer, buf))
	}
	st := &h.readBufs[buf]
	st.fifo += n
	if last {
		st.lastSeen = true
	}
	h.pump(buf)
}

// pump drains a read buffer's FIFO into PCIe bursts.
func (h *HostIf) pump(buf int) {
	st := &h.readBufs[buf]
	for st.fifo >= h.cfg.DMABurst || (st.lastSeen && st.fifo > 0) {
		burst := h.cfg.DMABurst
		if burst > st.fifo {
			burst = st.fifo
		}
		st.fifo -= burst
		st.dmaQueued += burst
		b := burst
		h.toHost.Transfer(b, func() {
			st.dmaDone += b
			h.maybeComplete(buf)
		})
	}
	h.maybeComplete(buf)
}

// maybeComplete raises the completion interrupt once the whole page
// has landed.
func (h *HostIf) maybeComplete(buf int) {
	st := &h.readBufs[buf]
	if !st.lastSeen || st.fifo != 0 || st.dmaDone != st.dmaQueued || st.onDone == nil {
		return
	}
	done := st.onDone
	st.onDone = nil
	h.PagesUp.Inc()
	h.Interrupts.Inc()
	h.eng.After(h.cfg.InterruptLatency, done)
}

// ReleaseReadBuffer returns a buffer to the free queue. Panics on a
// buffer index that AcquireReadBuffer never granted.
func (h *HostIf) ReleaseReadBuffer(buf int) {
	if buf < 0 || buf >= len(h.readBufs) {
		panic(fmt.Errorf("%w: %d", ErrBadBuffer, buf))
	}
	h.readBufs[buf] = bufState{}
	h.readFreeIdx = append(h.readFreeIdx, buf)
	h.readFree.Release(1)
}

// --- host -> device (write) path ------------------------------------

// AcquireWriteBuffer grants a free write-buffer index (the host then
// memcpys page data into it, which we charge to the caller's own CPU
// model, not here).
func (h *HostIf) AcquireWriteBuffer(fn func(buf int)) {
	h.writeFree.Acquire(1, func() { fn(0) })
}

// DeviceReadBuffer models the device DMA-reading size bytes from a
// host write buffer; done runs device-side when the data has crossed
// PCIe. Write-path DMA is a contiguous stream (paper: "straightforward
// to parallelize"), so no per-buffer FIFO gating is needed.
func (h *HostIf) DeviceReadBuffer(size int, done func()) {
	h.fromHost.Transfer(size, func() {
		h.PagesDown.Inc()
		done()
	})
}

// ReleaseWriteBuffer returns a write buffer to the free queue.
func (h *HostIf) ReleaseWriteBuffer() {
	h.writeFree.Release(1)
}

// ToHostUtilization reports PCIe device-to-host utilization.
func (h *HostIf) ToHostUtilization() float64 { return h.toHost.Utilization() }

// ToHostBytes reports total bytes DMAed into host memory.
func (h *HostIf) ToHostBytes() int64 { return h.toHost.Transferred() }
