package hostif

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: for any sequence of chunk sizes summing to a page, exactly
// the page's bytes cross PCIe and exactly one completion interrupt
// fires.
func TestDMAConservationProperty(t *testing.T) {
	prop := func(sizesRaw []uint16) bool {
		eng := sim.NewEngine()
		h, err := New(eng, "p", DefaultConfig())
		if err != nil {
			return false
		}
		// Normalize chunk sizes to a positive total <= page size.
		var sizes []int
		total := 0
		for _, s := range sizesRaw {
			n := int(s%1500) + 1
			if total+n > 8192 {
				break
			}
			sizes = append(sizes, n)
			total += n
		}
		if len(sizes) == 0 {
			sizes = []int{100}
			total = 100
		}
		completions := 0
		h.AcquireReadBuffer(total, func(buf int) {
			completions++
			h.ReleaseReadBuffer(buf)
		}, func(buf int) {
			for i, n := range sizes {
				h.DeviceWriteChunk(buf, n, i == len(sizes)-1)
			}
		})
		eng.Run()
		return completions == 1 &&
			h.ToHostBytes() == int64(total) &&
			h.Interrupts.Value() == 1 &&
			h.FreeReadBuffers() == h.Config().ReadBuffers
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: buffer churn never loses or duplicates buffers.
func TestBufferPoolConservationProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		eng := sim.NewEngine()
		h, err := New(eng, "q", DefaultConfig())
		if err != nil {
			return false
		}
		var held []int
		for _, acquire := range ops {
			if acquire {
				h.AcquireReadBuffer(64, nil, func(buf int) {
					held = append(held, buf)
				})
				eng.Run()
			} else if len(held) > 0 {
				buf := held[len(held)-1]
				held = held[:len(held)-1]
				h.ReleaseReadBuffer(buf)
			}
		}
		// No duplicates among held buffers.
		seen := map[int]bool{}
		for _, b := range held {
			if seen[b] {
				return false
			}
			seen[b] = true
		}
		return h.FreeReadBuffers() == h.Config().ReadBuffers-len(held)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
