package hostif

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func newIf(t *testing.T) (*sim.Engine, *HostIf) {
	t.Helper()
	eng := sim.NewEngine()
	h, err := New(eng, "n0", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, h
}

func TestSinglePageReadPath(t *testing.T) {
	eng, h := newIf(t)
	var doneAt sim.Time = -1
	var gotBuf = -1
	h.AcquireReadBuffer(8192, func(buf int) {
		doneAt = eng.Now()
		gotBuf = buf
		h.ReleaseReadBuffer(buf)
	}, func(buf int) {
		// Device fills the buffer in 4 interleaved 2KB chunks.
		for i := 0; i < 4; i++ {
			h.DeviceWriteChunk(buf, 2048, i == 3)
		}
	})
	eng.Run()
	if doneAt < 0 {
		t.Fatal("completion never fired")
	}
	if gotBuf < 0 || gotBuf >= 128 {
		t.Fatalf("buffer index %d", gotBuf)
	}
	// 8192B at 1.6GB/s = 5.12us + PCIe latency + interrupt latency.
	min := sim.Time(8192 * 1000 / 1600)
	if doneAt < min {
		t.Fatalf("completed at %v, faster than PCIe allows (%v)", doneAt, min)
	}
	if h.PagesUp.Value() != 1 || h.Interrupts.Value() != 1 {
		t.Fatalf("counters: pages=%d interrupts=%d", h.PagesUp.Value(), h.Interrupts.Value())
	}
}

func TestDMABurstGating(t *testing.T) {
	// Chunks smaller than the burst threshold must not reach PCIe until
	// enough accumulate.
	eng, h := newIf(t)
	h.AcquireReadBuffer(1024, nil, func(buf int) {
		h.DeviceWriteChunk(buf, 100, false)
	})
	eng.Run()
	if h.ToHostBytes() != 0 {
		t.Fatalf("%d bytes crossed PCIe with only 100 in the FIFO (burst=512)", h.ToHostBytes())
	}
	// Completing the page flushes the partial burst.
	h.DeviceWriteChunk(0, 100, true)
	eng.Run()
	if h.ToHostBytes() != 200 {
		t.Fatalf("flush moved %d bytes, want 200", h.ToHostBytes())
	}
}

func TestInterleavedBuffersIndependent(t *testing.T) {
	// Data landing interleaved across two buffers must complete each
	// page independently (the vector-of-FIFOs property).
	eng, h := newIf(t)
	complete := map[int]bool{}
	fill := func(buf int) {}
	_ = fill
	var bufs []int
	for i := 0; i < 2; i++ {
		h.AcquireReadBuffer(4096, func(buf int) {
			complete[buf] = true
		}, func(buf int) {
			bufs = append(bufs, buf)
		})
	}
	eng.Run()
	if len(bufs) != 2 {
		t.Fatalf("acquired %d buffers", len(bufs))
	}
	// Interleave chunks; buffer B finishes first.
	a, b := bufs[0], bufs[1]
	h.DeviceWriteChunk(a, 2048, false)
	h.DeviceWriteChunk(b, 2048, false)
	h.DeviceWriteChunk(b, 2048, true)
	eng.Run()
	if !complete[b] || complete[a] {
		t.Fatalf("completion state a=%v b=%v, want only b", complete[a], complete[b])
	}
	h.DeviceWriteChunk(a, 2048, true)
	eng.Run()
	if !complete[a] {
		t.Fatal("buffer a never completed")
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	eng, h := newIf(t)
	// Take all 128 buffers.
	taken := 0
	for i := 0; i < 128; i++ {
		h.AcquireReadBuffer(8192, nil, func(buf int) { taken++ })
	}
	eng.Run()
	if taken != 128 {
		t.Fatalf("took %d of 128", taken)
	}
	queued := false
	h.AcquireReadBuffer(8192, nil, func(buf int) { queued = true })
	eng.Run()
	if queued {
		t.Fatal("129th acquire should wait")
	}
	h.ReleaseReadBuffer(5)
	eng.Run()
	if !queued {
		t.Fatal("released buffer not granted to waiter")
	}
}

func TestReadBandwidthCap(t *testing.T) {
	// Streaming many pages through the read path cannot exceed 1.6GB/s.
	eng, h := newIf(t)
	const pages = 200
	done := 0
	var feed func()
	feed = func() {
		h.AcquireReadBuffer(8192, func(buf int) {
			done++
			h.ReleaseReadBuffer(buf)
		}, func(buf int) {
			for c := 0; c < 4; c++ {
				h.DeviceWriteChunk(buf, 2048, c == 3)
			}
		})
	}
	for i := 0; i < pages; i++ {
		feed()
	}
	eng.Run()
	if done != pages {
		t.Fatalf("completed %d of %d", done, pages)
	}
	bw := float64(pages*8192) / eng.Now().Seconds()
	if bw > 1.6e9 {
		t.Fatalf("achieved %.2e B/s, above the PCIe cap", bw)
	}
	if bw < 1.4e9 {
		t.Fatalf("achieved %.2e B/s, PCIe should be nearly saturated", bw)
	}
}

func TestWritePath(t *testing.T) {
	eng, h := newIf(t)
	var deviceGot sim.Time = -1
	h.AcquireWriteBuffer(func(buf int) {
		// Host fills buffer (charged elsewhere), rings RPC, device pulls.
		h.RPC(func() {
			h.DeviceReadBuffer(8192, func() {
				deviceGot = eng.Now()
				h.ReleaseWriteBuffer()
			})
		})
	})
	eng.Run()
	if deviceGot < 0 {
		t.Fatal("device never received data")
	}
	// 8192B at 1.0GB/s = 8.192us minimum.
	if deviceGot < sim.Time(8192) {
		t.Fatalf("write landed at %v, faster than 1GB/s PCIe", deviceGot)
	}
	if h.PagesDown.Value() != 1 {
		t.Fatalf("PagesDown = %d", h.PagesDown.Value())
	}
}

func TestRPCAndSoftwareLatencies(t *testing.T) {
	eng, h := newIf(t)
	cfg := h.Config()
	var rpcAt, swAt sim.Time = -1, -1
	h.RPC(func() { rpcAt = eng.Now() })
	h.ChargeSoftware(func() { swAt = eng.Now() })
	eng.Run()
	if rpcAt != cfg.RPCLatency {
		t.Fatalf("RPC fired at %v, want %v", rpcAt, cfg.RPCLatency)
	}
	if swAt != cfg.SoftwareOverhead {
		t.Fatalf("software path fired at %v, want %v", swAt, cfg.SoftwareOverhead)
	}
}

func TestBadBufferIndex(t *testing.T) {
	_, h := newIf(t)
	mustPanicBadBuffer := func(name string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: bad buffer index accepted", name)
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrBadBuffer) {
				t.Fatalf("%s: panic %v, want ErrBadBuffer", name, r)
			}
		}()
		fn()
	}
	mustPanicBadBuffer("DeviceWriteChunk(-1)", func() { h.DeviceWriteChunk(-1, 10, false) })
	mustPanicBadBuffer("DeviceWriteChunk(999)", func() { h.DeviceWriteChunk(999, 10, false) })
	mustPanicBadBuffer("ReleaseReadBuffer(999)", func() { h.ReleaseReadBuffer(999) })
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, "x", Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
