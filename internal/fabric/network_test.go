package fabric

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func buildNet(t *testing.T, topo Topology, maxEP int) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := topo.Build(eng, DefaultConfig(), maxEP)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestPointToPointDelivery(t *testing.T) {
	eng, net := buildNet(t, Line(2, 1), 0)
	a, err := net.Node(0).BindEndpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Node(1).BindEndpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	var gotSrc NodeID = -1
	var gotSize int
	var gotPayload any
	b.OnReceive = func(src NodeID, size int, payload any) {
		gotSrc, gotSize, gotPayload = src, size, payload
	}
	if err := a.Send(1, 128, "hello", nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if gotSrc != 0 || gotSize != 128 || gotPayload != "hello" {
		t.Fatalf("received src=%d size=%d payload=%v", gotSrc, gotSize, gotPayload)
	}
}

func TestHopLatency(t *testing.T) {
	// A minimal (16-byte) message over k hops costs ~k * 0.48us plus
	// negligible serialization (paper Figure 11: 0.48us per hop).
	for hops := 1; hops <= 5; hops++ {
		eng, net := buildNet(t, Line(hops+1, 1), 0)
		src, _ := net.Node(0).BindEndpoint(0)
		dst, _ := net.Node(NodeID(hops)).BindEndpoint(0)
		var arrival sim.Time = -1
		dst.OnReceive = func(NodeID, int, any) { arrival = eng.Now() }
		if err := src.Send(NodeID(hops), 16, nil, nil); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		perHop := float64(arrival) / float64(hops) / 1000 // us
		if perHop < 0.45 || perHop > 0.65 {
			t.Fatalf("hops=%d: per-hop latency %.3fus, want ~0.5", hops, perHop)
		}
	}
}

func TestStreamBandwidth(t *testing.T) {
	// Streaming 2KB messages over 1 hop approaches the 8.2 Gbps
	// effective link bandwidth (paper Figure 11).
	eng, net := buildNet(t, Line(2, 1), 0)
	src, _ := net.Node(0).BindEndpoint(0)
	dst, _ := net.Node(1).BindEndpoint(0)
	const msgs = 2000
	const size = 2048
	received := 0
	dst.OnReceive = func(NodeID, int, any) { received++ }
	// Windowed sending: keep 8 in flight via onAccepted chaining.
	sent := 0
	var pump func()
	pump = func() {
		if sent >= msgs {
			return
		}
		sent++
		if err := src.Send(1, size, nil, pump); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 8 && sent < msgs; i++ {
		pump()
	}
	eng.Run()
	if received != msgs {
		t.Fatalf("received %d of %d", received, msgs)
	}
	gbps := float64(msgs*size*8) / eng.Now().Seconds() / 1e9
	if gbps < 7.5 || gbps > 8.2 {
		t.Fatalf("stream bandwidth %.2f Gbps, want ~8.0-8.2", gbps)
	}
}

func TestFIFOPerEndpointPair(t *testing.T) {
	// Messages from one endpoint to one destination must arrive in
	// order, over any topology.
	eng, net := buildNet(t, Mesh2D(3, 3), 2)
	src, _ := net.Node(0).BindEndpoint(1)
	dst, _ := net.Node(8).BindEndpoint(1)
	var got []int
	dst.OnReceive = func(_ NodeID, _ int, payload any) { got = append(got, payload.(int)) }
	for i := 0; i < 50; i++ {
		// Mixed sizes stress segmentation.
		size := 16 + (i%5)*700
		if err := src.Send(8, size, i, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestDifferentEndpointsMayDiverge(t *testing.T) {
	// With parallel lanes, different endpoints should use different
	// cables (deterministic per-endpoint routing distributes load).
	eng, net := buildNet(t, Ring(4, 2), 7)
	var eps []*Endpoint
	for i := 0; i < 8; i++ {
		ep, err := net.Node(0).BindEndpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Node(1).BindEndpoint(i); err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
	}
	for _, ep := range eps {
		for k := 0; k < 20; k++ {
			if err := ep.Send(1, 1024, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run()
	// Count cables with traffic from node 0 to node 1.
	busy := 0
	for _, u := range net.LinkUtilization() {
		if u > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d link directions carried traffic; endpoints did not spread", busy)
	}
}

func TestRouteDeterminism(t *testing.T) {
	// Two identical builds route identically.
	mk := func() [][]int {
		eng := sim.NewEngine()
		net, err := Mesh2D(4, 4).Build(eng, DefaultConfig(), 3)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]int
		for n := 0; n < net.Nodes(); n++ {
			for ep := 0; ep <= 3; ep++ {
				out = append(out, append([]int(nil), net.Node(NodeID(n)).routes[ep]...))
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("routes differ at %d/%d", i, j)
			}
		}
	}
}

func TestTokenBackpressureBounds(t *testing.T) {
	// A receiver that never drains... is not expressible (delivery is
	// immediate), but a long multi-hop chain with a slow far link still
	// bounds in-flight segments by the token depth per link.
	cfg := DefaultConfig()
	cfg.LinkTokens = 2
	eng := sim.NewEngine()
	net, err := Line(3, 1).Build(eng, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := net.Node(0).BindEndpoint(0)
	dst, _ := net.Node(2).BindEndpoint(0)
	got := 0
	dst.OnReceive = func(NodeID, int, any) { got++ }
	for i := 0; i < 100; i++ {
		if err := src.Send(2, 4096, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got != 100 {
		t.Fatalf("delivered %d of 100 under tight tokens", got)
	}
}

func TestEndToEndFlowControl(t *testing.T) {
	eng, net := buildNet(t, Line(2, 1), 0)
	src, _ := net.Node(0).BindEndpoint(0)
	dst, _ := net.Node(1).BindEndpoint(0)
	src.SetEndToEnd(2)
	order := []string{}
	dst.OnReceive = func(_ NodeID, _ int, p any) { order = append(order, p.(string)) }
	for _, m := range []string{"a", "b", "c", "d", "e"} {
		if err := src.Send(1, 256, m, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(order) != 5 {
		t.Fatalf("delivered %d of 5 with e2e window", len(order))
	}
	for i, m := range []string{"a", "b", "c", "d", "e"} {
		if order[i] != m {
			t.Fatalf("order %v", order)
		}
	}
}

func TestEndToEndLatencyCost(t *testing.T) {
	// E2E flow control must cost extra latency for a message burst
	// exceeding the window (the paper's stated trade-off).
	run := func(window int) sim.Time {
		eng, net := buildNet(t, Line(2, 1), 0)
		src, _ := net.Node(0).BindEndpoint(0)
		dst, _ := net.Node(1).BindEndpoint(0)
		if window > 0 {
			src.SetEndToEnd(window)
		}
		got := 0
		dst.OnReceive = func(NodeID, int, any) { got++ }
		for i := 0; i < 20; i++ {
			if err := src.Send(1, 512, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		if got != 20 {
			t.Fatalf("delivered %d", got)
		}
		return eng.Now()
	}
	without := run(0)
	with := run(1)
	if with <= without {
		t.Fatalf("e2e window=1 (%v) should be slower than disabled (%v)", with, without)
	}
}

func TestUnroutableDestination(t *testing.T) {
	eng, net := buildNet(t, Line(2, 1), 0)
	src, _ := net.Node(0).BindEndpoint(0)
	if err := src.Send(99, 16, nil, nil); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	_ = eng
}

func TestDisconnectedTopologyRejected(t *testing.T) {
	eng := sim.NewEngine()
	topo := Topology{Name: "split", Nodes: 4, Edges: [][2]int{{0, 1}, {2, 3}}}
	if _, err := topo.Build(eng, DefaultConfig(), 0); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestPortBudgetEnforced(t *testing.T) {
	// A 10-node star hub exceeds 8 ports.
	topo := DistributedStar(11, 1)
	if err := topo.Validate(8); err == nil {
		t.Fatal("over-budget topology validated")
	}
	// Figure 5 claim: these all fit in 8 ports per node.
	for _, topo := range []Topology{
		Ring(20, 4),
		Mesh2D(4, 5),
		DistributedStar(20, 4),
		Line(20, 4),
	} {
		if err := topo.Validate(8); err != nil {
			t.Errorf("topology %s should fit 8 ports: %v", topo.Name, err)
		}
	}
}

func TestTopologyEncodeDecode(t *testing.T) {
	topo := Ring(5, 2)
	b, err := topo.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTopology(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != topo.Name || got.Nodes != topo.Nodes || len(got.Edges) != len(topo.Edges) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, topo)
	}
	if _, err := DecodeTopology([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestDuplicateEndpointRejected(t *testing.T) {
	_, net := buildNet(t, Line(2, 1), 0)
	if _, err := net.Node(0).BindEndpoint(3); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Node(0).BindEndpoint(3); !errors.Is(err, ErrBadEndpoint) {
		t.Fatalf("err = %v, want ErrBadEndpoint", err)
	}
}

func TestSetRouteOverride(t *testing.T) {
	// Force endpoint 5's traffic around the long way of a ring and
	// check it still arrives (and in order).
	eng, net := buildNet(t, Ring(4, 1), 5)
	src, _ := net.Node(0).BindEndpoint(5)
	dst, _ := net.Node(1).BindEndpoint(5)
	// Node 0's port toward node 3 (the long way to node 1).
	var portTo3 = -1
	for p, peer := range net.Node(0).portPeer {
		if peer == 3 {
			portTo3 = p
		}
	}
	if portTo3 < 0 {
		t.Fatal("ring wiring missing 0-3 cable")
	}
	if err := net.Node(0).SetRoute(5, 1, portTo3); err != nil {
		t.Fatal(err)
	}
	var arrival sim.Time
	dst.OnReceive = func(NodeID, int, any) { arrival = eng.Now() }
	if err := src.Send(1, 16, nil, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 3 hops instead of 1: > 1.2us.
	if arrival < 1200 {
		t.Fatalf("override ignored: arrival %v implies short path", arrival)
	}
}

func TestLocalDelivery(t *testing.T) {
	eng, net := buildNet(t, Line(2, 1), 0)
	ep, _ := net.Node(0).BindEndpoint(0)
	var got any
	ep.OnReceive = func(_ NodeID, _ int, p any) { got = p }
	if err := ep.Send(0, 64, "self", nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != "self" {
		t.Fatal("local (internal switch) delivery failed")
	}
	if net.SegsMoved.Value() != 0 {
		t.Fatal("local delivery used the external network")
	}
}

// Property: on random connected ring-with-chords topologies, messages
// between random endpoint pairs always arrive, in FIFO order per pair.
func TestFIFODeliveryProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 3 + rng.Intn(6)
		topo := Ring(n, 1)
		// Add up to 3 random chords within port budget.
		for i := 0; i < 3; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				topo.Edges = append(topo.Edges, [2]int{a, b})
			}
		}
		if topo.Validate(8) != nil {
			return true // skip over-budget layouts
		}
		eng := sim.NewEngine()
		net, err := topo.Build(eng, DefaultConfig(), 3)
		if err != nil {
			return false
		}
		type pair struct{ src, dst NodeID }
		wantOrder := map[pair][]int{}
		gotOrder := map[pair][]int{}
		eps := make([][]*Endpoint, n)
		for v := 0; v < n; v++ {
			for e := 0; e <= 3; e++ {
				ep, err := net.Node(NodeID(v)).BindEndpoint(e)
				if err != nil {
					return false
				}
				v := NodeID(v)
				ep.OnReceive = func(src NodeID, _ int, payload any) {
					k := pair{src, v}
					gotOrder[k] = append(gotOrder[k], payload.(int))
				}
				eps[v] = append(eps[v], ep)
			}
		}
		for i := 0; i < 60; i++ {
			s := NodeID(rng.Intn(n))
			d := NodeID(rng.Intn(n))
			e := rng.Intn(4)
			if s == d {
				continue
			}
			wantOrder[pair{s, d}] = append(wantOrder[pair{s, d}], i)
			if err := eps[s][e].Send(d, 16+rng.Intn(3000), i, nil); err != nil {
				return false
			}
		}
		eng.Run()
		// Every message delivered; per-pair arrivals are a merge of the
		// per-endpoint FIFO streams, so each pair's multiset matches and
		// per-endpoint order is preserved. We verify the multiset here
		// (per-endpoint order is covered by TestFIFOPerEndpointPair).
		for k, want := range wantOrder {
			got := gotOrder[k]
			if len(got) != len(want) {
				return false
			}
			seen := map[int]bool{}
			for _, v := range got {
				seen[v] = true
			}
			for _, v := range want {
				if !seen[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
