package fabric

import (
	"testing"

	"repro/internal/sim"
)

// TestSharedLinkContention: two streams crossing the same cable get
// half the bandwidth each; the link arbitration is fair.
func TestSharedLinkContention(t *testing.T) {
	eng := sim.NewEngine()
	// 0 -> 2 and 1 -> 2 both traverse the 2-3 cable in a line 0-1 only
	// if wired so; build a Y: 0-2, 1-2, 2-3; both send to 3.
	topo := Topology{Name: "y", Nodes: 4, Edges: [][2]int{{0, 2}, {1, 2}, {2, 3}}}
	net, err := topo.Build(eng, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 800
	const size = 2048
	recv := map[NodeID]int{}
	dst0, _ := net.Node(3).BindEndpoint(0)
	dst1, _ := net.Node(3).BindEndpoint(1)
	handler := func(src NodeID, _ int, _ any) { recv[src]++ }
	dst0.OnReceive = handler
	dst1.OnReceive = handler

	for i, srcNode := range []NodeID{0, 1} {
		ep, err := net.Node(srcNode).BindEndpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		sent := 0
		var pump func()
		pump = func() {
			if sent >= msgs {
				return
			}
			sent++
			if err := ep.Send(3, size, nil, pump); err != nil {
				t.Error(err)
			}
		}
		for k := 0; k < 8; k++ {
			pump()
		}
	}
	eng.Run()
	if recv[0]+recv[1] != 2*msgs {
		t.Fatalf("delivered %d of %d", recv[0]+recv[1], 2*msgs)
	}
	// Aggregate over the shared cable == one link's worth.
	gbps := float64(2*msgs*size*8) / eng.Now().Seconds() / 1e9
	if gbps < 7.4 || gbps > 8.3 {
		t.Fatalf("shared-link aggregate %.2f Gbps, want ~8 (one cable)", gbps)
	}
	// Fairness: neither stream starves (token FIFO interleaves them).
	ratio := float64(recv[0]) / float64(recv[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair sharing: %d vs %d", recv[0], recv[1])
	}
}

// TestDisjointPathsNoInterference: streams on disjoint paths must not
// affect each other at all.
func TestDisjointPathsNoInterference(t *testing.T) {
	run := func(both bool) sim.Time {
		eng := sim.NewEngine()
		// Two separate cables: 0-1 and 2-3.
		topo := Topology{Name: "pair", Nodes: 4, Edges: [][2]int{{0, 1}, {2, 3}, {1, 2}}}
		net, err := topo.Build(eng, DefaultConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		send := func(src, dst NodeID, ep int) {
			s, err := net.Node(src).BindEndpoint(ep)
			if err != nil {
				t.Fatal(err)
			}
			d, err := net.Node(dst).BindEndpoint(ep)
			if err != nil {
				t.Fatal(err)
			}
			d.OnReceive = func(NodeID, int, any) {}
			sent := 0
			var pump func()
			pump = func() {
				if sent >= 300 {
					return
				}
				sent++
				if err := s.Send(dst, 2048, nil, pump); err != nil {
					t.Error(err)
				}
			}
			for k := 0; k < 4; k++ {
				pump()
			}
		}
		send(0, 1, 0)
		if both {
			send(2, 3, 1)
		}
		eng.Run()
		return eng.Now()
	}
	alone := run(false)
	together := run(true)
	if together != alone {
		t.Fatalf("disjoint stream changed timing: %v vs %v", together, alone)
	}
}
