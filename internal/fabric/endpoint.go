package fabric

import (
	"fmt"
)

// Endpoint is a logical endpoint (paper §3.2.1): a virtual channel over
// the shared physical network with FIFO send/receive semantics. Each
// endpoint has a cluster-unique index (indexes need not be contiguous)
// and exists on every node that binds it.
type Endpoint struct {
	node  *Node
	index int

	// OnReceive is invoked for every delivered message with the source
	// node, the payload size in bytes, and the payload itself.
	OnReceive func(src NodeID, size int, payload any)

	// e2eWindow > 0 enables end-to-end flow control: at most window
	// unacknowledged messages per destination. Zero disables it for the
	// low-latency configuration the paper describes (§3.2.3).
	// Per-destination state is dense (indexed by NodeID — the node
	// population is fixed at Network construction) so the send hot path
	// never hashes or allocates map cells.
	e2eWindow int
	credits   []int          // remaining e2e credits toward each dst
	blocked   [][]blockedMsg // sends waiting on a credit, per dst

	// partial[src] accumulates payload bytes of the in-flight inbound
	// message from src (reassembly; segments arrive contiguously).
	partial []int

	// stats. Sent and Received count user messages only, so a fully
	// delivered workload always satisfies Sent == peer.Received even
	// under end-to-end flow control; the credit-return control
	// messages that e2e mode generates are tallied separately.
	Sent     int64
	Received int64
	// CtrlSent / CtrlReceived count end-to-end credit-return control
	// messages (sent by the receiver of a wantAck message, consumed by
	// its sender). They never appear in Sent/Received/Delivered.
	CtrlSent     int64
	CtrlReceived int64
}

// blockedMsg is a send parked behind exhausted e2e credits, stored by
// value so queuing does not allocate a closure per blocked message.
type blockedMsg struct {
	size       int
	payload    any
	onAccepted func()
}

// BindEndpoint creates (or returns an error for a duplicate) logical
// endpoint idx on this node.
func (nd *Node) BindEndpoint(idx int) (*Endpoint, error) {
	if _, dup := nd.endpoints[idx]; dup {
		return nil, fmt.Errorf("%w: %d on node %d", ErrBadEndpoint, idx, nd.id)
	}
	n := len(nd.net.nodes)
	ep := &Endpoint{
		node:    nd,
		index:   idx,
		credits: make([]int, n),
		blocked: make([][]blockedMsg, n),
		partial: make([]int, n),
	}
	nd.endpoints[idx] = ep
	return ep, nil
}

// Endpoint returns the bound endpoint idx, or nil.
func (nd *Node) Endpoint(idx int) *Endpoint { return nd.endpoints[idx] }

// Index returns the endpoint's cluster-wide index.
func (ep *Endpoint) Index() int { return ep.index }

// Node returns the node this endpoint instance lives on.
func (ep *Endpoint) Node() *Node { return ep.node }

// SetEndToEnd enables end-to-end flow control with the given window
// (messages in flight per destination), or disables it with 0.
func (ep *Endpoint) SetEndToEnd(window int) {
	ep.e2eWindow = window
	for i := range ep.credits {
		ep.credits[i] = window
	}
}

// Send transmits a message of size payload bytes to the endpoint with
// the same index on node dst. onAccepted (optional) fires when the
// local send buffer is free — the sender-side backpressure signal.
// Messages to the same destination arrive in send order.
//
//simlint:hotpath
func (ep *Endpoint) Send(dst NodeID, size int, payload any, onAccepted func()) error {
	if int(dst) < 0 || int(dst) >= len(ep.node.net.nodes) {
		//simlint:allow hotpath (caller-bug error path, not steady state)
		return fmt.Errorf("%w: destination %d", ErrNoRoute, dst)
	}
	if size < 0 {
		//simlint:allow hotpath (caller-bug error path, not steady state)
		return fmt.Errorf("fabric: negative size %d", size)
	}
	if ep.e2eWindow > 0 {
		if ep.credits[dst] == 0 {
			//simlint:allow hotpath (e2e-blocked backlog growth is amortized; the per-dst queue retains capacity)
			ep.blocked[dst] = append(ep.blocked[dst], blockedMsg{size: size, payload: payload, onAccepted: onAccepted})
			return nil
		}
		ep.credits[dst]--
		ep.transmitMsg(dst, size, payload, onAccepted, false, true)
		return nil
	}
	ep.transmitMsg(dst, size, payload, onAccepted, false, false)
	return nil
}

// transmitMsg segments and injects one message. Control messages
// (e2e credit returns) are invisible to the user-message stats: they
// are link plumbing, not payload traffic, and counting them in Sent
// made Sent != Received even when every user message arrived.
// Segments come from the network's recycle pool, so the steady-state
// send path allocates nothing.
//
//simlint:hotpath
func (ep *Endpoint) transmitMsg(dst NodeID, size int, payload any, onAccepted func(), ctrl, wantAck bool) {
	mtu := ep.node.net.cfg.MTU
	if ctrl {
		ep.CtrlSent++
	} else {
		ep.Sent++
	}

	remaining := size
	for {
		segBytes := remaining
		if segBytes > mtu {
			segBytes = mtu
		}
		last := remaining-segBytes == 0
		seg := ep.node.net.getSeg()
		seg.src, seg.dst, seg.ep = ep.node.id, dst, ep.index
		seg.last, seg.payload, seg.msgBytes = last, segBytes, size
		seg.ctrl, seg.wantAck = ctrl, wantAck
		if last {
			seg.body = payload
			seg.onAcc = onAccepted
		}
		if err := ep.node.inject(seg); err != nil {
			panic(fmt.Sprintf("fabric: inject failed after route check: %v", err))
		}
		remaining -= segBytes
		if last {
			break
		}
	}
}

// receiveSegment reassembles inbound segments; segments of one message
// arrive contiguously in order because routing is deterministic and
// links are FIFO.
//
//simlint:hotpath
func (ep *Endpoint) receiveSegment(seg *segment) {
	if seg.ctrl {
		// Credit return: unblock one queued send toward seg.src.
		ep.CtrlReceived++
		ep.credits[seg.src]++
		if q := ep.blocked[seg.src]; len(q) > 0 {
			b := q[0]
			q[0] = blockedMsg{}
			ep.blocked[seg.src] = q[1:]
			ep.credits[seg.src]--
			ep.transmitMsg(seg.src, b.size, b.payload, b.onAccepted, false, true)
		}
		return
	}
	ep.partial[seg.src] += seg.payload
	if !seg.last {
		return
	}
	ep.partial[seg.src] = 0
	ep.Received++
	if seg.wantAck {
		// Return a credit to the sender as a small control message.
		ep.transmitMsg(seg.src, ep.node.net.cfg.HeaderBytes, nil, nil, true, false)
	}
	if ep.OnReceive != nil {
		ep.OnReceive(seg.src, seg.msgBytes, seg.body)
	}
}
