// Package fabric models BlueDBM's integrated storage network (paper
// §3.2): a packet-switched mesh of storage devices connected by
// high-speed serial links, with
//
//   - a link layer using token-based (credit) flow control, so packets
//     are never dropped and backpressure propagates (§3.2.2);
//   - external switches that forward packets hop by hop without a
//     separate router box, and internal switches that deliver traffic
//     to local components (§3.2, Figure 4);
//   - deterministic per-endpoint routing: all packets from one logical
//     endpoint to one destination take the same path, preserving FIFO
//     order without completion buffers, while different endpoints may
//     spread over different paths (§3.2.3, Figure 6);
//   - logical endpoints with virtual-channel semantics and optional
//     end-to-end flow control (§3.2.1, §3.2.3).
//
// Links model the paper's 10 Gbps serial transceivers: 0.48 µs per hop
// and ~8.2 Gbps effective payload bandwidth after 8b/10b and protocol
// overhead (§5.2, Figure 11).
package fabric

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Fabric errors.
var (
	ErrNoRoute      = errors.New("fabric: no route to destination")
	ErrPortsFull    = errors.New("fabric: node has no free ports")
	ErrBadEndpoint  = errors.New("fabric: endpoint index already in use")
	ErrNotConnected = errors.New("fabric: topology is not connected")
)

// NodeID numbers a storage node in the cluster.
type NodeID int

// Config sets the physical parameters of every link in the network.
type Config struct {
	// LinkBytesPerSec is the effective payload bandwidth of one link
	// (wire rate minus encoding/protocol overhead). The paper's links
	// run 10 Gbps on the wire and sustain 8.2 Gbps of payload.
	LinkBytesPerSec int64
	// HopLatency is the switch traversal + wire propagation per hop.
	HopLatency sim.Time
	// InternalLatency is the internal-switch delivery latency for
	// traffic terminating at (or sourced by) the local node.
	InternalLatency sim.Time
	// HeaderBytes is the per-segment header carried on the wire.
	HeaderBytes int
	// MTU is the maximum payload bytes per wire segment. Larger sends
	// are cut into MTU segments, which pipeline across hops the way the
	// hardware streams flits (cut-through-like behaviour).
	MTU int
	// LinkTokens is the credit depth per link direction: how many
	// segments the receiver can buffer. Token exhaustion backpressures
	// the sender (§3.2.2). Each direction additionally carries one
	// reserved forwarding credit that only in-transit segments may
	// consume (bubble flow control): a source injection must leave at
	// least one credit free, so a cycle of saturated links — a ring at
	// full load — always keeps a bubble that lets forwarded segments
	// drain instead of deadlocking on the hold-and-wait between an
	// inbound and an outbound credit.
	LinkTokens int
	// PortsPerNode bounds the fan-out, 8 in the paper's hardware.
	PortsPerNode int
}

// DefaultConfig matches the paper's implementation (§5.2).
func DefaultConfig() Config {
	return Config{
		LinkBytesPerSec: 1_025_000_000, // 8.2 Gbps effective
		HopLatency:      480 * sim.Nanosecond,
		InternalLatency: 100 * sim.Nanosecond,
		HeaderBytes:     8,
		MTU:             1024,
		LinkTokens:      16,
		PortsPerNode:    8,
	}
}

// segment is the wire unit: one MTU-or-smaller piece of a message.
// Segments of one message arrive contiguously in order (routing is
// deterministic per endpoint and links are FIFO), so no sequence
// number is needed for reassembly.
//
// Segments are pooled per Network (getSeg/putSeg) and carry their
// continuation callbacks pre-bound: one segment traverses inject →
// transmit → arrive* → deliver entirely through the five closures
// built once at pool-entry creation, so the steady-state send path —
// including the cache tier's invalidation broadcasts — performs zero
// allocations.
//
//simlint:pool get=getSeg put=putSeg
type segment struct {
	src, dst NodeID
	ep       int  // logical endpoint index
	last     bool // final segment of its message
	payload  int  // payload bytes in this segment
	msgBytes int  // total payload bytes of the message
	body     any  // user payload; carried on the last segment
	ctrl     bool // end-to-end credit return, bypasses e2e windows
	wantAck  bool // sender runs e2e flow control; return a credit

	// traversal state, rebound at each step
	net     *Network
	curNode *Node     // node currently holding the segment
	in      *halfLink // link the segment arrived on (credit held)
	out     *halfLink // link the segment will leave on
	onAcc   func()    // sender's onAccepted; last segment only

	// pre-bound continuations (see getSeg)
	injGrantFn func() // injection credit granted
	fwdGrantFn func() // forwarding credit granted
	arriveFn   func() // wire transfer finished
	deliverFn  func() // internal switch delivered terminal segment
	localFn    func() // internal switch delivered same-node segment
}

// getSeg pops a recycled segment, or builds one with its five
// continuations bound to it. The closures read the segment's traversal
// fields at fire time, so one set serves every flight of the segment.
//
//simlint:hotpath
func (n *Network) getSeg() *segment {
	if len(n.segFree) > 0 {
		seg := n.segFree[len(n.segFree)-1]
		n.segFree[len(n.segFree)-1] = nil
		n.segFree = n.segFree[:len(n.segFree)-1]
		return seg
	}
	//simlint:allow hotpath (pool-miss path: the segment and its five bound callbacks are built once and recycled via putSeg forever after)
	seg := &segment{net: n}
	//simlint:allow hotpath (bound once per pooled segment lifetime, not per send)
	seg.injGrantFn = func() {
		if seg.onAcc != nil {
			seg.onAcc()
		}
		seg.curNode.transmit(seg)
	}
	//simlint:allow hotpath (bound once per pooled segment lifetime, not per send)
	seg.fwdGrantFn = func() {
		seg.in.credits.release()
		seg.curNode.transmit(seg)
	}
	//simlint:allow hotpath (bound once per pooled segment lifetime, not per send)
	seg.arriveFn = func() {
		seg.out.to.arrive(seg)
	}
	//simlint:allow hotpath (bound once per pooled segment lifetime, not per send)
	seg.deliverFn = func() {
		in := seg.in // deliver recycles seg; read the credit first
		seg.curNode.deliver(seg)
		in.credits.release()
	}
	//simlint:allow hotpath (bound once per pooled segment lifetime, not per send)
	seg.localFn = func() {
		acc := seg.onAcc // deliver recycles seg; read the ack first
		seg.curNode.deliver(seg)
		if acc != nil {
			acc()
		}
	}
	return seg
}

// putSeg recycles a delivered (or dropped) segment. The caller must
// guarantee no outstanding reference — every continuation of the
// segment's current flight has fired or will never fire.
//
//simlint:hotpath
func (n *Network) putSeg(seg *segment) {
	seg.body = nil
	seg.onAcc = nil
	seg.curNode = nil
	seg.in, seg.out = nil, nil
	n.segFree = append(n.segFree, seg)
}

// halfLink is one direction of a physical link.
type halfLink struct {
	pipe    *sim.Pipe
	credits *linkCredits
	to      *Node
	toPort  int
}

// linkCredits is one link direction's credit store, implementing
// bubble flow control: capacity LinkTokens+1, where the extra credit
// is reserved for forwarded (in-transit) segments. A source injection
// must see two free credits and takes one, so it can never consume
// the last slot; a forwarder may take it. Waiters are served from ONE
// FIFO queue — the fairness property of plain credit flow control —
// with exactly one exception: when only the reserved credit remains
// and the queue head is an injection (which may not touch it), the
// first waiting forwarder overtakes it. A waiting forwarder holds a
// credit on its inbound link (hold-and-wait), so letting a stuck
// injection block it would reintroduce the cyclic-dependency deadlock
// the reserve exists to break; everywhere above the reserve, strict
// FIFO keeps injections live under sustained transit load (at the
// degenerate LinkTokens=1 there is no headroom above the reserve, so
// saturating transit lawfully monopolizes the link until it idles).
// Grants within each class stay in order, so per-flow segment
// ordering is unaffected (a flow only ever injects at its source and
// only ever forwards at transit nodes).
// The waiter queue is a head-indexed ring over one backing slice:
// popping advances head instead of reslicing, so the slice's capacity
// is reused forever and steady-state enqueue/serve never allocates
// (reslicing `q = q[1:]` would walk the backing array forward until
// every append reallocates).
type linkCredits struct {
	free int
	q    []linkWaiter
	head int // index of the queue front within q
}

type linkWaiter struct {
	fwd bool // forwarder (needs 1 free) vs injection (needs 2)
	fn  func()
}

//simlint:hotpath
func (lc *linkCredits) acquireFwd(fn func()) { lc.enqueue(linkWaiter{fwd: true, fn: fn}) }

//simlint:hotpath
func (lc *linkCredits) acquireInj(fn func()) { lc.enqueue(linkWaiter{fwd: false, fn: fn}) }

//simlint:hotpath
func (lc *linkCredits) enqueue(w linkWaiter) {
	if lc.head > 0 && lc.head == len(lc.q) {
		// Drained ring: rewind to the front of the backing array.
		lc.q = lc.q[:0]
		lc.head = 0
	}
	lc.q = append(lc.q, w)
	lc.serve()
}

// release returns one credit and serves waiters.
//
//simlint:hotpath
func (lc *linkCredits) release() {
	lc.free++
	lc.serve()
}

// need is the free-credit threshold to grant w (both take one).
func (w linkWaiter) need() int {
	if w.fwd {
		return 1
	}
	return 2
}

//simlint:hotpath
func (lc *linkCredits) serve() {
	for lc.head < len(lc.q) {
		head := lc.q[lc.head]
		if lc.free >= head.need() {
			lc.q[lc.head] = linkWaiter{}
			lc.head++
			lc.free--
			head.fn()
			continue
		}
		// Head is an injection and only the reserved credit remains:
		// the first waiting forwarder may take it past the head.
		if !head.fwd && lc.free == 1 {
			for i := lc.head + 1; i < len(lc.q); i++ {
				if lc.q[i].fwd {
					w := lc.q[i]
					copy(lc.q[i:], lc.q[i+1:])
					lc.q[len(lc.q)-1] = linkWaiter{}
					lc.q = lc.q[:len(lc.q)-1]
					lc.free--
					w.fn()
					break
				}
			}
		}
		return
	}
	if lc.head > 0 {
		lc.q = lc.q[:0]
		lc.head = 0
	}
}

// Link is a full-duplex cable between two node ports.
type Link struct {
	a, b   *Node
	ab, ba *halfLink
	aPort  int
	bPort  int
}

// Network is the cluster-wide fabric.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	nodes []*Node
	links []*Link

	// segFree recycles wire segments and their bound continuations
	// (getSeg/putSeg); the population converges on the peak number of
	// segments simultaneously in flight.
	segFree []*segment

	// stats
	Delivered  sim.Counter
	SegsMoved  sim.Counter
	BytesMoved sim.Counter
}

// Node is one storage device's network personality: its ports, its
// switch, and its logical endpoints.
type Node struct {
	net       *Network
	id        NodeID
	ports     []*halfLink // outgoing half-links by port index; nil = free
	portPeer  []NodeID    // neighbor on each port, -1 = free
	endpoints map[int]*Endpoint
	// routes[ep][dst] = output port. Endpoint key DefaultEP (-1) holds
	// default routes used by endpoints with no specific entry.
	routes map[int][]int
}

// DefaultEP is the routes-table key holding a node's default routes:
// SetRoute(DefaultEP, dst, port) configures the route every endpoint
// without a private entry for dst will use.
const DefaultEP = -1

// New creates a network with n nodes and no links.
func New(eng *sim.Engine, cfg Config, n int) *Network {
	net := &Network{eng: eng, cfg: cfg}
	for i := 0; i < n; i++ {
		node := &Node{
			net:       net,
			id:        NodeID(i),
			ports:     make([]*halfLink, cfg.PortsPerNode),
			portPeer:  make([]NodeID, cfg.PortsPerNode),
			endpoints: make(map[int]*Endpoint),
			routes:    make(map[int][]int),
		}
		for p := range node.portPeer {
			node.portPeer[p] = -1
		}
		net.nodes = append(net.nodes, node)
	}
	return net
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.nodes) }

// Node returns node i.
func (n *Network) Node(i NodeID) *Node { return n.nodes[i] }

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// Links returns the number of physical cables.
func (n *Network) Links() int { return len(n.links) }

// Connect cables nodes a and b together using their lowest free ports.
// Multiple parallel cables between the same pair are allowed (the
// paper's ring uses 4 lanes between neighbors).
func (n *Network) Connect(a, b NodeID) error {
	na, nb := n.nodes[a], n.nodes[b]
	pa, pb := na.freePort(), nb.freePort()
	if pa < 0 {
		return fmt.Errorf("%w: node %d", ErrPortsFull, a)
	}
	if pb < 0 {
		return fmt.Errorf("%w: node %d", ErrPortsFull, b)
	}
	mk := func(dir string, to *Node, toPort int) *halfLink {
		name := fmt.Sprintf("link%d-%d/%s", a, b, dir)
		return &halfLink{
			// +1 is the reserved forwarding credit (bubble flow
			// control); see linkCredits.
			pipe:    sim.NewPipe(n.eng, name, n.cfg.LinkBytesPerSec, n.cfg.HopLatency),
			credits: &linkCredits{free: n.cfg.LinkTokens + 1},
			to:      to,
			toPort:  toPort,
		}
	}
	l := &Link{a: na, b: nb, aPort: pa, bPort: pb}
	l.ab = mk("ab", nb, pb)
	l.ba = mk("ba", na, pa)
	na.ports[pa] = l.ab
	na.portPeer[pa] = b
	nb.ports[pb] = l.ba
	nb.portPeer[pb] = a
	n.links = append(n.links, l)
	return nil
}

func (nd *Node) freePort() int {
	for i, p := range nd.ports {
		if p == nil {
			return i
		}
	}
	return -1
}

// ID returns the node's identity.
func (nd *Node) ID() NodeID { return nd.id }

// Neighbors returns the distinct node IDs wired to this node.
func (nd *Node) Neighbors() []NodeID {
	var out []NodeID
	seen := map[NodeID]bool{}
	for _, peer := range nd.portPeer {
		if peer >= 0 && !seen[peer] {
			seen[peer] = true
			out = append(out, peer)
		}
	}
	return out
}

// ComputeRoutes fills every node's routing tables with deterministic
// shortest-path routes. For each (endpoint, destination) the next hop
// is fixed, but different endpoints rotate across equal-cost ports, so
// traffic from different endpoints spreads over parallel links while
// each endpoint's stream stays FIFO (paper §3.2.3). maxEndpoint is the
// highest endpoint index routes are precomputed for.
func (n *Network) ComputeRoutes(maxEndpoint int) error {
	nn := len(n.nodes)
	// dist[d][v]: hop count from v to d.
	for d := 0; d < nn; d++ {
		dist := n.bfs(NodeID(d))
		for v := 0; v < nn; v++ {
			if v == d {
				continue
			}
			if dist[v] < 0 {
				return fmt.Errorf("%w: node %d cannot reach %d", ErrNotConnected, v, d)
			}
			// Candidate ports: neighbors one hop closer to d.
			node := n.nodes[v]
			var cands []int
			for p, peer := range node.portPeer {
				if peer >= 0 && dist[peer] == dist[v]-1 {
					cands = append(cands, p)
				}
			}
			if len(cands) == 0 {
				return fmt.Errorf("%w: node %d has no next hop to %d", ErrNotConnected, v, d)
			}
			for ep := 0; ep <= maxEndpoint; ep++ {
				tbl, ok := node.routes[ep]
				if !ok {
					tbl = make([]int, nn)
					for i := range tbl {
						tbl[i] = -1
					}
					node.routes[ep] = tbl
				}
				tbl[d] = cands[(ep+d)%len(cands)]
			}
		}
	}
	return nil
}

// bfs returns hop distances from every node to dst (-1 = unreachable).
func (n *Network) bfs(dst NodeID) []int {
	dist := make([]int, len(n.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, peer := range n.nodes[v].portPeer {
			if peer >= 0 && dist[peer] < 0 {
				dist[peer] = dist[v] + 1
				queue = append(queue, peer)
			}
		}
	}
	return dist
}

// SetRoute overrides the route for one (endpoint, destination) pair on
// a node — the "routing configured dynamically by the software" hook.
func (nd *Node) SetRoute(ep int, dst NodeID, port int) error {
	if port < 0 || port >= len(nd.ports) || nd.ports[port] == nil {
		return fmt.Errorf("fabric: node %d port %d is not cabled", nd.id, port)
	}
	tbl, ok := nd.routes[ep]
	if !ok {
		tbl = make([]int, len(nd.net.nodes))
		for i := range tbl {
			tbl[i] = -1
		}
		nd.routes[ep] = tbl
	}
	tbl[dst] = port
	return nil
}

// routePort resolves the output port for (ep, dst). Endpoints with no
// private entry fall back to the default table (endpoint key -1, the
// software-configured catch-all of SetRoute), and then — for
// compatibility with deployments that predate the default table — to
// endpoint 0's table.
func (nd *Node) routePort(ep int, dst NodeID) (int, error) {
	if tbl, ok := nd.routes[ep]; ok && tbl[dst] >= 0 {
		return tbl[dst], nil
	}
	if tbl, ok := nd.routes[DefaultEP]; ok && tbl[dst] >= 0 {
		return tbl[dst], nil
	}
	if tbl, ok := nd.routes[0]; ok && tbl[dst] >= 0 {
		return tbl[dst], nil
	}
	//simlint:allow hotcall (error path: allocates only when no route exists, which fails the injection anyway)
	return 0, fmt.Errorf("%w: node %d ep %d -> node %d", ErrNoRoute, nd.id, ep, dst)
}

// inject starts a segment from its source node: route lookup, token
// acquire, wire transfer. The segment's onAcc fires once the segment
// is on the wire (source-side buffer freed), which is the sender's
// backpressure.
//
//simlint:hotpath
func (nd *Node) inject(seg *segment) error {
	seg.curNode = nd
	if seg.dst == nd.id {
		// Local delivery through the internal switch only.
		nd.net.eng.After(nd.net.cfg.InternalLatency, seg.localFn)
		return nil
	}
	port, err := nd.routePort(seg.ep, seg.dst)
	if err != nil {
		return err
	}
	seg.out = nd.ports[port]
	// Bubble flow control: a source injection must leave the reserved
	// forwarding credit free. arrive() holds a segment's inbound
	// credit while it waits for the outbound one (hold-and-wait), so a
	// traffic cycle — a saturated ring — could otherwise fill every
	// link and deadlock; with injections barred from the last credit,
	// every cycle always retains a bubble and forwarded segments drain.
	seg.out.credits.acquireInj(seg.injGrantFn)
	return nil
}

// transmit puts a segment on its outbound half-link (seg.out); arrival
// is handled by the peer's external switch.
//
//simlint:hotpath
func (nd *Node) transmit(seg *segment) {
	wire := seg.payload + nd.net.cfg.HeaderBytes
	nd.net.SegsMoved.Inc()
	nd.net.BytesMoved.Add(int64(seg.payload))
	seg.out.pipe.Transfer(wire, seg.arriveFn)
}

// arrive runs the external switch at a receiving node: deliver locally
// or forward toward the destination. The inbound token (seg.in, the
// link just traversed) is held until the segment leaves this node, so
// congestion backpressures upstream.
//
//simlint:hotpath
func (nd *Node) arrive(seg *segment) {
	seg.in = seg.out
	seg.curNode = nd
	if seg.dst == nd.id {
		nd.net.eng.After(nd.net.cfg.InternalLatency, seg.deliverFn)
		return
	}
	port, err := nd.routePort(seg.ep, seg.dst)
	if err != nil {
		// No route mid-path is a wiring bug: drop loudly.
		panic(fmt.Sprintf("fabric: node %d cannot forward to %d: %v", nd.id, seg.dst, err))
	}
	seg.out = nd.ports[port]
	seg.out.credits.acquireFwd(seg.fwdGrantFn)
}

// deliver hands a segment to its endpoint and recycles it. OnReceive
// handlers that send from inside the callback draw fresh segments from
// the pool (this one is recycled only after receiveSegment returns).
//
//simlint:hotpath
func (nd *Node) deliver(seg *segment) {
	ep, ok := nd.endpoints[seg.ep]
	if !ok {
		// Delivery to an unbound endpoint is silently dropped, like
		// hardware writing to an unselected channel.
		nd.net.putSeg(seg)
		return
	}
	last, ctrl := seg.last, seg.ctrl
	ep.receiveSegment(seg)
	if last && !ctrl {
		nd.net.Delivered.Inc()
	}
	nd.net.putSeg(seg)
}

// LinkUtilization reports the utilization of each direction of every
// link, for load-distribution experiments.
func (n *Network) LinkUtilization() []float64 {
	var out []float64
	for _, l := range n.links {
		out = append(out, l.ab.pipe.Utilization(), l.ba.pipe.Utilization())
	}
	return out
}
