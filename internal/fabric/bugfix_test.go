package fabric

import (
	"testing"

	"repro/internal/sim"
)

// TestDefaultRouteTableConsulted: SetRoute(DefaultEP, ...) must steer
// endpoints that have no private routing table. Regression: routePort
// documented the -1 default table but only ever consulted endpoint
// 0's, so software-configured default routes were dead state.
func TestDefaultRouteTableConsulted(t *testing.T) {
	// Ring 0-1-2-3; route endpoint 9 (beyond the precomputed range)
	// from node 0 to node 1 the long way via the default table.
	eng, net := buildNet(t, Ring(4, 1), 3)
	src, err := net.Node(0).BindEndpoint(9)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := net.Node(1).BindEndpoint(9)
	if err != nil {
		t.Fatal(err)
	}
	// Default-route the long way around the ring: 0 -> 3 -> 2 -> 1.
	portTo := func(at NodeID, peer NodeID) int {
		for p, pp := range net.Node(at).portPeer {
			if pp == peer {
				return p
			}
		}
		t.Fatalf("ring wiring missing %d-%d cable", at, peer)
		return -1
	}
	for _, hop := range [][2]NodeID{{0, 3}, {3, 2}, {2, 1}} {
		if err := net.Node(hop[0]).SetRoute(DefaultEP, 1, portTo(hop[0], hop[1])); err != nil {
			t.Fatal(err)
		}
	}
	var arrival sim.Time = -1
	dst.OnReceive = func(NodeID, int, any) { arrival = eng.Now() }
	if err := src.Send(1, 16, nil, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if arrival < 0 {
		t.Fatal("message never arrived")
	}
	// 3+ hops instead of the direct 1: > 1.2us means the default table
	// was consulted.
	if arrival < 1200 {
		t.Fatalf("default route ignored: arrival %v implies the direct path", arrival)
	}

	// An endpoint's private entry still wins over the default table.
	srcP, _ := net.Node(0).BindEndpoint(2)
	dstP, _ := net.Node(1).BindEndpoint(2)
	var arrivalP sim.Time = -1
	start := eng.Now()
	dstP.OnReceive = func(NodeID, int, any) { arrivalP = eng.Now() - start }
	if err := srcP.Send(1, 16, nil, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if arrivalP < 0 || arrivalP > 1200 {
		t.Fatalf("private route lost to the default table: latency %v", arrivalP)
	}
}

// TestEndToEndStatsSymmetry: under e2e flow control the credit-return
// control traffic must not leak into the user-message stats.
// Regression: ctrl messages incremented Sent (and burned sequence
// numbers) but were excluded from Received/Delivered, so Sent !=
// Received even when every message arrived.
func TestEndToEndStatsSymmetry(t *testing.T) {
	eng, net := buildNet(t, Line(2, 1), 0)
	a, _ := net.Node(0).BindEndpoint(0)
	b, _ := net.Node(1).BindEndpoint(0)
	a.SetEndToEnd(1)
	b.SetEndToEnd(1)
	gotA, gotB := 0, 0
	a.OnReceive = func(NodeID, int, any) { gotA++ }
	b.OnReceive = func(NodeID, int, any) { gotB++ }
	for i := 0; i < 5; i++ {
		if err := a.Send(1, 256, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := b.Send(0, 256, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if gotB != 5 || gotA != 3 {
		t.Fatalf("delivered a->b %d/5, b->a %d/3", gotB, gotA)
	}
	if a.Sent != 5 || b.Received != 5 || b.Sent != 3 || a.Received != 3 {
		t.Fatalf("user stats asymmetric: a.Sent=%d b.Received=%d b.Sent=%d a.Received=%d",
			a.Sent, b.Received, b.Sent, a.Received)
	}
	// Every wantAck delivery produced exactly one credit return, and
	// they are tallied on the ctrl counters only.
	if b.CtrlSent != 5 || a.CtrlReceived != 5 || a.CtrlSent != 3 || b.CtrlReceived != 3 {
		t.Fatalf("ctrl stats: b.CtrlSent=%d a.CtrlReceived=%d a.CtrlSent=%d b.CtrlReceived=%d",
			b.CtrlSent, a.CtrlReceived, a.CtrlSent, b.CtrlReceived)
	}
	if net.Delivered.Value() != 8 {
		t.Fatalf("Delivered = %d, want 8 user messages", net.Delivered.Value())
	}
}

// TestTransitDoesNotStarveInjection: a node forwarding a transit
// stream must still get its own traffic onto the shared outbound
// link whenever the link has ANY slack. Forwarders may overtake a
// waiting injection only at the reserve boundary (free == 1); above
// it grants are FIFO across both classes, so the moment two credits
// are free the oldest waiter — injection included — is served. (At
// full saturation every released credit is claimed instantly and
// free never reaches two, so injections lawfully wait for slack:
// the same property as hardware bubble flow control, where a
// saturated ring admits no new packets.)
func TestTransitDoesNotStarveInjection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkTokens = 2
	eng := sim.NewEngine()
	// Line 0-1-2: node 0 streams to node 2 (transit through node 1)
	// at ~70% link utilization while node 1 sends its own messages to
	// node 2 over the same cable.
	net, err := Line(3, 1).Build(eng, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	transit, _ := net.Node(0).BindEndpoint(0)
	local, _ := net.Node(1).BindEndpoint(0)
	dst, _ := net.Node(2).BindEndpoint(0)
	recv := map[NodeID]int{}
	var localDone sim.Time = -1
	dst.OnReceive = func(src NodeID, _ int, _ any) {
		recv[src]++
		if src == 1 && recv[1] == 50 {
			localDone = eng.Now()
		}
	}
	// Paced transit: one 1 KB message per 1.4 us (a 1 KB segment
	// serializes in ~1 us), injected for the whole run.
	const transitMsgs = 400
	sent := 0
	var pace func()
	pace = func() {
		if sent >= transitMsgs {
			return
		}
		sent++
		if err := transit.Send(2, 1024, nil, nil); err != nil {
			t.Error(err)
		}
		eng.After(1400, pace)
	}
	pace()
	for i := 0; i < 50; i++ {
		if err := local.Send(2, 1024, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if recv[0] != transitMsgs || recv[1] != 50 {
		t.Fatalf("delivered transit %d/%d, local %d/50", recv[0], transitMsgs, recv[1])
	}
	// The local stream rides the slack: it must finish while the
	// transit stream is still running, not after it drains.
	if localDone < 0 || localDone >= eng.Now()*3/4 {
		t.Fatalf("local injection starved: finished at %v of %v", localDone, eng.Now())
	}
}

// TestRingSaturationNoDeadlock: cyclic-forwarding regression. A ring
// at LinkTokens=1 saturated with all-to-all traffic creates the
// textbook credit cycle: arrive() holds the inbound credit while
// waiting for the outbound one, so without the reserved forwarding
// credit (bubble flow control) every link direction fills and the
// network wedges with undelivered traffic.
func TestRingSaturationNoDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkTokens = 1
	eng := sim.NewEngine()
	const n = 8
	net, err := Ring(n, 1).Build(eng, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	const perPair = 20
	want := 0
	got := 0
	eps := make([]*Endpoint, n)
	for v := 0; v < n; v++ {
		ep, err := net.Node(NodeID(v)).BindEndpoint(0)
		if err != nil {
			t.Fatal(err)
		}
		ep.OnReceive = func(NodeID, int, any) { got++ }
		eps[v] = ep
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			for k := 0; k < perPair; k++ {
				// 1500-byte messages cut into two segments each, all
				// injected at once: maximal pressure on every link.
				if err := eps[s].Send(NodeID(d), 1500, nil, nil); err != nil {
					t.Fatal(err)
				}
				want++
			}
		}
	}
	eng.Run()
	// On deadlock the engine simply runs out of events with traffic
	// still queued, so this fails rather than hangs.
	if got != want {
		t.Fatalf("ring wedged: delivered %d of %d messages at LinkTokens=1", got, want)
	}
}
