package fabric

import (
	"testing"

	"repro/internal/sim"
)

// buildRing wires a 4-node ring with endpoint 0 bound everywhere.
func buildRing(t *testing.T) (*sim.Engine, *Network, []*Endpoint) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := Ring(4, 1).Build(eng, DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, net.Nodes())
	for i := range eps {
		ep, err := net.Node(NodeID(i)).BindEndpoint(0)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	return eng, net, eps
}

// The fabric send path — segmentation, injection, credit waits,
// per-hop forwarding, delivery — must not allocate in steady state.
// This is the path the cache tier's invalidation broadcasts ride, so
// an allocation here is a GC-pressure regression for every
// cross-node write.
func TestSendPathAllocFree(t *testing.T) {
	eng, _, eps := buildRing(t)
	var delivered int
	for _, ep := range eps {
		ep.OnReceive = func(src NodeID, size int, payload any) { delivered++ }
	}
	// Warm: segments pooled, credit rings and pipe pools grown, every
	// (endpoint, dst) route exercised — including multi-segment (MTU
	// crossing) and two-hop sends.
	for rep := 0; rep < 4; rep++ {
		for i, ep := range eps {
			for d := 0; d < len(eps); d++ {
				if err := ep.Send(NodeID(d), 4096, nil, nil); err != nil {
					t.Fatalf("send %d->%d: %v", i, d, err)
				}
			}
		}
		eng.Run()
	}

	if n := testing.AllocsPerRun(500, func() {
		for _, ep := range eps {
			for d := 0; d < len(eps); d++ {
				_ = ep.Send(NodeID(d), 4096, nil, nil)
			}
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("fabric send cycle allocates %.1f objects, want 0", n)
	}
	if delivered == 0 {
		t.Fatal("no messages delivered")
	}
}

// Invalidation-shaped traffic: small single-segment control messages
// with a pooled payload pointer, broadcast from one node to every
// other. Zero allocations once warm.
func TestBroadcastSmallMessageAllocFree(t *testing.T) {
	eng, _, eps := buildRing(t)
	type inv struct{ lpn int }
	msg := &inv{}
	got := 0
	for _, ep := range eps {
		ep.OnReceive = func(src NodeID, size int, payload any) {
			if payload.(*inv) != msg {
				t.Error("payload pointer mangled")
			}
			got++
		}
	}
	for d := 1; d < len(eps); d++ {
		_ = eps[0].Send(NodeID(d), 16, msg, nil)
	}
	eng.Run()

	if n := testing.AllocsPerRun(500, func() {
		for d := 1; d < len(eps); d++ {
			_ = eps[0].Send(NodeID(d), 16, msg, nil)
		}
		eng.Run()
	}); n != 0 {
		t.Fatalf("invalidation broadcast allocates %.1f objects, want 0", n)
	}
	if got == 0 {
		t.Fatal("no invalidations delivered")
	}
}

// Saturating a link past its credit depth exercises the waiter ring's
// head-index recycling: a drained ring must rewind, not creep forward
// until append reallocates.
func TestCreditWaiterRingAllocFree(t *testing.T) {
	eng, _, eps := buildRing(t)
	for _, ep := range eps {
		ep.OnReceive = func(NodeID, int, any) {}
	}
	burst := func() {
		// 64 MTU-sized segments into a 16-credit link direction.
		for i := 0; i < 16; i++ {
			_ = eps[0].Send(1, 4*1024, nil, nil)
		}
		eng.Run()
	}
	for i := 0; i < 4; i++ {
		burst()
	}
	if n := testing.AllocsPerRun(200, burst); n != 0 {
		t.Fatalf("credit-saturated burst allocates %.1f objects, want 0", n)
	}
}
