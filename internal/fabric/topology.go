package fabric

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// Topology is the serializable wiring plan of a cluster: the network
// configuration file the paper relies on instead of a discovery
// protocol (§3.2.3).
type Topology struct {
	Name  string   `json:"name"`
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"` // node pairs; repeats mean parallel lanes
}

// Validate checks node indices and port budgets.
func (t Topology) Validate(portsPerNode int) error {
	if t.Nodes <= 0 {
		return fmt.Errorf("fabric: topology %q has %d nodes", t.Name, t.Nodes)
	}
	used := make([]int, t.Nodes)
	for _, e := range t.Edges {
		a, b := e[0], e[1]
		if a < 0 || a >= t.Nodes || b < 0 || b >= t.Nodes {
			return fmt.Errorf("fabric: edge %v out of range", e)
		}
		if a == b {
			return fmt.Errorf("fabric: self-loop on node %d", a)
		}
		used[a]++
		used[b]++
	}
	for n, u := range used {
		if u > portsPerNode {
			return fmt.Errorf("fabric: node %d needs %d ports, only %d available", n, u, portsPerNode)
		}
	}
	return nil
}

// MarshalJSON-able round trip helpers.

// Encode serializes the topology as JSON.
func (t Topology) Encode() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// DecodeTopology parses a topology config file.
func DecodeTopology(b []byte) (Topology, error) {
	var t Topology
	if err := json.Unmarshal(b, &t); err != nil {
		return Topology{}, fmt.Errorf("fabric: bad topology config: %w", err)
	}
	return t, nil
}

// Build instantiates the topology on a fresh network and computes
// routes for endpoints 0..maxEndpoint.
func (t Topology) Build(eng *sim.Engine, cfg Config, maxEndpoint int) (*Network, error) {
	if err := t.Validate(cfg.PortsPerNode); err != nil {
		return nil, err
	}
	net := New(eng, cfg, t.Nodes)
	for _, e := range t.Edges {
		if err := net.Connect(NodeID(e[0]), NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	if err := net.ComputeRoutes(maxEndpoint); err != nil {
		return nil, err
	}
	return net, nil
}

// Line wires n nodes in a chain with `lanes` parallel cables per hop.
func Line(n, lanes int) Topology {
	t := Topology{Name: fmt.Sprintf("line-%d", n), Nodes: n}
	for i := 0; i+1 < n; i++ {
		for l := 0; l < lanes; l++ {
			t.Edges = append(t.Edges, [2]int{i, i + 1})
		}
	}
	return t
}

// Ring wires n nodes in a cycle with `lanes` parallel cables per hop —
// the paper's example deployment (4 lanes to each neighbor, §6.3).
func Ring(n, lanes int) Topology {
	t := Topology{Name: fmt.Sprintf("ring-%d", n), Nodes: n}
	for i := 0; i < n; i++ {
		for l := 0; l < lanes; l++ {
			t.Edges = append(t.Edges, [2]int{i, (i + 1) % n})
		}
	}
	return t
}

// Mesh2D wires a w x h grid (paper Figure 5b).
func Mesh2D(w, h int) Topology {
	t := Topology{Name: fmt.Sprintf("mesh-%dx%d", w, h), Nodes: w * h}
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				t.Edges = append(t.Edges, [2]int{id(x, y), id(x+1, y)})
			}
			if y+1 < h {
				t.Edges = append(t.Edges, [2]int{id(x, y), id(x, y+1)})
			}
		}
	}
	return t
}

// DistributedStar wires `hubs` fully-meshed hub nodes, each serving an
// equal share of the remaining nodes (paper Figure 5a).
func DistributedStar(n, hubs int) Topology {
	t := Topology{Name: fmt.Sprintf("star-%d-%d", n, hubs), Nodes: n}
	for i := 0; i < hubs; i++ {
		for j := i + 1; j < hubs; j++ {
			t.Edges = append(t.Edges, [2]int{i, j})
		}
	}
	for leaf := hubs; leaf < n; leaf++ {
		t.Edges = append(t.Edges, [2]int{leaf % hubs, leaf})
	}
	return t
}

// FullMesh wires every node pair directly (small clusters only).
func FullMesh(n int) Topology {
	t := Topology{Name: fmt.Sprintf("full-%d", n), Nodes: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.Edges = append(t.Edges, [2]int{i, j})
		}
	}
	return t
}
