// Package fpga models the FPGA resource accounting of the BlueDBM
// implementation (paper §6.1, Tables 1 and 2). The real numbers come
// from Vivado synthesis reports of the Artix-7 flash controller and
// the Virtex-7 host design; here they are reproduced as a component
// inventory whose per-module costs are the paper's published values,
// scaled by the number of module instances the configured system
// actually contains. This is a documented substitution (DESIGN.md):
// resource tables are datasheet arithmetic, not runtime behaviour.
package fpga

import (
	"fmt"
	"strings"
)

// Module is one synthesized component.
type Module struct {
	Name      string
	Count     int
	LUTs      int // per instance
	Registers int // per instance
	RAMB36    int // per instance (Table 1 reports "BRAM" in RAMB36 units)
	RAMB18    int
}

// Totals sums a module's cost across its instances.
func (m Module) Totals() (luts, regs, r36, r18 int) {
	return m.LUTs * m.Count, m.Registers * m.Count, m.RAMB36 * m.Count, m.RAMB18 * m.Count
}

// Device is an FPGA part with its capacity.
type Device struct {
	Name      string
	LUTs      int
	Registers int
	RAMB36    int
	RAMB18    int
}

// The two parts used by the BlueDBM boards.
var (
	Artix7  = Device{Name: "Artix-7 XC7A200T", LUTs: 134600, Registers: 269200, RAMB36: 365, RAMB18: 730}
	Virtex7 = Device{Name: "Virtex-7 XC7VX485T", LUTs: 303600, Registers: 607200, RAMB36: 1030, RAMB18: 2060}
)

// Report is a synthesized design: modules on a device.
type Report struct {
	Device  Device
	Modules []Module
}

// Totals sums the whole design.
func (r Report) Totals() (luts, regs, r36, r18 int) {
	for _, m := range r.Modules {
		l, g, a, b := m.Totals()
		luts += l
		regs += g
		r36 += a
		r18 += b
	}
	return
}

// UtilizationPct returns percentage use of LUTs, registers, RAMB36 and
// RAMB18.
func (r Report) UtilizationPct() (luts, regs, r36, r18 float64) {
	l, g, a, b := r.Totals()
	pct := func(used, avail int) float64 {
		if avail == 0 {
			return 0
		}
		return 100 * float64(used) / float64(avail)
	}
	return pct(l, r.Device.LUTs), pct(g, r.Device.Registers),
		pct(a, r.Device.RAMB36), pct(b, r.Device.RAMB18)
}

// Fits reports whether the design fits its device.
func (r Report) Fits() bool {
	l, g, a, b := r.Totals()
	return l <= r.Device.LUTs && g <= r.Device.Registers &&
		a <= r.Device.RAMB36 && b <= r.Device.RAMB18
}

// FlashControllerReport reproduces Table 1: the flash controller on
// each card's Artix-7, parameterized by the card's bus count (the bus
// controller and its sub-modules replicate per bus).
func FlashControllerReport(buses int) Report {
	return Report{
		Device: Artix7,
		Modules: []Module{
			// Paper Table 1 lists each module group's total across its
			// instances; per-instance cost = listed total / count.
			{Name: "Bus Controller", Count: buses, LUTs: 7131 / 8, Registers: 4870 / 8, RAMB36: 21 / 8},
			{Name: "ECC Decoder", Count: 2 * buses / 8, LUTs: 1790 / 2, Registers: 1233 / 2, RAMB36: 2 / 2},
			{Name: "Scoreboard", Count: buses / 8, LUTs: 1149, Registers: 780},
			{Name: "PHY", Count: buses / 8, LUTs: 1635, Registers: 607},
			{Name: "ECC Encoder", Count: 2 * buses / 8, LUTs: 565 / 2, Registers: 222 / 2},
			{Name: "SerDes", Count: 1, LUTs: 3061, Registers: 3463, RAMB36: 13},
			// Glue, chip-select fan-out, configuration — the remainder
			// of the paper's 75225-LUT / 62801-register Artix total.
			{Name: "Infrastructure", Count: 1, LUTs: 59898, Registers: 51633, RAMB36: 150},
		},
	}
}

// HostFPGAReport reproduces Table 2: the Virtex-7 design on the VC707,
// parameterized by network port count (the network interface grows
// with fan-out).
func HostFPGAReport(networkPorts int) Report {
	return Report{
		Device: Virtex7,
		Modules: []Module{
			{Name: "Flash Interface", Count: 1, LUTs: 1389, Registers: 2139},
			{Name: "Network Interface", Count: 1, LUTs: 29591 * networkPorts / 8, Registers: 27509 * networkPorts / 8},
			{Name: "DRAM Interface", Count: 1, LUTs: 11045, Registers: 7937},
			{Name: "Host Interface", Count: 1, LUTs: 88376, Registers: 46065, RAMB36: 169, RAMB18: 14},
			// Clocking, reset, debug infrastructure up to the paper's
			// 135271-LUT total.
			{Name: "Infrastructure", Count: 1, LUTs: 4870, Registers: 52247, RAMB36: 55, RAMB18: 4},
		},
	}
}

// FormatTable renders a report in the paper's table layout.
func FormatTable(title string, r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %6s %9s %10s %7s %7s\n", "Module Name", "#", "LUTs", "Registers", "RAMB36", "RAMB18")
	for _, m := range r.Modules {
		l, g, a, bb := m.Totals()
		fmt.Fprintf(&b, "%-22s %6d %9d %10d %7d %7d\n", m.Name, m.Count, l, g, a, bb)
	}
	l, g, a, bb := r.Totals()
	lp, gp, ap, bp := r.UtilizationPct()
	fmt.Fprintf(&b, "%-22s %6s %9d %10d %7d %7d\n", r.Device.Name+" Total", "", l, g, a, bb)
	fmt.Fprintf(&b, "%-22s %6s %8.0f%% %9.0f%% %6.0f%% %6.0f%%\n", "Utilization", "", lp, gp, ap, bp)
	return b.String()
}
