package fpga

import (
	"strings"
	"testing"
)

func TestTable1Totals(t *testing.T) {
	r := FlashControllerReport(8)
	luts, regs, r36, _ := r.Totals()
	// Paper Table 1: 75225 LUTs, 62801 registers, 181 BRAM.
	if luts < 74000 || luts > 76500 {
		t.Fatalf("Artix LUT total %d, paper reports 75225", luts)
	}
	if regs < 61500 || regs > 64000 {
		t.Fatalf("Artix register total %d, paper reports 62801", regs)
	}
	if r36 < 175 || r36 > 187 {
		t.Fatalf("Artix BRAM total %d, paper reports 181", r36)
	}
	if !r.Fits() {
		t.Fatal("flash controller does not fit the Artix-7")
	}
	lp, _, _, _ := r.UtilizationPct()
	// Paper: 56% of LUTs.
	if lp < 50 || lp > 62 {
		t.Fatalf("Artix LUT utilization %.0f%%, paper reports 56%%", lp)
	}
}

func TestTable2Totals(t *testing.T) {
	r := HostFPGAReport(8)
	luts, regs, r36, r18 := r.Totals()
	// Paper Table 2: 135271 LUTs, 135897 registers, 224 RAMB36, 18 RAMB18.
	if luts < 133000 || luts > 137500 {
		t.Fatalf("Virtex LUT total %d, paper reports 135271", luts)
	}
	if regs < 134000 || regs > 138000 {
		t.Fatalf("Virtex register total %d, paper reports 135897", regs)
	}
	if r36 != 224 || r18 != 18 {
		t.Fatalf("Virtex BRAM totals %d/%d, paper reports 224/18", r36, r18)
	}
	if !r.Fits() {
		t.Fatal("host design does not fit the Virtex-7")
	}
	lp, _, _, _ := r.UtilizationPct()
	// Paper: 45% of LUTs ("still enough space for accelerators").
	if lp < 40 || lp > 50 {
		t.Fatalf("Virtex LUT utilization %.0f%%, paper reports 45%%", lp)
	}
}

func TestReducedFanOutUsesLess(t *testing.T) {
	full := HostFPGAReport(8)
	half := HostFPGAReport(4)
	fl, _, _, _ := full.Totals()
	hl, _, _, _ := half.Totals()
	if hl >= fl {
		t.Fatalf("4-port design (%d LUTs) should be smaller than 8-port (%d)", hl, fl)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable("Table 1", FlashControllerReport(8))
	for _, want := range []string{"Bus Controller", "ECC Decoder", "SerDes", "Total", "Utilization"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
