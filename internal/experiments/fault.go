package experiments

// The fault-scenario experiment: the durability story the ROADMAP's
// item 2 asks for, measured. A mirrored volume (cross-node replicas,
// internal/volume) serves realtime point reads and batch churn writes
// through three measured windows on one cluster:
//
//   - baseline: every copy healthy;
//   - degraded: a whole node is killed mid-window — reads fail over
//     to the surviving replica, writes land on one copy;
//   - rebuild: the node's cards are replaced blank and the rebuild
//     pump refills them from the survivors on the Background class,
//     gated by the same urgency-token machinery as GC, while the
//     foreground load keeps running.
//
// The headline numbers are the degraded-mode and rebuild-mode realtime
// p99 (vs baseline) and the time-to-rebuild: reconstruction must make
// steady progress without starving realtime.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
	"repro/internal/workload"
)

// FaultConfig sizes the fault-scenario experiment.
type FaultConfig struct {
	Nodes    int    `json:"nodes"`
	Readers  int    `json:"readers"`  // realtime point-read probes
	Writers  int    `json:"writers"`  // batch churn-writer streams
	Depth    int    `json:"depth"`    // closed-loop outstanding per stream
	Requests int    `json:"requests"` // completions per writer per window
	Seed     uint64 `json:"seed"`

	// KillNode is the node killed in the degraded window; KillAfter is
	// the virtual delay into that window before it dies.
	KillNode  int      `json:"kill_node"`
	KillAfter sim.Time `json:"kill_after_ns"`

	Sched sched.Config `json:"sched"`
	FTL   ftl.Config   `json:"ftl"`
}

// DefaultFault returns the standard shape: a 4-node mirrored cluster,
// realtime probes against churn writers, one node killed and rebuilt.
// short cuts request counts for smoke runs.
func DefaultFault(short bool) FaultConfig {
	cfg := FaultConfig{
		Nodes:     4,
		Readers:   8,
		Writers:   4,
		Depth:     4,
		Requests:  768,
		Seed:      97,
		KillNode:  1,
		KillAfter: 500 * sim.Microsecond,
		Sched:     sched.DefaultConfig(),
		FTL:       ftl.Config{OverProvision: 0.25, GCLowWater: 4, WearLevelEvery: 64, GCPipeline: 16},
	}
	// Same admission shaping as the GC experiment: the dispatcher must
	// own the device window for class priority and the Background token
	// gate (GC and rebuild alike) to act.
	cfg.Sched.MaxInflight = 16
	cfg.Sched.BatchSize = 16
	if short {
		cfg.Requests = 192
	}
	return cfg
}

// faultParams shrinks flash capacity so seeding, churn, and a full
// node rebuild run in seconds of wall-clock time.
func faultParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Geometry.ChipsPerBus = 2
	p.Geometry.BlocksPerChip = 2
	p.Geometry.PagesPerBlock = 32
	return p
}

// FaultPhase is one measured window.
type FaultPhase struct {
	Loop   workload.LoopResult `json:"loop"`
	Sched  sched.Snapshot      `json:"sched"`
	Volume volume.Stats        `json:"volume"`
}

// realtimeClass pulls the realtime class's snapshot out of a phase.
func (p FaultPhase) realtimeClass() sched.ClassSnapshot {
	for _, cs := range p.Sched.Classes {
		if cs.Class == "realtime" {
			return cs
		}
	}
	return sched.ClassSnapshot{}
}

// FaultResult is the JSON-ready outcome.
type FaultResult struct {
	Config   FaultConfig `json:"config"`
	Baseline FaultPhase  `json:"baseline"`
	Degraded FaultPhase  `json:"degraded"`
	Rebuild  FaultPhase  `json:"rebuild"`

	// Realtime read tail latency per window, and each fault window's
	// ratio to the no-fault baseline.
	BaselineP99Us float64 `json:"realtime_p99_baseline_us"`
	DegradedP99Us float64 `json:"realtime_p99_degraded_us"`
	RebuildP99Us  float64 `json:"realtime_p99_rebuild_us"`
	DegradedX     float64 `json:"degraded_p99_x"`
	RebuildX      float64 `json:"rebuild_p99_x"`

	// RebuildMs is the virtual time from replacing the node's cards to
	// the last page restored, with the foreground load still running.
	RebuildMs      float64 `json:"rebuild_ms"`
	PagesRebuilt   int64   `json:"pages_rebuilt"`
	DegradedReads  int64   `json:"degraded_reads"`
	DegradedWrites int64   `json:"degraded_writes"`
}

// faultSpecs builds the stream mix: sparse realtime probes (they
// measure what the fault leaves of the device, not their own queueing)
// plus paced churn writers — the GC experiment's shape, over a
// mirrored volume.
func faultSpecs(cfg FaultConfig) []workload.VolumeStreamSpec {
	var specs []workload.VolumeStreamSpec
	for i := 0; i < cfg.Readers; i++ {
		specs = append(specs, workload.VolumeStreamSpec{
			Name:      fmt.Sprintf("rt%02d", i),
			Class:     sched.Realtime,
			Requests:  -1,
			Depth:     1,
			ThinkTime: 500 * sim.Microsecond,
			Seed:      cfg.Seed + uint64(i)*1299709,
		})
	}
	for i := 0; i < cfg.Writers; i++ {
		specs = append(specs, workload.VolumeStreamSpec{
			Name:          fmt.Sprintf("wr%02d", i),
			Class:         sched.Batch,
			WriteFraction: 1.0,
			Depth:         2,
			ThinkTime:     4 * sim.Millisecond,
			Seed:          cfg.Seed + 7 + uint64(i)*15485863,
		})
	}
	return specs
}

// runFaultPhase measures one window: reset stats, drive the workload
// (with an optional concurrent fault/rebuild action), snapshot.
func runFaultPhase(cfg FaultConfig, s *sched.Scheduler, v *volume.Volume, c *core.Cluster,
	concurrent func(live func() bool)) (FaultPhase, error) {
	s.ResetStats()
	base := v.Stats()
	loop, err := workload.RunVolumeClosedLoopWith(v, c, faultSpecs(cfg), cfg.Depth, cfg.Requests, concurrent)
	if err != nil {
		return FaultPhase{}, err
	}
	if loop.Errors > 0 {
		// The whole point of the mirror: a node loss is absorbed, not
		// surfaced. Any workload-visible error is a failure.
		return FaultPhase{}, fmt.Errorf("%d request errors leaked through the mirror", loop.Errors)
	}
	return FaultPhase{Loop: loop, Sched: s.Snapshot(), Volume: v.Stats().Delta(base)}, nil
}

// Fault runs the three-window fault scenario on one mirrored cluster.
func Fault(cfg FaultConfig) (FaultResult, error) {
	res := FaultResult{Config: cfg}
	if cfg.KillNode < 0 || cfg.KillNode >= cfg.Nodes {
		return res, fmt.Errorf("kill node %d out of range (%d nodes)", cfg.KillNode, cfg.Nodes)
	}
	c, err := core.NewCluster(faultParams(cfg.Nodes))
	if err != nil {
		return res, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return res, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	vcfg.Mirror = true
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return res, err
	}
	if err := workload.SeedVolume(v, c, v.Pages(), 64, cfg.Seed); err != nil {
		return res, err
	}
	// Warm the FTLs toward steady-state churn, unmeasured.
	warm := faultSpecs(cfg)
	for i := range warm {
		warm[i].Seed ^= 0x5eed
	}
	if _, err := workload.RunVolumeClosedLoop(v, c, warm, cfg.Depth, cfg.Requests/4); err != nil {
		return res, err
	}

	// Window 1: no-fault baseline.
	if res.Baseline, err = runFaultPhase(cfg, s, v, c, nil); err != nil {
		return res, fmt.Errorf("baseline window: %w", err)
	}

	// Window 2: the node dies mid-window; the mirror absorbs it.
	if res.Degraded, err = runFaultPhase(cfg, s, v, c, func(func() bool) {
		c.Eng.After(cfg.KillAfter, func() {
			if kerr := v.KillNode(cfg.KillNode); kerr != nil {
				panic(kerr) // config was validated; unreachable
			}
		})
	}); err != nil {
		return res, fmt.Errorf("degraded window: %w", err)
	}
	if res.Degraded.Volume.DegradedReads == 0 {
		return res, fmt.Errorf("degraded window: node kill produced no degraded reads")
	}

	// Window 3: replace the node's cards and rebuild them from the
	// survivors while the same load runs. The closed-loop driver drains
	// every event, so the window ends only after the rebuild completes.
	var rebuildStart, rebuildEnd sim.Time
	if res.Rebuild, err = runFaultPhase(cfg, s, v, c, func(func() bool) {
		rebuildStart = c.Eng.Now()
		if rerr := v.RebuildNode(cfg.KillNode, func() { rebuildEnd = c.Eng.Now() }); rerr != nil {
			panic(rerr) // the node was killed in window 2; unreachable
		}
	}); err != nil {
		return res, fmt.Errorf("rebuild window: %w", err)
	}
	if rebuildEnd == 0 {
		return res, fmt.Errorf("rebuild window: rebuild never completed")
	}
	if v.Rebuilding() {
		return res, fmt.Errorf("rebuild window: volume still rebuilding after drain")
	}
	if res.Rebuild.Volume.PagesRebuilt == 0 {
		return res, fmt.Errorf("rebuild window: no pages rebuilt")
	}

	res.BaselineP99Us = res.Baseline.realtimeClass().P99Us
	res.DegradedP99Us = res.Degraded.realtimeClass().P99Us
	res.RebuildP99Us = res.Rebuild.realtimeClass().P99Us
	if res.BaselineP99Us > 0 {
		res.DegradedX = res.DegradedP99Us / res.BaselineP99Us
		res.RebuildX = res.RebuildP99Us / res.BaselineP99Us
	}
	res.RebuildMs = float64(rebuildEnd-rebuildStart) / float64(sim.Millisecond)
	res.PagesRebuilt = res.Rebuild.Volume.PagesRebuilt
	res.DegradedReads = res.Degraded.Volume.DegradedReads + res.Rebuild.Volume.DegradedReads
	res.DegradedWrites = res.Degraded.Volume.DegradedWrites + res.Rebuild.Volume.DegradedWrites
	return res, nil
}

// FormatFault renders the three windows.
func FormatFault(r FaultResult) string {
	var t table
	t.row("Window", "rt p50 us", "rt p99 us", "p99 vs base", "Kops/s", "degraded R", "degraded W", "rebuilt")
	rows := []struct {
		name string
		p    FaultPhase
		x    float64
	}{
		{"baseline", r.Baseline, 1},
		{"degraded", r.Degraded, r.DegradedX},
		{"rebuild", r.Rebuild, r.RebuildX},
	}
	for _, row := range rows {
		rt := row.p.realtimeClass()
		t.row(row.name, f1(rt.P50Us), f1(rt.P99Us), f2(row.x)+"x",
			f1(row.p.Sched.TotalOpsPerSec/1e3),
			fmt.Sprintf("%d", row.p.Volume.DegradedReads),
			fmt.Sprintf("%d", row.p.Volume.DegradedWrites),
			fmt.Sprintf("%d", row.p.Volume.PagesRebuilt))
	}
	head := fmt.Sprintf(
		"Fault scenario: node %d of %d killed mid-run on a mirrored volume, then rebuilt on Background\n"+
			"realtime p99 %.1f us baseline, %.1f us degraded (%.2fx), %.1f us during rebuild (%.2fx); %d pages rebuilt in %.1f ms\n",
		r.Config.KillNode, r.Config.Nodes,
		r.BaselineP99Us, r.DegradedP99Us, r.DegradedX, r.RebuildP99Us, r.RebuildX,
		r.PagesRebuilt, r.RebuildMs)
	return head + t.String()
}
