package experiments

import (
	"encoding/json"
	"testing"
)

// TestGCIsolationShort is the acceptance check for the GC-isolation
// experiment: write churn must force real garbage collection in both
// arms, all requests must complete, and GC-aware dispatch must leave
// realtime tail latency no worse than GC-oblivious dispatch.
func TestGCIsolationShort(t *testing.T) {
	r, err := GCIsolation(DefaultGCIsolation(true))
	if err != nil {
		t.Fatal(err)
	}
	for name, arm := range map[string]GCArm{"aware": r.Aware, "oblivious": r.Oblivious} {
		if arm.Loop.Errors != 0 {
			t.Fatalf("%s: %d request errors", name, arm.Loop.Errors)
		}
		if arm.Volume.GCMoves == 0 || arm.Volume.FlashErases == 0 {
			t.Fatalf("%s: no garbage collection (moves=%d erases=%d)", name, arm.Volume.GCMoves, arm.Volume.FlashErases)
		}
		if arm.Volume.GCAborts != 0 {
			t.Fatalf("%s: %d aborted collections under a sustainable load", name, arm.Volume.GCAborts)
		}
	}
	if r.RealtimeP99AwareUs <= 0 || r.RealtimeP99ObliviousUs <= 0 {
		t.Fatalf("missing realtime percentiles: %+v", r)
	}
	if r.RealtimeP99AwareUs > r.RealtimeP99ObliviousUs {
		t.Fatalf("GC-aware dispatch made realtime p99 worse: %.1fus vs %.1fus",
			r.RealtimeP99AwareUs, r.RealtimeP99ObliviousUs)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatal(err)
	}
}
