package experiments

// The ISP-contention experiment: the QoS scenario the distributed
// in-store processing subsystem (internal/ispvol) exists for. A fleet
// of host tenant streams — realtime latency probes among them — reads
// the logical volume while distributed string-search queries scan a
// haystack striped over the same cards. The same offered load runs
// four ways:
//
//   - base:    host streams only — the no-ISP realtime p99 baseline;
//   - bypass:  queries read flash through the raw device interfaces,
//              invisible to the scheduler (the pre-fix bug path);
//   - isp-f:   queries admitted through the scheduler's Accel class
//              and token budget, then issued device-side (production);
//   - host-mediated: every haystack page crosses PCIe and is scanned
//              in host software at grep cost.
//
// The headline numbers: the isp-f arm beats host-mediated on query
// throughput while keeping realtime host p99 near the no-ISP
// baseline; the bypass arm shows what the scheduler fix prevents.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/ispvol"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
	"repro/internal/workload"
)

// ISPContentionConfig sizes the experiment.
type ISPContentionConfig struct {
	Nodes        int    `json:"nodes"`
	HostStreams  int    `json:"host_streams"`  // concurrent host tenant streams
	QueryStreams int    `json:"query_streams"` // concurrent distributed queries
	QueryPages   int    `json:"query_pages"`   // logical pages per query scan
	Depth        int    `json:"depth"`         // closed-loop outstanding per host stream
	Requests     int    `json:"requests"`      // completions per primary host stream
	Needle       string `json:"needle"`
	Seed         uint64 `json:"seed"`

	Sched sched.Config  `json:"sched"`
	FTL   ftl.Config    `json:"ftl"`
	ISP   ispvol.Config `json:"isp"`
}

// DefaultISPContention returns the standard shape: 32 host streams (a
// quarter of them realtime latency probes) sharing a 2-node volume
// with 4 concurrent distributed search queries. short cuts request
// counts and the query range for smoke runs.
func DefaultISPContention(short bool) ISPContentionConfig {
	cfg := ISPContentionConfig{
		Nodes:        2,
		HostStreams:  32,
		QueryStreams: 4,
		// The query range must span the cards' chips (it is seeded
		// block-contiguous by the FTL frontiers), or the engines' chip
		// interleave has nothing to spread over.
		QueryPages: 2048,
		Depth:      4,
		Requests:   768,
		Needle:     "BlueDBM",
		Seed:       42,
		Sched:      sched.DefaultConfig(),
		FTL:        ftl.DefaultConfig(),
		ISP:        ispvol.DefaultConfig(),
	}
	// Same rationale as the GC experiment: the dispatcher must own the
	// device window for class priority and the accel token budget to
	// act; 16 slots per node keeps admission the contention point.
	cfg.Sched.MaxInflight = 16
	cfg.Sched.BatchSize = 16
	// Hungry engines: each keeps 16 reads in flight. Under Accel
	// admission the token budget (half the 16-slot window) paces them
	// regardless; under Bypass the same demand hits the chips raw —
	// the full blast radius of the bug the scheduler fix contains.
	cfg.ISP.Window = 16
	if short {
		cfg.Requests = 192
		cfg.QueryPages = 1024
	}
	return cfg
}

// ispParams shrinks flash capacity (like gcParams) so a fully-seeded
// volume and repeated scans finish in seconds of wall-clock time.
func ispParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Geometry.ChipsPerBus = 2
	p.Geometry.BlocksPerChip = 2
	p.Geometry.PagesPerBlock = 32
	return p
}

// ispHaystack seeds deterministic random pages with the needle
// planted mid-page every 5th page and ACROSS the boundary between
// every 7k+3rd and 7k+4th page — adjacent logical pages live on
// different cards of the striped volume, so the committed benchmark
// itself exercises the distributed junction stitching.
func ispHaystack(seed uint64, needle []byte, ps int) workload.PageFiller {
	fill := workload.RandomPages(seed)
	split := len(needle) / 2
	return func(idx int, page []byte) {
		fill(idx, page)
		if len(needle) == 0 || len(needle) >= ps || split == 0 {
			return
		}
		if idx%5 == 2 {
			copy(page[ps/2:], needle)
		}
		if idx%7 == 3 {
			copy(page[ps-split:], needle[:split])
		}
		if idx%7 == 4 {
			copy(page, needle[split:])
		}
	}
}

// ispArmMode selects one experiment arm.
type ispArmMode int

const (
	armBase ispArmMode = iota
	armBypass
	armISPF
	armHostMediated
)

func (m ispArmMode) String() string {
	switch m {
	case armBase:
		return "base"
	case armBypass:
		return "bypass"
	case armISPF:
		return "isp-f"
	case armHostMediated:
		return "host-mediated"
	default:
		return fmt.Sprintf("arm(%d)", int(m))
	}
}

// ISPArm is one run's outcome.
type ISPArm struct {
	Loop  workload.LoopResult `json:"loop"`
	Sched sched.Snapshot      `json:"sched"`

	Queries         int     `json:"queries"`
	QueryBytes      int64   `json:"query_bytes"`
	QueryMBps       float64 `json:"query_mbps"`
	MatchesPerQuery int64   `json:"matches_per_query"`
	RealtimeP50Us   float64 `json:"realtime_p50_us"`
	RealtimeP99Us   float64 `json:"realtime_p99_us"`
}

// ISPContentionResult is the JSON-ready outcome.
type ISPContentionResult struct {
	Config       ISPContentionConfig `json:"config"`
	Base         ISPArm              `json:"base"`
	Bypass       ISPArm              `json:"bypass"`
	ISPF         ISPArm              `json:"isp_f"`
	HostMediated ISPArm              `json:"host_mediated"`

	// QuerySpeedupX is isp-f query throughput over host-mediated at
	// identical offered host load.
	QuerySpeedupX float64 `json:"query_speedup_x"`
	// P99*X is each arm's realtime host p99 over the no-ISP baseline.
	P99ISPFX    float64 `json:"p99_ispf_vs_base_x"`
	P99BypassX  float64 `json:"p99_bypass_vs_base_x"`
	P99HostMedX float64 `json:"p99_hostmed_vs_base_x"`
}

// ispSpecs builds the host-side mix: a quarter of the streams are
// realtime latency probes (sparse point reads alive for exactly the
// contention window), the rest interactive and batch readers that
// bound the run. Pure reads: the queries' physical-address snapshots
// must stay valid for the whole window.
func ispSpecs(cfg ISPContentionConfig) []workload.VolumeStreamSpec {
	var specs []workload.VolumeStreamSpec
	probes := cfg.HostStreams / 4
	if probes < 1 {
		probes = 1
	}
	for i := 0; i < cfg.HostStreams; i++ {
		sp := workload.VolumeStreamSpec{
			Seed: cfg.Seed + uint64(i)*1299709,
		}
		switch {
		case i < probes:
			sp.Name = fmt.Sprintf("rt%02d", i)
			sp.Class = sched.Realtime
			sp.Requests = -1
			sp.Depth = 1
			sp.ThinkTime = 500 * sim.Microsecond
		case i%2 == 0:
			sp.Name = fmt.Sprintf("ia%02d", i)
			sp.Class = sched.Interactive
		default:
			sp.Name = fmt.Sprintf("bt%02d", i)
			sp.Class = sched.Batch
		}
		specs = append(specs, sp)
	}
	return specs
}

// runISPArm builds a fresh cluster+scheduler+volume+ispvol, seeds the
// haystack, then drives the host mix with the arm's query load
// co-running for exactly the measurement window.
func runISPArm(cfg ISPContentionConfig, mode ispArmMode) (ISPArm, error) {
	c, err := core.NewCluster(ispParams(cfg.Nodes))
	if err != nil {
		return ISPArm{}, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return ISPArm{}, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return ISPArm{}, err
	}
	if cfg.QueryPages > v.Pages() {
		return ISPArm{}, fmt.Errorf("query range %d exceeds the %d-page volume", cfg.QueryPages, v.Pages())
	}
	needle := []byte(cfg.Needle)
	ps := v.PageSize()
	if err := workload.SeedVolumeWith(v, c, v.Pages(), 64, ispHaystack(cfg.Seed, needle, ps)); err != nil {
		return ISPArm{}, err
	}
	icfg := cfg.ISP
	if mode == armBypass {
		icfg.Admission = ispvol.Bypass
	}
	sys, err := ispvol.New(c, s, v, icfg)
	if err != nil {
		return ISPArm{}, err
	}

	s.ResetStats()
	var arm ISPArm
	var queryErr error
	matchesSet := false
	concurrent := func(live func() bool) {
		if mode == armBase {
			return
		}
		for qs := 0; qs < cfg.QueryStreams; qs++ {
			var runQ func()
			done := func(res *ispvol.SearchResult, err error) {
				if err != nil {
					if queryErr == nil {
						queryErr = err
					}
					return
				}
				if res.FailedPages > 0 && queryErr == nil {
					queryErr = fmt.Errorf("%d query pages failed to read", res.FailedPages)
				}
				arm.Queries++
				arm.QueryBytes += res.Bytes
				n := int64(len(res.Matches))
				if !matchesSet {
					arm.MatchesPerQuery = n
					matchesSet = true
				} else if arm.MatchesPerQuery != n && queryErr == nil {
					queryErr = fmt.Errorf("query match counts diverge: %d vs %d", arm.MatchesPerQuery, n)
				}
				runQ()
			}
			runQ = func() {
				if !live() {
					return
				}
				if mode == armHostMediated {
					sys.SearchHost(0, 0, cfg.QueryPages, needle, done)
				} else {
					sys.Search(0, 0, cfg.QueryPages, needle, done)
				}
			}
			runQ()
		}
	}
	loop, err := workload.RunVolumeClosedLoopWith(v, c, ispSpecs(cfg), cfg.Depth, cfg.Requests, concurrent)
	if err != nil {
		return ISPArm{}, err
	}
	if queryErr != nil {
		return ISPArm{}, queryErr
	}
	if loop.Errors > 0 {
		return ISPArm{}, fmt.Errorf("%d host request errors", loop.Errors)
	}
	if mode != armBase && arm.Queries == 0 {
		return ISPArm{}, fmt.Errorf("no %v query completed inside the host window; raise Requests or shrink QueryPages", mode)
	}
	arm.Loop = loop
	arm.Sched = s.Snapshot()
	for _, cs := range arm.Sched.Classes {
		if cs.Class == "realtime" {
			arm.RealtimeP50Us = cs.P50Us
			arm.RealtimeP99Us = cs.P99Us
		}
	}
	if secs := arm.Sched.ElapsedMs / 1e3; secs > 0 {
		arm.QueryMBps = float64(arm.QueryBytes) / secs / 1e6
	}
	return arm, nil
}

// ISPContention runs the four arms on identical offered load and
// reports the cross-arm ratios. Query results are cross-validated:
// every arm's distributed/bypass/host-mediated scans must agree on
// the per-query match count, or the experiment fails.
func ISPContention(cfg ISPContentionConfig) (ISPContentionResult, error) {
	res := ISPContentionResult{Config: cfg}
	var err error
	if res.Base, err = runISPArm(cfg, armBase); err != nil {
		return res, fmt.Errorf("base arm: %w", err)
	}
	if res.Bypass, err = runISPArm(cfg, armBypass); err != nil {
		return res, fmt.Errorf("bypass arm: %w", err)
	}
	if res.ISPF, err = runISPArm(cfg, armISPF); err != nil {
		return res, fmt.Errorf("isp-f arm: %w", err)
	}
	if res.HostMediated, err = runISPArm(cfg, armHostMediated); err != nil {
		return res, fmt.Errorf("host-mediated arm: %w", err)
	}
	if res.ISPF.MatchesPerQuery != res.Bypass.MatchesPerQuery ||
		res.ISPF.MatchesPerQuery != res.HostMediated.MatchesPerQuery {
		return res, fmt.Errorf("arms disagree on matches per query: isp-f %d, bypass %d, host-mediated %d",
			res.ISPF.MatchesPerQuery, res.Bypass.MatchesPerQuery, res.HostMediated.MatchesPerQuery)
	}
	if t := res.HostMediated.QueryMBps; t > 0 {
		res.QuerySpeedupX = res.ISPF.QueryMBps / t
	}
	if base := res.Base.RealtimeP99Us; base > 0 {
		res.P99ISPFX = res.ISPF.RealtimeP99Us / base
		res.P99BypassX = res.Bypass.RealtimeP99Us / base
		res.P99HostMedX = res.HostMediated.RealtimeP99Us / base
	}
	return res, nil
}

// hostOpsPerSec sums an arm's scheduler throughput over the host
// classes only (accel ops are query traffic, not host load).
func (a ISPArm) hostOpsPerSec() float64 {
	var ops float64
	for _, cs := range a.Sched.Classes {
		if cs.Class != "accel" {
			ops += cs.OpsPerSec
		}
	}
	return ops
}

// FormatISPContention renders the comparison.
func FormatISPContention(r ISPContentionResult) string {
	var t table
	t.row("Arm", "rt p50 us", "rt p99 us", "p99 vs base", "queries", "query MB/s", "host Kops/s")
	rows := []struct {
		name string
		a    ISPArm
		p99x float64
	}{
		{"base (no ISP)", r.Base, 1},
		{"bypass (bug)", r.Bypass, r.P99BypassX},
		{"isp-f", r.ISPF, r.P99ISPFX},
		{"host-mediated", r.HostMediated, r.P99HostMedX},
	}
	for _, row := range rows {
		t.row(row.name, f1(row.a.RealtimeP50Us), f1(row.a.RealtimeP99Us),
			f2(row.p99x), fmt.Sprintf("%d", row.a.Queries), f1(row.a.QueryMBps),
			f1(row.a.hostOpsPerSec()/1e3))
	}
	head := fmt.Sprintf(
		"ISP contention: %d host streams + %d distributed search queries, %d nodes\n"+
			"query throughput %.1f MB/s (isp-f) vs %.1f MB/s (host-mediated): %.1fx\n"+
			"realtime host p99: %.2fx base under isp-f vs %.2fx base when ISP bypasses the scheduler\n",
		r.Config.HostStreams, r.Config.QueryStreams, r.Config.Nodes,
		r.ISPF.QueryMBps, r.HostMediated.QueryMBps, r.QuerySpeedupX,
		r.P99ISPFX, r.P99BypassX)
	return head + t.String()
}
