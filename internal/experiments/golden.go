package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// EngineGoldenDigest runs the seeded 4-node full-stack golden
// scenario — the engine-bench workload mix (multi-class,
// cluster-addressed reads and writes through scheduler, fabric, host
// interface and NAND) at a fixed size — and returns the event count,
// final virtual time, and a sha256 digest over the JSON-marshalled
// workload and scheduler statistics.
//
// The scenario is fully seeded: every execution, in any process, must
// return identical values. The golden test pins them against captured
// constants; the repeat-run test calls this twice in one process to
// catch nondeterminism that a single run cannot see (map iteration
// order, global state leaking between runs).
func EngineGoldenDigest() (fired uint64, now sim.Time, digest string, err error) {
	const nodes = 4
	cfg := DefaultEngineBench(false)
	cfg.Requests = 48

	c, err := core.NewCluster(scaledParams(nodes))
	if err != nil {
		return 0, 0, "", err
	}
	for n := 0; n < nodes; n++ {
		if err := c.SeedLinear(n, cfg.Pages, workload.RandomPages(cfg.Seed)); err != nil {
			return 0, 0, "", err
		}
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return 0, 0, "", err
	}
	loop, err := workload.RunClosedLoop(s, c, engineSpecs(cfg, nodes), cfg.Pages, cfg.Depth, cfg.Requests, 0)
	if err != nil {
		return 0, 0, "", err
	}

	blob, err := json.Marshal(struct {
		Loop  workload.LoopResult `json:"loop"`
		Sched sched.Snapshot      `json:"sched"`
	}{loop, s.Snapshot()})
	if err != nil {
		return 0, 0, "", err
	}
	sum := sha256.Sum256(blob)
	return c.Eng.Fired(), c.Eng.Now(), hex.EncodeToString(sum[:]), nil
}
