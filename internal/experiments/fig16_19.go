package experiments

import (
	"fmt"

	"repro/internal/accel/lsh"
	"repro/internal/altstore"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// NNPoint is one (threads, series) measurement of Figures 16-19, in
// thousands of Hamming comparisons per second.
type NNPoint struct {
	Series  string
	Threads int
	KCmpSec float64
}

// Shared nearest-neighbor workload sizing.
const (
	nnItems       = 320
	nnComparisons = 1400
	nnSeed        = 41
)

// nnCluster builds a single-node appliance with the dataset seeded.
func nnCluster() (*core.Cluster, []core.PageAddr, []int, []byte, map[int][]byte, error) {
	c, err := core.NewCluster(scaledParams(1))
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	ps := c.Params.PageSize()
	items, query, err := workload.NearDuplicateSet(nnItems, ps, 7, 40, nnSeed)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	if err := c.SeedLinear(0, nnItems, func(idx int, page []byte) {
		copy(page, items[idx])
	}); err != nil {
		return nil, nil, nil, nil, nil, err
	}
	// Candidate stream: round-robin over the dataset, nnComparisons long.
	addrs := make([]core.PageAddr, nnComparisons)
	ids := make([]int, nnComparisons)
	for i := range addrs {
		ids[i] = i % nnItems
		addrs[i] = core.LinearPage(c.Params, 0, ids[i])
	}
	return c, addrs, ids, query, items, nil
}

// nnCandidates returns the id stream for in-memory backends.
func nnCandidates() []int {
	ids := make([]int, nnComparisons)
	for i := range ids {
		ids[i] = i % nnItems
	}
	return ids
}

// nnHost builds the host-only environment (no appliance).
func nnHost() (*sim.Engine, *hostmodel.CPU, map[int][]byte, []byte, error) {
	eng := sim.NewEngine()
	cpu, err := hostmodel.New(eng, "host", hostmodel.DefaultConfig())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	items, query, err := workload.NearDuplicateSet(nnItems, 8192, 7, 40, nnSeed)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return eng, cpu, items, query, nil
}

func ispRate(throttleBps int64) (float64, error) {
	c, addrs, ids, query, _, err := nnCluster()
	if err != nil {
		return 0, err
	}
	var throttle *sim.Pipe
	if throttleBps > 0 {
		throttle = sim.NewPipe(c.Eng, "throttle", throttleBps, 0)
	}
	res, err := lsh.RunISP(c, 0, addrs, ids, query, throttle)
	if err != nil {
		return 0, err
	}
	return res.PerSec / 1000, nil
}

func dramRate(threads int) (float64, error) {
	eng, cpu, items, query, err := nnHost()
	if err != nil {
		return 0, err
	}
	res, err := lsh.RunHostDRAM(eng, cpu, items, nnCandidates(), query, threads)
	if err != nil {
		return 0, err
	}
	return res.PerSec / 1000, nil
}

// Fig16 reproduces Figure 16: Baseline (BlueDBM ISP), Baseline-T
// (throttled to the off-the-shelf SSD's 600 MB/s) and H-DRAM
// (multithreaded software on DRAM-resident data) across thread counts.
func Fig16(threadSweep []int) ([]NNPoint, error) {
	if len(threadSweep) == 0 {
		threadSweep = []int{2, 4, 6, 8, 10, 12, 14, 16}
	}
	var out []NNPoint
	base, err := ispRate(0)
	if err != nil {
		return nil, err
	}
	thr, err := ispRate(600_000_000)
	if err != nil {
		return nil, err
	}
	for _, th := range threadSweep {
		d, err := dramRate(th)
		if err != nil {
			return nil, err
		}
		out = append(out,
			NNPoint{Series: "DRAM", Threads: th, KCmpSec: d},
			NNPoint{Series: "1 Node", Threads: th, KCmpSec: base},
			NNPoint{Series: "Throttled", Threads: th, KCmpSec: thr},
		)
	}
	return out, nil
}

// Fig17 reproduces Figure 17: mostly-DRAM configurations. The ISP
// series is the throttled baseline; the mixed series fault 10% of
// accesses to an SSD or 5% to a disk.
func Fig17(threadSweep []int) ([]NNPoint, error) {
	if len(threadSweep) == 0 {
		threadSweep = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	thr, err := ispRate(600_000_000)
	if err != nil {
		return nil, err
	}
	var out []NNPoint
	for _, th := range threadSweep {
		d, err := dramRate(th)
		if err != nil {
			return nil, err
		}
		eng, cpu, items, query, err := nnHost()
		if err != nil {
			return nil, err
		}
		ssd, err := altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
		if err != nil {
			return nil, err
		}
		fl, err := lsh.RunMixedDRAM(eng, cpu, ssd, items, nnCandidates(), query, th, 10, 5)
		if err != nil {
			return nil, err
		}
		eng2, cpu2, items2, query2, err := nnHost()
		if err != nil {
			return nil, err
		}
		hdd, err := altstore.NewHDD(eng2, "disk", altstore.DefaultHDD())
		if err != nil {
			return nil, err
		}
		dk, err := lsh.RunMixedDRAM(eng2, cpu2, hdd, items2, nnCandidates(), query2, th, 5, 5)
		if err != nil {
			return nil, err
		}
		out = append(out,
			NNPoint{Series: "DRAM", Threads: th, KCmpSec: d},
			NNPoint{Series: "ISP", Threads: th, KCmpSec: thr},
			NNPoint{Series: "10% Flash", Threads: th, KCmpSec: fl.PerSec / 1000},
			NNPoint{Series: "5% Disk", Threads: th, KCmpSec: dk.PerSec / 1000},
		)
	}
	return out, nil
}

// Fig18 reproduces Figure 18: the off-the-shelf SSD under random
// (H-RFlash) and artificially sequential (H-SFlash) access, against
// the throttled ISP baseline.
func Fig18(threadSweep []int) ([]NNPoint, error) {
	if len(threadSweep) == 0 {
		threadSweep = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	thr, err := ispRate(600_000_000)
	if err != nil {
		return nil, err
	}
	var out []NNPoint
	for _, th := range threadSweep {
		run := func(seq bool) (float64, error) {
			eng, cpu, items, query, err := nnHost()
			if err != nil {
				return 0, err
			}
			ssd, err := altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
			if err != nil {
				return 0, err
			}
			res, err := lsh.RunSSD(eng, cpu, ssd, items, nnCandidates(), query, th, seq)
			if err != nil {
				return 0, err
			}
			return res.PerSec / 1000, nil
		}
		rnd, err := run(false)
		if err != nil {
			return nil, err
		}
		seq, err := run(true)
		if err != nil {
			return nil, err
		}
		out = append(out,
			NNPoint{Series: "ISP", Threads: th, KCmpSec: thr},
			NNPoint{Series: "Seq Flash", Threads: th, KCmpSec: seq},
			NNPoint{Series: "Full Flash", Threads: th, KCmpSec: rnd},
		)
	}
	return out, nil
}

// Fig19 reproduces Figure 19: in-store processing versus host software
// on the same throttled device (the accelerator advantage, >= 20%).
func Fig19(threadSweep []int) ([]NNPoint, error) {
	if len(threadSweep) == 0 {
		threadSweep = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	thr, err := ispRate(600_000_000)
	if err != nil {
		return nil, err
	}
	var out []NNPoint
	for _, th := range threadSweep {
		c, addrs, ids, query, _, err := nnCluster()
		if err != nil {
			return nil, err
		}
		throttle := sim.NewPipe(c.Eng, "throttle", 600_000_000, 0)
		sw, err := lsh.RunHostFlash(c, 0, addrs, ids, query, th, throttle)
		if err != nil {
			return nil, err
		}
		out = append(out,
			NNPoint{Series: "ISP", Threads: th, KCmpSec: thr},
			NNPoint{Series: "BlueDBM+SW", Threads: th, KCmpSec: sw.PerSec / 1000},
		)
	}
	return out, nil
}

// FormatNN renders a nearest-neighbor figure's series.
func FormatNN(title string, pts []NNPoint) string {
	// Pivot: rows = threads, columns = series (insertion order).
	var seriesOrder []string
	seen := map[string]bool{}
	threadsOrder := []int{}
	seenTh := map[int]bool{}
	val := map[string]map[int]float64{}
	for _, p := range pts {
		if !seen[p.Series] {
			seen[p.Series] = true
			seriesOrder = append(seriesOrder, p.Series)
			val[p.Series] = map[int]float64{}
		}
		if !seenTh[p.Threads] {
			seenTh[p.Threads] = true
			threadsOrder = append(threadsOrder, p.Threads)
		}
		val[p.Series][p.Threads] = p.KCmpSec
	}
	var t table
	header := []string{"Threads"}
	header = append(header, seriesOrder...)
	t.row(header...)
	for _, th := range threadsOrder {
		row := []string{fmt.Sprint(th)}
		for _, s := range seriesOrder {
			row = append(row, f0(val[s][th]))
		}
		t.row(row...)
	}
	return title + " (K comparisons/s)\n" + t.String()
}
