package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// MultiStreamConfig sizes the scheduler experiment: many concurrent
// tenant streams driving the cluster through internal/sched.
type MultiStreamConfig struct {
	Nodes    int    `json:"nodes"`
	Streams  int    `json:"streams"`
	Depth    int    `json:"depth"`    // closed-loop outstanding per stream
	Requests int    `json:"requests"` // completions per stream
	Pages    int    `json:"pages"`    // seeded read region per node
	Seed     uint64 `json:"seed"`

	Sched sched.Config `json:"sched"`
}

// DefaultMultiStream returns the standard experiment shape: 64
// streams over 4 nodes. short halves the cluster and cuts request
// counts for smoke runs (streams stay at 64 so the concurrency story
// is intact).
func DefaultMultiStream(short bool) MultiStreamConfig {
	cfg := MultiStreamConfig{
		Nodes:    4,
		Streams:  64,
		Depth:    8,
		Requests: 192,
		Pages:    480,
		Seed:     42,
		Sched:    sched.DefaultConfig(),
	}
	if short {
		cfg.Nodes = 2
		cfg.Requests = 48
	}
	return cfg
}

// MultiStreamResult is the JSON-ready outcome of one run.
type MultiStreamResult struct {
	Config MultiStreamConfig   `json:"config"`
	Loop   workload.LoopResult `json:"loop"`
	Sched  sched.Snapshot      `json:"sched"`
}

// multiStreamSpecs deals classes and patterns across the streams:
// 1/8 realtime point reads, 3/8 interactive (zipfian/uniform), 4/8
// batch (scans and mixed read/write), issued round-robin across nodes
// and addressed across the whole cluster.
func multiStreamSpecs(cfg MultiStreamConfig) []workload.StreamSpec {
	specs := make([]workload.StreamSpec, cfg.Streams)
	for i := range specs {
		sp := workload.StreamSpec{
			Node:   i % cfg.Nodes,
			Target: -1,
			Seed:   cfg.Seed + uint64(i)*7919,
		}
		switch i % 8 {
		case 0:
			sp.Class, sp.Pattern = sched.Realtime, workload.Uniform
		case 1, 2:
			sp.Class, sp.Pattern = sched.Interactive, workload.Zipfian
		case 3:
			sp.Class, sp.Pattern = sched.Interactive, workload.Uniform
		case 4, 5:
			sp.Class, sp.Pattern = sched.Batch, workload.Scan
		default:
			sp.Class, sp.Pattern = sched.Batch, workload.Mixed
		}
		sp.Name = fmt.Sprintf("s%02d-%s-%s", i, sp.Class, sp.Pattern)
		specs[i] = sp
	}
	return specs
}

// MultiStream builds a cluster, seeds it, and drives cfg.Streams
// closed-loop streams through the scheduler.
func MultiStream(cfg MultiStreamConfig) (MultiStreamResult, error) {
	c, err := core.NewCluster(scaledParams(cfg.Nodes))
	if err != nil {
		return MultiStreamResult{}, err
	}
	for n := 0; n < cfg.Nodes; n++ {
		if err := c.SeedLinear(n, cfg.Pages, workload.RandomPages(cfg.Seed)); err != nil {
			return MultiStreamResult{}, fmt.Errorf("seed node %d: %w", n, err)
		}
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return MultiStreamResult{}, err
	}
	res, err := workload.RunClosedLoop(s, c, multiStreamSpecs(cfg), cfg.Pages, cfg.Depth, cfg.Requests, 0)
	if err != nil {
		return MultiStreamResult{}, err
	}
	if res.Errors > 0 {
		return MultiStreamResult{}, fmt.Errorf("multistream: %d request errors", res.Errors)
	}
	return MultiStreamResult{Config: cfg, Loop: res, Sched: s.Snapshot()}, nil
}

// BatchComparison contrasts the same multi-stream workload under
// three submission disciplines, isolating what batched flash I/O and
// deep queues buy (the paper's "thousands of requests in flight"
// claim, §3.3/§6.5).
type BatchComparison struct {
	// Batched is the production scheduler: BatchSize-request
	// doorbells, MaxInflight-deep device window.
	Batched MultiStreamResult `json:"batched"`
	// NoBatch keeps the deep device window but rings one doorbell per
	// request (BatchSize=1): every page pays the full software charge.
	NoBatch MultiStreamResult `json:"nobatch"`
	// Depth1 is the naive host path: one request outstanding at a
	// time per node.
	Depth1 MultiStreamResult `json:"depth1"`

	SpeedupVsNoBatch float64 `json:"speedup_vs_nobatch_x"`
	SpeedupVsDepth1  float64 `json:"speedup_vs_depth1_x"`
}

// MultiStreamBatchComparison runs the three disciplines on identical
// workloads and reports throughput ratios.
func MultiStreamBatchComparison(cfg MultiStreamConfig) (BatchComparison, error) {
	var cmp BatchComparison
	var err error
	if cmp.Batched, err = MultiStream(cfg); err != nil {
		return cmp, fmt.Errorf("batched: %w", err)
	}
	nb := cfg
	nb.Sched.BatchSize = 1
	if cmp.NoBatch, err = MultiStream(nb); err != nil {
		return cmp, fmt.Errorf("nobatch: %w", err)
	}
	d1 := cfg
	d1.Sched.BatchSize = 1
	d1.Sched.MaxInflight = 1
	if cmp.Depth1, err = MultiStream(d1); err != nil {
		return cmp, fmt.Errorf("depth1: %w", err)
	}
	if t := cmp.NoBatch.Sched.TotalOpsPerSec; t > 0 {
		cmp.SpeedupVsNoBatch = cmp.Batched.Sched.TotalOpsPerSec / t
	}
	if t := cmp.Depth1.Sched.TotalOpsPerSec; t > 0 {
		cmp.SpeedupVsDepth1 = cmp.Batched.Sched.TotalOpsPerSec / t
	}
	return cmp, nil
}

// FormatMultiStream renders one run the way the figure formatters do.
func FormatMultiStream(r MultiStreamResult) string {
	var t table
	t.row("Class", "Ops", "p50 us", "p99 us", "Kops/s", "MB/s")
	for _, cs := range r.Sched.Classes {
		if cs.Ops == 0 {
			continue
		}
		t.row(cs.Class, fmt.Sprintf("%d", cs.Ops), f1(cs.P50Us), f1(cs.P99Us),
			f1(cs.OpsPerSec/1e3), f1(cs.MBps))
	}
	head := fmt.Sprintf(
		"Multi-stream scheduler: %d streams, %d nodes, depth %d, batch %d (%.1f avg)\n"+
			"total %.1f Kops/s  %.1f MB/s  in %s virtual  (%d coalesced, %d backpressure)\n",
		r.Config.Streams, r.Config.Nodes, r.Config.Depth, r.Config.Sched.BatchSize,
		r.Sched.AvgBatch, r.Sched.TotalOpsPerSec/1e3, r.Sched.TotalMBps,
		sim.Time(r.Sched.ElapsedMs*float64(sim.Millisecond)), r.Sched.Coalesced, r.Loop.Backpressure)
	return head + t.String()
}

// FormatBatchComparison renders the three-way comparison.
func FormatBatchComparison(cmp BatchComparison) string {
	var t table
	t.row("Discipline", "Batch", "Window", "Kops/s", "MB/s", "p99 us (rt)")
	rows := []struct {
		name string
		r    MultiStreamResult
	}{
		{"batched", cmp.Batched},
		{"nobatch", cmp.NoBatch},
		{"depth1", cmp.Depth1},
	}
	for _, row := range rows {
		rt := ""
		for _, cs := range row.r.Sched.Classes {
			if cs.Class == "realtime" {
				rt = f1(cs.P99Us)
			}
		}
		t.row(row.name,
			fmt.Sprintf("%d", row.r.Config.Sched.BatchSize),
			fmt.Sprintf("%d", row.r.Config.Sched.MaxInflight),
			f1(row.r.Sched.TotalOpsPerSec/1e3), f1(row.r.Sched.TotalMBps), rt)
	}
	return fmt.Sprintf("Scheduler submission disciplines (batched %.1fx vs nobatch, %.1fx vs depth1)\n",
		cmp.SpeedupVsNoBatch, cmp.SpeedupVsDepth1) + t.String()
}
