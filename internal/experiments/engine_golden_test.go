package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Golden values captured from the pre-refactor engine (global
// min-heap, heap-allocated events). The timer-wheel/pool engine must
// reproduce them exactly: the wheel changes the *data structure*, not
// the (time, insertion-seq) firing order, so every latency sample,
// batch boundary and coalescing decision — and therefore this digest
// — must be byte-identical. If a substrate change moves these values
// it changed simulation semantics, not just speed, and either has a
// bug or needs this golden (and an explanation) updated.
const (
	goldenEngineFired  = 65591
	goldenEngineNow    = sim.Time(50188497)
	goldenEngineDigest = "3163921aec0dedd746aa50dbd68784b80dd0f16d39efe635f0881f8df1bf378b"
)

// goldenScenario runs the seeded 4-node full-stack scenario: the
// engine-bench workload mix (multi-class, cluster-addressed reads and
// writes through scheduler, fabric, host interface and NAND) at a
// fixed size.
func goldenScenario(t *testing.T) (fired uint64, now sim.Time, digest string) {
	t.Helper()
	const nodes = 4
	cfg := DefaultEngineBench(false)
	cfg.Requests = 48

	c, err := core.NewCluster(scaledParams(nodes))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		if err := c.SeedLinear(n, cfg.Pages, workload.RandomPages(cfg.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		t.Fatal(err)
	}
	loop, err := workload.RunClosedLoop(s, c, engineSpecs(cfg, nodes), cfg.Pages, cfg.Depth, cfg.Requests, 0)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := json.Marshal(struct {
		Loop  workload.LoopResult `json:"loop"`
		Sched sched.Snapshot      `json:"sched"`
	}{loop, s.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	return c.Eng.Fired(), c.Eng.Now(), hex.EncodeToString(sum[:])
}

// TestEngineGoldenDeterminism pins the substrate's exact event
// ordering across refactors (and across runs: the scenario is fully
// seeded, so two executions in the same binary must already agree).
func TestEngineGoldenDeterminism(t *testing.T) {
	fired, now, digest := goldenScenario(t)
	if fired != goldenEngineFired {
		t.Errorf("events fired = %d, want %d (event population changed)", fired, goldenEngineFired)
	}
	if now != goldenEngineNow {
		t.Errorf("final virtual time = %d, want %d (timing changed)", int64(now), int64(goldenEngineNow))
	}
	if digest != goldenEngineDigest {
		t.Errorf("stats digest = %s, want %s (latency/throughput stats drifted)", digest, goldenEngineDigest)
	}
}
