package experiments

import (
	"testing"

	"repro/internal/sim"
)

// Golden values captured from the pre-refactor engine (global
// min-heap, heap-allocated events). The timer-wheel/pool engine must
// reproduce them exactly: the wheel changes the *data structure*, not
// the (time, insertion-seq) firing order, so every latency sample,
// batch boundary and coalescing decision — and therefore this digest
// — must be byte-identical. If a substrate change moves these values
// it changed simulation semantics, not just speed, and either has a
// bug or needs this golden (and an explanation) updated.
const (
	goldenEngineFired  = 65591
	goldenEngineNow    = sim.Time(50188497)
	goldenEngineDigest = "3163921aec0dedd746aa50dbd68784b80dd0f16d39efe635f0881f8df1bf378b"
)

// TestEngineGoldenDeterminism pins the substrate's exact event
// ordering across refactors.
func TestEngineGoldenDeterminism(t *testing.T) {
	fired, now, digest, err := EngineGoldenDigest()
	if err != nil {
		t.Fatal(err)
	}
	if fired != goldenEngineFired {
		t.Errorf("events fired = %d, want %d (event population changed)", fired, goldenEngineFired)
	}
	if now != goldenEngineNow {
		t.Errorf("final virtual time = %d, want %d (timing changed)", int64(now), int64(goldenEngineNow))
	}
	if digest != goldenEngineDigest {
		t.Errorf("stats digest = %s, want %s (latency/throughput stats drifted)", digest, goldenEngineDigest)
	}
}

// TestEngineGoldenRepeatRun runs the golden scenario twice in one
// process and requires byte-identical digests. A single run compared
// against a captured constant cannot distinguish "deterministic" from
// "accidentally matched once"; two runs in the same process will
// diverge under exactly the failure modes simlint's maprange check
// exists to prevent (map iteration order is re-randomized per map, so
// an order-dependent loop gives different interleavings run to run)
// and under any global mutable state leaking between simulations.
func TestEngineGoldenRepeatRun(t *testing.T) {
	fired1, now1, digest1, err := EngineGoldenDigest()
	if err != nil {
		t.Fatal(err)
	}
	fired2, now2, digest2, err := EngineGoldenDigest()
	if err != nil {
		t.Fatal(err)
	}
	if fired1 != fired2 || now1 != now2 || digest1 != digest2 {
		t.Errorf("repeat run diverged:\n run1: fired=%d now=%d digest=%s\n run2: fired=%d now=%d digest=%s",
			fired1, int64(now1), digest1, fired2, int64(now2), digest2)
	}
}
