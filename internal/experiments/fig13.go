package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/flashserver"
	"repro/internal/sim"
)

// Fig13Row is one bar of Figure 13.
type Fig13Row struct {
	Scenario string
	GBps     float64
}

// Fig13 reproduces Figure 13 (§6.5): sustained random 8 KB read
// bandwidth under four request mixes:
//
//	Host-Local: host reads local flash over PCIe  (paper: 1.6 GB/s cap)
//	ISP-Local:  ISP consumes local flash          (paper: 2.4 GB/s)
//	ISP-2Nodes: 50% remote over ONE serial link   (paper: ~3.4 GB/s)
//	ISP-3Nodes: 33% to each of two remotes, TWO
//	            links per remote                  (paper: ~6.5 GB/s)
func Fig13() ([]Fig13Row, error) {
	var out []Fig13Row

	hostLocal, err := fig13HostLocal()
	if err != nil {
		return nil, err
	}
	out = append(out, Fig13Row{Scenario: "Host-Local", GBps: hostLocal})

	for _, sc := range []struct {
		name    string
		remotes int
		links   int
	}{
		{"ISP-Local", 0, 0},
		{"ISP-2Nodes", 1, 1},
		{"ISP-3Nodes", 2, 2},
	} {
		bw, err := fig13ISP(sc.remotes, sc.links)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", sc.name, err)
		}
		out = append(out, Fig13Row{Scenario: sc.name, GBps: bw})
	}
	return out, nil
}

// fig13Seed fills every target node with readable pages.
func fig13Seed(c *core.Cluster, nodes []int, pages int) error {
	for _, n := range nodes {
		if err := c.SeedLinear(n, pages, nil); err != nil {
			return err
		}
	}
	return nil
}

// measureWindow counts pages fully delivered during a fixed window of
// virtual time with `engines` independent request streams per target.
const (
	fig13Pages   = 480 // seeded pages per node
	fig13Engines = 32  // request streams per target node
	fig13Window  = 6   // in-flight reads per stream
	fig13Time    = 6 * sim.Millisecond
)

func fig13HostLocal() (float64, error) {
	c, err := core.NewCluster(scaledParams(1))
	if err != nil {
		return 0, err
	}
	if err := fig13Seed(c, []int{0}, fig13Pages); err != nil {
		return 0, err
	}
	node := c.Node(0)
	rng := sim.NewRNG(77)
	delivered := 0
	start := c.Eng.Now()
	deadline := start + fig13Time
	// The host keeps many in-flight requests using its 128 read
	// buffers; software overhead is paid per batch, not per page
	// (the driver submits queues of requests).
	for s := 0; s < fig13Engines; s++ {
		var pump func()
		pump = func() {
			if c.Eng.Now() >= deadline {
				return
			}
			a := core.LinearPage(c.Params, 0, rng.Intn(fig13Pages))
			node.ReadLocal(a.Card, a.Addr, func(data []byte, err error) {
				if err != nil {
					pump()
					return
				}
				node.Host.AcquireReadBuffer(len(data), func(buf int) {
					node.Host.ReleaseReadBuffer(buf)
					if c.Eng.Now() < deadline {
						delivered++
					}
					pump()
				}, func(buf int) {
					node.Host.DeviceWriteChunk(buf, len(data), true)
				})
			})
		}
		for w := 0; w < fig13Window; w++ {
			pump()
		}
	}
	c.Eng.RunUntil(deadline)
	elapsed := (c.Eng.Now() - start).Seconds()
	return float64(delivered) * float64(c.Params.PageSize()) / elapsed / 1e9, nil
}

// fig13ISP measures the ISP-consumed aggregate with `remotes` remote
// nodes connected by `links` parallel cables each.
func fig13ISP(remotes, links int) (float64, error) {
	nodes := remotes + 1
	p := scaledParams(nodes)
	if nodes > 1 {
		topo := fabric.Topology{Name: "fig13", Nodes: nodes}
		for r := 1; r <= remotes; r++ {
			for l := 0; l < links; l++ {
				topo.Edges = append(topo.Edges, [2]int{0, r})
			}
		}
		p.Topology = topo
	}
	c, err := core.NewCluster(p)
	if err != nil {
		return 0, err
	}
	targets := []int{0}
	for r := 1; r <= remotes; r++ {
		targets = append(targets, r)
	}
	if err := fig13Seed(c, targets, fig13Pages); err != nil {
		return 0, err
	}
	node := c.Node(0)
	rng := sim.NewRNG(78)
	delivered := 0
	start := c.Eng.Now()
	deadline := start + fig13Time
	for _, target := range targets {
		target := target
		for s := 0; s < fig13Engines; s++ {
			// Local engines get private in-order flash interfaces, the
			// way hardware ISP engines attach to the Flash Server with
			// their own request channels; remote reads ride the shared
			// network lanes.
			var ifaces []*flashserver.Iface
			if target == 0 {
				for card := 0; card < c.Params.CardsPerNode; card++ {
					ifaces = append(ifaces, node.NewIface(card, fmt.Sprintf("fig13-e%d-c%d", s, card)))
				}
			}
			var pump func()
			pump = func() {
				if c.Eng.Now() >= deadline {
					return
				}
				a := core.LinearPage(c.Params, target, rng.Intn(fig13Pages))
				done := func(_ []byte, err error) {
					if err == nil && c.Eng.Now() < deadline {
						delivered++
					}
					pump()
				}
				if target == 0 {
					ifaces[a.Card].ReadPhysical(a.Addr, done)
				} else {
					node.ISPRead(a, done)
				}
			}
			for w := 0; w < fig13Window; w++ {
				pump()
			}
		}
	}
	c.Eng.RunUntil(deadline)
	elapsed := (c.Eng.Now() - start).Seconds()
	return float64(delivered) * float64(c.Params.PageSize()) / elapsed / 1e9, nil
}

// FormatFig13 renders the bars.
func FormatFig13(rows []Fig13Row) string {
	var t table
	t.row("Scenario", "GB/s")
	for _, r := range rows {
		t.row(r.Scenario, f2(r.GBps))
	}
	return "Figure 13: read bandwidth by access mix\n" + t.String()
}
