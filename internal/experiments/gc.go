package experiments

// The GC-isolation experiment: the canonical flash QoS scenario the
// volume layer exists for. Latency-class tenants do point reads while
// churn writers overwrite the logical space, forcing the per-card
// FTLs into steady-state garbage collection. The same offered load
// runs twice:
//
//   - GC-aware: the scheduler's Background token budget defers
//     relocation I/O while latency-class queues are hot and escalates
//     it as free-block headroom shrinks;
//   - GC-oblivious: Background dispatches unthrottled, so a
//     collection's pipelined relocation floods the device window and
//     realtime reads queue behind it at the flash.
//
// The headline number is the realtime-class p99 ratio between the two.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
	"repro/internal/workload"
)

// GCIsolationConfig sizes the experiment.
type GCIsolationConfig struct {
	Nodes    int    `json:"nodes"`
	Readers  int    `json:"readers"`  // realtime point-read streams
	Writers  int    `json:"writers"`  // batch churn-writer streams
	Depth    int    `json:"depth"`    // closed-loop outstanding per stream
	Requests int    `json:"requests"` // completions per stream
	Seed     uint64 `json:"seed"`

	Sched sched.Config `json:"sched"`
	FTL   ftl.Config   `json:"ftl"`
}

// DefaultGCIsolation returns the standard shape: a 2-node cluster
// whose volume is fully seeded, half the streams reading at realtime
// while the other half churns. short cuts request counts for smoke
// runs.
func DefaultGCIsolation(short bool) GCIsolationConfig {
	cfg := GCIsolationConfig{
		Nodes:    2,
		Readers:  8,
		Writers:  4,
		Depth:    4,
		Requests: 768,
		Seed:     42,
		Sched:    sched.DefaultConfig(),
		FTL:      ftl.Config{OverProvision: 0.25, GCLowWater: 4, WearLevelEvery: 64, GCPipeline: 16},
	}
	// The dispatcher must own the device window for QoS (and the GC
	// token budget) to act: with a window wider than the offered load,
	// contention moves into the per-card FIFOs where class is
	// invisible. 16 slots per node keeps the admission queue — where
	// priority and GC deferral act — as the contention point.
	cfg.Sched.MaxInflight = 16
	cfg.Sched.BatchSize = 16
	if short {
		cfg.Requests = 192
	}
	return cfg
}

// gcParams shrinks flash capacity further than scaledParams so the
// volume can be seeded and churned to steady-state GC in seconds of
// wall-clock time.
func gcParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	// Small capacity so churn reaches steady-state GC quickly, but
	// full-size blocks: the erase rate per written page falls with
	// block size, keeping unavoidable read-behind-erase chip
	// collisions (identical in both arms) out of the p99 quantile that
	// the dispatch policies are being compared on.
	p.Geometry.ChipsPerBus = 2
	p.Geometry.BlocksPerChip = 2
	p.Geometry.PagesPerBlock = 32
	return p
}

// GCArm is one run (GC-aware or GC-oblivious).
type GCArm struct {
	Loop   workload.LoopResult `json:"loop"`
	Sched  sched.Snapshot      `json:"sched"`
	Volume volume.Stats        `json:"volume"`
}

// realtimeClass pulls the realtime class's snapshot out of an arm.
func (a GCArm) realtimeClass() sched.ClassSnapshot {
	for _, cs := range a.Sched.Classes {
		if cs.Class == "realtime" {
			return cs
		}
	}
	return sched.ClassSnapshot{}
}

// GCIsolationResult is the JSON-ready outcome.
type GCIsolationResult struct {
	Config    GCIsolationConfig `json:"config"`
	Aware     GCArm             `json:"gc_aware"`
	Oblivious GCArm             `json:"gc_oblivious"`

	// RealtimeP99*Us is each arm's realtime read tail latency under
	// identical offered load; ImprovementX is oblivious/aware.
	RealtimeP99AwareUs     float64 `json:"realtime_p99_aware_us"`
	RealtimeP99ObliviousUs float64 `json:"realtime_p99_oblivious_us"`
	ImprovementX           float64 `json:"p99_improvement_x"`
}

// gcSpecs builds the stream mix: realtime point readers over the
// whole volume plus full-churn batch writers.
func gcSpecs(cfg GCIsolationConfig) []workload.VolumeStreamSpec {
	var specs []workload.VolumeStreamSpec
	for i := 0; i < cfg.Readers; i++ {
		specs = append(specs, workload.VolumeStreamSpec{
			Name:  fmt.Sprintf("rt%02d", i),
			Class: sched.Realtime,
			// Latency probes: sparse point reads (depth 1, ~2 kreq/s
			// per probe) that stay live for exactly the churn window.
			// A saturating realtime loop would measure its own
			// self-queueing; sparse arrivals measure what they should —
			// how occupied GC leaves the device when a latency-critical
			// read shows up.
			Requests:  -1,
			Depth:     1,
			ThinkTime: 500 * sim.Microsecond,
			Seed:      cfg.Seed + uint64(i)*1299709,
		})
	}
	for i := 0; i < cfg.Writers; i++ {
		specs = append(specs, workload.VolumeStreamSpec{
			Name:          fmt.Sprintf("wr%02d", i),
			Class:         sched.Batch,
			WriteFraction: 1.0,
			// Paced, not saturating: heavy-but-sustainable churn. A
			// fully saturating writer pool drives the erase rate so
			// high that unavoidable read-behind-erase chip collisions
			// (identical under any dispatch policy) dominate the p99
			// quantile and hide what scheduling can and cannot do.
			Depth:     2,
			ThinkTime: 4 * sim.Millisecond,
			Seed:      cfg.Seed + 7 + uint64(i)*15485863,
		})
	}
	return specs
}

// runGCArm builds a fresh cluster+scheduler+volume, seeds the whole
// logical space, then drives the mixed workload with the given GC
// dispatch policy.
func runGCArm(cfg GCIsolationConfig, gcDefer bool) (GCArm, error) {
	scfg := cfg.Sched
	scfg.GCDefer = gcDefer
	c, err := core.NewCluster(gcParams(cfg.Nodes))
	if err != nil {
		return GCArm{}, err
	}
	s, err := sched.New(c, scfg)
	if err != nil {
		return GCArm{}, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return GCArm{}, err
	}
	if err := workload.SeedVolume(v, c, v.Pages(), 64, cfg.Seed); err != nil {
		return GCArm{}, err
	}
	// Warm the FTLs into churn before measuring: one unmeasured round
	// of overwrites pushes the free pools toward the GC region.
	warm := gcSpecs(cfg)
	for i := range warm {
		warm[i].Seed ^= 0x5eed
	}
	if _, err := workload.RunVolumeClosedLoop(v, c, warm, cfg.Depth, cfg.Requests/4); err != nil {
		return GCArm{}, err
	}
	s.ResetStats()
	base := v.Stats()
	loop, err := workload.RunVolumeClosedLoop(v, c, gcSpecs(cfg), cfg.Depth, cfg.Requests)
	if err != nil {
		return GCArm{}, err
	}
	if loop.Errors > 0 {
		return GCArm{}, fmt.Errorf("%d request errors", loop.Errors)
	}
	// Volume counters, like the scheduler snapshot, cover only the
	// measured window — seeding and warm-up I/O are identical in both
	// arms and would dilute the cross-arm deltas.
	arm := GCArm{Loop: loop, Sched: s.Snapshot(), Volume: v.Stats().Delta(base)}
	if arm.Volume.GCMoves == 0 {
		return GCArm{}, fmt.Errorf("no garbage collection happened: the churn load is too light for the experiment to mean anything")
	}
	return arm, nil
}

// GCIsolation runs the same write-churn workload under GC-aware and
// GC-oblivious dispatch and compares realtime tail latency.
func GCIsolation(cfg GCIsolationConfig) (GCIsolationResult, error) {
	res := GCIsolationResult{Config: cfg}
	var err error
	if res.Aware, err = runGCArm(cfg, true); err != nil {
		return res, fmt.Errorf("gc-aware arm: %w", err)
	}
	if res.Oblivious, err = runGCArm(cfg, false); err != nil {
		return res, fmt.Errorf("gc-oblivious arm: %w", err)
	}
	res.RealtimeP99AwareUs = res.Aware.realtimeClass().P99Us
	res.RealtimeP99ObliviousUs = res.Oblivious.realtimeClass().P99Us
	if res.RealtimeP99AwareUs > 0 {
		res.ImprovementX = res.RealtimeP99ObliviousUs / res.RealtimeP99AwareUs
	}
	return res, nil
}

// FormatGCIsolation renders the comparison.
func FormatGCIsolation(r GCIsolationResult) string {
	var t table
	t.row("Dispatch", "rt p50 us", "rt p99 us", "Kops/s", "GC moves", "erases", "WA")
	rows := []struct {
		name string
		a    GCArm
	}{
		{"gc-aware", r.Aware},
		{"gc-oblivious", r.Oblivious},
	}
	for _, row := range rows {
		rt := row.a.realtimeClass()
		t.row(row.name, f1(rt.P50Us), f1(rt.P99Us),
			f1(row.a.Sched.TotalOpsPerSec/1e3),
			fmt.Sprintf("%d", row.a.Volume.GCMoves),
			fmt.Sprintf("%d", row.a.Volume.FlashErases),
			f2(row.a.Volume.WriteAmp))
	}
	head := fmt.Sprintf(
		"GC isolation: %d realtime readers + %d churn writers, %d nodes, logical volume over per-card FTLs\n"+
			"realtime p99 %.1f us (GC-aware) vs %.1f us (GC-oblivious): %.1fx better under identical load\n",
		r.Config.Readers, r.Config.Writers, r.Config.Nodes,
		r.RealtimeP99AwareUs, r.RealtimeP99ObliviousUs, r.ImprovementX)
	return head + t.String()
}
