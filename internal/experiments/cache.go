package experiments

// The cache-tier experiment: quantifies the host-DRAM cache above the
// logical volume (internal/cache) the way the paper's §7/Figure 21
// cost argument is framed — how much DRAM does it take to get DRAM
// latency, and what does each regime cost in watts?
//
// Two parts:
//
//   - Hit regimes: the same hot/cold read workload runs with the cache
//     off, then with per-node capacity covering 10% / 50% / 90% of the
//     hot set, then against a DRAM-cluster strawman (capacity covering
//     the whole working set). Latency is measured client-side — cache
//     hits never enter the flash scheduler, so the scheduler's own
//     histograms cannot see them. Perf-per-watt weighs each arm's
//     read throughput against its power budget: the flash arms at the
//     appliance's cluster budget (Table 3 scaled), the strawman at a
//     RAM-cloud budget sized to hold the same modeled dataset.
//
//   - Invalidation-heavy pair: cross-node writers churn a shared hot
//     region while sparse realtime probes read it, with the cache on
//     and off at identical offered load. Write-back makes every flush
//     broadcast invalidations, so this is the cache's worst case; the
//     headline is the probe p99 ratio (on/off), which must stay ~1.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/hostmodel"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
	"repro/internal/workload"
)

// CacheTierConfig sizes the experiment.
type CacheTierConfig struct {
	Nodes       int     `json:"nodes"`
	Readers     int     `json:"readers"`      // hot/cold reader streams
	Depth       int     `json:"depth"`        // outstanding per reader
	Requests    int     `json:"requests"`     // completions per reader
	HotDivisor  int     `json:"hot_divisor"`  // hot set = volume pages / divisor
	HotFraction float64 `json:"hot_fraction"` // accesses landing in the hot set

	InvalWriters  int `json:"inval_writers"`  // cross-node churn writers
	InvalRequests int `json:"inval_requests"` // completions per writer

	// FlashGBPerNode is the modeled per-node flash capacity the power
	// comparison assumes (the simulated geometry is shrunk for run
	// time; power is argued at the appliance's real scale, as the
	// paper's Table 3 does).
	FlashGBPerNode int `json:"flash_gb_per_node"`

	Seed  uint64       `json:"seed"`
	Sched sched.Config `json:"sched"`
	FTL   ftl.Config   `json:"ftl"`
}

// DefaultCacheTier returns the standard shape: a 4-node cluster, two
// readers per node, hot set an eighth of the volume. short cuts
// request counts for smoke runs.
func DefaultCacheTier(short bool) CacheTierConfig {
	cfg := CacheTierConfig{
		Nodes:          4,
		Readers:        8,
		Depth:          4,
		Requests:       1024,
		HotDivisor:     8,
		HotFraction:    0.9,
		InvalWriters:   4,
		InvalRequests:  512,
		FlashGBPerNode: 1024,
		Seed:           42,
		Sched:          sched.DefaultConfig(),
		FTL:            ftl.DefaultConfig(),
	}
	cfg.Sched.MaxInflight = 16
	cfg.Sched.BatchSize = 16
	if short {
		cfg.Nodes = 2
		cfg.Readers = 4
		cfg.Requests = 256
		cfg.InvalWriters = 2
		cfg.InvalRequests = 128
	}
	return cfg
}

// CacheRegimeArm is one hit-regime run.
type CacheRegimeArm struct {
	Name string `json:"name"`
	// CapacityFrac is per-node cache capacity as a fraction of the hot
	// set (0 = cache off, -1 = whole working set, the DRAM strawman).
	CapacityFrac  float64 `json:"capacity_frac"`
	CapacityPages int     `json:"capacity_pages_per_node"`

	Result workload.HotColdResult `json:"result"`
	Cache  cache.Stats            `json:"cache"`
	Host   hostmodel.Stats        `json:"host"`
	Volume volume.Stats           `json:"volume"`

	Watts      float64 `json:"watts"`
	KopsPerSec float64 `json:"kops_per_sec"`
	OpsPerSecW float64 `json:"ops_per_sec_per_watt"`
}

// CacheInvalArm is one side of the invalidation-heavy pair.
type CacheInvalArm struct {
	Name   string                 `json:"name"`
	Result workload.HotColdResult `json:"result"`
	Cache  cache.Stats            `json:"cache"`
	P99Us  float64                `json:"probe_p99_us"`
}

// CacheTierResult is the JSON-ready outcome.
type CacheTierResult struct {
	Config  CacheTierConfig  `json:"config"`
	Regimes []CacheRegimeArm `json:"regimes"`

	// MeanReadImprovementX is off-mean / 90%-regime-mean: the headline
	// read-latency win from keeping 90% of the hot set DRAM-resident.
	MeanReadImprovementX float64 `json:"mean_read_improvement_x"`

	InvalOff CacheInvalArm `json:"inval_off"`
	InvalOn  CacheInvalArm `json:"inval_on"`
	// InvalidationP99RatioX is on/off probe p99 under the
	// invalidation-heavy write mix; ~1.0 means coherence is free at
	// the tail.
	InvalidationP99RatioX float64 `json:"invalidation_p99_ratio_x"`
}

// cacheCapacity maps a regime fraction onto per-node frame count.
func cacheCapacity(frac float64, hot, pages int) int {
	if frac < 0 {
		return pages
	}
	n := int(frac * float64(hot))
	if n < 1 {
		n = 1
	}
	return n
}

// volumePages reports the logical page count the experiment geometry
// yields, without seeding anything (arms size their hot set and cache
// capacity from it before building their real stack).
func volumePages(cfg CacheTierConfig) (int, error) {
	c, err := core.NewCluster(gcParams(cfg.Nodes))
	if err != nil {
		return 0, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return 0, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return 0, err
	}
	return v.Pages(), nil
}

// cacheStack builds a fresh fully seeded cluster + volume, plus the
// cache when capacityPages > 0.
func cacheStack(cfg CacheTierConfig, capacityPages int, withTier bool) (*core.Cluster, *volume.Volume, *cache.Cache, error) {
	c, err := core.NewCluster(gcParams(cfg.Nodes))
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return nil, nil, nil, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := workload.SeedVolume(v, c, v.Pages(), 64, cfg.Seed); err != nil {
		return nil, nil, nil, err
	}
	var ca *cache.Cache
	if capacityPages > 0 {
		ccfg := cache.DefaultConfig(capacityPages)
		if withTier {
			ccfg.Tier = cache.DefaultTier()
		}
		if ca, err = cache.New(c, v, ccfg); err != nil {
			return nil, nil, nil, err
		}
	}
	return c, v, ca, nil
}

// readerSpecs builds the hot/cold reader mix over the given surfaces
// (one per reader, round-robin across nodes).
func readerSpecs(cfg CacheTierConfig, surfaces []workload.PageRW, pages, hot int, record bool, seedSalt uint64) []workload.HotColdSpec {
	specs := make([]workload.HotColdSpec, len(surfaces))
	for i, rw := range surfaces {
		specs[i] = workload.HotColdSpec{
			Name:        fmt.Sprintf("rd%02d", i),
			RW:          rw,
			Pages:       pages,
			HotPages:    hot,
			HotFraction: cfg.HotFraction,
			Record:      record,
			Seed:        cfg.Seed ^ seedSalt + uint64(i)*1299709,
		}
	}
	return specs
}

// hostDelta sums the per-node host-envelope deltas.
func hostDelta(c *core.Cluster, base []hostmodel.Stats) hostmodel.Stats {
	var out hostmodel.Stats
	for n := 0; n < c.Nodes(); n++ {
		d := c.Node(n).CPU.Stats().Delta(base[n])
		out.DRAMBytesMoved += d.DRAMBytesMoved
		out.DRAMTransfers += d.DRAMTransfers
		out.CoreBusyMs += d.CoreBusyMs
	}
	return out
}

func hostBase(c *core.Cluster) []hostmodel.Stats {
	base := make([]hostmodel.Stats, c.Nodes())
	for n := range base {
		base[n] = c.Node(n).CPU.Stats()
	}
	return base
}

// runCacheRegime runs one hit-regime arm on a fresh stack.
func runCacheRegime(cfg CacheTierConfig, name string, frac float64) (CacheRegimeArm, error) {
	arm := CacheRegimeArm{Name: name, CapacityFrac: frac}
	// Capacity is resolved against the real (post-overprovision)
	// volume size, probed without seeding.
	pages, err := volumePages(cfg)
	if err != nil {
		return arm, err
	}
	hot := pages / cfg.HotDivisor
	if frac != 0 {
		arm.CapacityPages = cacheCapacity(frac, hot, pages)
	}
	c, v, ca, err := cacheStack(cfg, arm.CapacityPages, true)
	if err != nil {
		return arm, err
	}
	surfaces := make([]workload.PageRW, cfg.Readers)
	for i := range surfaces {
		if ca != nil {
			st, err := ca.NewStream(fmt.Sprintf("rd%02d", i), i%cfg.Nodes, sched.Interactive)
			if err != nil {
				return arm, err
			}
			surfaces[i] = st
		} else {
			st, err := v.NewStream(fmt.Sprintf("rd%02d", i), sched.Interactive)
			if err != nil {
				return arm, err
			}
			surfaces[i] = st
		}
	}
	// Warm unmeasured: populates the caches (and, with the cache off,
	// equalizes FTL state across arms).
	warm := readerSpecs(cfg, surfaces, v.Pages(), hot, false, 0x5eed)
	if _, err := workload.RunHotCold(c, v.PageSize(), warm, cfg.Depth, cfg.Requests/4); err != nil {
		return arm, err
	}
	volBase := v.Stats()
	hBase := hostBase(c)
	var cBase cache.Stats
	if ca != nil {
		cBase = ca.Stats()
	}
	res, err := workload.RunHotCold(c, v.PageSize(),
		readerSpecs(cfg, surfaces, v.Pages(), hot, true, 0), cfg.Depth, cfg.Requests)
	if err != nil {
		return arm, err
	}
	if res.Loop.Errors > 0 {
		return arm, fmt.Errorf("%d request errors", res.Loop.Errors)
	}
	arm.Result = res
	arm.Volume = v.Stats().Delta(volBase)
	arm.Host = hostDelta(c, hBase)
	if ca != nil {
		arm.Cache = ca.Stats().Delta(cBase)
	}
	if frac < 0 {
		// DRAM strawman: a RAM cloud holding the appliance's modeled
		// dataset (per-node flash capacity x nodes).
		arm.Watts = power.RAMCloudBudget(cfg.Nodes*cfg.FlashGBPerNode, 256).Total()
	} else {
		arm.Watts = power.ClusterBudget(cfg.Nodes, gcParams(cfg.Nodes).CardsPerNode).Total()
	}
	if res.ElapsedUs > 0 {
		ops := float64(res.Loop.Completed) * 1e6 / res.ElapsedUs
		arm.KopsPerSec = ops / 1e3
		if arm.Watts > 0 {
			arm.OpsPerSecW = ops / arm.Watts
		}
	}
	return arm, nil
}

// invalSpecs builds the invalidation-heavy mix: churn writers over a
// shared hot region plus one sparse realtime probe per node.
func invalSpecs(cfg CacheTierConfig, writers, probes []workload.PageRW, hot int, record bool, seedSalt uint64) []workload.HotColdSpec {
	var specs []workload.HotColdSpec
	for i, rw := range writers {
		specs = append(specs, workload.HotColdSpec{
			Name:          fmt.Sprintf("wr%02d", i),
			RW:            rw,
			Pages:         hot,
			WriteFraction: 1.0,
			Depth:         2,
			ThinkTime:     2 * sim.Millisecond,
			Seed:          cfg.Seed ^ seedSalt + 7 + uint64(i)*15485863,
		})
	}
	for i, rw := range probes {
		specs = append(specs, workload.HotColdSpec{
			Name:      fmt.Sprintf("rt%02d", i),
			RW:        rw,
			Pages:     hot,
			Requests:  -1,
			Depth:     1,
			ThinkTime: 500 * sim.Microsecond,
			Record:    record,
			Seed:      cfg.Seed ^ seedSalt + 13 + uint64(i)*32452843,
		})
	}
	return specs
}

// runCacheInval runs one side of the invalidation pair.
func runCacheInval(cfg CacheTierConfig, cached bool) (CacheInvalArm, error) {
	arm := CacheInvalArm{Name: "cache-off"}
	capacity := 0
	pages, err := volumePages(cfg)
	if err != nil {
		return arm, err
	}
	hot := pages / cfg.HotDivisor
	if cached {
		arm.Name = "cache-on"
		capacity = cacheCapacity(0.9, hot, 0)
	}
	c, v, ca, err := cacheStack(cfg, capacity, false)
	if err != nil {
		return arm, err
	}
	newRW := func(name string, node int, class sched.Class) (workload.PageRW, error) {
		if ca != nil {
			return ca.NewStream(name, node, class)
		}
		return v.NewStream(name, class)
	}
	writers := make([]workload.PageRW, cfg.InvalWriters)
	for i := range writers {
		if writers[i], err = newRW(fmt.Sprintf("wr%02d", i), i%cfg.Nodes, sched.Interactive); err != nil {
			return arm, err
		}
	}
	probes := make([]workload.PageRW, cfg.Nodes)
	for i := range probes {
		if probes[i], err = newRW(fmt.Sprintf("rt%02d", i), i, sched.Realtime); err != nil {
			return arm, err
		}
	}
	warm := invalSpecs(cfg, writers, probes, hot, false, 0x5eed)
	if _, err := workload.RunHotCold(c, v.PageSize(), warm, 2, cfg.InvalRequests/4); err != nil {
		return arm, err
	}
	var cBase cache.Stats
	if ca != nil {
		cBase = ca.Stats()
	}
	res, err := workload.RunHotCold(c, v.PageSize(),
		invalSpecs(cfg, writers, probes, hot, true, 0), 2, cfg.InvalRequests)
	if err != nil {
		return arm, err
	}
	if res.Loop.Errors > 0 {
		return arm, fmt.Errorf("%d request errors", res.Loop.Errors)
	}
	arm.Result = res
	if ca != nil {
		arm.Cache = ca.Stats().Delta(cBase)
	}
	arm.P99Us = res.Combined.P99Us
	return arm, nil
}

// CacheTier runs the full experiment: hit-regime sweep plus the
// invalidation-heavy pair.
func CacheTier(cfg CacheTierConfig) (CacheTierResult, error) {
	res := CacheTierResult{Config: cfg}
	regimes := []struct {
		name string
		frac float64
	}{
		{"off", 0},
		{"hit10", 0.1},
		{"hit50", 0.5},
		{"hit90", 0.9},
		{"dram", -1},
	}
	for _, r := range regimes {
		arm, err := runCacheRegime(cfg, r.name, r.frac)
		if err != nil {
			return res, fmt.Errorf("regime %s: %w", r.name, err)
		}
		res.Regimes = append(res.Regimes, arm)
	}
	var offMean, hit90Mean float64
	for _, a := range res.Regimes {
		switch a.Name {
		case "off":
			offMean = a.Result.Combined.MeanUs
		case "hit90":
			hit90Mean = a.Result.Combined.MeanUs
		}
	}
	if hit90Mean > 0 {
		res.MeanReadImprovementX = offMean / hit90Mean
	}
	var err error
	if res.InvalOff, err = runCacheInval(cfg, false); err != nil {
		return res, fmt.Errorf("inval cache-off: %w", err)
	}
	if res.InvalOn, err = runCacheInval(cfg, true); err != nil {
		return res, fmt.Errorf("inval cache-on: %w", err)
	}
	if res.InvalOff.P99Us > 0 {
		res.InvalidationP99RatioX = res.InvalOn.P99Us / res.InvalOff.P99Us
	}
	return res, nil
}

// FormatCacheTier renders the comparison.
func FormatCacheTier(r CacheTierResult) string {
	var t table
	t.row("Regime", "cap/hot", "hit rate", "mean us", "p99 us", "Kops/s", "W", "ops/s/W", "demoted")
	for _, a := range r.Regimes {
		frac := "-"
		if a.CapacityFrac > 0 {
			frac = f2(a.CapacityFrac)
		} else if a.CapacityFrac < 0 {
			frac = "all"
		}
		t.row(a.Name, frac, f2(a.Cache.HitRate),
			f1(a.Result.Combined.MeanUs), f1(a.Result.Combined.P99Us),
			f1(a.KopsPerSec), f1(a.Watts), f2(a.OpsPerSecW),
			fmt.Sprintf("%d", a.Cache.Demotions))
	}
	head := fmt.Sprintf(
		"Cache tier: %d hot/cold readers, %d nodes, host-DRAM write-back cache above the volume\n"+
			"mean read latency %.1f us (off) vs %.1f us (90%% hot set resident): %.1fx better\n",
		r.Config.Readers, r.Config.Nodes,
		offMeanOf(r), hit90MeanOf(r), r.MeanReadImprovementX)
	inval := fmt.Sprintf(
		"\nInvalidation-heavy: %d cross-node writers on the shared hot set + realtime probes\n"+
			"probe p99 %.1f us (cache-on, %d invalidations) vs %.1f us (cache-off): %.2fx\n",
		r.Config.InvalWriters,
		r.InvalOn.P99Us, r.InvalOn.Cache.InvalidationsSent, r.InvalOff.P99Us,
		r.InvalidationP99RatioX)
	return head + t.String() + inval
}

func offMeanOf(r CacheTierResult) float64 {
	for _, a := range r.Regimes {
		if a.Name == "off" {
			return a.Result.Combined.MeanUs
		}
	}
	return 0
}

func hit90MeanOf(r CacheTierResult) float64 {
	for _, a := range r.Regimes {
		if a.Name == "hit90" {
			return a.Result.Combined.MeanUs
		}
	}
	return 0
}
