package experiments

// The file-stack experiment: the paper's §4 architectural argument
// measured end-to-end at cluster scale, over the refactored rfs. The
// same file workload — a read-stable scan file plus a churn file being
// overwritten hard enough to force continuous cleaning, with realtime
// probe readers sharing the appliance — runs four ways:
//
//   - blockfs:  a conventional flash-oblivious file system on the
//               storage manager's logical volume (FTL-backed block
//               device): the compatibility path, paying the FTL's
//               write amplification and full-space mapping;
//   - rfs:      the cluster-wide RFS striping its log over every chip
//               of every card of every node, app I/O admitted through
//               the scheduler at the stream's class and cleaning on
//               the Background class — the no-ISP baseline;
//   - rfs+isp:  the same, plus distributed in-store scans over the
//               scan file (Figure 8 end-to-end: physical-address
//               query, per-node engines, Accel-class admission);
//   - rfs+host: the same queries host-mediated — every scanned page
//               crosses PCIe and is reduced in host software.
//
// Headline numbers: cluster-RFS write amplification and mapping
// footprint beat blockfs-on-FTL; distributed file scans beat the
// host-mediated file path while realtime host p99 stays near the
// no-ISP baseline.

import (
	"fmt"
	"math"

	"repro/internal/blockfs"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/ispvol"
	"repro/internal/rfs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
	"repro/internal/workload"
)

// FileStackConfig sizes the experiment.
type FileStackConfig struct {
	Nodes int `json:"nodes"`
	// ScanPages is the scan file's size. Sized to a whole stripe round
	// (chips * pages-per-segment) it fills exactly one segment on every
	// chip, so the cleaner never touches it and the engines' physical
	// address snapshots stay valid through churn.
	ScanPages int `json:"scan_pages"`
	// ChurnPages is the churn file's size (the overwrite working set).
	ChurnPages int `json:"churn_pages"`
	// Overwrites bounds the measurement window: churn writer
	// completions after seeding.
	Overwrites int `json:"overwrites"`
	// Depth is the churn writer's outstanding window.
	Depth int `json:"depth"`
	// Probes is the number of realtime point readers (depth 1, think
	// time 500 µs) alive for exactly the churn window.
	Probes int `json:"probes"`
	// QueryStreams is the number of concurrent scan queries in the ISP
	// arms.
	QueryStreams int    `json:"query_streams"`
	Needle       string `json:"needle"`
	Seed         uint64 `json:"seed"`

	Sched      sched.Config      `json:"sched"`
	RFS        rfs.Config        `json:"rfs"`
	RFSCluster rfs.ClusterConfig `json:"-"`
	FTL        ftl.Config        `json:"ftl"`
	ISP        ispvol.Config     `json:"isp"`
}

// fsParams shrinks flash capacity (like gcParams/ispParams) so seeded
// files and repeated churn finish in seconds of wall-clock time.
func fsParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Geometry.ChipsPerBus = 2
	p.Geometry.BlocksPerChip = 4
	p.Geometry.PagesPerBlock = 16
	return p
}

// DefaultFileStack returns the standard shape: a 2-node appliance
// (4096 flash pages), a one-stripe-round scan file, a churn file at
// ~60% combined utilization, and enough overwrites to keep the
// cleaner running for the whole window.
func DefaultFileStack(short bool) FileStackConfig {
	cfg := FileStackConfig{
		Nodes:        2,
		ScanPages:    1024, // 64 chips x 16 pages: one full segment per chip
		ChurnPages:   1536,
		Overwrites:   2560,
		Depth:        8,
		Probes:       4,
		QueryStreams: 2,
		Needle:       "BlueDBM",
		Seed:         42,
		Sched:        sched.DefaultConfig(),
		RFS:          rfs.DefaultConfig(),
		FTL:          ftl.DefaultConfig(),
		ISP:          ispvol.DefaultConfig(),
	}
	// Same rationale as the GC and ISP experiments: the dispatcher must
	// own the device window for class priority and the token budgets to
	// act.
	cfg.Sched.MaxInflight = 16
	cfg.Sched.BatchSize = 16
	// Trigger cleaning at 8 free segments (128 pages cluster-wide) —
	// the same reserve the blockfs arm's FTLs keep (GCLowWater 2 blocks
	// on each of 4 cards), so neither stack gets a richer victim pool
	// by construction.
	cfg.RFS.CleanLowWater = 8
	// 4-page extents: temporally-adjacent churn shares segments (so
	// invalidations cluster and greedy cleaning finds good victims)
	// while a depth-8 writer still spreads over two chips. Measured on
	// this workload: extent 1 scatters each segment over ~1024 writes
	// of arrival time and costs WA 1.65; extent 4 gives WA ~1.26 at
	// realtime p99 still well under the blockfs arm's.
	cfg.RFS.StripeExtent = 4
	if short {
		cfg.Overwrites = 1024
	}
	return cfg
}

// FileArm is one run's outcome.
type FileArm struct {
	Sched sched.Snapshot `json:"sched"`

	// WriteAmp is flash programs per host page written over the churn
	// window (cleaning/GC relocation included).
	WriteAmp float64 `json:"write_amplification"`
	// MappingEntries is the page-mapping footprint at the end of the
	// run: FTL l2p entries (whole logical space) for the blockfs arm,
	// live backrefs for the rfs arms.
	MappingEntries int   `json:"mapping_entries"`
	CleanMoves     int64 `json:"clean_moves"`

	RealtimeP50Us float64 `json:"realtime_p50_us"`
	RealtimeP99Us float64 `json:"realtime_p99_us"`

	Queries         int     `json:"queries"`
	QueryBytes      int64   `json:"query_bytes"`
	QueryMBps       float64 `json:"query_mbps"`
	MatchesPerQuery int64   `json:"matches_per_query"`
}

// FileStackResult is the JSON-ready outcome.
type FileStackResult struct {
	Config     FileStackConfig `json:"config"`
	Blockfs    FileArm         `json:"blockfs"`
	RFS        FileArm         `json:"rfs"`
	RFSISP     FileArm         `json:"rfs_isp"`
	RFSHostMed FileArm         `json:"rfs_host_mediated"`

	// WriteAmpRatioX is blockfs WA over cluster-RFS WA (the §4 claim:
	// the flash-aware FS cleans more efficiently).
	WriteAmpRatioX float64 `json:"write_amp_blockfs_vs_rfs_x"`
	// MappingRatioX is blockfs mapping entries over RFS live mappings
	// (the memory half of the claim).
	MappingRatioX float64 `json:"mapping_blockfs_vs_rfs_x"`
	// ScanSpeedupX is distributed scan throughput over host-mediated.
	ScanSpeedupX float64 `json:"scan_speedup_x"`
	// P99*X is each query arm's realtime p99 over the no-ISP rfs arm.
	P99ISPX     float64 `json:"p99_isp_vs_base_x"`
	P99HostMedX float64 `json:"p99_hostmed_vs_base_x"`
}

// fsArmMode selects one experiment arm.
type fsArmMode int

const (
	fsArmBlockfs fsArmMode = iota
	fsArmRFS
	fsArmRFSISP
	fsArmRFSHostMed
)

func (m fsArmMode) String() string {
	switch m {
	case fsArmBlockfs:
		return "blockfs"
	case fsArmRFS:
		return "rfs"
	case fsArmRFSISP:
		return "rfs+isp"
	case fsArmRFSHostMed:
		return "rfs+host-mediated"
	default:
		return fmt.Sprintf("arm(%d)", int(m))
	}
}

// seedPager writes pages [0, n) with depth appends in flight. append
// must add page idx = current length (both FSes append in call
// order, so pipelining keeps content deterministic).
func seedPager(c *core.Cluster, n, depth, ps int, gen workload.PageFiller,
	appendPage func(data []byte, cb func(error))) error {
	var firstErr error
	next := 0
	var issue func()
	issue = func() {
		if next >= n {
			return
		}
		idx := next
		next++
		buf := make([]byte, ps)
		gen(idx, buf)
		appendPage(buf, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("seed page %d: %w", idx, err)
			}
			issue()
		})
	}
	for i := 0; i < depth && i < n; i++ {
		issue()
	}
	c.Run()
	return firstErr
}

// runFileChurn drives the measurement window: one churn writer
// (closed loop, cfg.Depth outstanding, cfg.Overwrites completions,
// uniform over the churn file) plus cfg.Probes realtime point readers
// (depth 1, 500 µs mean think time) that stay live until the writer
// finishes. concurrent (when non-nil) is invoked before the engine
// drains, with a live() probe — the hook the query arms schedule scan
// queries through.
func runFileChurn(c *core.Cluster, cfg FileStackConfig, ps int,
	write func(idx int, data []byte, cb func(error)),
	probeRead func(idx int, cb func([]byte, error)),
	concurrent func(live func() bool)) error {

	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	writerLive := true
	wrng := sim.NewRNG(cfg.Seed ^ 0xf11e57ac)
	buf := make([]byte, ps)
	wrng.Bytes(buf)
	left := cfg.Overwrites
	inflight := 0
	var pump func()
	pump = func() {
		for inflight < cfg.Depth && left > 0 {
			left--
			inflight++
			idx := wrng.Intn(cfg.ChurnPages)
			write(idx, buf, func(err error) {
				fail(err)
				inflight--
				if left == 0 && inflight == 0 {
					writerLive = false
				}
				pump()
			})
		}
	}
	pump()

	for p := 0; p < cfg.Probes; p++ {
		rng := sim.NewRNG(cfg.Seed + uint64(p)*7919)
		think := func() sim.Time {
			ns := -math.Log(1-rng.Float64()) * float64(500*sim.Microsecond)
			if ns < 1 {
				ns = 1
			}
			return sim.Time(ns)
		}
		var probe func()
		probe = func() {
			if !writerLive {
				return
			}
			probeRead(rng.Intn(cfg.ChurnPages), func(_ []byte, err error) {
				fail(err)
				c.Eng.After(think(), probe)
			})
		}
		c.Eng.After(think(), probe)
	}

	if concurrent != nil {
		concurrent(func() bool { return writerLive })
	}
	c.Run()
	return firstErr
}

// stampRealtime copies the realtime class latencies out of a snapshot.
func (a *FileArm) stampRealtime() {
	for _, cs := range a.Sched.Classes {
		if cs.Class == "realtime" {
			a.RealtimeP50Us = cs.P50Us
			a.RealtimeP99Us = cs.P99Us
		}
	}
}

// runBlockfsArm runs the compatibility path: blockfs formatted on a
// Batch-class stream of the logical volume, with realtime probes
// reading the churn file's logical pages directly at the Realtime
// class (blockfs allocates lowest-free LPNs, so the churn file is a
// known contiguous range).
func runBlockfsArm(cfg FileStackConfig) (FileArm, error) {
	c, err := core.NewCluster(fsParams(cfg.Nodes))
	if err != nil {
		return FileArm{}, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return FileArm{}, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return FileArm{}, err
	}
	// +3: the format page and one inode-table page per file also live
	// in the logical space.
	if cfg.ScanPages+cfg.ChurnPages+3 > v.Pages() {
		return FileArm{}, fmt.Errorf("files (%d pages + 3 metadata) exceed the %d-page volume",
			cfg.ScanPages+cfg.ChurnPages, v.Pages())
	}
	dev, err := v.NewStream("blockfs", sched.Batch)
	if err != nil {
		return FileArm{}, err
	}
	bfs := blockfs.New(dev)
	ps := v.PageSize()

	// Same file population as the rfs arms: scan file first (LPNs
	// [0, ScanPages)), churn file second.
	scanF, err := bfs.Create("scan")
	if err != nil {
		return FileArm{}, err
	}
	gen := ispHaystack(cfg.Seed, []byte(cfg.Needle), ps)
	if err := seedPager(c, cfg.ScanPages, 64, ps, gen, scanF.AppendPage); err != nil {
		return FileArm{}, err
	}
	churnF, err := bfs.Create("churn")
	if err != nil {
		return FileArm{}, err
	}
	if err := seedPager(c, cfg.ChurnPages, 64, ps, workload.RandomPages(cfg.Seed^1), churnF.AppendPage); err != nil {
		return FileArm{}, err
	}

	probes, err := v.NewStream("probe", sched.Realtime)
	if err != nil {
		return FileArm{}, err
	}
	// Probes point-read the churn file's actual device pages at the
	// Realtime class (blockfs's FIBMAP-style query; the file's LPNs
	// never move, so the map is computed once). Reading a fixed LPN
	// range instead would hit the metadata pages blockfs also keeps in
	// the logical space.
	churnLPNs := make([]int, cfg.ChurnPages)
	for i := range churnLPNs {
		if churnLPNs[i], err = churnF.PageLPN(i); err != nil {
			return FileArm{}, err
		}
	}
	s.ResetStats()
	before := v.Stats()
	err = runFileChurn(c, cfg, ps,
		churnF.WritePage,
		func(idx int, cb func([]byte, error)) { probes.Read(churnLPNs[idx], cb) },
		nil)
	if err != nil {
		return FileArm{}, err
	}
	delta := v.Stats().Delta(before)
	var arm FileArm
	arm.Sched = s.Snapshot()
	arm.stampRealtime()
	// Write amplification per page of FILE DATA written: the blockfs
	// arm's host writes include its metadata traffic (inode table,
	// journal commits), which is amplification from the file layer's
	// point of view, exactly like GC relocation is.
	arm.WriteAmp = float64(delta.FlashPrograms) / float64(cfg.Overwrites)
	arm.CleanMoves = delta.GCMoves
	for i := 0; i < v.Cards(); i++ {
		arm.MappingEntries += v.FTL(i).MappingEntries()
	}
	return arm, nil
}

// runRFSArm runs one cluster-RFS arm: base (no queries), distributed
// ISP scans, or host-mediated scans.
func runRFSArm(cfg FileStackConfig, mode fsArmMode) (FileArm, error) {
	c, err := core.NewCluster(fsParams(cfg.Nodes))
	if err != nil {
		return FileArm{}, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return FileArm{}, err
	}
	fs, _, err := rfs.NewClusterFS(c, s, cfg.RFSCluster, cfg.RFS)
	if err != nil {
		return FileArm{}, err
	}
	lay := fs.Backend().Layout()
	if cfg.ScanPages%(lay.Chips*lay.PagesPerSeg) != 0 {
		return FileArm{}, fmt.Errorf("scan file (%d pages) must be whole stripe rounds (%d) to stay clean-stable",
			cfg.ScanPages, lay.Chips*lay.PagesPerSeg)
	}
	ps := fs.PageSize()

	// Scan file first: it fills exactly ScanPages/(chips*pagesPerSeg)
	// segments on every chip, all fully valid, so the cleaner never
	// relocates them and engine snapshots stay fresh.
	scanF, err := fs.Create("scan")
	if err != nil {
		return FileArm{}, err
	}
	gen := ispHaystack(cfg.Seed, []byte(cfg.Needle), ps)
	if err := seedPager(c, cfg.ScanPages, 64, ps, gen, scanF.AppendPage); err != nil {
		return FileArm{}, err
	}
	churnF, err := fs.Create("churn")
	if err != nil {
		return FileArm{}, err
	}
	if err := seedPager(c, cfg.ChurnPages, 64, ps, workload.RandomPages(cfg.Seed^1), churnF.AppendPage); err != nil {
		return FileArm{}, err
	}

	var sys *ispvol.System
	if mode != fsArmRFS {
		icfg := cfg.ISP
		sys, err = ispvol.New(c, s, nil, icfg)
		if err != nil {
			return FileArm{}, err
		}
	}

	s.ResetStats()
	wBefore, cmBefore := fs.PagesWritten, fs.CleanMoves
	writer := churnF.At(sched.Batch)
	probe := churnF.At(sched.Realtime)

	var arm FileArm
	var queryErr error
	matchesSet := false
	needle := []byte(cfg.Needle)
	concurrent := func(live func() bool) {
		if mode != fsArmRFSISP && mode != fsArmRFSHostMed {
			return
		}
		for qs := 0; qs < cfg.QueryStreams; qs++ {
			var runQ func()
			done := func(res *ispvol.SearchResult, err error) {
				if err != nil {
					if queryErr == nil {
						queryErr = err
					}
					return
				}
				if res.FailedPages > 0 && queryErr == nil {
					queryErr = fmt.Errorf("%d query pages failed to read", res.FailedPages)
				}
				arm.Queries++
				arm.QueryBytes += res.Bytes
				n := int64(len(res.Matches))
				if !matchesSet {
					arm.MatchesPerQuery = n
					matchesSet = true
				} else if arm.MatchesPerQuery != n && queryErr == nil {
					queryErr = fmt.Errorf("query match counts diverge: %d vs %d", arm.MatchesPerQuery, n)
				}
				runQ()
			}
			runQ = func() {
				if !live() {
					return
				}
				if mode == fsArmRFSHostMed {
					sys.SearchFileHost(0, scanF, needle, done)
				} else {
					sys.SearchFile(0, scanF, needle, done)
				}
			}
			runQ()
		}
	}

	err = runFileChurn(c, cfg, ps, writer.WritePage, probe.ReadPage, concurrent)
	if err != nil {
		return FileArm{}, err
	}
	if queryErr != nil {
		return FileArm{}, queryErr
	}
	if mode != fsArmRFS && arm.Queries == 0 {
		return FileArm{}, fmt.Errorf("no %v query completed inside the churn window; raise Overwrites or shrink ScanPages", mode)
	}
	if err := fs.CheckInvariants(); err != nil {
		return FileArm{}, err
	}

	hostWrites := fs.PagesWritten - wBefore
	moves := fs.CleanMoves - cmBefore
	if hostWrites > 0 {
		arm.WriteAmp = float64(hostWrites+moves) / float64(hostWrites)
	}
	arm.CleanMoves = moves
	arm.MappingEntries = fs.LiveMappings()
	arm.Sched = s.Snapshot()
	arm.stampRealtime()
	if secs := arm.Sched.ElapsedMs / 1e3; secs > 0 {
		arm.QueryMBps = float64(arm.QueryBytes) / secs / 1e6
	}
	return arm, nil
}

// FileStack runs the four arms on identical offered load and reports
// the cross-arm ratios. The two query arms must agree on the per-query
// match count, or the experiment fails.
func FileStack(cfg FileStackConfig) (FileStackResult, error) {
	res := FileStackResult{Config: cfg}
	var err error
	if res.Blockfs, err = runBlockfsArm(cfg); err != nil {
		return res, fmt.Errorf("blockfs arm: %w", err)
	}
	if res.RFS, err = runRFSArm(cfg, fsArmRFS); err != nil {
		return res, fmt.Errorf("rfs arm: %w", err)
	}
	if res.RFSISP, err = runRFSArm(cfg, fsArmRFSISP); err != nil {
		return res, fmt.Errorf("rfs+isp arm: %w", err)
	}
	if res.RFSHostMed, err = runRFSArm(cfg, fsArmRFSHostMed); err != nil {
		return res, fmt.Errorf("rfs+host-mediated arm: %w", err)
	}
	if res.RFSISP.MatchesPerQuery != res.RFSHostMed.MatchesPerQuery {
		return res, fmt.Errorf("query arms disagree on matches per query: isp %d, host-mediated %d",
			res.RFSISP.MatchesPerQuery, res.RFSHostMed.MatchesPerQuery)
	}
	if res.RFS.WriteAmp > 0 {
		res.WriteAmpRatioX = res.Blockfs.WriteAmp / res.RFS.WriteAmp
	}
	if res.RFS.MappingEntries > 0 {
		res.MappingRatioX = float64(res.Blockfs.MappingEntries) / float64(res.RFS.MappingEntries)
	}
	if t := res.RFSHostMed.QueryMBps; t > 0 {
		res.ScanSpeedupX = res.RFSISP.QueryMBps / t
	}
	if base := res.RFS.RealtimeP99Us; base > 0 {
		res.P99ISPX = res.RFSISP.RealtimeP99Us / base
		res.P99HostMedX = res.RFSHostMed.RealtimeP99Us / base
	}
	return res, nil
}

// FormatFileStack renders the comparison.
func FormatFileStack(r FileStackResult) string {
	var t table
	t.row("Arm", "WA", "map entries", "rt p50 us", "rt p99 us", "queries", "scan MB/s")
	rows := []struct {
		name string
		a    FileArm
	}{
		{"blockfs on FTL", r.Blockfs},
		{"cluster rfs", r.RFS},
		{"rfs + isp scan", r.RFSISP},
		{"rfs + host scan", r.RFSHostMed},
	}
	for _, row := range rows {
		t.row(row.name, f2(row.a.WriteAmp), fmt.Sprintf("%d", row.a.MappingEntries),
			f1(row.a.RealtimeP50Us), f1(row.a.RealtimeP99Us),
			fmt.Sprintf("%d", row.a.Queries), f1(row.a.QueryMBps))
	}
	head := fmt.Sprintf(
		"File stack (Figure 8 end-to-end): scan %d + churn %d pages, %d overwrites, %d nodes\n"+
			"write amplification %.2f (blockfs-on-FTL) vs %.2f (cluster rfs): %.2fx; mapping %.0fx smaller\n"+
			"file scans %.1f MB/s distributed vs %.1f MB/s host-mediated: %.1fx, with realtime p99 %.2fx the no-ISP baseline\n",
		r.Config.ScanPages, r.Config.ChurnPages, r.Config.Overwrites, r.Config.Nodes,
		r.Blockfs.WriteAmp, r.RFS.WriteAmp, r.WriteAmpRatioX, r.MappingRatioX,
		r.RFSISP.QueryMBps, r.RFSHostMed.QueryMBps, r.ScanSpeedupX, r.P99ISPX)
	return head + t.String()
}
