package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// EngineConfig sizes the event-engine benchmark: the same synthetic
// full-stack load (scheduler admission, fabric traffic, NAND timing,
// host interface) replayed at several cluster sizes, measuring the
// simulation substrate itself — events/sec of wall-clock time —
// instead of the modeled hardware.
type EngineConfig struct {
	// NodeCounts are the cluster sizes to sweep (the ceiling on
	// cluster scale is the engine's events/sec, so the sweep shows how
	// the substrate holds up as the event population grows).
	NodeCounts []int `json:"node_counts"`
	// StreamsPerNode client streams issue from every node's host,
	// addressed across the whole cluster so fabric events are part of
	// the load.
	StreamsPerNode int    `json:"streams_per_node"`
	Depth          int    `json:"depth"`    // closed-loop outstanding per stream
	Requests       int    `json:"requests"` // completions per stream
	Pages          int    `json:"pages"`    // seeded read region per node
	Seed           uint64 `json:"seed"`

	Sched sched.Config `json:"sched"`
}

// DefaultEngineBench returns the standard sweep: 4/16/64 nodes under
// a mixed read/write, cluster-addressed, multi-class load. short cuts
// the sweep and the request counts for CI smoke runs.
func DefaultEngineBench(short bool) EngineConfig {
	cfg := EngineConfig{
		NodeCounts:     []int{4, 16, 64},
		StreamsPerNode: 8,
		Depth:          8,
		Requests:       128,
		Pages:          480,
		Seed:           42,
		Sched:          sched.DefaultConfig(),
	}
	if short {
		cfg.NodeCounts = []int{2, 4}
		cfg.Requests = 24
	}
	return cfg
}

// EnginePoint is the measurement at one cluster size.
type EnginePoint struct {
	Nodes     int   `json:"nodes"`
	Streams   int   `json:"streams"`
	Completed int64 `json:"completed"`

	// Events is the number of engine events fired by the measured run
	// (seeding excluded).
	Events uint64 `json:"events"`
	// VirtualSeconds is simulated time covered by the run.
	VirtualSeconds float64 `json:"virtual_seconds"`

	// Substrate speed: wall-clock cost of the event loop.
	WallSeconds    float64 `json:"wall_seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`

	// Engine internals (see sim.EngineStats): how the timer structures
	// absorbed the load.
	Engine sim.EngineStats `json:"engine"`
}

// EngineResult is the JSON-ready outcome of the sweep.
type EngineResult struct {
	Config EngineConfig  `json:"config"`
	Points []EnginePoint `json:"points"`
}

// engineSpecs deals the class/pattern mix of multiStreamSpecs across
// StreamsPerNode streams on every node, all addressing the whole
// cluster so the fabric, remote host paths and device queues of every
// node stay busy.
func engineSpecs(cfg EngineConfig, nodes int) []workload.StreamSpec {
	specs := make([]workload.StreamSpec, 0, nodes*cfg.StreamsPerNode)
	for n := 0; n < nodes; n++ {
		for i := 0; i < cfg.StreamsPerNode; i++ {
			sp := workload.StreamSpec{
				Node:   n,
				Target: -1,
				Seed:   cfg.Seed + uint64(n*cfg.StreamsPerNode+i)*7919,
			}
			switch i % 8 {
			case 0:
				sp.Class, sp.Pattern = sched.Realtime, workload.Uniform
			case 1, 2:
				sp.Class, sp.Pattern = sched.Interactive, workload.Zipfian
			case 3:
				sp.Class, sp.Pattern = sched.Interactive, workload.Uniform
			case 4, 5:
				sp.Class, sp.Pattern = sched.Batch, workload.Scan
			default:
				sp.Class, sp.Pattern = sched.Batch, workload.Mixed
			}
			sp.Name = fmt.Sprintf("n%02d-s%02d-%s-%s", n, i, sp.Class, sp.Pattern)
			specs = append(specs, sp)
		}
	}
	return specs
}

// EngineBench sweeps the synthetic full-stack load over
// cfg.NodeCounts and measures the event engine: events fired,
// wall-clock events/sec and ns/event, and heap allocations per event
// (runtime.MemStats mallocs over the measured run, which is why the
// benchmark runs the workload single-threaded and GC-quiesced).
func EngineBench(cfg EngineConfig) (EngineResult, error) {
	res := EngineResult{Config: cfg}
	for _, nodes := range cfg.NodeCounts {
		pt, err := enginePoint(cfg, nodes)
		if err != nil {
			return EngineResult{}, fmt.Errorf("engine bench at %d nodes: %w", nodes, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func enginePoint(cfg EngineConfig, nodes int) (EnginePoint, error) {
	c, err := core.NewCluster(scaledParams(nodes))
	if err != nil {
		return EnginePoint{}, err
	}
	for n := 0; n < nodes; n++ {
		if err := c.SeedLinear(n, cfg.Pages, workload.RandomPages(cfg.Seed)); err != nil {
			return EnginePoint{}, fmt.Errorf("seed node %d: %w", n, err)
		}
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return EnginePoint{}, err
	}
	specs := engineSpecs(cfg, nodes)

	// Quiesce the allocator so the mallocs delta is the event loop's,
	// not the cluster build's.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	fired0 := c.Eng.Fired()
	v0 := c.Eng.Now()
	start := time.Now()

	loop, err := workload.RunClosedLoop(s, c, specs, cfg.Pages, cfg.Depth, cfg.Requests, 0)

	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return EnginePoint{}, err
	}
	if loop.Errors > 0 {
		return EnginePoint{}, fmt.Errorf("%d request errors", loop.Errors)
	}

	events := c.Eng.Fired() - fired0
	pt := EnginePoint{
		Nodes:          nodes,
		Streams:        len(specs),
		Completed:      loop.Completed,
		Events:         events,
		VirtualSeconds: (c.Eng.Now() - v0).Seconds(),
		WallSeconds:    wall.Seconds(),
		Engine:         c.Eng.Stats(),
	}
	if events > 0 {
		pt.EventsPerSec = float64(events) / wall.Seconds()
		pt.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		pt.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(events)
	}
	return pt, nil
}

// FormatEngineBench prints the sweep as a table.
func FormatEngineBench(res EngineResult) string {
	var t table
	t.row("engine: events/sec under the synthetic full-stack load")
	t.row("nodes", "streams", "events", "events/sec", "ns/event", "allocs/event", "virt s")
	for _, p := range res.Points {
		t.row(
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.Streams),
			fmt.Sprintf("%d", p.Events),
			f0(p.EventsPerSec),
			f1(p.NsPerEvent),
			f2(p.AllocsPerEvent),
			f2(p.VirtualSeconds),
		)
	}
	return t.String()
}
