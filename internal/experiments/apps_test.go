package experiments

import (
	"encoding/json"
	"sync"
	"testing"
)

// appsOnce runs the five-arm applications experiment once; the
// assertion tests below share the result (each arm is a full cluster
// run).
var appsOnce = struct {
	sync.Once
	res AppsResult
	err error
}{}

func appsResult(t *testing.T) AppsResult {
	t.Helper()
	appsOnce.Do(func() {
		appsOnce.res, appsOnce.err = Apps(DefaultApps(true))
	})
	if appsOnce.err != nil {
		t.Fatal(appsOnce.err)
	}
	return appsOnce.res
}

// TestAppsAcceptance guards the headlines: each distributed
// application beats its host-centric twin at identical offered host
// load. (Answer cross-validation — NN against brute force, VisitSums
// against the reference walk — happens inline in every arm; a wrong
// answer fails Apps itself.)
func TestAppsAcceptance(t *testing.T) {
	r := appsResult(t)
	if r.NNDist.NNQueries == 0 || r.NNHost.NNQueries == 0 {
		t.Fatal("an NN arm completed no queries")
	}
	if r.NNSpeedupX <= 1.0 {
		t.Fatalf("distributed NN %.1fx host-mediated, want > 1x (%.0f vs %.0f cmp/s)",
			r.NNSpeedupX, r.NNDist.CmpPerSec, r.NNHost.CmpPerSec)
	}
	if r.WalkMigrate.Walks == 0 || r.WalkHome.Walks == 0 {
		t.Fatal("a traversal arm completed no walks")
	}
	if r.WalkSpeedupX <= 1.2 {
		t.Fatalf("migrating traversal %.1fx home-node, want well past 1x (%.0f vs %.0f lookups/s)",
			r.WalkSpeedupX, r.WalkMigrate.LookupsPerSec, r.WalkHome.LookupsPerSec)
	}
	// The walk actually migrated instead of degenerating to one node.
	if r.WalkMigrate.Migrations == 0 {
		t.Fatal("migrating arm never moved a walker between nodes")
	}
}

// TestAppsQoSHolds: the distributed applications run under the Accel
// token budget, so the realtime foreground tail stays close to the
// app-free baseline — the scheduler-admission property the whole
// ispvol layer exists for.
func TestAppsQoSHolds(t *testing.T) {
	r := appsResult(t)
	if r.Base.RealtimeP99Us <= 0 {
		t.Fatal("no baseline realtime tail measured")
	}
	// Generous CI envelope; the committed BENCH_APPS.json shows ~1.1x.
	if r.P99NNDistX > 1.35 {
		t.Fatalf("nn-dist realtime p99 %.2fx base, want <= 1.35x", r.P99NNDistX)
	}
	if r.P99WalkMigrateX > 1.35 {
		t.Fatalf("walk-migrate realtime p99 %.2fx base, want <= 1.35x", r.P99WalkMigrateX)
	}
}

// TestAppsJSONRoundTrip: the result marshals (it is the committed
// benchmark artifact's shape).
func TestAppsJSONRoundTrip(t *testing.T) {
	r := appsResult(t)
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back AppsResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.NNSpeedupX != r.NNSpeedupX || back.WalkSpeedupX != r.WalkSpeedupX {
		t.Fatal("JSON round trip lost the headline ratios")
	}
}
