package experiments

import "testing"

// TestExperimentsDeterministic backs EXPERIMENTS.md's reproducibility
// claim: the simulation has no hidden nondeterminism, so running an
// experiment twice yields bit-identical numbers.
func TestExperimentsDeterministic(t *testing.T) {
	run := func() ([]Fig12Row, []Fig20Row) {
		f12, err := Fig12()
		if err != nil {
			t.Fatal(err)
		}
		f20, err := Fig20()
		if err != nil {
			t.Fatal(err)
		}
		return f12, f20
	}
	a12, a20 := run()
	b12, b20 := run()
	for i := range a12 {
		if a12[i] != b12[i] {
			t.Fatalf("Fig12 row %d differs between runs:\n%+v\n%+v", i, a12[i], b12[i])
		}
	}
	for i := range a20 {
		if a20[i] != b20[i] {
			t.Fatalf("Fig20 row %d differs between runs:\n%+v\n%+v", i, a20[i], b20[i])
		}
	}
}
