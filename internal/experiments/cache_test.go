package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCacheTierShort: the smoke configuration must already show the
// tier's shape — hit rate rising with capacity, the committed
// acceptance bars (mean read latency ≥1.5x better at the 90% regime,
// probe p99 within 1.1x of cache-off under invalidation-heavy
// writes), and live coherence traffic.
func TestCacheTierShort(t *testing.T) {
	res, err := CacheTier(DefaultCacheTier(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regimes) != 5 {
		t.Fatalf("%d regimes, want 5", len(res.Regimes))
	}
	byName := map[string]CacheRegimeArm{}
	for _, a := range res.Regimes {
		byName[a.Name] = a
	}
	if off := byName["off"]; off.Cache.Hits != 0 || off.CapacityPages != 0 {
		t.Fatalf("cache-off arm touched a cache: %+v", off.Cache)
	}
	if byName["hit90"].Cache.HitRate <= byName["hit10"].Cache.HitRate {
		t.Fatalf("hit rate not rising with capacity: hit10 %.2f vs hit90 %.2f",
			byName["hit10"].Cache.HitRate, byName["hit90"].Cache.HitRate)
	}
	if res.MeanReadImprovementX < 1.5 {
		t.Fatalf("mean read improvement %.2fx at the 90%% regime, want >= 1.5x",
			res.MeanReadImprovementX)
	}
	if res.InvalidationP99RatioX > 1.1 {
		t.Fatalf("invalidation-heavy probe p99 ratio %.2fx, want <= 1.1x",
			res.InvalidationP99RatioX)
	}
	if res.InvalOn.Cache.InvalidationsSent == 0 {
		t.Fatal("cache-on invalidation arm sent no invalidations")
	}
	if res.InvalOn.Cache.Flushes == 0 {
		t.Fatal("cache-on invalidation arm never flushed (write-back not exercised)")
	}
	// Perf-per-watt: the DRAM strawman must cost more watts than the
	// appliance arms, and the formatter must render every regime.
	if byName["dram"].Watts <= byName["hit90"].Watts {
		t.Fatalf("DRAM strawman watts %.0f not above appliance %.0f",
			byName["dram"].Watts, byName["hit90"].Watts)
	}
	out := FormatCacheTier(res)
	for _, want := range []string{"off", "hit10", "hit50", "hit90", "dram", "ops/s/W"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestCacheTierDeterministic: two runs are byte-identical through
// JSON — the property that lets BENCH_CACHE.json be committed.
func TestCacheTierDeterministic(t *testing.T) {
	run := func() []byte {
		res, err := CacheTier(DefaultCacheTier(true))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("CacheTier is nondeterministic across runs")
	}
}
