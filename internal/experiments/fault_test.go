package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFaultShort is the acceptance check for the fault scenario: the
// node kill must produce degraded traffic with zero workload-visible
// errors, the rebuild must finish within the measured window and
// restore a nonzero page count, and the result must serialize.
func TestFaultShort(t *testing.T) {
	r, err := Fault(DefaultFault(true))
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]FaultPhase{
		"baseline": r.Baseline, "degraded": r.Degraded, "rebuild": r.Rebuild,
	} {
		if p.Loop.Errors != 0 {
			t.Fatalf("%s: %d request errors leaked through the mirror", name, p.Loop.Errors)
		}
		if p.Loop.Completed == 0 {
			t.Fatalf("%s: no requests completed", name)
		}
	}
	if r.Baseline.Volume.DegradedReads != 0 || r.Baseline.Volume.DegradedWrites != 0 {
		t.Fatalf("baseline window saw degraded traffic: %+v", r.Baseline.Volume)
	}
	if r.DegradedReads == 0 || r.DegradedWrites == 0 {
		t.Fatalf("node kill produced no degraded traffic (reads=%d writes=%d)",
			r.DegradedReads, r.DegradedWrites)
	}
	if r.PagesRebuilt == 0 || r.RebuildMs <= 0 {
		t.Fatalf("rebuild did not run (pages=%d ms=%.2f)", r.PagesRebuilt, r.RebuildMs)
	}
	if r.BaselineP99Us <= 0 || r.DegradedP99Us <= 0 || r.RebuildP99Us <= 0 {
		t.Fatalf("missing realtime percentiles: %+v", r)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "pages_rebuilt") {
		t.Fatal("serialized result missing pages_rebuilt")
	}
	if s := FormatFault(r); !strings.Contains(s, "rebuild") {
		t.Fatalf("format output missing rebuild row:\n%s", s)
	}
}
