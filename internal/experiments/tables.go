package experiments

import (
	"repro/internal/fpga"
	"repro/internal/power"
)

// Table1 reproduces the Artix-7 flash controller resource table for a
// card with the given bus count (8 in the paper).
func Table1(buses int) fpga.Report {
	if buses <= 0 {
		buses = 8
	}
	return fpga.FlashControllerReport(buses)
}

// Table2 reproduces the Virtex-7 host design resource table for the
// given network fan-out (8 ports in the paper).
func Table2(ports int) fpga.Report {
	if ports <= 0 {
		ports = 8
	}
	return fpga.HostFPGAReport(ports)
}

// Table3 reproduces the node power budget (2 flash cards in the paper).
func Table3(flashCards int) power.Budget {
	if flashCards <= 0 {
		flashCards = 2
	}
	return power.NodeBudget(flashCards)
}

// FormatTable1 renders Table 1.
func FormatTable1(buses int) string {
	return fpga.FormatTable("Table 1: flash controller on Artix-7 resource usage", Table1(buses))
}

// FormatTable2 renders Table 2.
func FormatTable2(ports int) string {
	return fpga.FormatTable("Table 2: host Virtex-7 resource usage", Table2(ports))
}

// FormatTable3 renders Table 3.
func FormatTable3(cards int) string {
	return power.FormatTable(Table3(cards))
}
