package experiments

import (
	"encoding/json"
	"sync"
	"testing"
)

// fsOnce runs the four-arm file-stack experiment once at a reduced
// size; the assertion tests below share the result (each arm is a
// full cluster run).
var fsOnce = struct {
	sync.Once
	res FileStackResult
	err error
}{}

func fsResult(t *testing.T) FileStackResult {
	t.Helper()
	fsOnce.Do(func() {
		cfg := DefaultFileStack(true)
		// Test-sized window: enough churn to reach cleaning in the rfs
		// arms, one query stream so the ISP arms stay cheap.
		cfg.Overwrites = 768
		cfg.QueryStreams = 1
		fsOnce.res, fsOnce.err = FileStack(cfg)
	})
	if fsOnce.err != nil {
		t.Fatal(fsOnce.err)
	}
	return fsOnce.res
}

// TestFileStackFigure8EndToEnd guards the pipeline: distributed file
// scans complete over the cluster RFS (file -> physical-address query
// -> scheduler-admitted engines -> merge), agree byte-for-byte with
// the host-mediated file path, and move bytes at a real rate.
func TestFileStackFigure8EndToEnd(t *testing.T) {
	r := fsResult(t)
	if r.RFSISP.Queries == 0 || r.RFSHostMed.Queries == 0 {
		t.Fatalf("query arms idle: isp %d, host %d", r.RFSISP.Queries, r.RFSHostMed.Queries)
	}
	if r.RFSISP.MatchesPerQuery == 0 {
		t.Fatal("distributed scans found no matches; the haystack plant is broken")
	}
	if r.RFSISP.MatchesPerQuery != r.RFSHostMed.MatchesPerQuery {
		t.Fatalf("arms disagree on matches: isp %d, host-mediated %d",
			r.RFSISP.MatchesPerQuery, r.RFSHostMed.MatchesPerQuery)
	}
	if r.ScanSpeedupX <= 1 {
		t.Fatalf("distributed file scans only %.2fx host-mediated", r.ScanSpeedupX)
	}
}

// TestFileStackQoSUnderCleaning guards the QoS half: the rfs arms
// keep cleaning (Background-admitted) off the realtime tail, and
// admitted ISP scans stay inside a modest envelope of the no-ISP
// baseline.
func TestFileStackQoSUnderCleaning(t *testing.T) {
	r := fsResult(t)
	if r.RFS.CleanMoves == 0 {
		t.Fatal("churn never reached cleaning; the window is too small to measure anything")
	}
	if r.RFS.RealtimeP99Us <= 0 {
		t.Fatal("no baseline realtime tail measured")
	}
	if r.P99ISPX > 1.5 {
		t.Fatalf("isp arm realtime p99 %.2fx the no-ISP baseline, want <= 1.5x", r.P99ISPX)
	}
}

// TestFileStackMappingFootprint guards the memory half of the §4
// claim: the FTL stack maps its whole logical space while RFS maps
// only live file pages.
func TestFileStackMappingFootprint(t *testing.T) {
	r := fsResult(t)
	if r.Blockfs.MappingEntries <= r.RFS.MappingEntries {
		t.Fatalf("blockfs maps %d entries, rfs %d: the footprint claim inverted",
			r.Blockfs.MappingEntries, r.RFS.MappingEntries)
	}
	want := r.Config.ScanPages + r.Config.ChurnPages
	if r.RFS.MappingEntries != want {
		t.Fatalf("rfs live mappings %d, want exactly the %d live file pages", r.RFS.MappingEntries, want)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("result does not marshal: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty JSON")
	}
}
