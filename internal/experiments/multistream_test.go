package experiments

import (
	"encoding/json"
	"testing"
)

// TestMultiStreamShort is the acceptance check for the scheduler
// experiment: 64 concurrent streams drive the cluster through
// internal/sched, every QoS class reports latency percentiles, and
// the result marshals to JSON.
func TestMultiStreamShort(t *testing.T) {
	cfg := DefaultMultiStream(true)
	if cfg.Streams < 64 {
		t.Fatalf("experiment must drive >= 64 streams, has %d", cfg.Streams)
	}
	r, err := MultiStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Loop.Errors != 0 {
		t.Fatalf("%d request errors", r.Loop.Errors)
	}
	if want := int64(cfg.Streams * cfg.Requests); r.Sched.TotalOps < want {
		t.Fatalf("total ops %d < %d", r.Sched.TotalOps, want)
	}
	for _, cs := range r.Sched.Classes {
		if cs.Class == "background" || cs.Class == "accel" {
			// Housekeeping and ISP classes: this experiment drives no
			// FTL and no in-store engines, so neither has traffic.
			continue
		}
		if cs.Ops == 0 {
			t.Fatalf("class %s has no samples", cs.Class)
		}
		if cs.P50Us <= 0 || cs.P99Us < cs.P50Us {
			t.Fatalf("class %s percentiles inconsistent: p50=%v p99=%v", cs.Class, cs.P50Us, cs.P99Us)
		}
	}
	if r.Sched.TotalOpsPerSec <= 0 || r.Sched.TotalMBps <= 0 {
		t.Fatal("throughput not reported")
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty JSON")
	}
}

// TestMultiStreamBatchingWins guards the headline comparison: batched
// submission must beat one-doorbell-per-request, which must beat
// depth-1, by clear margins.
func TestMultiStreamBatchingWins(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs")
	}
	cfg := DefaultMultiStream(true)
	cmp, err := MultiStreamBatchComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SpeedupVsNoBatch < 1.5 {
		t.Fatalf("batched only %.2fx vs nobatch", cmp.SpeedupVsNoBatch)
	}
	if cmp.SpeedupVsDepth1 < 3 {
		t.Fatalf("batched only %.2fx vs depth1", cmp.SpeedupVsDepth1)
	}
}
