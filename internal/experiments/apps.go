package experiments

// The distributed-applications experiment: the paper's two flagship
// workloads — LSH nearest-neighbor search (§7.1, Figures 16-19) and
// pointer-chasing graph traversal (§7.2, Figure 20) — promoted from
// single-node, hand-fed microbenchmarks to cluster-scale queries over
// the full PR 1-4 stack (QoS scheduler, logical volume, fabric,
// ispvol engines), co-running with a realtime host foreground. Five
// arms on identical offered load:
//
//   - base:         host streams only — the app-free realtime p99
//                   baseline;
//   - nn-dist:      distributed nearest-neighbor: LSH candidates
//                   partitioned by owning node, per-node engines
//                   Hamming-compare next to the flash (Accel class),
//                   only per-node bests cross the network;
//   - nn-host:      the same candidate lists hauled over PCIe and
//                   compared in host software;
//   - walk-migrate: in-store traversal whose walker state migrates to
//                   the data (one local flash read + a ~56-byte state
//                   hop per lookup);
//   - walk-home:    the same walks from a fixed home node over the
//                   H-RH-F access path (remote host + full page over
//                   the network per lookup), Figure 20's generic
//                   distributed-SSD bar.
//
// Every arm's results are cross-validated: NN answers against the
// in-memory brute force (including tie-breaks), traversal VisitSums
// against graph.ReferenceWalkWalker — so the speedups cannot come
// from walking different vertices or comparing different candidates.

import (
	"fmt"

	"repro/internal/accel/graph"
	"repro/internal/accel/lsh"
	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/ispvol"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
	"repro/internal/workload"
)

// AppsConfig sizes the experiment.
type AppsConfig struct {
	Nodes       int `json:"nodes"`
	HostStreams int `json:"host_streams"` // concurrent host tenant streams
	Depth       int `json:"depth"`        // closed-loop outstanding per host stream
	Requests    int `json:"requests"`     // completions per primary host stream

	Items     int `json:"items"`      // NN dataset pages (item = one page)
	NNTables  int `json:"nn_tables"`  // LSH hash tables
	NNBits    int `json:"nn_bits"`    // sampled bits per hash
	NNStreams int `json:"nn_streams"` // concurrent NN query streams
	NNQueries int `json:"nn_queries"` // distinct query items cycled through

	Vertices  int `json:"vertices"` // graph adjacency pages
	AvgDegree int `json:"avg_degree"`
	Walkers   int `json:"walkers"`    // parallel walkers per traversal
	WalkSteps int `json:"walk_steps"` // dependent lookups per walker

	Seed uint64 `json:"seed"`

	Sched sched.Config  `json:"sched"`
	FTL   ftl.Config    `json:"ftl"`
	ISP   ispvol.Config `json:"isp"`
}

// DefaultApps returns the standard shape: a 2-node appliance, 32 host
// streams (a quarter realtime probes), 4 NN query streams over a
// 256-item dataset, and 4-walker traversals over a 512-vertex graph.
// short cuts the host window for smoke runs.
func DefaultApps(short bool) AppsConfig {
	cfg := AppsConfig{
		Nodes:       2,
		HostStreams: 32,
		Depth:       4,
		Requests:    768,
		Items:       256,
		NNTables:    8,
		NNBits:      6,
		NNStreams:   4,
		NNQueries:   4,
		Vertices:    512,
		AvgDegree:   8,
		Walkers:     4,
		WalkSteps:   64,
		Seed:        42,
		Sched:       sched.DefaultConfig(),
		FTL:         ftl.DefaultConfig(),
		ISP:         ispvol.DefaultConfig(),
	}
	// Same rationale as the ISP experiment: the dispatcher must own
	// the device window for class priority and the accel token budget
	// to act.
	cfg.Sched.MaxInflight = 16
	cfg.Sched.BatchSize = 16
	// The app engines refire continuously (short queries, instant
	// relaunch), so at the default half-window accel budget they would
	// hold 8 of 16 device slots at full duty cycle and realtime tail
	// latency pays ~1.2x base. A 6-slot budget keeps the foreground
	// p99 within ~10% of the app-free baseline — tighter than the
	// host-mediated arm manages — while the distributed arms still
	// clearly outrun their twins: the accel-share knob doing exactly
	// the tenant-isolation job it exists for.
	cfg.Sched.AccelShare = 0.375
	if short {
		cfg.Requests = 192
	}
	return cfg
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// appsArmMode selects one experiment arm.
type appsArmMode int

const (
	appsBase appsArmMode = iota
	appsNNDist
	appsNNHost
	appsWalkMigrate
	appsWalkHome
)

func (m appsArmMode) String() string {
	switch m {
	case appsBase:
		return "base"
	case appsNNDist:
		return "nn-dist"
	case appsNNHost:
		return "nn-host"
	case appsWalkMigrate:
		return "walk-migrate"
	case appsWalkHome:
		return "walk-home"
	default:
		return fmt.Sprintf("arm(%d)", int(m))
	}
}

// AppsArm is one run's outcome.
type AppsArm struct {
	Loop  workload.LoopResult `json:"loop"`
	Sched sched.Snapshot      `json:"sched"`

	RealtimeP50Us float64 `json:"realtime_p50_us"`
	RealtimeP99Us float64 `json:"realtime_p99_us"`

	// NN arms.
	NNQueries     int     `json:"nn_queries,omitempty"`
	Comparisons   int64   `json:"comparisons,omitempty"`
	CmpPerSec     float64 `json:"cmp_per_sec,omitempty"`
	CandsPerQuery int     `json:"cands_per_query,omitempty"`

	// Traversal arms.
	Walks         int     `json:"walks,omitempty"`
	Lookups       int64   `json:"lookups,omitempty"`
	LookupsPerSec float64 `json:"lookups_per_sec,omitempty"`
	Migrations    int64   `json:"migrations,omitempty"`
}

// AppsResult is the JSON-ready outcome.
type AppsResult struct {
	Config      AppsConfig `json:"config"`
	Base        AppsArm    `json:"base"`
	NNDist      AppsArm    `json:"nn_dist"`
	NNHost      AppsArm    `json:"nn_host"`
	WalkMigrate AppsArm    `json:"walk_migrate"`
	WalkHome    AppsArm    `json:"walk_home"`

	// NNSpeedupX is distributed NN comparison throughput over
	// host-mediated at identical offered host load.
	NNSpeedupX float64 `json:"nn_speedup_x"`
	// WalkSpeedupX is migrating-traversal lookups/sec over the
	// home-node H-RH-F path.
	WalkSpeedupX float64 `json:"walk_speedup_x"`
	// P99*X is each arm's realtime host p99 over the app-free baseline.
	P99NNDistX      float64 `json:"p99_nn_dist_vs_base_x"`
	P99NNHostX      float64 `json:"p99_nn_host_vs_base_x"`
	P99WalkMigrateX float64 `json:"p99_walk_migrate_vs_base_x"`
	P99WalkHomeX    float64 `json:"p99_walk_home_vs_base_x"`
}

// appsStack is one arm's freshly built world.
type appsStack struct {
	c     *core.Cluster
	s     *sched.Scheduler
	v     *volume.Volume
	sys   *ispvol.System
	items map[int][]byte
	g     *graph.Graph
	// queries[q] is a distinct NN query item; queryCands/queryLpns its
	// LSH candidate ids and their volume pages, bestID/bestDist the
	// brute-force answer.
	queries    [][]byte
	queryCands [][]int
	queryLpns  [][]int
	bestID     []int
	bestDist   []int
}

// Volume layout: dataset slot k (NN items first, then graph
// adjacency pages) lives at logical page k*stride, striding the
// datasets across the WHOLE logical space. Packing them contiguously
// would let the FTL frontiers land every item in the first couple of
// blocks — two hot chips per card — and the engines' candidate reads
// would convoy there while fifteen chips idle, taking the realtime
// probes that hit those chips with them. Striding spreads the
// dataset like the scan experiments' full-range queries do. The rest
// is filler the host streams churn through; everything is read-only
// for the measurement window, so the physical-address snapshots the
// queries take stay valid.
func buildAppsStack(cfg AppsConfig) (*appsStack, error) {
	c, err := core.NewCluster(ispParams(cfg.Nodes))
	if err != nil {
		return nil, err
	}
	s, err := sched.New(c, cfg.Sched)
	if err != nil {
		return nil, err
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = cfg.FTL
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Items+cfg.Vertices > v.Pages() {
		return nil, fmt.Errorf("apps: %d items + %d vertices exceed the %d-page volume",
			cfg.Items, cfg.Vertices, v.Pages())
	}
	ps := v.PageSize()
	items, _, err := workload.NearDuplicateSet(cfg.Items, ps, 7, 40, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gcfg := graph.Config{Vertices: cfg.Vertices, AvgDegree: cfg.AvgDegree, Seed: cfg.Seed + 1}
	adj := graph.GenAdjacency(gcfg, ps)
	base := workload.RandomPages(cfg.Seed + 2)
	total := cfg.Items + cfg.Vertices
	stride := v.Pages() / total
	// The volume stripes lpn -> card lpn%cards, so the stride must be
	// coprime with the card count or every dataset slot would alias
	// onto the same card subset (and a graph living on one node never
	// migrates a walker).
	for stride > 1 && gcd(stride, v.Cards()) != 1 {
		stride--
	}
	slotLpn := func(slot int) int { return slot * stride }
	fill := func(idx int, page []byte) {
		if idx%stride == 0 && idx/stride < total {
			slot := idx / stride
			if slot < cfg.Items {
				copy(page, items[slot])
				return
			}
			enc, err := graph.EncodePage(adj[slot-cfg.Items], ps)
			if err != nil {
				panic(err)
			}
			copy(page, enc)
			return
		}
		base(idx, page)
	}
	if err := workload.SeedVolumeWith(v, c, v.Pages(), 64, fill); err != nil {
		return nil, err
	}
	sys, err := ispvol.New(c, s, v, cfg.ISP)
	if err != nil {
		return nil, err
	}
	// Stored graph: vertex vx's page is volume lpn slotLpn(Items+vx),
	// resolved to wherever the FTLs placed it.
	addrs := make([]core.PageAddr, cfg.Vertices)
	for vx := range addrs {
		a, err := v.Phys(slotLpn(cfg.Items + vx))
		if err != nil {
			return nil, err
		}
		addrs[vx] = a
	}
	g, err := graph.NewStored(c, gcfg, adj, addrs)
	if err != nil {
		return nil, err
	}

	// Host-side LSH index over the dataset; query items are noisy
	// near-duplicates drawn from the set itself, so candidate lists
	// are non-trivial and answers are interesting.
	ix, err := lsh.NewIndex(ps, cfg.NNTables, cfg.NNBits, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	for id := 0; id < cfg.Items; id++ {
		if err := ix.Add(id, items[id]); err != nil {
			return nil, err
		}
	}
	st := &appsStack{c: c, s: s, v: v, sys: sys, items: items, g: g}
	rng := sim.NewRNG(cfg.Seed + 4)
	for qi := 0; qi < cfg.NNQueries; qi++ {
		q := append([]byte(nil), items[rng.Intn(cfg.Items)]...)
		// Flip a few bits so the query is near, not identical.
		for f := 0; f < 17; f++ {
			pos := rng.Intn(len(q) * 8)
			q[pos/8] ^= 1 << (uint(pos) % 8)
		}
		ids, err := ix.Candidates(q)
		if err != nil {
			return nil, err
		}
		if len(ids) == 0 {
			continue
		}
		cand := map[int][]byte{}
		for _, id := range ids {
			cand[id] = items[id]
		}
		bid, bd := lsh.NearestBrute(q, cand)
		lpns := make([]int, len(ids))
		for i, id := range ids {
			lpns[i] = slotLpn(id)
		}
		st.queries = append(st.queries, q)
		st.queryCands = append(st.queryCands, ids)
		st.queryLpns = append(st.queryLpns, lpns)
		st.bestID = append(st.bestID, bid)
		st.bestDist = append(st.bestDist, bd)
	}
	if len(st.queries) == 0 {
		return nil, fmt.Errorf("apps: no query produced LSH candidates; loosen NNBits")
	}
	return st, nil
}

// runAppsArm builds a fresh stack and drives the host mix with the
// arm's application load co-running for exactly the host window.
func runAppsArm(cfg AppsConfig, mode appsArmMode) (AppsArm, error) {
	st, err := buildAppsStack(cfg)
	if err != nil {
		return AppsArm{}, err
	}
	st.s.ResetStats()
	var arm AppsArm
	var appErr error
	fail := func(err error) {
		if appErr == nil {
			appErr = err
		}
	}

	tcfg := graph.TraverseConfig{
		Start: 3, Steps: cfg.WalkSteps, Seed: cfg.Seed + 5,
		Walkers: cfg.Walkers, Mode: graph.ModeHRHF,
	}
	// The reference checksums every traversal arm must reproduce.
	wantSums := make([]uint64, cfg.Walkers)
	for w := range wantSums {
		wantSums[w] = graph.ReferenceWalkWalker(st.g, tcfg, w)
	}
	wantSum := graph.CombineVisitSums(wantSums)

	concurrent := func(live func() bool) {
		switch mode {
		case appsBase:
			return
		case appsNNDist, appsNNHost:
			for qs := 0; qs < cfg.NNStreams; qs++ {
				qs := qs
				qi := qs % len(st.queries)
				var runQ func()
				done := func(res *ispvol.NNResult, err error) {
					if err != nil {
						fail(err)
						return
					}
					if res.FailedPages > 0 {
						fail(fmt.Errorf("%d NN candidate pages failed to read", res.FailedPages))
						return
					}
					if res.BestID != st.bestID[qi] || res.BestDist != st.bestDist[qi] {
						fail(fmt.Errorf("%v query %d answered (%d, %d), brute force says (%d, %d)",
							mode, qi, res.BestID, res.BestDist, st.bestID[qi], st.bestDist[qi]))
						return
					}
					arm.NNQueries++
					arm.Comparisons += res.Comparisons
					qi = (qi + cfg.NNStreams) % len(st.queries)
					runQ()
				}
				runQ = func() {
					if !live() || appErr != nil {
						return
					}
					ids, lpns := st.queryCands[qi], st.queryLpns[qi]
					if mode == appsNNDist {
						st.sys.NearestNeighbor(0, st.queries[qi], ids, lpns, done)
					} else {
						st.sys.NearestNeighborHost(0, st.queries[qi], ids, lpns, done)
					}
				}
				runQ()
			}
		case appsWalkMigrate:
			var runW func()
			done := func(res *ispvol.WalkResult, err error) {
				if err != nil {
					fail(err)
					return
				}
				for w := range wantSums {
					if res.VisitSums[w] != wantSums[w] {
						fail(fmt.Errorf("migrating walker %d checksum %x != reference %x",
							w, res.VisitSums[w], wantSums[w]))
						return
					}
				}
				arm.Walks++
				arm.Lookups += res.Steps
				arm.Migrations += res.Migrations
				runW()
			}
			runW = func() {
				if !live() || appErr != nil {
					return
				}
				st.sys.WalkMigrate(0, st.g, tcfg, done)
			}
			runW()
		case appsWalkHome:
			var runW func()
			done := func(res *graph.Result, err error) {
				if err != nil {
					fail(err)
					return
				}
				if res.VisitSum != wantSum {
					fail(fmt.Errorf("home-node walk checksum %x != reference %x", res.VisitSum, wantSum))
					return
				}
				arm.Walks++
				arm.Lookups += res.Steps
				runW()
			}
			runW = func() {
				if !live() || appErr != nil {
					return
				}
				graph.TraverseAsync(st.c, 0, st.g, tcfg, done)
			}
			runW()
		}
	}

	loop, err := workload.RunVolumeClosedLoopWith(st.v, st.c, ispSpecs(ISPContentionConfig{
		HostStreams: cfg.HostStreams, Seed: cfg.Seed,
	}), cfg.Depth, cfg.Requests, concurrent)
	if err != nil {
		return AppsArm{}, err
	}
	if appErr != nil {
		return AppsArm{}, appErr
	}
	if loop.Errors > 0 {
		return AppsArm{}, fmt.Errorf("%d host request errors", loop.Errors)
	}
	switch mode {
	case appsNNDist, appsNNHost:
		if arm.NNQueries == 0 {
			return AppsArm{}, fmt.Errorf("no %v query completed inside the host window; raise Requests", mode)
		}
	case appsWalkMigrate, appsWalkHome:
		if arm.Walks == 0 {
			return AppsArm{}, fmt.Errorf("no %v traversal completed inside the host window; raise Requests or shrink WalkSteps", mode)
		}
	}
	arm.Loop = loop
	arm.Sched = st.s.Snapshot()
	for _, cs := range arm.Sched.Classes {
		if cs.Class == "realtime" {
			arm.RealtimeP50Us = cs.P50Us
			arm.RealtimeP99Us = cs.P99Us
		}
	}
	if secs := arm.Sched.ElapsedMs / 1e3; secs > 0 {
		arm.CmpPerSec = float64(arm.Comparisons) / secs
		arm.LookupsPerSec = float64(arm.Lookups) / secs
	}
	if arm.NNQueries > 0 {
		arm.CandsPerQuery = int(arm.Comparisons / int64(arm.NNQueries))
	}
	return arm, nil
}

// hostOpsPerSec sums an arm's scheduler throughput over the host
// classes only (accel ops are application traffic, not host load).
func (a AppsArm) hostOpsPerSec() float64 {
	var ops float64
	for _, cs := range a.Sched.Classes {
		if cs.Class != "accel" {
			ops += cs.OpsPerSec
		}
	}
	return ops
}

// Apps runs the five arms on identical offered load and reports the
// cross-arm ratios. Every application answer is validated inline
// against the in-memory references; a wrong answer fails the
// experiment, not just the arm.
func Apps(cfg AppsConfig) (AppsResult, error) {
	res := AppsResult{Config: cfg}
	var err error
	if res.Base, err = runAppsArm(cfg, appsBase); err != nil {
		return res, fmt.Errorf("base arm: %w", err)
	}
	if res.NNDist, err = runAppsArm(cfg, appsNNDist); err != nil {
		return res, fmt.Errorf("nn-dist arm: %w", err)
	}
	if res.NNHost, err = runAppsArm(cfg, appsNNHost); err != nil {
		return res, fmt.Errorf("nn-host arm: %w", err)
	}
	if res.WalkMigrate, err = runAppsArm(cfg, appsWalkMigrate); err != nil {
		return res, fmt.Errorf("walk-migrate arm: %w", err)
	}
	if res.WalkHome, err = runAppsArm(cfg, appsWalkHome); err != nil {
		return res, fmt.Errorf("walk-home arm: %w", err)
	}
	if t := res.NNHost.CmpPerSec; t > 0 {
		res.NNSpeedupX = res.NNDist.CmpPerSec / t
	}
	if t := res.WalkHome.LookupsPerSec; t > 0 {
		res.WalkSpeedupX = res.WalkMigrate.LookupsPerSec / t
	}
	if base := res.Base.RealtimeP99Us; base > 0 {
		res.P99NNDistX = res.NNDist.RealtimeP99Us / base
		res.P99NNHostX = res.NNHost.RealtimeP99Us / base
		res.P99WalkMigrateX = res.WalkMigrate.RealtimeP99Us / base
		res.P99WalkHomeX = res.WalkHome.RealtimeP99Us / base
	}
	return res, nil
}

// FormatApps renders the comparison.
func FormatApps(r AppsResult) string {
	var t table
	t.row("Arm", "rt p50 us", "rt p99 us", "p99 vs base", "work", "rate", "host Kops/s")
	rows := []struct {
		name string
		a    AppsArm
		p99x float64
		work string
		rate string
	}{
		{"base (no apps)", r.Base, 1, "-", "-"},
		{"nn-dist", r.NNDist, r.P99NNDistX,
			fmt.Sprintf("%d queries", r.NNDist.NNQueries), fmt.Sprintf("%.0f cmp/s", r.NNDist.CmpPerSec)},
		{"nn-host", r.NNHost, r.P99NNHostX,
			fmt.Sprintf("%d queries", r.NNHost.NNQueries), fmt.Sprintf("%.0f cmp/s", r.NNHost.CmpPerSec)},
		{"walk-migrate", r.WalkMigrate, r.P99WalkMigrateX,
			fmt.Sprintf("%d walks", r.WalkMigrate.Walks), fmt.Sprintf("%.0f lookups/s", r.WalkMigrate.LookupsPerSec)},
		{"walk-home (H-RH-F)", r.WalkHome, r.P99WalkHomeX,
			fmt.Sprintf("%d walks", r.WalkHome.Walks), fmt.Sprintf("%.0f lookups/s", r.WalkHome.LookupsPerSec)},
	}
	for _, row := range rows {
		t.row(row.name, f1(row.a.RealtimeP50Us), f1(row.a.RealtimeP99Us),
			f2(row.p99x), row.work, row.rate,
			f1(row.a.hostOpsPerSec()/1e3))
	}
	head := fmt.Sprintf(
		"Distributed applications: %d host streams + NN/traversal queries, %d nodes\n"+
			"nearest-neighbor: %.0f cmp/s distributed vs %.0f cmp/s host-mediated: %.1fx\n"+
			"graph traversal: %.0f lookups/s migrating vs %.0f lookups/s home-node H-RH-F: %.1fx (%d state migrations)\n"+
			"realtime host p99 vs app-free base: %.2fx (nn-dist), %.2fx (walk-migrate)\n",
		r.Config.HostStreams, r.Config.Nodes,
		r.NNDist.CmpPerSec, r.NNHost.CmpPerSec, r.NNSpeedupX,
		r.WalkMigrate.LookupsPerSec, r.WalkHome.LookupsPerSec, r.WalkSpeedupX,
		r.WalkMigrate.Migrations,
		r.P99NNDistX, r.P99WalkMigrateX)
	return head + t.String()
}
