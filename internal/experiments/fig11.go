package experiments

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// Fig11Point is one x-position of Figure 11: single-stream bandwidth
// and per-hop latency over an uncontended path of `Hops` hops.
type Fig11Point struct {
	Hops        int
	GbpsPerLane float64
	LatencyUs   float64 // end-to-end latency of a minimal packet
}

// Fig11 reproduces Figure 11 (§6.3): a single stream of packets pushed
// through 1..maxHops hops of the integrated network. The paper
// sustains 8.2 Gbps per lane and 0.48 µs per hop.
func Fig11(maxHops int) ([]Fig11Point, error) {
	if maxHops < 1 {
		maxHops = 5
	}
	var out []Fig11Point
	for hops := 1; hops <= maxHops; hops++ {
		eng := sim.NewEngine()
		net, err := fabric.Line(hops+1, 1).Build(eng, fabric.DefaultConfig(), 0)
		if err != nil {
			return nil, err
		}
		src, err := net.Node(0).BindEndpoint(0)
		if err != nil {
			return nil, err
		}
		dst, err := net.Node(fabric.NodeID(hops)).BindEndpoint(0)
		if err != nil {
			return nil, err
		}

		// Latency: one minimal (128-bit) packet on the idle network.
		var lat sim.Time
		dst.OnReceive = func(fabric.NodeID, int, any) { lat = eng.Now() }
		if err := src.Send(fabric.NodeID(hops), 16, nil, nil); err != nil {
			return nil, err
		}
		eng.Run()

		// Bandwidth: stream 2 KB messages with a small send window.
		const msgs = 1500
		const size = 2048
		received := 0
		dst.OnReceive = func(fabric.NodeID, int, any) { received++ }
		bwStart := eng.Now()
		sent := 0
		var pump func()
		pump = func() {
			if sent >= msgs {
				return
			}
			sent++
			if err := src.Send(fabric.NodeID(hops), size, nil, pump); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 8 && sent < msgs; i++ {
			pump()
		}
		eng.Run()
		if received != msgs {
			return nil, fmt.Errorf("fig11: delivered %d of %d at %d hops", received, msgs, hops)
		}
		elapsed := (eng.Now() - bwStart).Seconds()
		out = append(out, Fig11Point{
			Hops:        hops,
			GbpsPerLane: float64(msgs*size*8) / elapsed / 1e9,
			LatencyUs:   lat.Micros(),
		})
	}
	return out, nil
}

// FormatFig11 renders the series like the paper's plot data.
func FormatFig11(pts []Fig11Point) string {
	var t table
	t.row("Hops", "Gbps/lane", "Latency(us)")
	for _, p := range pts {
		t.row(fmt.Sprint(p.Hops), f2(p.GbpsPerLane), f2(p.LatencyUs))
	}
	return "Figure 11: integrated network performance\n" + t.String()
}
