package experiments

import (
	"strings"
	"testing"
)

func TestFig11Shape(t *testing.T) {
	pts, err := Fig11(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		// Paper: ~8.2 Gbps/lane sustained regardless of hop count.
		if p.GbpsPerLane < 7.5 || p.GbpsPerLane > 8.3 {
			t.Errorf("hops %d: %.2f Gbps, want ~8", p.Hops, p.GbpsPerLane)
		}
		// Paper: 0.48us per hop.
		perHop := p.LatencyUs / float64(p.Hops)
		if perHop < 0.45 || perHop > 0.7 {
			t.Errorf("hops %d: %.2fus per hop, want ~0.5", p.Hops, perHop)
		}
	}
	s := FormatFig11(pts)
	if !strings.Contains(s, "Figure 11") {
		t.Fatal("format broken")
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Fig12Row {
		for _, r := range rows {
			if r.Path == name {
				return r
			}
		}
		t.Fatalf("missing row %s", name)
		return Fig12Row{}
	}
	ispf, hf, hrhf, hd := get("ISP-F"), get("H-F"), get("H-RH-F"), get("H-D")
	if !(ispf.TotalUs < hf.TotalUs && hf.TotalUs < hrhf.TotalUs) {
		t.Fatalf("ordering broken: %.0f %.0f %.0f", ispf.TotalUs, hf.TotalUs, hrhf.TotalUs)
	}
	if hd.TotalUs >= hf.TotalUs {
		t.Fatalf("H-D (%.0f) should beat H-F (%.0f)", hd.TotalUs, hf.TotalUs)
	}
	if ispf.SoftwareUs != 0 {
		t.Fatalf("ISP-F has software latency %.1f, want 0", ispf.SoftwareUs)
	}
	// Paper: "in all 4 cases, the network latency is insignificant".
	for _, r := range rows {
		if r.NetworkUs > 0.1*r.TotalUs {
			t.Errorf("%s: network %.1fus is not insignificant vs %.1f", r.Path, r.NetworkUs, r.TotalUs)
		}
	}
	// H-D has (nearly) no storage component.
	if hd.StorageUs > 5 {
		t.Errorf("H-D storage %.1fus, want ~0 (DRAM)", hd.StorageUs)
	}
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, r := range rows {
			if r.Scenario == name {
				return r.GBps
			}
		}
		t.Fatalf("missing scenario %s", name)
		return 0
	}
	hostLocal := get("Host-Local")
	ispLocal := get("ISP-Local")
	isp2 := get("ISP-2Nodes")
	isp3 := get("ISP-3Nodes")

	// Paper: Host-Local capped by PCIe at 1.6; ISP-Local 2.4;
	// ISP-2Nodes ~3.4 (one link); ISP-3Nodes ~6.5 (two links each).
	if hostLocal > 1.6 || hostLocal < 1.3 {
		t.Errorf("Host-Local %.2f GB/s, want ~1.5-1.6 (PCIe cap)", hostLocal)
	}
	if ispLocal < 1.9 || ispLocal > 2.4 {
		t.Errorf("ISP-Local %.2f GB/s, want ~2.2 (2 cards)", ispLocal)
	}
	if isp2 < ispLocal+0.7 || isp2 > ispLocal+1.1 {
		t.Errorf("ISP-2Nodes %.2f GB/s, want local+~1 (one 8.2Gbps link)", isp2)
	}
	if isp3 < 5.0 || isp3 > 6.6 {
		t.Errorf("ISP-3Nodes %.2f GB/s, want ~6 (two remotes, two links each)", isp3)
	}
	if !(hostLocal < ispLocal && ispLocal < isp2 && isp2 < isp3) {
		t.Fatalf("bars not increasing: %.2f %.2f %.2f %.2f", hostLocal, ispLocal, isp2, isp3)
	}
}

func TestFig16Shape(t *testing.T) {
	pts, err := Fig16([]int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]map[int]float64{}
	for _, p := range pts {
		if val[p.Series] == nil {
			val[p.Series] = map[int]float64{}
		}
		val[p.Series][p.Threads] = p.KCmpSec
	}
	// Baseline flat at ~250-300K; throttled ~60-73K; DRAM scales with
	// threads and overtakes the baseline somewhere past 4 threads.
	if v := val["1 Node"][4]; v < 200 || v > 330 {
		t.Errorf("baseline %vK, want ~250-320K", v)
	}
	if v := val["Throttled"][4]; v < 55 || v > 74 {
		t.Errorf("throttled %vK, want ~60-73K", v)
	}
	if val["DRAM"][4] > val["1 Node"][4] {
		t.Errorf("at 4 threads DRAM (%.0fK) should not yet beat the ISP (%.0fK)",
			val["DRAM"][4], val["1 Node"][4])
	}
	if val["DRAM"][16] < val["1 Node"][16] {
		t.Errorf("at 16 threads DRAM (%.0fK) should beat the ISP (%.0fK)",
			val["DRAM"][16], val["1 Node"][16])
	}
	if val["DRAM"][16] <= val["DRAM"][4] {
		t.Error("DRAM series does not scale with threads")
	}
}

func TestFig17Shape(t *testing.T) {
	pts, err := Fig17([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]map[int]float64{}
	for _, p := range pts {
		if val[p.Series] == nil {
			val[p.Series] = map[int]float64{}
		}
		val[p.Series][p.Threads] = p.KCmpSec
	}
	// The collapse: mixed residency far below pure DRAM; disk worse
	// than flash; ISP above both mixed configurations.
	if !(val["10% Flash"][8] < val["DRAM"][8]/3) {
		t.Errorf("10%% flash (%.0fK) should collapse vs DRAM (%.0fK)",
			val["10% Flash"][8], val["DRAM"][8])
	}
	if !(val["5% Disk"][8] < val["10% Flash"][8]) {
		t.Errorf("5%% disk (%.0fK) should be below 10%% flash (%.0fK)",
			val["5% Disk"][8], val["10% Flash"][8])
	}
	if !(val["ISP"][8] > val["10% Flash"][8]) {
		t.Errorf("throttled ISP (%.0fK) should beat 10%% flash (%.0fK)",
			val["ISP"][8], val["10% Flash"][8])
	}
}

func TestFig18Shape(t *testing.T) {
	pts, err := Fig18([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]map[int]float64{}
	for _, p := range pts {
		if val[p.Series] == nil {
			val[p.Series] = map[int]float64{}
		}
		val[p.Series][p.Threads] = p.KCmpSec
	}
	// Random SSD poor; sequentialized approaches the throttled ISP.
	if !(val["Full Flash"][8] < 0.75*val["ISP"][8]) {
		t.Errorf("random SSD (%.0fK) should be well below throttled ISP (%.0fK)",
			val["Full Flash"][8], val["ISP"][8])
	}
	if v := val["Seq Flash"][8] / val["ISP"][8]; v < 0.8 || v > 1.05 {
		t.Errorf("sequential SSD should approach the ISP level: ratio %.2f", v)
	}
}

func TestFig19Shape(t *testing.T) {
	pts, err := Fig19([]int{8})
	if err != nil {
		t.Fatal(err)
	}
	var isp, sw float64
	for _, p := range pts {
		switch p.Series {
		case "ISP":
			isp = p.KCmpSec
		case "BlueDBM+SW":
			sw = p.KCmpSec
		}
	}
	adv := isp / sw
	// Paper: "the accelerator advantage is at least 20%".
	if adv < 1.15 || adv > 1.6 {
		t.Fatalf("ISP advantage %.2fx (ISP %.0fK vs SW %.0fK), want ~1.2x", adv, isp, sw)
	}
}

func TestFig20Shape(t *testing.T) {
	rows, err := Fig20()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, r := range rows {
			if r.Access == name {
				return r.LookupsPerSec
			}
		}
		t.Fatalf("missing %s", name)
		return 0
	}
	ispf, hf, hrhf := get("ISP-F"), get("H-F"), get("H-RH-F")
	f50, f30, hdram := get("50%F"), get("30%F"), get("H-DRAM")
	if !(ispf > hf && hf > hrhf) {
		t.Fatalf("flash path ordering broken: %.0f %.0f %.0f", ispf, hf, hrhf)
	}
	if r := ispf / hrhf; r < 2.0 || r > 4.5 {
		t.Fatalf("ISP-F / H-RH-F = %.2f, paper reports ~3", r)
	}
	if !(hrhf < f50 && f50 < f30 && f30 < hdram) {
		t.Fatalf("DRAM-mix ordering broken: %.0f %.0f %.0f %.0f", hrhf, f50, f30, hdram)
	}
	if ispf < f50 {
		t.Fatalf("ISP-F (%.0f) must beat 50%%-DRAM (%.0f): the paper's headline", ispf, f50)
	}
}

func TestFig21Shape(t *testing.T) {
	rows, err := Fig21()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig21Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	isp := byName["Flash/ISP"]
	sw := byName["Flash/SW Grep"]
	hdd := byName["HDD/SW Grep"]

	// Paper: 1.1 GB/s at ~0% CPU.
	if isp.MBps < 900 || isp.MBps > 1100 {
		t.Errorf("Flash/ISP %.0f MB/s, want ~1000-1100", isp.MBps)
	}
	if isp.CPUUtil > 0.02 {
		t.Errorf("Flash/ISP CPU %.0f%%, want ~0", isp.CPUUtil*100)
	}
	// Paper: SSD-bound grep at 65% CPU.
	if sw.MBps < 350 || sw.MBps > 620 {
		t.Errorf("Flash/SW %.0f MB/s, want IO-bound 400-600", sw.MBps)
	}
	if sw.CPUUtil < 0.40 || sw.CPUUtil > 0.80 {
		t.Errorf("Flash/SW CPU %.0f%%, want ~65%%", sw.CPUUtil*100)
	}
	// Paper: ISP 7.5x faster than HDD grep, which sits at 13% CPU.
	if r := isp.MBps / hdd.MBps; r < 5.5 || r > 9.5 {
		t.Errorf("ISP/HDD speedup %.1fx, paper reports 7.5x", r)
	}
	if hdd.CPUUtil > 0.25 {
		t.Errorf("HDD/SW CPU %.0f%%, want low (~13%%)", hdd.CPUUtil*100)
	}
	if isp.Matches == 0 {
		t.Error("no matches found; experiment is vacuous")
	}
}

func TestTablesFormat(t *testing.T) {
	for _, s := range []string{FormatTable1(8), FormatTable2(8), FormatTable3(2)} {
		if !strings.Contains(s, "Total") {
			t.Fatalf("table missing totals:\n%s", s)
		}
	}
	if !Table1(8).Fits() || !Table2(8).Fits() {
		t.Fatal("designs do not fit their FPGAs")
	}
	if Table3(2).Total() != 240 {
		t.Fatalf("node power %.0f, want 240", Table3(2).Total())
	}
}
