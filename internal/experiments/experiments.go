// Package experiments regenerates every table and figure of the
// paper's evaluation (§6 and §7). Each Fig*/Table* function builds the
// simulated appliance it needs, runs the paper's workload, and returns
// typed rows; Format* helpers print them in the paper's layout.
//
// The per-experiment index (workload, parameters, modules, paper
// numbers) lives in DESIGN.md §3; measured-vs-paper results are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// scaledParams returns paper-faithful cluster parameters with flash
// capacity scaled down so experiments finish in seconds of wall-clock
// time. Bandwidths and latencies are untouched.
func scaledParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 16
	p.Geometry.PagesPerBlock = 32
	return p
}

// table is a tiny column formatter shared by the Format helpers.
type table struct {
	b strings.Builder
}

func (t *table) row(cols ...string) {
	for i, c := range cols {
		if i > 0 {
			t.b.WriteString("  ")
		}
		fmt.Fprintf(&t.b, "%-14s", c)
	}
	t.b.WriteString("\n")
}

func (t *table) String() string { return t.b.String() }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
