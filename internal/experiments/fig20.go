package experiments

import (
	"repro/internal/accel/graph"
	"repro/internal/core"
)

// Fig20Row is one bar of Figure 20.
type Fig20Row struct {
	Access        string
	LookupsPerSec float64
}

// Fig20 reproduces Figure 20 (§7.2): dependent-lookup graph traversal
// throughput under each access configuration. The paper's result: the
// integrated network plus in-store traversal (ISP-F) is ~3x a generic
// distributed SSD (H-RH-F), and beats even a store with 50% of
// accesses served by DRAM.
func Fig20() ([]Fig20Row, error) {
	type cfg struct {
		name string
		mode graph.Mode
		pct  int
	}
	cfgs := []cfg{
		{"ISP-F", graph.ModeISPF, 0},
		{"H-F", graph.ModeHF, 0},
		{"H-RH-F", graph.ModeHRHF, 0},
		{"50%F", graph.ModeMixed, 50},
		{"30%F", graph.ModeMixed, 30},
		{"H-DRAM", graph.ModeHDRAM, 0},
	}
	var out []Fig20Row
	for _, cf := range cfgs {
		c, err := core.NewCluster(scaledParams(4))
		if err != nil {
			return nil, err
		}
		g, err := graph.Build(c, graph.Config{Vertices: 240, AvgDegree: 8, Seed: 23, HomeNode: 0})
		if err != nil {
			return nil, err
		}
		res, err := graph.Traverse(c, 0, g, graph.TraverseConfig{
			Start: 3, Steps: 200, Mode: cf.mode, PctFlash: cf.pct, Seed: 29, Walkers: 1,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig20Row{Access: cf.name, LookupsPerSec: res.LookupsPerSec})
	}
	return out, nil
}

// FormatFig20 renders the bars.
func FormatFig20(rows []Fig20Row) string {
	var t table
	t.row("Access", "Lookups/s")
	for _, r := range rows {
		t.row(r.Access, f0(r.LookupsPerSec))
	}
	return "Figure 20: graph traversal performance\n" + t.String()
}
