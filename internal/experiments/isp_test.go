package experiments

import (
	"encoding/json"
	"sync"
	"testing"
)

// ispOnce runs the four-arm contention experiment once; the assertion
// tests below share the result (each arm is a full cluster run).
var ispOnce = struct {
	sync.Once
	res ISPContentionResult
	err error
}{}

func ispResult(t *testing.T) ISPContentionResult {
	t.Helper()
	ispOnce.Do(func() {
		ispOnce.res, ispOnce.err = ISPContention(DefaultISPContention(true))
	})
	if ispOnce.err != nil {
		t.Fatal(ispOnce.err)
	}
	return ispOnce.res
}

// TestISPSchedulerBypassRegression is the regression test for the
// scheduler-bypass bug: un-arbitrated core.Node flash reads from the
// accelerator stack inflate realtime host p99 under mixed load (the
// bypass arm), and admitting ISP traffic through the scheduler's
// Accel class (the isp-f arm) restores the tail to near the no-ISP
// baseline at comparable query throughput.
func TestISPSchedulerBypassRegression(t *testing.T) {
	r := ispResult(t)
	if r.Base.RealtimeP99Us <= 0 {
		t.Fatal("no baseline realtime tail measured")
	}
	// The bug: bypassing ISP load blows the realtime tail well past
	// the acceptance envelope.
	if r.P99BypassX <= 1.5 {
		t.Fatalf("bypass arm p99 only %.2fx base; the bug scenario lost its teeth", r.P99BypassX)
	}
	// The fix: admitted ISP load keeps the tail inside 1.5x baseline.
	if r.P99ISPFX > 1.5 {
		t.Fatalf("isp-f arm p99 %.2fx base, want <= 1.5x", r.P99ISPFX)
	}
	// And the fix must not have neutered the accelerators: admitted
	// throughput stays within reach of the unarbitrated path.
	if r.ISPF.QueryMBps <= 0 {
		t.Fatal("isp-f arm moved no query bytes")
	}
}

// TestISPContentionAcceptance guards the headline: the distributed
// ISP-F path beats host-mediated scanning on query throughput at
// identical offered host load, and every arm agrees on the query
// answer.
func TestISPContentionAcceptance(t *testing.T) {
	r := ispResult(t)
	if r.QuerySpeedupX <= 1 {
		t.Fatalf("isp-f only %.2fx host-mediated query throughput", r.QuerySpeedupX)
	}
	if r.ISPF.MatchesPerQuery == 0 {
		t.Fatal("queries found no matches; the haystack plant is broken")
	}
	if r.ISPF.MatchesPerQuery != r.HostMediated.MatchesPerQuery ||
		r.ISPF.MatchesPerQuery != r.Bypass.MatchesPerQuery {
		t.Fatalf("arms disagree on matches: isp-f %d, host %d, bypass %d",
			r.ISPF.MatchesPerQuery, r.HostMediated.MatchesPerQuery, r.Bypass.MatchesPerQuery)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("result does not marshal: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty JSON")
	}
}
