package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Fig12Row is one access path's latency breakdown (microseconds).
type Fig12Row struct {
	Path       string
	SoftwareUs float64
	StorageUs  float64
	TransferUs float64
	NetworkUs  float64
	TotalUs    float64
}

// Fig12 reproduces Figure 12 (§6.4): the latency of reading one remote
// 8 KB page over each access path, decomposed into software, storage,
// data-transfer and network components (Figure 14's taxonomy).
func Fig12() ([]Fig12Row, error) {
	c, err := core.NewCluster(scaledParams(4))
	if err != nil {
		return nil, err
	}
	// One page on node 1, read from node 0.
	a := core.LinearPage(c.Params, 1, 0)
	var werr error
	c.Node(1).WriteLocal(a.Card, a.Addr, make([]byte, c.Params.PageSize()), func(err error) { werr = err })
	c.Run()
	if werr != nil {
		return nil, werr
	}

	var out []Fig12Row

	// ISP-F: the in-store processor path has no host software at all;
	// decompose analytically from the measured total.
	start := c.Eng.Now()
	var ispTotal sim.Time
	var ispErr error
	c.Node(0).ISPRead(a, func(_ []byte, err error) {
		ispErr = err
		ispTotal = c.Eng.Now() - start
	})
	c.Run()
	if ispErr != nil {
		return nil, ispErr
	}
	hops := c.Hops(0, 1)
	netLat := (sim.Time(2*hops) * c.Params.Net.HopLatency).Micros()
	storage := c.Params.FlashTiming.ReadPage.Micros()
	out = append(out, Fig12Row{
		Path:       "ISP-F",
		SoftwareUs: 0,
		StorageUs:  storage,
		TransferUs: ispTotal.Micros() - storage - netLat,
		NetworkUs:  netLat,
		TotalUs:    ispTotal.Micros(),
	})

	for _, pc := range []struct {
		name string
		path core.AccessPath
	}{
		{"H-F", core.PathHF},
		{"H-RH-F", core.PathHRHF},
		{"H-D", core.PathHD},
	} {
		var tr core.Trace
		var rerr error
		c.Node(0).HostRead(a, pc.path, &tr, func(_ []byte, err error) { rerr = err })
		c.Run()
		if rerr != nil {
			return nil, fmt.Errorf("fig12 %s: %w", pc.name, rerr)
		}
		out = append(out, Fig12Row{
			Path:       pc.name,
			SoftwareUs: tr.Software.Micros(),
			StorageUs:  tr.Storage.Micros(),
			TransferUs: tr.Transfer.Micros(),
			NetworkUs:  tr.Network.Micros(),
			TotalUs:    tr.Total.Micros(),
		})
	}
	return out, nil
}

// FormatFig12 renders the stacked-bar data.
func FormatFig12(rows []Fig12Row) string {
	var t table
	t.row("Path", "Software", "Storage", "Transfer", "Network", "Total(us)")
	for _, r := range rows {
		t.row(r.Path, f1(r.SoftwareUs), f1(r.StorageUs), f1(r.TransferUs), f1(r.NetworkUs), f1(r.TotalUs))
	}
	return "Figure 12: remote access latency breakdown\n" + t.String()
}
