package experiments

import (
	"fmt"

	"repro/internal/accel/search"
	"repro/internal/altstore"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/rfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig21Row is one bar pair of Figure 21.
type Fig21Row struct {
	Method  string
	MBps    float64
	CPUUtil float64 // 0..1
	Matches int
}

// Fig21 reproduces Figure 21 (§7.3): string search bandwidth and host
// CPU utilization for the in-store Morris-Pratt engines versus
// software grep on SSD and on disk. Paper numbers: 1.1 GB/s at ~0%
// CPU for Flash/ISP; SSD-bound grep at 65% CPU; HDD-bound grep (7.5x
// slower than ISP) at 13% CPU.
func Fig21() ([]Fig21Row, error) {
	const needle = "BLUEDBM-ISCA"
	const pages = 768
	gen := workload.TextPages(51, needle, 16)

	// --- Flash/ISP: file system + in-store MP engines ----------------
	c, err := core.NewCluster(scaledParams(1))
	if err != nil {
		return nil, err
	}
	fs, err := rfs.New(c.Node(0).NewIface(0, "fs"), c.Params.Geometry, rfs.DefaultConfig())
	if err != nil {
		return nil, err
	}
	f, err := fs.Create("haystack")
	if err != nil {
		return nil, err
	}
	buf := make([]byte, c.Params.PageSize())
	for i := 0; i < pages; i++ {
		gen(i, buf)
		var werr error
		f.AppendPage(buf, func(err error) { werr = err })
		c.Run()
		if werr != nil {
			return nil, fmt.Errorf("fig21 seeding page %d: %w", i, werr)
		}
	}
	isp, err := search.SearchISP(c, 0, 0, f, []byte(needle))
	if err != nil {
		return nil, err
	}

	// --- Flash/SW grep: software scan over the off-the-shelf SSD -----
	eng := sim.NewEngine()
	cpu, err := hostmodel.New(eng, "host", hostmodel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ssd, err := altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
	if err != nil {
		return nil, err
	}
	sw, err := search.SearchSoftware(eng, cpu, ssd, pages, 8192, gen, []byte(needle), 16)
	if err != nil {
		return nil, err
	}

	// --- HDD/SW grep --------------------------------------------------
	eng2 := sim.NewEngine()
	cpu2, err := hostmodel.New(eng2, "host", hostmodel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	hdd, err := altstore.NewHDD(eng2, "disk", altstore.DefaultHDD())
	if err != nil {
		return nil, err
	}
	hw, err := search.SearchSoftware(eng2, cpu2, hdd, pages, 8192, gen, []byte(needle), 16)
	if err != nil {
		return nil, err
	}

	// All three methods must find the identical match set.
	if len(sw.Matches) != len(isp.Matches) || len(hw.Matches) != len(isp.Matches) {
		return nil, fmt.Errorf("fig21: match counts diverge: isp=%d ssd=%d hdd=%d",
			len(isp.Matches), len(sw.Matches), len(hw.Matches))
	}

	return []Fig21Row{
		{Method: "Flash/ISP", MBps: isp.Throughput / 1e6, CPUUtil: isp.CPUUtil, Matches: len(isp.Matches)},
		{Method: "Flash/SW Grep", MBps: sw.Throughput / 1e6, CPUUtil: sw.CPUUtil, Matches: len(sw.Matches)},
		{Method: "HDD/SW Grep", MBps: hw.Throughput / 1e6, CPUUtil: hw.CPUUtil, Matches: len(hw.Matches)},
	}, nil
}

// FormatFig21 renders the bars.
func FormatFig21(rows []Fig21Row) string {
	var t table
	t.row("Method", "MB/s", "CPU util %", "Matches")
	for _, r := range rows {
		t.row(r.Method, f0(r.MBps), f1(r.CPUUtil*100), fmt.Sprint(r.Matches))
	}
	return "Figure 21: string search bandwidth and CPU utilization\n" + t.String()
}
