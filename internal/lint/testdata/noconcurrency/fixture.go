// Fixture for the noconcurrency analyzer: every concurrency construct
// inside the deterministic core is a finding.
package fixture

import "sync" // want `noconcurrency: import of "sync" in the deterministic core`

var mu sync.Mutex

func goStmt() {
	go func() {}() // want `noconcurrency: go statement in the deterministic core`
}

func channels() {
	var ch chan int // want `noconcurrency: channel type in the deterministic core`
	ch <- 1         // want `noconcurrency: channel send in the deterministic core`
	<-ch            // want `noconcurrency: channel receive in the deterministic core`
	close(ch)       // want `noconcurrency: close of a channel in the deterministic core`
	for range ch {  // want `noconcurrency: range over a channel in the deterministic core`
	}
	select {} // want `noconcurrency: select statement in the deterministic core`
}

// closing a non-channel via a local function named close is fine.
func notBuiltinClose() {
	close := func() {}
	close()
}
