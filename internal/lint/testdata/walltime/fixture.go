// Fixture for the walltime analyzer: host-clock reads and the global
// math/rand stream are flagged; locally-seeded generators, time
// constants, and same-named methods on local types are not.
package fixture

import (
	"math/rand"
	"time"
)

func bad() time.Duration {
	start := time.Now()                // want `walltime: time.Now reads the host clock`
	time.Sleep(time.Millisecond)       // want `walltime: time.Sleep reads the host clock`
	_ = rand.Intn(10)                  // want `walltime: global rand.Intn draws from process-global state`
	rand.Shuffle(0, func(i, j int) {}) // want `walltime: global rand.Shuffle draws from process-global state`
	return time.Since(start)           // want `walltime: time.Since reads the host clock`
}

// seeded builds a locally-seeded generator — always allowed.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// constants from package time do not read the clock.
const tick = 10 * time.Millisecond

// clock has a method named Now; method calls are never flagged.
type clock struct{ t int64 }

func (c *clock) Now() int64 { return c.t }

func usesLocalNow(c *clock) int64 { return c.Now() }

// suppressed keeps one audited host-clock read.
func suppressed() int64 {
	//simlint:allow walltime (fixture: demonstrates an audited suppression)
	return time.Now().UnixNano()
}
