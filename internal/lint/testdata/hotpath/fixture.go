// Fixture for the hotpath analyzer: every AST-visible allocation
// source inside a //simlint:hotpath function is pinned by a want;
// recycled-buffer appends, panic paths, pointer boxing and unannotated
// functions must stay unflagged.
package fixture

import "fmt"

type pool struct {
	slots []int
	buf   []byte
}

//simlint:hotpath
func compositePtr() *pool {
	return &pool{} // want `hotpath: &composite literal allocates in hot path`
}

//simlint:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want `hotpath: slice literal allocates in hot path`
}

//simlint:hotpath
func mapLit() map[int]int {
	return map[int]int{} // want `hotpath: map literal allocates in hot path`
}

//simlint:hotpath
func makeAndNew() {
	_ = make([]int, 4) // want `hotpath: make allocates in hot path`
	_ = new(int)       // want `hotpath: new allocates in hot path`
}

//simlint:hotpath
func freshAppend(xs []int) []int {
	xs = append(xs, 1) // want `hotpath: append may grow a fresh slice in hot path`
	return xs
}

//simlint:hotpath
func closure() func() {
	return func() {} // want `hotpath: closure allocated in hot path`
}

//simlint:hotpath
func format(n int) {
	fmt.Println(n) // want `hotpath: fmt.Println allocates in hot path`
}

type iface interface{ M() }

type valImpl struct{ x int }

func (valImpl) M() {}

func take(i iface) { _ = i }

//simlint:hotpath
func boxes(v valImpl, p *valImpl) {
	take(v) // want `hotpath: converting repro/.* to interface .* allocates in hot path`
	take(p) // pointers ride in the interface word: no finding
}

// recycled appends retain capacity across calls: all allowed.
//
//simlint:hotpath
func (p *pool) recycled(data []byte) {
	p.buf = append(p.buf, data...)
	local := p.buf[:0]
	local = append(local, data...)
	p.buf = local
}

// resliceArg appends into the caller's retained capacity: allowed.
//
//simlint:hotpath
func resliceArg(data []byte) []byte {
	return append(data[:0], 1)
}

// dies allocates only on the way into panic: exempt.
//
//simlint:hotpath
func dies(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n))
	}
}

// coldPath has no annotation: never checked.
func coldPath() *pool {
	return &pool{slots: make([]int, 8)}
}

// suppressed keeps one audited allocation.
//
//simlint:hotpath
func suppressed() []int {
	//simlint:allow hotpath (fixture: demonstrates an audited amortized-growth suppression)
	return make([]int, 8)
}
