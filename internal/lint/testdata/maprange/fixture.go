// Fixture for the maprange analyzer: each want comment pins a flagged
// order-dependent iteration; every unmarked range exercises one of the
// order-insensitivity exemptions and must stay unflagged.
package fixture

import "sort"

// concat is order-dependent: string concatenation does not commute.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `maprange: iteration over map m has order-dependent effects`
		s += k
	}
	return s
}

// floatSum is order-dependent: float rounding depends on summation
// order, so += only commutes for integers.
func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `maprange: iteration over map m has order-dependent effects`
		total += v
	}
	return total
}

// firstError is order-dependent: which entry returns first varies.
func firstError(m map[string]int) int {
	for _, v := range m { // want `maprange: iteration over map m has order-dependent effects`
		if v < 0 {
			return v
		}
	}
	return 0
}

// counted binds neither key nor value: exempt.
func counted(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// intSum is commutative integer accumulation: exempt.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// bitOr is commutative: exempt.
func bitOr(m map[string]uint64) uint64 {
	var bits uint64
	for _, v := range m {
		bits |= v
	}
	return bits
}

// copyByKey writes dst[k] for the range key k — distinct keys touch
// distinct slots: exempt.
func copyByKey(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// largest folds through the builtin max: exempt.
func largest(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = max(best, v)
	}
	return best
}

// subtract deletes by key — set subtraction commutes: exempt.
func subtract(dst map[string]int, src map[string]bool) {
	for k := range src {
		delete(dst, k)
	}
}

// sortedKeys is the canonical collect-then-sort idiom: exempt.
func sortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// suppressed documents an order-insensitive loop the heuristics cannot
// prove; the audited directive keeps it finding-free.
func suppressed(m map[int]bool) int {
	best := -1
	//simlint:allow maprange (lowest-id selection reaches the same winner in any iteration order)
	for id := range m {
		if best < 0 || id < best {
			best = id
		}
	}
	return best
}
