// Fixture for the suppression-directive audit: malformed directives,
// unknown checks, missing reasons and unused suppressions are all
// findings of the "simlint" pseudo-check (asserted programmatically —
// a want comment cannot share a line with a directive).
package fixture

//simlint:allow
var a = 1

//simlint:allow maprange
var b = 2

//simlint:allow nosuchcheck (reason given)
var c = 3

//simlint:allow maprange (nothing on the next line ranges a map)
var d = 4
