// Fixture for the oncedone analyzer: functions whose completion
// callback is marked //simlint:once must invoke it exactly once on
// every path. Pinned here: the silent-hang path (a return the
// callback never saw), the double completion, the handoff exemptions
// (argument, struct store, closure capture), marker hygiene, and an
// audited suppression.
package fixture

import "errors"

var errBad = errors.New("bad request")

// hangs forgets the callback on the early return: the caller waits
// forever.
//
//simlint:once done
func hangs(n int, done func(error)) { // want `oncedone: callback done is not invoked on some path to return: the caller waits forever`
	if n < 0 {
		return
	}
	done(nil)
}

// doubleFire completes twice when both conditions hold.
//
//simlint:once done
func doubleFire(fail bool, done func(error)) {
	if fail {
		done(errBad)
	}
	done(nil) // want `oncedone: callback done may be invoked a second time here`
}

// exact completes exactly once on every branch: no finding.
//
//simlint:once done
func exact(n int, done func(error)) {
	if n < 0 {
		done(errBad)
		return
	}
	done(nil)
}

func enqueue(fn func(error)) {}

// handoffArg forwards the obligation to enqueue.
//
//simlint:once done
func handoffArg(done func(error)) {
	enqueue(done)
}

type waiter struct{ cb func(error) }

// handoffStore parks the callback for a later completion.
//
//simlint:once done
func handoffStore(w *waiter, done func(error)) {
	w.cb = done
}

// handoffCapture lets a closure own the completion.
//
//simlint:once done
func handoffCapture(done func(error)) func() {
	return func() { done(nil) }
}

// panicPath dies instead of returning: exempt.
//
//simlint:once done
func panicPath(bad bool, done func(error)) {
	if bad {
		panic("corrupt state")
	}
	done(nil)
}

// bareMarker resolves the sole func-typed parameter without naming it.
//
//simlint:once
func bareMarker(n int, done func(error)) { // want `oncedone: callback done is not invoked on some path to return: the caller waits forever`
	if n > 0 {
		done(nil)
	}
}

// ambiguous has two func-typed parameters: the bare form is a finding.
//
//simlint:once
func ambiguous(a func(), b func()) { // want `oncedone: bare //simlint:once needs exactly one func-typed parameter on ambiguous \(found 2\); name one`
	a()
	b()
}

// wrongType names a non-func parameter.
//
//simlint:once n
func wrongType(n int, done func(error)) { // want `oncedone: once parameter n of wrongType is not func-typed`
	done(nil)
}

// suppressed keeps one audited fire-and-forget path.
//
//simlint:once done
//simlint:allow oncedone (fixture: demonstrates an audited intentional no-completion suppression)
func suppressed(drop bool, done func()) {
	if !drop {
		done()
	}
}
