// Fixture for the hotcall analyzer: allocations one or two helpers
// below a //simlint:hotpath root are findings carrying the full call
// chain; interface dispatch fans out to every in-module
// implementation; an audited //simlint:allow hotcall prunes a cold
// edge, and the same directive on an allocation line inside a reached
// function audits that single site.
package fixture

type sink struct {
	buf  []byte
	tmp  []int
	devs []device
}

// --- transitive propagation -------------------------------------------

//simlint:hotpath
func hotRoot(s *sink) {
	helper(s)
}

func helper(s *sink) {
	deeper(s)
	s.buf = make([]byte, 8) // want `hotcall: hot call chain fixture.hotRoot → fixture.helper: make allocates in hot path`
}

func deeper(s *sink) {
	s.tmp = []int{1} // want `hotcall: hot call chain fixture.hotRoot → fixture.helper → fixture.deeper: slice literal allocates in hot path`
}

// --- interface fan-out ------------------------------------------------

type device interface {
	put(n int)
}

type devA struct{ log []int }

func (d *devA) put(n int) {
	d.log = make([]int, n) // want `hotcall: hot call chain fixture.dispatch → fixture.devA.put: make allocates in hot path`
}

type devB struct{ sum *int }

func (d *devB) put(n int) {
	d.sum = new(int) // want `hotcall: hot call chain fixture.dispatch → fixture.devB.put: new allocates in hot path`
}

//simlint:hotpath
func dispatch(d device, n int) {
	d.put(n)
}

// --- audited cold edge ------------------------------------------------

//simlint:hotpath
func hotWithColdEdge(s *sink) {
	//simlint:allow hotcall (fixture: setup-only slow path, never on the per-op path)
	coldSetup(s)
}

// coldSetup allocates freely: its only hot caller audited the edge
// away, so nothing below it is checked.
func coldSetup(s *sink) {
	s.devs = make([]device, 0, 16)
	s.buf = make([]byte, 4096)
}

// --- audited allocation inside a reached function ---------------------

//simlint:hotpath
func hotGrowth(s *sink) {
	grow(s)
}

func grow(s *sink) {
	//simlint:allow hotcall (fixture: amortized doubling, demonstrates a single-site audit in a reached function)
	s.tmp = make([]int, len(s.tmp)*2)
}

// neverCalled is unreachable from any hot root: allocations are free.
func neverCalled() []byte {
	return make([]byte, 1<<20)
}

// --- escapecheck cross-check anchors ----------------------------------
// The sites below produce no AST findings; the escapes test feeds
// synthetic compiler decisions at their lines to pin the cross-check's
// hot/cold, panic-path and suppression behavior.

func keep(s *sink) {}

//simlint:hotpath
func hotPanics(s *sink, n int) {
	if n < 0 {
		panic("bad fixture input") // escapes:panic
	}
	keep(s)
}

//simlint:hotpath
func hotAudited(s *sink) {
	//simlint:allow escapecheck (fixture: demonstrates auditing a compiler-only escape the AST cannot see)
	keep(s) // escapes:audited
}

//simlint:hotpath
func hotUnseen(s *sink) {
	keep(s) // escapes:unseen
}
