// Fixture for the poolleak analyzer: an annotated pool type whose
// acquired objects must be released or handed off on every path.
// Pinned here: the early-return leak, the double put, reacquisition
// while held, the handoff exemptions (argument, field store, closure
// capture, method-value), and an audited suppression.
package fixture

import "errors"

var errBusy = errors.New("busy")

// ctx is the pooled per-op context.
//
//simlint:pool get=getCtx put=putCtx
type ctx struct {
	n    int
	done func()
}

type owner struct {
	free []*ctx
	held *ctx
}

func (o *owner) getCtx() *ctx {
	if n := len(o.free); n > 0 {
		c := o.free[n-1]
		o.free = o.free[:n-1]
		return c
	}
	return &ctx{}
}

func (o *owner) putCtx(c *ctx) {
	c.n = 0
	o.free = append(o.free, c)
}

// leakOnError forgets the context on the error path: the classic bug.
func (o *owner) leakOnError(busy bool) error {
	c := o.getCtx() // want `poolleak: pooled c acquired here may leak: some path reaches return without put or handoff`
	if busy {
		return errBusy
	}
	o.putCtx(c)
	return nil
}

// doublePut releases twice on the busy path.
func (o *owner) doublePut(busy bool) {
	c := o.getCtx()
	if busy {
		o.putCtx(c)
	}
	o.putCtx(c) // want `poolleak: pooled c may be released twice on one path`
}

// reacquire overwrites a held context with a fresh one.
func (o *owner) reacquire() {
	c := o.getCtx()
	c = o.getCtx() // want `poolleak: pooled c reacquired while a previous acquisition may still be held`
	o.putCtx(c)
}

// balanced releases on every path: no finding.
func (o *owner) balanced(busy bool) error {
	c := o.getCtx()
	if busy {
		o.putCtx(c)
		return errBusy
	}
	c.n++
	o.putCtx(c)
	return nil
}

func consume(c *ctx) {}

// handoffArg passes the context on: the callee owns it now.
func (o *owner) handoffArg() {
	c := o.getCtx()
	consume(c)
}

// handoffField parks the context in a reachable place.
func (o *owner) handoffField() {
	c := o.getCtx()
	o.held = c
}

// handoffCapture hands the obligation to a closure.
func (o *owner) handoffCapture() func() {
	c := o.getCtx()
	return func() { o.putCtx(c) }
}

// handoffBoundCallback uses a func-typed field of the context as data:
// whoever runs it holds a live reference, so ownership moved.
func run(f func()) {}

func (o *owner) handoffBoundCallback() {
	c := o.getCtx()
	run(c.done)
}

// neutralUses reads fields, indexes and compares without moving
// ownership, then leaks: still a finding.
func (o *owner) neutralUses(xs []int) int {
	c := o.getCtx() // want `poolleak: pooled c acquired here may leak: some path reaches return without put or handoff`
	if c == o.held {
		o.putCtx(c)
		return 0
	}
	return xs[c.n] + c.n
}

// panicPath dies instead of returning: exempt.
func (o *owner) panicPath(bad bool) {
	c := o.getCtx()
	if bad {
		panic("corrupt state")
	}
	o.putCtx(c)
}

// suppressed keeps one audited intentional leak.
func (o *owner) suppressed() {
	//simlint:allow poolleak (fixture: demonstrates an audited intentional-drop suppression)
	c := o.getCtx()
	c.n++
}
