// Fixture for the errdrop analyzer: statement-position calls that
// discard an error result are findings; explicit `_ =`, checked calls,
// and always-nil in-memory writers are not.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

func fails() error { return errors.New("x") }

func pair() (int, error) { return 0, nil }

func discards() {
	fails()       // want `errdrop: fails returns an error that is discarded`
	defer fails() // want `errdrop: fails returns an error that is discarded`
	pair()        // want `errdrop: pair returns an error that is discarded`
}

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	_ = fails() // explicit discard is visible intent: no finding
	n, err := pair()
	_ = n
	return err
}

// inMemoryWriters never return a non-nil error: all exempt.
func inMemoryWriters() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	return b.String()
}

func noError() { println("no result at all") }

func suppressed() {
	//simlint:allow errdrop (fixture: best-effort call, failure is acceptable)
	fails()
}
