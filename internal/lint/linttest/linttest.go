// Package linttest runs simlint analyzers over small fixture packages
// and checks the reported diagnostics against expectations written in
// the fixture source itself, in the style of x/tools' analysistest:
//
//	for k := range m { // want `order-dependent`
//
// A `// want` comment holds one or more quoted regular expressions
// (double quotes or backticks); each must match a distinct diagnostic
// reported on that line as "check: message". Every diagnostic must be
// matched by a want and every want must match a diagnostic, so
// fixtures pin both positives and the absence of false positives.
//
// Fixtures live under testdata/ (invisible to go list), import only
// the standard library, and are type-checked as if they lived at a
// caller-chosen module-relative path — which is what the analyzers'
// scope fences key on.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
)

// sharedFset and sharedImporter are reused across fixture loads so the
// standard library is type-checked from source once per test binary.
var (
	sharedFset     = token.NewFileSet()
	sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// Load parses and type-checks the single fixture package in dir as if
// it lived at relPath inside the module, for tests that drive
// module-level entry points (lint.Snapshot, lint.EscapeCheck)
// directly rather than through Run.
func Load(t *testing.T, dir, relPath string) *lint.Package {
	t.Helper()
	return load(t, dir, relPath)
}

// Diags parses and type-checks the single fixture package in dir as if
// it lived at relPath inside the module, runs the analyzers over it,
// and returns the diagnostics (suppressions honored, unused ones
// reported — exactly like a real run).
func Diags(t *testing.T, dir, relPath string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkg := load(t, dir, relPath)
	return lint.Run([]*lint.Package{pkg}, analyzers)
}

// Run executes the analyzers over the fixture in dir and fails the
// test on any mismatch between diagnostics and // want expectations.
func Run(t *testing.T, dir, relPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg := load(t, dir, relPath)
	diags := lint.Run([]*lint.Package{pkg}, analyzers)

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		text := d.Check + ": " + d.Message
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// load parses and type-checks one fixture directory.
func load(t *testing.T, dir, relPath string) *lint.Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: sharedImporter}
	tpkg, err := conf.Check("repro/"+relPath, sharedFset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &lint.Package{
		ImportPath: "repro/" + relPath,
		RelPath:    relPath,
		Dir:        dir,
		Fset:       sharedFset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
}

// want is one expectation: a regexp anchored to a file and line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantArgRe extracts the quoted regexes of a want comment.
var wantArgRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// collectWants parses every `// want ...` comment of the fixture.
func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(strings.TrimPrefix(text, "want "), -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment with no quoted pattern", pos)
				}
				for _, m := range args {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", pkg.Dir)
	}
	return wants
}
