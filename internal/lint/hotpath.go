package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath flags AST-visible allocation sources inside functions
// annotated with a `//simlint:hotpath` doc-comment line. The sim
// package's AllocsPerRun tests pin a handful of call sites at zero
// allocations; the annotation turns that point coverage into surface
// coverage — every edit to an annotated function is checked against
// the whole catalogue of things that allocate:
//
//   - &T{...} and slice/map composite literals
//   - make and new
//   - append that can grow a fresh slice (see below)
//   - function literals (closure allocation)
//   - fmt.* calls (formatting allocates)
//   - implicit or explicit conversion of a non-pointer value to an
//     interface (boxing)
//
// Recycled-buffer appends are recognized and allowed: appending to a
// resliced buffer (`append(buf[:0], ...)`), growing a persistent
// field in place (`x.buf = append(x.buf, e)`), or growing a local
// that was initialized by reslicing one. Those retain capacity across
// uses, so steady state does not allocate. Constant arguments to
// interface parameters are also ignored. Everything under a panic(...)
// call is exempt — the process is dying, allocation is moot.
//
// Genuinely-amortized growth paths that the heuristics cannot see
// (pool refills, ring doubling) carry an audited
// `//simlint:allow hotpath (reason)`.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocation source in a //simlint:hotpath function",
	Run:  runHotpath,
}

// hotpathMarker is the doc-comment line that opts a function in.
const hotpathMarker = "simlint:hotpath"

func runHotpath(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
				continue
			}
			h := &hotpathWalk{p: p, fn: fd}
			h.allowedAppends = recycledAppends(p, fd.Body)
			h.walk(fd.Body)
		}
	}
}

func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotpathMarker {
			return true
		}
	}
	return false
}

type hotpathWalk struct {
	p              *Pass
	fn             *ast.FuncDecl
	allowedAppends map[*ast.CallExpr]bool
	// chain prefixes every finding when the walk runs on behalf of
	// hotcall: the rendered call chain from the annotated root.
	chain string
}

// report prefixes the hotcall chain (when present) onto the finding.
func (h *hotpathWalk) report(pos token.Pos, format string, args ...any) {
	h.p.Reportf(pos, h.chain+format, args...)
}

// walk inspects the body, skipping panic arguments and the interiors
// of function literals (the literal itself is the allocation; its body
// runs elsewhere).
func (h *hotpathWalk) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			h.report(x.Pos(), "closure allocated in hot path; bind the callback once at construction")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					h.report(x.Pos(), "&composite literal allocates in hot path; recycle from a pool")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := h.p.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					h.report(x.Pos(), "%s literal allocates in hot path", typeKind(t))
				}
			}
		case *ast.CallExpr:
			return h.call(x)
		}
		return true
	})
}

// call checks one call expression; it returns false to prune the walk
// below panic calls.
func (h *hotpathWalk) call(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(h.p, id) {
		switch id.Name {
		case "panic":
			return false // dying: allocations on the way out are moot
		case "make":
			h.report(call.Pos(), "make allocates in hot path")
		case "new":
			h.report(call.Pos(), "new allocates in hot path")
		case "append":
			if !h.allowedAppends[call] && !isRecycledAppendArg(call) {
				h.report(call.Pos(), "append may grow a fresh slice in hot path; append to a recycled buffer (buf[:0] or a persistent field)")
			}
		}
		return true
	}
	// Explicit conversion T(x) to an interface type.
	if tv, ok := h.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			h.boxing(call.Args[0], tv.Type)
		}
		return true
	}
	// fmt is never allocation-free.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := h.p.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if _, isMethod := h.p.Info.Selections[sel]; !isMethod {
				h.report(call.Pos(), "fmt.%s allocates in hot path", obj.Name())
				return true
			}
		}
	}
	// Implicit boxing: non-pointer arguments to interface parameters.
	sig, ok := h.p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return true
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i)
		if pt == nil {
			break
		}
		if i == len(call.Args)-1 && call.Ellipsis.IsValid() {
			break // xs... passes the slice through, no per-element boxing
		}
		if types.IsInterface(pt) {
			h.boxing(arg, pt)
		}
	}
	return true
}

// boxing reports arg if converting it to the interface type iface
// allocates: every value type does, single-word reference types
// (pointers, chans, maps, funcs) and constants do not.
func (h *hotpathWalk) boxing(arg ast.Expr, iface types.Type) {
	tv, ok := h.p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return // constants and nil never hit the allocator here
	}
	t := tv.Type
	if types.IsInterface(t) {
		return // interface-to-interface: no new box
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // one-word values ride in the iface data word
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	h.report(arg.Pos(), "converting %s to interface %s allocates in hot path; pass a pointer or avoid the interface", t, iface)
}

// paramType returns the effective type of argument i (expanding the
// variadic tail), or nil when i is out of range for a non-variadic
// signature.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() {
		if i >= n-1 {
			return sig.Params().At(n - 1).Type().(*types.Slice).Elem()
		}
		return sig.Params().At(i).Type()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// isRecycledAppendArg reports appends whose base is already a reslice:
// append(buf[:0], ...) writes into retained capacity.
func isRecycledAppendArg(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	_, ok := call.Args[0].(*ast.SliceExpr)
	return ok
}

// recycledAppends pre-scans a function body for `x = append(x, ...)`
// growth of persistent state: x a field selector, or a local whose
// initialization reslices an existing buffer. Those appends retain
// capacity across calls (amortized growth), so they are allowed.
func recycledAppends(p *Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	resliced := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if _, ok := rhs.(*ast.SliceExpr); !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.ObjectOf(id); obj != nil {
					resliced[obj] = true
				}
			}
		}
		return true
	})

	allowed := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || !isBuiltin(p, fn) || len(call.Args) == 0 {
				continue
			}
			if !sameExpr(p, as.Lhs[i], call.Args[0]) {
				continue
			}
			switch tgt := as.Lhs[i].(type) {
			case *ast.SelectorExpr:
				allowed[call] = true // persistent field: growth is amortized
			case *ast.Ident:
				if obj := p.ObjectOf(tgt); obj != nil && resliced[obj] {
					allowed[call] = true // local view of a recycled buffer
				}
			}
		}
		return true
	})
	return allowed
}

// sameExpr reports whether two expressions are the same ident/selector
// path (x, x.f, x.f.g).
func sameExpr(p *Pass, a, b ast.Expr) bool {
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && p.ObjectOf(ax) != nil && p.ObjectOf(ax) == p.ObjectOf(bx)
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && sameExpr(p, ax.X, bx.X)
	}
	return false
}

// typeKind names a composite type for messages.
func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}
