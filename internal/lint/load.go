package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	RelPath    string // import path relative to the module ("" prefix stripped)
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList resolves patterns to packages via the go command, which is
// the only component that understands module-aware import paths.
func goList(root string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// chainImporter resolves module-local imports from the load's own
// type-checked cache and everything else (the standard library) from
// the source importer, so the whole load needs no compiled export
// data — it works on a bare checkout with only the go toolchain.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.ImportFrom(path, dir, mode)
}

// Load lists, parses, and type-checks every package matching patterns
// in the module rooted at root, in dependency order, and returns the
// ones inside the module.
func Load(root string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	listed, err := goList(absRoot, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPkg, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	// Topological order over module-local imports, so each package's
	// dependencies are in the local cache before it type-checks.
	var order []*listedPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listedPkg) error
	visit = func(p *listedPkg) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
		return nil
	}
	for _, p := range listed {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		local:    map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var out []*Package
	for _, lp := range order {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		imp.local[lp.ImportPath] = pkg.Types
		if lp.Module != nil {
			pkg.RelPath = strings.TrimPrefix(strings.TrimPrefix(lp.ImportPath, lp.Module.Path), "/")
			out = append(out, pkg)
		}
	}
	return out, nil
}

// check parses and type-checks one listed package. Only GoFiles are
// loaded: test files never reach the analyzers, which is what scopes
// every check to non-test code.
func check(fset *token.FileSet, imp types.ImporterFrom, lp *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
