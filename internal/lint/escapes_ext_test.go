package lint_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestParseEscapes pins the -m diagnostic filter: positive heap
// decisions survive, "does not escape" and inliner chatter do not,
// and positions parse exactly.
func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# repro/internal/sim",
		"internal/sim/engine.go:10:6: can inline (*Engine).Now",
		"internal/sim/engine.go:244:20: fmt.Sprintf(...) escapes to heap",
		"internal/sim/engine.go:250:6: moved to heap: buf",
		"internal/sim/engine.go:260:12: make([]int, n) does not escape",
		"internal/sim/engine.go:261:9: &Engine{} escapes to heap",
		"internal/sim/engine.go:270:14: inlining call to foo",
		"not a diagnostic line",
		"",
	}, "\n")
	sites := lint.ParseEscapes(out)
	want := []lint.EscapeSite{
		{File: "internal/sim/engine.go", Line: 244, Col: 20, Msg: "fmt.Sprintf(...) escapes to heap"},
		{File: "internal/sim/engine.go", Line: 250, Col: 6, Msg: "moved to heap: buf"},
		{File: "internal/sim/engine.go", Line: 261, Col: 9, Msg: "&Engine{} escapes to heap"},
	}
	if len(sites) != len(want) {
		t.Fatalf("got %d sites %v, want %d", len(sites), sites, len(want))
	}
	for i, w := range want {
		if sites[i] != w {
			t.Errorf("site %d: got %+v, want %+v", i, sites[i], w)
		}
	}
}

// TestEscapeCheck drives the cross-check against the hotcall fixture
// with synthetic compiler decisions: a heap decision in a
// hot-reachable function at an AST-unseen line is the one finding; a
// line the AST suite already flags, a cold function, a panic line and
// an audited line all stay silent.
func TestEscapeCheck(t *testing.T) {
	pkg := linttest.Load(t, "testdata/hotcall", "internal/fixture")
	snap := &lint.Snapshot{Pkgs: []*lint.Package{pkg}}

	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(substr string) int {
		for i, l := range strings.Split(string(src), "\n") {
			if strings.Contains(l, substr) {
				return i + 1
			}
		}
		t.Fatalf("no line contains %q", substr)
		return 0
	}

	sites := []lint.EscapeSite{
		// AST-unseen escape in a hot-reachable function: the finding.
		{File: file, Line: lineOf("// escapes:unseen"), Col: 2, Msg: "moved to heap: s"},
		// The AST suite already owns this allocation (hotcall flags it).
		{File: file, Line: lineOf("s.buf = make([]byte, 8)"), Col: 8, Msg: "make([]byte, 8) escapes to heap"},
		// Cold function: the compiler may allocate freely.
		{File: file, Line: lineOf("return make([]byte, 1<<20)"), Col: 9, Msg: "make([]byte, 1 << 20) escapes to heap"},
		// Dying path: exempt like the AST suite.
		{File: file, Line: lineOf("// escapes:panic"), Col: 3, Msg: `"bad fixture input" escapes to heap`},
		// Audited: the //simlint:allow escapecheck directive absorbs it.
		{File: file, Line: lineOf("// escapes:audited"), Col: 2, Msg: "moved to heap: s"},
	}

	diags := lint.EscapeCheck(snap, sites)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want 1", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "escapecheck" || d.Pos.Line != lineOf("// escapes:unseen") ||
		!strings.Contains(d.Message, "moved to heap: s") ||
		!strings.Contains(d.Message, "fixture.hotUnseen") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
