package lint

import "strings"

// Package scope rules. Each analyzer guards the part of the tree whose
// invariant it enforces; everything is keyed on the module-relative
// import path so the rules survive a module rename.
//
//   - The deterministic core is every internal/ package that executes
//     under the event engine. Concurrency, wall-clock time and map
//     iteration order there are bugs by definition.
//   - internal/experiments and cmd/ are the harness side: they measure
//     host wall-clock around whole runs, so walltime exempts them (the
//     numbers they compute from *inside* the simulation still go
//     through sim.Engine).
//   - internal/report formats human output and internal/lint is this
//     tool; neither runs under the engine.

// inInternal reports whether the package is repo-internal simulation
// or stack code (any internal/ package except the lint tool itself).
func inInternal(rel string) bool {
	return strings.HasPrefix(rel, "internal/") && !inLint(rel)
}

func inLint(rel string) bool {
	return rel == "internal/lint" || strings.HasPrefix(rel, "internal/lint/")
}

// harnessSide marks packages that legitimately touch the host clock:
// the experiment harness (wall-time speed measurements) and the
// command-line front ends.
func harnessSide(rel string) bool {
	return rel == "internal/experiments" ||
		strings.HasPrefix(rel, "internal/experiments/") ||
		rel == "cmd" || strings.HasPrefix(rel, "cmd/")
}

// inDeterministicCore reports whether the package is part of the
// single-threaded simulation core, where every run must replay the
// exact same event sequence.
func inDeterministicCore(rel string) bool {
	if !inInternal(rel) {
		return false
	}
	switch {
	case rel == "internal/experiments", strings.HasPrefix(rel, "internal/experiments/"):
		return false // harness: drives runs, measures wall time
	case rel == "internal/report", strings.HasPrefix(rel, "internal/report/"):
		return false // human-facing output formatting
	}
	return true
}
