package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The five analyzers, each against its fixture package loaded as if it
// lived inside the deterministic core. Every want comment pins a
// finding; every unmarked construct pins the absence of one.

func TestMaprange(t *testing.T) {
	linttest.Run(t, "testdata/maprange", "internal/fixture", lint.Maprange)
}

func TestWalltime(t *testing.T) {
	linttest.Run(t, "testdata/walltime", "internal/fixture", lint.Walltime)
}

func TestNoconcurrency(t *testing.T) {
	linttest.Run(t, "testdata/noconcurrency", "internal/fixture", lint.Noconcurrency)
}

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", "internal/fixture", lint.Hotpath)
}

func TestErrdrop(t *testing.T) {
	linttest.Run(t, "testdata/errdrop", "internal/fixture", lint.Errdrop)
}

// The interprocedural analyzers. Hotcall runs alongside Hotpath so
// annotated roots stay that analyzer's responsibility and the fixture
// pins the division of labor; the CFG-based pair run alone.

func TestHotcall(t *testing.T) {
	linttest.Run(t, "testdata/hotcall", "internal/fixture", lint.Hotpath, lint.Hotcall)
}

func TestPoolleak(t *testing.T) {
	linttest.Run(t, "testdata/poolleak", "internal/fixture", lint.Poolleak)
}

func TestOncedone(t *testing.T) {
	linttest.Run(t, "testdata/oncedone", "internal/fixture", lint.Oncedone)
}

// Scope fences: the same fixture sources produce no findings when the
// package sits on the other side of its analyzer's fence. Unused
// suppressions (pseudo-check "simlint") are filtered: with the real
// check fenced off, its fixture suppressions necessarily go unused.
func TestScopeFences(t *testing.T) {
	cases := []struct {
		name, dir, relPath string
		analyzer           *lint.Analyzer
	}{
		{"walltime-harness", "testdata/walltime", "internal/experiments/fixture", lint.Walltime},
		{"walltime-cmd", "testdata/walltime", "cmd/fixture", lint.Walltime},
		{"noconcurrency-report", "testdata/noconcurrency", "internal/report", lint.Noconcurrency},
		{"noconcurrency-experiments", "testdata/noconcurrency", "internal/experiments", lint.Noconcurrency},
		{"maprange-outside-internal", "testdata/maprange", "cmd/fixture", lint.Maprange},
		{"errdrop-outside-internal", "testdata/errdrop", "cmd/fixture", lint.Errdrop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, d := range linttest.Diags(t, tc.dir, tc.relPath, tc.analyzer) {
				if d.Check == "simlint" {
					continue
				}
				t.Errorf("finding leaked through the %s scope fence: %s", tc.name, d)
			}
		})
	}
}

// Directive hygiene: malformed directives, unknown checks, missing
// reasons and suppressions that suppress nothing are all findings.
func TestDirectiveAudit(t *testing.T) {
	diags := linttest.Diags(t, "testdata/directives", "internal/fixture", lint.Maprange)
	wants := []string{
		"malformed directive",
		`suppression of "maprange" needs a reason`,
		`unknown check "nosuchcheck"`,
		"unused suppression",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if d.Check == "simlint" && strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no simlint diagnostic containing %q in %v", w, diags)
		}
	}
}
