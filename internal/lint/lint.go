// Package lint is simlint: a static-analysis suite that enforces the
// two invariants every committed BENCH artifact rests on — bit-exact
// determinism and allocation-free hot paths — at build time instead of
// debugging time.
//
// The simulator's reproducibility argument is only as strong as its
// weakest `for k := range someMap` or stray time.Now(): either one
// silently breaks identical event order across runs, and the failure
// shows up weeks later as a golden-digest mismatch nobody can bisect.
// The analyzers here turn each such class into a build break:
//
//	maprange       order-dependent iteration over Go maps in the
//	               deterministic core (map iteration order is
//	               randomized per run)
//	walltime       wall-clock time and global math/rand in simulation
//	               packages (virtual time comes from sim.Engine,
//	               randomness from sim.RNG)
//	noconcurrency  go statements, channel operations and sync
//	               primitives inside the single-threaded core, where
//	               concurrency can only mean nondeterminism
//	hotpath        AST-visible allocation sources inside functions
//	               annotated //simlint:hotpath (the alloc-free
//	               surfaces pinned by the sim AllocsPerRun tests)
//	errdrop        discarded error results in internal/ (the bug
//	               class PR 5 fixed by hand in the graph walker)
//
// A true finding is fixed; an intended exception is suppressed with an
// audited comment on the offending line (or the line above):
//
//	//simlint:allow <check> (reason)
//
// The reason is mandatory, unknown check names are errors, and a
// suppression that suppresses nothing is itself a finding — so the
// committed suppression set stays an honest list of reviewed
// exceptions, never a graveyard.
//
// The framework is deliberately self-contained on the standard
// library's go/ast and go/types (the usual golang.org/x/tools
// go/analysis machinery is not vendored here); cmd/simlint is the
// driver, and Lint in this package is the embeddable entry point the
// repo's own tests use to keep `go test ./...` as strict as CI.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a type-checked package
// via the Pass and reports findings through it.
type Analyzer struct {
	// Name identifies the check in output and in //simlint:allow
	// directives.
	Name string
	// Doc is a one-line description of what the check enforces.
	Doc string
	// Run performs the check on one package.
	Run func(p *Pass)
}

// Analyzers returns the full simlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Maprange, Walltime, Noconcurrency, Hotpath, Errdrop}
}

// A Diagnostic is one finding, located and attributed to its check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the package's import path relative to the module root
	// ("internal/rfs"), or the full import path for packages outside
	// the module.
	RelPath string

	sink *runState
}

// Reportf records a finding at pos unless an applicable
// //simlint:allow directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.sink.suppress(p.Analyzer.Name, position) {
		return
	}
	p.sink.diags = append(p.sink.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (may be nil).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// --- suppression directives -----------------------------------------

// directive is one parsed //simlint:allow comment.
type directive struct {
	check  string
	reason string
	pos    token.Position
	used   bool
}

// directiveRe matches `simlint:allow <check> (reason)`. The reason is
// mandatory: a suppression without a recorded why is just a disabled
// check.
var directiveRe = regexp.MustCompile(`^simlint:allow\s+([a-z]+)\s*(\((.*)\))?\s*$`)

// runState is the shared per-run sink: diagnostics plus the directive
// index used for suppression and the unused-suppression audit.
type runState struct {
	diags []Diagnostic
	// directives indexed by file:line.
	dirs   map[string]*directive
	checks map[string]bool // known analyzer names
}

func newRunState(analyzers []*Analyzer) *runState {
	rs := &runState{dirs: map[string]*directive{}, checks: map[string]bool{}}
	for _, a := range analyzers {
		rs.checks[a.Name] = true
	}
	return rs
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// collectDirectives indexes every //simlint:allow comment of a file,
// reporting malformed ones as findings of the "simlint" pseudo-check.
func (rs *runState) collectDirectives(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "simlint:allow") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(text)
			if m == nil {
				rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: "simlint",
					Message: "malformed directive: want //simlint:allow <check> (reason)"})
				continue
			}
			check, reason := m[1], strings.TrimSpace(m[3])
			if !rs.checks[check] {
				rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: "simlint",
					Message: fmt.Sprintf("unknown check %q in //simlint:allow directive", check)})
				continue
			}
			if m[2] == "" || reason == "" {
				rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: "simlint",
					Message: fmt.Sprintf("suppression of %q needs a reason: //simlint:allow %s (why)", check, check)})
				continue
			}
			rs.dirs[lineKey(pos.Filename, pos.Line)] = &directive{
				check: check, reason: reason, pos: pos,
			}
		}
	}
}

// suppress reports whether a directive on the diagnostic's line, or on
// the line directly above it, allows this check — marking it used.
func (rs *runState) suppress(check string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d, ok := rs.dirs[lineKey(pos.Filename, line)]; ok && d.check == check {
			d.used = true
			return true
		}
	}
	return false
}

// finishUnused reports every directive that suppressed nothing: a
// stale allow is a finding, so suppressions cannot outlive their
// reason.
func (rs *runState) finishUnused() {
	for _, d := range rs.dirs {
		if !d.used {
			rs.diags = append(rs.diags, Diagnostic{Pos: d.pos, Check: "simlint",
				Message: fmt.Sprintf("unused suppression: nothing on this or the next line triggers %q", d.check)})
		}
	}
}

// --- driver ----------------------------------------------------------

// Run executes the analyzers over the loaded packages and returns all
// findings, sorted by position. Suppression directives are honored
// package by package; unused ones are reported at the end.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	rs := newRunState(analyzers)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			rs.collectDirectives(pkg.Fset, f)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				sink:     rs,
			})
		}
	}
	rs.finishUnused()
	sort.Slice(rs.diags, func(i, j int) bool {
		a, b := rs.diags[i], rs.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return rs.diags
}

// Lint loads the packages matching patterns under the module rooted at
// root and runs the whole suite — the one-call form used by
// cmd/simlint and the repo's own clean-tree test.
func Lint(root string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(root, patterns...)
	if err != nil {
		return nil, err
	}
	return Run(pkgs, Analyzers()), nil
}
