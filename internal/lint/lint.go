// Package lint is simlint: a static-analysis suite that enforces the
// two invariants every committed BENCH artifact rests on — bit-exact
// determinism and allocation-free hot paths — at build time instead of
// debugging time.
//
// The simulator's reproducibility argument is only as strong as its
// weakest `for k := range someMap` or stray time.Now(): either one
// silently breaks identical event order across runs, and the failure
// shows up weeks later as a golden-digest mismatch nobody can bisect.
// The analyzers here turn each such class into a build break:
//
//	maprange       order-dependent iteration over Go maps in the
//	               deterministic core (map iteration order is
//	               randomized per run)
//	walltime       wall-clock time and global math/rand in simulation
//	               packages (virtual time comes from sim.Engine,
//	               randomness from sim.RNG)
//	noconcurrency  go statements, channel operations and sync
//	               primitives inside the single-threaded core, where
//	               concurrency can only mean nondeterminism
//	hotpath        AST-visible allocation sources inside functions
//	               annotated //simlint:hotpath (the alloc-free
//	               surfaces pinned by the sim AllocsPerRun tests)
//	errdrop        discarded error results in internal/ (the bug
//	               class PR 5 fixed by hand in the graph walker)
//	hotcall        allocation sources in UN-annotated functions that
//	               are transitively reachable from a //simlint:hotpath
//	               function over the module call graph — findings
//	               report the full call chain, and interface calls
//	               fan out to every in-module implementation
//	poolleak       pooled objects (declared //simlint:pool get=F put=G
//	               on the pool type) acquired but neither released nor
//	               handed off on some path, including error paths
//	oncedone       completion callbacks declared //simlint:once that
//	               some path invokes zero times (a hang) or more than
//	               once (the over-grant/double-completion bug class)
//	escapecheck    (driver mode, cmd/simlint -escapes) heap
//	               allocations the real compiler reports via
//	               -gcflags=-m inside hotpath-reachable functions
//	               that the AST-level analyzers did not see
//
// A true finding is fixed; an intended exception is suppressed with an
// audited comment on the offending line or the line above — directives
// stack, so a line that trips several checks takes one directive per
// check on consecutive lines above it:
//
//	//simlint:allow <check> (reason)
//
// The reason is mandatory, unknown check names are errors, and a
// suppression that suppresses nothing is itself a finding — so the
// committed suppression set stays an honest list of reviewed
// exceptions, never a graveyard.
//
// The framework is deliberately self-contained on the standard
// library's go/ast and go/types (the usual golang.org/x/tools
// go/analysis machinery is not vendored here); cmd/simlint is the
// driver, and Lint in this package is the embeddable entry point the
// repo's own tests use to keep `go test ./...` as strict as CI.
//
// The module is loaded and type-checked exactly once per run: a
// Snapshot carries the loaded packages plus lazily-built shared
// infrastructure (the call graph), and every analyzer — per-package or
// module-wide — runs over that one snapshot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. Exactly one of Run and RunModule is
// set: Run inspects a single type-checked package via its Pass, while
// RunModule sees the whole loaded snapshot at once (for analyses that
// need the cross-package call graph).
type Analyzer struct {
	// Name identifies the check in output and in //simlint:allow
	// directives.
	Name string
	// Doc is a one-line description of what the check enforces.
	Doc string
	// Run performs the check on one package.
	Run func(p *Pass)
	// RunModule performs the check over the whole snapshot.
	RunModule func(m *ModulePass)
}

// Analyzers returns the full simlint suite in reporting order.
// Escapecheck is absent: it needs real compiler output and runs only
// through cmd/simlint -escapes (or Escapes in this package).
func Analyzers() []*Analyzer {
	return []*Analyzer{Maprange, Walltime, Noconcurrency, Hotpath, Errdrop,
		Hotcall, Poolleak, Oncedone}
}

// knownChecks returns every valid //simlint:allow check name,
// including escapecheck, which is driver-run rather than part of
// Analyzers. Directive validation keys on this set so an escapecheck
// suppression is never misreported as an unknown check by the AST run.
func knownChecks() map[string]bool {
	m := map[string]bool{Escapecheck.Name: true}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// A Diagnostic is one finding, located and attributed to its check.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the package's import path relative to the module root
	// ("internal/rfs"), or the full import path for packages outside
	// the module.
	RelPath string

	sink *runState
}

// Reportf records a finding at pos unless an applicable
// //simlint:allow directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.sink.suppress(p.Analyzer.Name, position) {
		return
	}
	p.sink.diags = append(p.sink.diags, Diagnostic{
		Pos:     position,
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //simlint:allow directive for check covers
// pos (same line or the line above), marking it used. Module analyzers
// use it to honor audited escape hatches at positions that never reach
// Reportf — e.g. a cold virtual call edge pruned from hot propagation.
func (p *Pass) Allowed(check string, pos token.Pos) bool {
	return p.sink.suppress(check, p.Fset.Position(pos))
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (may be nil).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A ModulePass carries a module-wide analyzer's view of the whole
// loaded snapshot.
type ModulePass struct {
	Analyzer *Analyzer
	Snap     *Snapshot

	sink *runState
}

// Pass narrows the module pass to one package, for reporting findings
// located there under the module analyzer's name.
func (m *ModulePass) Pass(pkg *Package) *Pass {
	return &Pass{
		Analyzer: m.Analyzer,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		RelPath:  pkg.RelPath,
		sink:     m.sink,
	}
}

// --- suppression directives -----------------------------------------

// directive is one parsed //simlint:allow comment.
type directive struct {
	check  string
	reason string
	pos    token.Position
	used   bool
}

// directiveRe matches `simlint:allow <check> (reason)`. The reason is
// mandatory: a suppression without a recorded why is just a disabled
// check.
var directiveRe = regexp.MustCompile(`^simlint:allow\s+([a-z]+)\s*(\((.*)\))?\s*$`)

// runState is the shared per-run sink: diagnostics plus the directive
// index used for suppression and the unused-suppression audit.
type runState struct {
	diags []Diagnostic
	// directives indexed by file:line.
	dirs   map[string]*directive
	checks map[string]bool // every valid check name
	// audited names whose unused suppressions are findings in this
	// run. A run that executes only part of the suite (the AST run
	// vs the -escapes run) must not flag the other part's
	// suppressions as stale.
	audit map[string]bool
}

func newRunState(analyzers []*Analyzer) *runState {
	rs := &runState{dirs: map[string]*directive{}, checks: knownChecks(), audit: map[string]bool{}}
	for _, a := range analyzers {
		rs.audit[a.Name] = true
	}
	return rs
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// collectDirectives indexes every //simlint:allow comment of a file,
// reporting malformed ones as findings of the "simlint" pseudo-check.
func (rs *runState) collectDirectives(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "simlint:allow") {
				continue
			}
			pos := fset.Position(c.Pos())
			m := directiveRe.FindStringSubmatch(text)
			if m == nil {
				rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: "simlint",
					Message: "malformed directive: want //simlint:allow <check> (reason)"})
				continue
			}
			check, reason := m[1], strings.TrimSpace(m[3])
			if !rs.checks[check] {
				rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: "simlint",
					Message: fmt.Sprintf("unknown check %q in //simlint:allow directive", check)})
				continue
			}
			if m[2] == "" || reason == "" {
				rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: "simlint",
					Message: fmt.Sprintf("suppression of %q needs a reason: //simlint:allow %s (why)", check, check)})
				continue
			}
			rs.dirs[lineKey(pos.Filename, pos.Line)] = &directive{
				check: check, reason: reason, pos: pos,
			}
		}
	}
}

// suppress reports whether a directive allows this check at this
// position — marking it used. A directive covers its own line and, so
// directives can stack when one line trips several checks, the code
// line below a contiguous run of directive lines.
func (rs *runState) suppress(check string, pos token.Position) bool {
	if d, ok := rs.dirs[lineKey(pos.Filename, pos.Line)]; ok && d.check == check {
		d.used = true
		return true
	}
	for line := pos.Line - 1; ; line-- {
		d, ok := rs.dirs[lineKey(pos.Filename, line)]
		if !ok {
			return false
		}
		if d.check == check {
			d.used = true
			return true
		}
	}
}

// reportAt records a finding at an externally-produced position (the
// compiler's, for escapecheck) honoring suppressions exactly like
// Reportf.
func (rs *runState) reportAt(check string, pos token.Position, format string, args ...any) {
	if rs.suppress(check, pos) {
		return
	}
	rs.diags = append(rs.diags, Diagnostic{Pos: pos, Check: check,
		Message: fmt.Sprintf(format, args...)})
}

// finishUnused reports every audited directive that suppressed
// nothing: a stale allow is a finding, so suppressions cannot outlive
// their reason. Only checks that actually ran are audited — the AST
// run must not flag escapecheck suppressions (used only by the
// -escapes mode) as stale, and vice versa.
func (rs *runState) finishUnused() {
	for _, d := range rs.dirs {
		if !d.used && rs.audit[d.check] {
			rs.diags = append(rs.diags, Diagnostic{Pos: d.pos, Check: "simlint",
				Message: fmt.Sprintf("unused suppression: nothing this directive covers triggers %q", d.check)})
		}
	}
}

// --- driver ----------------------------------------------------------

// A Snapshot is one loaded, type-checked view of the module, shared by
// every analyzer of a run (and by the -escapes cross-check): the
// loader's O(module) parse+type-check work happens once, never once
// per analyzer or once per mode.
type Snapshot struct {
	// Root is the module root directory the packages were loaded from
	// (empty for synthetic snapshots built directly from packages).
	Root string
	// Pkgs are the loaded module packages in dependency order.
	Pkgs []*Package

	cg *callGraph // built on first use, shared by hotcall + escapecheck
}

// LoadSnapshot loads the packages matching patterns under the module
// rooted at root into one reusable snapshot. Root is stored absolute:
// package filenames are absolute, and the -escapes cross-check joins
// compiler-relative paths against Root to match them.
func LoadSnapshot(root string, patterns ...string) (*Snapshot, error) {
	pkgs, err := Load(root, patterns...)
	if err != nil {
		return nil, err
	}
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Root: absRoot, Pkgs: pkgs}, nil
}

// CallGraph returns the module call graph, building it on first use.
func (s *Snapshot) CallGraph() *callGraph {
	if s.cg == nil {
		s.cg = buildCallGraph(s.Pkgs)
	}
	return s.cg
}

// Run executes the analyzers over the snapshot and returns all
// findings, sorted by position. Suppression directives are honored
// across the whole snapshot; unused ones (of the analyzers that ran)
// are reported at the end.
func (s *Snapshot) Run(analyzers []*Analyzer) []Diagnostic {
	rs := newRunState(analyzers)
	for _, pkg := range s.Pkgs {
		for _, f := range pkg.Files {
			rs.collectDirectives(pkg.Fset, f)
		}
	}
	for _, pkg := range s.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				sink:     rs,
			})
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Analyzer: a, Snap: s, sink: rs})
	}
	rs.finishUnused()
	sortDiags(rs.diags)
	return rs.diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Run executes the analyzers over pre-loaded packages (the fixture
// path used by linttest). Equivalent to wrapping them in a Snapshot.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return (&Snapshot{Pkgs: pkgs}).Run(analyzers)
}

// Lint loads the packages matching patterns under the module rooted at
// root and runs the whole AST suite — the one-call form used by
// cmd/simlint and the repo's own clean-tree test.
func Lint(root string, patterns ...string) ([]Diagnostic, error) {
	snap, err := LoadSnapshot(root, patterns...)
	if err != nil {
		return nil, err
	}
	return snap.Run(Analyzers()), nil
}
