package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errdrop flags calls whose error result is silently discarded in
// internal/ code — the call stands alone as a statement (or a defer)
// and at least one of its results is an error. Swallowed errors are
// how the graph walker lost read failures for three PRs: the run
// "succeeded" with checksums computed over missing data.
//
// An explicit `_ = f()` assignment is visible intent and is not
// flagged. Methods of bytes.Buffer and strings.Builder are exempt, as
// are fmt.Fprint* calls writing into one of them: those error results
// are documented to always be nil (in-memory writers cannot fail).
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error result in internal/ code",
	Run:  runErrdrop,
}

// alwaysNilErr lists receiver types whose methods return errors only
// to satisfy io interfaces.
var alwaysNilErr = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

func runErrdrop(p *Pass) {
	if !inInternal(p.RelPath) && !inLint(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				if c, ok := s.X.(*ast.CallExpr); ok {
					call = c
				}
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(p, call) || isExemptErrCall(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly", exprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether any result of the call is of type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errType)
}

// isExemptErrCall allows methods on receivers whose error results are
// documented always nil (bytes.Buffer, strings.Builder, hash.Hash),
// and fmt.Fprint* calls whose writer is one of those types.
func isExemptErrCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok {
		// Package-level function: fmt.Fprint* into an in-memory writer
		// cannot return a non-nil error.
		obj := p.ObjectOf(sel.Sel)
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
			strings.HasPrefix(obj.Name(), "Fprint") && len(call.Args) > 0 {
			return isAlwaysNilErrType(p.TypeOf(call.Args[0]))
		}
		return false
	}
	return isAlwaysNilErrType(selection.Recv())
}

// isAlwaysNilErrType reports whether t (after deref) is a named type
// whose error-returning methods are documented to always return nil.
func isAlwaysNilErrType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && alwaysNilErr[obj.Pkg().Path()+"."+obj.Name()]
	}
	return false
}
