package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoIsLintClean runs the full simlint suite over the whole
// module and requires zero findings — the same gate CI applies via
// cmd/simlint, enforced here so a plain `go test ./...` catches new
// determinism or allocation regressions without a separate step.
func TestRepoIsLintClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add an audited //simlint:allow <check> (reason)", len(diags))
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
