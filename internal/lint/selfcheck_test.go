package lint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The repo gates load the module once and share the snapshot — the
// same economy cmd/simlint applies between the AST suite and the
// -escapes cross-check.
var (
	repoSnapOnce sync.Once
	repoSnap     *Snapshot
	repoSnapErr  error
)

func repoSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	repoSnapOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			repoSnapErr = err
			return
		}
		repoSnap, repoSnapErr = LoadSnapshot(root, "./...")
	})
	if repoSnapErr != nil {
		t.Fatal(repoSnapErr)
	}
	return repoSnap
}

// TestRepoIsLintClean runs the full simlint suite over the whole
// module and requires zero findings — the same gate CI applies via
// cmd/simlint, enforced here so a plain `go test ./...` catches new
// determinism or allocation regressions without a separate step.
func TestRepoIsLintClean(t *testing.T) {
	diags := repoSnapshot(t).Run(Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add an audited //simlint:allow <check> (reason)", len(diags))
	}
}

// TestRepoEscapesClean holds the compiler's escape analysis to the
// same standard: no heap decision in a hotpath-reachable function the
// AST suite did not already see or a reviewer did not audit.
func TestRepoEscapesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the module with -gcflags=-m")
	}
	snap := repoSnapshot(t)
	diags, err := Escapes(snap, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d escapecheck finding(s); fix them or add an audited //simlint:allow escapecheck (reason)", len(diags))
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
