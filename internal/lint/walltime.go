package lint

import "go/ast"

// Walltime forbids host wall-clock time and the global math/rand
// stream in simulation packages. Simulated time advances only through
// sim.Engine, and every random draw comes from a seeded sim.RNG — a
// stray time.Now() or rand.Intn() couples a run to the host scheduler
// or to process-global state and silently destroys replayability.
//
// The harness side (internal/experiments, cmd/) legitimately measures
// host wall-clock around whole simulations and is exempt. Building a
// locally-seeded generator (rand.New(rand.NewSource(seed))) is always
// allowed; only the package-global convenience functions are not.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "wall-clock time or global math/rand in a simulation package",
	Run:  runWalltime,
}

// wallTimeFuncs are the time package entry points that read or wait on
// the host clock.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// that draw from the shared process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true, "Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func runWalltime(p *Pass) {
	if !inInternal(p.RelPath) || harnessSide(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Only package-level functions: a method named Now on a
			// simulation type is fine.
			if _, ok := p.Info.Selections[sel]; ok {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallTimeFuncs[obj.Name()] {
					p.Reportf(sel.Pos(), "time.%s reads the host clock; simulated time comes from sim.Engine", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] {
					p.Reportf(sel.Pos(), "global %s.%s draws from process-global state; use a seeded sim.RNG", obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
}
