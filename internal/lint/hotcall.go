package lint

import (
	"go/token"
	"sort"
)

// Hotcall extends the hotpath check across the module call graph: a
// function with no //simlint:hotpath annotation of its own, but
// reachable from an annotated function through statically resolvable
// calls, is held to the same allocation rules — an allocation hidden
// one helper down is exactly as hot as one written inline. Findings
// report the full call chain from the annotated root:
//
//	hot call chain sched.Scheduler.getReq → sched.nodeQueue.admit:
//	make allocates in hot path
//
// Interface method calls fan out to every in-module implementation —
// the conservative closure of what the dispatch could reach. When a
// virtual call site is genuinely cold (a slow-path interface used
// only at setup), an audited
//
//	//simlint:allow hotcall (reason)
//
// on the call line prunes propagation through that site. The same
// directive on an allocation line inside a reached function audits
// that single allocation, exactly like //simlint:allow hotpath does in
// annotated functions. When one line carries both a call and an
// allocation (a closure passed as the call's argument), one directive
// does both: the allocation is audited and the callees behind that
// line drop out of hot propagation — the audit comment should account
// for both effects.
var Hotcall = &Analyzer{
	Name:      "hotcall",
	Doc:       "allocation source reachable from a //simlint:hotpath function",
	RunModule: runHotcall,
}

func runHotcall(m *ModulePass) {
	cg := m.Snap.CallGraph()
	allow := func(pos token.Pos) bool {
		n := nodeAt(cg, pos)
		if n == nil {
			return false
		}
		return m.Pass(n.pkg).Allowed(m.Analyzer.Name, pos)
	}
	reached := hotReachable(cg, allow)

	// Deterministic reporting order (the final sort breaks ties, but
	// walking in source order keeps chain discovery stable too).
	var todo []*hotChain
	for n, hc := range reached {
		if n.hot {
			continue // the hotpath analyzer owns annotated bodies
		}
		todo = append(todo, hc)
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].node.decl.Pos() < todo[j].node.decl.Pos() })

	for _, hc := range todo {
		n := hc.node
		p := m.Pass(n.pkg)
		h := &hotpathWalk{p: p, fn: n.decl, chain: "hot call chain " + hc.render() + ": "}
		h.allowedAppends = recycledAppends(p, n.decl.Body)
		h.walk(n.decl.Body)
	}
}

// nodeAt finds the call-graph node whose declaration encloses pos.
// Positions come from edges, which always sit inside some declared
// body, so a linear scan per allow query would do — but edges are
// plentiful, so index lazily by file.
func nodeAt(cg *callGraph, pos token.Pos) *cgNode {
	for _, n := range cg.nodes {
		if n.decl.Pos() <= pos && pos <= n.decl.End() {
			return n
		}
	}
	return nil
}
