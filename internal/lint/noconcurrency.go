package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Noconcurrency forbids every concurrency construct inside the
// single-threaded deterministic core: go statements, channel types and
// operations (send, receive, select, close, range-over-channel), and
// the sync / sync/atomic packages. The simulation is one event loop in
// virtual time; "concurrency" there cannot buy parallelism, only a
// host-scheduler dependence that breaks replay. Code that genuinely
// needs host threads belongs on the harness side of the scope fence
// (internal/experiments, cmd/), not in the core.
var Noconcurrency = &Analyzer{
	Name: "noconcurrency",
	Doc:  "concurrency construct inside the single-threaded deterministic core",
	Run:  runNoconcurrency,
}

func runNoconcurrency(p *Pass) {
	if !inDeterministicCore(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				p.Reportf(imp.Pos(), "import of %q in the deterministic core; the simulation is single-threaded", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				p.Reportf(x.Pos(), "go statement in the deterministic core; schedule an event on sim.Engine instead")
			case *ast.SendStmt:
				p.Reportf(x.Pos(), "channel send in the deterministic core")
			case *ast.UnaryExpr:
				if x.Op.String() == "<-" {
					p.Reportf(x.Pos(), "channel receive in the deterministic core")
				}
			case *ast.SelectStmt:
				p.Reportf(x.Pos(), "select statement in the deterministic core")
			case *ast.ChanType:
				p.Reportf(x.Pos(), "channel type in the deterministic core; use engine callbacks")
			case *ast.RangeStmt:
				if t := p.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						p.Reportf(x.For, "range over a channel in the deterministic core")
					}
				}
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && isBuiltin(p, id) {
					p.Reportf(x.Pos(), "close of a channel in the deterministic core")
				}
			}
			return true
		})
	}
}
