package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maprange flags `for ... range` over a map in the deterministic core.
// Go randomizes map iteration order per run, so any map range whose
// body has order-dependent effects breaks bit-exact reproducibility —
// the invariant every golden digest and committed BENCH artifact
// assumes.
//
// A range is exempt when its body is provably order-insensitive:
//
//   - it binds neither key nor value (`for range m` — a counted loop);
//   - every statement is a commutative accumulation: `x += e`, `x -= e`,
//     `x *= e`, `x |= e`, `x &= e`, `x ^= e`, `x++`/`x--`,
//     `x = max(x, e)` / `x = min(x, e)`, `delete(m2, k)`, or a write
//     `dst[k] = e` indexed by the range key (distinct keys touch
//     distinct slots);
//   - or it only appends to slices that are sorted later in the same
//     function (collect-then-sort).
//
// Everything else needs a fix — sort the keys, use a dense slice — or
// an audited `//simlint:allow maprange (reason)`.
var Maprange = &Analyzer{
	Name: "maprange",
	Doc:  "order-dependent iteration over a map in the deterministic core",
	Run:  runMaprange,
}

func runMaprange(p *Pass) {
	if !inInternal(p.RelPath) {
		return
	}
	for _, f := range p.Files {
		// Walk function by function so collect-then-sort can see the
		// statements that follow a range within its enclosing function.
		ast.Inspect(f, func(n ast.Node) bool {
			fn := enclosedBody(n)
			if fn == nil {
				return true
			}
			checkMapRangesIn(p, fn)
			return true
		})
	}
}

// enclosedBody returns the body of a function declaration or literal.
func enclosedBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkMapRangesIn flags the order-sensitive map ranges directly inside
// one function body (nested function literals are visited separately
// by the outer walk).
func checkMapRangesIn(p *Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // analyzed with its own enclosing-body context
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if rs.Key == nil && rs.Value == nil {
			return true // counted loop: iteration order is irrelevant
		}
		if commutativeBody(p, rs) {
			return true
		}
		if collectThenSort(p, rs, body) {
			return true
		}
		p.Reportf(rs.For, "iteration over map %s has order-dependent effects; sort the keys or use a dense slice", exprString(rs.X))
		return true
	})
}

// commutativeBody reports whether every statement of the range body is
// an order-insensitive accumulation.
func commutativeBody(p *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return true
	}
	for _, st := range rs.Body.List {
		if !commutativeStmt(p, rs, st) {
			return false
		}
	}
	return true
}

func commutativeStmt(p *Pass, rs *ast.RangeStmt, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return true // x++ / x-- commute
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Only integer accumulation commutes bit-exactly: string
			// concatenation is ordered, and float rounding makes the
			// sum depend on summation order.
			return isIntegerType(p.TypeOf(s.Lhs[0]))
		case token.ASSIGN, token.DEFINE:
			// dst[key] = e: distinct keys write distinct slots.
			if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok && isRangeKey(p, rs, ix.Index) {
				return true
			}
			// x = max(x, e) / x = min(x, e).
			return isMinMaxFold(p, s)
		}
		return false
	case *ast.ExprStmt:
		// delete(m2, k): set subtraction commutes.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && isBuiltin(p, id) {
				return true
			}
		}
		return false
	}
	return false
}

// isRangeKey reports whether e is exactly the range statement's key
// variable.
func isRangeKey(p *Pass, rs *ast.RangeStmt, e ast.Expr) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	ko, io := p.ObjectOf(key), p.ObjectOf(id)
	return ko != nil && ko == io
}

// isMinMaxFold matches `x = max(x, ...)` and `x = min(x, ...)` with the
// builtin max/min.
func isMinMaxFold(p *Pass, s *ast.AssignStmt) bool {
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || (fn.Name != "max" && fn.Name != "min") || !isBuiltin(p, fn) {
		return false
	}
	lo := p.ObjectOf(lhs)
	for _, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok && lo != nil && p.ObjectOf(id) == lo {
			return true
		}
	}
	return false
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(p *Pass, id *ast.Ident) bool {
	_, ok := p.ObjectOf(id).(*types.Builtin)
	return ok
}

// collectThenSort reports whether the body only appends into local
// slices and every such slice is passed to a sort call later in the
// enclosing function — the canonical deterministic-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
func collectThenSort(p *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	var targets []types.Object
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || !isBuiltin(p, fn) || len(call.Args) < 1 {
			return false
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		if !ok || p.ObjectOf(arg0) == nil || p.ObjectOf(arg0) != p.ObjectOf(lhs) {
			return false
		}
		targets = append(targets, p.ObjectOf(lhs))
	}
	if len(targets) == 0 {
		return false
	}
	for _, tgt := range targets {
		if !sortedAfter(p, tgt, rs.End(), fnBody) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj is an argument of a sort.* or
// slices.Sort* call positioned after pos within body.
func sortedAfter(p *Pass, obj types.Object, pos token.Pos, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, a := range call.Args {
			mentioned := false
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.ObjectOf(id) == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short expression for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
