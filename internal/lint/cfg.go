package lint

import (
	"go/ast"
	"go/token"
)

// A tiny intra-function control-flow graph, built from the AST for the
// path-sensitive analyzers (poolleak, oncedone). Nodes of a block are
// the statements and guard expressions evaluated there, in order;
// successors are the possible continuations. Paths that end in a
// return reach the virtual exit block; paths that end in panic
// terminate without reaching it (whatever obligations they hold are
// moot — the process is dying).
//
// Deliberate simplifications, all conservative for the analyses here:
//
//   - deferred calls are modelled as executing at the point of the
//     defer statement (every later path sees their effect, which is
//     exactly what `defer put(x)` means for leak analysis);
//   - goto ends the path like a return (the repo's style never uses
//     goto; if one appears, the analyzers under-report rather than
//     false-positive);
//   - nested function literals are opaque at this level — the flow
//     analyzers handle captures themselves and analyze literal bodies
//     as separate functions.
type cfgGraph struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

type loopScope struct {
	label     string
	breakTo   *cfgBlock
	continues *cfgBlock // nil for switch/select scopes
}

type cfgBuilder struct {
	g      *cfgGraph
	scopes []loopScope
	// pendingLabel names the next loop/switch statement, for labeled
	// break/continue.
	pendingLabel string
}

func buildCFG(body *ast.BlockStmt) *cfgGraph {
	b := &cfgBuilder{g: &cfgGraph{}}
	b.g.exit = b.newBlock()
	b.g.entry = b.newBlock()
	end := b.stmts(body.List, b.g.entry)
	if end != nil {
		b.link(end, b.g.exit)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmts threads the statement list through cur; nil means the path
// terminated (return/panic/branch) before the end of the list.
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(s, cur)
		if cur == nil {
			// Remaining statements are unreachable; build them into a
			// predecessor-less block (the dataflow never visits it).
			cur = b.newBlock()
		}
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		join := b.newBlock()
		thenB := b.newBlock()
		b.link(cur, thenB)
		if end := b.stmt(s.Body, thenB); end != nil {
			b.link(end, join)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB)
			if end := b.stmt(s.Else, elseB); end != nil {
				b.link(end, join)
			}
		} else {
			b.link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		b.link(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			b.link(head, after)
		}
		contTo := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			b.link(post, head)
			contTo = post
		}
		body := b.newBlock()
		b.link(head, body)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: after, continues: contTo})
		if end := b.stmt(s.Body, body); end != nil {
			b.link(end, contTo)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		return after

	case *ast.RangeStmt:
		cur.nodes = append(cur.nodes, s.X)
		head := b.newBlock()
		after := b.newBlock()
		b.link(cur, head)
		b.link(head, after)
		body := b.newBlock()
		b.link(head, body)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: after, continues: head})
		if end := b.stmt(s.Body, body); end != nil {
			b.link(end, head)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(s, cur, label)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.link(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.scopeFor(s.Label, true); t != nil {
				b.link(cur, t)
			}
			return nil
		case token.CONTINUE:
			if t := b.scopeFor(s.Label, false); t != nil {
				b.link(cur, t)
			}
			return nil
		case token.GOTO:
			b.link(cur, b.g.exit)
			return nil
		case token.FALLTHROUGH:
			// Handled by switchLike (the clause end links to the next
			// clause body); the statement itself ends this block.
			return cur
		}
		return cur

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		return b.stmt(s.Stmt, cur)

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, s)
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isPanicStmt(s) {
			return nil
		}
		return cur

	default:
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchLike builds switch, type-switch and select statements: guard
// work in cur, one branch block per clause, all converging on after.
func (b *cfgBuilder) switchLike(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	var clauses []ast.Stmt
	hasDefault := false
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		if sw.Init != nil {
			cur.nodes = append(cur.nodes, sw.Init)
		}
		if sw.Tag != nil {
			cur.nodes = append(cur.nodes, sw.Tag)
		}
		clauses = sw.Body.List
	case *ast.TypeSwitchStmt:
		if sw.Init != nil {
			cur.nodes = append(cur.nodes, sw.Init)
		}
		cur.nodes = append(cur.nodes, sw.Assign)
		clauses = sw.Body.List
	case *ast.SelectStmt:
		clauses = sw.Body.List
	}

	after := b.newBlock()
	b.scopes = append(b.scopes, loopScope{label: label, breakTo: after})

	// Build clause bodies first so fallthrough can link forward.
	bodies := make([]*cfgBlock, len(clauses))
	var caseBodies [][]ast.Stmt
	for i, cl := range clauses {
		bodies[i] = b.newBlock()
		b.link(cur, bodies[i])
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				bodies[i].nodes = append(bodies[i].nodes, e)
			}
			if c.List == nil {
				hasDefault = true
			}
			caseBodies = append(caseBodies, c.Body)
		case *ast.CommClause:
			if c.Comm != nil {
				bodies[i].nodes = append(bodies[i].nodes, c.Comm)
			} else {
				hasDefault = true
			}
			caseBodies = append(caseBodies, c.Body)
		}
	}
	for i, body := range caseBodies {
		end := b.stmts(body, bodies[i])
		if end == nil {
			continue
		}
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(bodies) {
				b.link(end, bodies[i+1])
				continue
			}
		}
		b.link(end, after)
	}
	if !hasDefault {
		b.link(cur, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	return after
}

// scopeFor resolves the target of a break (wantBreak) or continue,
// optionally labeled.
func (b *cfgBuilder) scopeFor(label *ast.Ident, wantBreak bool) *cfgBlock {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != nil && sc.label != label.Name {
			continue
		}
		if wantBreak {
			return sc.breakTo
		}
		if sc.continues != nil {
			return sc.continues
		}
		if label != nil {
			return nil // labeled continue on a non-loop: malformed
		}
	}
	return nil
}

// isPanicStmt reports whether the statement is a bare panic(...) call.
func isPanicStmt(s *ast.ExprStmt) bool {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}
