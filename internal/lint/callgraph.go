package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The module call graph. One node per function or method declared with
// a body anywhere in the loaded snapshot; edges are the statically
// resolvable calls out of each body:
//
//   - direct calls to package-level functions (same or cross package);
//   - method calls on concrete receivers;
//   - method calls through an interface, which fan out to the method
//     on every in-module type that implements the interface (marked
//     dynamic — the conservative closure of what the dispatch could
//     reach at runtime).
//
// Calls through plain function values, method values passed around as
// data, and callees outside the module have no edge: the hotpath
// analyzer already flags closure creation in hot code, and the
// -escapes cross-check covers whatever the AST view cannot resolve.
//
// Call sites under panic(...) arguments contribute no edges (the
// process is dying), and neither do bodies of nested function literals
// (the literal itself is the allocation hot code is charged for; when
// it runs, it runs on whatever path invokes it, not here).
type callGraph struct {
	nodes map[*types.Func]*cgNode
}

// cgNode is one declared function.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	hot  bool // carries a //simlint:hotpath annotation
	out  []cgEdge
}

// cgEdge is one resolved call site.
type cgEdge struct {
	callee  *types.Func
	pos     token.Pos // the call, for chain reporting and allow auditing
	dynamic bool      // resolved through interface dispatch
}

// name renders the node for call chains: pkg.Func or pkg.Recv.Method.
func (n *cgNode) name() string {
	return funcChainName(n.fn)
}

func funcChainName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// buildCallGraph indexes every declared function of the packages and
// resolves the call edges out of each body.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{nodes: map[*types.Func]*cgNode{}}

	// Pass 1: nodes, plus the named types used for interface fan-out.
	var namedTypes []*types.Named
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.nodes[fn] = &cgNode{fn: fn, decl: fd, pkg: pkg, hot: isHotpathAnnotated(fd)}
			}
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // Names() is sorted: deterministic fan-out order
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					namedTypes = append(namedTypes, named)
				}
			}
		}
	}

	// Pass 2: edges.
	for _, n := range cg.nodes {
		n.out = collectEdges(n.pkg, n.decl, namedTypes)
	}
	return cg
}

// collectEdges resolves the call sites of one function body.
func collectEdges(pkg *Package, fd *ast.FuncDecl, namedTypes []*types.Named) []cgEdge {
	var edges []cgEdge
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literal bodies are not this function's path
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if isBuiltinName(pkg, fun) {
				if fun.Name == "panic" {
					return false // dying: callees on the way out are moot
				}
				return true
			}
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				edges = append(edges, cgEdge{callee: origin(fn), pos: call.Pos()})
			}
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				mfn, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					for _, impl := range implementations(iface, mfn, namedTypes) {
						edges = append(edges, cgEdge{callee: origin(impl), pos: call.Pos(), dynamic: true})
					}
					return true
				}
				edges = append(edges, cgEdge{callee: origin(mfn), pos: call.Pos()})
				return true
			}
			// Package-qualified call pkg.F(...).
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				edges = append(edges, cgEdge{callee: origin(fn), pos: call.Pos()})
			}
		}
		return true
	})
	return edges
}

// origin normalizes generic instantiations back to their declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// implementations returns the concrete method that each in-module type
// implementing iface would dispatch mfn to, in deterministic order.
func implementations(iface *types.Interface, mfn *types.Func, namedTypes []*types.Named) []*types.Func {
	var impls []*types.Func
	seen := map[*types.Func]bool{}
	for _, named := range namedTypes {
		if types.IsInterface(named) {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, mfn.Pkg(), mfn.Name())
		if impl, ok := obj.(*types.Func); ok && !seen[impl] {
			seen[impl] = true
			impls = append(impls, impl)
		}
	}
	sort.Slice(impls, func(i, j int) bool { return funcChainName(impls[i]) < funcChainName(impls[j]) })
	return impls
}

// isBuiltinName reports whether id resolves to a Go builtin in pkg.
func isBuiltinName(pkg *Package, id *ast.Ident) bool {
	_, ok := pkg.Info.ObjectOf(id).(*types.Builtin)
	return ok
}

// hotChain is the shortest discovered call chain from an annotated
// root to a reached function.
type hotChain struct {
	node   *cgNode
	parent *hotChain
}

// render draws the chain root → … → leaf.
func (hc *hotChain) render() string {
	var parts []string
	for c := hc; c != nil; c = c.parent {
		parts = append(parts, c.node.name())
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += " → " + p
	}
	return out
}

// hotReachable walks the call graph from every //simlint:hotpath
// function and returns the reached set with its discovery chains
// (breadth-first, so chains are shortest). allowEdge, when non-nil,
// prunes audited-cold edges: it is consulted with each call site
// before the edge propagates.
func hotReachable(cg *callGraph, allowEdge func(pos token.Pos) bool) map[*cgNode]*hotChain {
	reached := map[*cgNode]*hotChain{}
	var queue []*hotChain
	// Deterministic root order: findings must not depend on map order.
	var roots []*cgNode
	for _, n := range cg.nodes {
		if n.hot {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].decl.Pos() < roots[j].decl.Pos() })
	for _, n := range roots {
		hc := &hotChain{node: n}
		reached[n] = hc
		queue = append(queue, hc)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.node.out {
			callee, ok := cg.nodes[e.callee]
			if !ok {
				continue // outside the module: no body to check
			}
			if _, ok := reached[callee]; ok {
				continue
			}
			if allowEdge != nil && allowEdge(e.pos) {
				continue // audited cold edge
			}
			hc := &hotChain{node: callee, parent: cur}
			reached[callee] = hc
			queue = append(queue, hc)
		}
	}
	return reached
}
