package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Escapecheck cross-checks the AST-level hotpath/hotcall verdicts
// against the real compiler's escape analysis. The AST analyzers see
// syntactic allocation sources (literals, make, closures, boxing); the
// compiler's `-gcflags=-m` output is ground truth about what actually
// reaches the heap — including escapes the AST heuristics cannot see,
// like a local whose address flows into a retained pointer.
//
// A finding is a heap allocation the compiler reports inside a
// hotpath-reachable function (annotated //simlint:hotpath or reached
// from one over the call graph) at a site where the AST suite saw
// nothing: no hotpath/hotcall diagnostic at that file:line, suppressed
// or not. Sites the AST suite already flags are skipped — one finding
// per allocation, owned by the analyzer that explains it best.
//
// Escapecheck is not part of Analyzers(): it needs compiler output, so
// it runs only through `cmd/simlint -escapes` (the Escapes function
// here). Intentional heap traffic — one-time setup reached from hot
// code behind a cold branch, amortized growth the allocator sees but
// steady state never hits — carries an audited
// `//simlint:allow escapecheck (reason)` on the allocation line.
var Escapecheck = &Analyzer{
	Name: "escapecheck",
	Doc:  "compiler-reported heap allocation in a hotpath-reachable function the AST analyzers did not see",
}

// An EscapeSite is one heap-allocation decision parsed from
// `go build -gcflags=-m` diagnostics.
type EscapeSite struct {
	File string // as printed by the compiler (relative to the build dir)
	Line int
	Col  int
	Msg  string // e.g. "&request{...} escapes to heap", "moved to heap: buf"
}

// escapeLineRe matches one compiler diagnostic line.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// ParseEscapes extracts the heap-allocation decisions from -m output.
// Only positive decisions are kept: "escapes to heap", "moved to
// heap:", and make/new allocation notes; "does not escape" and inlining
// chatter are dropped.
func ParseEscapes(out string) []EscapeSite {
	var sites []EscapeSite
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !isHeapDecision(msg) {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		sites = append(sites, EscapeSite{File: m[1], Line: ln, Col: col, Msg: msg})
	}
	return sites
}

// isHeapDecision keeps the compiler messages that mean "this
// allocates on the heap".
func isHeapDecision(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.Contains(msg, "escapes to heap:") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// EscapeCheck diffs the compiler's escape sites against the AST
// analyzers' hotpath verdicts over one snapshot, returning the sorted
// escapecheck findings: compiler-visible heap allocations in
// hot-reachable functions that no AST-level diagnostic covers.
func EscapeCheck(snap *Snapshot, sites []EscapeSite) []Diagnostic {
	rs := newRunState([]*Analyzer{Escapecheck})
	for _, pkg := range snap.Pkgs {
		for _, f := range pkg.Files {
			rs.collectDirectives(pkg.Fset, f)
		}
	}

	// The AST view: run hotpath+hotcall into a scratch sink with NO
	// directives collected, so even suppressed findings register. A
	// site the AST suite flagged — or that a reviewer already audited
	// with //simlint:allow hotpath — is "seen": escapecheck only
	// reports what slipped past the AST entirely.
	scratch := newRunState([]*Analyzer{Hotpath, Hotcall})
	for _, pkg := range snap.Pkgs {
		Hotpath.Run(&Pass{Analyzer: Hotpath, Fset: pkg.Fset, Files: pkg.Files,
			Pkg: pkg.Types, Info: pkg.Info, RelPath: pkg.RelPath, sink: scratch})
	}
	Hotcall.RunModule(&ModulePass{Analyzer: Hotcall, Snap: snap, sink: scratch})
	astSeen := map[string]bool{}
	for _, d := range scratch.diags {
		astSeen[lineKey(d.Pos.Filename, d.Pos.Line)] = true
	}

	// The hot function set: annotated roots plus everything reachable,
	// pruning the same audited-cold edges hotcall prunes.
	cg := snap.CallGraph()
	allowEdge := func(pos token.Pos) bool {
		n := nodeAt(cg, pos)
		if n == nil {
			return false
		}
		return rs.suppress(Hotcall.Name, n.pkg.Fset.Position(pos))
	}
	reached := hotReachable(cg, allowEdge)

	// Index hot declaration ranges by file for site lookup, and the
	// lines spanned by panic calls: the AST suite exempts allocations
	// on dying paths, so the cross-check holds the compiler's view to
	// the same rule (a panic's fmt.Sprintf argument always escapes,
	// and the process is gone before it matters).
	type declRange struct {
		start, end int
		name       string
	}
	hotRanges := map[string][]declRange{}
	panicLines := map[string]map[int]bool{}
	for n := range reached {
		pos := n.pkg.Fset.Position(n.decl.Pos())
		end := n.pkg.Fset.Position(n.decl.End())
		hotRanges[pos.Filename] = append(hotRanges[pos.Filename], declRange{
			start: pos.Line, end: end.Line, name: n.name(),
		})
		ast.Inspect(n.decl, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := n.pkg.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			pl := panicLines[pos.Filename]
			if pl == nil {
				pl = map[int]bool{}
				panicLines[pos.Filename] = pl
			}
			for l := n.pkg.Fset.Position(call.Pos()).Line; l <= n.pkg.Fset.Position(call.End()).Line; l++ {
				pl[l] = true
			}
			return true
		})
	}

	for _, site := range sites {
		file := site.File
		if !filepath.IsAbs(file) && snap.Root != "" {
			file = filepath.Join(snap.Root, file)
		}
		var owner string
		for _, r := range hotRanges[file] {
			if site.Line >= r.start && site.Line <= r.end {
				owner = r.name
				break
			}
		}
		if owner == "" {
			continue // cold code: the compiler may allocate freely
		}
		if panicLines[file][site.Line] {
			continue // dying path: exempt, like the AST suite
		}
		if astSeen[lineKey(file, site.Line)] {
			continue // the AST suite already owns this site
		}
		rs.reportAt(Escapecheck.Name,
			token.Position{Filename: file, Line: site.Line, Column: site.Col},
			"compiler escape analysis: %s in hotpath-reachable %s, unseen by the AST analyzers", site.Msg, owner)
	}

	rs.finishUnused()
	sortDiags(rs.diags)
	return rs.diags
}

// Escapes runs the full -escapes mode: compile the patterns with
// `go build -gcflags=-m`, parse the escape decisions, and cross-check
// them against the snapshot. Building writes nothing (the go tool
// discards the objects into its cache) but does real compilation, so
// this is the one simlint mode that costs a build.
func Escapes(snap *Snapshot, patterns ...string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	out, err := compilerEscapes(snap.Root, patterns)
	if err != nil {
		return nil, err
	}
	return EscapeCheck(snap, ParseEscapes(out)), nil
}

// compilerEscapes runs the compiler over patterns and returns its -m
// diagnostics. The go tool replays compiler output from the build
// cache, so repeat runs are cheap.
func compilerEscapes(root string, patterns []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	return stderr.String(), nil
}
