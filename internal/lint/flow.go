package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared machinery for the CFG-based analyzers: event extraction over
// tracked objects (a pooled pointer, a once-callback parameter) and a
// forward union-lattice dataflow over the cfgGraph.

// eventKind classifies what one syntactic use of a tracked object does
// to its obligation.
type eventKind int

const (
	evNone    eventKind = iota
	evAcquire           // v := get(...): v now holds a pooled object
	evRelease           // put(v) or v.put(): the object returns to its pool
	evInvoke            // v(...): the tracked callback is called
	evHandoff           // v escapes: argument, return, store, capture —
	// ownership (or the invocation obligation) moves elsewhere
)

// flowEvent is one ordered event within a CFG block.
type flowEvent struct {
	kind eventKind
	obj  types.Object
	pos  token.Pos
}

// funcUnit is one analyzable body: a declaration or a function
// literal. Literals are separate units — a capture inside one is a
// handoff from the enclosing unit's point of view, and obligations
// created inside the literal are checked against the literal's own
// paths.
type funcUnit struct {
	body *ast.BlockStmt
	pos  token.Pos
}

// collectUnits gathers the declared body and every nested function
// literal of a file's declarations.
func collectUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				units = append(units, funcUnit{body: x.Body, pos: x.Pos()})
			case *ast.FuncLit:
				units = append(units, funcUnit{body: x.Body, pos: x.Pos()})
			}
			return true
		})
	}
	return units
}

// extractEvents walks one CFG node (a statement or guard expression)
// in source order and emits the events affecting tracked objects.
//
//   - tracked: the objects under analysis in this unit;
//   - getObjs / putObjs: the pool accessors (nil maps for oncedone);
//   - trackCalls: when true, a direct call of a tracked object is an
//     evInvoke (the oncedone case).
//
// Nested function literals are opaque: each tracked object referenced
// anywhere inside one contributes a single evHandoff at the literal
// (the closure now owns the obligation), and nothing below it is
// walked here — the literal body is its own funcUnit.
func extractEvents(p *Pass, node ast.Node, tracked map[types.Object]bool,
	getObjs, putObjs map[types.Object]bool, trackCalls bool) []flowEvent {
	var events []flowEvent
	var walk func(n ast.Node, parent ast.Node)
	emit := func(kind eventKind, obj types.Object, pos token.Pos) {
		events = append(events, flowEvent{kind: kind, obj: obj, pos: pos})
	}

	walk = func(n ast.Node, parent ast.Node) {
		switch x := n.(type) {
		case nil:
			return

		case *ast.FuncLit:
			// One handoff per captured tracked object, at the literal
			// (the closure now owns the obligation). Inspect order is
			// source order, so emission is deterministic.
			captured := map[types.Object]bool{}
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.ObjectOf(id); obj != nil && tracked[obj] && !captured[obj] {
						captured[obj] = true
						emit(evHandoff, obj, x.Pos())
					}
				}
				return true
			})
			return

		case *ast.AssignStmt:
			// RHS first (evaluation order), then acquisition binding.
			for _, rhs := range x.Rhs {
				walk(rhs, x)
			}
			for _, lhs := range x.Lhs {
				// LHS identifiers are neutral (rebinding); other LHS
				// forms (index exprs, field bases, derefs) may contain
				// value uses and are walked.
				if _, ok := lhs.(*ast.Ident); ok {
					continue
				}
				walk(lhs, x)
			}
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isAccessorCall(p, call, getObjs) {
						continue
					}
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := p.ObjectOf(id); obj != nil {
							emit(evAcquire, obj, rhs.Pos())
						}
					}
				}
			}
			return

		case *ast.CallExpr:
			// panic arguments are dying paths; stay conservative and
			// still walk them (a handoff into panic is moot but
			// harmless to record — the CFG ends the path anyway).
			fun := ast.Unparen(x.Fun)
			// Direct invocation of a tracked callback.
			if id, ok := fun.(*ast.Ident); ok && trackCalls {
				if obj := p.ObjectOf(id); obj != nil && tracked[obj] {
					for _, a := range x.Args {
						walk(a, x)
					}
					emit(evInvoke, obj, x.Pos())
					return
				}
			}
			// put(v) / s.put(v): args that are tracked idents release.
			if isAccessorCall(p, x, putObjs) {
				// v.put() form: the receiver itself releases.
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := p.ObjectOf(id); obj != nil && tracked[obj] {
							emit(evRelease, obj, x.Pos())
						}
					}
				}
				for _, a := range x.Args {
					if id, ok := ast.Unparen(a).(*ast.Ident); ok {
						if obj := p.ObjectOf(id); obj != nil && tracked[obj] {
							emit(evRelease, obj, a.Pos())
							continue
						}
					}
					walk(a, x)
				}
				return
			}
			walk(ast.Unparen(x.Fun), x)
			for _, a := range x.Args {
				walk(a, x)
			}
			return

		case *ast.SelectorExpr:
			// v.field reads/writes and v.method() calls mutate or use
			// the object in place — the obligation stays put. But a
			// func-valued selection used as DATA — a method value, or a
			// bound-callback field like the pooled contexts' onDone —
			// carries a reference to v wherever it goes: handoff.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if obj := p.ObjectOf(id); obj != nil && tracked[obj] {
					invoked := false
					if pc, ok := parent.(*ast.CallExpr); ok && ast.Unparen(pc.Fun) == x {
						invoked = true
					}
					if !invoked {
						if t := p.TypeOf(x); t != nil {
							if _, isFunc := t.Underlying().(*types.Signature); isFunc {
								emit(evHandoff, obj, x.Pos())
							}
						}
					}
					return
				}
			}
			walk(x.X, x)
			return

		case *ast.BinaryExpr:
			// Comparing or doing arithmetic on the tracked value
			// itself never moves ownership, but a call buried in an
			// operand still can.
			walkNeutralIdent(p, tracked, x.X, x, walk)
			walkNeutralIdent(p, tracked, x.Y, x, walk)
			return

		case *ast.IndexExpr:
			// xs[v] and v[i] read in place.
			walkNeutralIdent(p, tracked, x.X, x, walk)
			walkNeutralIdent(p, tracked, x.Index, x, walk)
			return

		case *ast.StarExpr:
			// *v = ... mutates the pointed-to object in place.
			walkNeutralIdent(p, tracked, x.X, x, walk)
			return

		case *ast.Ident:
			if obj := p.ObjectOf(x); obj != nil && tracked[obj] {
				emit(evHandoff, obj, x.Pos())
			}
			return

		default:
			// Generic traversal: visit children with this node as
			// parent context.
			for _, child := range childrenOf(n) {
				walk(child, n)
			}
			return
		}
	}
	walk(node, nil)
	return events
}

// walkNeutralIdent walks e unless it is a bare tracked identifier —
// the neutral read positions (comparison operands, indexes, derefs).
func walkNeutralIdent(p *Pass, tracked map[types.Object]bool, e ast.Expr, parent ast.Node, walk func(ast.Node, ast.Node)) {
	if e == nil {
		return
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil && tracked[obj] {
			return
		}
	}
	walk(e, parent)
}

// childrenOf lists a node's immediate children via one-level Inspect.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}

// isAccessorCall reports whether the call's callee resolves to one of
// the named pool accessor objects.
func isAccessorCall(p *Pass, call *ast.CallExpr, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return objs[p.ObjectOf(fun)]
	case *ast.SelectorExpr:
		return objs[p.ObjectOf(fun.Sel)]
	}
	return false
}

// --- dataflow ---------------------------------------------------------

// flowState is a union lattice over small per-object state sets,
// keyed by tracked object.
type flowState map[types.Object]uint8

func (st flowState) clone() flowState {
	out := make(flowState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// joinInto unions src into dst, reporting whether dst changed.
func (st flowState) joinInto(dst flowState) bool {
	changed := false
	for k, v := range st {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// blockEvents caches the extracted events of each CFG block.
type blockEvents map[*cfgBlock][]flowEvent

// extractBlockEvents runs extractEvents over every node of every
// block.
func extractBlockEvents(p *Pass, g *cfgGraph, tracked map[types.Object]bool,
	getObjs, putObjs map[types.Object]bool, trackCalls bool) blockEvents {
	be := blockEvents{}
	for _, blk := range g.blocks {
		var evs []flowEvent
		for _, n := range blk.nodes {
			evs = append(evs, extractEvents(p, n, tracked, getObjs, putObjs, trackCalls)...)
		}
		if len(evs) > 0 {
			be[blk] = evs
		}
	}
	return be
}

// forwardFlow runs a forward union dataflow from entry. transfer maps
// an entry state through one block's events to its exit state; it may
// report findings (idempotently — it can run several times per block
// as the fixpoint grows).
func forwardFlow(g *cfgGraph, entry flowState, transfer func(blk *cfgBlock, in flowState) flowState) map[*cfgBlock]flowState {
	in := map[*cfgBlock]flowState{g.entry: entry}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := transfer(blk, in[blk].clone())
		for _, succ := range blk.succs {
			dst, ok := in[succ]
			if !ok {
				dst = flowState{}
				in[succ] = dst
			}
			if out.joinInto(dst) || !ok {
				work = append(work, succ)
			}
		}
	}
	return in
}
