package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Oncedone checks that a completion callback is invoked exactly once
// on every path. A function taking a `done func(...)`-style parameter
// opts in through its doc comment:
//
//	//simlint:once done
//	func (s *Scheduler) Submit(fn Op, done func(error)) { ... }
//
// The bare form `//simlint:once` is accepted when the function has
// exactly one func-typed parameter; otherwise naming is mandatory and
// an ambiguous bare marker is itself a finding.
//
// Two finding classes, the two halves of the completion contract:
//
//   - a path that reaches return without invoking the callback — the
//     caller hangs forever waiting on a completion that never fires
//     (the silent cousin of the PR 5 failover-stall bug);
//   - a path that may invoke it twice — the PR 3 over-grant class,
//     where a double completion releases a token twice and
//     overcommits the resource it guards.
//
// Passing the callback onward — as an argument, stored into a struct,
// captured by a function literal — transfers the obligation: the new
// owner completes it, and this function's paths are satisfied by the
// handoff. (A handoff followed by a local invocation is NOT flagged:
// the analysis cannot see whether the new owner fires it, so it stays
// conservative.) Paths that end in panic are exempt. Intentional
// exceptions carry `//simlint:allow oncedone (reason)`.
var Oncedone = &Analyzer{
	Name: "oncedone",
	Doc:  "completion callback not invoked exactly once on every path",
	Run:  runOncedone,
}

// onceMarkerRe parses `simlint:once [param]`.
var onceMarkerRe = regexp.MustCompile(`^simlint:once(?:\s+(\w+))?\s*$`)

// per-callback states (bitmask lattice).
const (
	osZero   uint8 = 1 << iota // not yet invoked
	osCalled                   // invoked on this path
	osHanded                   // obligation transferred elsewhere
)

func runOncedone(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			param, ok := onceParam(p, fd)
			if !ok {
				continue
			}
			if param == nil {
				continue // malformed marker already reported
			}
			checkOnceUnit(p, fd, param)
		}
	}
}

// onceParam finds the //simlint:once marker of fd and resolves the
// named (or sole func-typed) parameter object. The second result is
// whether a marker exists at all. Marker-hygiene findings anchor on
// the function name, not the comment — that is the declaration being
// mis-marked, and it gives suppressions a code line to sit on.
func onceParam(p *Pass, fd *ast.FuncDecl) (types.Object, bool) {
	if fd.Doc == nil {
		return nil, false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, "simlint:once") {
			continue
		}
		m := onceMarkerRe.FindStringSubmatch(text)
		if m == nil {
			p.Reportf(fd.Name.Pos(), "malformed once marker: want //simlint:once [param]")
			return nil, true
		}
		return resolveOnceParam(p, fd, m[1], fd.Name.Pos()), true
	}
	return nil, false
}

func resolveOnceParam(p *Pass, fd *ast.FuncDecl, name string, markerPos token.Pos) types.Object {
	var funcParams []*ast.Ident
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			obj := p.ObjectOf(id)
			if obj == nil {
				continue
			}
			if name != "" {
				if id.Name == name {
					if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
						p.Reportf(markerPos, "once parameter %s of %s is not func-typed", name, fd.Name.Name)
						return nil
					}
					return obj
				}
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				funcParams = append(funcParams, id)
			}
		}
	}
	if name != "" {
		p.Reportf(markerPos, "once parameter %s not found on %s", name, fd.Name.Name)
		return nil
	}
	if len(funcParams) != 1 {
		p.Reportf(markerPos, "bare //simlint:once needs exactly one func-typed parameter on %s (found %d); name one", fd.Name.Name, len(funcParams))
		return nil
	}
	return p.ObjectOf(funcParams[0])
}

// checkOnceUnit runs the exactly-once dataflow over the declared body.
// Only the declaration's own paths are checked — a function literal
// that captures the callback takes the obligation with it (handoff),
// and its body is not re-checked here (we cannot know how many times
// the closure itself runs).
func checkOnceUnit(p *Pass, fd *ast.FuncDecl, param types.Object) {
	tracked := map[types.Object]bool{param: true}
	g := buildCFG(fd.Body)
	be := extractBlockEvents(p, g, tracked, nil, nil, true)

	reported := map[string]bool{}
	reportOnce := func(key string, pos token.Pos, format string, args ...any) {
		if reported[key] {
			return
		}
		reported[key] = true
		p.Reportf(pos, format, args...)
	}

	transfer := func(blk *cfgBlock, st flowState) flowState {
		for _, ev := range be[blk] {
			cur := st[ev.obj]
			switch ev.kind {
			case evInvoke:
				if cur&osCalled != 0 {
					reportOnce(fmt.Sprintf("dbl%d", ev.pos), ev.pos,
						"callback %s may be invoked a second time here", ev.obj.Name())
				}
				st[ev.obj] = (cur | osCalled) &^ osZero
			case evHandoff:
				st[ev.obj] = (cur | osHanded) &^ osZero
			}
		}
		return st
	}
	entry := flowState{param: osZero}
	in := forwardFlow(g, entry, transfer)

	exitState, ok := in[g.exit]
	if !ok {
		return // no path returns (infinite loop / always panics)
	}
	if exitState[param]&osZero != 0 {
		reportOnce("zero", fd.Name.Pos(),
			"callback %s is not invoked on some path to return: the caller waits forever", param.Name())
	}
}
