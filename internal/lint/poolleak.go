package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Poolleak checks get/put pairing for the simulator's object pools.
// A pool type declares its accessors in its doc comment:
//
//	//simlint:pool get=getReq put=putReq
//	type request struct { ... }
//
// get and put name functions or methods of the same package (matched
// by name — the scheduler's accessors are methods of the Scheduler,
// the engine's free list trades in int32 slot indexes). From then on,
// every local bound from a get call must, on EVERY control-flow path
// to function exit — error paths included — either be released
// through put or explicitly handed off: passed to another call,
// stored into a field, global, slice or map, returned, or captured by
// a function literal. A path on which the acquired object is simply
// dropped is a leak finding at the acquisition site; the PR 3/5/8 bug
// class (isp double-grant, failover-context reuse) adds the dual
// check: putting the same object twice on one path is a finding at
// the second put.
//
// Handoff is deliberately generous — passing the object to any
// function transfers the obligation, because the callee (admit, the
// engine, a fabric send) now owns completion. The analysis therefore
// under-reports rather than second-guesses ownership conventions;
// what it never misses is the early `return err` that forgets the
// object entirely. Reading or writing the object's fields, indexing
// with or into it, and comparing it are neutral: the obligation stays
// where it is. Paths that end in panic are exempt (the process is
// dying). Intentional exceptions carry an audited
// `//simlint:allow poolleak (reason)` on the acquisition or put line.
var Poolleak = &Analyzer{
	Name: "poolleak",
	Doc:  "pooled object acquired but neither released nor handed off on some path",
	Run:  runPoolleak,
}

// poolMarkerRe parses `simlint:pool get=F put=G`.
var poolMarkerRe = regexp.MustCompile(`^simlint:pool\s+get=(\w+)\s+put=(\w+)\s*$`)

// poolDecl is one annotated pool type with its resolved accessors.
type poolDecl struct {
	typeName string
	getName  string
	putName  string
}

// per-object pool states (bitmask lattice).
const (
	psHeld     uint8 = 1 << iota // acquired, obligation outstanding
	psReleased                   // returned to the pool via put
	psHanded                     // ownership moved elsewhere
)

func runPoolleak(p *Pass) {
	pools := poolDecls(p)
	if len(pools) == 0 {
		return
	}
	getObjs, putObjs := resolveAccessors(p, pools)
	if len(getObjs) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, unit := range collectUnits(f) {
			checkPoolUnit(p, unit, getObjs, putObjs)
		}
	}
}

// poolDecls parses the //simlint:pool markers of the package's type
// declarations, reporting malformed ones.
func poolDecls(p *Pass) []poolDecl {
	var pools []poolDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
						if !strings.HasPrefix(text, "simlint:pool") {
							continue
						}
						m := poolMarkerRe.FindStringSubmatch(text)
						if m == nil {
							p.Reportf(c.Pos(), "malformed pool marker: want //simlint:pool get=F put=G")
							continue
						}
						pools = append(pools, poolDecl{typeName: ts.Name.Name, getName: m[1], putName: m[2]})
					}
				}
			}
		}
	}
	return pools
}

// resolveAccessors maps the declared accessor names to the package's
// function objects (package-level functions or methods, matched by
// name), reporting names that resolve to nothing.
func resolveAccessors(p *Pass, pools []poolDecl) (getObjs, putObjs map[types.Object]bool) {
	byName := map[string][]types.Object{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := p.ObjectOf(fd.Name); obj != nil {
					byName[fd.Name.Name] = append(byName[fd.Name.Name], obj)
				}
			}
		}
	}
	getObjs, putObjs = map[types.Object]bool{}, map[types.Object]bool{}
	for _, pool := range pools {
		gets, puts := byName[pool.getName], byName[pool.putName]
		if len(gets) == 0 || len(puts) == 0 {
			// Anchor the report on the type's position via a scan.
			reportPoolResolution(p, pool)
			continue
		}
		for _, o := range gets {
			getObjs[o] = true
		}
		for _, o := range puts {
			putObjs[o] = true
		}
	}
	return getObjs, putObjs
}

func reportPoolResolution(p *Pass, pool poolDecl) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == pool.typeName {
					p.Reportf(ts.Pos(), "pool %s: accessor get=%s put=%s not found in this package",
						pool.typeName, pool.getName, pool.putName)
					return
				}
			}
		}
	}
}

// checkPoolUnit runs the leak dataflow over one function body.
func checkPoolUnit(p *Pass, unit funcUnit, getObjs, putObjs map[types.Object]bool) {
	// Cheap pre-scan: any acquisition at all?
	tracked := map[types.Object]bool{}
	acquirePos := map[types.Object]ast.Node{}
	ast.Inspect(unit.body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != unit.body {
			return false // separate unit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isAccessorCall(p, call, getObjs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := p.ObjectOf(id); obj != nil {
					tracked[obj] = true
					if acquirePos[obj] == nil {
						acquirePos[obj] = rhs
					}
				}
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	g := buildCFG(unit.body)
	be := extractBlockEvents(p, g, tracked, getObjs, putObjs, false)

	// The fixpoint may run transfer several times per block; dedupe
	// findings by site.
	reported := map[string]bool{}
	reportOnce := func(key string, pos token.Pos, format string, args ...any) {
		if reported[key] {
			return
		}
		reported[key] = true
		p.Reportf(pos, format, args...)
	}

	transfer := func(blk *cfgBlock, st flowState) flowState {
		for _, ev := range be[blk] {
			cur := st[ev.obj]
			switch ev.kind {
			case evAcquire:
				if cur&psHeld != 0 {
					reportOnce(fmt.Sprintf("re%d", ev.pos), ev.pos,
						"pooled %s reacquired while a previous acquisition may still be held", ev.obj.Name())
				}
				st[ev.obj] = psHeld
			case evRelease:
				if cur&psReleased != 0 {
					reportOnce(fmt.Sprintf("dbl%d", ev.pos), ev.pos,
						"pooled %s may be released twice on one path", ev.obj.Name())
				}
				st[ev.obj] = psReleased
			case evHandoff:
				if cur != 0 {
					st[ev.obj] = psHanded
				}
			}
		}
		return st
	}
	in := forwardFlow(g, flowState{}, transfer)

	// Exit check: HELD possible at exit = a leak on some path.
	exitState, ok := in[g.exit]
	if !ok {
		return // no path reaches a return (infinite loop / always panics)
	}
	for obj, bits := range exitState {
		if bits&psHeld != 0 {
			if site := acquirePos[obj]; site != nil {
				reportOnce("leak"+obj.Name(), site.Pos(),
					"pooled %s acquired here may leak: some path reaches return without put or handoff", obj.Name())
			}
		}
	}
}
