package cache

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/sched"
	"repro/internal/volume"
)

// testCache builds a small cluster + scheduler + volume + cache stack.
func testCache(t *testing.T, nodes int, cfg Config) (*core.Cluster, *volume.Volume, *Cache) {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = ftl.DefaultConfig()
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := New(c, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, v, ca
}

func pageData(size, seed int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(seed ^ (i * 7))
	}
	return b
}

// readPage issues one cache read and returns a copy of the data after
// the engine drains (hit data aliases the cache frame, so it must be
// copied inside the callback).
func readPage(t *testing.T, c *core.Cluster, st *Stream, lpn int) []byte {
	t.Helper()
	var got []byte
	var rerr error
	st.Read(lpn, func(data []byte, err error) {
		rerr = err
		if err == nil {
			got = append([]byte(nil), data...)
		}
	})
	c.Run()
	if rerr != nil {
		t.Fatalf("read %d: %v", lpn, rerr)
	}
	if got == nil {
		t.Fatalf("read %d never completed", lpn)
	}
	return got
}

// TestCacheReadWriteRoundTrip: writes are absorbed write-back, flushed
// to flash on the Background class, and re-reads hit DRAM with the
// right data.
func TestCacheReadWriteRoundTrip(t *testing.T) {
	c, v, ca := testCache(t, 2, DefaultConfig(64))
	st, err := ca.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	acked := 0
	for lpn := 0; lpn < n; lpn++ {
		st.Write(lpn, pageData(ca.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			acked++
		})
	}
	c.Run()
	if acked != n {
		t.Fatalf("acked %d of %d writes", acked, n)
	}
	s := ca.Stats()
	if s.WriteAllocs != n {
		t.Fatalf("WriteAllocs = %d, want %d", s.WriteAllocs, n)
	}
	if s.Flushes != n {
		t.Fatalf("Flushes = %d, want %d (all dirty pages must drain)", s.Flushes, n)
	}
	if s.DirtyPages != 0 {
		t.Fatalf("DirtyPages = %d after drain, want 0", s.DirtyPages)
	}
	for lpn := 0; lpn < n; lpn++ {
		if got := readPage(t, c, st, lpn); !bytes.Equal(got, pageData(ca.PageSize(), lpn)) {
			t.Fatalf("lpn %d: wrong data back", lpn)
		}
	}
	s = ca.Stats()
	if s.Hits != n || s.Misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want %d/0 (flushed pages stay resident)", s.Hits, s.Misses, n)
	}
	// The flash copy must match too: read below the cache.
	vs, err := v.NewStream("direct", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	var flash []byte
	vs.Read(7, func(data []byte, err error) {
		if err != nil {
			t.Errorf("volume read: %v", err)
		}
		flash = append([]byte(nil), data...)
	})
	c.Run()
	if !bytes.Equal(flash, pageData(ca.PageSize(), 7)) {
		t.Fatal("flash copy diverges from cache copy after flush")
	}
}

// TestCacheMissFillsAndHits: a cold read misses into the volume, and
// the filled frame serves the next read from DRAM.
func TestCacheMissFillsAndHits(t *testing.T) {
	c, v, ca := testCache(t, 1, DefaultConfig(16))
	vs, err := v.NewStream("seed", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	vs.Write(3, pageData(ca.PageSize(), 3), func(err error) {
		if err != nil {
			t.Errorf("seed: %v", err)
		}
	})
	c.Run()

	st, err := ca.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if got := readPage(t, c, st, 3); !bytes.Equal(got, pageData(ca.PageSize(), 3)) {
		t.Fatal("miss fill returned wrong data")
	}
	if s := ca.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after cold read: hits/misses = %d/%d, want 0/1", s.Hits, s.Misses)
	}
	if got := readPage(t, c, st, 3); !bytes.Equal(got, pageData(ca.PageSize(), 3)) {
		t.Fatal("hit returned wrong data")
	}
	if s := ca.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("after warm read: hits/misses = %d/%d, want 1/1", s.Hits, s.Misses)
	}
}

// TestCacheRangeErrors: out-of-range pages fail typed on both paths.
func TestCacheRangeErrors(t *testing.T) {
	c, _, ca := testCache(t, 1, DefaultConfig(8))
	st, err := ca.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	var rerr, werr error
	st.Read(-1, func(_ []byte, err error) { rerr = err })
	st.Write(ca.Pages(), make([]byte, ca.PageSize()), func(err error) { werr = err })
	c.Run()
	if rerr == nil || werr == nil {
		t.Fatalf("out-of-range accepted: read %v write %v", rerr, werr)
	}
	if _, err := ca.NewStream("bg", 0, sched.Background); err == nil {
		t.Fatal("Background-class cache stream accepted")
	}
	if _, err := ca.NewStream("x", 99, sched.Interactive); err == nil {
		t.Fatal("bad node accepted")
	}
}

// TestInvalidationCoherence: a remote node's clean copy is dropped
// when a write becomes flash-visible, so its next read observes the
// new data.
func TestInvalidationCoherence(t *testing.T) {
	c, _, ca := testCache(t, 2, DefaultConfig(16))
	w, err := ca.NewStream("writer", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ca.NewStream("reader", 1, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	old := pageData(ca.PageSize(), 1)
	w.Write(5, old, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	c.Run()
	if got := readPage(t, c, r, 5); !bytes.Equal(got, old) {
		t.Fatal("reader missed the first version")
	}
	base := ca.Stats()

	fresh := pageData(ca.PageSize(), 2)
	w.Write(5, fresh, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	c.Run()
	d := ca.Stats().Delta(base)
	if d.InvalidationsSent == 0 {
		t.Fatal("flush sent no invalidations")
	}
	if d.InvalidationsApplied == 0 {
		t.Fatal("reader node dropped nothing despite holding a stale clean copy")
	}
	if got := readPage(t, c, r, 5); !bytes.Equal(got, fresh) {
		t.Fatal("reader observed stale data after invalidation")
	}
	if d2 := ca.Stats().Delta(base); d2.Misses == 0 {
		t.Fatal("post-invalidation read should have missed and refilled")
	}
}

// TestConcurrentWritersConverge: two nodes write the same page at the
// same time. Invalidations against dirty/in-flush copies are ignored
// (last flusher wins), but once both flushes land, every node
// converges on the flash value.
func TestConcurrentWritersConverge(t *testing.T) {
	c, v, ca := testCache(t, 2, DefaultConfig(16))
	s0, err := ca.NewStream("a", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ca.NewStream("b", 1, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	a := pageData(ca.PageSize(), 0xA)
	b := pageData(ca.PageSize(), 0xB)
	s0.Write(9, a, func(err error) {
		if err != nil {
			t.Errorf("w0: %v", err)
		}
	})
	s1.Write(9, b, func(err error) {
		if err != nil {
			t.Errorf("w1: %v", err)
		}
	})
	c.Run()
	if s := ca.Stats(); s.InvalidationsIgnoredDirty == 0 {
		t.Fatal("expected at least one invalidation against a dirty/in-flush copy")
	}
	vs, err := v.NewStream("direct", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	var flash []byte
	vs.Read(9, func(data []byte, err error) {
		if err != nil {
			t.Errorf("volume read: %v", err)
		}
		flash = append([]byte(nil), data...)
	})
	c.Run()
	if !bytes.Equal(flash, a) && !bytes.Equal(flash, b) {
		t.Fatal("flash holds neither writer's data")
	}
	g0 := readPage(t, c, s0, 9)
	g1 := readPage(t, c, s1, 9)
	if !bytes.Equal(g0, flash) || !bytes.Equal(g1, flash) {
		t.Fatal("nodes did not converge on the flash value")
	}
}

// TestWriteThroughWhenSaturated: with every frame dirty and the flush
// pump behind, write misses fall back to write-through — and the data
// still lands intact.
func TestWriteThroughWhenSaturated(t *testing.T) {
	c, _, ca := testCache(t, 1, DefaultConfig(4))
	st, err := ca.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	acked := 0
	for lpn := 0; lpn < n; lpn++ {
		st.Write(lpn, pageData(ca.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write %v", err)
			}
			acked++
		})
	}
	c.Run()
	if acked != n {
		t.Fatalf("acked %d of %d", acked, n)
	}
	s := ca.Stats()
	if s.WriteThroughs == 0 {
		t.Fatal("expected write-throughs with 4 frames and 32 burst writes")
	}
	for lpn := 0; lpn < n; lpn++ {
		if got := readPage(t, c, st, lpn); !bytes.Equal(got, pageData(ca.PageSize(), lpn)) {
			t.Fatalf("lpn %d: wrong data back", lpn)
		}
	}
}

// TestTierDemoteAndPromote: cold pages migrate out of flash onto the
// alt-store device, a later read is served from the tier, and the page
// promotes back through the DRAM cache (dirty, so a flush restores it
// to flash and releases the tier copy).
func TestTierDemoteAndPromote(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Tier = &TierConfig{Kind: "ssd", ColdGap: 300, ScanEvery: 32, ScanBatch: 64, MaxInflight: 4}
	c, _, ca := testCache(t, 1, cfg)
	st, err := ca.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	// Seed pages 0..15 through the cache (8 frames: the older half is
	// evicted or written through, but all land on flash).
	for lpn := 0; lpn < 16; lpn++ {
		st.Write(lpn, pageData(ca.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
		})
		c.Run()
	}
	// Hammer the upper half as the hot set until the lower half goes
	// cold enough to demote (every access advances the coldness clock
	// and periodically runs a scan batch).
	for i := 0; i < 500; i++ {
		readPage(t, c, st, 8+(i%8))
	}
	s := ca.Stats()
	if s.Demotions == 0 {
		t.Fatalf("no demotions after 500 hot-set accesses (stats %+v)", s)
	}
	// Read a demoted page back: served by the tier, promoted to DRAM.
	if got := readPage(t, c, st, 0); !bytes.Equal(got, pageData(ca.PageSize(), 0)) {
		t.Fatal("tier read returned wrong data")
	}
	d := ca.Stats().Delta(s)
	if d.TierReads == 0 {
		t.Fatal("read of a demoted page did not hit the tier")
	}
	if d.Promotions == 0 {
		t.Fatal("tier read did not promote the page back to DRAM")
	}
	// The promoted page flushed back to flash, so the tier copy is
	// gone and the next read is a DRAM hit.
	if got := readPage(t, c, st, 0); !bytes.Equal(got, pageData(ca.PageSize(), 0)) {
		t.Fatal("promoted page corrupt")
	}
	if d2 := ca.Stats().Delta(s); d2.Hits == 0 {
		t.Fatal("promoted page did not serve a DRAM hit")
	}
}
