package cache

import (
	"testing"

	"repro/internal/sched"
)

// The cache hot paths carry every DRAM hit in the simulated cluster,
// so a single allocation per operation turns into GC pressure
// proportional to total simulated I/O. These tests pin the lookup,
// hit, evict, and invalidation-send paths at zero steady-state
// allocations, matching the engine/fabric guarantees from PRs 6/9.

// TestIndexOpsAllocFree: open-addressed index insert/lookup/delete and
// the CLOCK slot recycler never allocate once the structures exist.
func TestIndexOpsAllocFree(t *testing.T) {
	_, _, ca := testCache(t, 1, DefaultConfig(64))
	nc := ca.nodes[0]
	if n := testing.AllocsPerRun(1000, func() {
		for k := int64(0); k < 48; k++ {
			slot := nc.takeSlot()
			if slot < 0 {
				t.Fatal("no slot")
			}
			nc.entries[slot].lpn = k
			nc.entries[slot].state = stClean
			nc.insert(k, slot)
			nc.used++
		}
		for k := int64(0); k < 48; k++ {
			if _, ok := nc.lookup(k); !ok {
				t.Fatalf("lost key %d", k)
			}
		}
		for k := int64(0); k < 48; k++ {
			slot, _ := nc.lookup(k)
			nc.deleteIdx(k)
			nc.used--
			nc.releaseSlot(slot)
		}
	}); n != 0 {
		t.Fatalf("index insert/lookup/delete cycle allocates %.1f objects, want 0", n)
	}
}

// TestEvictionAllocFree: CLOCK eviction under a full cache (every
// takeSlot reclaims a clean frame) is allocation-free.
func TestEvictionAllocFree(t *testing.T) {
	_, _, ca := testCache(t, 1, DefaultConfig(32))
	nc := ca.nodes[0]
	for k := int64(0); k < 32; k++ {
		slot := nc.takeSlot()
		nc.entries[slot].lpn = k
		nc.entries[slot].state = stClean
		nc.insert(k, slot)
		nc.used++
	}
	next := int64(32)
	if n := testing.AllocsPerRun(1000, func() {
		slot := nc.takeSlot() // must evict
		if slot < 0 {
			t.Fatal("nothing evictable")
		}
		nc.entries[slot].lpn = next
		nc.entries[slot].state = stClean
		nc.insert(next, slot)
		nc.used++
		next++
	}); n != 0 {
		t.Fatalf("CLOCK eviction allocates %.1f objects, want 0", n)
	}
}

// TestReadHitAllocFree: the full hit path — lookup, pin, hostmodel
// DRAM charge, pooled completion, engine drain — allocates nothing in
// steady state.
func TestReadHitAllocFree(t *testing.T) {
	c, _, ca := testCache(t, 1, DefaultConfig(16))
	st, err := ca.NewStream("t", 0, sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	var sink byte
	cb := func(data []byte, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		sink ^= data[0]
	}
	// Warm: seed four pages, drain their flushes, grow every pool.
	for lpn := 0; lpn < 4; lpn++ {
		st.Write(lpn, pageData(ca.PageSize(), lpn), func(err error) {})
		c.Run()
	}
	for rep := 0; rep < 4; rep++ {
		for lpn := 0; lpn < 4; lpn++ {
			st.Read(lpn, cb)
		}
		c.Run()
	}
	if n := testing.AllocsPerRun(500, func() {
		for lpn := 0; lpn < 4; lpn++ {
			st.Read(lpn, cb)
		}
		c.Run()
	}); n != 0 {
		t.Fatalf("read hit cycle allocates %.1f objects, want 0", n)
	}
	if s := ca.Stats(); s.Misses > 4 {
		t.Fatalf("hit loop missed (%d misses) — not measuring the hit path", s.Misses)
	}
}

// TestInvalidationSendAllocFree: a cross-node invalidation broadcast —
// pooled message, fabric send, delivery, applyInv on the remote
// nodes — allocates nothing once warm.
func TestInvalidationSendAllocFree(t *testing.T) {
	c, _, ca := testCache(t, 4, DefaultConfig(16))
	for rep := 0; rep < 4; rep++ {
		ca.broadcastInv(0, 7)
		c.Run()
	}
	if n := testing.AllocsPerRun(500, func() {
		ca.broadcastInv(0, 7)
		c.Run()
	}); n != 0 {
		t.Fatalf("invalidation broadcast allocates %.1f objects, want 0", n)
	}
	if ca.Stats().InvalidationsSent == 0 {
		t.Fatal("no invalidations sent")
	}
}
