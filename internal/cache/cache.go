// Package cache is the per-node host-DRAM tier above internal/volume:
// a page-granular read/write-back cache whose capacity and hit
// bandwidth are bounded by the node's hostmodel envelope, plus a
// cold-data demotion tier onto the paper's altstore comparator
// devices (tier.go).
//
// Shape of the tier (ROADMAP item 4; paper §6.2, Figures 17/21):
//
//   - Hits are charged through hostmodel.CPU.ReadDRAM, so cache
//     traffic contends with ISP merge and host software for the same
//     DRAM-bandwidth pipe instead of being free.
//   - Eviction is CLOCK over dense, allocation-free state: one entry
//     array, one backing page slab, an open-addressed lpn index, and
//     pooled completion contexts. The lookup/hit/evict path and the
//     invalidation send path are simlint hotpath-clean and pinned at
//     zero steady-state allocations by AllocsPerRun tests.
//   - Dirty pages flush to the volume on the scheduler's Background
//     class (ftl.TagFlush), admitted through the same urgency token
//     budget as GC and rebuild: the cache reports dirty-page pressure
//     via Volume.SetAuxUrgency, so flushing stays invisible to
//     foreground latency until the dirty fraction climbs.
//   - Cross-node coherence rides invalidation messages on a dedicated
//     fabric endpoint (InvalidateEP). Invalidations are broadcast when
//     a write becomes flash-visible — at flush or write-through
//     completion, not at write-admission — so a remote re-read after
//     invalidation observes the new data on flash. Remote copies that
//     are locally dirty or mid-flush are kept (concurrent writers are
//     unordered; the last flusher wins). Clean remote copies drop,
//     in-flight remote fills are poisoned.
//
// Consistency contract: reads and writes racing on the same page are
// unordered (as in the underlying volume); a read concurrent with a
// write may observe either version. A node always observes its own
// writes in order.
package cache

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/hostmodel"
	"repro/internal/sched"
	"repro/internal/volume"
)

// InvalidateEP is the fabric endpoint the cache binds on every node
// for coherence traffic. core.EPUser is used by mapreduce shuffle and
// EPUser+1 by ispvol merge; +2 is reserved here.
const InvalidateEP = core.EPUser + 2

// invBytes is the wire size of one invalidation message: an 8-byte
// lpn plus the usual header's worth of framing.
const invBytes = 16

// ErrOutOfRange marks page numbers outside the volume.
var ErrOutOfRange = errors.New("cache: page out of range")

// Config sizes the cache tier.
type Config struct {
	// CapacityPages is the per-node DRAM cache capacity in pages.
	CapacityPages int
	// FlushDepth bounds concurrent Background flush writes per node
	// (default 8).
	FlushDepth int
	// FlushLowWater / FlushHighWater map the dirty-page fraction onto
	// the Background urgency reported to the scheduler: urgency 0 at
	// or below low water, 1 at or above high water (defaults 0.25 and
	// 0.75) — the same feedback shape the FTL's GC urgency uses.
	FlushLowWater  float64
	FlushHighWater float64
	// Tier, when non-nil, enables cold-page demotion to altstore
	// devices (see tier.go).
	Tier *TierConfig
}

// DefaultConfig returns a cache of capacityPages per node with
// standard flush behaviour and no demotion tier.
func DefaultConfig(capacityPages int) Config {
	return Config{
		CapacityPages:  capacityPages,
		FlushDepth:     8,
		FlushLowWater:  0.25,
		FlushHighWater: 0.75,
	}
}

// entry states.
const (
	stEmpty   uint8 = iota // slot unused
	stFilling              // volume read in flight to populate the frame
	stClean                // matches flash
	stDirty                // newer than flash, awaiting flush
	stWriting              // flush write in flight
	stDead                 // invalidated while pinned; freed at unpin
)

// entry is one page frame's metadata. Dense and index-addressed: the
// frame bytes live at the same slot index in the node's backing slab.
type entry struct {
	lpn      int64
	state    uint8
	ref      bool  // CLOCK reference bit
	poisoned bool  // invalidated while filling: do not install
	redirty  bool  // written while the flush was in flight
	tiered   bool  // the demotion tier holds a copy of this lpn
	pins     int32 // in-flight DRAM hit transfers against the frame
}

// Cache is the cluster-wide cache tier: one nodeCache per node plus
// the shared volume streams and the optional demotion tier.
type Cache struct {
	cluster *core.Cluster
	v       *volume.Volume
	cfg     Config
	ps      int // page size
	pages   int // volume logical pages

	nodes    []*nodeCache
	vstreams [sched.NumClasses]*volume.Stream
	tier     *tier

	freeInv []*invMsg
	invSent int64
}

// invMsg is one pooled invalidation payload, shared by the fan-out of
// a single broadcast and recycled when the last receiver consumed it.
//
//simlint:pool get=getInv put=putInv
type invMsg struct {
	lpn  int64
	refs int32
}

// nodeCache is one node's DRAM cache: dense entries, one page slab,
// an open-addressed lpn index, and pooled completion contexts.
type nodeCache struct {
	c    *Cache
	node int
	cpu  *hostmodel.CPU
	inv  *fabric.Endpoint

	entries []entry
	data    []byte  // CapacityPages * pageSize backing slab
	keys    []int64 // open-addressed index: lpn, or -1 empty
	vals    []int32 // slot for keys[i]
	mask    uint64
	free    []int32 // unused slot stack

	hand      int // CLOCK hand
	flushHand int // dirty-page sweep hand
	used      int
	dirty     int
	flushing  int
	lastUrg   float64

	freeHit   []*hitCtx
	freeFill  []*fillCtx
	freeWack  []*wackCtx
	freeFlush []*flushCtx

	// counters (aggregated in Stats)
	hits           int64
	misses         int64
	writeHits      int64
	writeAllocs    int64
	writeThroughs  int64
	flushes        int64
	flushErrors    int64
	evictions      int64
	invApplied     int64
	invIgnoredDirt int64
	fillsPoisoned  int64
}

// New builds the cache tier over cluster c and volume v. It binds
// InvalidateEP on every node and opens one shared volume stream per
// tenant class for miss fills.
func New(c *core.Cluster, v *volume.Volume, cfg Config) (*Cache, error) {
	if cfg.CapacityPages <= 0 {
		return nil, fmt.Errorf("cache: invalid capacity %d", cfg.CapacityPages)
	}
	if cfg.FlushDepth <= 0 {
		cfg.FlushDepth = 8
	}
	if cfg.FlushLowWater <= 0 {
		cfg.FlushLowWater = 0.25
	}
	if cfg.FlushHighWater <= cfg.FlushLowWater {
		cfg.FlushHighWater = 0.75
	}
	if cfg.FlushHighWater <= cfg.FlushLowWater {
		return nil, fmt.Errorf("cache: flush watermarks %v/%v", cfg.FlushLowWater, cfg.FlushHighWater)
	}
	ca := &Cache{cluster: c, v: v, cfg: cfg, ps: v.PageSize(), pages: v.Pages()}
	for _, cl := range []sched.Class{sched.Realtime, sched.Interactive, sched.Batch} {
		vs, err := v.NewStream(fmt.Sprintf("cache/fill%d", cl), cl)
		if err != nil {
			return nil, err
		}
		ca.vstreams[cl] = vs
	}
	// Index sized to the next power of two >= 4x capacity keeps the
	// linear-probe chains short.
	idxSize := 4
	for idxSize < 4*cfg.CapacityPages {
		idxSize <<= 1
	}
	for n := 0; n < c.Nodes(); n++ {
		nc := &nodeCache{
			c:       ca,
			node:    n,
			cpu:     c.Node(n).CPU,
			entries: make([]entry, cfg.CapacityPages),
			data:    make([]byte, cfg.CapacityPages*ca.ps),
			keys:    make([]int64, idxSize),
			vals:    make([]int32, idxSize),
			mask:    uint64(idxSize - 1),
			free:    make([]int32, 0, cfg.CapacityPages),
		}
		for i := range nc.keys {
			nc.keys[i] = -1
		}
		for i := cfg.CapacityPages - 1; i >= 0; i-- {
			nc.free = append(nc.free, int32(i))
		}
		ep, err := c.Node(n).NetNode().BindEndpoint(InvalidateEP)
		if err != nil {
			return nil, err
		}
		nc.inv = ep
		ep.OnReceive = func(src fabric.NodeID, size int, payload any) {
			m := payload.(*invMsg)
			nc.applyInv(m.lpn)
			m.refs--
			if m.refs == 0 {
				ca.putInv(m)
			}
		}
		ca.nodes = append(ca.nodes, nc)
	}
	if cfg.Tier != nil {
		t, err := newTier(ca, *cfg.Tier)
		if err != nil {
			return nil, err
		}
		ca.tier = t
	}
	return ca, nil
}

// PageSize returns the underlying volume's page size.
func (c *Cache) PageSize() int { return c.ps }

// Pages returns the underlying volume's logical page count.
func (c *Cache) Pages() int { return c.pages }

// ownerNode maps an lpn to the node whose flash card holds it (the
// volume stripes round-robin over node-major cards).
func (c *Cache) ownerNode(lpn int) int {
	return (lpn % c.v.Cards()) / c.cluster.Params.CardsPerNode
}

// Stream is a QoS-classed cache handle for clients on one node: hits
// are served from that node's DRAM, misses fill through the volume at
// the stream's class.
type Stream struct {
	nc    *nodeCache
	vs    *volume.Stream
	class sched.Class
}

// NewStream opens a cache stream for clients running on the given
// node. As with volume streams, Accel and Background are reserved.
func (c *Cache) NewStream(name string, node int, class sched.Class) (*Stream, error) {
	if class >= sched.Accel {
		return nil, fmt.Errorf("cache: class %v not usable by tenants", class)
	}
	if node < 0 || node >= len(c.nodes) {
		return nil, fmt.Errorf("cache: no node %d", node)
	}
	return &Stream{nc: c.nodes[node], vs: c.vstreams[class], class: class}, nil
}

// Class returns the stream's QoS class.
func (st *Stream) Class() sched.Class { return st.class }

// --- index ------------------------------------------------------------

// splitmix64 scrambles the lpn into an index hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

//simlint:hotpath
func (nc *nodeCache) lookup(lpn int64) (int32, bool) {
	i := splitmix64(uint64(lpn)) & nc.mask
	for {
		k := nc.keys[i]
		if k == lpn {
			return nc.vals[i], true
		}
		if k == -1 {
			return 0, false
		}
		i = (i + 1) & nc.mask
	}
}

//simlint:hotpath
func (nc *nodeCache) insert(lpn int64, slot int32) {
	i := splitmix64(uint64(lpn)) & nc.mask
	for nc.keys[i] != -1 {
		i = (i + 1) & nc.mask
	}
	nc.keys[i] = lpn
	nc.vals[i] = slot
}

// deleteIdx removes lpn with backward-shift deletion, keeping probe
// chains tombstone-free.
//
//simlint:hotpath
func (nc *nodeCache) deleteIdx(lpn int64) {
	i := splitmix64(uint64(lpn)) & nc.mask
	for {
		if nc.keys[i] == lpn {
			break
		}
		if nc.keys[i] == -1 {
			return
		}
		i = (i + 1) & nc.mask
	}
	nc.keys[i] = -1
	j := i
	for {
		j = (j + 1) & nc.mask
		k := nc.keys[j]
		if k == -1 {
			return
		}
		h := splitmix64(uint64(k)) & nc.mask
		// Move k back into the hole unless its home slot lies in the
		// (cyclic) gap between the hole and k's position.
		if (j > i && (h <= i || h > j)) || (j < i && (h <= i && h > j)) {
			nc.keys[i] = k
			nc.vals[i] = nc.vals[j]
			nc.keys[j] = -1
			i = j
		}
	}
}

// frame returns the page bytes of one slot.
//
//simlint:hotpath
func (nc *nodeCache) frame(slot int32) []byte {
	ps := nc.c.ps
	return nc.data[int(slot)*ps : int(slot)*ps+ps]
}

// --- slot allocation (CLOCK) ------------------------------------------

// takeSlot returns a free or evictable slot, or -1 when every frame is
// pinned, dirty, or in flight. Eviction is CLOCK: sweep clean unpinned
// entries clearing reference bits; evict the first unreferenced one.
// The evicted entry is removed from the index; the caller installs the
// new page.
//
//simlint:hotpath
func (nc *nodeCache) takeSlot() int32 {
	if n := len(nc.free); n > 0 {
		s := nc.free[n-1]
		nc.free = nc.free[:n-1]
		return s
	}
	n := len(nc.entries)
	for i := 0; i < 2*n; i++ {
		h := nc.hand
		nc.hand++
		if nc.hand == n {
			nc.hand = 0
		}
		e := &nc.entries[h]
		if e.state != stClean || e.pins > 0 {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		nc.deleteIdx(e.lpn)
		e.state = stEmpty
		nc.used--
		nc.evictions++
		return int32(h)
	}
	return -1
}

// release returns a slot to the free stack.
//
//simlint:hotpath
func (nc *nodeCache) releaseSlot(slot int32) {
	e := &nc.entries[slot]
	e.state = stEmpty
	e.ref, e.poisoned, e.redirty, e.tiered = false, false, false, false
	nc.free = append(nc.free, slot)
}

// --- pooled completion contexts ---------------------------------------

// hitCtx carries one read hit across the DRAM-transfer charge.
//
//simlint:pool get=getHit put=putHit
type hitCtx struct {
	nc   *nodeCache
	slot int32
	cb   func([]byte, error)
	fire func()
}

//simlint:hotpath
func (nc *nodeCache) getHit() *hitCtx {
	if n := len(nc.freeHit); n > 0 {
		hx := nc.freeHit[n-1]
		nc.freeHit[n-1] = nil
		nc.freeHit = nc.freeHit[:n-1]
		return hx
	}
	//simlint:allow hotpath (pool-miss path: the context and its bound callback are built once and recycled forever after)
	hx := &hitCtx{nc: nc}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per hit)
	hx.fire = func() {
		nc := hx.nc
		e := &nc.entries[hx.slot]
		cb := hx.cb
		frame := nc.frame(hx.slot)
		e.pins--
		if e.pins == 0 && e.state == stDead {
			// Invalidated while the hit transfer was in flight: the
			// requester still gets the pre-invalidation bytes (the
			// race was already unordered), and the frame is freed.
			nc.releaseSlot(hx.slot)
		}
		nc.putHit(hx)
		cb(frame, nil)
	}
	return hx
}

//simlint:hotpath
func (nc *nodeCache) putHit(hx *hitCtx) {
	hx.cb = nil
	nc.freeHit = append(nc.freeHit, hx)
}

// wackCtx charges the DRAM write of a cache write hit before acking.
//
//simlint:pool get=getWack put=putWack
type wackCtx struct {
	nc   *nodeCache
	cb   func(error)
	fire func()
}

//simlint:hotpath
func (nc *nodeCache) getWack() *wackCtx {
	if n := len(nc.freeWack); n > 0 {
		wx := nc.freeWack[n-1]
		nc.freeWack[n-1] = nil
		nc.freeWack = nc.freeWack[:n-1]
		return wx
	}
	//simlint:allow hotpath (pool-miss path: the context and its bound callback are built once and recycled forever after)
	wx := &wackCtx{nc: nc}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per write)
	wx.fire = func() {
		cb := wx.cb
		wx.nc.putWack(wx)
		cb(nil)
	}
	return wx
}

//simlint:hotpath
func (nc *nodeCache) putWack(wx *wackCtx) {
	wx.cb = nil
	nc.freeWack = append(nc.freeWack, wx)
}

// ackDRAM acks a buffered write after charging one page of DRAM
// bandwidth.
//
//simlint:hotpath
func (nc *nodeCache) ackDRAM(cb func(error)) {
	//simlint:allow escapecheck (inlined pool-miss path: the compiler attributes getWack's audited one-time construction to this call site)
	wx := nc.getWack()
	wx.cb = cb
	nc.cpu.ReadDRAM(nc.c.ps, wx.fire)
}

// fillCtx carries one miss fill: the volume read, the optional install
// into a reserved frame, and the install's DRAM charge.
//
//simlint:pool get=getFill put=putFill
type fillCtx struct {
	nc     *nodeCache
	lpn    int64
	slot   int32 // reserved stFilling slot, or -1 for read-through
	cb     func([]byte, error)
	onVol  func([]byte, error)
	onDRAM func()
}

//simlint:hotpath
func (nc *nodeCache) getFill() *fillCtx {
	if n := len(nc.freeFill); n > 0 {
		fx := nc.freeFill[n-1]
		nc.freeFill[n-1] = nil
		nc.freeFill = nc.freeFill[:n-1]
		return fx
	}
	//simlint:allow hotpath (pool-miss path: the context and its two bound callbacks are built once and recycled forever after)
	fx := &fillCtx{nc: nc}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per fill)
	fx.onVol = func(data []byte, err error) {
		nc := fx.nc
		install := false
		if fx.slot >= 0 {
			e := &nc.entries[fx.slot]
			install = err == nil && e.state == stFilling && e.lpn == fx.lpn && !e.poisoned
			if !install {
				nc.abortFill(fx.slot, fx.lpn)
			}
		}
		if !install {
			cb := fx.cb
			nc.putFill(fx)
			cb(data, err)
			return
		}
		// Deliver the volume buffer to the requester immediately; the
		// install into the frame charges DRAM bandwidth in parallel
		// and only marks the entry clean once that lands.
		copy(nc.frame(fx.slot), data)
		fx.cb(data, nil)
		nc.cpu.ReadDRAM(nc.c.ps, fx.onDRAM)
	}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per fill)
	fx.onDRAM = func() {
		nc := fx.nc
		e := &nc.entries[fx.slot]
		if e.state == stFilling && e.lpn == fx.lpn && !e.poisoned {
			e.state = stClean
			e.ref = true
		} else {
			nc.abortFill(fx.slot, fx.lpn)
		}
		nc.putFill(fx)
	}
	return fx
}

//simlint:hotpath
func (nc *nodeCache) putFill(fx *fillCtx) {
	fx.cb = nil
	nc.freeFill = append(nc.freeFill, fx)
}

// abortFill releases a reserved fill slot if it still belongs to the
// aborted fill (a racing overwrite may have claimed the entry).
//
//simlint:hotpath
func (nc *nodeCache) abortFill(slot int32, lpn int64) {
	e := &nc.entries[slot]
	if e.state != stFilling || e.lpn != lpn {
		return
	}
	nc.deleteIdx(lpn)
	nc.used--
	nc.releaseSlot(slot)
}

// flushCtx carries one Background flush write.
//
//simlint:pool get=getFlush put=putFlush
type flushCtx struct {
	nc     *nodeCache
	lpn    int64
	slot   int32
	onDone func(error)
}

//simlint:hotpath
func (nc *nodeCache) getFlush() *flushCtx {
	if n := len(nc.freeFlush); n > 0 {
		fx := nc.freeFlush[n-1]
		nc.freeFlush[n-1] = nil
		nc.freeFlush = nc.freeFlush[:n-1]
		return fx
	}
	//simlint:allow hotpath (pool-miss path: the context and its bound callback are built once and recycled forever after)
	fx := &flushCtx{nc: nc}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per flush)
	fx.onDone = func(err error) {
		nc := fx.nc
		nc.flushing--
		e := &nc.entries[fx.slot]
		if err != nil {
			nc.flushErrors++
			e.state = stDirty
			nc.dirty++
		} else {
			nc.flushes++
			if e.tiered {
				e.tiered = false
				nc.c.tierRelease(fx.lpn)
			}
			if e.redirty {
				e.redirty = false
				e.state = stDirty
				nc.dirty++
			} else {
				e.state = stClean
			}
			// The write is flash-visible: remote re-reads must miss
			// their stale clean copies and refill from flash.
			nc.c.broadcastInv(nc.node, fx.lpn)
		}
		nc.putFlush(fx)
		nc.pumpFlush()
		nc.pushUrgency()
	}
	return fx
}

//simlint:hotpath
func (nc *nodeCache) putFlush(fx *flushCtx) {
	nc.freeFlush = append(nc.freeFlush, fx)
}

// --- read / write -----------------------------------------------------

// Read fetches a logical page: DRAM hit, tier hit, or volume fill at
// the stream's class. The callback's data slice is only valid inside
// the callback (hits alias the cache frame).
//
//simlint:hotpath
func (st *Stream) Read(lpn int, cb func(data []byte, err error)) {
	nc := st.nc
	c := nc.c
	if lpn < 0 || lpn >= c.pages {
		//simlint:allow hotpath (caller-bug error path, not steady state)
		cb(nil, fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if c.tier != nil {
		c.tier.touch(lpn)
	}
	key := int64(lpn)
	if slot, ok := nc.lookup(key); ok {
		e := &nc.entries[slot]
		if e.state != stFilling {
			nc.hits++
			e.ref = true
			e.pins++
			//simlint:allow escapecheck (inlined pool-miss path: the compiler attributes getHit's audited one-time construction to this call site)
			hx := nc.getHit()
			hx.slot, hx.cb = slot, cb
			nc.cpu.ReadDRAM(c.ps, hx.fire)
			return
		}
		// A fill for this page is already in flight: read through the
		// volume rather than stacking a second fill. (A filling entry
		// implies the page was not demoted when the fill started, and
		// demotion skips resident pages, so flash still has it.)
		nc.misses++
		st.vs.Read(lpn, cb)
		return
	}
	nc.misses++
	if c.tier != nil && c.tier.has(lpn) {
		//simlint:allow hotcall (cold edge: tier hit is the altstore miss path, device-latency bound, not the pinned DRAM hit path)
		c.tier.read(st, lpn, cb)
		return
	}
	nc.fill(st, key, cb)
}

// fill reserves a frame (when one is available) and reads the page
// through the volume at the stream's class; with no frame available
// the read passes through uncached.
//
//simlint:hotpath
func (nc *nodeCache) fill(st *Stream, key int64, cb func([]byte, error)) {
	fx := nc.getFill()
	fx.lpn, fx.cb = key, cb
	fx.slot = nc.takeSlot()
	if fx.slot >= 0 {
		e := &nc.entries[fx.slot]
		e.lpn = key
		e.state = stFilling
		e.ref, e.poisoned, e.redirty, e.tiered = false, false, false, false
		e.pins = 0
		nc.insert(key, fx.slot)
		nc.used++
	}
	st.vs.Read(int(key), fx.onVol)
}

// Write stores a logical page through the cache: write-back on hit or
// when a frame is free (the ack fires after the DRAM copy, and flash
// is updated by a Background flush), write-through when the node's
// frames are all busy. The payload is copied before the callback
// path begins, matching the volume's snapshot semantics.
//
//simlint:hotpath
func (st *Stream) Write(lpn int, data []byte, cb func(err error)) {
	nc := st.nc
	c := nc.c
	if lpn < 0 || lpn >= c.pages {
		//simlint:allow hotpath (caller-bug error path, not steady state)
		cb(fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if c.tier != nil {
		c.tier.touch(lpn)
	}
	key := int64(lpn)
	if slot, ok := nc.lookup(key); ok {
		e := &nc.entries[slot]
		copy(nc.frame(slot), data)
		e.ref = true
		nc.writeHits++
		switch e.state {
		case stClean:
			e.state = stDirty
			nc.dirty++
			nc.ackDRAM(cb)
			nc.pumpFlush()
			nc.pushUrgency()
		case stDirty:
			nc.ackDRAM(cb)
		case stWriting:
			e.redirty = true
			nc.ackDRAM(cb)
		case stFilling:
			// Overwrite racing the fill: the new data wins the frame;
			// the in-flight fill sees the state change and aborts its
			// install (delivering its stale read to its requester —
			// that read/write race was already unordered).
			e.state = stDirty
			nc.dirty++
			nc.ackDRAM(cb)
			nc.pumpFlush()
			nc.pushUrgency()
		default:
			// stDead (pinned corpse): treat as a miss below.
			nc.writeHits--
			nc.writeMiss(st, key, data, cb)
		}
		return
	}
	nc.writeMiss(st, key, data, cb)
}

//simlint:hotpath
func (nc *nodeCache) writeMiss(st *Stream, key int64, data []byte, cb func(error)) {
	slot := nc.takeSlot()
	if slot < 0 {
		// Every frame pinned, dirty, or in flight: write through at
		// the stream's class. Coherence still applies on completion.
		nc.writeThroughs++
		//simlint:allow hotcall (cold edge: write-through only runs when every frame is pinned or dirty; documented not alloc-free)
		//simlint:allow escapecheck (inlined write-through continuation: same cold edge the hotcall audit above covers)
		nc.writeThrough(st, key, data, cb)
		return
	}
	e := &nc.entries[slot]
	e.lpn = key
	e.state = stDirty
	e.ref = true
	e.poisoned, e.redirty = false, false
	e.pins = 0
	e.tiered = nc.c.tierHas(int(key))
	copy(nc.frame(slot), data)
	nc.insert(key, slot)
	nc.used++
	nc.dirty++
	nc.writeAllocs++
	nc.ackDRAM(cb)
	nc.pumpFlush()
	nc.pushUrgency()
}

// writeThrough is the frame-less fallback; it is not pinned alloc-free
// (it only runs when the cache is saturated with dirty or pinned
// frames).
func (nc *nodeCache) writeThrough(st *Stream, key int64, data []byte, cb func(error)) {
	st.vs.Write(int(key), data, func(err error) {
		if err == nil {
			nc.c.tierRelease(key)
			nc.c.broadcastInv(nc.node, key)
		}
		cb(err)
	})
}

// --- flush pump -------------------------------------------------------

// pumpFlush keeps up to FlushDepth Background flush writes in flight
// per node whenever dirty pages exist. Admission rides ftl.TagFlush →
// sched.Background, throttled by the urgency tokens pushUrgency sets.
//
//simlint:hotpath
func (nc *nodeCache) pumpFlush() {
	c := nc.c
	for nc.flushing < c.cfg.FlushDepth && nc.dirty > 0 {
		slot := nc.nextDirty()
		if slot < 0 {
			return
		}
		e := &nc.entries[slot]
		e.state = stWriting
		e.redirty = false
		nc.dirty--
		nc.flushing++
		//simlint:allow escapecheck (inlined pool-miss path: the compiler attributes getFlush's audited one-time construction to this call site)
		fx := nc.getFlush()
		fx.slot, fx.lpn = slot, e.lpn
		// WriteBackground snapshots the frame synchronously, so later
		// overwrites of the frame (which set redirty) cannot corrupt
		// the in-flight flush payload.
		//simlint:allow hotcall (cold edge: Background-class write-back rides flash program latency, off the foreground ack path)
		c.v.WriteBackground(int(e.lpn), nc.frame(slot), fx.onDone)
	}
}

// nextDirty sweeps for a dirty frame. Only called with nc.dirty > 0.
//
//simlint:hotpath
func (nc *nodeCache) nextDirty() int32 {
	n := len(nc.entries)
	for i := 0; i < n; i++ {
		h := nc.flushHand
		nc.flushHand++
		if nc.flushHand == n {
			nc.flushHand = 0
		}
		if nc.entries[h].state == stDirty {
			return int32(h)
		}
	}
	return -1
}

// pushUrgency maps the node's dirty fraction onto the volume's
// auxiliary Background urgency: 0 at or below low water, 1 at or
// above high water — flushing stays a trickle until dirty pressure
// builds, then the scheduler's token budget opens up exactly as it
// does for GC.
//
//simlint:hotpath
func (nc *nodeCache) pushUrgency() {
	c := nc.c
	p := (float64(nc.dirty+nc.flushing)/float64(len(nc.entries)) - c.cfg.FlushLowWater) /
		(c.cfg.FlushHighWater - c.cfg.FlushLowWater)
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	if p == nc.lastUrg {
		return
	}
	nc.lastUrg = p
	c.v.SetAuxUrgency(nc.node, p)
}

// --- invalidation -----------------------------------------------------

//simlint:hotpath
func (c *Cache) getInv() *invMsg {
	if n := len(c.freeInv); n > 0 {
		m := c.freeInv[n-1]
		c.freeInv[n-1] = nil
		c.freeInv = c.freeInv[:n-1]
		return m
	}
	//simlint:allow hotpath (pool-miss path: the message is built once and recycled forever after)
	return &invMsg{}
}

//simlint:hotpath
func (c *Cache) putInv(m *invMsg) {
	c.freeInv = append(c.freeInv, m)
}

// broadcastInv tells every other node that lpn's flash copy changed.
// Fired at flush / write-through completion (flash-visibility), not
// at write admission — see the package comment for the coherence
// contract.
//
//simlint:hotpath
func (c *Cache) broadcastInv(from int, lpn int64) {
	n := len(c.nodes)
	if n <= 1 {
		return
	}
	//simlint:allow escapecheck (inlined pool-miss path: the compiler attributes getInv's audited one-time construction to this call site)
	//simlint:allow poolleak (the n>1 guard above guarantees the fan-out loop hands the message to at least one Send)
	m := c.getInv()
	m.lpn = lpn
	m.refs = int32(n - 1)
	c.invSent += int64(n - 1)
	src := c.nodes[from].inv
	for i := 0; i < n; i++ {
		if i == from {
			continue
		}
		if err := src.Send(fabric.NodeID(i), invBytes, m, nil); err != nil {
			panic(fmt.Sprintf("cache: invalidation send to %d: %v", i, err))
		}
	}
}

// applyInv handles one inbound invalidation on this node.
//
//simlint:hotpath
func (nc *nodeCache) applyInv(lpn int64) {
	slot, ok := nc.lookup(lpn)
	if !ok {
		return
	}
	e := &nc.entries[slot]
	switch e.state {
	case stClean:
		nc.invApplied++
		nc.deleteIdx(lpn)
		nc.used--
		if e.pins > 0 {
			// In-flight hit transfers still alias the frame: mark it
			// dead and free it when the last pin drops.
			e.state = stDead
			return
		}
		nc.releaseSlot(slot)
	case stFilling:
		nc.invApplied++
		nc.fillsPoisoned++
		e.poisoned = true
	case stDirty, stWriting:
		// Local data is concurrent with the remote write; keep ours
		// (last flusher wins).
		nc.invIgnoredDirt++
	}
}

// tierHas/tierRelease are nil-safe tier accessors for the hot paths.
//
//simlint:hotpath
func (c *Cache) tierHas(lpn int) bool {
	return c.tier != nil && c.tier.has(lpn)
}

//simlint:hotpath
func (c *Cache) tierRelease(lpn int64) {
	if c.tier != nil {
		c.tier.release(int(lpn))
	}
}
