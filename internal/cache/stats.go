package cache

import "math"

// Stats is a cluster-wide snapshot of cache-tier activity, aggregated
// over all node caches. Snapshot/Delta follow the hostmodel pattern so
// experiments can window a measurement interval.
type Stats struct {
	Hits    int64
	Misses  int64
	HitRate float64 // Hits / (Hits + Misses)

	WriteHits     int64 // writes absorbed by a resident frame
	WriteAllocs   int64 // write misses that allocated a frame
	WriteThroughs int64 // write misses that bypassed the cache

	Flushes     int64 // Background write-backs completed
	FlushErrors int64
	Evictions   int64 // clean frames reclaimed by CLOCK
	DirtyPages  int64 // currently dirty or flushing frames
	UsedPages   int64 // currently occupied frames

	InvalidationsSent         int64
	InvalidationsApplied      int64 // clean drops + fill poisonings
	InvalidationsIgnoredDirty int64 // kept: local copy dirty/in-flush
	FillsPoisoned             int64

	Demotions    int64 // pages migrated flash -> alt store
	DemoteAborts int64 // migrations cancelled by a racing access
	Promotions   int64 // tier pages re-installed into DRAM
	TierReads    int64 // misses served from the alt store
}

// Stats snapshots the current cluster-wide counters.
func (c *Cache) Stats() Stats {
	var s Stats
	for _, nc := range c.nodes {
		s.Hits += nc.hits
		s.Misses += nc.misses
		s.WriteHits += nc.writeHits
		s.WriteAllocs += nc.writeAllocs
		s.WriteThroughs += nc.writeThroughs
		s.Flushes += nc.flushes
		s.FlushErrors += nc.flushErrors
		s.Evictions += nc.evictions
		s.DirtyPages += int64(nc.dirty + nc.flushing)
		s.UsedPages += int64(nc.used)
		s.InvalidationsApplied += nc.invApplied
		s.InvalidationsIgnoredDirty += nc.invIgnoredDirt
		s.FillsPoisoned += nc.fillsPoisoned
	}
	s.InvalidationsSent = c.invSent
	if t := c.tier; t != nil {
		s.Demotions = t.demotions
		s.DemoteAborts = t.aborts
		s.Promotions = t.promotions
		s.TierReads = t.tierReads
	}
	s.fillRate()
	return s
}

// Delta returns the activity between two snapshots (s - prev). Gauge
// fields (DirtyPages, UsedPages) keep the later snapshot's value.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		Hits:                      s.Hits - prev.Hits,
		Misses:                    s.Misses - prev.Misses,
		WriteHits:                 s.WriteHits - prev.WriteHits,
		WriteAllocs:               s.WriteAllocs - prev.WriteAllocs,
		WriteThroughs:             s.WriteThroughs - prev.WriteThroughs,
		Flushes:                   s.Flushes - prev.Flushes,
		FlushErrors:               s.FlushErrors - prev.FlushErrors,
		Evictions:                 s.Evictions - prev.Evictions,
		DirtyPages:                s.DirtyPages,
		UsedPages:                 s.UsedPages,
		InvalidationsSent:         s.InvalidationsSent - prev.InvalidationsSent,
		InvalidationsApplied:      s.InvalidationsApplied - prev.InvalidationsApplied,
		InvalidationsIgnoredDirty: s.InvalidationsIgnoredDirty - prev.InvalidationsIgnoredDirty,
		FillsPoisoned:             s.FillsPoisoned - prev.FillsPoisoned,
		Demotions:                 s.Demotions - prev.Demotions,
		DemoteAborts:              s.DemoteAborts - prev.DemoteAborts,
		Promotions:                s.Promotions - prev.Promotions,
		TierReads:                 s.TierReads - prev.TierReads,
	}
	d.fillRate()
	return d
}

func (s *Stats) fillRate() {
	if tot := s.Hits + s.Misses; tot > 0 {
		s.HitRate = float64(s.Hits) / float64(tot)
	} else {
		s.HitRate = 0
	}
	if math.IsNaN(s.HitRate) || math.IsInf(s.HitRate, 0) {
		s.HitRate = 0
	}
}
