// Cold-data demotion below the flash volume: pages that go cold in
// the access stream migrate out of flash onto the paper's comparator
// devices (M.2 SSD or disk envelopes from internal/altstore), and
// promote back through the DRAM cache on re-reference. This gives the
// cache tier the full DRAM → flash → alt-store gradient the BlueDBM
// cost argument (§7, Figure 21) reasons about.
//
// The scan is access-driven, never timer-driven: the engine's Run()
// drains every event, so a self-rearming sweep timer would keep the
// simulation alive forever. Instead every Nth cache access (ScanEvery)
// examines a small batch of pages for coldness.
package cache

import (
	"fmt"

	"repro/internal/altstore"
	"repro/internal/sim"
)

// TierConfig enables and sizes the demotion tier.
type TierConfig struct {
	// Kind selects the backing device: "ssd" or "hdd".
	Kind string
	// SSD / HDD size the device envelope (zero value → package default).
	SSD altstore.SSDConfig
	HDD altstore.HDDConfig
	// ColdGap is how many cache accesses a page must go untouched
	// before it is demotion-eligible (default 4096).
	ColdGap int64
	// ScanEvery runs one coldness scan batch per this many cache
	// accesses (default 256).
	ScanEvery int64
	// ScanBatch is how many pages one scan examines (default 32).
	ScanBatch int
	// MaxInflight bounds concurrent demotion migrations (default 4).
	MaxInflight int
}

// DefaultTier returns an SSD-backed demotion tier configuration.
func DefaultTier() *TierConfig {
	return &TierConfig{Kind: "ssd", ColdGap: 4096, ScanEvery: 256, ScanBatch: 32, MaxInflight: 4}
}

// altDev is the device surface the tier drives; satisfied by both
// *altstore.SSD and *altstore.HDD.
type altDev interface {
	Read(size int, sequential bool, done func(error))
	Write(size int, sequential bool, done func(error))
}

// tier is the demotion layer. Cold paths (scan, demote, promote) may
// allocate; only touch and has sit on the cache hot path.
type tier struct {
	c   *Cache
	cfg TierConfig

	devs  []altDev       // one device per node, holding that node's pages
	store map[int][]byte // demoted page contents (never ranged over)

	touchSeq []int64 // touchSeq[lpn]: seq of the last access, 0 = never
	seq      int64
	scanHand int
	inflight int

	demotions  int64
	aborts     int64
	promotions int64
	tierReads  int64
}

func newTier(c *Cache, cfg TierConfig) (*tier, error) {
	if cfg.ColdGap <= 0 {
		cfg.ColdGap = 4096
	}
	if cfg.ScanEvery <= 0 {
		cfg.ScanEvery = 256
	}
	if cfg.ScanBatch <= 0 {
		cfg.ScanBatch = 32
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	t := &tier{
		c:        c,
		cfg:      cfg,
		store:    make(map[int][]byte),
		touchSeq: make([]int64, c.pages),
	}
	eng := c.cluster.Eng
	for n := 0; n < c.cluster.Nodes(); n++ {
		name := fmt.Sprintf("alt%d", n)
		switch cfg.Kind {
		case "ssd":
			sc := cfg.SSD
			if sc.Channels == 0 {
				sc = altstore.DefaultSSD()
			}
			dev, err := altstore.NewSSD(eng, name, sc)
			if err != nil {
				return nil, err
			}
			t.devs = append(t.devs, dev)
		case "hdd":
			hc := cfg.HDD
			if hc.Seek == 0 {
				hc = altstore.DefaultHDD()
			}
			dev, err := altstore.NewHDD(eng, name, hc)
			if err != nil {
				return nil, err
			}
			t.devs = append(t.devs, dev)
		default:
			return nil, fmt.Errorf("cache: unknown tier kind %q", cfg.Kind)
		}
	}
	return t, nil
}

// touch records an access and, every ScanEvery accesses, runs one
// coldness scan batch. Called at the top of every cache read/write,
// so it must stay allocation-free itself (the scan it occasionally
// triggers is a cold path).
//
//simlint:hotpath
func (t *tier) touch(lpn int) {
	t.seq++
	t.touchSeq[lpn] = t.seq
	if t.seq%t.cfg.ScanEvery == 0 {
		//simlint:allow hotcall (cold edge: one scan batch per ScanEvery accesses; the scan itself is a documented cold path)
		t.scanBatch()
	}
}

// has reports whether lpn currently lives in the demotion tier.
//
//simlint:hotpath
func (t *tier) has(lpn int) bool {
	_, ok := t.store[lpn]
	return ok
}

// release drops the tier's copy of lpn: the flash (or cache) copy just
// became authoritative again via a completed write.
//
//simlint:hotpath
func (t *tier) release(lpn int) {
	delete(t.store, lpn)
}

// scanBatch examines the next ScanBatch pages for demotion
// candidates: touched at least once, cold for ColdGap accesses, not
// already demoted, and not resident in any node's DRAM cache.
func (t *tier) scanBatch() {
	c := t.c
	for i := 0; i < t.cfg.ScanBatch; i++ {
		lpn := t.scanHand
		t.scanHand++
		if t.scanHand == c.pages {
			t.scanHand = 0
		}
		if t.inflight >= t.cfg.MaxInflight {
			return
		}
		last := t.touchSeq[lpn]
		if last == 0 || t.seq-last < t.cfg.ColdGap {
			continue
		}
		if _, demoted := t.store[lpn]; demoted {
			continue
		}
		resident := false
		for _, nc := range c.nodes {
			if _, ok := nc.lookup(int64(lpn)); ok {
				resident = true
				break
			}
		}
		if resident {
			continue
		}
		t.demote(lpn)
	}
}

// demote migrates one cold page: Background read from flash, write to
// the owner node's alt device, then trim the flash mapping. Any touch
// of the page while the migration is in flight aborts it (the page is
// evidently not cold).
func (t *tier) demote(lpn int) {
	c := t.c
	t.inflight++
	snap := t.touchSeq[lpn]
	c.v.ReadBackground(lpn, func(data []byte, err error) {
		if err != nil || t.touchSeq[lpn] != snap {
			t.inflight--
			t.aborts++
			return
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		t.store[lpn] = buf
		t.devs[c.ownerNode(lpn)].Write(c.ps, false, func(err error) {
			if err != nil || t.touchSeq[lpn] != snap {
				delete(t.store, lpn)
				t.inflight--
				t.aborts++
				return
			}
			// The alt copy is durable; release the flash page.
			_ = c.v.TrimBackground(lpn)
			t.demotions++
			t.inflight--
		})
	})
}

// read serves a cache miss whose page lives in the tier: device
// envelope, plus fabric round-trip latency when the requesting node is
// not the device's owner. The page promotes back through the
// requester's DRAM cache as dirty, so the flush pump rewrites it to
// flash and release() then drops the tier copy.
func (t *tier) read(st *Stream, lpn int, cb func([]byte, error)) {
	c := t.c
	nc := st.nc
	t.tierReads++
	owner := c.ownerNode(lpn)
	t.devs[owner].Read(c.ps, false, func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		data := t.store[lpn]
		if data == nil {
			// Released while the device read was in flight: flash is
			// authoritative again, fall back to a volume fill.
			nc.fill(st, int64(lpn), cb)
			return
		}
		deliver := func() {
			cb(data, nil)
			t.promote(nc, lpn, data)
		}
		if nc.node != owner {
			hops := c.cluster.Hops(nc.node, owner)
			c.cluster.Eng.After(sim.Time(2*hops)*c.cluster.Params.Net.HopLatency, deliver)
		} else {
			deliver()
		}
	})
}

// promote installs a tier-read page into the requester's cache as a
// dirty, tier-backed frame: the flush pump writes it back to flash
// and only then drops the tier copy, so the page is never ownerless.
func (t *tier) promote(nc *nodeCache, lpn int, data []byte) {
	key := int64(lpn)
	if _, ok := nc.lookup(key); ok {
		return
	}
	slot := nc.takeSlot()
	if slot < 0 {
		return
	}
	e := &nc.entries[slot]
	e.lpn = key
	e.state = stDirty
	e.ref = true
	e.poisoned, e.redirty = false, false
	e.tiered = true
	e.pins = 0
	copy(nc.frame(slot), data)
	nc.insert(key, slot)
	nc.used++
	nc.dirty++
	t.promotions++
	nc.cpu.ReadDRAM(nc.c.ps, nil)
	nc.pumpFlush()
	nc.pushUrgency()
}
