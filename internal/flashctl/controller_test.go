package flashctl

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
)

func testGeometry() nand.Geometry {
	return nand.Geometry{
		Buses: 2, ChipsPerBus: 2, BlocksPerChip: 8, PagesPerBlock: 16,
		PageSize: 8192, OOBSize: 1024,
	}
}

// rig wires a controller to collectors for every handler event.
type rig struct {
	eng  *sim.Engine
	card *nand.Card
	ctl  *Controller

	chunks     map[int][]byte // reassembled read data per tag
	readDone   map[int]error
	corrected  map[int]int
	writeReqs  []int
	writeDone  map[int]error
	eraseDone  map[int]error
	chunkOrder []int // tag sequence of chunk arrivals, to observe interleaving
}

func newRig(t *testing.T, rel nand.Reliability) *rig {
	t.Helper()
	eng := sim.NewEngine()
	card, err := nand.NewCard(eng, "c0", testGeometry(), nand.DefaultTiming(), rel, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		eng: eng, card: card,
		chunks:    make(map[int][]byte),
		readDone:  make(map[int]error),
		corrected: make(map[int]int),
		writeDone: make(map[int]error),
		eraseDone: make(map[int]error),
	}
	h := Handlers{
		ReadChunk: func(tag, offset int, chunk []byte, last bool) {
			if offset != len(r.chunks[tag]) {
				t.Errorf("tag %d: chunk offset %d, want %d (in-order per tag)", tag, offset, len(r.chunks[tag]))
			}
			r.chunks[tag] = append(r.chunks[tag], chunk...)
			r.chunkOrder = append(r.chunkOrder, tag)
		},
		ReadDone:     func(tag, corrected int, err error) { r.readDone[tag] = err; r.corrected[tag] = corrected },
		WriteDataReq: func(tag int) { r.writeReqs = append(r.writeReqs, tag) },
		WriteDone:    func(tag int, err error) { r.writeDone[tag] = err },
		EraseDone:    func(tag int, err error) { r.eraseDone[tag] = err },
	}
	ctl, err := New(eng, card, DefaultConfig(), h)
	if err != nil {
		t.Fatal(err)
	}
	r.ctl = ctl
	return r
}

// writePage drives the full write protocol for one page synchronously.
func (r *rig) writePage(t *testing.T, tag int, addr nand.Addr, data []byte) {
	t.Helper()
	if err := r.ctl.Issue(Command{Op: OpWrite, Tag: tag, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run() // fire WriteDataReq
	found := false
	for _, q := range r.writeReqs {
		if q == tag {
			found = true
		}
	}
	if !found {
		t.Fatalf("no WriteDataReq for tag %d", tag)
	}
	if err := r.ctl.WriteData(tag, data); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if err, ok := r.writeDone[tag]; !ok || err != nil {
		t.Fatalf("write tag %d: done=%v err=%v", tag, ok, err)
	}
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	data := pattern(8192, 1)
	r.writePage(t, 5, addr, data)

	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 9, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if err := r.readDone[9]; err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(r.chunks[9], data) {
		t.Fatal("read data mismatch")
	}
	if r.corrected[9] != 0 {
		t.Fatalf("corrected = %d on a clean card", r.corrected[9])
	}
}

func TestECCCorrectsInjectedErrors(t *testing.T) {
	// Aggressive error rate: several flips per page, all correctable
	// with very high probability at one flip per 64-bit word.
	r := newRig(t, nand.Reliability{BitErrorRate: 5e-5}) // ~3.7 flips/page
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	data := pattern(8192, 2)
	r.writePage(t, 0, addr, data)

	totalCorrected := 0
	for i := 0; i < 10; i++ {
		tag := i % 4
		if err := r.ctl.Issue(Command{Op: OpRead, Tag: tag, Addr: addr}); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
		if err := r.readDone[tag]; err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(r.chunks[tag], data) {
			t.Fatalf("read %d: ECC failed to restore data", i)
		}
		totalCorrected += r.corrected[tag]
		delete(r.chunks, tag)
	}
	if totalCorrected == 0 {
		t.Fatal("error injection produced no corrections; test is vacuous")
	}
	if got := r.ctl.CorrectedBits.Value(); got != int64(totalCorrected) {
		t.Fatalf("CorrectedBits = %d, want %d", got, totalCorrected)
	}
}

func TestBurstInterleavingAcrossTags(t *testing.T) {
	// Two reads on different buses complete their nand phases near-
	// simultaneously; their bursts must interleave on the shared link.
	r := newRig(t, nand.Reliability{})
	a0 := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	a1 := nand.Addr{Bus: 1, Chip: 0, Block: 0, Page: 0}
	r.writePage(t, 0, a0, pattern(8192, 3))
	r.writePage(t, 0, a1, pattern(8192, 4))

	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 1, Addr: a0}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 2, Addr: a1}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.readDone[1] != nil || r.readDone[2] != nil {
		t.Fatalf("reads failed: %v %v", r.readDone[1], r.readDone[2])
	}
	// Both tags appear in the chunk stream, and the stream switches tags
	// at least once before either finishes (interleaving).
	switches := 0
	for i := 1; i < len(r.chunkOrder); i++ {
		if r.chunkOrder[i] != r.chunkOrder[i-1] {
			switches++
		}
	}
	if switches < 2 {
		t.Fatalf("bursts did not interleave: order %v", r.chunkOrder)
	}
}

func TestTagReuseAfterCompletion(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	r.writePage(t, 7, addr, pattern(8192, 5))
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 7, Addr: addr}); err != nil {
		t.Fatalf("tag should be free after write completes: %v", err)
	}
	r.eng.Run()
	if r.readDone[7] != nil {
		t.Fatal(r.readDone[7])
	}
}

func TestTagInUseRejected(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	r.writePage(t, 0, addr, pattern(8192, 6))
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 3, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	err := r.ctl.Issue(Command{Op: OpRead, Tag: 3, Addr: addr})
	if !errors.Is(err, ErrTagInUse) {
		t.Fatalf("err = %v, want ErrTagInUse", err)
	}
	r.eng.Run()
}

func TestBadTagRejected(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: -1}); !errors.Is(err, ErrBadTag) {
		t.Fatalf("tag -1: %v", err)
	}
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 128}); !errors.Is(err, ErrBadTag) {
		t.Fatalf("tag 128: %v", err)
	}
	if err := r.ctl.WriteData(5, make([]byte, 8192)); !errors.Is(err, ErrWrongState) {
		t.Fatalf("WriteData on idle tag: %v", err)
	}
}

func TestWriteDataSizeValidated(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	if err := r.ctl.Issue(Command{Op: OpWrite, Tag: 1, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if err := r.ctl.WriteData(1, make([]byte, 100)); !errors.Is(err, ErrDataSize) {
		t.Fatalf("short write data: %v", err)
	}
	// Correct size still works afterwards.
	if err := r.ctl.WriteData(1, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if r.writeDone[1] != nil {
		t.Fatal(r.writeDone[1])
	}
}

func TestEraseCycle(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 2, Page: 0}
	r.writePage(t, 0, addr, pattern(8192, 7))
	if err := r.ctl.Issue(Command{Op: OpErase, Tag: 4, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if err, ok := r.eraseDone[4]; !ok || err != nil {
		t.Fatalf("erase: done=%v err=%v", ok, err)
	}
	// Page reads as free now.
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 4, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !errors.Is(r.readDone[4], nand.ErrReadFree) {
		t.Fatalf("read after erase: %v, want ErrReadFree", r.readDone[4])
	}
}

func TestReadBadBlockReported(t *testing.T) {
	r := newRig(t, nand.Reliability{})
	addr := nand.Addr{Bus: 1, Chip: 1, Block: 5, Page: 0}
	r.card.MarkBad(addr)
	if err := r.ctl.Issue(Command{Op: OpRead, Tag: 0, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !errors.Is(r.readDone[0], nand.ErrBadBlock) {
		t.Fatalf("err = %v, want ErrBadBlock", r.readDone[0])
	}
	if r.ctl.FreeTags() != r.ctl.Config().Tags {
		t.Fatal("tag leaked after failed read")
	}
}

func TestManyInFlightReadsSaturateCard(t *testing.T) {
	// Keeping many tags in flight should approach the card's 300 MB/s
	// (2 test buses x 150 MB/s) logical read bandwidth.
	r := newRig(t, nand.Reliability{})
	geo := r.card.Geometry()
	pages := 0
	for bus := 0; bus < geo.Buses; bus++ {
		for chip := 0; chip < geo.ChipsPerBus; chip++ {
			for p := 0; p < geo.PagesPerBlock; p++ {
				r.writePage(t, 0, nand.Addr{Bus: bus, Chip: chip, Block: 0, Page: p}, pattern(8192, byte(p)))
				pages++
			}
		}
	}
	start := r.eng.Now()
	done := 0
	tag := 0
	for bus := 0; bus < geo.Buses; bus++ {
		for chip := 0; chip < geo.ChipsPerBus; chip++ {
			for p := 0; p < geo.PagesPerBlock; p++ {
				if err := r.ctl.Issue(Command{Op: OpRead, Tag: tag, Addr: nand.Addr{Bus: bus, Chip: chip, Block: 0, Page: p}}); err != nil {
					t.Fatal(err)
				}
				tag++
				done++
			}
		}
	}
	r.eng.Run()
	for i := 0; i < tag; i++ {
		if err, ok := r.readDone[i]; !ok || err != nil {
			t.Fatalf("read %d: done=%v err=%v", i, ok, err)
		}
	}
	elapsed := (r.eng.Now() - start).Seconds()
	bw := float64(pages*8192) / elapsed
	// Ceiling: per bus, the slower of the bus wire rate and the chips'
	// aggregate cell-read rate, counted in logical (post-ECC) bytes.
	tim := nand.DefaultTiming()
	stored := float64(geo.StoredPageSize())
	perBusStored := float64(geo.ChipsPerBus) * stored / tim.ReadPage.Seconds()
	if w := float64(tim.BusBytesPerSec); w < perBusStored {
		perBusStored = w
	}
	ceiling := float64(geo.Buses) * perBusStored * float64(geo.PageSize) / stored
	if bw < 0.6*ceiling {
		t.Fatalf("achieved %.0f B/s with %d tags in flight; want > 60%% of %.0f", bw, tag, ceiling)
	}
	if bw > ceiling {
		t.Fatalf("achieved %.0f B/s exceeds physical limit %.0f", bw, ceiling)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	card, _ := nand.NewCard(eng, "c", testGeometry(), nand.DefaultTiming(), nand.Reliability{}, 1)
	if _, err := New(eng, card, Config{}, Handlers{}); err == nil {
		t.Fatal("zero config accepted")
	}
	badGeo := testGeometry()
	badGeo.OOBSize = 10 // too small for ECC
	badCard, _ := nand.NewCard(eng, "c2", badGeo, nand.DefaultTiming(), nand.Reliability{}, 1)
	if _, err := New(eng, badCard, DefaultConfig(), Handlers{}); err == nil {
		t.Fatal("OOB mismatch accepted")
	}
}
