// Package flashctl models the BlueDBM flash controller (paper §3.1.1):
// a low-level, thin, bit-error-corrected hardware interface to raw NAND
// chips, buses, blocks and pages.
//
// The interface contract follows the paper exactly:
//
//   - the user issues a tagged command (read / write / erase);
//   - for writes, the controller scheduler asks the user for the data
//     when it is ready to accept it;
//   - read data returns in bursts that may be interleaved and out of
//     order with respect to other in-flight reads, so users needing
//     FIFO semantics must keep completion buffers (flashserver does);
//   - multiple commands must be kept in flight to saturate the device,
//     since a flash operation costs 50 µs or more.
//
// Each controller instance manages one flash card, mirroring the
// Artix-7 chip on each custom flash board. Data moves between the card
// and its user over a serial chip-to-chip channel modelled on the
// paper's 4-lane Aurora link (3.3 GB/s, 0.5 µs).
package flashctl

import (
	"errors"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Controller-level errors.
var (
	ErrTagInUse      = errors.New("flashctl: tag already in flight")
	ErrBadTag        = errors.New("flashctl: tag out of range or idle")
	ErrUncorrectable = errors.New("flashctl: uncorrectable ECC error")
	ErrWrongState    = errors.New("flashctl: command in wrong state")
	ErrDataSize      = errors.New("flashctl: write data must be exactly one page")
)

// Op selects the flash operation of a command.
type Op uint8

// Flash operations.
const (
	OpRead Op = iota
	OpWrite
	OpErase
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Command is one tagged flash request.
type Command struct {
	Op   Op
	Tag  int
	Addr nand.Addr
}

// Handlers are the user-side callback surface of the controller. Any
// nil handler is simply not invoked.
type Handlers struct {
	// ReadChunk delivers one burst of read data. Bursts belonging to
	// different tags may interleave; bursts of one tag arrive in order.
	ReadChunk func(tag int, offset int, chunk []byte, last bool)
	// ReadDone fires after the final burst (or on error, with no data).
	// corrected is the number of ECC-corrected bit flips in the page.
	ReadDone func(tag int, corrected int, err error)
	// WriteDataReq tells the user the controller is ready to accept the
	// page data for a previously issued write command.
	WriteDataReq func(tag int)
	// WriteDone acknowledges a completed (or failed) program.
	WriteDone func(tag int, err error)
	// EraseDone acknowledges a completed (or failed) erase.
	EraseDone func(tag int, err error)
}

// Config sizes the controller.
type Config struct {
	Tags            int   // tag space; in-flight command limit
	BurstBytes      int   // read-data burst granularity on the serial link
	LinkBytesPerSec int64 // card <-> user serial channel bandwidth
	LinkLatency     sim.Time
}

// DefaultConfig matches the paper's flash board: 128 tags, 3.3 GB/s
// Aurora channel at 0.5 µs, 2 KB bursts.
func DefaultConfig() Config {
	return Config{
		Tags:            128,
		BurstBytes:      2048,
		LinkBytesPerSec: 3_300_000_000,
		LinkLatency:     500 * sim.Nanosecond,
	}
}

type tagState uint8

const (
	tagIdle tagState = iota
	tagReading
	tagAwaitingData // write issued, data not yet supplied
	tagWriting
	tagErasing
)

// Controller drives one nand.Card.
type Controller struct {
	eng   *sim.Engine
	card  *nand.Card
	codec *ecc.PageCodec
	cfg   Config
	h     Handlers

	toUser   *sim.Pipe // card -> user (read data)
	fromUser *sim.Pipe // user -> card (write data)

	tags  []tagState
	addrs []nand.Addr

	// stats
	CorrectedBits sim.Counter
	Uncorrectable sim.Counter
	ReadsIssued   sim.Counter
	WritesIssued  sim.Counter
	ErasesIssued  sim.Counter
}

// New builds a controller over card. The card's OOB size must match
// the ECC codec's requirement (PageSize/8).
func New(eng *sim.Engine, card *nand.Card, cfg Config, h Handlers) (*Controller, error) {
	geo := card.Geometry()
	codec, err := ecc.NewPageCodec(geo.PageSize)
	if err != nil {
		return nil, err
	}
	if codec.OOBSize() != geo.OOBSize {
		return nil, fmt.Errorf("flashctl: card OOB %d does not fit ECC need %d", geo.OOBSize, codec.OOBSize())
	}
	if cfg.Tags <= 0 || cfg.BurstBytes <= 0 || cfg.LinkBytesPerSec <= 0 {
		return nil, fmt.Errorf("flashctl: invalid config %+v", cfg)
	}
	name := card.Name()
	return &Controller{
		eng:      eng,
		card:     card,
		codec:    codec,
		cfg:      cfg,
		h:        h,
		toUser:   sim.NewPipe(eng, name+"/link-up", cfg.LinkBytesPerSec, cfg.LinkLatency),
		fromUser: sim.NewPipe(eng, name+"/link-down", cfg.LinkBytesPerSec, cfg.LinkLatency),
		tags:     make([]tagState, cfg.Tags),
		addrs:    make([]nand.Addr, cfg.Tags),
	}, nil
}

// Card returns the underlying nand card (for stats and geometry).
func (c *Controller) Card() *nand.Card { return c.card }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// PageSize returns the logical page size exposed to users.
func (c *Controller) PageSize() int { return c.card.Geometry().PageSize }

// FreeTags returns how many tags are currently idle.
func (c *Controller) FreeTags() int {
	n := 0
	for _, s := range c.tags {
		if s == tagIdle {
			n++
		}
	}
	return n
}

// Issue submits a command. It returns an error synchronously for
// malformed commands (bad tag, tag in use); operation outcomes arrive
// via the handlers.
func (c *Controller) Issue(cmd Command) error {
	if cmd.Tag < 0 || cmd.Tag >= c.cfg.Tags {
		return fmt.Errorf("%w: %d", ErrBadTag, cmd.Tag)
	}
	if c.tags[cmd.Tag] != tagIdle {
		return fmt.Errorf("%w: %d", ErrTagInUse, cmd.Tag)
	}
	c.addrs[cmd.Tag] = cmd.Addr
	switch cmd.Op {
	case OpRead:
		c.tags[cmd.Tag] = tagReading
		c.ReadsIssued.Inc()
		c.startRead(cmd.Tag, cmd.Addr)
	case OpWrite:
		c.tags[cmd.Tag] = tagAwaitingData
		c.WritesIssued.Inc()
		// The scheduler asks for data as soon as the command is queued;
		// backpressure comes from the fromUser link and the nand bus.
		tag := cmd.Tag
		c.eng.After(0, func() {
			if c.h.WriteDataReq != nil {
				c.h.WriteDataReq(tag)
			}
		})
	case OpErase:
		c.tags[cmd.Tag] = tagErasing
		c.ErasesIssued.Inc()
		tag := cmd.Tag
		c.card.EraseBlock(cmd.Addr, func(err error) {
			c.tags[tag] = tagIdle
			if c.h.EraseDone != nil {
				c.h.EraseDone(tag, err)
			}
		})
	default:
		return fmt.Errorf("flashctl: unknown op %v", cmd.Op)
	}
	return nil
}

// WriteData supplies the page for a pending write command. data must be
// exactly one page.
func (c *Controller) WriteData(tag int, data []byte) error {
	if tag < 0 || tag >= c.cfg.Tags {
		return fmt.Errorf("%w: %d", ErrBadTag, tag)
	}
	if c.tags[tag] != tagAwaitingData {
		return fmt.Errorf("%w: tag %d is not awaiting data", ErrWrongState, tag)
	}
	if len(data) != c.PageSize() {
		return fmt.Errorf("%w: got %d, want %d", ErrDataSize, len(data), c.PageSize())
	}
	c.tags[tag] = tagWriting
	addr := c.addrs[tag]
	// Encoding is pure, so it runs now — EncodePage's output buffer
	// doubles as the snapshot of data, replacing a separate defensive
	// copy. Data crosses the serial link in 128-bit bursts (modelled as
	// one serialized transfer), then is programmed.
	raw, encErr := c.codec.EncodePage(data)
	c.fromUser.Transfer(len(data), func() {
		if encErr != nil {
			c.finishWrite(tag, encErr)
			return
		}
		c.card.ProgramPage(addr, raw, func(err error) {
			c.finishWrite(tag, err)
		})
	})
	return nil
}

func (c *Controller) finishWrite(tag int, err error) {
	c.tags[tag] = tagIdle
	if c.h.WriteDone != nil {
		c.h.WriteDone(tag, err)
	}
}

func (c *Controller) startRead(tag int, addr nand.Addr) {
	c.card.ReadPage(addr, func(raw []byte, err error) {
		if err != nil {
			c.finishRead(tag, 0, err)
			return
		}
		// The card hands each read its own copy of the stored page, so
		// the decode can correct bits in place instead of copying.
		res, err := c.codec.DecodePageInPlace(raw)
		if err != nil {
			c.Uncorrectable.Inc()
			c.finishRead(tag, 0, fmt.Errorf("%w: %v: %v", ErrUncorrectable, addr, err))
			return
		}
		c.CorrectedBits.Add(int64(res.Corrected))
		c.streamBursts(tag, res.Data, 0, res.Corrected)
	})
}

// streamBursts ships the decoded page to the user in BurstBytes chunks
// over the shared serial link. Chunks of concurrent reads interleave in
// link-FIFO order — exactly the out-of-order behaviour §3.1.1 warns
// users about.
func (c *Controller) streamBursts(tag int, data []byte, offset, corrected int) {
	end := offset + c.cfg.BurstBytes
	if end > len(data) {
		end = len(data)
	}
	chunk := data[offset:end]
	last := end == len(data)
	c.toUser.Transfer(len(chunk), func() {
		if c.h.ReadChunk != nil {
			c.h.ReadChunk(tag, offset, chunk, last)
		}
		if last {
			c.finishRead(tag, corrected, nil)
			return
		}
		c.streamBursts(tag, data, end, corrected)
	})
}

func (c *Controller) finishRead(tag, corrected int, err error) {
	c.tags[tag] = tagIdle
	if c.h.ReadDone != nil {
		c.h.ReadDone(tag, corrected, err)
	}
}
