package flashctl

import (
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
)

// TestUncorrectableErrorSurfaced injects a bit-error storm dense enough
// that some 64-bit word takes two flips, which SEC-DED must detect and
// the controller must surface as ErrUncorrectable rather than silently
// returning corrupt data.
func TestUncorrectableErrorSurfaced(t *testing.T) {
	eng := sim.NewEngine()
	// ~150 flips per 9216-byte page: two-in-one-word collisions are
	// essentially certain across a few reads.
	rel := nand.Reliability{BitErrorRate: 2e-3}
	card, err := nand.NewCard(eng, "storm", testGeometry(), nand.DefaultTiming(), rel, 9)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[int]error)
	var ctl *Controller
	ctl, err = New(eng, card, DefaultConfig(), Handlers{
		ReadDone:     func(tag, corrected int, err error) { results[tag] = err },
		WriteDataReq: func(tag int) { ctl.WriteData(tag, make([]byte, 8192)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}
	if err := ctl.Issue(Command{Op: OpWrite, Tag: 0, Addr: addr}); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	sawUncorrectable := false
	for i := 0; i < 20; i++ {
		if err := ctl.Issue(Command{Op: OpRead, Tag: 1, Addr: addr}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if err := results[1]; err != nil {
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("read %d: unexpected error %v", i, err)
			}
			sawUncorrectable = true
			break
		}
	}
	if !sawUncorrectable {
		t.Fatal("storm never produced an uncorrectable page; injection too weak")
	}
	if ctl.Uncorrectable.Value() == 0 {
		t.Fatal("uncorrectable counter not incremented")
	}
	if ctl.FreeTags() != ctl.Config().Tags {
		t.Fatal("tag leaked after uncorrectable read")
	}
}

// TestCorrectionRateGrowsWithWear verifies the wear model feeds the
// ECC path: a heavily-cycled block yields more corrected bits per read
// than a fresh one.
func TestCorrectionRateGrowsWithWear(t *testing.T) {
	eng := sim.NewEngine()
	rel := nand.Reliability{BitErrorRate: 3e-6, EnduranceCycles: 100, WearOutProb: 0}
	card, err := nand.NewCard(eng, "wear", testGeometry(), nand.DefaultTiming(), rel, 10)
	if err != nil {
		t.Fatal(err)
	}
	var ctl *Controller
	writeData := make(map[int][]byte)
	ctl, err = New(eng, card, DefaultConfig(), Handlers{
		WriteDataReq: func(tag int) { ctl.WriteData(tag, writeData[tag]) },
	})
	if err != nil {
		t.Fatal(err)
	}

	measure := func(block int, preErase int) int64 {
		addr := nand.Addr{Bus: 0, Chip: 0, Block: block, Page: 0}
		for i := 0; i < preErase; i++ {
			if err := ctl.Issue(Command{Op: OpErase, Tag: 0, Addr: addr}); err != nil {
				t.Fatal(err)
			}
			eng.Run()
		}
		writeData[0] = make([]byte, 8192)
		if err := ctl.Issue(Command{Op: OpWrite, Tag: 0, Addr: addr}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		before := ctl.CorrectedBits.Value()
		for i := 0; i < 400; i++ {
			if err := ctl.Issue(Command{Op: OpRead, Tag: 0, Addr: addr}); err != nil {
				t.Fatal(err)
			}
			eng.Run()
		}
		return ctl.CorrectedBits.Value() - before
	}

	fresh := measure(0, 0)
	worn := measure(1, 300) // 3x endurance -> 4x error rate
	if worn <= fresh {
		t.Fatalf("worn block corrected %d bits vs fresh %d; wear should raise the error rate", worn, fresh)
	}
}
