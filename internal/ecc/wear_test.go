package ecc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/sim"
)

// refDecodePage is a word-level reference decoder: it calls Decode on
// every 64-bit word independently and reassembles the page, with none
// of the page codec's batching. The page codec must match it
// byte-for-byte on every outcome.
func refDecodePage(raw []byte, pageSize int) (data []byte, corrected int, err error) {
	data = make([]byte, pageSize)
	copy(data, raw[:pageSize])
	oob := raw[pageSize:]
	for i := 0; i < pageSize; i += 8 {
		w := binary.LittleEndian.Uint64(data[i:])
		cw, n, derr := Decode(w, oob[i/8])
		if derr != nil {
			return nil, 0, derr
		}
		binary.LittleEndian.PutUint64(data[i:], cw)
		corrected += n
	}
	return data, corrected, nil
}

// TestWearSweptBER sweeps the raw bit-error rate across the range a
// wearing flash block traverses (fresh media through end-of-life) and
// checks, for every page, that the page codec and the word-level
// reference agree exactly: same clean/corrected/uncorrectable verdict,
// same correction count, and byte-identical repaired data.
func TestWearSweptBER(t *testing.T) {
	const pageSize = 512 // 64 words: small enough to sweep densely
	codec, err := NewPageCodec(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(0xecc)
	var clean, correctedPages, uncorrectable int
	// BER per stored bit, from ~fresh media to well past end-of-life.
	for _, ber := range []float64{1e-5, 1e-4, 5e-4, 1e-3, 3e-3, 1e-2} {
		for page := 0; page < 200; page++ {
			data := make([]byte, pageSize)
			rng.Bytes(data)
			raw, err := codec.EncodePage(data)
			if err != nil {
				t.Fatal(err)
			}
			// Inject flips across the whole stored image (data + OOB),
			// like real media: each bit flips with probability ber.
			// Track per-codeword flip counts: SEC-DED only promises to
			// restore words with a single flip; a >=3-bit word error may
			// legally miscorrect (and must still match the reference).
			bits := len(raw) * 8
			flips := 0
			var perWord [pageSize / 8]int
			for b := 0; b < bits; b++ {
				if rng.Float64() < ber {
					FlipBit(raw, b)
					flips++
					if b < pageSize*8 {
						perWord[b/64]++
					} else {
						perWord[(b-pageSize*8)/8]++
					}
				}
			}
			maxPerWord := 0
			for _, n := range perWord {
				if n > maxPerWord {
					maxPerWord = n
				}
			}
			refRaw := make([]byte, len(raw))
			copy(refRaw, raw)

			got, gotErr := codec.DecodePageInPlace(raw)
			refData, refFixed, refErr := refDecodePage(refRaw, pageSize)

			switch {
			case refErr != nil:
				if !errors.Is(gotErr, ErrUncorrectable) {
					t.Fatalf("ber=%g page=%d (%d flips): codec err %v, reference uncorrectable", ber, page, flips, gotErr)
				}
				uncorrectable++
			case gotErr != nil:
				t.Fatalf("ber=%g page=%d (%d flips): codec err %v, reference clean", ber, page, flips, gotErr)
			default:
				if got.Corrected != refFixed {
					t.Fatalf("ber=%g page=%d: corrected %d, reference %d", ber, page, got.Corrected, refFixed)
				}
				if !bytes.Equal(got.Data, refData) {
					t.Fatalf("ber=%g page=%d: repaired data differs from word-level reference", ber, page)
				}
				// Single-bit-per-word storms must restore the original.
				if maxPerWord <= 1 && !bytes.Equal(got.Data, data) {
					t.Fatalf("ber=%g page=%d: repaired data differs from original (fixed=%d)", ber, page, got.Corrected)
				}
				if got.Corrected == 0 {
					clean++
				} else {
					correctedPages++
				}
			}
		}
	}
	// The sweep must actually exercise all three outcomes.
	if clean == 0 || correctedPages == 0 || uncorrectable == 0 {
		t.Fatalf("sweep did not cover all outcomes: clean=%d corrected=%d uncorrectable=%d",
			clean, correctedPages, uncorrectable)
	}
}

// TestDecodeAllocFree pins the word decoder at zero allocations on
// clean, corrected, and uncorrectable outcomes — it runs 64x per page
// on every flash read.
func TestDecodeAllocFree(t *testing.T) {
	w := uint64(0x0123456789abcdef)
	c := Encode(w)
	cases := map[string]struct {
		data  uint64
		check byte
	}{
		"clean":         {w, c},
		"corrected":     {w ^ 1<<17, c},
		"uncorrectable": {w ^ 3, c},
	}
	for name, tc := range cases {
		avg := testing.AllocsPerRun(200, func() {
			Decode(tc.data, tc.check)
		})
		if avg != 0 {
			t.Errorf("%s decode allocates %.1f per call, want 0", name, avg)
		}
	}
}

// TestDecodePageInPlaceAllocFree pins the page decoder at zero
// allocations for clean and single-bit-corrected pages (the
// steady-state read path; uncorrectable pages may allocate for the
// wrapped error).
func TestDecodePageInPlaceAllocFree(t *testing.T) {
	codec, _ := NewPageCodec(512)
	data := make([]byte, 512)
	sim.NewRNG(21).Bytes(data)
	clean, _ := codec.EncodePage(data)
	avg := testing.AllocsPerRun(200, func() {
		if _, err := codec.DecodePageInPlace(clean); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("clean page decode allocates %.1f per call, want 0", avg)
	}
	// Corrected: flip a bit fresh each run (the decoder repairs raw in
	// place, so the flip must be reinjected).
	avg = testing.AllocsPerRun(200, func() {
		FlipBit(clean, 77)
		res, err := codec.DecodePageInPlace(clean)
		if err != nil {
			t.Fatal(err)
		}
		if res.Corrected != 1 {
			t.Fatalf("corrected = %d, want 1", res.Corrected)
		}
	})
	if avg != 0 {
		t.Errorf("corrected page decode allocates %.1f per call, want 0", avg)
	}
}
