package ecc

import (
	"encoding/binary"
	"fmt"
)

// PageCodec protects a whole flash page by splitting it into 64-bit
// words, each carrying one SEC-DED check byte stored in the page's
// out-of-band (OOB) area — the layout real NAND controllers use.
type PageCodec struct {
	pageSize int // data bytes, must be a multiple of 8
}

// NewPageCodec returns a codec for pages of pageSize data bytes.
func NewPageCodec(pageSize int) (*PageCodec, error) {
	if pageSize <= 0 || pageSize%8 != 0 {
		return nil, fmt.Errorf("ecc: page size %d not a positive multiple of 8", pageSize)
	}
	return &PageCodec{pageSize: pageSize}, nil
}

// PageSize returns the protected data size in bytes.
func (c *PageCodec) PageSize() int { return c.pageSize }

// OOBSize returns the number of check bytes per page (one per 8 data
// bytes).
func (c *PageCodec) OOBSize() int { return c.pageSize / 8 }

// StoredSize returns the raw bytes written to flash per page.
func (c *PageCodec) StoredSize() int { return c.pageSize + c.OOBSize() }

// EncodePage appends check bytes to data and returns the raw stored
// image (data || oob). data must be exactly PageSize bytes.
func (c *PageCodec) EncodePage(data []byte) ([]byte, error) {
	if len(data) != c.pageSize {
		return nil, fmt.Errorf("ecc: encode: page is %d bytes, want %d", len(data), c.pageSize)
	}
	out := make([]byte, c.StoredSize())
	copy(out, data)
	oob := out[c.pageSize:]
	for i := 0; i < c.pageSize; i += 8 {
		w := binary.LittleEndian.Uint64(data[i:])
		oob[i/8] = Encode(w)
	}
	return out, nil
}

// DecodeResult reports what page decoding found.
type DecodeResult struct {
	Data      []byte // corrected page data (PageSize bytes)
	Corrected int    // number of single-bit corrections applied
}

// DecodePage verifies and corrects a raw stored image. It returns
// ErrUncorrectable (wrapped, with the word offset) if any word has a
// double-bit error.
func (c *PageCodec) DecodePage(raw []byte) (DecodeResult, error) {
	if len(raw) != c.StoredSize() {
		return DecodeResult{}, fmt.Errorf("ecc: decode: raw is %d bytes, want %d", len(raw), c.StoredSize())
	}
	data := make([]byte, c.pageSize)
	copy(data, raw[:c.pageSize])
	oob := raw[c.pageSize:]
	fixed := 0
	for i := 0; i < c.pageSize; i += 8 {
		w := binary.LittleEndian.Uint64(data[i:])
		cw, n, err := Decode(w, oob[i/8])
		if err != nil {
			return DecodeResult{}, fmt.Errorf("word at byte %d: %w", i, err)
		}
		if n > 0 && cw != w {
			binary.LittleEndian.PutUint64(data[i:], cw)
		}
		fixed += n
	}
	return DecodeResult{Data: data, Corrected: fixed}, nil
}

// DecodePageInPlace verifies and corrects a raw stored image, writing
// corrections directly into raw's data region and returning it as a
// sub-slice. The caller must own raw (the flash read path hands each
// caller a private copy). Semantics otherwise match DecodePage.
//
//simlint:hotpath
func (c *PageCodec) DecodePageInPlace(raw []byte) (DecodeResult, error) {
	if len(raw) != c.StoredSize() {
		//simlint:allow hotpath (size-mismatch error path, never taken steady-state)
		return DecodeResult{}, fmt.Errorf("ecc: decode: raw is %d bytes, want %d", len(raw), c.StoredSize())
	}
	data := raw[:c.pageSize]
	oob := raw[c.pageSize:]
	fixed := 0
	for i := 0; i < c.pageSize; i += 8 {
		w := binary.LittleEndian.Uint64(data[i:])
		cw, n, err := Decode(w, oob[i/8])
		if err != nil {
			//simlint:allow hotpath (uncorrectable-read error path, off the steady-state path)
			return DecodeResult{}, fmt.Errorf("word at byte %d: %w", i, err)
		}
		if n > 0 && cw != w {
			binary.LittleEndian.PutUint64(data[i:], cw)
		}
		fixed += n
	}
	return DecodeResult{Data: data, Corrected: fixed}, nil
}

// FlipBit flips bit (bitIndex mod 8) of byte bitIndex/8 in buf, in
// place. It is the error-injection helper used by nand and by tests.
func FlipBit(buf []byte, bitIndex int) {
	buf[bitIndex/8] ^= 1 << uint(bitIndex%8)
}
