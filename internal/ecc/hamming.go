// Package ecc implements the bit-error correction performed by the
// BlueDBM flash controller (the ECC encoder/decoder pair of paper
// Table 1). It provides a SEC-DED extended Hamming(72,64) code over
// 64-bit words and a page-level codec that protects whole flash pages,
// so the rest of the system sees "logical error-free access into
// flash" (paper §5.1).
package ecc

import (
	"errors"
	"math/bits"
)

// ErrUncorrectable reports a detected double-bit error (or worse) that
// SEC-DED cannot repair.
var ErrUncorrectable = errors.New("ecc: uncorrectable error")

// Code word layout: 72 bits = 64 data bits + 7 Hamming check bits + 1
// overall parity bit. Internally, bits occupy Hamming positions 1..71
// with check bits at the power-of-two positions (1,2,4,8,16,32,64) and
// data bits filling the rest; position 0 holds the overall parity.

// dataPos[i] is the Hamming position (1..71) of data bit i.
var dataPos = buildDataPositions()

// posData[p] is the data-bit index stored at Hamming position p, or -1
// for check-bit positions.
var posData = buildPosData()

func buildDataPositions() [64]int {
	var out [64]int
	i := 0
	for p := 1; p <= 71 && i < 64; p++ {
		if p&(p-1) == 0 { // power of two: check bit
			continue
		}
		out[i] = p
		i++
	}
	if i != 64 {
		panic("ecc: internal: wrong number of data positions")
	}
	return out
}

func buildPosData() [72]int {
	var out [72]int
	for p := range out {
		out[p] = -1
	}
	for i, p := range dataPos {
		out[p] = i
	}
	return out
}

// encTab[j][b] is the contribution of byte j of the data word holding
// value b: the XOR of dataPos for its set bits in bits 0..6 (syndrome
// positions are < 128) and the byte's parity in bit 7. XORing the
// eight entries therefore yields the whole word's Hamming syndrome
// and data parity in one pass — the encoder runs per flash page word
// on every program AND every read (Decode recomputes it), so this
// table is the single hottest path in the simulator.
var encTab = buildEncTab()

func buildEncTab() [8][256]byte {
	var tab [8][256]byte
	for j := 0; j < 8; j++ {
		for b := 0; b < 256; b++ {
			syndrome := 0
			parity := 0
			for k := 0; k < 8; k++ {
				if b>>uint(k)&1 == 1 {
					syndrome ^= dataPos[8*j+k]
					parity ^= 1
				}
			}
			tab[j][b] = byte(syndrome) | byte(parity)<<7
		}
	}
	return tab
}

// Encode computes the 8 check bits for a 64-bit data word. The returned
// byte has the 7 Hamming syndrome bits in bits 0..6 and the overall
// parity in bit 7.
//
//simlint:hotpath
func Encode(data uint64) byte {
	t := encTab[0][byte(data)] ^
		encTab[1][byte(data>>8)] ^
		encTab[2][byte(data>>16)] ^
		encTab[3][byte(data>>24)] ^
		encTab[4][byte(data>>32)] ^
		encTab[5][byte(data>>40)] ^
		encTab[6][byte(data>>48)] ^
		encTab[7][byte(data>>56)]
	syndrome := t & 0x7f
	// Bit 7 of t is the data parity; the check bits at power-of-two
	// positions are exactly the syndrome bits, and each set check bit
	// also contributes to the overall parity.
	parity := (t >> 7) ^ byte(bits.OnesCount8(syndrome)&1)
	return syndrome | parity<<7
}

// Decode checks a received (data, check) pair, correcting a single
// flipped bit anywhere in the 72-bit code word (data, check, or parity
// bit). It returns the corrected data and the number of corrected bits
// (0 or 1). A double-bit error returns ErrUncorrectable.
//
//simlint:hotpath
func Decode(data uint64, check byte) (corrected uint64, fixed int, err error) {
	// Syndrome: recomputed Hamming check bits XOR received check bits.
	syndrome := int(Encode(data)^check) & 0x7f

	// Overall parity of the received 72-bit codeword. A valid codeword
	// has even total parity; odd parity pinpoints a single-bit error.
	totalParity := parity64(data) ^ int(popcount8(check)&1)

	switch {
	case syndrome == 0 && totalParity == 0:
		return data, 0, nil
	case totalParity == 1:
		if syndrome == 0 {
			// The overall parity bit itself flipped; data is intact.
			return data, 1, nil
		}
		// Single-bit error at a Hamming position past the codeword
		// (syndrome 72..127): only a multi-bit error produces it, so
		// report it uncorrectable. Static sentinel — this runs on the
		// per-word read path and must not allocate.
		if syndrome > 71 {
			return data, 0, ErrUncorrectable
		}
		if di := posData[syndrome]; di >= 0 {
			return data ^ 1<<uint(di), 1, nil
		}
		// A check bit flipped; data is intact.
		return data, 1, nil
	default:
		// Non-zero syndrome with even overall parity: double-bit error.
		return data, 0, ErrUncorrectable
	}
}

// parity64 returns the XOR of all bits of v.
func parity64(v uint64) int {
	return bits.OnesCount64(v) & 1
}

// popcount8 counts set bits in a byte.
func popcount8(b byte) int {
	return bits.OnesCount8(b)
}
