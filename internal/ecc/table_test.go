package ecc

import (
	"math/rand"
	"testing"
)

// encodeReference is the original bit-at-a-time encoder. The
// table-driven Encode must agree with it on every input: the tables
// are a pure speed optimization and any divergence silently changes
// what every simulated flash page stores.
func encodeReference(data uint64) byte {
	var syndrome int
	parity := 0
	for i := 0; i < 64; i++ {
		if data>>uint(i)&1 == 1 {
			syndrome ^= dataPos[i]
			parity ^= 1
		}
	}
	for b := 0; b < 7; b++ {
		if syndrome>>uint(b)&1 == 1 {
			parity ^= 1
		}
	}
	return byte(syndrome) | byte(parity)<<7
}

func TestEncodeMatchesReference(t *testing.T) {
	// Structured corners: single bits, runs, all-ones, zero.
	words := []uint64{0, ^uint64(0)}
	for i := 0; i < 64; i++ {
		words = append(words, 1<<uint(i), ^uint64(0)>>uint(i), ^uint64(0)<<uint(i))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		words = append(words, rng.Uint64())
	}
	for _, w := range words {
		if got, want := Encode(w), encodeReference(w); got != want {
			t.Fatalf("Encode(%#x) = %#x, reference = %#x", w, got, want)
		}
	}
}

func TestDecodePageInPlaceMatchesDecodePage(t *testing.T) {
	c, err := NewPageCodec(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, c.PageSize())
		rng.Read(data)
		raw, err := c.EncodePage(data)
		if err != nil {
			t.Fatal(err)
		}
		// Flip up to 2 bits in distinct words (still correctable).
		for f := 0; f < rng.Intn(3); f++ {
			FlipBit(raw, rng.Intn(c.StoredSize()*8))
		}
		rawCopy := append([]byte(nil), raw...)

		res1, err1 := c.DecodePage(raw)
		res2, err2 := c.DecodePageInPlace(rawCopy)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: DecodePage err=%v, in-place err=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if res1.Corrected != res2.Corrected {
			t.Fatalf("trial %d: corrected %d vs in-place %d", trial, res1.Corrected, res2.Corrected)
		}
		if string(res1.Data) != string(res2.Data) {
			t.Fatalf("trial %d: in-place decode data diverges", trial)
		}
	}
}
