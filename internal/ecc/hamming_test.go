package ecc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, w := range []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63} {
		c := Encode(w)
		got, fixed, err := Decode(w, c)
		if err != nil || fixed != 0 || got != w {
			t.Fatalf("clean decode of %#x: got %#x fixed=%d err=%v", w, got, fixed, err)
		}
	}
}

func TestSingleBitDataErrorCorrected(t *testing.T) {
	w := uint64(0x0123456789abcdef)
	c := Encode(w)
	for bit := 0; bit < 64; bit++ {
		bad := w ^ 1<<uint(bit)
		got, fixed, err := Decode(bad, c)
		if err != nil {
			t.Fatalf("bit %d: unexpected error %v", bit, err)
		}
		if fixed != 1 || got != w {
			t.Fatalf("bit %d: got %#x fixed=%d, want original", bit, got, fixed)
		}
	}
}

func TestSingleBitCheckErrorCorrected(t *testing.T) {
	w := uint64(0xfeedface12345678)
	c := Encode(w)
	for bit := 0; bit < 8; bit++ {
		badCheck := c ^ 1<<uint(bit)
		got, fixed, err := Decode(w, badCheck)
		if err != nil {
			t.Fatalf("check bit %d: unexpected error %v", bit, err)
		}
		if fixed != 1 || got != w {
			t.Fatalf("check bit %d: data corrupted: %#x fixed=%d", bit, got, fixed)
		}
	}
}

func TestDoubleBitErrorDetected(t *testing.T) {
	w := uint64(0xaaaa5555aaaa5555)
	c := Encode(w)
	// Two data-bit flips.
	for _, pair := range [][2]int{{0, 1}, {5, 40}, {62, 63}, {0, 63}} {
		bad := w ^ 1<<uint(pair[0]) ^ 1<<uint(pair[1])
		_, _, err := Decode(bad, c)
		if !errors.Is(err, ErrUncorrectable) {
			t.Fatalf("double flip %v: err = %v, want ErrUncorrectable", pair, err)
		}
	}
	// One data + one check-bit flip.
	_, _, err := Decode(w^1<<10, c^1<<2)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("data+check flip: err = %v, want ErrUncorrectable", err)
	}
}

// Property: every (word, single-bit-position) pair round-trips.
func TestSingleBitProperty(t *testing.T) {
	prop := func(w uint64, pos uint8) bool {
		c := Encode(w)
		bit := int(pos) % 72
		// Flip one bit of the 72-bit codeword: data bits 0..63,
		// check bits 64..70, parity bit 71.
		bad, badCheck := w, c
		switch {
		case bit < 64:
			bad ^= 1 << uint(bit)
		case bit < 71:
			badCheck ^= 1 << uint(bit-64)
		default:
			badCheck ^= 1 << 7
		}
		got, fixed, err := Decode(bad, badCheck)
		return err == nil && fixed == 1 && got == w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any double data-bit flip is detected, never miscorrected.
func TestDoubleBitProperty(t *testing.T) {
	prop := func(w uint64, a, b uint8) bool {
		p1, p2 := int(a)%64, int(b)%64
		if p1 == p2 {
			return true
		}
		c := Encode(w)
		bad := w ^ 1<<uint(p1) ^ 1<<uint(p2)
		_, _, err := Decode(bad, c)
		return errors.Is(err, ErrUncorrectable)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPageCodecRoundTrip(t *testing.T) {
	c, err := NewPageCodec(8192)
	if err != nil {
		t.Fatal(err)
	}
	if c.OOBSize() != 1024 || c.StoredSize() != 9216 {
		t.Fatalf("sizes: oob=%d stored=%d", c.OOBSize(), c.StoredSize())
	}
	data := make([]byte, 8192)
	sim.NewRNG(11).Bytes(data)
	raw, err := c.EncodePage(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.DecodePage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrected != 0 || !bytes.Equal(res.Data, data) {
		t.Fatalf("clean round trip corrupted data (fixed=%d)", res.Corrected)
	}
}

func TestPageCodecScatteredErrors(t *testing.T) {
	c, _ := NewPageCodec(512)
	data := make([]byte, 512)
	sim.NewRNG(12).Bytes(data)
	raw, _ := c.EncodePage(data)

	// One flipped bit in each of several distinct words: all corrected.
	for _, word := range []int{0, 7, 33, 63} {
		FlipBit(raw, word*64+word%64)
	}
	res, err := c.DecodePage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrected != 4 {
		t.Fatalf("corrected = %d, want 4", res.Corrected)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("data not restored")
	}
}

func TestPageCodecDoubleErrorInWord(t *testing.T) {
	c, _ := NewPageCodec(512)
	data := make([]byte, 512)
	raw, _ := c.EncodePage(data)
	FlipBit(raw, 100)
	FlipBit(raw, 101) // same 64-bit word
	_, err := c.DecodePage(raw)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
}

func TestPageCodecOOBErrors(t *testing.T) {
	// A single-bit flip in the OOB area must not corrupt data.
	c, _ := NewPageCodec(512)
	data := make([]byte, 512)
	sim.NewRNG(13).Bytes(data)
	raw, _ := c.EncodePage(data)
	FlipBit(raw[512:], 9) // flip a check bit of word 1
	res, err := c.DecodePage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrected != 1 || !bytes.Equal(res.Data, data) {
		t.Fatalf("OOB flip: fixed=%d, data equal=%v", res.Corrected, bytes.Equal(res.Data, data))
	}
}

func TestPageCodecSizeValidation(t *testing.T) {
	if _, err := NewPageCodec(0); err == nil {
		t.Fatal("page size 0 accepted")
	}
	if _, err := NewPageCodec(13); err == nil {
		t.Fatal("non-multiple-of-8 page size accepted")
	}
	c, _ := NewPageCodec(64)
	if _, err := c.EncodePage(make([]byte, 63)); err == nil {
		t.Fatal("wrong-length encode accepted")
	}
	if _, err := c.DecodePage(make([]byte, 10)); err == nil {
		t.Fatal("wrong-length decode accepted")
	}
}

// Property: random single-bit storms with at most one flip per word are
// always fully repaired.
func TestPageCodecStormProperty(t *testing.T) {
	codec, _ := NewPageCodec(256) // 32 words
	prop := func(seed uint64, wordMask uint32) bool {
		rng := sim.NewRNG(seed)
		data := make([]byte, 256)
		rng.Bytes(data)
		raw, err := codec.EncodePage(data)
		if err != nil {
			return false
		}
		flips := 0
		for w := 0; w < 32; w++ {
			if wordMask>>uint(w)&1 == 1 {
				FlipBit(raw, w*64+rng.Intn(64))
				flips++
			}
		}
		res, err := codec.DecodePage(raw)
		return err == nil && res.Corrected == flips && bytes.Equal(res.Data, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodePage8K(b *testing.B) {
	c, _ := NewPageCodec(8192)
	data := make([]byte, 8192)
	sim.NewRNG(1).Bytes(data)
	raw, _ := c.EncodePage(data)
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodePage(raw); err != nil {
			b.Fatal(err)
		}
	}
}
