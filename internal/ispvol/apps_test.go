package ispvol_test

// Tests for the distributed application queries: cluster
// nearest-neighbor (LSH candidate fan-out + inline Hamming compare)
// and the migrating in-store graph traversal, cross-validated against
// the in-memory references and the host-mediated twins.

import (
	"strings"
	"testing"

	"repro/internal/accel/graph"
	"repro/internal/accel/lsh"
	"repro/internal/core"
	"repro/internal/ispvol"
	"repro/internal/sched"
	"repro/internal/volume"
	"repro/internal/workload"
)

// nnFixture seeds nItems near-duplicate items into volume pages
// [0, nItems) and returns the stack plus the dataset and query.
func nnFixture(t *testing.T, nodes, nItems int) (*core.Cluster, *sched.Scheduler, *volume.Volume, *ispvol.System, map[int][]byte, []byte) {
	t.Helper()
	ps := core.DefaultParams(1).Geometry.PageSize
	items, query, err := workload.NearDuplicateSet(nItems, ps, 7, 40, 41)
	if err != nil {
		t.Fatal(err)
	}
	base := workload.RandomPages(99)
	fill := func(idx int, page []byte) {
		if idx < nItems {
			copy(page, items[idx])
		} else {
			base(idx, page)
		}
	}
	c, s, v, sys := testSystem(t, nodes, ispvol.DefaultConfig(), fill)
	if nItems > v.Pages() {
		t.Fatalf("%d items exceed the %d-page volume", nItems, v.Pages())
	}
	return c, s, v, sys, items, query
}

// TestDistributedNNMatchesBruteAndHost: the distributed engines, the
// host-mediated software scan and the in-memory brute force must
// agree on the best candidate (including the lowest-id tie-break),
// and the distributed arm must finish the same candidate list faster.
func TestDistributedNNMatchesBruteAndHost(t *testing.T) {
	const nItems = 72
	_, s, _, sys, items, query := nnFixture(t, 2, nItems)

	// LSH candidates: the hash tables' union bucket for the query.
	ix, err := lsh.NewIndex(len(query), 8, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < nItems; id++ {
		if err := ix.Add(id, items[id]); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := ix.Candidates(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 8 {
		t.Fatalf("only %d LSH candidates; fixture too sparse to be meaningful", len(ids))
	}
	lpns := append([]int(nil), ids...) // item id == its volume page

	dist, err := sys.NearestNeighborSync(0, query, ids, lpns)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sys.NearestNeighborHostSync(0, query, ids, lpns)
	if err != nil {
		t.Fatal(err)
	}
	cand := map[int][]byte{}
	for _, id := range ids {
		cand[id] = items[id]
	}
	bruteID, bruteDist := lsh.NearestBrute(query, cand)

	for _, r := range []*ispvol.NNResult{dist, host} {
		if r.FailedPages != 0 {
			t.Fatalf("failed pages: %+v", r)
		}
		if r.Comparisons != int64(len(ids)) {
			t.Fatalf("compared %d of %d candidates", r.Comparisons, len(ids))
		}
		if r.BestID != bruteID || r.BestDist != bruteDist {
			t.Fatalf("best (%d, %d) != brute force (%d, %d)", r.BestID, r.BestDist, bruteID, bruteDist)
		}
	}
	if dist.CmpPerSec <= host.CmpPerSec {
		t.Fatalf("distributed NN (%.0f cmp/s) should beat host-mediated (%.0f cmp/s)",
			dist.CmpPerSec, host.CmpPerSec)
	}
	// The engines' reads went through the scheduler's Accel class.
	var accelOps int64
	for _, cs := range s.Snapshot().Classes {
		if cs.Class == "accel" {
			accelOps = cs.Ops
		}
	}
	if accelOps < int64(len(ids)) {
		t.Fatalf("accel class saw %d ops, want >= %d: engine reads bypassed admission", accelOps, len(ids))
	}
}

// TestNNEmptyAndMismatchedCandidates: edge cases fail cleanly.
func TestNNEmptyAndMismatchedCandidates(t *testing.T) {
	_, _, _, sys, _, query := nnFixture(t, 2, 16)
	res, err := sys.NearestNeighborSync(0, query, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestID != -1 || res.Comparisons != 0 {
		t.Fatalf("empty candidate list produced %+v", res)
	}
	if _, err := sys.NearestNeighborSync(0, query, []int{1, 2}, []int{1}); err == nil {
		t.Fatal("mismatched ids/pages accepted")
	}
}

// walkFixture stores a graph in volume pages [0, V) and returns the
// stack plus the stored graph.
func walkFixture(t *testing.T, nodes int, gcfg graph.Config) (*core.Cluster, *volume.Volume, *ispvol.System, *graph.Graph) {
	t.Helper()
	ps := core.DefaultParams(1).Geometry.PageSize
	adj := graph.GenAdjacency(gcfg, ps)
	base := workload.RandomPages(3)
	fill := func(idx int, page []byte) {
		if idx < gcfg.Vertices {
			enc, err := graph.EncodePage(adj[idx], ps)
			if err != nil {
				panic(err)
			}
			copy(page, enc)
		} else {
			base(idx, page)
		}
	}
	c, _, v, sys := testSystem(t, nodes, ispvol.DefaultConfig(), fill)
	if gcfg.Vertices > v.Pages() {
		t.Fatalf("%d vertices exceed the %d-page volume", gcfg.Vertices, v.Pages())
	}
	addrs, err := v.PhysMap(0, gcfg.Vertices)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewStored(c, gcfg, adj, addrs)
	if err != nil {
		t.Fatal(err)
	}
	return c, v, sys, g
}

// TestWalkMigrateMatchesReference: the migrating walk must replay
// exactly the in-memory reference sequence, per walker, with the
// walker state (checksum + RNG) surviving every fabric hop.
func TestWalkMigrateMatchesReference(t *testing.T) {
	gcfg := graph.Config{Vertices: 150, AvgDegree: 6, Seed: 7}
	_, _, sys, g := walkFixture(t, 3, gcfg)
	cfg := graph.TraverseConfig{Start: 4, Steps: 50, Seed: 13, Walkers: 3}
	res, err := sys.WalkMigrateSync(0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != int64(cfg.Steps*cfg.Walkers) {
		t.Fatalf("steps %d, want %d", res.Steps, cfg.Steps*cfg.Walkers)
	}
	for w := 0; w < cfg.Walkers; w++ {
		if want := graph.ReferenceWalkWalker(g, cfg, w); res.VisitSums[w] != want {
			t.Fatalf("walker %d checksum %x != reference %x", w, res.VisitSums[w], want)
		}
	}
	if res.VisitSum != graph.CombineVisitSums(res.VisitSums) {
		t.Fatal("aggregate checksum mismatch")
	}
	// A volume-striped graph on 3 nodes must actually migrate.
	if res.Migrations == 0 {
		t.Fatal("walk never migrated between nodes")
	}
}

// TestWalkMigrateMatchesHostTraversal: the migrating arm and the
// host-centric graph.Traverse visit identical vertex sequences over
// the same stored graph.
func TestWalkMigrateMatchesHostTraversal(t *testing.T) {
	gcfg := graph.Config{Vertices: 120, AvgDegree: 5, Seed: 19}
	c, _, sys, g := walkFixture(t, 2, gcfg)
	cfg := graph.TraverseConfig{Start: 2, Steps: 40, Seed: 23, Walkers: 2, Mode: graph.ModeHRHF}
	mig, err := sys.WalkMigrateSync(0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	home, err := graph.Traverse(c, 0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mig.VisitSum != home.VisitSum {
		t.Fatalf("migrating walk %x != home-node walk %x", mig.VisitSum, home.VisitSum)
	}
}

// TestWalkMigrateFailingRead: a walker whose adjacency read fails
// must fail the traversal with walker context, not truncate it. The
// stack is left unseeded, so every adjacency read hits unwritten
// flash and fails at the device.
func TestWalkMigrateFailingRead(t *testing.T) {
	p := core.DefaultParams(2)
	p.Geometry.BlocksPerChip = 4
	p.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := volume.New(c, s, volume.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ispvol.New(c, s, v, ispvol.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gcfg := graph.Config{Vertices: 30, AvgDegree: 4, Seed: 5}
	adj := graph.GenAdjacency(gcfg, c.Params.PageSize())
	addrs := make([]core.PageAddr, gcfg.Vertices)
	for vx := range addrs {
		addrs[vx] = core.LinearPage(c.Params, 1, vx)
	}
	bad, err := graph.NewStored(c, gcfg, adj, addrs)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.WalkMigrateSync(0, bad, graph.TraverseConfig{Start: 1, Steps: 20, Seed: 3, Walkers: 2})
	if err == nil {
		t.Fatal("failing reads reported success")
	}
	if !strings.Contains(err.Error(), "walker") {
		t.Fatalf("error lost walker context: %v", err)
	}
}
