package ispvol

// In-store graph traversal with walker migration (paper §7.2 promoted
// to an end-to-end cluster scenario): instead of a fixed home node
// pulling every adjacency page to itself — the ISP-F/H-F/H-RH-F
// access paths Figure 20 compares per-access — the WALK migrates to
// the data. The engine at the node owning the current vertex reads
// the adjacency page locally (admitted through sched's Accel class,
// issued device-side), folds the visit into the walker's checksum,
// picks the next vertex, and forwards the walker's state — current
// vertex, steps left, checksum, RNG state; ~56 bytes — over the
// integrated storage network to the next vertex's owner. Each
// dependent lookup therefore costs one local flash read plus at most
// one tiny state hop, instead of a full page crossing the network
// (and, on the H-RH-F path, two host software stacks) per step. This
// is the network-latency argument of §3.2 turned into an application:
// the fabric's sub-microsecond hops make walker state cheap to move,
// and the flash never moves at all.
//
// The walker's RNG state rides the message (sim.RNG.State /
// NewRNGFromState), so a migrating walk replays EXACTLY the vertex
// sequence of graph.ReferenceWalkWalker and of the host-centric
// graph.Traverse under the same TraverseConfig — the VisitSum
// cross-validation that makes the speedup claim checkable.

import (
	"errors"
	"fmt"

	"repro/internal/accel/graph"
	"repro/internal/sim"
)

// walkerStateBytes is the on-wire size of a migrating walker: query
// id, walker id, current vertex, steps left, checksum, RNG state,
// step/migration counters — the whole walk fits in a header-and-
// change message.
const walkerStateBytes = 56

// WalkResult reports one migrating traversal.
type WalkResult struct {
	Steps      int64
	Walkers    int
	Migrations int64 // walker-state forwards between nodes
	// VisitSum / VisitSums mirror graph.Result: per-walker folded
	// checksums, aggregated as walker 0's sum (one walker) or the XOR
	// (several), so they compare directly against graph.Traverse and
	// graph.ReferenceWalkWalker.
	VisitSum      uint64
	VisitSums     []uint64
	Elapsed       sim.Time
	LookupsPerSec float64
}

// walkerMsg is a walker's migrating state. The *graph.Graph handle
// stands in for the vertex->page directory every node's ISP holds (a
// replicated table in hardware); only the state fields are charged on
// the wire.
type walkerMsg struct {
	query      uint64
	origin     int
	walker     int
	g          *graph.Graph
	current    int // vertex whose adjacency page is read next
	stepsLeft  int
	sum        uint64
	rngState   uint64
	steps      int64 // completed lookups
	migrations int64
}

// walkDoneMsg reports a finished (or failed) walker to the origin.
type walkDoneMsg struct {
	query      uint64
	walker     int
	steps      int64
	sum        uint64
	migrations int64
	err        string
}

// walkQuery is the origin-side completion state.
type walkQuery struct {
	sys       *System
	id        uint64
	origin    int
	remaining int
	res       *WalkResult
	firstErr  error
	start     sim.Time
	done      func(*WalkResult, error)
}

// WalkMigrate runs the migrating in-store traversal of g under cfg
// (cfg.Mode is ignored — the access path IS the migration). done
// fires in virtual time once every walker has reported back to origin
// and the result has DMA'd into its host's memory; the caller drives
// the engine. A failed lookup fails the run, exactly like
// graph.Traverse.
func (sys *System) WalkMigrate(origin int, g *graph.Graph, cfg graph.TraverseConfig, done func(*WalkResult, error)) {
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	if cfg.Steps <= 0 {
		done(nil, fmt.Errorf("ispvol: steps must be positive"))
		return
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = 1
	}
	q := &walkQuery{
		sys:       sys,
		origin:    origin,
		remaining: cfg.Walkers,
		res: &WalkResult{
			Walkers:   cfg.Walkers,
			VisitSums: make([]uint64, cfg.Walkers),
		},
		start: sys.c.Eng.Now(),
		done:  done,
	}
	q.id = sys.startQuery(q)
	// One software + RPC charge launches every walker: the host seeds
	// each walker's state and ships it to its first vertex's owner.
	node := sys.nodes[origin].node
	node.Host.ChargeSoftware(func() {
		node.Host.RPC(func() {
			for w := 0; w < cfg.Walkers; w++ {
				rng := sim.NewRNG(cfg.WalkerSeed(w))
				start := cfg.WalkerStart(w, g.Vertices())
				m := &walkerMsg{
					query:     q.id,
					origin:    origin,
					walker:    w,
					g:         g,
					current:   start,
					stepsLeft: cfg.Steps,
					rngState:  rng.State(),
				}
				sys.deliver(origin, g.OwnerOf(start), walkerStateBytes, m)
			}
		})
	})
}

// runWalkStep executes one dependent lookup of a migrating walker on
// the node owning its current vertex, then forwards the state (or
// reports completion).
func (sys *System) runWalkStep(ns *nodeISP, m *walkerMsg) {
	self := ns.node.ID()
	addr := m.g.PageOf(m.current)
	if addr.Node != self {
		// Walkers are always delivered to OwnerOf(current), and the
		// graph's address snapshot is immutable (read-stable store),
		// so a misdelivery is a routing bug, not a recoverable state.
		panic(fmt.Sprintf("ispvol: walker %d for vertex %d (node %d) delivered to node %d",
			m.walker, m.current, addr.Node, self))
	}
	fail := func(err error) {
		sys.deliver(self, m.origin, 48, &walkDoneMsg{
			query: m.query, walker: m.walker, steps: m.steps, sum: m.sum,
			migrations: m.migrations,
			err:        fmt.Sprintf("walker %d at vertex %d: %v", m.walker, m.current, err),
		})
	}
	// The lookup holds an acceleration unit for the flash read, and
	// the read itself is admitted through the node's Accel stream —
	// walker traffic is a scheduled tenant like every other engine.
	// (The decode runs after the unit frees: parsing an adjacency
	// list is free in the model, like the engines' inline compares.)
	ns.units.Submit(func(unitDone func()) {
		sys.readPage(self, pageRef{addr: addr}, func(data []byte, err error) {
			unitDone()
			if err != nil {
				fail(err)
				return
			}
			nbs, derr := graph.DecodePage(data)
			if derr != nil {
				fail(derr)
				return
			}
			m.steps++
			rng := sim.NewRNGFromState(m.rngState)
			m.sum, m.current = graph.AdvanceStep(m.sum, m.current, nbs, m.g.Vertices(), rng)
			m.rngState = rng.State()
			m.stepsLeft--
			if m.stepsLeft == 0 {
				sys.deliver(self, m.origin, 48, &walkDoneMsg{
					query: m.query, walker: m.walker, steps: m.steps, sum: m.sum,
					migrations: m.migrations,
				})
				return
			}
			next := m.g.OwnerOf(m.current)
			if next == self {
				// Next vertex is local: keep walking, no network hop.
				sys.runWalkStep(ns, m)
				return
			}
			m.migrations++
			sys.deliver(self, next, walkerStateBytes, m)
		})
	})
}

// part merges one walker's completion into the origin state.
func (q *walkQuery) part(msg any) {
	m := msg.(*walkDoneMsg)
	q.res.Steps += m.steps
	q.res.Migrations += m.migrations
	q.res.VisitSums[m.walker] = m.sum
	if m.err != "" && q.firstErr == nil {
		q.firstErr = errors.New("ispvol: " + m.err)
	}
	q.remaining--
	if q.remaining > 0 {
		return
	}
	q.sys.finishQuery(q.id)
	if q.firstErr != nil {
		q.done(nil, q.firstErr)
		return
	}
	q.res.VisitSum = graph.CombineVisitSums(q.res.VisitSums)
	q.sys.dmaToHost(q.origin, 16+8*len(q.res.VisitSums), func() {
		q.res.Elapsed = q.sys.c.Eng.Now() - q.start
		if q.res.Elapsed > 0 {
			q.res.LookupsPerSec = float64(q.res.Steps) / q.res.Elapsed.Seconds()
		}
		q.done(q.res, nil)
	})
}

// WalkMigrateSync runs WalkMigrate and drains the engine; for tests
// and examples with nothing else in flight.
func (sys *System) WalkMigrateSync(origin int, g *graph.Graph, cfg graph.TraverseConfig) (*WalkResult, error) {
	var res *WalkResult
	var rerr error
	fired := false
	sys.WalkMigrate(origin, g, cfg, func(r *WalkResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: migrating traversal never completed")
	}
	return res, rerr
}
