package ispvol

// Distributed table scan (the paper's §8 "SQL Database Acceleration"
// direction, ported to the volume): selection and projection pushed
// down into every storage device that holds a shard of the table.
// Each node's engine filters its local pages at line rate and only
// qualifying records cross the network to the origin; the host
// baseline hauls every page over PCIe and filters in software.

import (
	"fmt"
	"sort"

	"repro/internal/accel/tablescan"
	"repro/internal/hostmodel"
	"repro/internal/rfs"
	"repro/internal/sim"

	"repro/internal/accel/search"
)

// workerState is one host worker thread of a host-mediated query.
type workerState struct {
	th *hostmodel.Thread
	sc *search.Scanner
}

// ScanResult reports one distributed table-scan query.
type ScanResult struct {
	Rows        int64 // rows scanned (all nodes)
	Matches     []tablescan.Record
	Pages       int
	FailedPages int
	BytesToHost int64 // data that crossed into the origin host's memory
	Elapsed     sim.Time
	RowsPerSec  float64
}

// scanStartMsg fans a partition out to one node's filter engine.
type scanStartMsg struct {
	query  uint64
	origin int
	pred   tablescan.Predicate
	refs   []pageRef
}

// scanPartMsg returns a partition's qualifying records to the origin.
type scanPartMsg struct {
	query   uint64
	node    int
	rows    int64
	matches []tablescan.Record
	failed  int
}

// scanQuery is the origin-side merge state.
type scanQuery struct {
	sys          *System
	id           uint64
	origin       int
	pages        int
	pendingParts int
	rows         int64
	matches      []tablescan.Record
	failed       int
	start        sim.Time
	done         func(*ScanResult, error)
}

// TableScan runs the distributed ISP-F table scan over logical pages
// [lo, hi): one filter engine per node, predicate evaluated next to
// the flash, only matching records shipped to the origin and DMA'd to
// its host. Asynchronous like Search.
//
//simlint:once done
func (sys *System) TableScan(origin, lo, hi int, pred tablescan.Predicate, done func(*ScanResult, error)) {
	parts, err := sys.partition(lo, hi)
	if err != nil {
		done(nil, err)
		return
	}
	sys.launchTableScan(origin, hi-lo, parts, pred, done)
}

// TableScanFile runs the distributed table scan over a file of a
// cluster RFS: the origin resolves the file's cluster-wide physical
// pages (Figure 8 step 1), and one filter engine per node evaluates
// the predicate next to the flash through the scheduler's Accel
// admission. Like SearchFile, the file must stay read-stable for the
// query.
//
//simlint:once done
func (sys *System) TableScanFile(origin int, f *rfs.File, pred tablescan.Predicate, done func(*ScanResult, error)) {
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		done(nil, err)
		return
	}
	sys.launchTableScan(origin, len(addrs), sys.partitionAddrs(addrs), pred, done)
}

// launchTableScan registers the origin-side merge state and fans the
// partitions out to the per-node filter engines.
func (sys *System) launchTableScan(origin, pages int, parts [][]pageRef,
	pred tablescan.Predicate, done func(*ScanResult, error)) {
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	q := &scanQuery{
		sys:    sys,
		origin: origin,
		pages:  pages,
		start:  sys.c.Eng.Now(),
		done:   done,
	}
	q.id = sys.startQuery(q)
	for _, refs := range parts {
		if len(refs) > 0 {
			q.pendingParts++
		}
	}
	if q.pendingParts == 0 {
		q.finish()
		return
	}
	node := sys.nodes[origin].node
	node.Host.ChargeSoftware(func() {
		node.Host.RPC(func() {
			for n, refs := range parts {
				if len(refs) == 0 {
					continue
				}
				msg := &scanStartMsg{query: q.id, origin: origin, pred: pred, refs: refs}
				sys.deliver(origin, n, 32+16*len(refs), msg)
			}
		})
	})
}

// runScanPart executes one node's filter engine over its partition.
func (sys *System) runScanPart(ns *nodeISP, m *scanStartMsg) {
	res := &scanPartMsg{query: m.query, node: ns.node.ID()}
	sys.runEngine(ns.node.ID(), m.refs, func(_ int, _ pageRef, data []byte, err error) {
		if err != nil {
			res.failed++
			return
		}
		matches, rows, ferr := tablescan.FilterPage(data, m.pred)
		if ferr != nil {
			res.failed++
			return
		}
		res.rows += rows
		res.matches = append(res.matches, matches...)
	}, func() {
		size := 32 + tablescan.RecordSize*len(res.matches)
		sys.deliver(ns.node.ID(), m.origin, size, res)
	})
}

// part merges one node's records into the origin state.
func (q *scanQuery) part(msg any) {
	m := msg.(*scanPartMsg)
	q.rows += m.rows
	q.matches = append(q.matches, m.matches...)
	q.failed += m.failed
	q.pendingParts--
	if q.pendingParts == 0 {
		q.finish()
	}
}

// finish orders the merged records and DMAs them to the origin host.
func (q *scanQuery) finish() {
	q.sys.finishQuery(q.id)
	sort.Slice(q.matches, func(i, j int) bool { return q.matches[i].ID < q.matches[j].ID })
	res := &ScanResult{
		Rows:        q.rows,
		Matches:     q.matches,
		Pages:       q.pages,
		FailedPages: q.failed,
		BytesToHost: int64(len(q.matches)) * tablescan.RecordSize,
	}
	q.sys.dmaToHost(q.origin, int(res.BytesToHost), func() {
		res.Elapsed = q.sys.c.Eng.Now() - q.start
		if res.Elapsed > 0 {
			res.RowsPerSec = float64(res.Rows) / res.Elapsed.Seconds()
		}
		q.done(res, nil)
	})
}

// TableScanHost runs the same query host-mediated: every page of the
// range crosses PCIe into the origin host, where worker threads
// evaluate the predicate in software.
func (sys *System) TableScanHost(origin, lo, hi int, pred tablescan.Predicate, done func(*ScanResult, error)) {
	if sys.v == nil {
		done(nil, ErrNoVolume)
		return
	}
	if lo < 0 || hi > sys.v.Pages() || lo > hi {
		done(nil, fmt.Errorf("ispvol: range [%d,%d) out of volume", lo, hi))
		return
	}
	st, err := sys.v.NewStream(fmt.Sprintf("scan-hostmed-n%d", origin), sys.cfg.HostClass)
	if err != nil {
		done(nil, err)
		return
	}
	sys.tableScanHost(origin, hi-lo, sys.v.PageSize(),
		func(qidx int, cb func([]byte, error)) { st.Read(lo+qidx, cb) },
		pred, done)
}

// TableScanFileHost is TableScanFile's host-mediated twin: every page
// of the file crosses PCIe into the origin host (read through the
// file system at Config.HostClass), where worker threads evaluate the
// predicate in software.
func (sys *System) TableScanFileHost(origin int, f *rfs.File, pred tablescan.Predicate, done func(*ScanResult, error)) {
	h := f.At(sys.cfg.HostClass)
	sys.tableScanHost(origin, f.Pages(), f.PageSize(),
		func(qidx int, cb func([]byte, error)) { h.ReadPage(qidx, cb) },
		pred, done)
}

// tableScanHost is the host-mediated filter core shared by the volume
// and file entry points.
func (sys *System) tableScanHost(origin, pages, ps int, read func(qidx int, cb func([]byte, error)),
	pred tablescan.Predicate, done func(*ScanResult, error)) {
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	node := sys.c.Node(origin)
	start := sys.c.Eng.Now()
	res := &ScanResult{Pages: pages}

	threads := sys.cfg.HostThreads
	workers := make([]*hostmodel.Thread, threads)
	for i := range workers {
		workers[i] = node.CPU.NewThread()
	}
	pageCost := sim.Time(tablescan.RecordsPerPage(ps)) * tablescan.HostFilterCPUPerRow

	sys.hostScanLoop(pages, read, func(qidx int, data []byte, err error, slotDone func()) {
		if err != nil {
			res.FailedPages++
			slotDone()
			return
		}
		res.BytesToHost += int64(len(data))
		w := workers[qidx%threads]
		w.Do(pageCost, func() {
			if matches, rows, ferr := tablescan.FilterPage(data, pred); ferr == nil {
				res.Rows += rows
				res.Matches = append(res.Matches, matches...)
			} else {
				res.FailedPages++
			}
			slotDone()
		})
	}, func() {
		sort.Slice(res.Matches, func(i, j int) bool { return res.Matches[i].ID < res.Matches[j].ID })
		res.Elapsed = sys.c.Eng.Now() - start
		if res.Elapsed > 0 {
			res.RowsPerSec = float64(res.Rows) / res.Elapsed.Seconds()
		}
		done(res, nil)
	})
}

// TableScanSync runs TableScan and drains the engine.
func (sys *System) TableScanSync(origin, lo, hi int, pred tablescan.Predicate) (*ScanResult, error) {
	var res *ScanResult
	var rerr error
	fired := false
	sys.TableScan(origin, lo, hi, pred, func(r *ScanResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: table scan never completed")
	}
	return res, rerr
}

// TableScanHostSync runs TableScanHost and drains the engine.
func (sys *System) TableScanHostSync(origin, lo, hi int, pred tablescan.Predicate) (*ScanResult, error) {
	var res *ScanResult
	var rerr error
	fired := false
	sys.TableScanHost(origin, lo, hi, pred, func(r *ScanResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: host-mediated table scan never completed")
	}
	return res, rerr
}

// TableScanFileSync runs TableScanFile and drains the engine.
func (sys *System) TableScanFileSync(origin int, f *rfs.File, pred tablescan.Predicate) (*ScanResult, error) {
	var res *ScanResult
	var rerr error
	fired := false
	sys.TableScanFile(origin, f, pred, func(r *ScanResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: file table scan never completed")
	}
	return res, rerr
}

// TableScanFileHostSync runs TableScanFileHost and drains the engine.
func (sys *System) TableScanFileHostSync(origin int, f *rfs.File, pred tablescan.Predicate) (*ScanResult, error) {
	var res *ScanResult
	var rerr error
	fired := false
	sys.TableScanFileHost(origin, f, pred, func(r *ScanResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: host-mediated file table scan never completed")
	}
	return res, rerr
}
