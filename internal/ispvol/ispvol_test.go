package ispvol_test

import (
	"testing"

	"repro/internal/accel/search"
	"repro/internal/accel/tablescan"
	"repro/internal/core"
	"repro/internal/ispvol"
	"repro/internal/sched"
	"repro/internal/volume"
	"repro/internal/workload"
)

// testSystem builds a small cluster + scheduler + volume + ispvol
// stack, seeded with fill over the whole logical space.
func testSystem(t *testing.T, nodes int, icfg ispvol.Config, fill workload.PageFiller) (*core.Cluster, *sched.Scheduler, *volume.Volume, *ispvol.System) {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 4
	p.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := volume.New(c, s, volume.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.SeedVolumeWith(v, c, v.Pages(), 32, fill); err != nil {
		t.Fatal(err)
	}
	sys, err := ispvol.New(c, s, v, icfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, v, sys
}

// plantedFiller seeds deterministic bytes with `needle` planted
// mid-page on every 3rd page and straddling every 4k+1|4k+2 page
// boundary, so junction stitching has real work.
func plantedFiller(needle []byte, ps int) workload.PageFiller {
	base := workload.RandomPages(77)
	split := len(needle) / 2
	return func(idx int, page []byte) {
		base(idx, page)
		if idx%3 == 0 {
			copy(page[ps/3:], needle)
		}
		if idx%4 == 1 {
			copy(page[ps-split:], needle[:split])
		}
		if idx%4 == 2 {
			copy(page, needle[split:])
		}
	}
}

// referenceMatches rebuilds the logical byte range from the filler
// and runs the reference matcher over the contiguous buffer.
func referenceMatches(t *testing.T, fill workload.PageFiller, lo, hi, ps int, needle []byte) []int64 {
	t.Helper()
	buf := make([]byte, 0, (hi-lo)*ps)
	page := make([]byte, ps)
	for idx := lo; idx < hi; idx++ {
		fill(idx, page)
		buf = append(buf, page...)
	}
	pat, err := search.Compile(needle)
	if err != nil {
		t.Fatal(err)
	}
	return pat.FindAll(buf)
}

// TestDistributedSearchExact: the fanned-out engines plus junction
// stitching find exactly the matches a flat scan of the contiguous
// logical range finds — including occurrences straddling page
// boundaries, whose two halves live on different nodes.
func TestDistributedSearchExact(t *testing.T) {
	needle := []byte("needle!")
	var ps = core.DefaultParams(1).Geometry.PageSize
	fill := plantedFiller(needle, ps)
	_, s, v, sys := testSystem(t, 2, ispvol.DefaultConfig(), fill)
	lo, hi := 0, v.Pages()
	want := referenceMatches(t, fill, lo, hi, ps, needle)
	if len(want) == 0 {
		t.Fatal("test content has no matches; nothing validated")
	}
	res, err := sys.SearchSync(0, lo, hi, needle)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedPages != 0 {
		t.Fatalf("%d failed pages", res.FailedPages)
	}
	if len(res.Matches) != len(want) {
		t.Fatalf("found %d matches, want %d", len(res.Matches), len(want))
	}
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Fatalf("match %d at %d, want %d", i, res.Matches[i], want[i])
		}
	}
	// A straddler exists in the plant plan: prove the junction pass
	// contributed (some match must start < a boundary and end past it).
	straddlers := 0
	for _, m := range want {
		if m/int64(ps) != (m+int64(len(needle))-1)/int64(ps) {
			straddlers++
		}
	}
	if straddlers == 0 {
		t.Fatal("no boundary-straddling matches planted; junction path untested")
	}
	// The engines' flash reads went through the scheduler.
	accelOps := int64(0)
	for _, cs := range s.Snapshot().Classes {
		if cs.Class == "accel" {
			accelOps = cs.Ops
		}
	}
	if accelOps < int64(hi-lo) {
		t.Fatalf("accel class saw %d ops, want >= %d (ISP bypassing scheduler?)", accelOps, hi-lo)
	}
}

// TestHostMediatedSearchAgrees: the host-mediated arm returns
// byte-identical matches; only the data path differs.
func TestHostMediatedSearchAgrees(t *testing.T) {
	needle := []byte("agree?")
	ps := core.DefaultParams(1).Geometry.PageSize
	fill := plantedFiller(needle, ps)
	_, _, v, sys := testSystem(t, 2, ispvol.DefaultConfig(), fill)
	lo, hi := 8, v.Pages()/2
	ispRes, err := sys.SearchSync(1, lo, hi, needle)
	if err != nil {
		t.Fatal(err)
	}
	hostRes, err := sys.SearchHostSync(1, lo, hi, needle)
	if err != nil {
		t.Fatal(err)
	}
	if len(ispRes.Matches) != len(hostRes.Matches) {
		t.Fatalf("isp %d matches, host-mediated %d", len(ispRes.Matches), len(hostRes.Matches))
	}
	for i := range ispRes.Matches {
		if ispRes.Matches[i] != hostRes.Matches[i] {
			t.Fatalf("match %d: isp %d vs host %d", i, ispRes.Matches[i], hostRes.Matches[i])
		}
	}
	if len(ispRes.Matches) == 0 {
		t.Fatal("no matches in range; nothing validated")
	}
}

// recordFiller packs deterministic rows, RecordsPerPage per page.
func recordFiller(ps int) workload.PageFiller {
	per := tablescan.RecordsPerPage(ps)
	return func(idx int, page []byte) {
		recs := make([]tablescan.Record, per)
		for i := range recs {
			id := uint64(idx*per + i)
			recs[i] = tablescan.Record{ID: id, ColA: int64(id * 37 % 1000), ColB: int64(id % 100)}
		}
		enc, err := tablescan.EncodeRecords(recs, ps)
		if err != nil {
			panic(err)
		}
		copy(page, enc)
	}
}

// TestDistributedTableScanExact: the pushed-down predicate returns
// exactly the records the host-mediated scan returns, and exactly the
// reference filter's rows.
func TestDistributedTableScanExact(t *testing.T) {
	ps := core.DefaultParams(1).Geometry.PageSize
	fill := recordFiller(ps)
	_, _, v, sys := testSystem(t, 3, ispvol.DefaultConfig(), fill)
	pred := tablescan.Predicate{Col: tablescan.ColA, Op: tablescan.OpLT, Value: 120}
	lo, hi := 0, v.Pages()

	res, err := sys.TableScanSync(2, lo, hi, pred)
	if err != nil {
		t.Fatal(err)
	}
	hostRes, err := sys.TableScanHostSync(2, lo, hi, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: filter the generated pages directly.
	var wantRows int64
	var wantIDs []uint64
	page := make([]byte, ps)
	for idx := lo; idx < hi; idx++ {
		fill(idx, page)
		m, rows, err := tablescan.FilterPage(page, pred)
		if err != nil {
			t.Fatal(err)
		}
		wantRows += rows
		for _, r := range m {
			wantIDs = append(wantIDs, r.ID)
		}
	}
	if len(wantIDs) == 0 {
		t.Fatal("predicate selects nothing; nothing validated")
	}
	for name, got := range map[string]*ispvol.ScanResult{"isp": res, "host-mediated": hostRes} {
		if got.Rows != wantRows {
			t.Fatalf("%s scanned %d rows, want %d", name, got.Rows, wantRows)
		}
		if len(got.Matches) != len(wantIDs) {
			t.Fatalf("%s returned %d records, want %d", name, len(got.Matches), len(wantIDs))
		}
		for i, r := range got.Matches {
			if r.ID != wantIDs[i] {
				t.Fatalf("%s record %d has ID %d, want %d", name, i, r.ID, wantIDs[i])
			}
		}
	}
	// Selection/projection pushdown: only matching records crossed to
	// the origin host, vs every page for the host-mediated arm.
	if res.BytesToHost >= hostRes.BytesToHost {
		t.Fatalf("pushdown moved %d bytes, host-mediated %d", res.BytesToHost, hostRes.BytesToHost)
	}
}

// TestUnitArbitration: more concurrent queries than acceleration
// units — the FIFO unit scheduler must queue the excess (Waits > 0)
// and every query must still complete.
func TestUnitArbitration(t *testing.T) {
	ps := core.DefaultParams(1).Geometry.PageSize
	fill := recordFiller(ps)
	icfg := ispvol.DefaultConfig()
	icfg.UnitsPerNode = 1
	c, _, v, sys := testSystem(t, 2, icfg, fill)
	pred := tablescan.Predicate{Col: tablescan.ColB, Op: tablescan.OpEQ, Value: 7}
	const queries = 3
	completed := 0
	for i := 0; i < queries; i++ {
		sys.TableScan(i%2, 0, v.Pages(), pred, func(res *ispvol.ScanResult, err error) {
			if err != nil {
				t.Errorf("query: %v", err)
			}
			completed++
		})
	}
	c.Run()
	if completed != queries {
		t.Fatalf("completed %d of %d queries", completed, queries)
	}
	waits := int64(0)
	for n := 0; n < 2; n++ {
		waits += sys.Units(n).Waits
		if busy := sys.Units(n).Busy(); busy != 0 {
			t.Fatalf("node %d still holds %d units", n, busy)
		}
	}
	if waits == 0 {
		t.Fatal("3 queries on 1 unit per node never queued")
	}
}

// TestBypassAdmissionInvisible: under Bypass admission the scheduler
// sees no accel traffic — the arm faithfully reproduces the bug.
func TestBypassAdmissionInvisible(t *testing.T) {
	needle := []byte("ghost")
	ps := core.DefaultParams(1).Geometry.PageSize
	fill := plantedFiller(needle, ps)
	icfg := ispvol.DefaultConfig()
	icfg.Admission = ispvol.Bypass
	_, s, v, sys := testSystem(t, 2, icfg, fill)
	res, err := sys.SearchSync(0, 0, v.Pages(), needle)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("bypass search found nothing")
	}
	for _, cs := range s.Snapshot().Classes {
		if cs.Class == "accel" && cs.Ops != 0 {
			t.Fatalf("bypass arm leaked %d ops into the scheduler", cs.Ops)
		}
	}
}
