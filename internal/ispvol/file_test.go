package ispvol

// Tests for distributed queries over files of the cluster RFS: the
// Figure 8 pipeline end-to-end (file -> cluster-wide physical-address
// query -> scheduler-admitted engine scan -> merge), cross-validated
// against the host-mediated file path.

import (
	"fmt"
	"testing"

	"repro/internal/accel/tablescan"
	"repro/internal/core"
	"repro/internal/rfs"
	"repro/internal/sched"
)

func fileParams(nodes int) core.Params {
	p := core.DefaultParams(nodes)
	p.Geometry.ChipsPerBus = 2
	p.Geometry.BlocksPerChip = 2
	p.Geometry.PagesPerBlock = 16
	return p
}

func newFileSystem(t *testing.T, nodes int) (*core.Cluster, *rfs.FS, *System) {
	t.Helper()
	c, err := core.NewCluster(fileParams(nodes))
	if err != nil {
		t.Fatal(err)
	}
	scfg := sched.DefaultConfig()
	scfg.MaxInflight = 16
	s, err := sched.New(c, scfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, _, err := rfs.NewClusterFS(c, s, rfs.ClusterConfig{}, rfs.Config{CleanLowWater: 4})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(c, s, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c, fs, sys
}

// seedFile appends n generated pages to a fresh file.
func seedFile(t *testing.T, c *core.Cluster, fs *rfs.FS, name string, n int, gen func(idx int, page []byte)) *rfs.File {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	ps := f.PageSize()
	var firstErr error
	next := 0
	var issue func()
	issue = func() {
		if next >= n {
			return
		}
		idx := next
		next++
		buf := make([]byte, ps)
		gen(idx, buf)
		f.AppendPage(buf, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("seed %s page %d: %w", name, idx, err)
			}
			issue()
		})
	}
	for i := 0; i < 32 && i < n; i++ {
		issue()
	}
	c.Run()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	return f
}

// needlePages plants the needle mid-page every 4th page and across
// the junction of pages 5 and 6 (adjacent file pages live on
// different chips — and nodes — of the striped log, so the junction
// exercises the distributed edge stitch).
func needlePages(needle string, ps int) func(int, []byte) {
	nb := []byte(needle)
	split := len(nb) / 2
	return func(idx int, page []byte) {
		for i := range page {
			page[i] = byte('a' + (idx+i)%17)
		}
		if idx%4 == 1 {
			copy(page[ps/2:], nb)
		}
		if idx == 5 {
			copy(page[ps-split:], nb[:split])
		}
		if idx == 6 {
			copy(page, nb[split:])
		}
	}
}

func TestSearchFileDistributedVsHostMediated(t *testing.T) {
	c, fs, sys := newFileSystem(t, 2)
	const needle = "BlueDBM-RFS"
	const pages = 128
	f := seedFile(t, c, fs, "haystack", pages, needlePages(needle, fs.PageSize()))

	dist, err := sys.SearchFileSync(0, f, []byte(needle))
	if err != nil {
		t.Fatal(err)
	}
	if dist.FailedPages > 0 {
		t.Fatalf("%d pages failed", dist.FailedPages)
	}
	// 32 in-page plants (idx%4==1) plus the one junction straddle.
	if want := pages/4 + 1; len(dist.Matches) != want {
		t.Fatalf("distributed found %d matches, want %d", len(dist.Matches), want)
	}
	host, err := sys.SearchFileHostSync(0, f, []byte(needle))
	if err != nil {
		t.Fatal(err)
	}
	if len(host.Matches) != len(dist.Matches) {
		t.Fatalf("host-mediated found %d matches, distributed %d", len(host.Matches), len(dist.Matches))
	}
	for i := range host.Matches {
		if host.Matches[i] != dist.Matches[i] {
			t.Fatalf("match %d diverges: host %d, distributed %d", i, host.Matches[i], dist.Matches[i])
		}
	}
	// The engines read device-side through Accel admission: zero bytes
	// of haystack cross into host memory on the distributed arm.
	if dist.Throughput <= 0 || host.Throughput <= 0 {
		t.Fatal("throughput not stamped")
	}
}

func TestTableScanFileDistributedVsHostMediated(t *testing.T) {
	c, fs, sys := newFileSystem(t, 2)
	ps := fs.PageSize()
	perPage := tablescan.RecordsPerPage(ps)
	const pages = 64
	id := int64(0)
	gen := func(idx int, page []byte) {
		recs := make([]tablescan.Record, perPage)
		for i := range recs {
			recs[i] = tablescan.Record{ID: uint64(id), ColA: id % 7, ColB: id % 13}
			id++
		}
		enc, err := tablescan.EncodeRecords(recs, ps)
		if err != nil {
			t.Fatal(err)
		}
		copy(page, enc)
	}
	f := seedFile(t, c, fs, "table", pages, gen)

	pred := tablescan.Predicate{Col: tablescan.ColB, Op: tablescan.OpEQ, Value: 3}
	dist, err := sys.TableScanFileSync(0, f, pred)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sys.TableScanFileHostSync(0, f, pred)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Rows != int64(pages*perPage) || host.Rows != dist.Rows {
		t.Fatalf("rows scanned: dist %d host %d want %d", dist.Rows, host.Rows, pages*perPage)
	}
	if len(dist.Matches) == 0 || len(dist.Matches) != len(host.Matches) {
		t.Fatalf("matches: dist %d host %d", len(dist.Matches), len(host.Matches))
	}
	for i := range dist.Matches {
		if dist.Matches[i] != host.Matches[i] {
			t.Fatalf("record %d diverges", i)
		}
	}
	// Selection pushdown: the distributed arm ships only qualifying
	// records to the host; the host arm hauled every page.
	if dist.BytesToHost >= host.BytesToHost {
		t.Fatalf("pushdown moved %d bytes to host, host-mediated %d", dist.BytesToHost, host.BytesToHost)
	}
}

func TestVolumeRangeQueriesRequireVolume(t *testing.T) {
	_, _, sys := newFileSystem(t, 1)
	if _, err := sys.SearchSync(0, 0, 8, []byte("x")); err == nil {
		t.Fatal("volume-range search on a volume-less system succeeded")
	}
	if _, err := sys.SearchHostSync(0, 0, 8, []byte("x")); err == nil {
		t.Fatal("volume-range host search on a volume-less system succeeded")
	}
	if _, err := sys.TableScanSync(0, 0, 8, tablescan.Predicate{}); err == nil {
		t.Fatal("volume-range scan on a volume-less system succeeded")
	}
	if _, err := sys.TableScanHostSync(0, 0, 8, tablescan.Predicate{}); err == nil {
		t.Fatal("volume-range host scan on a volume-less system succeeded")
	}
}
