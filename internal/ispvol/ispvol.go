// Package ispvol is the distributed in-store processing subsystem:
// the layer that makes accelerators first-class, QoS-governed tenants
// of the sched/volume stack instead of raw flash peekers.
//
// The paper's headline capability (§4, §6) is in-store processors
// that read flash directly — no host software on the data path —
// while SHARING the flash controller with host traffic. Before this
// package, the accelerator stack attached to core.Node and issued
// reads outside the request scheduler, so an ISP-heavy tenant could
// starve realtime host streams: exactly the QoS violation the
// scheduler exists to prevent. Here, every engine flash read is
// admitted through sched's Accel class (window-accounted, capped by
// the accel token budget) and then issues on the device-side ISP
// path, keeping the zero-host-involvement data path.
//
// A query runs the way Figure 8 describes:
//
//  1. the origin node's host resolves the logical range to physical
//     pages (volume.PhysMap — the RFS-style physical address query)
//     and partitions the list by owning node;
//  2. one engine per node claims a hardware acceleration unit (the
//     FIFO unit scheduler of internal/isp) and streams its partition
//     off the local flash, window-deep, through the node's
//     sched.AccelStream;
//  3. each engine reduces its pages next to the flash (Morris-Pratt
//     match offsets, predicate-filtered records) and ships only the
//     results to the origin over the integrated storage network;
//  4. the origin merges the partial results (stitching page-boundary
//     junctions for string search) and DMAs the final answer into
//     host memory.
//
// Queries run over two stores: logical ranges of the volume
// (Search/TableScan) and, completing the paper's Figure 8 pipeline,
// files of the cluster-wide RFS (SearchFile/TableScanFile) — the file
// system's physical-address query feeds the same per-node engines, so
// the whole appliance scans a file at flash bandwidth with the host
// only resolving addresses and merging results.
//
// On top of the scan queries sit the paper's flagship applications:
// nearest-neighbor search over LSH candidate lists (NearestNeighbor
// and NearestNeighborFile, with host-mediated twins), where each
// node's engine Hamming-compares its candidates inline and only
// per-node bests cross the network, and in-store graph traversal
// with walker migration (WalkMigrate), where the walk's state —
// vertex, steps, checksum, RNG — hops node to node over the fabric
// so every dependent lookup reads flash locally.
//
// The package also implements the two comparison arms the experiments
// need: Bypass admission (the pre-fix bug path — raw device
// interfaces, invisible to the scheduler) and host-mediated queries
// (every page crosses PCIe and is reduced in host software).
package ispvol

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/isp"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
)

// MergeEP is the fabric endpoint the subsystem binds on every node
// for query fan-out and result merge traffic (mapreduce shuffles on
// core.EPUser; this stays clear of it).
const MergeEP = core.EPUser + 1

// Admission selects the flash data path engines read through.
type Admission int

const (
	// Admitted is the production path: reads go through the node's
	// sched.AccelStream — Accel-class admission, window accounting,
	// token budget — then issue device-side.
	Admitted Admission = iota
	// Bypass is the pre-fix scheduler-bypass bug, kept as an explicit
	// experiment arm: reads hit the raw device interfaces directly,
	// invisible to the scheduler's device window, so ISP load inflates
	// realtime host tail latency without bound.
	Bypass
)

func (a Admission) String() string {
	switch a {
	case Admitted:
		return "admitted"
	case Bypass:
		return "bypass"
	default:
		return fmt.Sprintf("admission(%d)", int(a))
	}
}

// Config tunes the subsystem.
type Config struct {
	// UnitsPerNode is the number of hardware acceleration units each
	// node's FIFO unit scheduler arbitrates (paper §4): one engine
	// holds one unit for the duration of its partition. Default 4.
	UnitsPerNode int
	// Window is each engine's in-flight flash read depth. Default 8.
	Window int
	// RetryDelay is the backoff before re-admitting a read that hit
	// scheduler backpressure. Default 5 µs.
	RetryDelay sim.Time
	// Admission selects the engine data path (see Admission).
	Admission Admission
	// HostClass is the QoS class host-mediated queries read at.
	// Default Batch.
	HostClass sched.Class
	// HostThreads is the host worker-thread count that host-mediated
	// queries reduce pages on. Default 8.
	HostThreads int
}

// DefaultConfig returns the production configuration.
func DefaultConfig() Config {
	return Config{
		UnitsPerNode: 4,
		Window:       8,
		RetryDelay:   5 * sim.Microsecond,
		Admission:    Admitted,
		HostClass:    sched.Batch,
		HostThreads:  8,
	}
}

func (c Config) withDefaults() Config {
	if c.UnitsPerNode <= 0 {
		c.UnitsPerNode = 4
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 5 * sim.Microsecond
	}
	if c.HostThreads <= 0 {
		c.HostThreads = 8
	}
	return c
}

// System is the distributed ISP runtime over one cluster + volume.
type System struct {
	c   *core.Cluster
	s   *sched.Scheduler
	v   *volume.Volume
	cfg Config

	nodes     []*nodeISP
	pending   map[uint64]queryState
	nextQuery uint64
}

// nodeISP is one node's slice of the subsystem.
type nodeISP struct {
	node   *core.Node
	units  *isp.Scheduler
	stream *sched.AccelStream
	ep     *fabric.Endpoint
}

// queryState receives partial results at the origin.
type queryState interface {
	part(msg any)
}

// ErrNoVolume reports a logical-range query on a System built without
// a volume.
var ErrNoVolume = errors.New("ispvol: no volume attached; use the file-based queries")

// New attaches the subsystem to a cluster, scheduler and volume (all
// three must belong together). It binds MergeEP on every node. v may
// be nil for deployments that run queries over files (an rfs cluster
// file system instead of the logical volume); the volume-ranged entry
// points then fail with ErrNoVolume.
func New(c *core.Cluster, s *sched.Scheduler, v *volume.Volume, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.HostClass >= sched.Accel {
		return nil, fmt.Errorf("ispvol: host-mediated class %v not usable by tenants", cfg.HostClass)
	}
	sys := &System{c: c, s: s, v: v, cfg: cfg, pending: make(map[uint64]queryState)}
	for i := 0; i < c.Nodes(); i++ {
		n := c.Node(i)
		units, err := isp.NewScheduler(fmt.Sprintf("isp-n%d", i), cfg.UnitsPerNode)
		if err != nil {
			return nil, err
		}
		st, err := s.NewAccelStream(fmt.Sprintf("isp-n%d", i), i)
		if err != nil {
			return nil, err
		}
		ep, err := n.NetNode().BindEndpoint(MergeEP)
		if err != nil {
			return nil, err
		}
		ns := &nodeISP{node: n, units: units, stream: st, ep: ep}
		ep.OnReceive = func(src fabric.NodeID, _ int, payload any) {
			sys.receive(ns, payload)
		}
		sys.nodes = append(sys.nodes, ns)
	}
	return sys, nil
}

// Cluster returns the underlying cluster.
func (sys *System) Cluster() *core.Cluster { return sys.c }

// Units exposes a node's acceleration-unit scheduler (for tests).
func (sys *System) Units(node int) *isp.Scheduler { return sys.nodes[node].units }

// receive dispatches an inbound fabric message on a node.
func (sys *System) receive(ns *nodeISP, payload any) {
	switch m := payload.(type) {
	case *searchStartMsg:
		sys.runSearchPart(ns, m)
	case *scanStartMsg:
		sys.runScanPart(ns, m)
	case *nnStartMsg:
		sys.runNNPart(ns, m)
	case *walkerMsg:
		sys.runWalkStep(ns, m)
	case *searchPartMsg:
		if q, ok := sys.pending[m.query]; ok {
			q.part(m)
		}
	case *scanPartMsg:
		if q, ok := sys.pending[m.query]; ok {
			q.part(m)
		}
	case *nnPartMsg:
		if q, ok := sys.pending[m.query]; ok {
			q.part(m)
		}
	case *walkDoneMsg:
		if q, ok := sys.pending[m.query]; ok {
			q.part(m)
		}
	default:
		panic(fmt.Sprintf("ispvol: unknown message %T", payload))
	}
}

// deliver routes a message from node src to node dst: over the fabric
// when remote (size bytes on the wire), directly when local.
func (sys *System) deliver(src, dst int, size int, msg any) {
	if src == dst {
		sys.receive(sys.nodes[dst], msg)
		return
	}
	if err := sys.nodes[src].ep.Send(fabric.NodeID(dst), size, msg, nil); err != nil {
		panic(fmt.Sprintf("ispvol: merge route missing: %v", err))
	}
}

// pageRef is one page of a query partition.
type pageRef struct {
	qidx int // page index within the query range
	addr core.PageAddr
}

// partition resolves [lo, hi) through the volume's physical map
// (Figure 8 step 1) and groups the pages by owning node.
func (sys *System) partition(lo, hi int) ([][]pageRef, error) {
	if sys.v == nil {
		return nil, ErrNoVolume
	}
	addrs, err := sys.v.PhysMap(lo, hi)
	if err != nil {
		return nil, err
	}
	return sys.partitionAddrs(addrs), nil
}

// partitionAddrs groups a resolved physical address list — a volume
// PhysMap range or a file's PhysicalAddrs — by owning node: the
// origin-side step that turns one query into per-node engine
// partitions.
func (sys *System) partitionAddrs(addrs []core.PageAddr) [][]pageRef {
	parts := make([][]pageRef, sys.c.Nodes())
	for i, a := range addrs {
		parts[a.Node] = append(parts[a.Node], pageRef{qidx: i, addr: a})
	}
	return parts
}

// chipInterleave reorders a partition so consecutive reads target
// different flash chips. The FTL's frontier allocation packs adjacent
// logical pages into one physical block — a single chip — so scanning
// a partition in logical order would convoy the engine's whole read
// window on one chip at a time while fifteen others idle. Engines
// scan pages independently (order never affects the result), so they
// are free to schedule by chip availability, the way the hardware
// issues reads to whichever bus is free. Buckets by (card, bus,
// chip), round-robin across buckets; fully deterministic.
func chipInterleave(refs []pageRef) []pageRef {
	if len(refs) < 2 {
		return refs
	}
	type chipKey struct{ card, bus, chip int }
	var order []chipKey
	buckets := make(map[chipKey][]pageRef)
	for _, r := range refs {
		k := chipKey{r.addr.Card, r.addr.Addr.Bus, r.addr.Addr.Chip}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], r)
	}
	out := make([]pageRef, 0, len(refs))
	for len(out) < len(refs) {
		for _, k := range order {
			if b := buckets[k]; len(b) > 0 {
				out = append(out, b[0])
				buckets[k] = b[1:]
			}
		}
	}
	return out
}

// readPage issues one engine flash read on node n's data path.
func (sys *System) readPage(n int, ref pageRef, cb func(data []byte, err error)) {
	if sys.cfg.Admission == Bypass {
		// The bug path: straight to the device interfaces. Deliberately
		// ISPReadDirect, not ISPRead — an attached accel router must
		// not be able to rescue this arm, it reproduces the pre-fix
		// behavior.
		sys.nodes[n].node.ISPReadDirect(ref.addr, cb)
		return
	}
	st := sys.nodes[n].stream
	var try func()
	try = func() {
		if err := st.Read(ref.addr, cb); err == sched.ErrBackpressure {
			sys.c.Eng.After(sys.cfg.RetryDelay, try)
		} else if err != nil {
			cb(nil, err)
		}
	}
	try()
}

// runEngine claims one acceleration unit on node n, streams refs
// window-deep through the node's flash data path, feeds every page to
// scan (in completion order), then releases the unit and fires done.
// scan's err is the page's read error (the page is skipped, not
// fatal).
func (sys *System) runEngine(n int, refs []pageRef, scan func(i int, ref pageRef, data []byte, err error), done func()) {
	refs = chipInterleave(refs)
	sys.nodes[n].units.Submit(func(unitDone func()) {
		if len(refs) == 0 {
			unitDone()
			done()
			return
		}
		next, inflight := 0, 0
		var pump func()
		pump = func() {
			for inflight < sys.cfg.Window && next < len(refs) {
				i := next
				next++
				inflight++
				sys.readPage(n, refs[i], func(data []byte, err error) {
					scan(i, refs[i], data, err)
					inflight--
					if inflight == 0 && next >= len(refs) {
						unitDone()
						done()
						return
					}
					pump()
				})
			}
		}
		pump()
	})
}

// hostScanLoop is the depth-bounded closed loop every host-mediated
// arm shares: read page i through the host path, hand the data (or
// the read error) to onPage, and fire finish once every page has been
// handled. The host arms get the same I/O concurrency budget the ISP
// arms have (engines x window); each slot is read-then-process, so
// slots overlap flash, PCIe and CPU work across each other. onPage
// must call slotDone exactly once, synchronously or from a later
// event (a worker-thread completion).
func (sys *System) hostScanLoop(pages int, read func(i int, cb func([]byte, error)),
	onPage func(i int, data []byte, err error, slotDone func()), finish func()) {
	if pages == 0 {
		finish()
		return
	}
	depth := sys.cfg.UnitsPerNode * sys.cfg.Window
	if depth > pages {
		depth = pages
	}
	next, inflight := 0, 0
	var pump func()
	slotDone := func() {
		inflight--
		if inflight == 0 && next >= pages {
			finish()
			return
		}
		pump()
	}
	pump = func() {
		for inflight < depth && next < pages {
			i := next
			next++
			inflight++
			read(i, func(data []byte, err error) { onPage(i, data, err, slotDone) })
		}
	}
	pump()
}

// startQuery registers origin-side query state and returns its id.
func (sys *System) startQuery(q queryState) uint64 {
	id := sys.nextQuery
	sys.nextQuery++
	sys.pending[id] = q
	return id
}

// finishQuery drops the registration.
func (sys *System) finishQuery(id uint64) { delete(sys.pending, id) }

// dmaToHost models the final result DMA into the origin host's
// memory: size bytes through a read buffer plus the completion
// interrupt, then cb. Zero-size results skip the transfer.
func (sys *System) dmaToHost(origin, size int, cb func()) {
	if size <= 0 {
		cb()
		return
	}
	h := sys.nodes[origin].node.Host
	h.AcquireReadBuffer(size, func(buf int) {
		h.ReleaseReadBuffer(buf)
		cb()
	}, func(buf int) {
		h.DeviceWriteChunk(buf, size, true)
	})
}
