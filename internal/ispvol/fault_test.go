package ispvol_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ispvol"
)

// TestEngineReadFaultsSurface: a dead card under a distributed query
// must not panic, hang, or silently shrink the match set — the engines
// report the lost pages through FailedPages and every match they do
// return is real. This is the ispvol link of the stack-wide error
// contract: engine flash reads fail typed and counted, like host reads.
func TestEngineReadFaultsSurface(t *testing.T) {
	needle := []byte("needle!")
	ps := core.DefaultParams(1).Geometry.PageSize
	fill := plantedFiller(needle, ps)
	c, _, v, sys := testSystem(t, 2, ispvol.DefaultConfig(), fill)
	lo, hi := 0, v.Pages()
	want := referenceMatches(t, fill, lo, hi, ps, needle)

	c.Node(1).Card(0).Fail()
	res, err := sys.SearchSync(0, lo, hi, needle)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedPages == 0 {
		t.Fatal("dead card under the scan, but FailedPages == 0")
	}
	if res.FailedPages >= hi-lo {
		t.Fatalf("all %d pages failed; only one card of four is dead", res.FailedPages)
	}
	// Matches from surviving pages must be a subset of the reference
	// set: faults may lose matches, never invent or corrupt them.
	ref := make(map[int64]bool, len(want))
	for _, m := range want {
		ref[m] = true
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches survived; three of four cards are alive")
	}
	for _, m := range res.Matches {
		if !ref[m] {
			t.Fatalf("match at %d not in the reference set", m)
		}
	}
	if len(res.Matches) >= len(want) {
		t.Fatalf("%d matches with a dead card, reference has %d; expected losses", len(res.Matches), len(want))
	}
}
