package ispvol

// Distributed nearest-neighbor search (paper §7.1 promoted to cluster
// scale): the host-resident LSH index produces a candidate list — item
// ids and the logical pages holding them — and the origin partitions
// the RESOLVED physical pages by owning node, fans one Hamming engine
// out per node over the fabric, and each engine streams its partition
// off the local flash through the Accel admission path, comparing
// every item against the query inline the way the single-node
// accelerator (accel/lsh.RunISP) does. Only each node's best
// candidate crosses the network back to the origin, which keeps the
// final merge. The host-mediated twin hauls every candidate page over
// PCIe and compares in software at accel/lsh's calibrated per-page
// CPU cost — Figures 16/19's software arm, now under the same QoS
// roof as everything else.

import (
	"fmt"
	"math"

	"repro/internal/accel/lsh"
	"repro/internal/hostmodel"
	"repro/internal/rfs"
	"repro/internal/sim"
)

// NNResult reports one distributed nearest-neighbor query.
type NNResult struct {
	BestID      int
	BestDist    int
	Comparisons int64
	Pages       int
	FailedPages int      // candidate pages whose read failed
	Elapsed     sim.Time // query start to result-in-host-memory
	CmpPerSec   float64
}

// nnStartMsg fans a candidate partition out to one node's engine: the
// query item plus the (id, physical page) list.
type nnStartMsg struct {
	query  uint64
	origin int
	item   []byte
	ids    []int // candidate ids, parallel to refs
	refs   []pageRef
}

// nnPartMsg returns a partition's reduction: the node's best candidate.
type nnPartMsg struct {
	query       uint64
	node        int
	bestID      int
	bestDist    int
	comparisons int64
	failed      int
}

// nnQuery is the origin-side merge state.
type nnQuery struct {
	sys          *System
	id           uint64
	origin       int
	pages        int
	pendingParts int
	bestID       int
	bestDist     int
	comparisons  int64
	failed       int
	start        sim.Time
	done         func(*NNResult, error)
}

// nnBetter reports whether (id, d) beats the incumbent under the
// deterministic ordering every arm uses: lowest distance, ties to the
// lowest id — the same rule as lsh.NearestBrute, so all three
// implementations agree even when distances tie.
func nnBetter(d, id, bestDist, bestID int) bool {
	return d < bestDist || (d == bestDist && id < bestID)
}

// NearestNeighbor runs the distributed ISP nearest-neighbor query:
// candidate ids[i] lives in the volume's logical page lpns[i] (the
// LSH index output), the origin resolves each page to its physical
// address (Figure 8 step 1), and one engine per owning node
// Hamming-compares its share next to the flash. Asynchronous like
// Search: done fires once the merged best has DMA'd into the origin
// host's memory.
//
//simlint:once done
func (sys *System) NearestNeighbor(origin int, item []byte, ids []int, lpns []int, done func(*NNResult, error)) {
	if sys.v == nil {
		done(nil, ErrNoVolume)
		return
	}
	if len(ids) != len(lpns) {
		done(nil, fmt.Errorf("ispvol: %d ids but %d pages", len(ids), len(lpns)))
		return
	}
	refs := make([]pageRef, len(lpns))
	for i, lpn := range lpns {
		a, err := sys.v.Phys(lpn)
		if err != nil {
			done(nil, err)
			return
		}
		refs[i] = pageRef{qidx: i, addr: a}
	}
	sys.launchNN(origin, item, ids, refs, done)
}

// NearestNeighborFile is NearestNeighbor over a cluster-RFS file:
// candidate ids[i] lives in file page pages[i]. The file must stay
// read-stable for the query (the physical addresses are snapshots).
//
//simlint:once done
func (sys *System) NearestNeighborFile(origin int, f *rfs.File, item []byte, ids []int, pages []int, done func(*NNResult, error)) {
	if len(ids) != len(pages) {
		done(nil, fmt.Errorf("ispvol: %d ids but %d pages", len(ids), len(pages)))
		return
	}
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		done(nil, err)
		return
	}
	refs := make([]pageRef, len(pages))
	for i, p := range pages {
		if p < 0 || p >= len(addrs) {
			done(nil, fmt.Errorf("ispvol: candidate page %d outside the %d-page file", p, len(addrs)))
			return
		}
		refs[i] = pageRef{qidx: i, addr: addrs[p]}
	}
	sys.launchNN(origin, item, ids, refs, done)
}

// launchNN registers the origin-side merge state and fans candidate
// partitions out to the per-node engines.
//
//simlint:once done
func (sys *System) launchNN(origin int, item []byte, ids []int, refs []pageRef, done func(*NNResult, error)) {
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	if len(item) == 0 || len(item) > sys.c.Params.PageSize() {
		done(nil, fmt.Errorf("ispvol: query item of %d bytes (page is %d)", len(item), sys.c.Params.PageSize()))
		return
	}
	q := &nnQuery{
		sys:      sys,
		origin:   origin,
		pages:    len(refs),
		bestID:   -1,
		bestDist: math.MaxInt,
		start:    sys.c.Eng.Now(),
		done:     done,
	}
	q.id = sys.startQuery(q)

	// Partition by owning node. Each ref's qidx indexes the
	// partition's ids list — the engines chip-interleave (reorder)
	// their partitions, so the id must travel keyed to the ref, not
	// to scan order.
	parts := make([][]pageRef, sys.c.Nodes())
	partIDs := make([][]int, sys.c.Nodes())
	for i, r := range refs {
		n := r.addr.Node
		parts[n] = append(parts[n], pageRef{qidx: len(partIDs[n]), addr: r.addr})
		partIDs[n] = append(partIDs[n], ids[i])
	}
	for _, refs := range parts {
		if len(refs) > 0 {
			q.pendingParts++
		}
	}
	if q.pendingParts == 0 {
		q.finish()
		return
	}
	// One software + RPC charge covers the fan-out: the host ships the
	// query item and each partition's (id, address) list to its node's
	// engine, then gets out of the way until the merge.
	node := sys.nodes[origin].node
	node.Host.ChargeSoftware(func() {
		node.Host.RPC(func() {
			for n := range parts {
				if len(parts[n]) == 0 {
					continue
				}
				msg := &nnStartMsg{query: q.id, origin: origin, item: item, ids: partIDs[n], refs: parts[n]}
				sys.deliver(origin, n, 32+len(item)+20*len(parts[n]), msg)
			}
		})
	})
}

// runNNPart executes one node's Hamming engine over its candidate
// partition and ships the single best back to the origin.
func (sys *System) runNNPart(ns *nodeISP, m *nnStartMsg) {
	res := &nnPartMsg{query: m.query, node: ns.node.ID(), bestID: -1, bestDist: math.MaxInt}
	sys.runEngine(ns.node.ID(), m.refs, func(_ int, ref pageRef, data []byte, err error) {
		if err != nil {
			res.failed++
			return
		}
		// The engine compares at stream rate (hardware Hamming popcount
		// beside the flash): no CPU charge, exactly like lsh.RunISP.
		// ref.qidx keys the candidate id: the engine scans its
		// partition chip-interleaved, not in fan-out order.
		d := lsh.HammingDistance(m.item, data[:len(m.item)])
		res.comparisons++
		id := m.ids[ref.qidx]
		if nnBetter(d, id, res.bestDist, res.bestID) {
			res.bestID, res.bestDist = id, d
		}
	}, func() {
		sys.deliver(ns.node.ID(), m.origin, 48, res)
	})
}

// part merges one node's best into the origin state.
func (q *nnQuery) part(msg any) {
	m := msg.(*nnPartMsg)
	q.comparisons += m.comparisons
	q.failed += m.failed
	if m.bestID >= 0 && nnBetter(m.bestDist, m.bestID, q.bestDist, q.bestID) {
		q.bestID, q.bestDist = m.bestID, m.bestDist
	}
	q.pendingParts--
	if q.pendingParts == 0 {
		q.finish()
	}
}

// finish DMAs the (tiny) answer into the origin host's memory and
// stamps timing.
func (q *nnQuery) finish() {
	q.sys.finishQuery(q.id)
	res := &NNResult{
		BestID:      q.bestID,
		BestDist:    q.bestDist,
		Comparisons: q.comparisons,
		Pages:       q.pages,
		FailedPages: q.failed,
	}
	if res.BestID < 0 {
		res.BestDist = -1
	}
	q.sys.dmaToHost(q.origin, 16, func() {
		res.Elapsed = q.sys.c.Eng.Now() - q.start
		if res.Elapsed > 0 {
			res.CmpPerSec = float64(res.Comparisons) / res.Elapsed.Seconds()
		}
		q.done(res, nil)
	})
}

// NearestNeighborHost runs the same query host-mediated: the origin
// host reads every candidate page through the volume at
// Config.HostClass (batched doorbells, PCIe DMA, read buffers) and
// Hamming-compares in software on Config.HostThreads worker threads
// at the calibrated lsh.HammingCPUPerPage cost. Identical result
// shape and tie-breaking, so the two arms cross-validate; what
// differs is who moves and touches the bytes.
func (sys *System) NearestNeighborHost(origin int, item []byte, ids []int, lpns []int, done func(*NNResult, error)) {
	if sys.v == nil {
		done(nil, ErrNoVolume)
		return
	}
	if len(ids) != len(lpns) {
		done(nil, fmt.Errorf("ispvol: %d ids but %d pages", len(ids), len(lpns)))
		return
	}
	st, err := sys.v.NewStream(fmt.Sprintf("nn-hostmed-n%d", origin), sys.cfg.HostClass)
	if err != nil {
		done(nil, err)
		return
	}
	sys.nnHostScan(origin, item, ids,
		func(i int, cb func([]byte, error)) { st.Read(lpns[i], cb) }, done)
}

// NearestNeighborFileHost is NearestNeighborFile's host-mediated twin
// over a cluster-RFS file.
func (sys *System) NearestNeighborFileHost(origin int, f *rfs.File, item []byte, ids []int, pages []int, done func(*NNResult, error)) {
	if len(ids) != len(pages) {
		done(nil, fmt.Errorf("ispvol: %d ids but %d pages", len(ids), len(pages)))
		return
	}
	// Same bounds check as the distributed twin: the two arms must
	// fail identically on bad input, not have one error and the other
	// report success with FailedPages.
	for _, p := range pages {
		if p < 0 || p >= f.Pages() {
			done(nil, fmt.Errorf("ispvol: candidate page %d outside the %d-page file", p, f.Pages()))
			return
		}
	}
	h := f.At(sys.cfg.HostClass)
	sys.nnHostScan(origin, item, ids,
		func(i int, cb func([]byte, error)) { h.ReadPage(pages[i], cb) }, done)
}

// nnHostScan is the host-mediated compare core shared by the volume
// and file entry points.
func (sys *System) nnHostScan(origin int, item []byte, ids []int,
	read func(i int, cb func([]byte, error)), done func(*NNResult, error)) {
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	// Same guard as launchNN: the two arms must fail identically on
	// bad input, not diverge into a slice-bounds panic here.
	if len(item) == 0 || len(item) > sys.c.Params.PageSize() {
		done(nil, fmt.Errorf("ispvol: query item of %d bytes (page is %d)", len(item), sys.c.Params.PageSize()))
		return
	}
	node := sys.c.Node(origin)
	start := sys.c.Eng.Now()
	res := &NNResult{BestID: -1, BestDist: math.MaxInt, Pages: len(ids)}

	threads := sys.cfg.HostThreads
	workers := make([]*hostmodel.Thread, threads)
	for i := range workers {
		workers[i] = node.CPU.NewThread()
	}
	sys.hostScanLoop(len(ids), read, func(i int, data []byte, err error, slotDone func()) {
		if err != nil {
			res.FailedPages++
			slotDone()
			return
		}
		w := workers[i%threads]
		w.Do(lsh.HammingCPUPerPage, func() {
			d := lsh.HammingDistance(item, data[:len(item)])
			res.Comparisons++
			if nnBetter(d, ids[i], res.BestDist, res.BestID) {
				res.BestID, res.BestDist = ids[i], d
			}
			slotDone()
		})
	}, func() {
		if res.BestID < 0 {
			res.BestDist = -1
		}
		res.Elapsed = sys.c.Eng.Now() - start
		if res.Elapsed > 0 {
			res.CmpPerSec = float64(res.Comparisons) / res.Elapsed.Seconds()
		}
		done(res, nil)
	})
}

// NearestNeighborSync runs NearestNeighbor and drains the engine.
func (sys *System) NearestNeighborSync(origin int, item []byte, ids []int, lpns []int) (*NNResult, error) {
	return sys.nnSync("distributed", func(done func(*NNResult, error)) {
		sys.NearestNeighbor(origin, item, ids, lpns, done)
	})
}

// NearestNeighborHostSync runs NearestNeighborHost and drains the engine.
func (sys *System) NearestNeighborHostSync(origin int, item []byte, ids []int, lpns []int) (*NNResult, error) {
	return sys.nnSync("host-mediated", func(done func(*NNResult, error)) {
		sys.NearestNeighborHost(origin, item, ids, lpns, done)
	})
}

// NearestNeighborFileSync runs NearestNeighborFile and drains the engine.
func (sys *System) NearestNeighborFileSync(origin int, f *rfs.File, item []byte, ids []int, pages []int) (*NNResult, error) {
	return sys.nnSync("file", func(done func(*NNResult, error)) {
		sys.NearestNeighborFile(origin, f, item, ids, pages, done)
	})
}

// NearestNeighborFileHostSync runs NearestNeighborFileHost and drains
// the engine.
func (sys *System) NearestNeighborFileHostSync(origin int, f *rfs.File, item []byte, ids []int, pages []int) (*NNResult, error) {
	return sys.nnSync("host-mediated file", func(done func(*NNResult, error)) {
		sys.NearestNeighborFileHost(origin, f, item, ids, pages, done)
	})
}

func (sys *System) nnSync(kind string, run func(done func(*NNResult, error))) (*NNResult, error) {
	var res *NNResult
	var rerr error
	fired := false
	run(func(r *NNResult, e error) { res, rerr, fired = r, e, true })
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: %s nearest-neighbor never completed", kind)
	}
	return res, rerr
}
