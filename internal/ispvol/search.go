package ispvol

// Distributed string search (paper §7.3 ported to the volume): the
// origin resolves the logical range to physical pages, fans one
// Morris-Pratt engine out per node over the fabric, each engine
// streams its local pages off the flash through the Accel admission
// path and scans them at line rate, and only match offsets plus tiny
// page-edge residues return to the origin, which stitches the page
// junctions no single engine could see (the striped volume puts
// adjacent logical pages on different nodes).

import (
	"fmt"
	"sort"

	"repro/internal/accel/search"
	"repro/internal/rfs"
	"repro/internal/sim"
)

// SearchResult reports one distributed search query.
type SearchResult struct {
	// Matches holds the byte offsets of every occurrence, relative to
	// the start of the query's logical range, sorted.
	Matches     []int64
	Pages       int
	FailedPages int      // pages whose read failed (their matches are lost)
	Bytes       int64    // haystack bytes scanned
	Elapsed     sim.Time // query start to merged-result-in-host-memory
	Throughput  float64  // bytes/second
}

// searchStartMsg fans a query partition out to one node's engine: the
// compiled pattern plus the physical address list (Figure 8 step 2).
type searchStartMsg struct {
	query  uint64
	origin int
	ps     int // page size of the scanned store (volume or file system)
	needle []byte
	refs   []pageRef
}

// searchPartMsg returns a partition's reduction to the origin: match
// offsets and per-page edge residues for junction stitching.
type searchPartMsg struct {
	query   uint64
	node    int
	matches []int64
	qidx    []int
	heads   [][]byte
	tails   [][]byte
	failed  int
}

// searchQuery is the origin-side merge state.
type searchQuery struct {
	sys          *System
	id           uint64
	origin       int
	pat          *search.Pattern
	pages        int
	ps           int
	pendingParts int
	matches      []int64
	heads        [][]byte // indexed by qidx
	tails        [][]byte
	failed       int
	start        sim.Time
	done         func(*SearchResult, error)
}

// Search runs the distributed ISP-F string search over logical pages
// [lo, hi) of the volume, with the query originating (and results
// merging) at node origin. It is asynchronous: done fires in virtual
// time once the merged result has DMA'd into the origin host's
// memory; the caller drives the engine (Cluster.Run or an enclosing
// workload window). Engine flash reads are admitted through the
// scheduler's Accel class (or raw, under Bypass admission — the bug
// reproduction arm).
//
//simlint:once done
func (sys *System) Search(origin, lo, hi int, needle []byte, done func(*SearchResult, error)) {
	pat, err := search.Compile(needle)
	if err != nil {
		done(nil, err)
		return
	}
	// Figure 8 step 1: host software resolves the physical address
	// list. This (plus the fan-out RPC below) is the only host work on
	// the whole query.
	parts, err := sys.partition(lo, hi)
	if err != nil {
		done(nil, err)
		return
	}
	sys.launchSearch(origin, hi-lo, sys.v.PageSize(), parts, needle, pat, done)
}

// SearchFile runs the distributed ISP-F string search over a file of
// a cluster RFS — the paper's Figure 8 end-to-end at appliance scale:
// the origin queries the file system for the cluster-wide physical
// location of every page (step 1), partitions the list by owning
// node, fans one engine per node out over the fabric (step 2), and
// the engines stream their partitions directly off the flash through
// the scheduler's Accel admission (steps 3-4), returning only match
// offsets and page-edge residues for the origin's junction stitch.
// The file must be read-stable for the duration of the query (the
// physical addresses are snapshots; see rfs.File.PhysicalAddrs).
//
//simlint:once done
func (sys *System) SearchFile(origin int, f *rfs.File, needle []byte, done func(*SearchResult, error)) {
	pat, err := search.Compile(needle)
	if err != nil {
		done(nil, err)
		return
	}
	addrs, err := f.PhysicalAddrs()
	if err != nil {
		done(nil, err)
		return
	}
	sys.launchSearch(origin, len(addrs), f.PageSize(), sys.partitionAddrs(addrs), needle, pat, done)
}

// launchSearch registers the origin-side merge state and fans the
// partitions out to the per-node engines.
//
//simlint:once done
func (sys *System) launchSearch(origin, pages, ps int, parts [][]pageRef,
	needle []byte, pat *search.Pattern, done func(*SearchResult, error)) {
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	q := &searchQuery{
		sys:    sys,
		origin: origin,
		pat:    pat,
		pages:  pages,
		ps:     ps,
		heads:  make([][]byte, pages),
		tails:  make([][]byte, pages),
		start:  sys.c.Eng.Now(),
		done:   done,
	}
	q.id = sys.startQuery(q)
	for _, refs := range parts {
		if len(refs) > 0 {
			q.pendingParts++
		}
	}
	if q.pendingParts == 0 {
		q.finish()
		return
	}
	// One software + RPC charge covers the whole fan-out: the host
	// ships the pattern (needle + MP constants) and each partition's
	// address list to its node's engine, then gets out of the way.
	node := sys.nodes[origin].node
	patBytes := len(needle) + 4*(len(needle)+1)
	node.Host.ChargeSoftware(func() {
		node.Host.RPC(func() {
			for n, refs := range parts {
				if len(refs) == 0 {
					continue
				}
				msg := &searchStartMsg{query: q.id, origin: origin, ps: ps, needle: needle, refs: refs}
				sys.deliver(origin, n, 32+patBytes+16*len(refs), msg)
			}
		})
	})
}

// runSearchPart executes one node's engine: scan every local page of
// the partition, collect in-page matches and edge residues, ship the
// reduction to the origin.
func (sys *System) runSearchPart(ns *nodeISP, m *searchStartMsg) {
	pat, err := search.Compile(m.needle)
	if err != nil {
		// The origin compiled the same needle before fanning out.
		panic(fmt.Sprintf("ispvol: uncompilable needle reached an engine: %v", err))
	}
	res := &searchPartMsg{query: m.query, node: ns.node.ID()}
	ps := m.ps
	sc := pat.NewScanner()
	sys.runEngine(ns.node.ID(), m.refs, func(_ int, ref pageRef, data []byte, err error) {
		if err != nil {
			res.failed++
			return
		}
		// Per-page scan with fresh state: the partition's pages are not
		// logically adjacent (the volume stripes them), so only matches
		// fully inside a page can be found here; straddlers are the
		// origin's junction pass.
		sc.Reset(int64(ref.qidx) * int64(ps))
		sc.Feed(data, func(pos int64) {
			res.matches = append(res.matches, pos)
		})
		h, t := pat.EdgeBytes(data)
		res.qidx = append(res.qidx, ref.qidx)
		res.heads = append(res.heads, append([]byte(nil), h...))
		res.tails = append(res.tails, append([]byte(nil), t...))
	}, func() {
		size := 32 + 8*len(res.matches) + 4*len(res.qidx)
		for i := range res.heads {
			size += len(res.heads[i]) + len(res.tails[i])
		}
		sys.deliver(ns.node.ID(), m.origin, size, res)
	})
}

// part merges one node's reduction into the origin state.
func (q *searchQuery) part(msg any) {
	m := msg.(*searchPartMsg)
	q.matches = append(q.matches, m.matches...)
	for i, qi := range m.qidx {
		q.heads[qi] = m.heads[i]
		q.tails[qi] = m.tails[i]
	}
	q.failed += m.failed
	q.pendingParts--
	if q.pendingParts == 0 {
		q.finish()
	}
}

// merge stitches the page junctions from the collected edge residues
// and assembles the sorted result (Elapsed/Throughput are stamped by
// the caller once the result has reached host memory). Both arms —
// distributed and host-mediated — merge through this one path, so
// their match sets can only diverge on the data path, which is what
// the experiments' cross-validation is meant to test.
func (q *searchQuery) merge() *SearchResult {
	for b := 1; b < q.pages; b++ {
		q.matches = append(q.matches,
			q.pat.JunctionMatches(q.tails[b-1], q.heads[b], int64(b)*int64(q.ps))...)
	}
	sort.Slice(q.matches, func(i, j int) bool { return q.matches[i] < q.matches[j] })
	return &SearchResult{
		Matches:     q.matches,
		Pages:       q.pages,
		FailedPages: q.failed,
		Bytes:       int64(q.pages) * int64(q.ps),
	}
}

// stamp fills the timing fields at completion time.
func (q *searchQuery) stamp(res *SearchResult) {
	res.Elapsed = q.sys.c.Eng.Now() - q.start
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Bytes) / res.Elapsed.Seconds()
	}
}

// finish merges and DMAs the match list into the origin host's memory.
func (q *searchQuery) finish() {
	q.sys.finishQuery(q.id)
	res := q.merge()
	q.sys.dmaToHost(q.origin, 8*len(q.matches), func() {
		q.stamp(res)
		q.done(res, nil)
	})
}

// SearchHost runs the same query host-mediated: the origin host reads
// every page of the range through the volume at Config.HostClass
// (batched doorbells, PCIe DMA, read buffers) and scans it in
// software on Config.HostThreads worker threads at grep cost. The
// result shape is identical to Search, so the two arms cross-validate
// match-for-match; what differs is who moves and touches the bytes.
func (sys *System) SearchHost(origin, lo, hi int, needle []byte, done func(*SearchResult, error)) {
	if sys.v == nil {
		done(nil, ErrNoVolume)
		return
	}
	if lo < 0 || hi > sys.v.Pages() || lo > hi {
		done(nil, fmt.Errorf("ispvol: range [%d,%d) out of volume", lo, hi))
		return
	}
	st, err := sys.v.NewStream(fmt.Sprintf("isp-hostmed-n%d", origin), sys.cfg.HostClass)
	if err != nil {
		done(nil, err)
		return
	}
	sys.searchHostScan(origin, hi-lo, sys.v.PageSize(),
		func(qidx int, cb func([]byte, error)) { st.Read(lo+qidx, cb) },
		needle, done)
}

// SearchFileHost is SearchFile's host-mediated twin over a cluster
// RFS file: the origin host reads every page of the file through the
// file system at Config.HostClass (scheduler admission, batched
// doorbells, PCIe DMA, read buffers) and scans it in software on
// Config.HostThreads worker threads at grep cost. Identical result
// shape to SearchFile, so the two arms cross-validate; what differs
// is who moves and touches the bytes.
func (sys *System) SearchFileHost(origin int, f *rfs.File, needle []byte, done func(*SearchResult, error)) {
	h := f.At(sys.cfg.HostClass)
	sys.searchHostScan(origin, f.Pages(), f.PageSize(),
		func(qidx int, cb func([]byte, error)) { h.ReadPage(qidx, cb) },
		needle, done)
}

// searchHostScan is the host-mediated scan core shared by the volume
// and file entry points: read every page of the range through the
// host path, scan on worker threads, merge through the same junction
// logic as the distributed arm.
func (sys *System) searchHostScan(origin, pages, ps int, read func(qidx int, cb func([]byte, error)),
	needle []byte, done func(*SearchResult, error)) {
	pat, err := search.Compile(needle)
	if err != nil {
		done(nil, err)
		return
	}
	if origin < 0 || origin >= sys.c.Nodes() {
		done(nil, fmt.Errorf("ispvol: origin %d out of range", origin))
		return
	}
	node := sys.c.Node(origin)
	q := &searchQuery{sys: sys, origin: origin, pat: pat, pages: pages, ps: ps,
		heads: make([][]byte, pages), tails: make([][]byte, pages),
		start: sys.c.Eng.Now(), done: done}

	threads := sys.cfg.HostThreads
	workers := make([]*workerState, threads)
	for i := range workers {
		workers[i] = &workerState{th: node.CPU.NewThread(), sc: pat.NewScanner()}
	}
	scanCost := sim.Time(ps) * search.GrepCPUPerByte * sim.Nanosecond

	// Same merge as the distributed arm; the pages are already in host
	// memory, so there is no final DMA to pay.
	sys.hostScanLoop(pages, read, func(qidx int, data []byte, err error, slotDone func()) {
		if err != nil {
			q.failed++
			slotDone()
			return
		}
		w := workers[qidx%threads]
		w.th.Do(scanCost, func() {
			w.sc.Reset(int64(qidx) * int64(ps))
			w.sc.Feed(data, func(pos int64) {
				q.matches = append(q.matches, pos)
			})
			h, t := pat.EdgeBytes(data)
			q.heads[qidx] = append([]byte(nil), h...)
			q.tails[qidx] = append([]byte(nil), t...)
			slotDone()
		})
	}, func() {
		res := q.merge()
		q.stamp(res)
		done(res, nil)
	})
}

// SearchSync runs Search and drains the engine; for tests and
// examples that have nothing else in flight.
func (sys *System) SearchSync(origin, lo, hi int, needle []byte) (*SearchResult, error) {
	var res *SearchResult
	var rerr error
	fired := false
	sys.Search(origin, lo, hi, needle, func(r *SearchResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: search never completed")
	}
	return res, rerr
}

// SearchHostSync runs SearchHost and drains the engine.
func (sys *System) SearchHostSync(origin, lo, hi int, needle []byte) (*SearchResult, error) {
	var res *SearchResult
	var rerr error
	fired := false
	sys.SearchHost(origin, lo, hi, needle, func(r *SearchResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: host-mediated search never completed")
	}
	return res, rerr
}

// SearchFileSync runs SearchFile and drains the engine.
func (sys *System) SearchFileSync(origin int, f *rfs.File, needle []byte) (*SearchResult, error) {
	var res *SearchResult
	var rerr error
	fired := false
	sys.SearchFile(origin, f, needle, func(r *SearchResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: file search never completed")
	}
	return res, rerr
}

// SearchFileHostSync runs SearchFileHost and drains the engine.
func (sys *System) SearchFileHostSync(origin int, f *rfs.File, needle []byte) (*SearchResult, error) {
	var res *SearchResult
	var rerr error
	fired := false
	sys.SearchFileHost(origin, f, needle, func(r *SearchResult, e error) {
		res, rerr, fired = r, e, true
	})
	sys.c.Run()
	if !fired {
		return nil, fmt.Errorf("ispvol: host-mediated file search never completed")
	}
	return res, rerr
}
