package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/hostif"
	"repro/internal/hostmodel"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Endpoint indices of the built-in cluster services. Remote flash
// traffic is striped over FlashLanes request/response endpoint pairs:
// deterministic routing pins each endpoint to one path (§3.2.3), so
// multiple endpoints are what lets parallel cables between two nodes
// carry parallel flash traffic (the ISP-3Nodes setup of Figure 13).
// User in-store processors bind their own endpoints at EPUser and up.
const (
	FlashLanes  = 4
	EPFlashReq  = 0          // lanes 0..FlashLanes-1: requests
	EPFlashResp = FlashLanes // lanes FlashLanes..2*FlashLanes-1: responses
	EPUser      = 8          // first endpoint index free for applications
)

// ISPReadLanes is the number of parallel read channels each card
// offers its in-store processors. A flashserver interface delivers
// responses in FIFO request order, so one shared channel would
// head-of-line-block every ISP read behind whichever chip happens to
// be busiest; striping reads over independent channels models the
// tag-based flash controller completing reads out of order — the
// paper's "4 read commands can saturate a single flash bus" sizing
// (§7.3). Writes and erases keep the single in-order channel: NAND
// programs blocks strictly in page order.
const ISPReadLanes = 4

// AccessPath selects how a remote page is fetched (paper §6.4).
type AccessPath int

// The four access paths of Figure 12.
const (
	PathISPF AccessPath = iota // in-store processor -> remote flash
	PathHF                     // host -> remote flash (integrated network)
	PathHRHF                   // host -> remote flash via remote host
	PathHD                     // host -> remote DRAM
)

func (p AccessPath) String() string {
	switch p {
	case PathISPF:
		return "ISP-F"
	case PathHF:
		return "H-F"
	case PathHRHF:
		return "H-RH-F"
	case PathHD:
		return "H-D"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// Trace decomposes one access's latency the way Figure 14 does.
type Trace struct {
	Software sim.Time // host software + RPC + interrupt charges
	Storage  sim.Time // flash array access (first byte out of storage)
	Transfer sim.Time // data movement: buses, serial links, PCIe
	Network  sim.Time // per-hop switch/wire latency
	Total    sim.Time
}

// reqMsg travels on a flash request lane.
type reqMsg struct {
	card    int
	addr    nand.Addr
	reqID   uint64
	lane    int
	from    fabric.NodeID
	viaHost bool // remote host processes the request (H-RH-F)
	dram    bool // serve from the on-device DRAM buffer (H-D)
	write   bool
	erase   bool
	bg      bool   // background (GC) traffic: keep off the latency FIFOs
	data    []byte // payload for writes
}

// respMsg travels on EPFlashResp.
type respMsg struct {
	reqID uint64
	data  []byte
	err   error
}

// Node is one BlueDBM node: Xeon host + storage device (Figure 2).
type Node struct {
	cluster *Cluster
	id      int

	cards     []*nand.Card
	ctls      []*flashctl.Controller
	splitters []*flashserver.Splitter
	servers   []*flashserver.Server

	// ispIfaces and hostIfaces are per-card in-order flash interfaces
	// dedicated to in-store processors and to the host DMA path.
	// bgIfaces carry host-side background traffic (FTL garbage
	// collection): an interface delivers responses in FIFO request
	// order, so a 3 ms block erase sharing the latency path's
	// interface would head-of-line-block every read behind it.
	// ispReadIfaces stripe ISP reads over ISPReadLanes channels per
	// card (ispIfaces keep the single in-order channel for ISP writes
	// and erases).
	ispIfaces     []*flashserver.Iface
	ispReadIfaces [][]*flashserver.Iface
	ispReadRR     []int
	hostIfaces    []*flashserver.Iface
	bgIfaces      []*flashserver.Iface

	Host *hostif.HostIf
	CPU  *hostmodel.CPU
	dram *sim.Pipe

	// ioThread is the host's serial I/O submission thread: every
	// batched doorbell (SubmitHostBatch) is charged here, so doorbell
	// software cost consumes CPU instead of being pure latency.
	ioThread *hostmodel.Thread

	netNode *fabric.Node
	reqEPs  []*fabric.Endpoint
	respEPs []*fabric.Endpoint

	nextReq uint64
	pending map[uint64]func(data []byte, err error)

	// batchFree recycles doorbell batch slices: SubmitHostBatch takes
	// ownership of its reqs argument and parks the storage here once
	// the RPC loop has consumed it; GetBatch hands it back out.
	batchFree [][]HostReq
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Card returns flash card c.
func (n *Node) Card(c int) *nand.Card { return n.cards[c] }

// Controller returns the flash controller of card c.
func (n *Node) Controller(c int) *flashctl.Controller { return n.ctls[c] }

// Server returns the flash server of card c.
func (n *Node) Server(c int) *flashserver.Server { return n.servers[c] }

// NewIface creates a fresh in-order flash interface on card c, for
// in-store processors that want private FIFO channels.
func (n *Node) NewIface(c int, name string) *flashserver.Iface {
	return n.servers[c].NewIface(name)
}

// NetNode exposes the node's fabric personality so applications can
// bind their own endpoints (>= EPUser).
func (n *Node) NetNode() *fabric.Node { return n.netNode }

// Eng returns the cluster's event engine.
func (n *Node) Eng() *sim.Engine { return n.cluster.Eng }

// --- local flash access (device side / ISP path) ---------------------

// ReadLocal reads a page on this node's own flash through the in-store
// processor interface: no host, no network. Reads stripe round-robin
// over the card's ISPReadLanes channels so concurrent ISP reads
// complete out of order instead of convoying behind one busy chip;
// callers needing a private FIFO channel use NewIface.
func (n *Node) ReadLocal(card int, addr nand.Addr, cb func(data []byte, err error)) {
	lanes := n.ispReadIfaces[card]
	lane := n.ispReadRR[card] % len(lanes)
	n.ispReadRR[card]++
	//simlint:allow escapecheck (inlined flashserver read: the per-op completion record is audited at its declaration, hidden under NAND latency)
	lanes[lane].ReadPhysical(addr, cb)
}

// WriteLocal programs a page on this node's own flash (ISP interface).
func (n *Node) WriteLocal(card int, addr nand.Addr, data []byte, cb func(err error)) {
	n.ispIfaces[card].WritePhysical(addr, data, cb)
}

// EraseLocal erases a block on this node's own flash.
func (n *Node) EraseLocal(card int, addr nand.Addr, cb func(err error)) {
	n.ispIfaces[card].Erase(addr, cb)
}

// --- global address space (ISP-F path) ------------------------------

// ISPRead reads any page in the cluster from this node's in-store
// processor. Local pages use the local flash interface; remote pages
// go over the integrated storage network to the remote flash server —
// the ISP-F path, with zero host involvement anywhere.
//
// When an AccelRouter is installed on the cluster (by the request
// scheduler), the read is admitted through it first, so ISP traffic
// shares the per-node device window and the Accel token budget with
// host traffic instead of bypassing QoS arbitration. The data path
// after the grant is identical: the router issues via ISPReadDirect.
func (n *Node) ISPRead(a PageAddr, cb func(data []byte, err error)) {
	if r := n.cluster.accelRouter; r != nil {
		r(n.id, a, cb)
		return
	}
	n.ISPReadDirect(a, cb)
}

// ISPReadDirect is the raw device-side read path underneath ISPRead:
// it always issues immediately, even when an accel router is
// installed. It exists for the scheduler's own issue path (a granted
// Accel request must not re-enter admission); every other caller
// should use ISPRead so an installed router can arbitrate.
func (n *Node) ISPReadDirect(a PageAddr, cb func(data []byte, err error)) {
	if a.Node == n.id {
		n.ReadLocal(a.Card, a.Addr, cb)
		return
	}
	n.remoteReq(reqMsg{card: a.Card, addr: a.Addr}, a.Node, cb)
}

// ISPWrite writes any page in the cluster from this node's ISP.
func (n *Node) ISPWrite(a PageAddr, data []byte, cb func(err error)) {
	if a.Node == n.id {
		n.WriteLocal(a.Card, a.Addr, data, cb)
		return
	}
	n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, write: true, data: data}, a.Node,
		func(_ []byte, err error) { cb(err) })
}

// remoteReq sends a request message on the next lane (round-robin) and
// registers the completion.
//
//simlint:allow escapecheck (the request descriptor is captured by the lane send; one bounded message per remote op, hidden under fabric latency)
func (n *Node) remoteReq(msg reqMsg, dst int, cb func(data []byte, err error)) {
	msg.reqID = n.nextReq
	msg.lane = int(n.nextReq % FlashLanes)
	msg.from = n.netNode.ID()
	n.nextReq++
	n.pending[msg.reqID] = cb
	size := 32 // request descriptor
	if msg.write {
		size += len(msg.data)
	}
	if err := n.reqEPs[msg.lane].Send(fabric.NodeID(dst), size, &msg, nil); err != nil {
		delete(n.pending, msg.reqID)
		cb(nil, err)
	}
}

// handleFlashReq is the device-side service for remote requests.
func (n *Node) handleFlashReq(src fabric.NodeID, _ int, payload any) {
	msg := payload.(*reqMsg)
	serve := func() {
		switch {
		case msg.dram:
			// The page is cached in the on-device DRAM buffer: no flash
			// latency, just the buffer access. The cache holds the same
			// logical content as the flash page.
			n.dram.Transfer(n.cluster.Params.PageSize(), func() {
				data := make([]byte, n.cluster.Params.PageSize())
				if raw := n.cards[msg.card].Peek(msg.addr); raw != nil {
					copy(data, raw[:n.cluster.Params.PageSize()])
				}
				n.respond(msg, data, nil)
			})
		case msg.write:
			n.serveIface(msg).WritePhysical(msg.addr, msg.data, func(err error) {
				n.respond(msg, nil, err)
			})
		case msg.erase:
			n.serveIface(msg).Erase(msg.addr, func(err error) {
				n.respond(msg, nil, err)
			})
		default:
			iface := n.serveIface(msg)
			if !msg.bg {
				// Remote latency-path reads stripe over the card's ISP
				// read lanes like local ISP reads do.
				lanes := n.ispReadIfaces[msg.card]
				iface = lanes[n.ispReadRR[msg.card]%len(lanes)]
				n.ispReadRR[msg.card]++
			}
			iface.ReadPhysical(msg.addr, func(data []byte, err error) {
				n.respond(msg, data, err)
			})
		}
	}
	if msg.viaHost {
		// The request surfaces to the remote host's software before
		// being served. Flash requests (H-RH-F) pay the full storage
		// stack; DRAM-cached requests (H-D) take the lightweight
		// user-level serving path.
		h := n.Host.Config()
		n.cluster.Eng.After(h.InterruptLatency, func() {
			if msg.dram {
				n.Host.ChargeLightSoftware(func() { n.Host.RPC(serve) })
			} else {
				n.Host.ChargeSoftware(func() { n.Host.RPC(serve) })
			}
		})
		return
	}
	serve()
}

// serveIface picks the device-side interface for a remote request:
// background (GC) traffic stays off the in-store processors' FIFO.
func (n *Node) serveIface(msg *reqMsg) *flashserver.Iface {
	if msg.bg {
		return n.bgIfaces[msg.card]
	}
	return n.ispIfaces[msg.card]
}

// respond ships the result back over the integrated network on the
// response lane paired with the request's lane.
func (n *Node) respond(msg *reqMsg, data []byte, err error) {
	size := 32 + len(data)
	resp := &respMsg{reqID: msg.reqID, data: data, err: err}
	if serr := n.respEPs[msg.lane].Send(msg.from, size, resp, nil); serr != nil {
		panic(fmt.Sprintf("core: response route missing: %v", serr))
	}
}

// handleFlashResp completes a pending remote request.
func (n *Node) handleFlashResp(_ fabric.NodeID, _ int, payload any) {
	resp := payload.(*respMsg)
	cb, ok := n.pending[resp.reqID]
	if !ok {
		return
	}
	delete(n.pending, resp.reqID)
	cb(resp.data, resp.err)
}

// --- host-mediated access paths (Figure 12) --------------------------

// HostReq is one host-side flash request in the batched submission
// path: the unit the request scheduler (internal/sched) admits, queues
// and coalesces. For writes Data carries the payload and Done's data
// argument is nil. Erase requests (issued by the host-resident FTL's
// garbage collector) erase the whole block containing Addr; for them
// too Done's data argument is nil. Done fires exactly once.
type HostReq struct {
	Addr  PageAddr
	Write bool
	Erase bool
	// Background routes the request over the card's background flash
	// interface instead of the latency path's. Interfaces deliver
	// responses in FIFO request order, so slow housekeeping ops (GC
	// relocation, 3 ms erases) sharing the foreground interface would
	// head-of-line-block every read behind them; a separate interface
	// confines the wait to real chip-level contention.
	Background bool
	Data       []byte
	Done       func(data []byte, err error)
}

// HostRouter admits host traffic into an external request scheduler.
// node is the index of the node whose host issued the request. A
// non-nil error (typically the scheduler's backpressure error) means
// the request was NOT admitted and its Done will never fire.
type HostRouter func(node int, req HostReq) error

// AccelRouter admits device-side in-store processor reads into an
// external request scheduler. origin is the node whose ISP issued the
// read; a is the page anywhere in the cluster. The router owns the
// completion: cb fires exactly once (with the page data or an error),
// and admission backpressure is absorbed inside the router, because
// ISP engine pump loops predate the scheduler and never handled
// admission errors.
type AccelRouter func(origin int, a PageAddr, cb func(data []byte, err error))

// SubmitHostBatch issues a group of host requests paying the storage
// stack software overhead and the RPC doorbell ONCE for the whole
// batch: the driver rings the device with a queue of requests, which
// is what lets a host keep thousands of flash requests in flight
// (paper §3.3) instead of serialising on the 70 µs software path.
// Per-request buffer flow control, DMA and completion interrupts are
// still charged individually.
//
// Unlike the single-request HostRead/HostWrite paths (the unloaded
// measurement harness of Fig. 12, where software cost is pure
// latency), batch submission runs on the node's serial I/O submission
// thread and occupies host CPU — so under heavy traffic the doorbell
// rate, not the flash, is what saturates first unless batches
// amortize it.
//
// issued (optional) fires when the submission thread has finished the
// batch's software work and is free for the next doorbell; schedulers
// use it to accumulate the next batch instead of committing early to
// many small doorbells.
//
// The node takes ownership of reqs: the slice is recycled internally
// once the doorbell's RPC has issued every request, so callers must
// not touch it after the call. Obtain a recycled slice with GetBatch
// to make steady-state submission allocation-free.
func (n *Node) SubmitHostBatch(reqs []HostReq, issued func()) {
	if len(reqs) == 0 {
		return
	}
	h := n.Host.Config()
	cost := h.SoftwareOverhead + sim.Time(len(reqs))*h.BatchRequestOverhead
	//simlint:allow hotcall (one doorbell closure per batch, amortized over every request the batch carries)
	n.ioThread.Do(cost, func() {
		if issued != nil {
			issued()
		}
		//simlint:allow escapecheck (one RPC continuation per batch, amortized like the doorbell closure above)
		n.Host.RPC(func() {
			for i := range reqs {
				r := reqs[i]
				done := r.Done
				switch {
				case r.Erase:
					//simlint:allow escapecheck (per-request error adapter inside the batch loop; bounded by batch size and hidden under flash latency)
					n.issueHostErase(r.Addr, r.Background, func(err error) { done(nil, err) })
				case r.Write:
					//simlint:allow escapecheck (per-request error adapter inside the batch loop; bounded by batch size and hidden under flash latency)
					n.issueHostWrite(r.Addr, r.Data, r.Background, func(err error) { done(nil, err) })
				default:
					n.issueHostRead(r.Addr, r.Background, r.Done)
				}
				reqs[i] = HostReq{}
			}
			n.batchFree = append(n.batchFree, reqs[:0])
		})
	})
}

// GetBatch returns a zero-length HostReq slice for building the next
// doorbell batch, reusing storage from a batch the node has finished
// issuing when one is available.
func (n *Node) GetBatch() []HostReq {
	if k := len(n.batchFree); k > 0 {
		b := n.batchFree[k-1]
		n.batchFree[k-1] = nil
		n.batchFree = n.batchFree[:k-1]
		return b
	}
	return nil
}

// hostIface picks the foreground or background flash interface of a
// local card.
func (n *Node) hostIface(card int, bg bool) *flashserver.Iface {
	if bg {
		return n.bgIfaces[card]
	}
	return n.hostIfaces[card]
}

// issueHostRead is the device-side read path of a batch: flash or
// network fetch, then DMA into a host read buffer and the completion
// interrupt.
func (n *Node) issueHostRead(a PageAddr, bg bool, cb func(data []byte, err error)) {
	deliver := func(data []byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		n.Host.AcquireReadBuffer(len(data), func(buf int) {
			n.Host.ReleaseReadBuffer(buf)
			cb(data, nil)
		}, func(buf int) {
			n.Host.DeviceWriteChunk(buf, len(data), true)
		})
	}
	if a.Node == n.id {
		n.hostIface(a.Card, bg).ReadPhysical(a.Addr, deliver)
		return
	}
	n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, bg: bg}, a.Node, deliver)
}

// issueHostWrite is the device-side write path of a batch: write
// buffer, PCIe DMA down, then flash (local) or network (remote).
func (n *Node) issueHostWrite(a PageAddr, data []byte, bg bool, done func(err error)) {
	n.Host.AcquireWriteBuffer(func(_ int) {
		n.Host.DeviceReadBuffer(len(data), func() {
			fin := func(err error) {
				n.Host.ReleaseWriteBuffer()
				done(err)
			}
			if a.Node == n.id {
				n.hostIface(a.Card, bg).WritePhysical(a.Addr, data, fin)
				return
			}
			n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, write: true, data: data, bg: bg}, a.Node,
				func(_ []byte, err error) { fin(err) })
		})
	})
}

// issueHostErase is the device-side erase path of a batch: no data
// movement, just the flash command — local via the background host
// interface, remote over the integrated network.
func (n *Node) issueHostErase(a PageAddr, bg bool, done func(err error)) {
	if a.Node == n.id {
		n.hostIface(a.Card, bg).Erase(a.Addr, done)
		return
	}
	n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, erase: true, bg: bg}, a.Node,
		func(_ []byte, err error) { done(err) })
}

// HostRead fetches a page into host memory via the selected access
// path, filling tr (optional) with the latency decomposition.
//
// When a HostRouter is installed on the cluster, untraced PathHF/ISPF
// reads are admitted through it instead of issuing directly, so all
// production host traffic shares the scheduler's admission queues.
// Traced calls and the special H-RH-F / H-D paths bypass the router:
// they are the single-request measurement harness of Figures 12/14.
func (n *Node) HostRead(a PageAddr, path AccessPath, tr *Trace, cb func(data []byte, err error)) {
	if r := n.cluster.router; r != nil && tr == nil && (path == PathHF || path == PathISPF) {
		if err := r(n.id, HostReq{Addr: a, Done: cb}); err != nil {
			cb(nil, err)
		}
		return
	}
	start := n.cluster.Eng.Now()
	h := n.Host.Config()
	net := n.cluster.Net.Config()
	hops := n.cluster.Hops(n.id, a.Node)

	finish := func(data []byte, err error) {
		if tr != nil {
			tr.Total = n.cluster.Eng.Now() - start
			tr.Network = sim.Time(2*hops) * net.HopLatency
			if path != PathHD {
				tr.Storage = n.cluster.Params.FlashTiming.ReadPage
			} else {
				tr.Storage = n.cluster.Params.DRAMLatency
			}
			switch path {
			case PathHRHF:
				tr.Software += h.InterruptLatency + h.SoftwareOverhead + h.RPCLatency
			case PathHD:
				tr.Software += h.InterruptLatency + h.LightSoftware + h.RPCLatency
			}
			rest := tr.Total - tr.Network - tr.Storage - tr.Software
			if rest < 0 {
				rest = 0
			}
			tr.Transfer = rest
		}
		cb(data, err)
	}

	// Host software issues the request, then rings the RPC doorbell.
	// Flash paths go through the storage stack; the DRAM path is a
	// lightweight client library.
	issue := n.Host.ChargeSoftware
	issueCost := h.SoftwareOverhead
	if path == PathHD {
		issue = n.Host.ChargeLightSoftware
		issueCost = h.LightSoftware
	}
	issue(func() {
		if tr != nil {
			tr.Software += issueCost + h.RPCLatency
		}
		n.Host.RPC(func() {
			deliver := func(data []byte, err error) {
				if err != nil {
					finish(nil, err)
					return
				}
				// DMA the page into a host read buffer; interrupt.
				n.Host.AcquireReadBuffer(len(data), func(buf int) {
					if tr != nil {
						tr.Software += h.InterruptLatency
					}
					n.Host.ReleaseReadBuffer(buf)
					finish(data, nil)
				}, func(buf int) {
					n.Host.DeviceWriteChunk(buf, len(data), true)
				})
			}
			switch {
			case a.Node == n.id:
				n.hostIfaces[a.Card].ReadPhysical(a.Addr, deliver)
			case path == PathHD:
				// §6.4: in the H-D case (like H-RH-F) the request is
				// processed by the remote server, not the remote ISP.
				n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, dram: true, viaHost: true}, a.Node, deliver)
			case path == PathHRHF:
				n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, viaHost: true}, a.Node, deliver)
			default: // PathHF, PathISPF degenerate to direct remote flash
				n.remoteReq(reqMsg{card: a.Card, addr: a.Addr}, a.Node, deliver)
			}
		})
	})
}

// HostWrite stores a page from host memory to any flash page in the
// cluster: write buffer, RPC, PCIe DMA down, then flash (local) or
// network (remote). Like HostRead, it routes through an installed
// HostRouter so the scheduler sees all production host traffic.
func (n *Node) HostWrite(a PageAddr, data []byte, cb func(err error)) {
	if r := n.cluster.router; r != nil {
		if err := r(n.id, HostReq{Addr: a, Write: true, Data: data,
			Done: func(_ []byte, err error) { cb(err) }}); err != nil {
			cb(err)
		}
		return
	}
	n.Host.ChargeSoftware(func() {
		n.Host.AcquireWriteBuffer(func(_ int) {
			n.Host.RPC(func() {
				n.Host.DeviceReadBuffer(len(data), func() {
					done := func(err error) {
						n.Host.ReleaseWriteBuffer()
						cb(err)
					}
					if a.Node == n.id {
						n.hostIfaces[a.Card].WritePhysical(a.Addr, data, done)
						return
					}
					n.remoteReq(reqMsg{card: a.Card, addr: a.Addr, write: true, data: data}, a.Node,
						func(_ []byte, err error) { done(err) })
				})
			})
		})
	})
}
