// Package core assembles the BlueDBM appliance (paper §3, Figure 1):
// a homogeneous cluster of host servers, each coupled to a storage
// device that combines flash cards, a flash controller with ECC, an
// in-store processing substrate, an integrated storage network, and a
// PCIe host interface.
//
// The package exposes the global address space over all flash in the
// cluster and the four access paths the evaluation compares
// (Figure 12): ISP-F (in-store processor to remote flash over the
// integrated network), H-F (host to remote flash over the integrated
// network), H-RH-F (host to remote flash via the remote host), and
// H-D (host to remote DRAM).
package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/flashctl"
	"repro/internal/hostif"
	"repro/internal/hostmodel"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Params configures a cluster. DefaultParams reproduces the paper's
// 20-node deployment at reduced flash capacity (the geometry scales
// capacity, not behaviour: all bandwidths and latencies are faithful).
type Params struct {
	Nodes        int
	CardsPerNode int

	Geometry    nand.Geometry
	FlashTiming nand.Timing
	Reliability nand.Reliability

	Controller flashctl.Config
	Net        fabric.Config
	Topology   fabric.Topology // zero value: ring with 4 lanes
	Host       hostif.Config
	CPU        hostmodel.Config

	// QueueDepth is the flash server per-interface command queue depth.
	QueueDepth int
	// DRAMBytesPerSec is the on-device DRAM buffer bandwidth.
	DRAMBytesPerSec int64
	// DRAMLatency is the on-device DRAM access latency (H-D path).
	DRAMLatency sim.Time

	Seed uint64
}

// DefaultParams returns a paper-faithful cluster of n nodes. Flash
// geometry is scaled down (512 MB/card instead of 512 GB) so tests and
// benchmarks run quickly; timing and bandwidth parameters are the
// paper's.
func DefaultParams(n int) Params {
	return Params{
		Nodes:        n,
		CardsPerNode: 2,
		Geometry: nand.Geometry{
			// One independently-readable LUN per bus: with the 60 µs
			// cell read this pins the card at the paper's ~1.1 GB/s
			// logical read bandwidth (see nand.DefaultTiming).
			Buses:         8,
			ChipsPerBus:   1,
			BlocksPerChip: 64,
			PagesPerBlock: 32,
			PageSize:      8192,
			OOBSize:       1024,
		},
		FlashTiming:     nand.DefaultTiming(),
		Reliability:     nand.Reliability{BitErrorRate: 1e-9, EnduranceCycles: 3000, WearOutProb: 0.02},
		Controller:      flashctl.DefaultConfig(),
		Net:             fabric.DefaultConfig(),
		Host:            hostif.DefaultConfig(),
		CPU:             hostmodel.DefaultConfig(),
		QueueDepth:      256,
		DRAMBytesPerSec: 10_000_000_000,
		DRAMLatency:     200 * sim.Nanosecond,
		Seed:            1,
	}
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.Nodes <= 0 {
		return fmt.Errorf("core: %d nodes", p.Nodes)
	}
	if p.CardsPerNode <= 0 {
		return fmt.Errorf("core: %d cards per node", p.CardsPerNode)
	}
	if err := p.Geometry.Validate(); err != nil {
		return err
	}
	if p.Host.PageBytes != p.Geometry.PageSize {
		return fmt.Errorf("core: host page buffers (%d B) must match flash pages (%d B)",
			p.Host.PageBytes, p.Geometry.PageSize)
	}
	if p.QueueDepth <= 0 {
		return fmt.Errorf("core: queue depth %d", p.QueueDepth)
	}
	return nil
}

// PageSize returns the cluster's page size.
func (p Params) PageSize() int { return p.Geometry.PageSize }

// NodeCapacity returns bytes of flash per node.
func (p Params) NodeCapacity() int64 {
	return int64(p.CardsPerNode) * p.Geometry.TotalBytes()
}
