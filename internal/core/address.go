package core

import (
	"fmt"

	"repro/internal/nand"
)

// PageAddr names one flash page anywhere in the cluster: BlueDBM's
// global address space (paper capability 2: "near-uniform latency
// access into a network of storage devices that form a global address
// space").
type PageAddr struct {
	Node int
	Card int
	Addr nand.Addr
}

func (a PageAddr) String() string {
	return fmt.Sprintf("n%d.card%d.%v", a.Node, a.Card, a.Addr)
}

// Valid reports whether the address is inside the cluster p describes.
func (a PageAddr) Valid(p Params) bool {
	if a.Node < 0 || a.Node >= p.Nodes || a.Card < 0 || a.Card >= p.CardsPerNode {
		return false
	}
	g := p.Geometry
	return a.Addr.Bus >= 0 && a.Addr.Bus < g.Buses &&
		a.Addr.Chip >= 0 && a.Addr.Chip < g.ChipsPerBus &&
		a.Addr.Block >= 0 && a.Addr.Block < g.BlocksPerChip &&
		a.Addr.Page >= 0 && a.Addr.Page < g.PagesPerBlock
}

// LinearPage maps a cluster-wide dense page index to an address,
// striping consecutive indices across buses then chips then cards so
// sequential data exploits full device parallelism (the layout the
// paper's flash interface encourages).
func LinearPage(p Params, node, idx int) PageAddr {
	g := p.Geometry
	bus := idx % g.Buses
	idx /= g.Buses
	chip := idx % g.ChipsPerBus
	idx /= g.ChipsPerBus
	card := idx % p.CardsPerNode
	idx /= p.CardsPerNode
	page := idx % g.PagesPerBlock
	idx /= g.PagesPerBlock
	block := idx
	return PageAddr{
		Node: node,
		Card: card,
		Addr: nand.Addr{Bus: bus, Chip: chip, Block: block, Page: page},
	}
}

// PagesPerNode returns the number of pages LinearPage can address on
// one node.
func PagesPerNode(p Params) int {
	return p.CardsPerNode * p.Geometry.TotalPages()
}
