package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/flashctl"
	"repro/internal/flashserver"
	"repro/internal/hostif"
	"repro/internal/hostmodel"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Cluster is a running BlueDBM appliance.
type Cluster struct {
	Eng    *sim.Engine
	Params Params
	Net    *fabric.Network
	nodes  []*Node

	hops        [][]int // precomputed hop distances
	router      HostRouter
	accelRouter AccelRouter
}

// SetHostRouter installs (or, with nil, removes) the scheduler hook
// that admits host traffic. See HostRouter and Node.HostRead.
func (c *Cluster) SetHostRouter(r HostRouter) { c.router = r }

// SetAccelRouter installs (or, with nil, removes) the scheduler hook
// that admits in-store processor reads. See AccelRouter and
// Node.ISPRead.
func (c *Cluster) SetAccelRouter(r AccelRouter) { c.accelRouter = r }

// NewCluster builds and wires the whole appliance.
func NewCluster(p Params) (*Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()

	topo := p.Topology
	if topo.Nodes == 0 {
		if p.Nodes == 1 {
			topo = fabric.Topology{Name: "single", Nodes: 1}
		} else {
			topo = fabric.Ring(p.Nodes, 4)
		}
	}
	if topo.Nodes != p.Nodes {
		return nil, fmt.Errorf("core: topology has %d nodes, cluster has %d", topo.Nodes, p.Nodes)
	}
	var net *fabric.Network
	var err error
	if p.Nodes == 1 {
		net = fabric.New(eng, p.Net, 1)
	} else {
		net, err = topo.Build(eng, p.Net, EPUser+8)
		if err != nil {
			return nil, err
		}
	}

	c := &Cluster{Eng: eng, Params: p, Net: net}
	for i := 0; i < p.Nodes; i++ {
		node, err := c.buildNode(i)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		c.nodes = append(c.nodes, node)
	}

	// Precompute hop distances for latency accounting.
	c.hops = make([][]int, p.Nodes)
	for i := range c.hops {
		c.hops[i] = make([]int, p.Nodes)
		for j := range c.hops[i] {
			c.hops[i][j] = c.bfsDist(i, j)
		}
	}
	return c, nil
}

func (c *Cluster) buildNode(i int) (*Node, error) {
	p := c.Params
	n := &Node{
		cluster: c,
		id:      i,
		pending: make(map[uint64]func([]byte, error)),
	}
	for card := 0; card < p.CardsPerNode; card++ {
		name := fmt.Sprintf("n%d/card%d", i, card)
		seed := p.Seed + uint64(i)*131 + uint64(card)*17
		cd, err := nand.NewCard(c.Eng, name, p.Geometry, p.FlashTiming, p.Reliability, seed)
		if err != nil {
			return nil, err
		}
		var sp *flashserver.Splitter
		ctl, err := flashctl.New(c.Eng, cd, p.Controller, flashctl.Handlers{
			ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
			ReadDone:     func(tag, corr int, err error) { sp.Handlers().ReadDone(tag, corr, err) },
			WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
			WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
			EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
		})
		if err != nil {
			return nil, err
		}
		sp = flashserver.NewSplitter(ctl)
		srv := flashserver.NewServer(sp, name, p.QueueDepth)
		n.cards = append(n.cards, cd)
		n.ctls = append(n.ctls, ctl)
		n.splitters = append(n.splitters, sp)
		n.servers = append(n.servers, srv)
		n.ispIfaces = append(n.ispIfaces, srv.NewIface(name+"/isp"))
		lanes := make([]*flashserver.Iface, ISPReadLanes)
		for l := range lanes {
			lanes[l] = srv.NewIface(fmt.Sprintf("%s/isp-rd%d", name, l))
		}
		n.ispReadIfaces = append(n.ispReadIfaces, lanes)
		n.ispReadRR = append(n.ispReadRR, 0)
		n.hostIfaces = append(n.hostIfaces, srv.NewIface(name+"/host"))
		n.bgIfaces = append(n.bgIfaces, srv.NewIface(name+"/host-bg"))
	}

	host, err := hostif.New(c.Eng, fmt.Sprintf("n%d", i), p.Host)
	if err != nil {
		return nil, err
	}
	n.Host = host
	cpu, err := hostmodel.New(c.Eng, fmt.Sprintf("n%d", i), p.CPU)
	if err != nil {
		return nil, err
	}
	n.CPU = cpu
	n.ioThread = cpu.NewThread()
	n.dram = sim.NewPipe(c.Eng, fmt.Sprintf("n%d/dram", i), p.DRAMBytesPerSec, p.DRAMLatency)

	n.netNode = c.Net.Node(fabric.NodeID(i))
	for lane := 0; lane < FlashLanes; lane++ {
		reqEP, err := n.netNode.BindEndpoint(EPFlashReq + lane)
		if err != nil {
			return nil, err
		}
		respEP, err := n.netNode.BindEndpoint(EPFlashResp + lane)
		if err != nil {
			return nil, err
		}
		reqEP.OnReceive = n.handleFlashReq
		respEP.OnReceive = n.handleFlashResp
		n.reqEPs = append(n.reqEPs, reqEP)
		n.respEPs = append(n.respEPs, respEP)
	}
	return n, nil
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Hops returns the network distance between two nodes.
func (c *Cluster) Hops(a, b int) int { return c.hops[a][b] }

func (c *Cluster) bfsDist(a, b int) int {
	if a == b {
		return 0
	}
	dist := map[int]int{a: 0}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, peer := range c.Net.Node(fabric.NodeID(v)).Neighbors() {
			pv := int(peer)
			if _, seen := dist[pv]; !seen {
				dist[pv] = dist[v] + 1
				if pv == b {
					return dist[pv]
				}
				queue = append(queue, pv)
			}
		}
	}
	return -1
}

// Run drains all pending simulation events.
func (c *Cluster) Run() { c.Eng.Run() }

// SeedLinear writes count pages of generated data starting at dense
// index 0 on node; gen produces the page payload for each index. It is
// the standard experiment-setup helper (timing is charged but setup
// happens before the measurement window).
func (c *Cluster) SeedLinear(node, count int, gen func(idx int, page []byte)) error {
	ps := c.Params.PageSize()
	if count > PagesPerNode(c.Params) {
		return fmt.Errorf("core: seeding %d pages exceeds node capacity %d", count, PagesPerNode(c.Params))
	}
	var firstErr error
	buf := make([]byte, ps)
	for idx := 0; idx < count; idx++ {
		a := LinearPage(c.Params, node, idx)
		for j := range buf {
			buf[j] = 0
		}
		if gen != nil {
			gen(idx, buf)
		}
		c.nodes[node].WriteLocal(a.Card, a.Addr, buf, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
		// Keep the write window bounded so memory stays flat.
		if idx%256 == 255 {
			c.Run()
		}
	}
	c.Run()
	return firstErr
}
