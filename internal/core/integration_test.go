package core

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestGlobalAddressSpaceAllPairs is the rack-scale demonstration: on a
// 20-node ring, every node reads pages written by every other node
// through the in-store path, and the observed latencies stay within
// the "near-uniform access" envelope the paper claims (the network
// adds only a few percent on top of a flash access).
func TestGlobalAddressSpaceAllPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("20-node all-pairs is slow in -short mode")
	}
	c := mkCluster(t, 20)
	// One distinctive page on each node.
	for n := 0; n < 20; n++ {
		a := LinearPage(c.Params, n, 0)
		var werr error
		c.Node(n).WriteLocal(a.Card, a.Addr, fill(byte(n), c.Params.PageSize()), func(err error) { werr = err })
		c.Run()
		if werr != nil {
			t.Fatalf("node %d write: %v", n, werr)
		}
	}
	var minLat, maxLat sim.Time
	for src := 0; src < 20; src++ {
		for dst := 0; dst < 20; dst++ {
			if src == dst {
				continue
			}
			a := LinearPage(c.Params, dst, 0)
			start := c.Eng.Now()
			var got []byte
			c.Node(src).ISPRead(a, func(d []byte, err error) {
				if err != nil {
					t.Fatalf("%d->%d: %v", src, dst, err)
				}
				got = d
			})
			c.Run()
			lat := c.Eng.Now() - start
			if !bytes.Equal(got, fill(byte(dst), c.Params.PageSize())) {
				t.Fatalf("%d->%d: wrong data", src, dst)
			}
			if minLat == 0 || lat < minLat {
				minLat = lat
			}
			if lat > maxLat {
				maxLat = lat
			}
		}
	}
	// Ring of 20 with 4 lanes: farthest node is 10 hops away. The paper
	// argues the network adds only ~5-10% to a flash access even then.
	spread := float64(maxLat-minLat) / float64(minLat)
	if spread > 0.25 {
		t.Fatalf("latency spread %.0f%% (min %v, max %v): not near-uniform", spread*100, minLat, maxLat)
	}
}

// TestConcurrentMixedTraffic stresses the full stack: simultaneous
// local reads, remote reads, and remote writes from every node, with
// data integrity verified at the end.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := mkCluster(t, 4)
	ps := c.Params.PageSize()
	// Seed a region on each node.
	for n := 0; n < 4; n++ {
		if err := c.SeedLinear(n, 32, func(idx int, page []byte) {
			page[0] = byte(n)
			page[1] = byte(idx)
		}); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(55)
	reads, writes := 0, 0
	wrote := map[PageAddr][]byte{}
	// Each node's write region: dense indices 32..47 land on page 2 of
	// 16 distinct (bus,chip,card) groups, so concurrent writes (whose
	// network lanes may reorder them) never violate NAND's in-order
	// programming inside one block.
	perDst := map[int]int{}
	// Launch 200 mixed operations without draining between them.
	for i := 0; i < 200; i++ {
		src := rng.Intn(4)
		dst := rng.Intn(4)
		switch rng.Intn(3) {
		case 0, 1: // read a seeded page
			idx := rng.Intn(32)
			a := LinearPage(c.Params, dst, idx)
			wantNode, wantIdx := byte(dst), byte(idx)
			c.Node(src).ISPRead(a, func(d []byte, err error) {
				if err != nil {
					t.Errorf("read %v: %v", a, err)
					return
				}
				if d[0] != wantNode || d[1] != wantIdx {
					t.Errorf("read %v: got (%d,%d) want (%d,%d)", a, d[0], d[1], wantNode, wantIdx)
				}
				reads++
			})
		case 2: // write a fresh page, one per chip group
			if perDst[dst] >= 16 {
				continue
			}
			idx := 32 + perDst[dst]
			perDst[dst]++
			a := LinearPage(c.Params, dst, idx)
			data := fill(byte(i), ps)
			wrote[a] = data
			c.Node(src).ISPWrite(a, data, func(err error) {
				if err != nil {
					t.Errorf("write %v: %v", a, err)
				}
			})
			writes++
		}
	}
	c.Run()
	if reads == 0 || writes == 0 {
		t.Fatalf("vacuous: reads=%d writes=%d", reads, writes)
	}
	// Verify all written pages.
	for a, want := range wrote {
		var got []byte
		c.Node(a.Node).ReadLocal(a.Card, a.Addr, func(d []byte, err error) {
			if err != nil {
				t.Errorf("verify %v: %v", a, err)
			}
			got = d
		})
		c.Run()
		if !bytes.Equal(got, want) {
			t.Errorf("verify %v: data mismatch", a)
		}
	}
}

// TestRemoteReadUnderBitErrors runs the ISP-F path against a cluster
// with live error injection: ECC must keep all remote reads correct.
func TestRemoteReadUnderBitErrors(t *testing.T) {
	p := testParams(3)
	p.Reliability.BitErrorRate = 5e-5 // ~3.7 flips per page read
	c, err := NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedLinear(1, 16, func(idx int, page []byte) {
		page[7] = byte(idx * 3)
	}); err != nil {
		t.Fatal(err)
	}
	corrected := false
	for i := 0; i < 16; i++ {
		a := LinearPage(c.Params, 1, i)
		var got []byte
		c.Node(0).ISPRead(a, func(d []byte, err error) {
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			got = d
		})
		c.Run()
		if got[7] != byte(i*3) {
			t.Fatalf("read %d: corrupted despite ECC", i)
		}
		_ = corrected
	}
	if c.Node(1).Controller(0).CorrectedBits.Value()+c.Node(1).Controller(1).CorrectedBits.Value() == 0 {
		t.Fatal("no corrections recorded; injection vacuous")
	}
}

// TestWriteAckOrderUnderLoad issues many writes through one host and
// checks every ack arrives exactly once (no lost or duplicated
// completions when buffers and tags churn).
func TestWriteAckOrderUnderLoad(t *testing.T) {
	c := mkCluster(t, 2)
	acks := make([]int, 0, 64)
	for i := 0; i < 64; i++ {
		i := i
		a := LinearPage(c.Params, 1, i)
		c.Node(0).HostWrite(a, fill(byte(i), c.Params.PageSize()), func(err error) {
			if err != nil {
				t.Errorf("write %d: %v", i, err)
			}
			acks = append(acks, i)
		})
	}
	c.Run()
	if len(acks) != 64 {
		t.Fatalf("acks = %d, want 64", len(acks))
	}
	seen := map[int]bool{}
	for _, v := range acks {
		if seen[v] {
			t.Fatalf("duplicate ack for %d", v)
		}
		seen[v] = true
	}
}
