package core
