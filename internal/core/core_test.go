package core

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func testParams(nodes int) Params {
	p := DefaultParams(nodes)
	// Shrink flash so cluster tests stay fast.
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	return p
}

func mkCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(testParams(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func fill(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*11)
	}
	return b
}

func TestLocalWriteRead(t *testing.T) {
	c := mkCluster(t, 2)
	n0 := c.Node(0)
	a := LinearPage(c.Params, 0, 0)
	data := fill(1, c.Params.PageSize())
	var werr error
	n0.WriteLocal(a.Card, a.Addr, data, func(err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	n0.ReadLocal(a.Card, a.Addr, func(d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	c.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("local read mismatch")
	}
}

func TestISPRemoteRead(t *testing.T) {
	c := mkCluster(t, 4)
	// Write on node 2, read from node 0's ISP over the network.
	a := LinearPage(c.Params, 2, 5)
	data := fill(7, c.Params.PageSize())
	var werr error
	c.Node(2).WriteLocal(a.Card, a.Addr, data, func(err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	start := c.Eng.Now()
	c.Node(0).ISPRead(a, func(d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	c.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("remote ISP read mismatch")
	}
	lat := c.Eng.Now() - start
	// ~50us flash + transfer + 2 hops: must be well under host paths.
	if lat < 50*sim.Microsecond || lat > 200*sim.Microsecond {
		t.Fatalf("ISP-F latency %v out of plausible range", lat)
	}
}

func TestISPRemoteWrite(t *testing.T) {
	c := mkCluster(t, 3)
	a := LinearPage(c.Params, 1, 3)
	data := fill(9, c.Params.PageSize())
	var werr error
	c.Node(0).ISPWrite(a, data, func(err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	c.Node(1).ReadLocal(a.Card, a.Addr, func(d []byte, err error) { got = d })
	c.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("remote write mismatch")
	}
}

func TestAccessPathLatencyOrdering(t *testing.T) {
	// Figure 12's central claim: ISP-F < H-F < H-RH-F, and H-D has no
	// storage latency component.
	c := mkCluster(t, 4)
	a := LinearPage(c.Params, 1, 0)
	var werr error
	c.Node(1).WriteLocal(a.Card, a.Addr, fill(3, c.Params.PageSize()), func(err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}

	measure := func(path AccessPath, isp bool) sim.Time {
		start := c.Eng.Now()
		var end sim.Time
		if isp {
			c.Node(0).ISPRead(a, func([]byte, error) { end = c.Eng.Now() })
		} else {
			c.Node(0).HostRead(a, path, nil, func(_ []byte, err error) {
				if err != nil {
					t.Error(err)
				}
				end = c.Eng.Now()
			})
		}
		c.Run()
		return end - start
	}

	ispf := measure(PathISPF, true)
	hf := measure(PathHF, false)
	hrhf := measure(PathHRHF, false)
	hd := measure(PathHD, false)

	if !(ispf < hf && hf < hrhf) {
		t.Fatalf("latency ordering violated: ISP-F=%v H-F=%v H-RH-F=%v", ispf, hf, hrhf)
	}
	if hd >= hf {
		t.Fatalf("H-D (%v) should beat H-F (%v): no flash latency", hd, hf)
	}
}

func TestTraceDecomposition(t *testing.T) {
	c := mkCluster(t, 4)
	a := LinearPage(c.Params, 1, 0)
	c.Node(1).WriteLocal(a.Card, a.Addr, fill(4, c.Params.PageSize()), func(error) {})
	c.Run()
	var tr Trace
	c.Node(0).HostRead(a, PathHF, &tr, func(_ []byte, err error) {
		if err != nil {
			t.Error(err)
		}
	})
	c.Run()
	if tr.Total <= 0 {
		t.Fatal("trace not filled")
	}
	sum := tr.Software + tr.Storage + tr.Transfer + tr.Network
	if sum != tr.Total {
		t.Fatalf("trace bands (%v) do not sum to total (%v)", sum, tr.Total)
	}
	if tr.Storage != c.Params.FlashTiming.ReadPage {
		t.Fatalf("storage band %v, want flash read latency", tr.Storage)
	}
	if tr.Network <= 0 || tr.Software <= 0 || tr.Transfer <= 0 {
		t.Fatalf("empty bands: %+v", tr)
	}
}

func TestHostWriteRoundTrip(t *testing.T) {
	c := mkCluster(t, 2)
	local := LinearPage(c.Params, 0, 1)
	remote := LinearPage(c.Params, 1, 1)
	data := fill(5, c.Params.PageSize())
	for _, a := range []PageAddr{local, remote} {
		var werr error
		c.Node(0).HostWrite(a, data, func(err error) { werr = err })
		c.Run()
		if werr != nil {
			t.Fatalf("host write %v: %v", a, werr)
		}
		var got []byte
		c.Node(a.Node).ReadLocal(a.Card, a.Addr, func(d []byte, err error) { got = d })
		c.Run()
		if !bytes.Equal(got, data) {
			t.Fatalf("host write %v: data mismatch", a)
		}
	}
}

func TestSeedLinear(t *testing.T) {
	c := mkCluster(t, 2)
	const pages = 100
	if err := c.SeedLinear(1, pages, func(idx int, page []byte) {
		page[0] = byte(idx)
		page[1] = byte(idx >> 8)
	}); err != nil {
		t.Fatal(err)
	}
	// Spot-check via ISP reads from the other node.
	for _, idx := range []int{0, 17, 63, 99} {
		a := LinearPage(c.Params, 1, idx)
		var got []byte
		c.Node(0).ISPRead(a, func(d []byte, err error) {
			if err != nil {
				t.Errorf("idx %d: %v", idx, err)
			}
			got = d
		})
		c.Run()
		if got == nil || got[0] != byte(idx) || got[1] != byte(idx>>8) {
			t.Fatalf("idx %d: wrong seeded content", idx)
		}
	}
}

func TestLinearPageBijective(t *testing.T) {
	p := testParams(1)
	seen := map[PageAddr]bool{}
	n := PagesPerNode(p)
	for i := 0; i < n; i++ {
		a := LinearPage(p, 0, i)
		if !a.Valid(p) {
			t.Fatalf("index %d -> invalid address %v", i, a)
		}
		if seen[a] {
			t.Fatalf("index %d -> duplicate address %v", i, a)
		}
		seen[a] = true
	}
}

func TestLinearPageSequentialProgramOrder(t *testing.T) {
	// Writing dense indices in order must satisfy NAND's in-order page
	// programming rule on every block.
	c := mkCluster(t, 1)
	pages := PagesPerNode(c.Params) / 4
	if err := c.SeedLinear(0, pages, nil); err != nil {
		t.Fatalf("sequential seeding violated NAND ordering: %v", err)
	}
}

func TestHopsMatrix(t *testing.T) {
	p := testParams(5)
	p.Topology = fabric.Ring(5, 1)
	c, err := NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hops(0, 0) != 0 || c.Hops(0, 1) != 1 || c.Hops(0, 2) != 2 {
		t.Fatalf("ring distances wrong: %d %d %d", c.Hops(0, 0), c.Hops(0, 1), c.Hops(0, 2))
	}
	if c.Hops(0, 3) != 2 || c.Hops(0, 4) != 1 {
		t.Fatalf("ring wrap distances wrong: %d %d", c.Hops(0, 3), c.Hops(0, 4))
	}
}

func TestParamsValidation(t *testing.T) {
	p := testParams(2)
	p.Host.PageBytes = 4096
	if _, err := NewCluster(p); err == nil {
		t.Fatal("page size mismatch accepted")
	}
	p = testParams(0)
	if _, err := NewCluster(p); err == nil {
		t.Fatal("zero nodes accepted")
	}
	p = testParams(3)
	p.Topology = fabric.Ring(4, 1)
	if _, err := NewCluster(p); err == nil {
		t.Fatal("topology/cluster size mismatch accepted")
	}
}

func TestSingleNodeCluster(t *testing.T) {
	c := mkCluster(t, 1)
	a := LinearPage(c.Params, 0, 0)
	data := fill(8, c.Params.PageSize())
	var werr error
	c.Node(0).HostWrite(a, data, func(err error) { werr = err })
	c.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	c.Node(0).HostRead(a, PathHF, nil, func(d []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		got = d
	})
	c.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("single-node host round trip failed")
	}
}
