package workload

// Volume-level traffic generators: the logical-address counterpart of
// the physical multi-stream drivers in streams.go. These drive a
// volume.Volume, so writes are overwrites of live logical pages —
// write churn — which is what invalidates flash pages and forces the
// FTLs into steady-state garbage collection. That makes them the
// traffic side of the GC-isolation experiments: latency-class point
// readers sharing the appliance with churning writers while GC runs
// underneath.

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
)

// VolumeStreamSpec describes one tenant stream against a volume.
type VolumeStreamSpec struct {
	Name  string
	Class sched.Class
	// WriteFraction is the probability a request overwrites a page
	// (uniformly in the working set); the rest are point reads. 1.0 is
	// a pure churn writer, 0 a pure reader.
	WriteFraction float64
	// Pages bounds the stream's working set to [0, Pages) of the
	// volume's logical space; 0 means the whole volume.
	Pages int
	// Requests overrides the driver's per-stream completion count
	// (0 = use the driver default). -1 marks a probe stream: it keeps
	// issuing until every non-probe stream has finished, then stops —
	// the standard shape for latency probes that must stay live for
	// exactly the contention window.
	Requests int
	// Depth overrides the driver's per-stream outstanding window
	// (0 = use the driver default). Latency probes usually want 1.
	Depth int
	// ThinkTime, when non-zero, is the mean of an exponential pause
	// between a completion and the next request: a sparse open-ish
	// arrival process instead of a saturating closed loop.
	ThinkTime sim.Time
	Seed      uint64
}

// SeedVolume writes pages [0, pages) of the volume through a
// Batch-class stream, keeping `depth` writes outstanding. It is the
// standard setup step before a churn run (content is deterministic in
// seed).
func SeedVolume(v *volume.Volume, c *core.Cluster, pages, depth int, seed uint64) error {
	return SeedVolumeWith(v, c, pages, depth, RandomPages(seed))
}

// SeedVolumeWith is SeedVolume with caller-supplied page content —
// the setup step for experiments that need structured data in the
// volume (planted search needles, record pages).
func SeedVolumeWith(v *volume.Volume, c *core.Cluster, pages, depth int, gen PageFiller) error {
	if pages <= 0 || pages > v.Pages() {
		return fmt.Errorf("workload: seeding %d pages of a %d-page volume", pages, v.Pages())
	}
	if depth <= 0 {
		depth = 32
	}
	st, err := v.NewStream("seed", sched.Batch)
	if err != nil {
		return err
	}
	var firstErr error
	next := 0
	var issue func()
	issue = func() {
		if next >= pages {
			return
		}
		idx := next
		next++
		buf := make([]byte, v.PageSize())
		gen(idx, buf)
		st.Write(idx, buf, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("seed page %d: %w", idx, err)
			}
			issue()
		})
	}
	for i := 0; i < depth && i < pages; i++ {
		issue()
	}
	c.Run()
	return firstErr
}

// RunVolumeClosedLoop drives every spec as a closed-loop client
// holding `depth` requests outstanding until `requests` complete per
// stream (probe streams — Requests=-1 — until all others finish),
// then drains. Volume streams absorb scheduler backpressure
// internally, so unlike the physical drivers there are no retry
// events to count — overload shows up as latency.
func RunVolumeClosedLoop(v *volume.Volume, c *core.Cluster, specs []VolumeStreamSpec,
	depth, requests int) (LoopResult, error) {
	return RunVolumeClosedLoopWith(v, c, specs, depth, requests, nil)
}

// RunVolumeClosedLoopWith is RunVolumeClosedLoop with a concurrent
// background task sharing the measurement window: concurrent (when
// non-nil) is invoked once, before the engine drains, with a live()
// probe reporting whether any primary stream is still issuing. It is
// the hook for co-running load that is not itself a volume stream —
// distributed ISP queries in the contention experiments — for exactly
// the window the host streams define: schedule work, check live()
// before starting more, and stop when it reports false.
func RunVolumeClosedLoopWith(v *volume.Volume, c *core.Cluster, specs []VolumeStreamSpec,
	depth, requests int, concurrent func(live func() bool)) (LoopResult, error) {
	if depth <= 0 || requests <= 0 {
		return LoopResult{}, fmt.Errorf("workload: depth %d, requests %d", depth, requests)
	}
	var res LoopResult
	primaries := 0
	for _, sp := range specs {
		if sp.Requests >= 0 {
			primaries++
		}
	}
	if primaries == 0 {
		return LoopResult{}, fmt.Errorf("workload: all %d streams are probes; nothing bounds the run", len(specs))
	}
	primariesLeft := primaries
	for i, sp := range specs {
		pages := sp.Pages
		if pages == 0 {
			pages = v.Pages()
		}
		if pages < 0 || pages > v.Pages() {
			return LoopResult{}, fmt.Errorf("workload: spec %d: working set %d out of range", i, pages)
		}
		st, err := v.NewStream(sp.Name, sp.Class)
		if err != nil {
			return LoopResult{}, fmt.Errorf("workload: spec %d: %w", i, err)
		}
		rng := sim.NewRNG(sp.Seed ^ 0xc0ffee11)
		page := make([]byte, v.PageSize())
		rng.Bytes(page)
		probe := sp.Requests < 0
		toIssue := requests
		if sp.Requests > 0 {
			toIssue = sp.Requests
		}
		myDepth := depth
		if sp.Depth > 0 {
			myDepth = sp.Depth
		}
		think := func() sim.Time {
			// Exponential pause with mean ThinkTime; minimum 1 ns so
			// the event queue always advances.
			ns := -math.Log(1-rng.Float64()) * float64(sp.ThinkTime)
			if ns < 1 {
				ns = 1
			}
			return sim.Time(ns)
		}
		inflight := 0
		finished := false
		var issueOne func()
		complete := func(err error) {
			inflight--
			res.Completed++
			if err != nil {
				res.Errors++
			}
			if !probe && !finished && toIssue == 0 && inflight == 0 {
				finished = true
				primariesLeft--
			}
			if sp.ThinkTime > 0 {
				c.Eng.After(think(), issueOne)
			} else {
				issueOne()
			}
		}
		issueOne = func() {
			for inflight < myDepth {
				if probe {
					// Probes stay live only for the contention window.
					if primariesLeft == 0 {
						return
					}
				} else if toIssue == 0 {
					return
				} else {
					toIssue--
				}
				inflight++
				lpn := rng.Intn(pages)
				if rng.Float64() < sp.WriteFraction {
					st.Write(lpn, page, complete)
				} else {
					st.Read(lpn, func(_ []byte, err error) { complete(err) })
				}
				if sp.ThinkTime > 0 {
					return // one at a time; the pause paces the rest
				}
			}
		}
		if sp.ThinkTime > 0 {
			for i := 0; i < myDepth; i++ {
				c.Eng.After(think(), issueOne)
			}
		} else {
			issueOne()
		}
	}
	if concurrent != nil {
		concurrent(func() bool { return primariesLeft > 0 })
	}
	c.Run()
	return res, nil
}
