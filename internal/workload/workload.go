// Package workload provides deterministic data generators for the
// experiments and examples: random binary items for nearest-neighbor
// search, text documents and DNA-like sequences for string search, and
// query/item sets with planted near-duplicates so that similarity
// search has ground truth.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// PageFiller produces the content of page idx into page.
type PageFiller func(idx int, page []byte)

// RandomPages returns a filler producing seeded random bytes, stable
// across calls for the same (seed, idx).
func RandomPages(seed uint64) PageFiller {
	return func(idx int, page []byte) {
		rng := sim.NewRNG(seed ^ uint64(idx)*0x9e3779b97f4a7c15)
		rng.Bytes(page)
	}
}

// words is a small vocabulary for text-like documents.
var words = []string{
	"flash", "storage", "network", "latency", "bandwidth", "analytics",
	"accelerator", "controller", "query", "genome", "twitter", "rack",
	"cluster", "dataset", "random", "access", "dram", "cost", "power",
	"appliance", "processor", "switch", "endpoint", "token",
}

// TextPages returns a filler producing space-separated words, with the
// literal `needle` planted at the middle of every page whose index is
// a multiple of plantEvery (0 = never).
func TextPages(seed uint64, needle string, plantEvery int) PageFiller {
	return func(idx int, page []byte) {
		rng := sim.NewRNG(seed ^ uint64(idx)*0x517cc1b727220a95)
		pos := 0
		for pos < len(page) {
			w := words[rng.Intn(len(words))]
			n := copy(page[pos:], w)
			pos += n
			if pos < len(page) {
				page[pos] = ' '
				pos++
			}
		}
		if plantEvery > 0 && idx%plantEvery == 0 && len(needle) <= len(page)/2 {
			copy(page[len(page)/2:], needle)
		}
	}
}

// DNAPages returns a filler producing ACGT sequences with `motif`
// planted near the start of every page whose index is a multiple of
// plantEvery.
func DNAPages(seed uint64, motif string, plantEvery int) PageFiller {
	const bases = "ACGT"
	return func(idx int, page []byte) {
		rng := sim.NewRNG(seed ^ uint64(idx)*0x2545f4914f6cdd1d)
		for i := range page {
			page[i] = bases[rng.Intn(4)]
		}
		if plantEvery > 0 && idx%plantEvery == 0 && len(motif) < len(page)-8 {
			copy(page[8:], motif)
		}
	}
}

// NearDuplicateSet generates n items of itemBytes bytes plus a query
// that is item `target` with flippedBits random bit flips — ground
// truth for nearest-neighbor experiments.
func NearDuplicateSet(n, itemBytes, target, flippedBits int, seed uint64) (items map[int][]byte, query []byte, err error) {
	if target < 0 || target >= n {
		return nil, nil, fmt.Errorf("workload: target %d out of range [0,%d)", target, n)
	}
	rng := sim.NewRNG(seed)
	items = make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		b := make([]byte, itemBytes)
		rng.Bytes(b)
		items[i] = b
	}
	query = append([]byte(nil), items[target]...)
	for k := 0; k < flippedBits; k++ {
		bit := rng.Intn(itemBytes * 8)
		query[bit/8] ^= 1 << (bit % 8)
	}
	return items, query, nil
}
