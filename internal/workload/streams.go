package workload

// Multi-stream request generators: the traffic side of the scheduler
// experiments. Each StreamSpec describes one tenant stream (QoS class,
// access pattern, read/write mix); the drivers run every stream
// against a sched.Scheduler either closed-loop (each client keeps a
// fixed number of requests outstanding) or open-loop (requests arrive
// at a Poisson rate regardless of completions, so overload is visible
// as backpressure drops).
//
// Writes honour NAND program-once/in-order semantics: every (issuing
// node, QoS class) pair owns a private block-aligned append region on
// its local flash behind the seeded read region, and a write
// sequencer admits the log appends strictly FIFO, so allocation order
// reaches the flash in order (see writeSeq).

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Pattern selects a stream's page-access distribution.
type Pattern uint8

// The four stream patterns.
const (
	// Uniform reads pages uniformly at random.
	Uniform Pattern = iota
	// Zipfian reads pages with Zipf-distributed popularity (hot set).
	Zipfian
	// Scan reads sequential runs from random starting points.
	Scan
	// Mixed is Uniform reads plus log-append writes at 1-ReadFraction.
	Mixed
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Scan:
		return "scan"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// StreamSpec describes one tenant stream.
type StreamSpec struct {
	Name    string
	Node    int // node whose host issues the requests
	Target  int // target node for addresses; -1 = whole cluster
	Class   sched.Class
	Pattern Pattern
	// ReadFraction is the probability a Mixed request is a read
	// (other patterns are pure reads). Zero defaults to 0.7.
	ReadFraction float64
	// ZipfTheta is the Zipfian skew exponent. Zero defaults to 0.99.
	ZipfTheta float64
	// ScanRun is the pages per sequential run. Zero defaults to 64.
	ScanRun int
	Seed    uint64
}

// LoopResult aggregates a driver run.
type LoopResult struct {
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	// Backpressure counts ErrBackpressure events: retried (after a
	// backoff) by the closed-loop driver, dropped by the open-loop one.
	Backpressure int64 `json:"backpressure"`
	// WriteFallbacks counts writes converted to reads because a
	// class's append region ran out of erased pages.
	WriteFallbacks int64 `json:"write_fallbacks"`
}

// Zipf samples ranks 1..n with probability proportional to
// 1/rank^theta, via an explicit CDF (n is at most tens of thousands
// here). Ranks are scrambled so the hot set is spread over the
// address space instead of clustered at page 0.
type Zipf struct {
	cdf []float64
	n   int
}

// NewZipf builds a sampler over [0, n).
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipf over %d items", n))
	}
	z := &Zipf{cdf: make([]float64, n), n: n}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Sample draws one index using rng.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	rank := sort.SearchFloat64s(z.cdf, u)
	if rank >= z.n {
		rank = z.n - 1
	}
	// Scramble rank -> index with a prime multiplicative hash (a
	// bijection mod any n < the prime) so hot pages are spread across
	// buses and cards.
	return int((uint64(rank) * 2654435761) % uint64(z.n))
}

// appendRegion is one (node, class) log region for writes.
type appendRegion struct {
	next  int // next dense page index to program
	limit int // first index beyond the region
}

// pendingWrite is one allocated log append waiting in a sequencer.
type pendingWrite struct {
	addr   core.PageAddr
	stream *sched.Stream
	page   []byte
	done   func(err error)
}

// writeSeq serialises one (node, class) region's appends. NAND blocks
// must be programmed in page order, so once a log index is allocated
// its write must reach the scheduler before any later index of the
// same region: the sequencer admits strictly FIFO and absorbs
// backpressure by stalling the head, never by reordering.
type writeSeq struct {
	q       []pendingWrite
	stalled bool
}

// driver runs a set of streams against one scheduler.
type driver struct {
	s          *sched.Scheduler
	c          *core.Cluster
	readPages  int
	retryDelay sim.Time
	regions    [][sched.NumClasses]appendRegion // [node][class]
	seqs       [][sched.NumClasses]writeSeq     // [node][class]
	res        LoopResult
}

// submitWrite allocates the next log index of the client's (node,
// class) region and queues the append on its sequencer. It reports
// false (without consuming an index) when the region is exhausted;
// the caller should fall back to a read.
func (d *driver) submitWrite(cl *client, done func(err error)) bool {
	node := cl.spec.Node
	reg := &d.regions[node][cl.spec.Class]
	if reg.next >= reg.limit {
		d.res.WriteFallbacks++
		return false
	}
	idx := reg.next
	reg.next++
	sq := &d.seqs[node][cl.spec.Class]
	sq.q = append(sq.q, pendingWrite{
		addr:   core.LinearPage(d.c.Params, node, idx),
		stream: cl.stream,
		page:   cl.page,
		done:   done,
	})
	d.pumpWrites(sq)
	return true
}

// pumpWrites admits sequencer heads until empty or backpressured.
func (d *driver) pumpWrites(sq *writeSeq) {
	for !sq.stalled && len(sq.q) > 0 {
		w := sq.q[0]
		err := w.stream.Write(w.addr, w.page, w.done)
		if err == sched.ErrBackpressure {
			d.res.Backpressure++
			sq.stalled = true
			d.c.Eng.After(d.retryDelay, func() {
				sq.stalled = false
				d.pumpWrites(sq)
			})
			return
		}
		sq.q[0] = pendingWrite{}
		sq.q = sq.q[1:]
		if err != nil {
			// Deliver the failure through the normal completion path;
			// the caller's callback does the error accounting.
			w.done(err)
		}
	}
}

func newDriver(s *sched.Scheduler, c *core.Cluster, specs []StreamSpec, readPages int, retryDelay sim.Time) (*driver, error) {
	if readPages <= 0 {
		return nil, fmt.Errorf("workload: readPages %d", readPages)
	}
	if retryDelay <= 0 {
		retryDelay = 5 * sim.Microsecond
	}
	p := c.Params
	// blockSpan dense indices cover exactly one page row of every
	// block in the stripe, so any multiple is block-aligned.
	blockSpan := p.Geometry.Buses * p.Geometry.ChipsPerBus * p.CardsPerNode * p.Geometry.PagesPerBlock
	base := ((readPages + blockSpan - 1) / blockSpan) * blockSpan
	// Append regions are dealt to the tenant classes only: Accel is
	// device-side ISP reads and Background is FTL housekeeping, and
	// neither ever writes through these drivers, so partitioning over
	// NumClasses would dead-reserve two fifths of every node's
	// writable pages.
	tenantClasses := int(sched.Accel)
	per := ((core.PagesPerNode(p) - base) / tenantClasses / blockSpan) * blockSpan
	d := &driver{
		s: s, c: c, readPages: readPages, retryDelay: retryDelay,
		regions: make([][sched.NumClasses]appendRegion, c.Nodes()),
		seqs:    make([][sched.NumClasses]writeSeq, c.Nodes()),
	}
	for n := range d.regions {
		for cl := 0; cl < tenantClasses; cl++ {
			start := base + cl*per
			d.regions[n][cl] = appendRegion{next: start, limit: start + per}
		}
		// Accel and Background keep empty regions: a (misconfigured)
		// spec writing at those classes falls back to reads, counted in
		// WriteFallbacks, instead of violating NAND ordering.
	}
	for i, sp := range specs {
		if sp.Node < 0 || sp.Node >= c.Nodes() {
			return nil, fmt.Errorf("workload: spec %d: node %d out of range", i, sp.Node)
		}
		if sp.Target >= c.Nodes() {
			return nil, fmt.Errorf("workload: spec %d: target %d out of range", i, sp.Target)
		}
	}
	return d, nil
}

// client is one stream's generator state.
type client struct {
	d      *driver
	spec   StreamSpec
	stream *sched.Stream
	rng    *sim.RNG
	zipf   *Zipf
	page   []byte // write payload, reused

	scanPos, scanLeft, scanNode int
}

func (d *driver) newClient(sp StreamSpec) (*client, error) {
	st, err := d.s.NewStream(sp.Name, sp.Node, sp.Class)
	if err != nil {
		return nil, err
	}
	if sp.ReadFraction <= 0 {
		sp.ReadFraction = 0.7
	}
	if sp.ZipfTheta <= 0 {
		sp.ZipfTheta = 0.99
	}
	if sp.ScanRun <= 0 {
		sp.ScanRun = 64
	}
	cl := &client{d: d, spec: sp, stream: st, rng: sim.NewRNG(sp.Seed ^ 0xb1dbdb00)}
	if sp.Pattern == Zipfian {
		cl.zipf = NewZipf(d.readPages, sp.ZipfTheta)
	}
	if sp.Pattern == Mixed {
		cl.page = make([]byte, d.c.Params.PageSize())
		cl.rng.Bytes(cl.page)
	}
	return cl, nil
}

// target picks the node a request addresses.
func (cl *client) target() int {
	if cl.spec.Target >= 0 {
		return cl.spec.Target
	}
	return cl.rng.Intn(cl.d.c.Nodes())
}

// wantWrite reports whether the next Mixed request should be a write.
// Writes append to the ISSUING node's log region, not a remote one:
// remote writes from different issuers race over the fabric's
// round-robin lanes, and NAND's in-order block programming cannot be
// guaranteed across that race (write-local, read-global, the way RFS
// allocates).
func (cl *client) wantWrite() bool {
	return cl.spec.Pattern == Mixed && cl.rng.Float64() >= cl.spec.ReadFraction
}

// nextRead produces the next read address.
func (cl *client) nextRead() core.PageAddr {
	p := cl.d.c.Params
	node := cl.target()
	switch cl.spec.Pattern {
	case Zipfian:
		return core.LinearPage(p, node, cl.zipf.Sample(cl.rng))
	case Scan:
		if cl.scanLeft == 0 {
			cl.scanPos = cl.rng.Intn(cl.d.readPages)
			cl.scanLeft = cl.spec.ScanRun
			// The whole run scans ONE node: that is what makes it
			// sequential at a flash card instead of uniform noise.
			cl.scanNode = node
		}
		idx := cl.scanPos
		cl.scanPos = (cl.scanPos + 1) % cl.d.readPages
		cl.scanLeft--
		return core.LinearPage(p, cl.scanNode, idx)
	default: // Uniform, and Mixed's read side
		return core.LinearPage(p, node, cl.rng.Intn(cl.d.readPages))
	}
}

// RunClosedLoop drives every spec as a closed-loop client holding
// `depth` requests outstanding until `requests` complete per stream,
// then drains. Backpressure is retried after retryDelay (default 5 µs
// when zero). The cluster's read region [0, readPages) per node must
// already be seeded. The run leaves the engine drained.
func RunClosedLoop(s *sched.Scheduler, c *core.Cluster, specs []StreamSpec,
	readPages, depth, requests int, retryDelay sim.Time) (LoopResult, error) {
	if depth <= 0 || requests <= 0 {
		return LoopResult{}, fmt.Errorf("workload: depth %d, requests %d", depth, requests)
	}
	d, err := newDriver(s, c, specs, readPages, retryDelay)
	if err != nil {
		return LoopResult{}, err
	}
	for _, sp := range specs {
		cl, err := d.newClient(sp)
		if err != nil {
			return LoopResult{}, err
		}
		toIssue := requests
		inflight := 0
		var issue func()
		complete := func(err error) {
			inflight--
			d.res.Completed++
			if err != nil {
				d.res.Errors++
			}
			issue()
		}
		issue = func() {
			for inflight < depth && toIssue > 0 {
				toIssue--
				inflight++
				if cl.wantWrite() && d.submitWrite(cl, complete) {
					continue
				}
				addr := cl.nextRead()
				var try func()
				try = func() {
					serr := cl.stream.Read(addr, func(_ []byte, err error) { complete(err) })
					if serr == sched.ErrBackpressure {
						d.res.Backpressure++
						c.Eng.After(d.retryDelay, try)
					} else if serr != nil {
						// Route hard admission failures through the normal
						// completion path so the slot is reissued and the
						// completion count stays consistent.
						complete(serr)
					}
				}
				try()
			}
		}
		issue()
	}
	c.Run()
	return d.res, nil
}

// RunOpenLoop drives every spec as an open-loop client with Poisson
// arrivals at opsPerSec (virtual time) for `duration`, then drains.
// Arrivals hitting backpressure are DROPPED and counted, which is how
// overload shows up in an open system. The run leaves the engine
// drained.
func RunOpenLoop(s *sched.Scheduler, c *core.Cluster, specs []StreamSpec,
	readPages int, opsPerSec float64, duration sim.Time) (LoopResult, error) {
	if opsPerSec <= 0 || duration <= 0 {
		return LoopResult{}, fmt.Errorf("workload: rate %v, duration %v", opsPerSec, duration)
	}
	d, err := newDriver(s, c, specs, readPages, 0)
	if err != nil {
		return LoopResult{}, err
	}
	deadline := c.Eng.Now() + duration
	for _, sp := range specs {
		cl, err := d.newClient(sp)
		if err != nil {
			return LoopResult{}, err
		}
		interarrival := func() sim.Time {
			u := cl.rng.Float64()
			ns := -math.Log(1-u) / opsPerSec * float64(sim.Second)
			if ns < 1 {
				ns = 1
			}
			return sim.Time(ns)
		}
		complete := func(err error) {
			d.res.Completed++
			if err != nil {
				d.res.Errors++
			}
		}
		var arrive func()
		arrive = func() {
			if c.Eng.Now() >= deadline {
				return
			}
			// Log writes go through the sequencer and are queued, not
			// dropped: an allocated NAND log index must be programmed.
			// Reads are the droppable open-loop traffic.
			if !(cl.wantWrite() && d.submitWrite(cl, complete)) {
				serr := cl.stream.Read(cl.nextRead(), func(_ []byte, err error) { complete(err) })
				if serr == sched.ErrBackpressure {
					d.res.Backpressure++
				} else if serr != nil {
					d.res.Errors++
				}
			}
			c.Eng.After(interarrival(), arrive)
		}
		c.Eng.After(interarrival(), arrive)
	}
	c.Run()
	return d.res, nil
}
