package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
)

// hotColdStack builds a seeded single-purpose volume stack.
func hotColdStack(t *testing.T, nodes int) (*core.Cluster, *volume.Volume) {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := volume.New(c, s, volume.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := SeedVolume(v, c, v.Pages()/2, 16, 3); err != nil {
		t.Fatal(err)
	}
	return c, v
}

// TestHotColdRecordsClientLatency: the driver records issue-to-
// completion read latency per stream, and the summary is internally
// consistent (p50 <= p99 <= max, mean positive).
func TestHotColdRecordsClientLatency(t *testing.T) {
	c, v := hotColdStack(t, 1)
	st, err := v.NewStream("t", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	ws := v.Pages() / 2
	specs := []HotColdSpec{{
		Name: "rd", RW: st, Pages: ws, HotPages: ws / 8,
		Record: true, Seed: 11,
	}}
	res, err := RunHotCold(c, v.PageSize(), specs, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop.Completed != 128 || res.Loop.Errors != 0 {
		t.Fatalf("completed/errors = %d/%d, want 128/0", res.Loop.Completed, res.Loop.Errors)
	}
	if len(res.Recorded) != 1 || res.Recorded[0].Name != "rd" {
		t.Fatalf("recorded streams: %+v", res.Recorded)
	}
	l := res.Combined
	if l.Reads != 128 {
		t.Fatalf("recorded %d reads, want 128", l.Reads)
	}
	if l.MeanUs <= 0 || l.P50Us > l.P99Us || l.P99Us > l.MaxUs {
		t.Fatalf("incoherent latency summary: %+v", l)
	}
	if res.ElapsedUs <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

// TestHotColdMixedAndProbe: a writing primary bounds the run while a
// recorded probe stays live for exactly the primary's window; the
// same seeds reproduce the same result.
func TestHotColdMixedAndProbe(t *testing.T) {
	run := func() HotColdResult {
		c, v := hotColdStack(t, 1)
		wr, err := v.NewStream("wr", sched.Batch)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := v.NewStream("rd", sched.Realtime)
		if err != nil {
			t.Fatal(err)
		}
		ws := v.Pages() / 2
		specs := []HotColdSpec{
			{Name: "wr", RW: wr, Pages: ws, WriteFraction: 1.0, Seed: 5},
			{Name: "probe", RW: rd, Pages: ws, HotPages: ws / 8, Requests: -1,
				Depth: 1, ThinkTime: 200 * sim.Microsecond, Record: true, Seed: 6},
		}
		res, err := RunHotCold(c, v.PageSize(), specs, 2, 64)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.Loop.Errors != 0 {
		t.Fatalf("%d errors", a.Loop.Errors)
	}
	if a.Loop.Completed < 64 {
		t.Fatalf("completed %d; primary alone should reach 64", a.Loop.Completed)
	}
	if a.Combined.Reads == 0 {
		t.Fatal("probe recorded nothing")
	}
	b := run()
	if a.Loop != b.Loop || a.Combined != b.Combined {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestHotColdSpecValidation: broken specs fail fast.
func TestHotColdSpecValidation(t *testing.T) {
	c, v := hotColdStack(t, 1)
	st, err := v.NewStream("t", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]HotColdSpec{
		{{Name: "nilrw", Pages: 8}},
		{{Name: "nopages", RW: st}},
		{{Name: "hotbig", RW: st, Pages: 8, HotPages: 9}},
		{{Name: "allprobe", RW: st, Pages: 8, Requests: -1}},
	}
	for _, specs := range bad {
		if _, err := RunHotCold(c, v.PageSize(), specs, 1, 8); err == nil {
			t.Fatalf("spec %q accepted", specs[0].Name)
		}
	}
}
