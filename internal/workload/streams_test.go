package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestZipfDeterministicAndSkewed(t *testing.T) {
	z := workload.NewZipf(480, 0.99)
	r1 := sim.NewRNG(9)
	r2 := sim.NewRNG(9)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		a := z.Sample(r1)
		if b := z.Sample(r2); a != b {
			t.Fatalf("sample %d: %d != %d with equal seeds", i, a, b)
		}
		if a < 0 || a >= 480 {
			t.Fatalf("sample %d out of range", a)
		}
		counts[a]++
	}
	// The hottest page of a theta=0.99 Zipf over 480 items draws ~15%
	// of traffic; uniform would give ~0.2% each.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 20000/50 {
		t.Fatalf("distribution not skewed: hottest page got %d/20000", max)
	}
}

func TestOpenLoopOverloadDropsReads(t *testing.T) {
	p := core.DefaultParams(1)
	p.Geometry.BlocksPerChip = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedLinear(0, 64, workload.RandomPages(3)); err != nil {
		t.Fatal(err)
	}
	// A tiny queue and window under a heavy arrival rate must shed
	// load as backpressure drops, yet still serve traffic.
	s, err := sched.New(c, sched.Config{
		QueueDepth: 4, MaxInflight: 2, BatchSize: 2, AgingRounds: 4, Coalesce: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []workload.StreamSpec{
		{Name: "open", Node: 0, Target: 0, Class: sched.Interactive, Pattern: workload.Uniform, Seed: 5},
	}
	res, err := workload.RunOpenLoop(s, c, specs, 64, 200_000, 20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backpressure == 0 {
		t.Fatal("open-loop overload produced no drops")
	}
	if res.Completed == 0 {
		t.Fatal("no requests completed under overload")
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors", res.Errors)
	}
}

func TestMixedWritesHonourNANDOrdering(t *testing.T) {
	p := core.DefaultParams(2)
	p.Geometry.BlocksPerChip = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		if err := c.SeedLinear(n, 128, workload.RandomPages(3)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Many mixed streams of the same class sharing append regions is
	// exactly the configuration that would trip nand.ErrOutOfOrder if
	// the write sequencer reordered log appends.
	var specs []workload.StreamSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, workload.StreamSpec{
			Name: "mix", Node: i % 2, Target: -1, Class: sched.Batch,
			Pattern: workload.Mixed, ReadFraction: 0.5, Seed: uint64(30 + i),
		})
	}
	res, err := workload.RunClosedLoop(s, c, specs, 128, 8, 48, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d request errors (NAND ordering violated?)", res.Errors)
	}
	if want := int64(8 * 48); res.Completed != want {
		t.Fatalf("completed %d, want %d", res.Completed, want)
	}
}
