package workload

// Hot/cold traffic over any page-granular read/write surface. The
// existing volume drivers (churn.go) measure latency at the
// scheduler, which is the right vantage point for flash QoS — but the
// cache tier serves hits from host DRAM without ever entering the
// scheduler, so its latency must be measured where the client sees
// it: issue-to-completion in virtual time. This driver does that,
// and, because it targets the small PageRW surface instead of a
// concrete stream type, the exact same workload can run against a
// bare volume stream and a cache stream — the cache experiments'
// off/on arms are literally the same traffic.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// PageRW is a page-granular I/O surface: volume.Stream and
// cache.Stream both satisfy it.
type PageRW interface {
	Read(lpn int, cb func(data []byte, err error))
	Write(lpn int, data []byte, cb func(err error))
}

// HotColdSpec describes one client stream with a skewed working set:
// a fraction of accesses go to a small hot region, the rest spread
// over the whole working set.
type HotColdSpec struct {
	Name string
	// RW is the surface this stream drives (a cache or volume stream).
	RW PageRW
	// WriteFraction is the probability a request is an overwrite.
	WriteFraction float64
	// Pages bounds the working set to [0, Pages).
	Pages int
	// HotPages is the size of the hot region [0, HotPages); 0 makes
	// the stream uniform over the working set.
	HotPages int
	// HotFraction is the probability an access lands in the hot region
	// (default 0.9 when HotPages > 0).
	HotFraction float64
	// Requests overrides the driver's per-stream completion count
	// (0 = driver default). -1 marks a probe stream: it issues until
	// every non-probe stream finishes, then stops.
	Requests int
	// Depth overrides the per-stream outstanding window (0 = default).
	Depth int
	// ThinkTime, when non-zero, is the mean exponential pause between
	// a completion and the next request.
	ThinkTime sim.Time
	// Record enables client-side read-latency capture for this stream.
	Record bool
	Seed   uint64
}

// LatencyStats summarises client-observed read latency.
type LatencyStats struct {
	Reads  int64   `json:"reads"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// StreamLatency pairs one recorded stream with its stats, in spec
// order (deterministic — no map iteration anywhere near results).
type StreamLatency struct {
	Name    string       `json:"name"`
	Latency LatencyStats `json:"latency"`
}

// HotColdResult aggregates a run.
type HotColdResult struct {
	Loop LoopResult `json:"loop"`
	// Recorded holds per-stream latency for every spec with Record
	// set, in spec order.
	Recorded []StreamLatency `json:"recorded,omitempty"`
	// Combined merges every recorded stream's read samples.
	Combined LatencyStats `json:"combined"`
	// ElapsedUs is the virtual time the run took (drain included).
	ElapsedUs float64 `json:"elapsed_us"`
}

// summarize folds raw samples (virtual-time durations) into stats.
func summarize(samples []sim.Time) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, s := range sorted {
		sum += s.Micros()
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i].Micros()
	}
	return LatencyStats{
		Reads:  int64(len(sorted)),
		MeanUs: sum / float64(len(sorted)),
		P50Us:  q(0.50),
		P99Us:  q(0.99),
		MaxUs:  sorted[len(sorted)-1].Micros(),
	}
}

// RunHotCold drives every spec closed-loop against its own PageRW
// surface until `requests` complete per non-probe stream, then
// drains. pageSize sizes the reused write payloads. Read latency is
// recorded client-side (issue to completion, virtual time) for every
// Record stream. The run leaves the engine drained.
func RunHotCold(c *core.Cluster, pageSize int, specs []HotColdSpec, depth, requests int) (HotColdResult, error) {
	if depth <= 0 || requests <= 0 {
		return HotColdResult{}, fmt.Errorf("workload: depth %d, requests %d", depth, requests)
	}
	if pageSize <= 0 {
		return HotColdResult{}, fmt.Errorf("workload: page size %d", pageSize)
	}
	var res HotColdResult
	primaries := 0
	for i, sp := range specs {
		if sp.RW == nil {
			return HotColdResult{}, fmt.Errorf("workload: spec %d (%s): nil RW", i, sp.Name)
		}
		if sp.Pages <= 0 {
			return HotColdResult{}, fmt.Errorf("workload: spec %d (%s): working set %d", i, sp.Name, sp.Pages)
		}
		if sp.HotPages < 0 || sp.HotPages > sp.Pages {
			return HotColdResult{}, fmt.Errorf("workload: spec %d (%s): hot set %d of %d", i, sp.Name, sp.HotPages, sp.Pages)
		}
		if sp.Requests >= 0 {
			primaries++
		}
	}
	if primaries == 0 {
		return HotColdResult{}, fmt.Errorf("workload: all %d streams are probes; nothing bounds the run", len(specs))
	}
	start := c.Eng.Now()
	primariesLeft := primaries
	recorded := make([][]sim.Time, len(specs))
	for i, sp := range specs {
		sp := sp
		idx := i
		rng := sim.NewRNG(sp.Seed ^ 0x407c01d)
		page := make([]byte, pageSize)
		rng.Bytes(page)
		hotFrac := sp.HotFraction
		if sp.HotPages > 0 && hotFrac <= 0 {
			hotFrac = 0.9
		}
		probe := sp.Requests < 0
		toIssue := requests
		if sp.Requests > 0 {
			toIssue = sp.Requests
		}
		myDepth := depth
		if sp.Depth > 0 {
			myDepth = sp.Depth
		}
		think := func() sim.Time {
			ns := -math.Log(1-rng.Float64()) * float64(sp.ThinkTime)
			if ns < 1 {
				ns = 1
			}
			return sim.Time(ns)
		}
		nextLpn := func() int {
			if sp.HotPages > 0 && rng.Float64() < hotFrac {
				return rng.Intn(sp.HotPages)
			}
			return rng.Intn(sp.Pages)
		}
		inflight := 0
		finished := false
		var issueOne func()
		complete := func(err error) {
			inflight--
			res.Loop.Completed++
			if err != nil {
				res.Loop.Errors++
			}
			if !probe && !finished && toIssue == 0 && inflight == 0 {
				finished = true
				primariesLeft--
			}
			if sp.ThinkTime > 0 {
				c.Eng.After(think(), issueOne)
			} else {
				issueOne()
			}
		}
		issueOne = func() {
			for inflight < myDepth {
				if probe {
					if primariesLeft == 0 {
						return
					}
				} else if toIssue == 0 {
					return
				} else {
					toIssue--
				}
				inflight++
				lpn := nextLpn()
				if rng.Float64() < sp.WriteFraction {
					sp.RW.Write(lpn, page, complete)
				} else if sp.Record {
					t0 := c.Eng.Now()
					sp.RW.Read(lpn, func(_ []byte, err error) {
						recorded[idx] = append(recorded[idx], c.Eng.Now()-t0)
						complete(err)
					})
				} else {
					sp.RW.Read(lpn, func(_ []byte, err error) { complete(err) })
				}
				if sp.ThinkTime > 0 {
					return // one at a time; the pause paces the rest
				}
			}
		}
		if sp.ThinkTime > 0 {
			for j := 0; j < myDepth; j++ {
				c.Eng.After(think(), issueOne)
			}
		} else {
			issueOne()
		}
	}
	c.Run()
	res.ElapsedUs = (c.Eng.Now() - start).Micros()
	var all []sim.Time
	for i, sp := range specs {
		if !sp.Record {
			continue
		}
		res.Recorded = append(res.Recorded, StreamLatency{Name: sp.Name, Latency: summarize(recorded[i])})
		all = append(all, recorded[i]...)
	}
	res.Combined = summarize(all)
	return res, nil
}
