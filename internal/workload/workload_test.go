package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
)

func TestRandomPagesDeterministic(t *testing.T) {
	gen := RandomPages(7)
	a := make([]byte, 512)
	b := make([]byte, 512)
	gen(3, a)
	gen(3, b)
	if !bytes.Equal(a, b) {
		t.Fatal("same index produced different content")
	}
	gen(4, b)
	if bytes.Equal(a, b) {
		t.Fatal("different indices produced identical content")
	}
	// Different seeds differ.
	RandomPages(8)(3, b)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical content")
	}
}

func TestTextPagesPlantsNeedle(t *testing.T) {
	gen := TextPages(1, "NEEDLE", 4)
	page := make([]byte, 1024)
	gen(0, page)
	if !strings.Contains(string(page), "NEEDLE") {
		t.Fatal("needle not planted on index 0")
	}
	gen(1, page)
	if strings.Contains(string(page), "NEEDLE") {
		t.Fatal("needle planted on non-multiple index")
	}
	gen(4, page)
	if !strings.Contains(string(page), "NEEDLE") {
		t.Fatal("needle not planted on index 4")
	}
	// Text is word-like.
	gen(2, page)
	if !strings.Contains(string(page), " ") {
		t.Fatal("no word separators")
	}
}

func TestDNAPagesAlphabet(t *testing.T) {
	gen := DNAPages(2, "GATTACA", 3)
	page := make([]byte, 512)
	gen(1, page)
	for i, c := range page {
		switch c {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("non-base byte %q at %d", c, i)
		}
	}
	gen(3, page)
	if !strings.Contains(string(page), "GATTACA") {
		t.Fatal("motif not planted")
	}
}

func TestNearDuplicateSet(t *testing.T) {
	items, query, err := NearDuplicateSet(10, 256, 4, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("items = %d", len(items))
	}
	// Query differs from the target by at most 12 bits (flips can
	// collide) and from others by ~1024 bits.
	diff := func(a, b []byte) int {
		n := 0
		for i := range a {
			x := a[i] ^ b[i]
			for ; x != 0; x &= x - 1 {
				n++
			}
		}
		return n
	}
	if d := diff(query, items[4]); d == 0 || d > 12 {
		t.Fatalf("target distance %d, want 1..12", d)
	}
	if d := diff(query, items[5]); d < 800 {
		t.Fatalf("non-target distance %d suspiciously small", d)
	}
	if _, _, err := NearDuplicateSet(10, 256, 99, 1, 5); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

// TestVolumeClosedLoopConcurrentHook: the concurrent hook fires
// before the drain with a live() probe that tracks the primary
// streams' lifetime — the seam the ISP contention experiments co-run
// queries on.
func TestVolumeClosedLoopConcurrentHook(t *testing.T) {
	pr := core.DefaultParams(1)
	pr.Geometry.BlocksPerChip = 8
	pr.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(pr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := volume.New(c, s, volume.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := SeedVolume(v, c, v.Pages(), 16, 3); err != nil {
		t.Fatal(err)
	}
	specs := []VolumeStreamSpec{{Name: "p", Class: sched.Interactive, Seed: 4}}
	liveAtStart := false
	checks := 0
	var liveFn func() bool
	hook := func(live func() bool) {
		liveAtStart = live()
		liveFn = live
		var tick func()
		tick = func() {
			checks++
			if live() {
				c.Eng.After(50*sim.Microsecond, tick)
			}
		}
		tick()
	}
	res, rerr := RunVolumeClosedLoopWith(v, c, specs, 2, 32, hook)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if res.Completed != 32 {
		t.Fatalf("completed %d, want 32", res.Completed)
	}
	if !liveAtStart {
		t.Fatal("live() false before the run started")
	}
	if checks < 2 {
		t.Fatalf("hook ticked %d times; never observed the window", checks)
	}
	if liveFn() {
		t.Fatal("live() still true after the drain")
	}
}
