package volume_test

import (
	"bytes"
	"testing"

	"repro/internal/ftl"
)

// TestBackgroundReadWriteRoundTrip: WriteBackground/ReadBackground
// move pages through the scheduler's Background class (TagFlush) and
// round-trip data intact even while the Background token budget is
// throttled, and TrimBackground releases the mapping.
func TestBackgroundReadWriteRoundTrip(t *testing.T) {
	c, _, v := testVolume(t, 2, ftl.DefaultConfig())
	// Raise the Background budget so the flush traffic drains: this is
	// exactly what the cache's dirty-pressure feedback does.
	v.SetAuxUrgency(0, 1)
	v.SetAuxUrgency(1, 1)
	const n = 32
	werrs := 0
	for lpn := 0; lpn < n; lpn++ {
		v.WriteBackground(lpn, pageData(v.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
				werrs++
			}
		})
	}
	c.Run()
	if werrs > 0 {
		t.Fatalf("%d background write errors", werrs)
	}
	got := make([][]byte, n)
	for lpn := 0; lpn < n; lpn++ {
		lpn := lpn
		v.ReadBackground(lpn, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", lpn, err)
			}
			got[lpn] = data
		})
	}
	c.Run()
	for lpn := 0; lpn < n; lpn++ {
		if !bytes.Equal(got[lpn], pageData(v.PageSize(), lpn)) {
			t.Fatalf("lpn %d: wrong data back", lpn)
		}
	}
	if err := v.TrimBackground(0); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if d := v.Stats(); d.HostTrims != 1 {
		t.Fatalf("trims = %d, want 1", d.HostTrims)
	}
}

// TestBackgroundRangeAndUrgencyClamp: out-of-range background I/O
// fails typed, and SetAuxUrgency clamps and ignores bad nodes instead
// of corrupting scheduler state.
func TestBackgroundRangeAndUrgencyClamp(t *testing.T) {
	c, _, v := testVolume(t, 1, ftl.DefaultConfig())
	var rerr, werr error
	v.ReadBackground(-1, func(_ []byte, err error) { rerr = err })
	v.WriteBackground(v.Pages(), make([]byte, v.PageSize()), func(err error) { werr = err })
	if rerr == nil || werr == nil {
		t.Fatalf("out-of-range background I/O accepted: read %v write %v", rerr, werr)
	}
	if err := v.TrimBackground(v.Pages()); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
	// These must be no-ops, not panics.
	v.SetAuxUrgency(-1, 0.5)
	v.SetAuxUrgency(99, 0.5)
	v.SetAuxUrgency(0, 7)  // clamped to 1
	v.SetAuxUrgency(0, -3) // clamped to 0
	c.Run()
}

// TestAuxUrgencyUnblocksBackground: with zero urgency the Background
// class is token-starved; raising the aux floor lets a backlog of
// flush writes complete. This pins the feedback loop the cache's
// flush pump depends on.
func TestAuxUrgencyUnblocksBackground(t *testing.T) {
	c, _, v := testVolume(t, 1, ftl.DefaultConfig())
	const n = 48
	done := 0
	for lpn := 0; lpn < n; lpn++ {
		v.WriteBackground(lpn, pageData(v.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			done++
		})
	}
	v.SetAuxUrgency(0, 1)
	c.Run()
	if done != n {
		t.Fatalf("completed %d of %d background writes with aux urgency raised", done, n)
	}
	// Clearing the floor must be accepted (back to GC-driven urgency).
	v.SetAuxUrgency(0, 0)
	c.Run()
}
