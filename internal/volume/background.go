package volume

import (
	"fmt"

	"repro/internal/ftl"
)

// Background-class I/O for the host-DRAM cache tier (internal/cache).
//
// Cache dirty-page flushes and cold-tier migrations are the volume's
// third kind of housekeeping traffic after GC relocation and replica
// rebuild: they must make progress without competing with foreground
// tenants except through the scheduler's urgency token budget. Both
// entry points ride ftl.TagFlush, which classOf maps to
// sched.Background, and the cache reports its dirty-page pressure via
// SetAuxUrgency — the same feedback loop GC (ftl hooks) and rebuild
// (rebuildUrg floor) already use.

// SetAuxUrgency sets an auxiliary Background-urgency floor for one
// node, on behalf of a tier above the volume (the cache's dirty-page
// pressure). The effective urgency pushed to the scheduler is the max
// of the node's GC urgency, rebuild floor, and this value. Pass 0 to
// clear. Out-of-range nodes are ignored.
func (v *Volume) SetAuxUrgency(node int, u float64) {
	if node < 0 || node >= len(v.auxUrg) {
		return
	}
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	if v.auxUrg[node] == u {
		return
	}
	v.auxUrg[node] = u
	v.cards[node*v.c.Params.CardsPerNode].pushUrgency()
}

// ReadBackground fetches a logical page on the Background class
// (TagFlush) — used by the cache's demotion scan, which must not
// perturb foreground latency. Mirror failover applies as for
// Stream.Read.
func (v *Volume) ReadBackground(lpn int, cb func(data []byte, err error)) {
	if lpn < 0 || lpn >= v.Pages() {
		cb(nil, fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if v.cfg.Mirror {
		v.readMirrored(lpn, ftl.TagFlush, cb)
		return
	}
	cd, clpn := v.locate(lpn)
	cd.f.ReadTagged(clpn, ftl.TagFlush, cb)
}

// WriteBackground stores a logical page on the Background class
// (TagFlush) — the cache's dirty-page write-back path. The payload is
// snapshotted before the call returns, exactly like Stream.Write, so
// the cache may keep serving (and re-dirtying) its frame while the
// flush is in flight. Mirrored volumes fan out to both copies.
func (v *Volume) WriteBackground(lpn int, data []byte, cb func(err error)) {
	if lpn < 0 || lpn >= v.Pages() {
		cb(fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if v.cfg.Mirror {
		v.writeMirrored(lpn, data, ftl.TagFlush, cb)
		return
	}
	cd, clpn := v.locate(lpn)
	cd.f.WriteTagged(clpn, data, ftl.TagFlush, cb)
}

// TrimBackground drops a logical page without an admission cost (the
// mapping update is host-side, as in Stream.Trim). The cache's tier
// uses it to release flash capacity after a page has been demoted to
// the altstore device.
func (v *Volume) TrimBackground(lpn int) error {
	if lpn < 0 || lpn >= v.Pages() {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	cd, clpn := v.locate(lpn)
	if v.cfg.Mirror {
		rep, rclpn := v.replicaOf(cd, clpn)
		err := cd.f.Trim(clpn)
		if rerr := rep.f.Trim(rclpn); err == nil {
			err = rerr
		}
		return err
	}
	return cd.f.Trim(clpn)
}
