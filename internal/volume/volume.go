// Package volume is the cluster-wide logical volume of the storage
// manager (paper §4): the host path's address space. It stripes
// logical pages across every flash card in the cluster, backs each
// card with a host-resident FTL (internal/ftl) for mapping, garbage
// collection, wear leveling and bad-block management, and routes all
// resulting flash I/O — host data and GC relocation alike — through
// the request scheduler (internal/sched), so the dispatcher sees and
// schedules every operation the appliance performs.
//
// Layering per card:
//
//	volume.Stream (logical page, QoS class)
//	  -> ftl.FTL (LPN -> physical page, GC serialization)
//	    -> schedBackend (flash ops -> sched.Stream at the op's class;
//	       GC traffic on the Background class)
//	      -> core.Node.SubmitHostBatch (batched doorbells, DMA, flash)
//
// GC awareness: each FTL reports collection start/stop and free-block
// urgency through its hooks; the volume aggregates urgency per node
// and feeds it to the scheduler, whose Background token budget defers
// relocation work while latency-class traffic is hot and escalates as
// headroom shrinks.
package volume

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ErrOutOfRange reports a logical page beyond the volume.
var ErrOutOfRange = errors.New("volume: logical page out of range")

// Config tunes the volume.
type Config struct {
	// FTL configures every card's translation layer.
	FTL ftl.Config
	// RetryDelay is the backoff before re-admitting an op that hit
	// scheduler backpressure (default 5 µs).
	RetryDelay sim.Time
	// Mirror enables cross-node replication: every logical page keeps
	// a primary and a replica on cards of different nodes, writes fan
	// out to both at the stream's class, reads fail over to the
	// survivor when the primary is dead or uncorrectable, and a
	// replaced card is rebuilt from its partners on the Background
	// class. Requires at least two nodes and halves the logical space.
	Mirror bool
	// RebuildDepth bounds the rebuild pump's in-flight page copies
	// (default 8).
	RebuildDepth int
	// RebuildUrgency is the GC-urgency floor pushed at the nodes a
	// rebuild touches while it runs, so the scheduler grants the
	// Background class enough tokens to make progress without letting
	// reconstruction starve latency classes (default 0.5).
	RebuildUrgency float64
}

// DefaultConfig returns the standard volume configuration.
func DefaultConfig() Config {
	return Config{FTL: ftl.DefaultConfig(), RetryDelay: 5 * sim.Microsecond}
}

// Volume is a logical address space over every card of a cluster.
type Volume struct {
	c   *core.Cluster
	s   *sched.Scheduler
	cfg Config

	cards   []*card // node-major: node*CardsPerNode + card
	perCard int     // logical pages per card FTL
	half    int     // mirrored: primary pages per card (perCard/2)

	// mirroring state (see mirror.go)
	auxUrg         []float64      // per-node urgency floor set by cache flush pressure
	rebuildUrg     []float64      // per-node urgency floor while rebuilds run
	freeFOs        []*failover    // read fail-over context recycle pool
	freeMWs        []*mirrorWrite // mirrored-write fan-out recycle pool
	degradedReads  int64
	degradedWrites int64
	pagesRebuilt   int64
}

// New builds a volume over cluster c, admitting all flash traffic
// through scheduler s. The scheduler must belong to the same cluster.
func New(c *core.Cluster, s *sched.Scheduler, cfg Config) (*Volume, error) {
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 5 * sim.Microsecond
	}
	if cfg.Mirror {
		if c.Nodes() < 2 {
			return nil, errors.New("volume: mirroring needs at least two nodes")
		}
		if cfg.RebuildDepth <= 0 {
			cfg.RebuildDepth = 8
		}
		if cfg.RebuildUrgency <= 0 {
			cfg.RebuildUrgency = 0.5
		}
	}
	v := &Volume{c: c, s: s, cfg: cfg}
	p := c.Params
	for n := 0; n < c.Nodes(); n++ {
		for ci := 0; ci < p.CardsPerNode; ci++ {
			cd, err := newCard(v, n, ci)
			if err != nil {
				return nil, err
			}
			v.cards = append(v.cards, cd)
		}
	}
	v.perCard = v.cards[0].f.LogicalPages()
	v.half = v.perCard / 2
	v.rebuildUrg = make([]float64, c.Nodes())
	v.auxUrg = make([]float64, c.Nodes())
	return v, nil
}

// Pages returns the number of logical pages the volume exposes. A
// mirrored volume exposes half the raw logical space: each card's
// lower half holds primaries, its upper half replicas of its partner.
func (v *Volume) Pages() int {
	if v.cfg.Mirror {
		return v.half * len(v.cards)
	}
	return v.perCard * len(v.cards)
}

// PageSize returns the volume's page size.
func (v *Volume) PageSize() int { return v.c.Params.PageSize() }

// locate maps a volume LPN to its card and the card-local LPN.
// Consecutive volume pages land on consecutive cards (round-robin
// striping), so sequential logical traffic spreads over every node
// and card in the cluster.
func (v *Volume) locate(lpn int) (*card, int) {
	n := len(v.cards)
	return v.cards[lpn%n], lpn / n
}

// Stats aggregates the per-card FTL counters plus the volume's fault
// and repair counters. The fault fields carry omitempty so a
// failure-free run exports byte-identical JSON to the pre-fault-domain
// stats.
type Stats struct {
	HostReads     int64   `json:"host_reads"`
	HostWrites    int64   `json:"host_writes"`
	HostTrims     int64   `json:"host_trims"`
	FlashPrograms int64   `json:"flash_programs"`
	FlashErases   int64   `json:"flash_erases"`
	GCMoves       int64   `json:"gc_moves"`
	GCAborts      int64   `json:"gc_aborts"`
	BadBlocks     int64   `json:"bad_blocks"`
	WriteAmp      float64 `json:"write_amplification"`
	MinFreeBlocks int     `json:"min_free_blocks"`

	// fault and repair counters
	CorrectedBits      int64 `json:"corrected_bits,omitempty"`      // single-bit flips repaired by controller ECC
	UncorrectableReads int64 `json:"uncorrectable_reads,omitempty"` // host reads failed by ECC
	ReadFaults         int64 `json:"read_faults,omitempty"`         // host reads completed with any error
	LostPages          int64 `json:"lost_pages,omitempty"`          // mappings dropped on unreadable pages
	DegradedReads      int64 `json:"degraded_reads,omitempty"`      // reads served by the replica after primary loss
	DegradedWrites     int64 `json:"degraded_writes,omitempty"`     // mirrored writes that reached only one copy
	PagesRebuilt       int64 `json:"pages_rebuilt,omitempty"`       // pages restored by the rebuild pump
}

// finite clamps NaN and ±Inf to 0 so exported stats stay JSON-safe
// (math.IsNaN/IsInf without the import).
func finite(f float64) float64 {
	if f != f || f > math.MaxFloat64 || f < -math.MaxFloat64 {
		return 0
	}
	return f
}

// Delta returns the counters accumulated since a prior snapshot, with
// write amplification recomputed over the window. MinFreeBlocks is a
// gauge and keeps its current value. Use it to confine measurements
// to a workload window, excluding seeding and warm-up I/O.
func (s Stats) Delta(since Stats) Stats {
	d := Stats{
		HostReads:     s.HostReads - since.HostReads,
		HostWrites:    s.HostWrites - since.HostWrites,
		HostTrims:     s.HostTrims - since.HostTrims,
		FlashPrograms: s.FlashPrograms - since.FlashPrograms,
		FlashErases:   s.FlashErases - since.FlashErases,
		GCMoves:       s.GCMoves - since.GCMoves,
		GCAborts:      s.GCAborts - since.GCAborts,
		BadBlocks:     s.BadBlocks - since.BadBlocks,
		MinFreeBlocks: s.MinFreeBlocks,

		CorrectedBits:      s.CorrectedBits - since.CorrectedBits,
		UncorrectableReads: s.UncorrectableReads - since.UncorrectableReads,
		ReadFaults:         s.ReadFaults - since.ReadFaults,
		LostPages:          s.LostPages - since.LostPages,
		DegradedReads:      s.DegradedReads - since.DegradedReads,
		DegradedWrites:     s.DegradedWrites - since.DegradedWrites,
		PagesRebuilt:       s.PagesRebuilt - since.PagesRebuilt,
	}
	if d.HostWrites > 0 {
		d.WriteAmp = finite(float64(d.FlashPrograms) / float64(d.HostWrites))
	}
	return d
}

// Stats returns the volume-wide FTL counters.
func (v *Volume) Stats() Stats {
	var st Stats
	st.MinFreeBlocks = -1
	for _, cd := range v.cards {
		f := cd.f
		st.HostReads += f.HostReads
		st.HostWrites += f.HostWrites
		st.HostTrims += f.HostTrims
		st.FlashPrograms += f.FlashPrograms
		st.FlashErases += f.FlashErases
		st.GCMoves += f.GCMoves
		st.GCAborts += f.GCAborts
		st.BadBlocks += f.BadBlocks
		st.UncorrectableReads += f.UncorrectableReads
		st.ReadFaults += f.ReadFaults
		st.LostPages += f.LostPages
		if st.MinFreeBlocks < 0 || f.FreeBlocks() < st.MinFreeBlocks {
			st.MinFreeBlocks = f.FreeBlocks()
		}
	}
	for n := 0; n < v.c.Nodes(); n++ {
		for ci := 0; ci < v.c.Params.CardsPerNode; ci++ {
			st.CorrectedBits += v.c.Node(n).Controller(ci).CorrectedBits.Value()
		}
	}
	st.DegradedReads = v.degradedReads
	st.DegradedWrites = v.degradedWrites
	st.PagesRebuilt = v.pagesRebuilt
	if st.HostWrites > 0 {
		st.WriteAmp = finite(float64(st.FlashPrograms) / float64(st.HostWrites))
	}
	return st
}

// FTL exposes the translation layer of one card (node-major index),
// mainly for tests and instrumentation.
func (v *Volume) FTL(i int) *ftl.FTL { return v.cards[i].f }

// Cards returns the number of card FTLs backing the volume.
func (v *Volume) Cards() int { return len(v.cards) }

// --- streams ---------------------------------------------------------

// Stream is a client's QoS-classed handle onto the volume. Requests
// are admitted at the owner node of each page (the FTL driver runs on
// the node that hosts the flash), so a stream may address the whole
// logical space.
type Stream struct {
	v     *Volume
	name  string
	class sched.Class
}

// NewStream opens a logical stream at the given QoS class. Accel is
// reserved for device-side ISP reads (sched.AccelStream) and
// Background for the volume's own GC traffic.
func (v *Volume) NewStream(name string, class sched.Class) (*Stream, error) {
	if class >= sched.Accel {
		return nil, fmt.Errorf("volume: class %v not usable by tenants", class)
	}
	return &Stream{v: v, name: name, class: class}, nil
}

// Class returns the stream's QoS class.
func (st *Stream) Class() sched.Class { return st.class }

// LogicalPages returns the volume's logical page count. Together with
// PageSize it makes a stream usable as a flat block device
// (blockfs.Device) — the "conventional FS on the storage manager" arm
// of the file-layer ablation.
func (st *Stream) LogicalPages() int { return st.v.Pages() }

// PageSize returns the volume's page size.
func (st *Stream) PageSize() int { return st.v.PageSize() }

// Read fetches a logical page. The callback fires when the page is in
// host memory (or failed); scheduler backpressure is absorbed by
// retrying, so unlike sched.Stream.Read there is no admission error.
// On a mirrored volume a read whose primary copy is dead, rebuilding,
// or uncorrectable fails over to the replica (see mirror.go).
func (st *Stream) Read(lpn int, cb func(data []byte, err error)) {
	if lpn < 0 || lpn >= st.v.Pages() {
		//simlint:allow hotcall (error path: allocates only on an out-of-range read, which fails the op anyway)
		cb(nil, fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if st.v.cfg.Mirror {
		st.v.readMirrored(lpn, ftl.IOTag(st.class), cb)
		return
	}
	cd, clpn := st.v.locate(lpn)
	cd.f.ReadTagged(clpn, ftl.IOTag(st.class), cb)
}

// Write stores a logical page. The payload is snapshotted before the
// call returns. On a mirrored volume the write fans out to both
// copies at the stream's class; it succeeds if at least one copy
// lands (the other is counted as a degraded write).
func (st *Stream) Write(lpn int, data []byte, cb func(err error)) {
	if lpn < 0 || lpn >= st.v.Pages() {
		cb(fmt.Errorf("%w: %d", ErrOutOfRange, lpn))
		return
	}
	if st.v.cfg.Mirror {
		st.v.writeMirrored(lpn, data, ftl.IOTag(st.class), cb)
		return
	}
	cd, clpn := st.v.locate(lpn)
	cd.f.WriteTagged(clpn, data, ftl.IOTag(st.class), cb)
}

// Trim drops a logical page. A trim is a host-side metadata update in
// the card's FTL (the mapping lives in host DRAM; no flash command is
// issued), so there is no operation for the scheduler to admit — but
// it is counted (Stats.HostTrims, per-window in Stats.Delta) so trims
// are no longer invisible to the volume's accounting.
func (st *Stream) Trim(lpn int) error {
	if lpn < 0 || lpn >= st.v.Pages() {
		return fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	cd, clpn := st.v.locate(lpn)
	if st.v.cfg.Mirror {
		rep, rclpn := st.v.replicaOf(cd, clpn)
		err := cd.f.Trim(clpn)
		if rerr := rep.f.Trim(rclpn); err == nil {
			err = rerr
		}
		return err
	}
	return cd.f.Trim(clpn)
}

// Locate resolves a logical page to its current physical location:
// the physical-address query of the paper's Figure 8 (step 1). Host
// software hands the result to an in-store engine, which streams the
// page directly off the flash (through sched.AccelStream) with no
// host on the data path. The address is a snapshot — an overwrite,
// trim, or GC relocation of the page invalidates it — so engines scan
// read-stable data or re-query after mutation.
func (st *Stream) Locate(lpn int) (core.PageAddr, error) {
	return st.v.Phys(lpn)
}

// Phys resolves one logical page to its current physical address —
// the point form of PhysMap for queries over scattered candidate
// lists (LSH buckets, graph vertices) rather than contiguous ranges.
// The address is a snapshot: an overwrite, trim or GC relocation of
// the page invalidates it.
func (v *Volume) Phys(lpn int) (core.PageAddr, error) {
	if lpn < 0 || lpn >= v.Pages() {
		return core.PageAddr{}, fmt.Errorf("%w: %d", ErrOutOfRange, lpn)
	}
	cd, clpn := v.locate(lpn)
	a, err := cd.f.Phys(clpn)
	if err != nil {
		return core.PageAddr{}, fmt.Errorf("lpn %d: %w", lpn, err)
	}
	return core.PageAddr{Node: cd.node, Card: cd.idx, Addr: a}, nil
}

// PhysMap resolves the logical range [lo, hi) to physical page
// addresses: addrs[i] is the current location of logical page lo+i.
// It is the bulk form of Stream.Locate — the address list an origin
// node computes once per query and partitions over the cluster's
// in-store engines. The same staleness caveat applies to every entry.
func (v *Volume) PhysMap(lo, hi int) ([]core.PageAddr, error) {
	if lo < 0 || hi > v.Pages() || lo > hi {
		return nil, fmt.Errorf("%w: [%d,%d)", ErrOutOfRange, lo, hi)
	}
	addrs := make([]core.PageAddr, 0, hi-lo)
	for lpn := lo; lpn < hi; lpn++ {
		cd, clpn := v.locate(lpn)
		a, err := cd.f.Phys(clpn)
		if err != nil {
			return nil, fmt.Errorf("lpn %d: %w", lpn, err)
		}
		addrs = append(addrs, core.PageAddr{Node: cd.node, Card: cd.idx, Addr: a})
	}
	return addrs, nil
}

// --- per-card FTL plumbing -------------------------------------------

// card owns one flash card's FTL and its scheduler plumbing.
type card struct {
	v    *Volume
	node int
	idx  int
	gidx int // global node-major index into v.cards
	f    *ftl.FTL

	// mirroring fault state (see mirror.go)
	dead        bool   // card failed; route reads to the partner
	rebuilding  bool   // replacement card being refilled
	rebuilt     []bool // per-clpn: page current again (pump copy or fresh write)
	rebuildNext int    // next clpn the pump will scan
	inflight    []int  // clpns with a pump copy in flight
	deferred    []deferredWrite
	rebuildDone func()

	// streams holds one admission stream per QoS class; FTL tags map
	// onto them (TagGC -> Background).
	streams [sched.NumClasses]*sched.Stream
	// wseqs keeps per-tag write admission FIFO: the FTL allocates
	// frontier pages in issue order and NAND programs blocks in order,
	// so a backpressured write must stall its tag's later writes, never
	// let them overtake.
	wseqs map[ftl.IOTag]*writeSeq
}

type pendingWrite struct {
	addr core.PageAddr
	data []byte
	cb   func(error)
}

type writeSeq struct {
	q       []pendingWrite
	stalled bool
}

func newCard(v *Volume, node, idx int) (*card, error) {
	cd := &card{v: v, node: node, idx: idx, wseqs: make(map[ftl.IOTag]*writeSeq)}
	cd.gidx = node*v.c.Params.CardsPerNode + idx
	for cl := sched.Class(0); cl < sched.NumClasses; cl++ {
		if cl == sched.Accel {
			// Device-side ISP reads never flow through the FTL's host
			// path; the Accel slot stays nil and classOf never maps to it.
			continue
		}
		st, err := v.s.NewStream(fmt.Sprintf("vol-n%d-c%d-%s", node, idx, cl), node, cl)
		if err != nil {
			return nil, err
		}
		cd.streams[cl] = st
	}
	f, err := ftl.NewWithBackend(cd, v.c.Params.Geometry, v.cfg.FTL)
	if err != nil {
		return nil, err
	}
	cd.f = f
	f.SetHooks(ftl.Hooks{
		Urgency: func(float64) { cd.pushUrgency() },
		GCStart: func() { cd.pushUrgency() },
		GCEnd:   func() { cd.pushUrgency() },
	})
	return cd, nil
}

// pushUrgency reports the node's worst-card urgency to the scheduler,
// floored by the node's rebuild urgency while a rebuild touches it —
// without the floor, an idle node's Background class gets zero tokens
// and a rebuild reading from (or writing to) it would stall forever.
func (cd *card) pushUrgency() {
	v := cd.v
	base := cd.node * v.c.Params.CardsPerNode
	u := 0.0
	for i := base; i < base+v.c.Params.CardsPerNode && i < len(v.cards); i++ {
		if cu := v.cards[i].f.Urgency(); cu > u {
			u = cu
		}
	}
	if ru := v.rebuildUrg[cd.node]; ru > u {
		u = ru
	}
	if au := v.auxUrg[cd.node]; au > u {
		u = au
	}
	v.s.SetGCUrgency(cd.node, u)
}

// classOf maps an FTL traffic tag onto a scheduler class. Tags only
// ever carry tenant classes (NewStream rejects Accel and Background),
// so anything else — including a stray Accel-valued tag — lands on
// Batch rather than a class the card holds no stream for. GC and
// replica-rebuild traffic both ride the Background class, gated by
// the urgency token budget.
func classOf(tag ftl.IOTag) sched.Class {
	if tag == ftl.TagGC || tag == ftl.TagRebuild || tag == ftl.TagFlush {
		return sched.Background
	}
	if tag >= ftl.IOTag(sched.Accel) {
		return sched.Batch
	}
	return sched.Class(tag)
}

func (cd *card) pageAddr(a nand.Addr) core.PageAddr {
	return core.PageAddr{Node: cd.node, Card: cd.idx, Addr: a}
}

// admitRetrying runs admit, retrying on scheduler backpressure after
// RetryDelay; any other admission error goes to fail.
func (cd *card) admitRetrying(admit func() error, fail func(error)) {
	var try func()
	try = func() {
		err := admit()
		if err == sched.ErrBackpressure {
			cd.v.c.Eng.After(cd.v.cfg.RetryDelay, try)
		} else if err != nil {
			fail(err)
		}
	}
	try()
}

// ReadPage admits a physical read at the tag's QoS class, retrying on
// backpressure (reads have no ordering constraint).
func (cd *card) ReadPage(a nand.Addr, tag ftl.IOTag, cb func([]byte, error)) {
	st := cd.streams[classOf(tag)]
	addr := cd.pageAddr(a)
	cd.admitRetrying(
		func() error { return st.Read(addr, cb) },
		func(err error) { cb(nil, err) })
}

// WritePage admits a physical program through the tag's FIFO
// sequencer: strictly in issue order, stalling (not reordering) on
// backpressure.
func (cd *card) WritePage(a nand.Addr, data []byte, tag ftl.IOTag, cb func(error)) {
	sq := cd.wseqs[tag]
	if sq == nil {
		sq = &writeSeq{}
		cd.wseqs[tag] = sq
	}
	sq.q = append(sq.q, pendingWrite{addr: cd.pageAddr(a), data: data, cb: cb})
	cd.pumpWrites(tag, sq)
}

func (cd *card) pumpWrites(tag ftl.IOTag, sq *writeSeq) {
	st := cd.streams[classOf(tag)]
	for !sq.stalled && len(sq.q) > 0 {
		w := sq.q[0]
		err := st.Write(w.addr, w.data, w.cb)
		if err == sched.ErrBackpressure {
			sq.stalled = true
			cd.v.c.Eng.After(cd.v.cfg.RetryDelay, func() {
				sq.stalled = false
				cd.pumpWrites(tag, sq)
			})
			return
		}
		sq.q[0] = pendingWrite{}
		sq.q = sq.q[1:]
		if err != nil {
			w.cb(err)
		}
	}
}

// EraseBlock admits a block erase at the tag's class (GC traffic in
// practice), retrying on backpressure. The FTL only erases after every
// relocation write completed, so no ordering hazard exists.
func (cd *card) EraseBlock(a nand.Addr, tag ftl.IOTag, cb func(error)) {
	st := cd.streams[classOf(tag)]
	addr := cd.pageAddr(a)
	cd.admitRetrying(func() error { return st.Erase(addr, cb) }, cb)
}
