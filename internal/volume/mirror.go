package volume

import (
	"errors"
	"fmt"

	"repro/internal/ftl"
)

// Cross-node mirroring (ROADMAP item 2b, paper §4's storage manager
// grown a fault domain). Placement: card i's logical space is split in
// half — the lower half holds the card's own primary pages, the upper
// half holds replicas of its partner's primaries. The partner of card
// i is the same card slot on the next node (i + CardsPerNode, mod
// cluster), so the two copies of every page always live on different
// nodes and a whole-node loss leaves one copy of everything.
//
// Writes fan out to both copies at the stream's QoS class. Reads go to
// the primary and fail over to the replica when the primary is dead,
// still rebuilding, or returns an error (uncorrectable ECC being the
// interesting case). A replaced card is refilled by a rebuild pump
// running on the Background class under the same urgency-token gate as
// GC: the volume pushes a rebuild urgency floor at the nodes involved
// so the scheduler grants Background enough tokens to make progress,
// and reconstruction competes like any other deferred work instead of
// starving realtime.

// Volume mirroring errors.
var (
	ErrNotMirrored = errors.New("volume: not a mirrored volume")
	ErrCardAlive   = errors.New("volume: card has not been killed")
)

// partner returns the card holding replicas of cd's primary pages.
func (v *Volume) partner(cd *card) *card {
	return v.cards[(cd.gidx+v.c.Params.CardsPerNode)%len(v.cards)]
}

// replicaSource returns the card whose primary pages are replicated
// onto cd's upper half (the inverse of partner).
func (v *Volume) replicaSource(cd *card) *card {
	n := len(v.cards)
	return v.cards[(cd.gidx-v.c.Params.CardsPerNode+n)%n]
}

// replicaOf maps a primary (card, clpn) to the replica's location.
func (v *Volume) replicaOf(cd *card, clpn int) (*card, int) {
	return v.partner(cd), clpn + v.half
}

// available reports whether a copy on this card can serve reads: the
// card is alive and, during a rebuild, the page has been made current
// again (by the pump or by a fresh write).
func (cd *card) available(clpn int) bool {
	if cd.dead {
		return false
	}
	if cd.rebuilding && !cd.rebuilt[clpn] {
		return false
	}
	return true
}

// --- read fail-over ---------------------------------------------------

// failover is the pooled context of one mirrored read: it remembers
// where the replica lives so the primary's completion can retry there
// without allocating per-read closures (same recycling pattern as the
// scheduler's request pool).
//
//simlint:pool get=getFailover put=putFailover
type failover struct {
	v      *Volume
	rep    *card
	rclpn  int
	tag    ftl.IOTag
	useRep bool // replica is available as a fallback
	cb     func(data []byte, err error)

	// bound once at pool entry creation, reused forever
	onPrimary func(data []byte, err error)
	onReplica func(data []byte, err error)
}

// getFailover pops a recycled fail-over context (or allocates one,
// binding its reusable callbacks).
//
//simlint:hotpath
func (v *Volume) getFailover() *failover {
	if n := len(v.freeFOs); n > 0 {
		fo := v.freeFOs[n-1]
		v.freeFOs[n-1] = nil
		v.freeFOs = v.freeFOs[:n-1]
		return fo
	}
	//simlint:allow hotpath (pool-miss path: the context and its two bound callbacks are built once and recycled via putFailover forever after)
	fo := &failover{v: v}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per read)
	fo.onPrimary = func(data []byte, err error) {
		if err == nil || !fo.useRep {
			cb := fo.cb
			fo.v.putFailover(fo)
			cb(data, err)
			return
		}
		// Primary failed with a live replica: retry there.
		fo.rep.f.ReadTagged(fo.rclpn, fo.tag, fo.onReplica)
	}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per read)
	fo.onReplica = func(data []byte, err error) {
		if err == nil {
			fo.v.degradedReads++
		}
		cb := fo.cb
		fo.v.putFailover(fo)
		cb(data, err)
	}
	return fo
}

// putFailover recycles a finished context. The caller must guarantee
// no outstanding reference (its completion has fired).
//
//simlint:hotpath
func (v *Volume) putFailover(fo *failover) {
	fo.rep = nil
	fo.cb = nil
	fo.useRep = false
	v.freeFOs = append(v.freeFOs, fo)
}

// readMirrored serves a logical read on a mirrored volume: primary
// first, replica on failure, straight to the replica when the primary
// copy is known-unavailable.
//
//simlint:hotpath
func (v *Volume) readMirrored(lpn int, tag ftl.IOTag, cb func(data []byte, err error)) {
	pri, clpn := v.locate(lpn)
	rep, rclpn := v.replicaOf(pri, clpn)
	priOK := pri.available(clpn)
	repOK := rep.available(rclpn)
	switch {
	case priOK && repOK:
		fo := v.getFailover()
		fo.rep, fo.rclpn, fo.tag, fo.useRep, fo.cb = rep, rclpn, tag, true, cb
		pri.f.ReadTagged(clpn, tag, fo.onPrimary)
	case priOK:
		// No fallback: serve the primary plainly.
		pri.f.ReadTagged(clpn, tag, cb)
	case repOK:
		// Degraded read: the replica is the only live copy.
		fo := v.getFailover()
		fo.rep, fo.rclpn, fo.tag, fo.cb = rep, rclpn, tag, cb
		rep.f.ReadTagged(rclpn, tag, fo.onReplica)
	default:
		// Both copies down (double fault): let the primary report it.
		pri.f.ReadTagged(clpn, tag, cb)
	}
}

// --- mirrored writes --------------------------------------------------

// mirrorWrite is the pooled context of one fan-out: the caller's
// callback fires once both copies complete, succeeding if at least one
// copy landed. Recycled on the volume exactly like the read fail-over
// context, so the mirrored write path allocates nothing in steady
// state.
//
//simlint:pool get=getMirrorWrite put=putMirrorWrite
type mirrorWrite struct {
	v         *Volume
	remaining int
	failed    int
	firstErr  error
	cb        func(error)

	// bound once at pool entry creation, reused forever
	onDone func(error)
}

// getMirrorWrite pops a recycled fan-out context (or allocates one,
// binding its reusable completion callback).
//
//simlint:hotpath
func (v *Volume) getMirrorWrite() *mirrorWrite {
	if n := len(v.freeMWs); n > 0 {
		mw := v.freeMWs[n-1]
		v.freeMWs[n-1] = nil
		v.freeMWs = v.freeMWs[:n-1]
		return mw
	}
	//simlint:allow hotpath (pool-miss path: the context and its bound callback are built once and recycled via putMirrorWrite forever after)
	mw := &mirrorWrite{v: v}
	//simlint:allow hotpath (bound once per pooled context lifetime, not per write)
	mw.onDone = func(err error) { mw.done(err) }
	return mw
}

// putMirrorWrite recycles a finished context. The caller must
// guarantee both copy completions have fired.
//
//simlint:hotpath
func (v *Volume) putMirrorWrite(mw *mirrorWrite) {
	mw.failed = 0
	mw.firstErr = nil
	mw.cb = nil
	v.freeMWs = append(v.freeMWs, mw)
}

func (mw *mirrorWrite) done(err error) {
	if err != nil {
		mw.failed++
		if mw.firstErr == nil {
			mw.firstErr = err
		}
	}
	mw.remaining--
	if mw.remaining > 0 {
		return
	}
	// Both completions are in: recycle before invoking the caller (the
	// callback may issue another mirrored write that reuses the slot).
	v, failed, firstErr, cb := mw.v, mw.failed, mw.firstErr, mw.cb
	v.putMirrorWrite(mw)
	switch failed {
	case 0:
		cb(nil)
	case 1:
		v.degradedWrites++
		cb(nil)
	default:
		cb(fmt.Errorf("volume: both copies failed: %w", firstErr))
	}
}

// writeMirrored fans a logical write out to the primary and replica at
// the stream's class.
func (v *Volume) writeMirrored(lpn int, data []byte, tag ftl.IOTag, cb func(err error)) {
	pri, clpn := v.locate(lpn)
	rep, rclpn := v.replicaOf(pri, clpn)
	mw := v.getMirrorWrite()
	mw.remaining, mw.cb = 2, cb
	v.writeCopy(pri, clpn, data, tag, mw.onDone)
	v.writeCopy(rep, rclpn, data, tag, mw.onDone)
}

// deferredWrite is a tenant write parked behind an in-flight rebuild
// copy of the same page: letting it race the pump's copy could leave
// the stale rebuild image as the final mapping.
type deferredWrite struct {
	clpn int
	data []byte
	tag  ftl.IOTag
	cb   func(error)
}

// writeCopy issues one copy of a mirrored write, maintaining rebuild
// bookkeeping: a write to a rebuilding card makes that page current
// (the pump skips it), and a write colliding with an in-flight pump
// copy is deferred until the copy completes.
func (v *Volume) writeCopy(cd *card, clpn int, data []byte, tag ftl.IOTag, cb func(error)) {
	if cd.rebuilding {
		if cd.copyInFlight(clpn) {
			buf := make([]byte, len(data))
			copy(buf, data)
			cd.deferred = append(cd.deferred, deferredWrite{clpn: clpn, data: buf, tag: tag, cb: cb})
			return
		}
		cd.rebuilt[clpn] = true
	}
	cd.f.WriteTagged(clpn, data, tag, cb)
}

func (cd *card) copyInFlight(clpn int) bool {
	for _, c := range cd.inflight {
		if c == clpn {
			return true
		}
	}
	return false
}

// --- failure and rebuild ----------------------------------------------

// KillCard fails one card (node-major index): the NAND card rejects
// all further operations with nand.ErrDead and the volume routes reads
// to the replica. Mirrored volumes only.
func (v *Volume) KillCard(i int) error {
	if !v.cfg.Mirror {
		return ErrNotMirrored
	}
	cd := v.cards[i]
	cd.dead = true
	v.c.Node(cd.node).Card(cd.idx).Fail()
	return nil
}

// KillNode fails every card of one node — the whole-appliance fault
// the mirror placement is designed to survive.
func (v *Volume) KillNode(node int) error {
	if !v.cfg.Mirror {
		return ErrNotMirrored
	}
	base := node * v.c.Params.CardsPerNode
	for i := base; i < base+v.c.Params.CardsPerNode; i++ {
		if err := v.KillCard(i); err != nil {
			return err
		}
	}
	return nil
}

// ReplaceCard swaps a killed card for a blank replacement: the NAND
// card is reset, a fresh FTL is built over it, and the card enters the
// rebuilding state (reads route to the partner until each page is
// restored). Call StartRebuild to begin refilling it.
func (v *Volume) ReplaceCard(i int) error {
	if !v.cfg.Mirror {
		return ErrNotMirrored
	}
	cd := v.cards[i]
	if !cd.dead {
		return ErrCardAlive
	}
	v.c.Node(cd.node).Card(cd.idx).Replace()
	f, err := ftl.NewWithBackend(cd, v.c.Params.Geometry, v.cfg.FTL)
	if err != nil {
		return err
	}
	cd.f = f
	f.SetHooks(ftl.Hooks{
		Urgency: func(float64) { cd.pushUrgency() },
		GCStart: func() { cd.pushUrgency() },
		GCEnd:   func() { cd.pushUrgency() },
	})
	cd.dead = false
	cd.rebuilding = true
	if cd.rebuilt == nil {
		cd.rebuilt = make([]bool, v.perCard)
	} else {
		for p := range cd.rebuilt {
			cd.rebuilt[p] = false
		}
	}
	cd.rebuildNext = 0
	cd.inflight = cd.inflight[:0]
	cd.deferred = cd.deferred[:0]
	return nil
}

// StartRebuild refills a replaced card from the surviving copies: its
// own primaries from the partner's replica half, and the replicas it
// hosts from their primaries. The pump keeps RebuildDepth copies in
// flight on the Background class (TagRebuild) and calls done when the
// whole card is current. Pages never written are skipped; pages whose
// only surviving copy is unreadable are lost and counted.
func (v *Volume) StartRebuild(i int, done func()) error {
	if !v.cfg.Mirror {
		return ErrNotMirrored
	}
	cd := v.cards[i]
	if !cd.rebuilding {
		return fmt.Errorf("volume: card %d is not rebuilding (call ReplaceCard first)", i)
	}
	cd.rebuildDone = done
	v.pushRebuildUrgency()
	v.pumpRebuild(cd)
	return nil
}

// RebuildNode replaces and rebuilds every card of a killed node,
// calling done when all of them are current.
func (v *Volume) RebuildNode(node int, done func()) error {
	base := node * v.c.Params.CardsPerNode
	n := v.c.Params.CardsPerNode
	for i := base; i < base+n; i++ {
		if err := v.ReplaceCard(i); err != nil {
			return err
		}
	}
	remaining := n
	for i := base; i < base+n; i++ {
		if err := v.StartRebuild(i, func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// Rebuilding reports whether any card is still being refilled.
func (v *Volume) Rebuilding() bool {
	for _, cd := range v.cards {
		if cd.rebuilding {
			return true
		}
	}
	return false
}

// pushRebuildUrgency recomputes the per-node urgency floors from the
// set of active rebuilds (each involves the rebuilding card's node and
// both partner nodes) and pushes them to the scheduler.
func (v *Volume) pushRebuildUrgency() {
	for n := range v.rebuildUrg {
		v.rebuildUrg[n] = 0
	}
	for _, cd := range v.cards {
		if !cd.rebuilding {
			continue
		}
		for _, n := range [3]int{cd.node, v.partner(cd).node, v.replicaSource(cd).node} {
			if v.rebuildUrg[n] < v.cfg.RebuildUrgency {
				v.rebuildUrg[n] = v.cfg.RebuildUrgency
			}
		}
	}
	// One push per node is enough; use the node's first card.
	for n := 0; n < v.c.Nodes(); n++ {
		v.cards[n*v.c.Params.CardsPerNode].pushUrgency()
	}
}

// rebuildSource maps a page of the rebuilding card to its surviving
// copy: primaries (lower half) live in the partner's replica half,
// hosted replicas (upper half) live at their owner's primary slot.
func (v *Volume) rebuildSource(cd *card, clpn int) (*card, int) {
	if clpn < v.half {
		return v.partner(cd), clpn + v.half
	}
	return v.replicaSource(cd), clpn - v.half
}

// pumpRebuild tops the rebuild window back up to RebuildDepth
// in-flight copies and detects completion.
func (v *Volume) pumpRebuild(cd *card) {
	if !cd.rebuilding {
		return
	}
	for len(cd.inflight) < v.cfg.RebuildDepth && cd.rebuildNext < v.perCard {
		clpn := cd.rebuildNext
		cd.rebuildNext++
		if cd.rebuilt[clpn] {
			continue // a tenant write already made this page current
		}
		src, sclpn := v.rebuildSource(cd, clpn)
		cd.inflight = append(cd.inflight, clpn)
		v.copyPage(cd, clpn, src, sclpn)
	}
	// Re-check rebuilding: an unmapped page completes synchronously, so
	// a nested pump call may already have finished the rebuild.
	if cd.rebuilding && len(cd.inflight) == 0 && cd.rebuildNext >= v.perCard {
		v.finishRebuild(cd)
	}
}

// copyPage restores one page: read the survivor, write the
// replacement, both on TagRebuild (Background class).
func (v *Volume) copyPage(cd *card, clpn int, src *card, sclpn int) {
	src.f.ReadTagged(sclpn, ftl.TagRebuild, func(data []byte, err error) {
		if err != nil {
			// Never written (unmapped) — nothing to restore — or the
			// surviving copy itself is unreadable: the page is gone
			// (already counted by the source FTL's fault counters).
			v.completeCopy(cd, clpn)
			return
		}
		if cd.rebuilt[clpn] {
			// A tenant write landed after our read was issued but
			// before we checked in-flight state; its data is newer.
			v.completeCopy(cd, clpn)
			return
		}
		cd.f.WriteTagged(clpn, data, ftl.TagRebuild, func(werr error) {
			if werr == nil {
				v.pagesRebuilt++
			}
			v.completeCopy(cd, clpn)
		})
	})
}

// completeCopy retires one in-flight copy: marks the page current,
// flushes tenant writes parked behind it, and refills the window.
func (v *Volume) completeCopy(cd *card, clpn int) {
	for j, c := range cd.inflight {
		if c == clpn {
			cd.inflight[j] = cd.inflight[len(cd.inflight)-1]
			cd.inflight = cd.inflight[:len(cd.inflight)-1]
			break
		}
	}
	cd.rebuilt[clpn] = true
	// Flush deferred tenant writes for this page in arrival order.
	kept := cd.deferred[:0]
	var flush []deferredWrite
	for _, dw := range cd.deferred {
		if dw.clpn == clpn {
			flush = append(flush, dw)
		} else {
			kept = append(kept, dw)
		}
	}
	cd.deferred = kept
	for _, dw := range flush {
		cd.f.WriteTagged(dw.clpn, dw.data, dw.tag, dw.cb)
	}
	v.pumpRebuild(cd)
}

// finishRebuild marks the card current and releases the urgency floor.
func (v *Volume) finishRebuild(cd *card) {
	cd.rebuilding = false
	done := cd.rebuildDone
	cd.rebuildDone = nil
	v.pushRebuildUrgency()
	if done != nil {
		done()
	}
}
