package volume_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/volume"
)

// testVolume builds a small single-purpose cluster + scheduler +
// volume stack.
func testVolume(t *testing.T, nodes int, fcfg ftl.Config) (*core.Cluster, *sched.Scheduler, *volume.Volume) {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vcfg := volume.DefaultConfig()
	vcfg.FTL = fcfg
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, v
}

func pageData(size, seed int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(seed ^ (i * 7))
	}
	return b
}

// TestVolumeReadWriteBack: logical pages written through the stack
// (volume -> FTL -> scheduler -> batched host path -> flash) read back
// intact, and the scheduler saw every flash op.
func TestVolumeReadWriteBack(t *testing.T) {
	c, s, v := testVolume(t, 1, ftl.DefaultConfig())
	st, err := v.NewStream("t", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	n := 64
	werrs := 0
	for lpn := 0; lpn < n; lpn++ {
		st.Write(lpn, pageData(v.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
				werrs++
			}
		})
	}
	c.Run()
	if werrs > 0 {
		t.Fatalf("%d write errors", werrs)
	}
	got := make([][]byte, n)
	for lpn := 0; lpn < n; lpn++ {
		lpn := lpn
		st.Read(lpn, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", lpn, err)
			}
			got[lpn] = data
		})
	}
	c.Run()
	for lpn := 0; lpn < n; lpn++ {
		if !bytes.Equal(got[lpn], pageData(v.PageSize(), lpn)) {
			t.Fatalf("lpn %d: wrong data", lpn)
		}
	}
	if snap := s.Snapshot(); snap.TotalOps < int64(2*n) {
		t.Fatalf("scheduler saw %d ops, want >= %d (volume bypassing scheduler?)", snap.TotalOps, 2*n)
	}
	if v.Stats().HostWrites != int64(n) {
		t.Fatalf("ftl host writes = %d, want %d", v.Stats().HostWrites, n)
	}
}

// TestVolumeChurnRunsGC: sustained overwrites must trigger garbage
// collection whose relocation traffic flows through the scheduler's
// Background class, while every logical page stays intact.
func TestVolumeChurnRunsGC(t *testing.T) {
	fcfg := ftl.Config{OverProvision: 0.25, GCLowWater: 2, WearLevelEvery: 0, GCPipeline: 4}
	c, s, v := testVolume(t, 1, fcfg)
	st, err := v.NewStream("churn", sched.Batch)
	if err != nil {
		t.Fatal(err)
	}
	pages := v.Pages()
	version := make([]int, pages)
	write := func(lpn, ver int) {
		version[lpn] = ver
		st.Write(lpn, pageData(v.PageSize(), lpn*131+ver), func(err error) {
			if err != nil {
				t.Errorf("write lpn %d: %v", lpn, err)
			}
		})
	}
	for lpn := 0; lpn < pages; lpn++ {
		write(lpn, 0)
	}
	c.Run()
	rng := sim.NewRNG(5)
	round := 0
	for v.Stats().GCMoves == 0 && round < 20 {
		round++
		for i := 0; i < pages/2; i++ {
			write(rng.Intn(pages), round)
		}
		c.Run()
	}
	stats := v.Stats()
	if stats.GCMoves == 0 || stats.FlashErases == 0 {
		t.Fatalf("no GC after %d churn rounds: %+v", round, stats)
	}
	if stats.GCAborts != 0 {
		t.Fatalf("%d GC aborts under normal churn", stats.GCAborts)
	}
	// Background relocation went through the scheduler.
	bgOps := int64(0)
	for _, cs := range s.Snapshot().Classes {
		if cs.Class == "background" {
			bgOps = cs.Ops
		}
	}
	if bgOps == 0 {
		t.Fatal("GC ran but no Background-class ops reached the scheduler")
	}
	// Every page reads back at its latest version.
	bad := 0
	for lpn := 0; lpn < pages; lpn++ {
		lpn := lpn
		st.Read(lpn, func(data []byte, err error) {
			if err != nil || !bytes.Equal(data, pageData(v.PageSize(), lpn*131+version[lpn])) {
				bad++
			}
		})
	}
	c.Run()
	if bad > 0 {
		t.Fatalf("%d pages corrupted across GC", bad)
	}
}

// TestVolumeDeterminism: identical runs produce identical scheduler
// snapshots and identical final virtual clocks.
func TestVolumeDeterminism(t *testing.T) {
	run := func() (sched.Snapshot, sim.Time) {
		c, s, v := testVolume(t, 2, ftl.DefaultConfig())
		st, err := v.NewStream("d", sched.Interactive)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(9)
		for i := 0; i < 200; i++ {
			st.Write(rng.Intn(v.Pages()/2), pageData(v.PageSize(), i), func(err error) {
				if err != nil {
					t.Errorf("write: %v", err)
				}
			})
		}
		c.Run()
		return s.Snapshot(), c.Eng.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if t1 != t2 {
		t.Fatalf("virtual end times differ: %v vs %v", t1, t2)
	}
	if s1.TotalOps != s2.TotalOps || s1.ElapsedMs != s2.ElapsedMs {
		t.Fatalf("snapshots differ: %+v vs %+v", s1, s2)
	}
}

// TestVolumeRangeErrors: out-of-range logical pages fail cleanly.
func TestVolumeRangeErrors(t *testing.T) {
	_, _, v := testVolume(t, 1, ftl.DefaultConfig())
	st, err := v.NewStream("e", sched.Realtime)
	if err != nil {
		t.Fatal(err)
	}
	var rerr error
	st.Read(v.Pages(), func(_ []byte, err error) { rerr = err })
	if rerr == nil {
		t.Fatal("out-of-range read accepted")
	}
	var werr error
	st.Write(-1, make([]byte, v.PageSize()), func(err error) { werr = err })
	if werr == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := v.NewStream("gc", sched.Background); err == nil {
		t.Fatal("tenant stream on Background class accepted")
	}
}

// TestTrimCountedInStats: trims are host-side metadata updates with no
// flash op to admit, but they must be visible in the volume's counters
// and their windowed deltas (they change GC economics).
func TestTrimCountedInStats(t *testing.T) {
	c, s, v := testVolume(t, 1, ftl.DefaultConfig())
	st, err := v.NewStream("trim", sched.Batch)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < 4; lpn++ {
		st.Write(lpn, pageData(v.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
		})
	}
	c.Run()
	base := v.Stats()
	opsBefore := s.Snapshot().TotalOps
	if err := st.Trim(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Trim(2); err != nil {
		t.Fatal(err)
	}
	// Trimming an already-unmapped page is still a trim command.
	if err := st.Trim(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Trim(v.Pages()); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
	d := v.Stats().Delta(base)
	if d.HostTrims != 3 {
		t.Fatalf("trim delta = %d, want 3", d.HostTrims)
	}
	if v.Stats().HostTrims != 3 {
		t.Fatalf("total trims = %d, want 3", v.Stats().HostTrims)
	}
	// No phantom flash traffic was admitted for the metadata ops.
	c.Run()
	if got := s.Snapshot().TotalOps; got != opsBefore {
		t.Fatalf("trims admitted %d scheduler ops", got-opsBefore)
	}
	// The trimmed page reads as unmapped; the untrimmed neighbor is intact.
	var terr error
	st.Read(1, func(_ []byte, err error) { terr = err })
	var data3 []byte
	st.Read(3, func(d []byte, err error) {
		if err != nil {
			t.Errorf("read 3: %v", err)
		}
		data3 = d
	})
	c.Run()
	if terr == nil {
		t.Fatal("trimmed page still readable")
	}
	if !bytes.Equal(data3, pageData(v.PageSize(), 3)) {
		t.Fatal("untrimmed page corrupted by trim")
	}
}

// TestLocateAndPhysMap: the physical-address query resolves to the
// real location (reading the physical page raw returns the logical
// content), PhysMap agrees with Locate, and an overwrite moves the
// mapping — the documented staleness.
func TestLocateAndPhysMap(t *testing.T) {
	c, _, v := testVolume(t, 2, ftl.DefaultConfig())
	st, err := v.NewStream("loc", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	for lpn := 0; lpn < n; lpn++ {
		st.Write(lpn, pageData(v.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
		})
	}
	c.Run()
	addrs, err := v.PhysMap(0, n)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < n; lpn++ {
		a, err := st.Locate(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if a != addrs[lpn] {
			t.Fatalf("lpn %d: Locate %v != PhysMap %v", lpn, a, addrs[lpn])
		}
		var raw []byte
		c.Node(a.Node).ReadLocal(a.Card, a.Addr, func(d []byte, err error) {
			if err != nil {
				t.Errorf("raw read: %v", err)
			}
			raw = d
		})
		c.Run()
		if !bytes.Equal(raw[:v.PageSize()], pageData(v.PageSize(), lpn)) {
			t.Fatalf("lpn %d: physical page %v holds wrong data", lpn, a)
		}
	}
	// Unmapped pages and bad ranges fail cleanly.
	if _, err := st.Locate(n); err == nil {
		t.Fatal("unmapped Locate accepted")
	}
	if _, err := v.PhysMap(0, v.Pages()+1); err == nil {
		t.Fatal("out-of-range PhysMap accepted")
	}
	// An overwrite remaps: the snapshot goes stale.
	before := addrs[0]
	st.Write(0, pageData(v.PageSize(), 99), func(err error) {
		if err != nil {
			t.Errorf("overwrite: %v", err)
		}
	})
	c.Run()
	after, err := st.Locate(0)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("overwrite did not move the physical mapping")
	}
}
