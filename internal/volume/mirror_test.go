package volume_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ftl"
	"repro/internal/sched"
	"repro/internal/volume"
)

// testMirrored builds a mirrored volume over a small multi-node
// cluster.
func testMirrored(t *testing.T, nodes int) (*core.Cluster, *sched.Scheduler, *volume.Volume) {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 8
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vcfg := volume.DefaultConfig()
	vcfg.Mirror = true
	v, err := volume.New(c, s, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, v
}

func TestMirrorNeedsTwoNodes(t *testing.T) {
	p := core.DefaultParams(1)
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(c, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vcfg := volume.DefaultConfig()
	vcfg.Mirror = true
	if _, err := volume.New(c, s, vcfg); err == nil {
		t.Fatal("mirrored volume on one node accepted")
	}
}

// readAll fetches pages [0,n) and fails the test on any error or
// mismatch against want(lpn).
func readAll(t *testing.T, c *core.Cluster, st *volume.Stream, n int, want func(lpn int) []byte) {
	t.Helper()
	got := make([][]byte, n)
	errs := make([]error, n)
	for lpn := 0; lpn < n; lpn++ {
		lpn := lpn
		st.Read(lpn, func(data []byte, err error) {
			got[lpn], errs[lpn] = data, err
		})
	}
	c.Run()
	for lpn := 0; lpn < n; lpn++ {
		if errs[lpn] != nil {
			t.Fatalf("read %d: %v", lpn, errs[lpn])
		}
		if !bytes.Equal(got[lpn], want(lpn)) {
			t.Fatalf("read %d: wrong data", lpn)
		}
	}
}

// TestMirroredCrashDegradedRebuild is the crash test of the fault
// domain work: write a mirrored volume, kill a whole node, verify
// degraded reads and writes stay correct, rebuild the node, then kill
// the OTHER node and verify every page — including pages updated while
// degraded — reads back correctly from the rebuilt copies alone.
func TestMirroredCrashDegradedRebuild(t *testing.T) {
	c, _, v := testMirrored(t, 2)
	st, err := v.NewStream("t", sched.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	n := 96
	if n > v.Pages() {
		n = v.Pages()
	}
	version := make([]int, n)
	want := func(lpn int) []byte { return pageData(v.PageSize(), lpn^(version[lpn]<<8)) }

	writeAll := func(lpns []int) {
		t.Helper()
		werrs := 0
		for _, lpn := range lpns {
			st.Write(lpn, want(lpn), func(err error) {
				if err != nil {
					t.Errorf("write: %v", err)
					werrs++
				}
			})
		}
		c.Run()
		if werrs > 0 {
			t.Fatalf("%d write errors", werrs)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	writeAll(all)
	readAll(t, c, st, n, want)
	base := v.Stats()

	// Kill node 1: every page lost either its primary or its replica.
	if err := v.KillNode(1); err != nil {
		t.Fatal(err)
	}
	// Degraded updates: overwrite a slice of pages with new versions.
	updated := all[:n/3]
	for _, lpn := range updated {
		version[lpn]++
	}
	writeAll(updated)
	readAll(t, c, st, n, want)
	deg := v.Stats().Delta(base)
	if deg.DegradedReads == 0 {
		t.Fatal("no degraded reads recorded after node kill")
	}
	if deg.DegradedWrites == 0 {
		t.Fatal("no degraded writes recorded after node kill")
	}

	// Rebuild node 1 and race more tenant updates against the pump.
	rebuilt := false
	if err := v.RebuildNode(1, func() { rebuilt = true }); err != nil {
		t.Fatal(err)
	}
	racing := all[n/3 : n/2]
	for _, lpn := range racing {
		version[lpn]++
		st.Write(lpn, want(lpn), func(err error) {
			if err != nil {
				t.Errorf("racing write: %v", err)
			}
		})
	}
	c.Run()
	if !rebuilt {
		t.Fatal("rebuild completion callback never fired")
	}
	if v.Rebuilding() {
		t.Fatal("Rebuilding() still true after completion")
	}
	if d := v.Stats().Delta(base); d.PagesRebuilt == 0 {
		t.Fatal("no pages rebuilt")
	}
	readAll(t, c, st, n, want)

	// The acid test: kill the OTHER node. Every page must now be served
	// from the copies node 1 holds — which only exist if the rebuild
	// restored them (and didn't clobber the racing updates).
	if err := v.KillNode(0); err != nil {
		t.Fatal(err)
	}
	readAll(t, c, st, n, want)
}

// TestMirroredCardKillAndReplace exercises the single-card fault path
// (kill one card, not a node) including the not-killed guard.
func TestMirroredCardKillAndReplace(t *testing.T) {
	c, _, v := testMirrored(t, 2)
	st, _ := v.NewStream("t", sched.Interactive)
	n := 32
	for lpn := 0; lpn < n; lpn++ {
		st.Write(lpn, pageData(v.PageSize(), lpn), func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
		})
	}
	c.Run()

	if err := v.ReplaceCard(0); !errors.Is(err, volume.ErrCardAlive) {
		t.Fatalf("ReplaceCard on live card: err = %v, want ErrCardAlive", err)
	}
	if err := v.KillCard(0); err != nil {
		t.Fatal(err)
	}
	readAll(t, c, st, n, func(lpn int) []byte { return pageData(v.PageSize(), lpn) })
	if v.Stats().DegradedReads == 0 {
		t.Fatal("no degraded reads after card kill")
	}
	if err := v.ReplaceCard(0); err != nil {
		t.Fatal(err)
	}
	done := false
	if err := v.StartRebuild(0, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if !done {
		t.Fatal("card rebuild never completed")
	}
	readAll(t, c, st, n, func(lpn int) []byte { return pageData(v.PageSize(), lpn) })
}

// TestUnmirroredKillRejected: fault injection APIs require mirroring.
func TestUnmirroredKillRejected(t *testing.T) {
	_, _, v := testVolume(t, 2, ftl.DefaultConfig())
	if err := v.KillCard(0); !errors.Is(err, volume.ErrNotMirrored) {
		t.Fatalf("KillCard on unmirrored volume: err = %v, want ErrNotMirrored", err)
	}
	if err := v.KillNode(0); !errors.Is(err, volume.ErrNotMirrored) {
		t.Fatalf("KillNode on unmirrored volume: err = %v, want ErrNotMirrored", err)
	}
}
