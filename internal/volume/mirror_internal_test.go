package volume

import "testing"

// TestFailoverPoolAllocFree pins the mirrored-read fail-over context
// at zero steady-state allocations: one context is borrowed and
// recycled per mirrored read, on the hot read path.
func TestFailoverPoolAllocFree(t *testing.T) {
	v := &Volume{}
	// Prime the pool (first allocation binds the reusable callbacks).
	v.putFailover(v.getFailover())
	avg := testing.AllocsPerRun(200, func() {
		fo := v.getFailover()
		fo.useRep = true
		fo.rclpn = 7
		v.putFailover(fo)
	})
	if avg != 0 {
		t.Fatalf("failover pool allocates %.1f per read, want 0", avg)
	}
}
