package sim

import "testing"

// BenchmarkEngineAfterStep measures the raw schedule+fire cycle: one
// pooled event through a wheel lane per iteration.
func BenchmarkEngineAfterStep(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(3*Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEngineMixedHorizon stresses the full geometry: same-tick,
// wheel-lane and far-heap events interleaved, as a real stack
// produces them.
func BenchmarkEngineMixedHorizon(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	far := Time(wheelSlots<<tickBits) * 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(0, fn)
		e.After(Time(i%200)*Microsecond, fn)
		e.After(far, fn)
		e.Run()
	}
}

// BenchmarkPipeTransfer measures a serialized transfer with delivery
// callback through the pooled engine.
func BenchmarkPipeTransfer(b *testing.B) {
	e := NewEngine()
	p := NewPipe(e, "link", 1<<30, 2*Microsecond)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Transfer(4096, fn)
		e.Run()
	}
}

// BenchmarkTokenPoolBlocked measures the acquire→block→release→serve
// cycle on the waiter ring.
func BenchmarkTokenPoolBlocked(b *testing.B) {
	tp := NewTokenPool("credits", 4)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Acquire(4, fn)
		tp.Acquire(2, fn)
		tp.Release(4)
		tp.Release(2)
	}
}
