package sim

import "fmt"

// TokenPool models credit-based flow control: a sender must acquire a
// token before injecting a unit of traffic, and the receiver returns
// the token once it drains the unit. Waiters are served FIFO, which is
// what gives BlueDBM's links their per-link ordering property.
type TokenPool struct {
	name  string
	avail int
	cap   int

	// FIFO waiter ring: wn live entries starting at whead. The backing
	// array is reused across block/unblock cycles so steady-state
	// Acquire does not allocate.
	waiters []waiter
	whead   int
	wn      int

	// stats
	acquired int64
	blocked  int64
}

type waiter struct {
	n  int
	fn func()
}

// NewTokenPool creates a pool holding n tokens.
func NewTokenPool(name string, n int) *TokenPool {
	if n < 0 {
		panic(fmt.Sprintf("sim: token pool %q: negative capacity %d", name, n))
	}
	return &TokenPool{name: name, avail: n, cap: n}
}

// Available returns the number of free tokens.
func (t *TokenPool) Available() int { return t.avail }

// Cap returns the pool's total capacity.
func (t *TokenPool) Cap() int { return t.cap }

// Waiting returns the number of queued acquirers.
func (t *TokenPool) Waiting() int { return t.wn }

// Blocked returns how many Acquire calls had to wait.
func (t *TokenPool) Blocked() int64 { return t.blocked }

// Acquire requests n tokens and invokes fn once they are granted.
// Grants are strictly FIFO: a small request queued behind a large one
// waits (no overtaking), which models in-order link-level credit flow.
// fn runs synchronously if tokens are available and nobody is queued.
//
//simlint:hotpath
func (t *TokenPool) Acquire(n int, fn func()) {
	if n < 0 {
		panic(fmt.Sprintf("sim: token pool %q: negative acquire %d", t.name, n))
	}
	if n > t.cap {
		panic(fmt.Sprintf("sim: token pool %q: acquire %d exceeds capacity %d", t.name, n, t.cap))
	}
	if t.wn == 0 && t.avail >= n {
		t.avail -= n
		t.acquired++
		fn()
		return
	}
	t.blocked++
	//simlint:allow escapecheck (inlined amortized ring growth: pushWaiter doubles the waiter ring, audited at its declaration)
	t.pushWaiter(waiter{n: n, fn: fn})
}

// pushWaiter appends to the ring, growing the backing array only when
// full (unwrapping the live entries into the new array).
//
//simlint:hotpath
func (t *TokenPool) pushWaiter(w waiter) {
	if t.wn == len(t.waiters) {
		//simlint:allow hotpath (ring doubling on overflow only; amortized O(1) per waiter)
		grown := make([]waiter, max(4, 2*len(t.waiters)))
		for i := 0; i < t.wn; i++ {
			grown[i] = t.waiters[(t.whead+i)%len(t.waiters)]
		}
		t.waiters = grown
		t.whead = 0
	}
	t.waiters[(t.whead+t.wn)%len(t.waiters)] = w
	t.wn++
}

//simlint:hotpath
func (t *TokenPool) popWaiter() waiter {
	w := t.waiters[t.whead]
	t.waiters[t.whead] = waiter{} // drop the fn reference
	t.whead = (t.whead + 1) % len(t.waiters)
	t.wn--
	return w
}

// TryAcquire takes n tokens if immediately available (and no waiter is
// queued ahead) and reports whether it succeeded.
//
//simlint:hotpath
func (t *TokenPool) TryAcquire(n int) bool {
	if t.wn == 0 && t.avail >= n {
		t.avail -= n
		t.acquired++
		return true
	}
	return false
}

// Release returns n tokens and serves queued waiters in order.
//
//simlint:hotpath
func (t *TokenPool) Release(n int) {
	if n < 0 {
		panic(fmt.Sprintf("sim: token pool %q: negative release %d", t.name, n))
	}
	t.avail += n
	if t.avail > t.cap {
		panic(fmt.Sprintf("sim: token pool %q: released above capacity (%d > %d)", t.name, t.avail, t.cap))
	}
	for t.wn > 0 && t.avail >= t.waiters[t.whead].n {
		w := t.popWaiter()
		t.avail -= w.n
		t.acquired++
		w.fn()
	}
}
