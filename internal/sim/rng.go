package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 followed by xorshift-style mixing). Each simulated
// component owns its own RNG so that adding a component never perturbs
// another component's random stream.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Two generators with the same seed produce
// identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so that small seeds do not produce correlated leading values.
	r.Uint64()
	r.Uint64()
	return r
}

// State returns the generator's internal state. Together with
// NewRNGFromState it lets a random stream be serialized mid-walk and
// resumed elsewhere — e.g. a graph walker migrating between in-store
// processors carries its RNG state in the walker message so the
// distributed walk replays the exact reference vertex sequence.
func (r *RNG) State() uint64 { return r.state }

// NewRNGFromState resumes a generator from a saved State. Unlike
// NewRNG it performs no warm-up: the state is already warm.
func NewRNGFromState(state uint64) *RNG { return &RNG{state: state} }

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with pseudo-random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
