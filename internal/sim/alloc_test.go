package sim

import "testing"

// These tests pin the allocation budget of the simulation hot path at
// zero: once the event pool, wheel lanes and waiter rings have grown
// to a workload's high-water mark, scheduling, firing, transferring
// and credit-waiting must not touch the heap again. A regression here
// is a GC-pressure regression for every experiment in the repo.

func TestEngineScheduleAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}

	// Warm the pool, the cur/far heaps, and every wheel lane the loop
	// below will touch.
	for i := 0; i < 256; i++ {
		e.After(Time(i)*Microsecond, fn)
	}
	e.After(Time(wheelSlots<<tickBits)*4, fn) // far heap
	e.Run()

	if n := testing.AllocsPerRun(1000, func() {
		e.After(0, fn)                            // current tick
		e.After(3*Microsecond, fn)                // wheel lane
		e.After(Time(wheelSlots<<tickBits)*4, fn) // far heap
		e.Run()
	}); n != 0 {
		t.Fatalf("schedule/fire allocates %.1f objects per cycle, want 0", n)
	}
}

func TestEngineCancelAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 16; i++ {
		e.After(Time(i)*Microsecond, fn)
	}
	e.Run()

	if n := testing.AllocsPerRun(1000, func() {
		ev := e.After(5*Microsecond, fn)
		e.Cancel(ev)
		e.After(Microsecond, fn) // live traffic so Run advances
		e.Run()
	}); n != 0 {
		t.Fatalf("cancel cycle allocates %.1f objects, want 0", n)
	}
}

func TestPipeTransferAllocFree(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "link", 1<<30, 2*Microsecond)
	fn := func() {}
	p.Transfer(4096, fn)
	e.Run()

	if n := testing.AllocsPerRun(1000, func() {
		p.Transfer(4096, fn)
		e.Run()
	}); n != 0 {
		t.Fatalf("Pipe.Transfer allocates %.1f objects per transfer, want 0", n)
	}
}

func TestTokenPoolAcquireAllocFree(t *testing.T) {
	tp := NewTokenPool("credits", 4)
	fn := func() {}

	// Warm the waiter ring past the depth the steady-state loop uses.
	for i := 0; i < 8; i++ {
		tp.Acquire(1, fn)
	}
	tp.Release(4) // drain the queued waiters

	if n := testing.AllocsPerRun(1000, func() {
		tp.Acquire(4, fn) // grant
		tp.Acquire(2, fn) // queue
		tp.Acquire(2, fn) // queue
		tp.Release(4)     // serve both
		tp.Release(4)
	}); n != 0 {
		t.Fatalf("TokenPool cycle allocates %.1f objects, want 0", n)
	}
}

func TestTimerRearmAllocFree(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func() {})
	tm.Arm(Microsecond)
	e.Run()

	if n := testing.AllocsPerRun(1000, func() {
		tm.Arm(Microsecond)
		tm.Arm(2 * Microsecond) // rearm replaces
		e.Run()
	}); n != 0 {
		t.Fatalf("Timer rearm allocates %.1f objects, want 0", n)
	}
}
