// Package sim provides a deterministic discrete-event simulation engine
// used to model the BlueDBM hardware substrate: flash chips, buses,
// serial links, switches, and DMA engines.
//
// All simulated time is virtual. Components schedule callbacks on an
// Engine; the Engine executes them in (time, insertion) order, so a run
// with the same inputs and seeds is exactly reproducible.
//
// The engine is allocation-free on its steady-state path: events live
// in a pooled arena and are addressed by generation-counted handles
// (a stale Cancel after slot reuse is a safe no-op), and the pending
// set is a hierarchical timer structure — near-future events in a
// bucketed wheel, far timers in a min-heap that cascades into the
// wheel as time advances. Firing order is exactly (time, insertion
// sequence), identical to a single global priority queue.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration aliases for readable schedule calls.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Timer-wheel geometry. Each bucket spans one tick of 2^tickBits ns
// (4.096 us); the wheel's 256 buckets cover ~1 ms of near future —
// flash reads, programs, network hops and DMA all land here. Events
// beyond the horizon (3 ms erases, long think timers) wait in a far
// min-heap and cascade into the wheel as the clock approaches them.
const (
	tickBits   = 12
	wheelSlots = 256
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// Event is a generation-counted handle to a scheduled callback,
// returned by At/After and accepted by Cancel. The zero Event is
// inert: cancelling it does nothing. Handles stay safe after the
// event fires — the pooled slot's generation moves on, so a stale
// Cancel can never hit an unrelated recycled event.
type Event struct {
	idx int32
	gen uint32
}

// slot states.
const (
	slotFree uint8 = iota
	slotQueued
	slotCancelled // still threaded in a queue; reaped when reached
)

// eventSlot is pooled per-event storage. Slots are reused; gen
// increments on every release so stale handles miss. The pool trades
// in int32 slot indexes rather than pointers; poolleak tracks the
// handle the same way.
//
//simlint:pool get=alloc put=release
type eventSlot struct {
	at    Time
	seq   uint64
	fn    func()
	next  int32 // bucket chain when queued; free-list link when free
	gen   uint32
	state uint8
}

// entry is a by-value heap element: ordering key plus the slot index.
type entry struct {
	at  Time
	seq uint64
	idx int32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// bucket is one wheel lane: an append-ordered chain of slots.
type bucket struct {
	head, tail int32
}

// EngineStats is a snapshot of the engine's internal counters: how
// the timer structures absorbed the load, and how big the event pool
// grew. WheelEvents+FarEvents+CurEvents ~= total events scheduled
// (cancelled ones included).
type EngineStats struct {
	// Fired is the number of events executed.
	Fired uint64 `json:"fired"`
	// Pending is the number of live events waiting to fire.
	Pending int `json:"pending"`
	// Cancelled counts Cancel calls that hit a live event.
	Cancelled uint64 `json:"cancelled"`
	// WheelEvents counts events scheduled into a wheel bucket (the
	// near-future fast path).
	WheelEvents uint64 `json:"wheel_events"`
	// CurEvents counts events scheduled directly into the current-tick
	// drain heap (zero-delay kicks and same-tick rearms).
	CurEvents uint64 `json:"cur_events"`
	// FarEvents counts events scheduled beyond the wheel horizon into
	// the far heap.
	FarEvents uint64 `json:"far_events"`
	// FarCascades counts far-heap events re-bucketed into the wheel as
	// the clock advanced.
	FarCascades uint64 `json:"far_cascades"`
	// PoolSlots is the allocated capacity of the event pool (its
	// high-water mark of concurrently pending events, roughly).
	PoolSlots int `json:"pool_slots"`
}

// Engine is a discrete-event scheduler. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// Event pool. Slot 0 is reserved so the zero Event handle is
	// always invalid.
	slots []eventSlot
	free  int32 // free-list head, -1 when empty

	// cur holds events with tick < base: the tick being drained plus
	// same-instant arrivals. Its minimum is the global minimum.
	cur []entry

	// Near wheel: buckets[t&wheelMask] chains events whose tick t is
	// in [base, base+wheelSlots). occupied mirrors non-empty buckets.
	buckets  [wheelSlots]bucket
	occupied [wheelWords]uint64
	wheelCnt int

	// Far heap: events with tick ≥ horizon at scheduling time.
	far []entry

	pending int // live (non-cancelled) scheduled events
	base    int64
	stats   EngineStats
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{free: -1}
	for i := range e.buckets {
		e.buckets[i] = bucket{head: -1, tail: -1}
	}
	// Reserve slot 0 with a non-zero generation: the zero Event handle
	// (idx 0, gen 0) must never match a live slot.
	e.slots = append(e.slots, eventSlot{gen: 1, state: slotFree, next: -1})
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.stats.Fired }

// Pending returns the number of live events waiting to fire.
func (e *Engine) Pending() int { return e.pending }

// Stats returns a snapshot of the engine's internal counters.
func (e *Engine) Stats() EngineStats {
	st := e.stats
	st.Pending = e.pending
	st.PoolSlots = len(e.slots)
	return st
}

// alloc takes a slot from the free list (or grows the pool) and
// stamps it with the event's key.
//
//simlint:hotpath
func (e *Engine) alloc(at Time, fn func()) int32 {
	var idx int32
	if e.free >= 0 {
		idx = e.free
		e.free = e.slots[idx].next
	} else {
		idx = int32(len(e.slots))
		e.slots = append(e.slots, eventSlot{})
	}
	s := &e.slots[idx]
	s.at = at
	s.seq = e.seq
	s.fn = fn
	s.next = -1
	s.state = slotQueued
	e.seq++
	return idx
}

// release recycles a slot. The generation bump invalidates every
// outstanding handle to it.
//
//simlint:hotpath
func (e *Engine) release(idx int32) {
	s := &e.slots[idx]
	s.fn = nil
	s.gen++
	s.state = slotFree
	s.next = e.free
	e.free = idx
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a modelling bug.
//
//simlint:hotpath
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc(t, fn)
	e.pending++
	tick := int64(t) >> tickBits
	switch {
	case tick < e.base:
		// Inside the tick being drained (or base already advanced past
		// it): goes straight to the cur heap. Correct by construction —
		// everything in cur is earlier than every bucketed/far event.
		e.curPush(entry{at: t, seq: e.slots[idx].seq, idx: idx})
		e.stats.CurEvents++
	case tick-e.base < wheelSlots:
		e.bucketPush(tick, idx)
		e.stats.WheelEvents++
	default:
		e.farPush(entry{at: t, seq: e.slots[idx].seq, idx: idx})
		e.stats.FarEvents++
	}
	return Event{idx: idx, gen: e.slots[idx].gen}
}

// After schedules fn to run d after the current time.
//
//simlint:hotpath
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled, stale (recycled slot) or zero-value handle is a
// safe no-op: the handle's generation no longer matches, so it cannot
// touch whatever event now occupies the slot. The slot itself is
// reaped when the firing loop reaches it.
//
//simlint:hotpath
func (e *Engine) Cancel(ev Event) {
	if ev.idx <= 0 || int(ev.idx) >= len(e.slots) {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen || s.state != slotQueued {
		return
	}
	s.state = slotCancelled
	s.fn = nil
	e.pending--
	e.stats.Cancelled++
}

// --- cur heap (current-tick drain) ----------------------------------

//simlint:hotpath
func (e *Engine) curPush(x entry) {
	e.cur = append(e.cur, x)
	i := len(e.cur) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(e.cur[i], e.cur[p]) {
			break
		}
		e.cur[i], e.cur[p] = e.cur[p], e.cur[i]
		i = p
	}
}

//simlint:hotpath
func (e *Engine) curPop() entry {
	h := e.cur
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.cur = h[:n]
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && entryLess(h[l], h[m]) {
			m = l
		}
		if r < n && entryLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// --- far heap --------------------------------------------------------

//simlint:hotpath
func (e *Engine) farPush(x entry) {
	e.far = append(e.far, x)
	i := len(e.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(e.far[i], e.far[p]) {
			break
		}
		e.far[i], e.far[p] = e.far[p], e.far[i]
		i = p
	}
}

//simlint:hotpath
func (e *Engine) farPop() entry {
	h := e.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.far = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && entryLess(h[l], h[m]) {
			m = l
		}
		if r < n && entryLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// --- wheel -----------------------------------------------------------

//simlint:hotpath
func (e *Engine) bucketPush(tick int64, idx int32) {
	slot := int(tick) & wheelMask
	b := &e.buckets[slot]
	if b.head < 0 {
		b.head = idx
		e.occupied[slot>>6] |= 1 << uint(slot&63)
	} else {
		e.slots[b.tail].next = idx
	}
	b.tail = idx
	e.wheelCnt++
}

// nextBucketDist returns the circular distance from base to the first
// occupied bucket, or -1 if the wheel is empty.
//
//simlint:hotpath
func (e *Engine) nextBucketDist() int {
	start := int(e.base) & wheelMask
	sw, sb := start>>6, uint(start&63)
	if w := e.occupied[sw] >> sb; w != 0 {
		return bits.TrailingZeros64(w)
	}
	d := 64 - int(sb)
	for i := 1; i < wheelWords; i++ {
		if w := e.occupied[(sw+i)&(wheelWords-1)]; w != 0 {
			return d + bits.TrailingZeros64(w)
		}
		d += 64
	}
	if w := e.occupied[sw] & (1<<sb - 1); w != 0 {
		return d + bits.TrailingZeros64(w)
	}
	return -1
}

// drainBucket moves every event of the bucket at tick into the cur
// heap (reaping cancelled slots) and clears the bucket.
//
//simlint:hotpath
func (e *Engine) drainBucket(tick int64) {
	slot := int(tick) & wheelMask
	b := &e.buckets[slot]
	idx := b.head
	for idx >= 0 {
		s := &e.slots[idx]
		next := s.next
		e.wheelCnt--
		if s.state == slotCancelled {
			e.release(idx)
		} else {
			e.curPush(entry{at: s.at, seq: s.seq, idx: idx})
		}
		idx = next
	}
	b.head, b.tail = -1, -1
	e.occupied[slot>>6] &^= 1 << uint(slot&63)
}

// cascade moves far-heap events whose tick is now inside the wheel
// horizon into their buckets.
//
//simlint:hotpath
func (e *Engine) cascade() {
	horizon := e.base + wheelSlots
	for len(e.far) > 0 && int64(e.far[0].at)>>tickBits < horizon {
		x := e.farPop()
		if e.slots[x.idx].state == slotCancelled {
			e.release(x.idx)
			continue
		}
		e.bucketPush(int64(x.at)>>tickBits, x.idx)
		e.stats.FarCascades++
	}
}

// ensureNext makes the earliest live event the cur-heap minimum and
// reports whether one exists. It advances base (draining buckets and
// cascading far timers) but never moves the clock or fires anything.
//
//simlint:hotpath
func (e *Engine) ensureNext() bool {
	for {
		// Reap cancelled events off the cur top.
		for len(e.cur) > 0 {
			if e.slots[e.cur[0].idx].state != slotCancelled {
				return true
			}
			e.release(e.curPop().idx)
		}
		if e.wheelCnt == 0 {
			if len(e.far) == 0 {
				return false
			}
			// Jump the wheel to the far minimum and refill.
			e.base = int64(e.far[0].at) >> tickBits
			e.cascade()
			continue
		}
		d := e.nextBucketDist()
		tick := e.base + int64(d)
		// A far timer may have come inside the horizon as base moved;
		// anything earlier than the found bucket must cascade first.
		if len(e.far) > 0 && int64(e.far[0].at)>>tickBits <= tick {
			e.cascade()
			d = e.nextBucketDist()
			tick = e.base + int64(d)
		}
		e.drainBucket(tick)
		// Later arrivals for this tick must go straight to cur: the
		// bucket has been drained.
		e.base = tick + 1
	}
}

// Step fires the next event, if any, and reports whether one fired.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	if !e.ensureNext() {
		return false
	}
	x := e.curPop()
	s := &e.slots[x.idx]
	e.now = x.at
	fn := s.fn
	e.release(x.idx)
	e.pending--
	e.stats.Fired++
	fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// t (even if no event lands exactly there).
func (e *Engine) RunUntil(t Time) {
	for e.ensureNext() && e.cur[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile fires events until cond returns false or no events remain.
// It reports whether cond is still true (i.e. the run was exhausted
// before cond was satisfied).
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if !e.Step() {
			return true
		}
	}
	return false
}

// Timer is a reusable one-shot timer: one callback allocated at
// construction, rearmed as often as the caller likes. Hot paths that
// used to schedule a fresh closure per occurrence (dispatch kicks,
// retry backoffs, housekeeping ticks) construct one Timer and rearm
// it instead — zero allocations per arm.
type Timer struct {
	eng *Engine
	fn  func()
	ev  Event
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Arm schedules the timer d after now, replacing any pending arming
// (the previous schedule is cancelled). Rearming from inside fn is
// the usual self-pacing idiom.
//
//simlint:hotpath
func (t *Timer) Arm(d Time) {
	t.eng.Cancel(t.ev)
	t.ev = t.eng.After(d, t.fn)
}

// ArmAt schedules the timer at absolute time at, replacing any
// pending arming.
//
//simlint:hotpath
func (t *Timer) ArmAt(at Time) {
	t.eng.Cancel(t.ev)
	t.ev = t.eng.At(at, t.fn)
}

// Stop cancels a pending arming; a stopped or fired timer may be
// armed again.
//
//simlint:hotpath
func (t *Timer) Stop() {
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}
