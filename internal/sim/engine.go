// Package sim provides a deterministic discrete-event simulation engine
// used to model the BlueDBM hardware substrate: flash chips, buses,
// serial links, switches, and DMA engines.
//
// All simulated time is virtual. Components schedule callbacks on an
// Engine; the Engine executes them in (time, insertion) order, so a run
// with the same inputs and seeds is exactly reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration aliases for readable schedule calls.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual duration to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	heap int // index in the event heap; -1 once fired or cancelled
}

// At reports the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Engine is a discrete-event scheduler. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a modelling bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.heap < 0 {
		return
	}
	heap.Remove(&e.events, ev.heap)
	ev.heap = -1
	ev.fn = nil
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.fired++
	fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to
// t (even if no event lands exactly there).
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile fires events until cond returns false or no events remain.
// It reports whether cond is still true (i.e. the run was exhausted
// before cond was satisfied).
func (e *Engine) RunWhile(cond func() bool) bool {
	for cond() {
		if !e.Step() {
			return true
		}
	}
	return false
}

// eventHeap is a min-heap ordered by (time, sequence number).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heap = i
	h[j].heap = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.heap = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heap = -1
	*h = old[:n-1]
	return ev
}
