package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30*Microsecond, func() { order = append(order, 3) })
	e.After(10*Microsecond, func() { order = append(order, 1) })
	e.After(20*Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30*Microsecond {
		t.Fatalf("clock = %v, want 30us", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", hits)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel must be a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddle(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(10, func() { order = append(order, 1) })
	ev := e.After(20, func() { order = append(order, 2) })
	e.After(30, func() { order = append(order, 3) })
	e.Cancel(ev)
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("cancel in middle broke ordering: %v", order)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.After(10, func() { fired = append(fired, 1) })
	e.After(20, func() { fired = append(fired, 2) })
	e.After(30, func() { fired = append(fired, 3) })
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %v, want first two", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v after RunUntil(100)", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 5; i++ {
		e.After(Time(i*10), func() { n++ })
	}
	exhausted := e.RunWhile(func() bool { return n < 3 })
	if exhausted {
		t.Fatal("RunWhile reported exhaustion with events remaining")
	}
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	exhausted = e.RunWhile(func() bool { return n < 100 })
	if !exhausted {
		t.Fatal("RunWhile should report exhaustion")
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed uint64) []Time {
		e := NewEngine()
		rng := NewRNG(seed)
		var stamps []Time
		var recur func(depth int)
		recur = func(depth int) {
			stamps = append(stamps, e.Now())
			if depth < 4 {
				k := rng.Intn(3) + 1
				for i := 0; i < k; i++ {
					e.After(Time(rng.Intn(1000)+1), func() { recur(depth + 1) })
				}
			}
		}
		e.After(1, func() { recur(0) })
		e.Run()
		return stamps
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic timestamp at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var last Time = -1
		ok := true
		var maxd Time
		for _, d := range delays {
			d := Time(d)
			if d > maxd {
				maxd = d
			}
			e.After(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		if len(delays) > 0 && e.Now() != maxd {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
