package sim

import (
	"fmt"
	"math"
	"sort"
)

// Tally accumulates scalar samples (latencies, sizes) and reports
// count/mean/min/max and percentiles. It keeps all samples; BlueDBM
// experiments record at most a few million. Non-finite samples are
// rejected at Add (and counted via Dropped): one NaN would poison the
// mean and make the percentile sort order undefined, and those values
// flow straight into committed BENCH_*.json artifacts.
type Tally struct {
	name    string
	samples []float64
	sum     float64
	min     float64
	max     float64
	sorted  bool
	dropped int
}

// NewTally creates an empty tally.
func NewTally(name string) *Tally {
	return &Tally{name: name, min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one sample. NaN and ±Inf are dropped (see Dropped).
func (t *Tally) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.dropped++
		return
	}
	t.samples = append(t.samples, v)
	t.sum += v
	if v < t.min {
		t.min = v
	}
	if v > t.max {
		t.max = v
	}
	t.sorted = false
}

// Dropped returns how many non-finite samples Add rejected.
func (t *Tally) Dropped() int { return t.dropped }

// AddTime records a virtual duration in microseconds.
func (t *Tally) AddTime(d Time) { t.Add(d.Micros()) }

// Count returns the number of samples.
func (t *Tally) Count() int { return len(t.samples) }

// Mean returns the sample mean, or 0 with no samples.
func (t *Tally) Mean() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	return t.sum / float64(len(t.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (t *Tally) Min() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	return t.min
}

// Max returns the largest sample, or 0 with no samples.
func (t *Tally) Max() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	return t.max
}

// Percentile returns the p-th percentile by nearest-rank, or 0 with
// no samples. p is clamped to [0,100]; a NaN p yields 0 rather than
// an arbitrary rank (int(NaN) is platform-defined garbage).
func (t *Tally) Percentile(p float64) float64 {
	if len(t.samples) == 0 || math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	if !t.sorted {
		sort.Float64s(t.samples)
		t.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(t.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(t.samples) {
		rank = len(t.samples)
	}
	return t.samples[rank-1]
}

func (t *Tally) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.2f min=%.2f p50=%.2f p99=%.2f max=%.2f",
		t.name, t.Count(), t.Mean(), t.Min(), t.Percentile(50), t.Percentile(99), t.Max())
}

// Counter is a simple monotonically increasing event counter.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Rate returns events per simulated second over the elapsed time.
func (c *Counter) Rate(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed.Seconds()
}
