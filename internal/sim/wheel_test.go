package sim

import (
	"testing"
)

// TestEngineMatchesReferenceModel drives the wheel/pool engine and a
// naive reference scheduler (stable-sorted event list) with the same
// randomized script — delays spanning the current tick, the wheel
// range, and the far heap, plus nested scheduling and cancellations —
// and requires the exact same firing order. This is the "identical
// (time, seq) order" contract of the timer wheel.
func TestEngineMatchesReferenceModel(t *testing.T) {
	type refEvent struct {
		at        Time
		seq       int
		id        int
		cancelled bool
	}

	for seed := uint64(1); seed <= 8; seed++ {
		e := NewEngine()
		rng := NewRNG(seed)

		var refQ []*refEvent
		refSeq := 0
		refPush := func(at Time, id int) *refEvent {
			ev := &refEvent{at: at, seq: refSeq, id: id}
			refSeq++
			refQ = append(refQ, ev)
			return ev
		}
		refPop := func() *refEvent {
			best := -1
			for i, ev := range refQ {
				if ev.cancelled {
					continue
				}
				if best < 0 || ev.at < refQ[best].at ||
					(ev.at == refQ[best].at && ev.seq < refQ[best].seq) {
					best = i
				}
			}
			if best < 0 {
				return nil
			}
			ev := refQ[best]
			refQ = append(refQ[:best], refQ[best+1:]...)
			return ev
		}

		// Delay mix: same instant, same tick, inside the wheel span,
		// beyond the horizon (multiple wheel revolutions out).
		randDelay := func() Time {
			switch rng.Intn(4) {
			case 0:
				return 0
			case 1:
				return Time(rng.Intn(1 << tickBits))
			case 2:
				return Time(rng.Intn(wheelSlots << tickBits))
			default:
				return Time(rng.Intn(16 * wheelSlots << tickBits))
			}
		}

		var engOrder, refOrder []int
		nextID := 0
		var engEvents []Event
		var refEvents []*refEvent

		var spawn func(depth int)
		spawn = func(depth int) {
			n := rng.Intn(3) + 1
			for i := 0; i < n; i++ {
				d := randDelay()
				id := nextID
				nextID++
				depth := depth
				ev := e.After(d, func() {
					engOrder = append(engOrder, id)
					if depth < 3 && rng.Intn(2) == 0 {
						spawn(depth + 1)
					}
				})
				engEvents = append(engEvents, ev)
				refEvents = append(refEvents, refPush(e.Now()+d, id))
			}
			// Occasionally cancel a random prior event in both models.
			// The engine ignores cancels of already-fired events
			// (stale generation); the pending count says whether this
			// one actually hit, and the reference mirrors that.
			if len(engEvents) > 4 && rng.Intn(4) == 0 {
				k := rng.Intn(len(engEvents))
				before := e.Pending()
				e.Cancel(engEvents[k])
				if e.Pending() == before-1 {
					refEvents[k].cancelled = true
				}
			}
		}

		// The reference model replays the engine's callbacks: drive
		// both from the engine's own firing loop, checking the
		// reference pops the same ids at the same times.
		spawn(0)
		for {
			before := len(engOrder)
			if !e.Step() {
				break
			}
			if len(engOrder) != before+1 {
				t.Fatalf("seed %d: Step fired %d events, want 1", seed, len(engOrder)-before)
			}
			ref := refPop()
			if ref == nil {
				t.Fatalf("seed %d: engine fired id %d but reference is empty", seed, engOrder[len(engOrder)-1])
			}
			got := engOrder[len(engOrder)-1]
			if ref.id != got || ref.at != e.Now() {
				t.Fatalf("seed %d: engine fired id %d at %v, reference expects id %d at %v",
					seed, got, e.Now(), ref.id, ref.at)
			}
			refOrder = append(refOrder, ref.id)
		}
		if ref := refPop(); ref != nil {
			t.Fatalf("seed %d: engine exhausted but reference still holds id %d", seed, ref.id)
		}
	}
}

// TestEngineCancelStaleHandle pins the Event lifecycle contract that
// makes pooling safe: a handle kept after its event fired (or was
// cancelled) must never cancel the unrelated event that recycles the
// slot. Before generation counters this was the pooling hazard — the
// stale *Event pointed at live storage.
func TestEngineCancelStaleHandle(t *testing.T) {
	e := NewEngine()
	firedA := false
	stale := e.After(10, func() { firedA = true })
	if !e.Step() || !firedA {
		t.Fatal("event A did not fire")
	}

	// Slot is recycled by the next schedule (LIFO free list).
	firedB := false
	fresh := e.After(10, func() { firedB = true })
	if fresh.idx != stale.idx {
		t.Fatalf("test premise broken: fresh event got slot %d, stale was %d", fresh.idx, stale.idx)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled slot kept its generation; stale handles would alias")
	}

	// The stale handle must be inert.
	e.Cancel(stale)
	if e.Pending() != 1 {
		t.Fatalf("stale Cancel killed a live event: pending = %d, want 1", e.Pending())
	}
	e.Run()
	if !firedB {
		t.Fatal("event B was cancelled through a stale handle")
	}

	// Cancelling a cancelled event, a fired event's handle again, and
	// the zero handle are all no-ops.
	e.Cancel(stale)
	e.Cancel(fresh)
	e.Cancel(Event{})
	e.Cancel(Event{idx: 1 << 20, gen: 3})
}

// TestEngineCancelledSlotReuse verifies cancelled events are reaped
// and their slots recycled rather than leaking in the wheel.
func TestEngineCancelledSlotReuse(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		ev := e.After(Time(i%7)*Microsecond, func() { t.Fatal("cancelled event fired") })
		e.Cancel(ev)
		e.After(Time(i%7)*Microsecond, func() {}) // live traffic advances the clock
		e.Run()
	}
	if got := len(e.slots); got > 16 {
		t.Fatalf("pool grew to %d slots under cancel/reuse churn; slots are leaking", got)
	}
	if e.Stats().Cancelled != 1000 {
		t.Fatalf("cancelled = %d, want 1000", e.Stats().Cancelled)
	}
}

// TestTimerReuse exercises the rearm idiom: one Timer, many firings,
// including rearming from inside the callback and Stop.
func TestTimerReuse(t *testing.T) {
	e := NewEngine()
	var fires []Time
	var tm *Timer
	tm = e.NewTimer(func() {
		fires = append(fires, e.Now())
		if len(fires) < 3 {
			tm.Arm(5 * Microsecond)
		}
	})
	tm.Arm(Microsecond)
	e.Run()
	want := []Time{Microsecond, 6 * Microsecond, 11 * Microsecond}
	if len(fires) != len(want) {
		t.Fatalf("timer fired %d times, want %d", len(fires), len(want))
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}

	// Rearming replaces the pending schedule (no double fire), Stop
	// cancels, and a stopped timer can be armed again.
	count := 0
	tm2 := e.NewTimer(func() { count++ })
	tm2.Arm(10)
	tm2.Arm(20) // replaces, does not stack
	e.Run()
	if count != 1 {
		t.Fatalf("rearm stacked: fired %d times, want 1", count)
	}
	tm2.Arm(10)
	tm2.Stop()
	e.Run()
	if count != 1 {
		t.Fatalf("stopped timer fired: count = %d", count)
	}
	tm2.Arm(10)
	e.Run()
	if count != 2 {
		t.Fatalf("restarted timer did not fire: count = %d", count)
	}
}

// TestEngineFarWheelBoundary schedules events exactly at, just below
// and just above the wheel horizon and checks order and cascade
// accounting.
func TestEngineFarWheelBoundary(t *testing.T) {
	e := NewEngine()
	horizon := Time(wheelSlots << tickBits)
	var order []int
	e.After(horizon-1, func() { order = append(order, 1) })
	e.After(horizon, func() { order = append(order, 2) })   // far
	e.After(horizon+1, func() { order = append(order, 3) }) // far
	e.After(1, func() { order = append(order, 0) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("boundary events out of order: %v", order)
		}
	}
	st := e.Stats()
	if st.FarEvents != 2 {
		t.Fatalf("far events = %d, want 2", st.FarEvents)
	}
	if st.FarCascades != 2 {
		t.Fatalf("far cascades = %d, want 2", st.FarCascades)
	}
}
