package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeSingleTransfer(t *testing.T) {
	e := NewEngine()
	// 1 GB/s, 1us latency: 1000 bytes takes 1us wire + 1us latency.
	p := NewPipe(e, "test", 1_000_000_000, Microsecond)
	var done Time = -1
	p.Transfer(1000, func() { done = e.Now() })
	e.Run()
	if done != 2*Microsecond {
		t.Fatalf("delivery at %v, want 2us", done)
	}
}

func TestPipeSerialization(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "test", 1_000_000_000, 0)
	var times []Time
	// Three back-to-back 1000-byte transfers serialize at 1us each.
	for i := 0; i < 3; i++ {
		p.Transfer(1000, func() { times = append(times, e.Now()) })
	}
	e.Run()
	want := []Time{1 * Microsecond, 2 * Microsecond, 3 * Microsecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", times, want)
		}
	}
}

func TestPipeLatencyPipelines(t *testing.T) {
	// Latency is propagation, not occupancy: two transfers overlap their
	// latency windows.
	e := NewEngine()
	p := NewPipe(e, "test", 1_000_000_000, 10*Microsecond)
	var times []Time
	p.Transfer(1000, func() { times = append(times, e.Now()) })
	p.Transfer(1000, func() { times = append(times, e.Now()) })
	e.Run()
	if times[0] != 11*Microsecond || times[1] != 12*Microsecond {
		t.Fatalf("deliveries %v, want [11us 12us]", times)
	}
}

func TestPipeZeroSize(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "test", 1_000_000_000, Microsecond)
	var done bool
	p.Transfer(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-size transfer never delivered")
	}
}

func TestPipeIdleGap(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "test", 1_000_000_000, 0)
	var second Time
	p.Transfer(1000, nil)
	e.After(10*Microsecond, func() {
		p.Transfer(1000, func() { second = e.Now() })
	})
	e.Run()
	if second != 11*Microsecond {
		t.Fatalf("transfer after idle gap delivered at %v, want 11us", second)
	}
}

func TestPipeStats(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "test", 1_000_000_000, 0)
	p.Transfer(500, func() {})
	p.Transfer(1500, func() {})
	e.Run()
	if p.Transferred() != 2000 {
		t.Fatalf("Transferred = %d, want 2000", p.Transferred())
	}
	if p.Transfers() != 2 {
		t.Fatalf("Transfers = %d, want 2", p.Transfers())
	}
	if u := p.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("Utilization = %f, want ~1.0 (pipe was saturated)", u)
	}
}

func TestPipeAchievedBandwidth(t *testing.T) {
	// Saturating a 150 MB/s bus with 8KB pages must achieve ~150 MB/s.
	e := NewEngine()
	p := NewPipe(e, "bus", 150_000_000, 0)
	const pages = 1000
	for i := 0; i < pages; i++ {
		p.Transfer(8192, func() {})
	}
	e.Run()
	bw := float64(p.Transferred()) / e.Now().Seconds()
	if bw < 149e6 || bw > 151e6 {
		t.Fatalf("achieved bandwidth %.0f B/s, want ~150e6", bw)
	}
}

// Property: deliveries never regress in time and total delivered bytes
// equal requested bytes.
func TestPipeDeliveryOrderProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		e := NewEngine()
		p := NewPipe(e, "q", 1_000_000, 3*Microsecond)
		var last Time = -1
		ok := true
		var want, got int64
		for _, s := range sizes {
			n := int(s)
			want += int64(n)
			p.Transfer(n, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				got += int64(n)
			})
		}
		e.Run()
		return ok && want == got
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenPoolFIFO(t *testing.T) {
	tp := NewTokenPool("link", 2)
	var order []int
	tp.Acquire(1, func() { order = append(order, 1) })
	tp.Acquire(1, func() { order = append(order, 2) })
	tp.Acquire(2, func() { order = append(order, 3) }) // must wait for both
	tp.Acquire(1, func() { order = append(order, 4) }) // queued behind 3: no overtake
	if len(order) != 2 {
		t.Fatalf("grants = %v, want first two immediate", order)
	}
	tp.Release(1)
	if len(order) != 2 {
		t.Fatalf("grant 3 fired early with 1 token: %v", order)
	}
	tp.Release(1)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("grant 3 should fire after 2 releases: %v", order)
	}
	tp.Release(2)
	if len(order) != 4 || order[3] != 4 {
		t.Fatalf("grant 4 missing: %v", order)
	}
	if tp.Available() != 1 {
		t.Fatalf("available = %d, want 1", tp.Available())
	}
}

func TestTokenPoolTryAcquire(t *testing.T) {
	tp := NewTokenPool("x", 1)
	if !tp.TryAcquire(1) {
		t.Fatal("TryAcquire should succeed with a free token")
	}
	if tp.TryAcquire(1) {
		t.Fatal("TryAcquire should fail when drained")
	}
	tp.Acquire(1, func() {}) // queue a waiter
	tp.Release(1)            // waiter is served
	if tp.TryAcquire(1) {
		t.Fatal("TryAcquire should fail: waiter consumed the token")
	}
}

func TestTokenPoolOverRelease(t *testing.T) {
	tp := NewTokenPool("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing above capacity did not panic")
		}
	}()
	tp.Release(1)
}

// Property: tokens are conserved under any acquire/release interleaving.
func TestTokenPoolConservationProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		tp := NewTokenPool("p", 8)
		outstanding := 0
		granted := 0
		for _, op := range ops {
			if op%2 == 0 {
				tp.Acquire(int(op%3)+1, func() { granted++ })
			} else if outstanding < granted {
				// Return one previously granted token batch of size 1..3:
				// track only count-1 releases for simplicity.
				tp.Release(1)
				outstanding++
			}
		}
		// Invariant: available never exceeds capacity (Release panics
		// otherwise), and never negative.
		return tp.Available() >= 0 && tp.Available() <= tp.Cap()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look correlated: %d/100 equal", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(2)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBytes(t *testing.T) {
	r := NewRNG(3)
	b := make([]byte, 33)
	r.Bytes(b)
	zero := 0
	for _, v := range b {
		if v == 0 {
			zero++
		}
	}
	if zero > 8 {
		t.Fatalf("suspiciously many zero bytes: %d/33", zero)
	}
	// Determinism.
	b2 := make([]byte, 33)
	NewRNG(3).Bytes(b2)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("RNG.Bytes not deterministic")
		}
	}
}

func TestTallyStats(t *testing.T) {
	ta := NewTally("lat")
	for _, v := range []float64{5, 1, 3, 2, 4} {
		ta.Add(v)
	}
	if ta.Count() != 5 || ta.Mean() != 3 || ta.Min() != 1 || ta.Max() != 5 {
		t.Fatalf("tally stats wrong: %v", ta)
	}
	if p := ta.Percentile(50); p != 3 {
		t.Fatalf("p50 = %f, want 3", p)
	}
	if p := ta.Percentile(100); p != 5 {
		t.Fatalf("p100 = %f, want 5", p)
	}
	// Adding after a percentile query must still work.
	ta.Add(10)
	if ta.Max() != 10 || ta.Percentile(100) != 10 {
		t.Fatal("tally broken after post-sort insert")
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Add(500)
	c.Inc()
	if c.Value() != 501 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r := c.Rate(Second / 2); r != 1002 {
		t.Fatalf("rate = %f, want 1002/s", r)
	}
	if r := c.Rate(0); r != 0 {
		t.Fatalf("rate at zero elapsed = %f, want 0", r)
	}
}
