package sim

import "fmt"

// Pipe models a serialized transfer resource — a flash bus, a serial
// network link, or a DMA channel — with a fixed bandwidth and a fixed
// propagation latency. Transfers queue FIFO: a transfer occupies the
// pipe for size/bandwidth, and its payload is delivered latency after
// the occupancy ends (store-and-forward).
type Pipe struct {
	eng         *Engine
	name        string
	bytesPerSec int64
	latency     Time

	busyUntil   Time
	busyTotal   Time // accumulated occupancy, for utilization stats
	transferred int64
	transfers   int64
}

// NewPipe constructs a pipe. bytesPerSec must be positive; latency may
// be zero.
func NewPipe(eng *Engine, name string, bytesPerSec int64, latency Time) *Pipe {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: pipe %q: non-positive bandwidth %d", name, bytesPerSec))
	}
	if latency < 0 {
		panic(fmt.Sprintf("sim: pipe %q: negative latency %v", name, latency))
	}
	return &Pipe{eng: eng, name: name, bytesPerSec: bytesPerSec, latency: latency}
}

// Name returns the pipe's diagnostic name.
func (p *Pipe) Name() string { return p.name }

// Latency returns the propagation latency.
func (p *Pipe) Latency() Time { return p.latency }

// BytesPerSec returns the configured bandwidth.
func (p *Pipe) BytesPerSec() int64 { return p.bytesPerSec }

// serialization returns the wire occupancy of a transfer of n bytes.
//
//simlint:hotpath
func (p *Pipe) serialization(n int) Time {
	return Time(int64(n) * int64(Second) / p.bytesPerSec)
}

// Transfer enqueues a transfer of size bytes and schedules done at the
// delivery time. It returns the delivery time.
//
//simlint:hotpath
func (p *Pipe) Transfer(size int, done func()) Time {
	if size < 0 {
		panic(fmt.Sprintf("sim: pipe %q: negative transfer size %d", p.name, size))
	}
	start := p.eng.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	ser := p.serialization(size)
	p.busyUntil = start + ser
	p.busyTotal += ser
	p.transferred += int64(size)
	p.transfers++
	delivery := p.busyUntil + p.latency
	if done != nil {
		p.eng.At(delivery, done)
	}
	return delivery
}

// NextFree returns the earliest time a new transfer could begin.
func (p *Pipe) NextFree() Time {
	if p.busyUntil > p.eng.Now() {
		return p.busyUntil
	}
	return p.eng.Now()
}

// Transferred returns the total bytes accepted so far.
func (p *Pipe) Transferred() int64 { return p.transferred }

// Transfers returns the number of transfers accepted so far.
func (p *Pipe) Transfers() int64 { return p.transfers }

// Utilization returns the fraction of time the pipe has been occupied,
// measured against the engine's current clock. Returns 0 at time zero.
func (p *Pipe) Utilization() float64 {
	if p.eng.Now() == 0 {
		return 0
	}
	busy := p.busyTotal
	// Occupancy reserved beyond "now" has not elapsed yet.
	if p.busyUntil > p.eng.Now() {
		busy -= p.busyUntil - p.eng.Now()
	}
	return float64(busy) / float64(p.eng.Now())
}
