package sim

import (
	"math"
	"testing"
)

// TestTallyEmptyExportsZeros: a tally with zero samples (a stream
// that never completed anything) must export zeros everywhere, never
// NaN or infinities that would poison a JSON metrics artifact.
func TestTallyEmptyExportsZeros(t *testing.T) {
	ta := NewTally("empty")
	for name, v := range map[string]float64{
		"mean": ta.Mean(),
		"min":  ta.Min(),
		"max":  ta.Max(),
		"p0":   ta.Percentile(0),
		"p50":  ta.Percentile(50),
		"p99":  ta.Percentile(99),
		"p100": ta.Percentile(100),
	} {
		if v != 0 {
			t.Fatalf("%s of empty tally = %v, want 0", name, v)
		}
	}
}

// TestTallyRejectsNonFinite: NaN/Inf samples are dropped (and
// counted) instead of poisoning the mean and the percentile sort.
func TestTallyRejectsNonFinite(t *testing.T) {
	ta := NewTally("guarded")
	ta.Add(1)
	ta.Add(math.NaN())
	ta.Add(math.Inf(1))
	ta.Add(math.Inf(-1))
	ta.Add(3)
	if ta.Count() != 2 {
		t.Fatalf("count = %d, want 2", ta.Count())
	}
	if ta.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", ta.Dropped())
	}
	if got := ta.Mean(); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if got := ta.Percentile(99); got != 3 {
		t.Fatalf("p99 = %v, want 3", got)
	}
}

// TestTallyPercentileDegenerateP: NaN and out-of-range percentile
// arguments cannot index arbitrary ranks.
func TestTallyPercentileDegenerateP(t *testing.T) {
	ta := NewTally("p")
	for i := 1; i <= 10; i++ {
		ta.Add(float64(i))
	}
	if got := ta.Percentile(math.NaN()); got != 0 {
		t.Fatalf("percentile(NaN) = %v, want 0", got)
	}
	if got := ta.Percentile(-5); got != 1 {
		t.Fatalf("percentile(-5) = %v, want clamp to min sample 1", got)
	}
	if got := ta.Percentile(250); got != 10 {
		t.Fatalf("percentile(250) = %v, want clamp to max sample 10", got)
	}
}
