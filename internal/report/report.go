// Package report produces operational snapshots of a running BlueDBM
// cluster: flash activity, ECC health, link and PCIe utilization per
// node. It is the observability layer an appliance operator would
// watch, and what cmd/bluedbm-sim prints.
package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// NodeStats is one node's counters at snapshot time.
type NodeStats struct {
	Node          int
	FlashReads    int64
	FlashPrograms int64
	FlashErases   int64
	CorrectedBits int64
	Uncorrectable int64
	InjectedFlips int64
	AvgBusUtil    float64
	PCIeUtil      float64
	PCIeBytes     int64
	CPUUtil       float64
}

// ClusterStats is a whole-appliance snapshot.
type ClusterStats struct {
	SimTime      string
	Nodes        []NodeStats
	NetDelivered int64
	NetBytes     int64
	LinkUtil     []float64
}

// Snapshot gathers counters from every component of the cluster.
func Snapshot(c *core.Cluster) ClusterStats {
	out := ClusterStats{
		SimTime:      c.Eng.Now().String(),
		NetDelivered: c.Net.Delivered.Value(),
		NetBytes:     c.Net.BytesMoved.Value(),
		LinkUtil:     c.Net.LinkUtilization(),
	}
	for i := 0; i < c.Nodes(); i++ {
		node := c.Node(i)
		ns := NodeStats{Node: i}
		busCount := 0
		for card := 0; card < c.Params.CardsPerNode; card++ {
			cd := node.Card(card)
			ctl := node.Controller(card)
			ns.FlashReads += cd.Reads.Value()
			ns.FlashPrograms += cd.Programs.Value()
			ns.FlashErases += cd.Erases.Value()
			ns.InjectedFlips += cd.InjectedFlips.Value()
			ns.CorrectedBits += ctl.CorrectedBits.Value()
			ns.Uncorrectable += ctl.Uncorrectable.Value()
			for b := 0; b < c.Params.Geometry.Buses; b++ {
				ns.AvgBusUtil += cd.BusUtilization(b)
				busCount++
			}
		}
		if busCount > 0 {
			ns.AvgBusUtil /= float64(busCount)
		}
		ns.PCIeUtil = node.Host.ToHostUtilization()
		ns.PCIeBytes = node.Host.ToHostBytes()
		ns.CPUUtil = node.CPU.Utilization()
		out.Nodes = append(out.Nodes, ns)
	}
	return out
}

// Totals aggregates across nodes.
func (s ClusterStats) Totals() NodeStats {
	var t NodeStats
	t.Node = -1
	for _, n := range s.Nodes {
		t.FlashReads += n.FlashReads
		t.FlashPrograms += n.FlashPrograms
		t.FlashErases += n.FlashErases
		t.CorrectedBits += n.CorrectedBits
		t.Uncorrectable += n.Uncorrectable
		t.InjectedFlips += n.InjectedFlips
		t.PCIeBytes += n.PCIeBytes
	}
	return t
}

// Format renders the snapshot as an operator dashboard.
func (s ClusterStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster snapshot @ %s\n", s.SimTime)
	fmt.Fprintf(&b, "%-5s %10s %10s %8s %10s %8s %8s %8s\n",
		"node", "reads", "programs", "erases", "ecc-fix", "bus%", "pcie%", "cpu%")
	for _, n := range s.Nodes {
		fmt.Fprintf(&b, "%-5d %10d %10d %8d %10d %7.1f%% %7.1f%% %7.1f%%\n",
			n.Node, n.FlashReads, n.FlashPrograms, n.FlashErases, n.CorrectedBits,
			n.AvgBusUtil*100, n.PCIeUtil*100, n.CPUUtil*100)
	}
	t := s.Totals()
	fmt.Fprintf(&b, "total %10d %10d %8d %10d   (uncorrectable: %d)\n",
		t.FlashReads, t.FlashPrograms, t.FlashErases, t.CorrectedBits, t.Uncorrectable)
	fmt.Fprintf(&b, "network: %d messages, %d payload bytes, %d link directions\n",
		s.NetDelivered, s.NetBytes, len(s.LinkUtil))
	return b.String()
}
