package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSnapshotCountsActivity(t *testing.T) {
	p := core.DefaultParams(2)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	p.Reliability.BitErrorRate = 1e-5
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedLinear(1, 16, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		a := core.LinearPage(p, 1, i)
		c.Node(0).ISPRead(a, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", i, err)
			}
		})
	}
	c.Run()

	s := Snapshot(c)
	if len(s.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	tot := s.Totals()
	if tot.FlashPrograms != 16 {
		t.Fatalf("programs = %d, want 16", tot.FlashPrograms)
	}
	if tot.FlashReads != 16 {
		t.Fatalf("reads = %d, want 16", tot.FlashReads)
	}
	// Remote reads moved messages over the network.
	if s.NetDelivered == 0 || s.NetBytes == 0 {
		t.Fatalf("network counters empty: %d msgs %d bytes", s.NetDelivered, s.NetBytes)
	}
	// Error injection at 1e-5 over 32 page ops has expectation ~20 flips.
	if tot.InjectedFlips > 0 && tot.CorrectedBits == 0 {
		t.Fatal("flips injected but none corrected")
	}

	out := s.Format()
	for _, want := range []string{"cluster snapshot", "node", "total", "network:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotActivityOnRightNode(t *testing.T) {
	p := core.DefaultParams(3)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SeedLinear(2, 8, nil); err != nil {
		t.Fatal(err)
	}
	s := Snapshot(c)
	if s.Nodes[2].FlashPrograms != 8 {
		t.Fatalf("node 2 programs = %d, want 8", s.Nodes[2].FlashPrograms)
	}
	if s.Nodes[0].FlashPrograms != 0 || s.Nodes[1].FlashPrograms != 0 {
		t.Fatal("programs attributed to idle nodes")
	}
}
