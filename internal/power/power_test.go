package power

import (
	"strings"
	"testing"
)

func TestNodeBudgetMatchesTable3(t *testing.T) {
	b := NodeBudget(2)
	// Paper Table 3: VC707 30 W, 2 flash boards 10 W, Xeon 200 W = 240 W.
	if got := b.Total(); got != 240 {
		t.Fatalf("node total %.1f W, paper reports 240", got)
	}
}

func TestAddedFractionUnder20Pct(t *testing.T) {
	// §6.2: "BlueDBM adds less than 20% of power consumption".
	if f := AddedFraction(2); f >= 0.20 {
		t.Fatalf("storage adds %.0f%%, paper claims < 20%%", f*100)
	}
}

func TestClusterBudget(t *testing.T) {
	b := ClusterBudget(20, 2)
	if got := b.Total(); got != 20*240 {
		t.Fatalf("20-node cluster %.0f W, want 4800", got)
	}
}

func TestRAMCloudComparison(t *testing.T) {
	// §8: a rack-size BlueDBM is "an order of magnitude ... less power
	// hungry than a cloud based system with enough DRAM for 10-20 TB".
	blue := ClusterBudget(20, 2).Total()
	ram := RAMCloudBudget(20_000, 256).Total()
	if ram/blue < 4 {
		t.Fatalf("ram-cloud (%.0f W) vs BlueDBM (%.0f W): ratio %.1f too small", ram, blue, ram/blue)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable(NodeBudget(2))
	for _, want := range []string{"VC707", "Flash Board", "Xeon Server", "Total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
