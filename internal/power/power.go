// Package power models BlueDBM's power budget (paper §6.2, Table 3)
// and the cost-power comparison against a DRAM-based cluster that
// motivates the whole design. Like the paper's own table, the numbers
// are datasheet estimates, not measurements.
package power

import (
	"fmt"
	"strings"
)

// Component is one power consumer.
type Component struct {
	Name  string
	Count int
	Watts float64 // per instance
}

// Budget is a node- or cluster-level power inventory.
type Budget struct {
	Title      string
	Components []Component
}

// Total returns the budget's total watts.
func (b Budget) Total() float64 {
	var w float64
	for _, c := range b.Components {
		w += float64(c.Count) * c.Watts
	}
	return w
}

// NodeBudget reproduces Table 3 for one BlueDBM node, parameterized by
// flash card count.
func NodeBudget(flashCards int) Budget {
	return Budget{
		Title: "BlueDBM node power (Table 3)",
		Components: []Component{
			{Name: "VC707", Count: 1, Watts: 30},
			{Name: "Flash Board", Count: flashCards, Watts: 5},
			{Name: "Xeon Server", Count: 1, Watts: 200},
		},
	}
}

// ClusterBudget scales a node budget to n nodes.
func ClusterBudget(n, flashCards int) Budget {
	nb := NodeBudget(flashCards)
	out := Budget{Title: fmt.Sprintf("BlueDBM %d-node cluster power", n)}
	for _, c := range nb.Components {
		c.Count *= n
		out.Components = append(out.Components, c)
	}
	return out
}

// RAMCloudBudget estimates a DRAM cluster holding the same dataset:
// servers of serverDRAMGB gigabytes each, at a typical 250 W per
// loaded server plus 0.4 W per GB of DRAM (§1: ~100 servers with
// 128-256 GB each for a 20 TB dataset).
func RAMCloudBudget(datasetGB, serverDRAMGB int) Budget {
	if serverDRAMGB <= 0 {
		serverDRAMGB = 256
	}
	servers := (datasetGB + serverDRAMGB - 1) / serverDRAMGB
	return Budget{
		Title: fmt.Sprintf("ram-cloud for %d GB (%d servers x %d GB)", datasetGB, servers, serverDRAMGB),
		Components: []Component{
			{Name: "Server (base)", Count: servers, Watts: 250},
			{Name: "DRAM", Count: servers * serverDRAMGB, Watts: 0.4},
		},
	}
}

// AddedFraction returns the share of a node's total power that the
// storage device (FPGA board + flash cards) contributes — the paper
// claims it "adds less than 20% of power consumption to the system".
func AddedFraction(flashCards int) float64 {
	b := NodeBudget(flashCards)
	var added float64
	for _, c := range b.Components {
		if c.Name != "Xeon Server" {
			added += float64(c.Count) * c.Watts
		}
	}
	total := b.Total()
	if total == 0 {
		return 0
	}
	return added / total
}

// FormatTable renders a budget like the paper's Table 3.
func FormatTable(b Budget) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", b.Title)
	fmt.Fprintf(&sb, "%-20s %8s %12s\n", "Component", "Count", "Power (W)")
	for _, c := range b.Components {
		fmt.Fprintf(&sb, "%-20s %8d %12.1f\n", c.Name, c.Count, float64(c.Count)*c.Watts)
	}
	fmt.Fprintf(&sb, "%-20s %8s %12.1f\n", "Total", "", b.Total())
	return sb.String()
}
