package flashserver

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/flashctl"
	"repro/internal/nand"
	"repro/internal/sim"
)

func testGeometry() nand.Geometry {
	return nand.Geometry{
		Buses: 2, ChipsPerBus: 2, BlocksPerChip: 8, PagesPerBlock: 16,
		PageSize: 8192, OOBSize: 1024,
	}
}

// stack builds engine -> card -> controller -> splitter.
func stack(t *testing.T) (*sim.Engine, *nand.Card, *Splitter) {
	t.Helper()
	eng := sim.NewEngine()
	card, err := nand.NewCard(eng, "c0", testGeometry(), nand.DefaultTiming(), nand.Reliability{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sp *Splitter
	ctl, err := flashctl.New(eng, card, flashctl.DefaultConfig(), flashctl.Handlers{
		ReadChunk:    func(tag, off int, chunk []byte, last bool) { sp.Handlers().ReadChunk(tag, off, chunk, last) },
		ReadDone:     func(tag, corrected int, err error) { sp.Handlers().ReadDone(tag, corrected, err) },
		WriteDataReq: func(tag int) { sp.Handlers().WriteDataReq(tag) },
		WriteDone:    func(tag int, err error) { sp.Handlers().WriteDone(tag, err) },
		EraseDone:    func(tag int, err error) { sp.Handlers().EraseDone(tag, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sp = NewSplitter(ctl)
	return eng, card, sp
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*13)
	}
	return b
}

func TestServerWriteReadInOrder(t *testing.T) {
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 8)
	iface := srv.NewIface("if0")

	// Write 8 pages, then read them back; completions must arrive in
	// request order even though buses reorder internally.
	var writeErrs []error
	for p := 0; p < 8; p++ {
		iface.WritePhysical(nand.Addr{Bus: p % 2, Chip: 0, Block: 0, Page: p / 2}, pattern(8192, byte(p)), func(err error) {
			writeErrs = append(writeErrs, err)
		})
	}
	eng.Run()
	if len(writeErrs) != 8 {
		t.Fatalf("write acks = %d, want 8", len(writeErrs))
	}
	for i, err := range writeErrs {
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	var order []int
	var datas [][]byte
	for p := 0; p < 8; p++ {
		p := p
		iface.ReadPhysical(nand.Addr{Bus: p % 2, Chip: 0, Block: 0, Page: p / 2}, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", p, err)
			}
			order = append(order, p)
			datas = append(datas, data)
		})
	}
	eng.Run()
	if len(order) != 8 {
		t.Fatalf("reads completed = %d, want 8", len(order))
	}
	for i, p := range order {
		if p != i {
			t.Fatalf("out-of-order completion: %v", order)
		}
		if !bytes.Equal(datas[i], pattern(8192, byte(p))) {
			t.Fatalf("read %d: data mismatch", p)
		}
	}
}

func TestServerReordersAcrossBuses(t *testing.T) {
	// A slow-bus page requested first must still complete first at the
	// interface, even when a fast page finishes earlier at the flash.
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 8)
	iface := srv.NewIface("if0")

	// Write one page on each bus; then queue 3 reads to bus 0 (making
	// it busy) followed by the probe pattern.
	for bus := 0; bus < 2; bus++ {
		iface.WritePhysical(nand.Addr{Bus: bus, Chip: 0, Block: 0, Page: 0}, pattern(8192, byte(bus)), func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()

	var got []string
	iface.ReadPhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}, func([]byte, error) { got = append(got, "slow") })
	iface.ReadPhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}, func([]byte, error) { got = append(got, "slow") })
	iface.ReadPhysical(nand.Addr{Bus: 1, Chip: 0, Block: 0, Page: 0}, func([]byte, error) { got = append(got, "fast") })
	eng.Run()
	want := []string{"slow", "slow", "fast"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order %v, want %v", got, want)
		}
	}
}

func TestTwoIfacesIndependentOrder(t *testing.T) {
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 8)
	a := srv.NewIface("a")
	b := srv.NewIface("b")
	for bus := 0; bus < 2; bus++ {
		a.WritePhysical(nand.Addr{Bus: bus, Chip: 0, Block: 0, Page: 0}, pattern(8192, byte(bus)), func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()
	var events []string
	// a reads the slow bus twice; b reads the fast bus once. b must NOT
	// wait behind a's FIFO.
	a.ReadPhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}, func([]byte, error) { events = append(events, "a1") })
	a.ReadPhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}, func([]byte, error) { events = append(events, "a2") })
	b.ReadPhysical(nand.Addr{Bus: 1, Chip: 0, Block: 0, Page: 0}, func([]byte, error) { events = append(events, "b1") })
	eng.Run()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	// b's single fast-bus read must not queue behind a's second
	// slow-bus read: interfaces are independent FIFOs.
	posB, posA2 := -1, -1
	for i, ev := range events {
		switch ev {
		case "b1":
			posB = i
		case "a2":
			posA2 = i
		}
	}
	if posB > posA2 {
		t.Fatalf("independent iface was blocked: %v", events)
	}
}

func TestATUFileReads(t *testing.T) {
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 8)
	iface := srv.NewIface("if0")

	// "File": 4 pages scattered across buses/chips, deliberately not in
	// layout order.
	layout := []nand.Addr{
		{Bus: 1, Chip: 1, Block: 0, Page: 0},
		{Bus: 0, Chip: 0, Block: 0, Page: 0},
		{Bus: 1, Chip: 0, Block: 0, Page: 0},
		{Bus: 0, Chip: 1, Block: 0, Page: 0},
	}
	for i, a := range layout {
		iface.WritePhysical(a, pattern(8192, byte(0x10+i)), func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()

	srv.ATU().Load(FileHandle(42), layout)
	if srv.ATU().Pages(42) != 4 {
		t.Fatalf("ATU pages = %d", srv.ATU().Pages(42))
	}
	var pagesRead [][]byte
	for i := 0; i < 4; i++ {
		iface.ReadFile(42, i, func(data []byte, err error) {
			if err != nil {
				t.Errorf("file read: %v", err)
			}
			pagesRead = append(pagesRead, data)
		})
	}
	eng.Run()
	for i, data := range pagesRead {
		if !bytes.Equal(data, pattern(8192, byte(0x10+i))) {
			t.Fatalf("file page %d wrong content", i)
		}
	}
}

func TestATUErrors(t *testing.T) {
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 8)
	iface := srv.NewIface("if0")

	var gotErr error
	iface.ReadFile(7, 0, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrNoMapping) {
		t.Fatalf("unmapped handle: %v", gotErr)
	}

	srv.ATU().Load(7, []nand.Addr{{Bus: 0}})
	iface.ReadFile(7, 5, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrOutOfBounds) {
		t.Fatalf("out-of-range page: %v", gotErr)
	}

	srv.ATU().Evict(7)
	if srv.ATU().Pages(7) != 0 {
		t.Fatal("evict did not clear mapping")
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	eng, card, sp := stack(t)
	srv := NewServer(sp, "srv", 2) // shallow queue
	iface := srv.NewIface("if0")
	for p := 0; p < 16; p++ {
		iface.WritePhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: p}, pattern(8192, byte(p)), func(err error) {
			if err != nil {
				t.Error(err)
			}
		})
	}
	eng.Run()
	done := 0
	for p := 0; p < 16; p++ {
		p := p
		iface.ReadPhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: p}, func(data []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", p, err)
			}
			done++
		})
	}
	eng.Run()
	if done != 16 {
		t.Fatalf("completed %d of 16 despite backpressure", done)
	}
	_ = card
}

func TestSplitterTagExhaustionQueues(t *testing.T) {
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 1000) // effectively unbounded iface credit
	iface := srv.NewIface("if0")
	geo := testGeometry()
	// Write every page of block 0 on all chips: 2*2*16 = 64 pages.
	total := 0
	for bus := 0; bus < geo.Buses; bus++ {
		for chip := 0; chip < geo.ChipsPerBus; chip++ {
			for p := 0; p < geo.PagesPerBlock; p++ {
				iface.WritePhysical(nand.Addr{Bus: bus, Chip: chip, Block: 0, Page: p}, pattern(8192, byte(p)), func(err error) {
					if err != nil {
						t.Error(err)
					}
				})
				total++
			}
		}
	}
	eng.Run()
	// Read each page 3 times: 192 requests > 128 controller tags.
	want := 0
	got := 0
	for rep := 0; rep < 3; rep++ {
		for bus := 0; bus < geo.Buses; bus++ {
			for chip := 0; chip < geo.ChipsPerBus; chip++ {
				for p := 0; p < geo.PagesPerBlock; p++ {
					want++
					iface.ReadPhysical(nand.Addr{Bus: bus, Chip: chip, Block: 0, Page: p}, func(_ []byte, err error) {
						if err != nil {
							t.Errorf("read: %v", err)
						}
						got++
					})
				}
			}
		}
	}
	eng.Run()
	if got != want {
		t.Fatalf("completed %d of %d reads under tag exhaustion", got, want)
	}
	if sp.Waits() == 0 {
		t.Fatal("expected some commands to wait for controller tags")
	}
}

func TestMultipleAgentsShareController(t *testing.T) {
	// Two servers (agents) with distinct ports on one splitter: tag
	// renaming must keep their completions separated.
	eng, _, sp := stack(t)
	srvA := NewServer(sp, "agentA", 8)
	srvB := NewServer(sp, "agentB", 8)
	ia := srvA.NewIface("a")
	ib := srvB.NewIface("b")

	ia.WritePhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}, pattern(8192, 0xaa), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	ib.WritePhysical(nand.Addr{Bus: 1, Chip: 0, Block: 0, Page: 0}, pattern(8192, 0xbb), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()

	var gotA, gotB []byte
	ia.ReadPhysical(nand.Addr{Bus: 0, Chip: 0, Block: 0, Page: 0}, func(d []byte, err error) { gotA = d })
	ib.ReadPhysical(nand.Addr{Bus: 1, Chip: 0, Block: 0, Page: 0}, func(d []byte, err error) { gotB = d })
	eng.Run()
	if !bytes.Equal(gotA, pattern(8192, 0xaa)) {
		t.Fatal("agent A got wrong data")
	}
	if !bytes.Equal(gotB, pattern(8192, 0xbb)) {
		t.Fatal("agent B got wrong data")
	}
	if sp.Renames() < 4 {
		t.Fatalf("renames = %d, want >= 4", sp.Renames())
	}
}

func TestServerEraseAndRewrite(t *testing.T) {
	eng, _, sp := stack(t)
	srv := NewServer(sp, "srv", 8)
	iface := srv.NewIface("if0")
	a := nand.Addr{Bus: 0, Chip: 0, Block: 1, Page: 0}
	iface.WritePhysical(a, pattern(8192, 1), func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	var erased bool
	iface.Erase(nand.Addr{Bus: 0, Chip: 0, Block: 1}, func(err error) {
		if err != nil {
			t.Error(err)
		}
		erased = true
	})
	eng.Run()
	if !erased {
		t.Fatal("erase ack missing")
	}
	// Dependent operations must wait for the ack: the FIFO interface
	// orders completions, not issue-side dependencies.
	var got []byte
	iface.WritePhysical(a, pattern(8192, 2), func(err error) {
		if err != nil {
			t.Error(err)
		}
		iface.ReadPhysical(a, func(d []byte, err error) {
			if err != nil {
				t.Error(err)
			}
			got = d
		})
	})
	eng.Run()
	if !bytes.Equal(got, pattern(8192, 2)) {
		t.Fatal("rewrite after erase returned stale data")
	}
}

func TestClosedPortRejects(t *testing.T) {
	_, _, sp := stack(t)
	p := sp.NewPort("x", flashctl.Handlers{})
	p.Close()
	if err := p.Issue(flashctl.Command{Op: flashctl.OpRead, Tag: 0}); !errors.Is(err, ErrPortClosed) {
		t.Fatalf("issue on closed port: %v", err)
	}
	if err := p.WriteData(0, nil); !errors.Is(err, ErrPortClosed) {
		t.Fatalf("write data on closed port: %v", err)
	}
}
