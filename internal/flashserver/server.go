package flashserver

import (
	"errors"
	"fmt"

	"repro/internal/flashctl"
	"repro/internal/nand"
)

// Server errors.
var (
	ErrNoMapping   = errors.New("flashserver: file handle not mapped")
	ErrOutOfBounds = errors.New("flashserver: offset beyond file mapping")
)

// Server is the optional Flash Server module (paper §3.1.2): it turns
// the controller's out-of-order interleaved interface into simple
// in-order request/response interfaces using page buffers, and hosts
// the Address Translation Unit for file-handle based requests.
type Server struct {
	port *Port
	atu  *ATU

	queueDepth    int
	nextTag       int
	inflight      map[int]*pageOp
	pendingWrites map[int][]byte // write data waiting for the controller's pull

	ifaces []*Iface
}

// pageOp reassembles the bursts of one read and carries completion
// plumbing for any op kind.
type pageOp struct {
	iface *Iface
	seq   uint64
	buf   []byte
	done  bool
	err   error
	kind  flashctl.Op
}

// Iface is one in-order interface of the server. Responses on an
// interface are delivered strictly in request order, like a FIFO,
// regardless of how the flash reorders them internally.
type Iface struct {
	srv  *Server
	name string

	nextSeq  uint64
	headSeq  uint64
	complete map[uint64]*pageOp // finished ops waiting for FIFO order
	cbs      map[uint64]any     // seq -> callback
	pendingQ []func()           // ops waiting for queue-depth credit
	credits  int
}

// NewServer attaches a Flash Server to a splitter. queueDepth bounds
// the per-interface number of requests outstanding at the controller
// (the "command queue depth" parameter of the paper).
func NewServer(sp *Splitter, name string, queueDepth int) *Server {
	if queueDepth <= 0 {
		queueDepth = 8
	}
	srv := &Server{
		atu:           NewATU(),
		queueDepth:    queueDepth,
		inflight:      make(map[int]*pageOp),
		pendingWrites: make(map[int][]byte),
	}
	srv.port = sp.NewPort(name, flashctl.Handlers{
		ReadChunk: func(tag, offset int, chunk []byte, last bool) {
			op := srv.inflight[tag]
			if op == nil {
				return
			}
			if op.buf == nil {
				op.buf = make([]byte, 0, offset+len(chunk))
			}
			op.buf = append(op.buf, chunk...)
		},
		ReadDone: func(tag, corrected int, err error) {
			srv.finish(tag, err)
		},
		WriteDataReq: func(tag int) {
			data, ok := srv.pendingWrites[tag]
			if !ok {
				return
			}
			delete(srv.pendingWrites, tag)
			if err := srv.port.WriteData(tag, data); err != nil {
				srv.finish(tag, err)
			}
		},
		WriteDone: func(tag int, err error) {
			srv.finish(tag, err)
		},
		EraseDone: func(tag int, err error) {
			srv.finish(tag, err)
		},
	})
	return srv
}

// ATU returns the server's address translation unit.
func (s *Server) ATU() *ATU { return s.atu }

// NewIface creates an in-order interface. The paper makes the number
// of interfaces a design-time parameter; here it is just a
// constructor call.
func (s *Server) NewIface(name string) *Iface {
	f := &Iface{
		srv:      s,
		name:     name,
		complete: make(map[uint64]*pageOp),
		cbs:      make(map[uint64]any),
		credits:  s.queueDepth,
	}
	s.ifaces = append(s.ifaces, f)
	return f
}

func (s *Server) finish(tag int, err error) {
	op := s.inflight[tag]
	if op == nil {
		return
	}
	delete(s.inflight, tag)
	op.done = true
	op.err = err
	f := op.iface
	f.complete[op.seq] = op
	f.drainInOrder()
}

// ReadPhysical reads the page at a physical address. The callback
// fires in FIFO order relative to other requests on this interface.
func (f *Iface) ReadPhysical(addr nand.Addr, cb func(data []byte, err error)) {
	seq := f.nextSeq
	f.nextSeq++
	f.cbs[seq] = cb
	//simlint:allow hotcall (per-op credit continuation: one bounded closure per in-flight flash command, hidden under NAND latency)
	f.withCredit(func() {
		tag := f.srv.nextTag
		f.srv.nextTag++
		//simlint:allow escapecheck (per-op completion record keyed by tag and seq; one bounded allocation per in-flight command, hidden under NAND latency)
		op := &pageOp{iface: f, seq: seq, kind: flashctl.OpRead}
		f.srv.inflight[tag] = op
		if err := f.srv.port.Issue(flashctl.Command{Op: flashctl.OpRead, Tag: tag, Addr: addr}); err != nil {
			delete(f.srv.inflight, tag)
			op.done, op.err = true, err
			f.complete[seq] = op
			f.drainInOrder()
		}
	})
}

// ReadFile reads page number pageOff of the file mapped under handle,
// using the ATU (the in-store processor path of paper Figure 8).
func (f *Iface) ReadFile(handle FileHandle, pageOff int, cb func(data []byte, err error)) {
	addr, err := f.srv.atu.Translate(handle, pageOff)
	if err != nil {
		// Order must still hold: inject a completed-with-error op.
		seq := f.nextSeq
		f.nextSeq++
		f.cbs[seq] = cb
		f.complete[seq] = &pageOp{iface: f, seq: seq, done: true, err: err, kind: flashctl.OpRead}
		f.drainInOrder()
		return
	}
	f.ReadPhysical(addr, cb)
}

// WritePhysical programs a page. The ack callback fires in FIFO order.
func (f *Iface) WritePhysical(addr nand.Addr, data []byte, cb func(err error)) {
	seq := f.nextSeq
	f.nextSeq++
	f.cbs[seq] = cb
	// Snapshot the payload now: the credit callback may run later, and
	// callers are free to reuse their buffer after this call returns.
	buf := make([]byte, len(data))
	copy(buf, data)
	f.withCredit(func() {
		tag := f.srv.nextTag
		f.srv.nextTag++
		op := &pageOp{iface: f, seq: seq, kind: flashctl.OpWrite}
		f.srv.inflight[tag] = op
		// Stash the data first: the controller pulls it via WriteDataReq
		// as soon as its scheduler is ready.
		f.srv.pendingWrites[tag] = buf
		if err := f.srv.port.Issue(flashctl.Command{Op: flashctl.OpWrite, Tag: tag, Addr: addr}); err != nil {
			delete(f.srv.inflight, tag)
			delete(f.srv.pendingWrites, tag)
			op.done, op.err = true, err
			f.complete[seq] = op
			f.drainInOrder()
		}
	})
}

// Erase erases a block. The ack callback fires in FIFO order.
func (f *Iface) Erase(addr nand.Addr, cb func(err error)) {
	seq := f.nextSeq
	f.nextSeq++
	f.cbs[seq] = cb
	f.withCredit(func() {
		tag := f.srv.nextTag
		f.srv.nextTag++
		op := &pageOp{iface: f, seq: seq, kind: flashctl.OpErase}
		f.srv.inflight[tag] = op
		if err := f.srv.port.Issue(flashctl.Command{Op: flashctl.OpErase, Tag: tag, Addr: addr}); err != nil {
			delete(f.srv.inflight, tag)
			op.done, op.err = true, err
			f.complete[seq] = op
			f.drainInOrder()
		}
	})
}

// withCredit runs fn when a queue-depth credit is available.
func (f *Iface) withCredit(fn func()) {
	if f.credits > 0 {
		f.credits--
		fn()
		return
	}
	f.pendingQ = append(f.pendingQ, fn)
}

func (f *Iface) releaseCredit() {
	if len(f.pendingQ) > 0 {
		fn := f.pendingQ[0]
		f.pendingQ = f.pendingQ[1:]
		fn()
		return
	}
	f.credits++
}

// drainInOrder delivers completed ops from the FIFO head.
func (f *Iface) drainInOrder() {
	for {
		op, ok := f.complete[f.headSeq]
		if !ok {
			return
		}
		delete(f.complete, f.headSeq)
		cb := f.cbs[f.headSeq]
		delete(f.cbs, f.headSeq)
		f.headSeq++
		f.releaseCredit()
		switch c := cb.(type) {
		case func(data []byte, err error):
			c(op.buf, op.err)
		case func(err error):
			c(op.err)
		default:
			panic(fmt.Sprintf("flashserver: unknown callback type %T", cb))
		}
	}
}
