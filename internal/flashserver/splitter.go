// Package flashserver implements the sharing layer between the flash
// controller and its many users (paper §3.1.2, Figure 3):
//
//   - Splitter: lets multiple hardware endpoints (local in-store
//     processors, host DMA, remote nodes) share one flash controller by
//     renaming each agent's private tags onto the controller's tag
//     space;
//   - Server: converts the controller's out-of-order, interleaved burst
//     interface into simple in-order request/response interfaces using
//     page completion buffers;
//   - ATU: the Address Translation Unit that maps (file handle, offset)
//     streams from the host onto physical flash addresses.
package flashserver

import (
	"errors"
	"fmt"

	"repro/internal/flashctl"
)

// ErrPortClosed reports use of a released port.
var ErrPortClosed = errors.New("flashserver: port closed")

// Splitter multiplexes agents onto one controller with tag renaming.
type Splitter struct {
	ctl      *flashctl.Controller
	freeTags []int
	queue    []*pendingCmd // waiting for a controller tag, FIFO
	bindings []binding     // indexed by controller tag
	h        flashctl.Handlers

	// stats
	renames int64
	waits   int64
}

type binding struct {
	port     *Port
	agentTag int
	active   bool
}

type pendingCmd struct {
	port *Port
	cmd  flashctl.Command
}

// Port is one agent's private view of the controller: its own tag
// space and its own handler set.
type Port struct {
	sp     *Splitter
	h      flashctl.Handlers
	name   string
	tagMap map[int]int // agent tag -> controller tag (for WriteData)
	closed bool
}

// NewSplitter wires a splitter in front of ctl. The controller must
// have been created with the splitter's dispatch handlers, which
// callers get from Handlers(); see New for the usual one-call setup.
func NewSplitter(ctl *flashctl.Controller) *Splitter {
	sp := &Splitter{ctl: ctl}
	n := ctl.Config().Tags
	sp.bindings = make([]binding, n)
	for i := n - 1; i >= 0; i-- {
		sp.freeTags = append(sp.freeTags, i)
	}
	sp.h = sp.buildHandlers()
	return sp
}

// Handlers returns the controller-side handler set that routes
// completions back through the splitter. Pass this to flashctl.New.
// The set is built once at construction, so callers may fetch it per
// event (the usual forward-declaration wiring does) without allocating
// closures on the completion path.
func (sp *Splitter) Handlers() flashctl.Handlers { return sp.h }

func (sp *Splitter) buildHandlers() flashctl.Handlers {
	return flashctl.Handlers{
		ReadChunk: func(tag, offset int, chunk []byte, last bool) {
			b := sp.bindings[tag]
			if b.active && b.port.h.ReadChunk != nil {
				b.port.h.ReadChunk(b.agentTag, offset, chunk, last)
			}
		},
		ReadDone: func(tag, corrected int, err error) {
			b := sp.release(tag)
			if b.port != nil && b.port.h.ReadDone != nil {
				b.port.h.ReadDone(b.agentTag, corrected, err)
			}
		},
		WriteDataReq: func(tag int) {
			b := sp.bindings[tag]
			if b.active && b.port.h.WriteDataReq != nil {
				b.port.h.WriteDataReq(b.agentTag)
			}
		},
		WriteDone: func(tag int, err error) {
			b := sp.release(tag)
			if b.port != nil {
				delete(b.port.tagMap, b.agentTag)
				if b.port.h.WriteDone != nil {
					b.port.h.WriteDone(b.agentTag, err)
				}
			}
		},
		EraseDone: func(tag int, err error) {
			b := sp.release(tag)
			if b.port != nil && b.port.h.EraseDone != nil {
				b.port.h.EraseDone(b.agentTag, err)
			}
		},
	}
}

// release frees a controller tag, serves the wait queue, and returns
// the binding that owned the tag.
func (sp *Splitter) release(tag int) binding {
	b := sp.bindings[tag]
	sp.bindings[tag] = binding{}
	sp.freeTags = append(sp.freeTags, tag)
	sp.drain()
	return b
}

func (sp *Splitter) drain() {
	for len(sp.queue) > 0 && len(sp.freeTags) > 0 {
		pc := sp.queue[0]
		sp.queue = sp.queue[1:]
		sp.submit(pc.port, pc.cmd)
	}
}

func (sp *Splitter) submit(p *Port, cmd flashctl.Command) {
	ctlTag := sp.freeTags[len(sp.freeTags)-1]
	sp.freeTags = sp.freeTags[:len(sp.freeTags)-1]
	sp.bindings[ctlTag] = binding{port: p, agentTag: cmd.Tag, active: true}
	if cmd.Op == flashctl.OpWrite {
		p.tagMap[cmd.Tag] = ctlTag
	}
	sp.renames++
	renamed := cmd
	renamed.Tag = ctlTag
	if err := sp.ctl.Issue(renamed); err != nil {
		// The splitter owns tag allocation, so this is a programming
		// error in the model, not a runtime condition.
		panic(fmt.Sprintf("flashserver: controller rejected renamed command: %v", err))
	}
}

// NewPort creates an agent-facing port named for diagnostics.
func (sp *Splitter) NewPort(name string, h flashctl.Handlers) *Port {
	return &Port{sp: sp, h: h, name: name, tagMap: make(map[int]int)}
}

// Renames returns how many commands have been tag-renamed.
func (sp *Splitter) Renames() int64 { return sp.renames }

// Waits returns how many commands had to queue for a controller tag.
func (sp *Splitter) Waits() int64 { return sp.waits }

// Issue submits a command using the port's private tag space. Commands
// queue FIFO when all controller tags are in flight.
func (p *Port) Issue(cmd flashctl.Command) error {
	if p.closed {
		return ErrPortClosed
	}
	if cmd.Tag < 0 {
		return fmt.Errorf("%w: %d", flashctl.ErrBadTag, cmd.Tag)
	}
	if len(p.sp.freeTags) == 0 {
		p.sp.waits++
		p.sp.queue = append(p.sp.queue, &pendingCmd{port: p, cmd: cmd})
		return nil
	}
	p.sp.submit(p, cmd)
	return nil
}

// WriteData forwards page data for an agent-tagged pending write.
func (p *Port) WriteData(agentTag int, data []byte) error {
	if p.closed {
		return ErrPortClosed
	}
	ctlTag, ok := p.tagMap[agentTag]
	if !ok {
		return fmt.Errorf("%w: agent tag %d has no pending write", flashctl.ErrWrongState, agentTag)
	}
	return p.sp.ctl.WriteData(ctlTag, data)
}

// Close releases the port. In-flight completions for the port are
// dropped silently, as when a hardware agent is reset.
func (p *Port) Close() { p.closed = true }
