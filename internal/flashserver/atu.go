package flashserver

import (
	"fmt"

	"repro/internal/nand"
)

// FileHandle identifies a host file whose physical layout has been
// pushed down to the Flash Server.
type FileHandle uint32

// ATU is the Address Translation Unit: it maps (file handle, page
// offset) to physical flash addresses. The host file system owns the
// mapping (paper §4, Figure 8 step 1-2) and loads it here so in-store
// processors can stream file contents without host involvement.
type ATU struct {
	maps map[FileHandle][]nand.Addr
}

// NewATU returns an empty translation unit.
func NewATU() *ATU {
	return &ATU{maps: make(map[FileHandle][]nand.Addr)}
}

// Load installs (or replaces) the physical page list for a handle.
func (a *ATU) Load(h FileHandle, pages []nand.Addr) {
	cp := make([]nand.Addr, len(pages))
	copy(cp, pages)
	a.maps[h] = cp
}

// Evict removes a handle's mapping.
func (a *ATU) Evict(h FileHandle) {
	delete(a.maps, h)
}

// Translate resolves one page of a mapped file.
func (a *ATU) Translate(h FileHandle, pageOff int) (nand.Addr, error) {
	pages, ok := a.maps[h]
	if !ok {
		return nand.Addr{}, fmt.Errorf("%w: handle %d", ErrNoMapping, h)
	}
	if pageOff < 0 || pageOff >= len(pages) {
		return nand.Addr{}, fmt.Errorf("%w: handle %d page %d of %d", ErrOutOfBounds, h, pageOff, len(pages))
	}
	return pages[pageOff], nil
}

// Pages returns the number of mapped pages for a handle (0 if absent).
func (a *ATU) Pages(h FileHandle) int {
	return len(a.maps[h])
}
