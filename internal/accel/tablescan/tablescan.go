// Package tablescan implements the SQL database acceleration that the
// paper lists as planned work (§8: "SQL Database Acceleration by
// offloading query processing and filtering to in-store processors"),
// in the style the related-work section attributes to Ibex and
// IBM/Netezza: selection and projection pushed down into the storage
// device, so only qualifying records cross PCIe to the host.
//
// Records are fixed-size rows packed into flash pages; predicates are
// simple column comparisons the FPGA could evaluate at line rate. The
// in-store scan reads the table at flash bandwidth and returns matches
// only; the host baseline hauls every page over PCIe and filters in
// software.
package tablescan

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Table-scan errors.
var (
	ErrBadRecord = errors.New("tablescan: malformed record page")
	ErrBadOp     = errors.New("tablescan: unknown comparison operator")
)

// Record is one fixed-size row: an id, two filterable integer columns,
// and an opaque payload (the projected data).
type Record struct {
	ID      uint64
	ColA    int64
	ColB    int64
	Payload [40]byte
}

// RecordSize is the packed size of one record.
const RecordSize = 8 + 8 + 8 + 40

// EncodeRecords packs records into one page image; the first 4 bytes
// hold the record count.
func EncodeRecords(recs []Record, pageSize int) ([]byte, error) {
	if 4+len(recs)*RecordSize > pageSize {
		return nil, fmt.Errorf("tablescan: %d records exceed a %d-byte page", len(recs), pageSize)
	}
	page := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(page, uint32(len(recs)))
	off := 4
	for _, r := range recs {
		binary.LittleEndian.PutUint64(page[off:], r.ID)
		binary.LittleEndian.PutUint64(page[off+8:], uint64(r.ColA))
		binary.LittleEndian.PutUint64(page[off+16:], uint64(r.ColB))
		copy(page[off+24:], r.Payload[:])
		off += RecordSize
	}
	return page, nil
}

// DecodeRecords unpacks a record page.
func DecodeRecords(page []byte) ([]Record, error) {
	if len(page) < 4 {
		return nil, ErrBadRecord
	}
	n := int(binary.LittleEndian.Uint32(page))
	if 4+n*RecordSize > len(page) {
		return nil, fmt.Errorf("%w: count %d", ErrBadRecord, n)
	}
	out := make([]Record, n)
	off := 4
	for i := range out {
		out[i].ID = binary.LittleEndian.Uint64(page[off:])
		out[i].ColA = int64(binary.LittleEndian.Uint64(page[off+8:]))
		out[i].ColB = int64(binary.LittleEndian.Uint64(page[off+16:]))
		copy(out[i].Payload[:], page[off+24:off+64])
		off += RecordSize
	}
	return out, nil
}

// RecordsPerPage returns the table's rows-per-page for a page size.
func RecordsPerPage(pageSize int) int { return (pageSize - 4) / RecordSize }

// Op is a comparison operator.
type Op uint8

// Comparison operators.
const (
	OpLT Op = iota
	OpLE
	OpEQ
	OpGE
	OpGT
)

// Column selects a filterable column.
type Column uint8

// Filterable columns.
const (
	ColA Column = iota
	ColB
)

// Predicate is one column comparison, the unit an in-store filter
// engine evaluates.
type Predicate struct {
	Col   Column
	Op    Op
	Value int64
}

// Eval applies the predicate to one record.
func (p Predicate) Eval(r Record) (bool, error) {
	var v int64
	switch p.Col {
	case ColA:
		v = r.ColA
	case ColB:
		v = r.ColB
	default:
		return false, fmt.Errorf("tablescan: unknown column %d", p.Col)
	}
	switch p.Op {
	case OpLT:
		return v < p.Value, nil
	case OpLE:
		return v <= p.Value, nil
	case OpEQ:
		return v == p.Value, nil
	case OpGE:
		return v >= p.Value, nil
	case OpGT:
		return v > p.Value, nil
	default:
		return false, fmt.Errorf("%w: %d", ErrBadOp, p.Op)
	}
}

// Result reports one scan.
type Result struct {
	Rows        int64 // rows scanned
	Matches     []Record
	Elapsed     sim.Time
	RowsPerSec  float64
	BytesToHost int64 // data that crossed PCIe
	CPUUtil     float64
}

// HostFilterCPUPerRow is the software predicate-evaluation cost per
// record, charged by the host-mediated scan paths (ScanHost here and
// the distributed host-mediated arm in internal/ispvol).
const HostFilterCPUPerRow = 60 * sim.Nanosecond

// FilterPage decodes one record page and applies pred: the kernel an
// in-store filter engine evaluates at line rate, shared by the
// single-node ScanISP engines and the distributed ispvol engines.
// It returns the matching records and the number of rows scanned. An
// undecodable page is an error; a record the predicate cannot
// evaluate (malformed Op/Col) is skipped but still counted as
// scanned, like a hardware filter dropping a row it cannot parse —
// one bad row must not discard the rest of the page.
func FilterPage(page []byte, pred Predicate) (matches []Record, rows int64, err error) {
	recs, err := DecodeRecords(page)
	if err != nil {
		return nil, 0, err
	}
	for _, r := range recs {
		rows++
		if ok, perr := pred.Eval(r); perr == nil && ok {
			matches = append(matches, r)
		}
	}
	return matches, rows, nil
}

// ScanISP pushes the predicate into the storage device: in-store
// engines stream the table's pages from flash, filter at line rate,
// and DMA only matching records to the host.
func ScanISP(c *core.Cluster, nodeID int, pages []core.PageAddr, pred Predicate) (*Result, error) {
	node := c.Node(nodeID)
	res := &Result{}
	const engines = 16
	const window = 8
	next := 0
	remaining := 0
	start := c.Eng.Now()

	for e := 0; e < engines; e++ {
		remaining++
		inflight := 0
		engineDone := false
		var pump func()
		maybeFinish := func() {
			if !engineDone && inflight == 0 && next >= len(pages) {
				engineDone = true
				remaining--
			}
		}
		pump = func() {
			for inflight < window && next < len(pages) {
				i := next
				next++
				inflight++
				node.ISPRead(pages[i], func(data []byte, err error) {
					if err == nil {
						if m, rows, derr := FilterPage(data, pred); derr == nil {
							res.Rows += rows
							res.Matches = append(res.Matches, m...)
							res.BytesToHost += int64(len(m)) * RecordSize
						}
					}
					inflight--
					pump()
					maybeFinish()
				})
			}
		}
		pump()
		maybeFinish()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("tablescan: %d ISP engines never finished", remaining)
	}
	// Matches DMA to the host as one stream (usually tiny).
	if res.BytesToHost > 0 {
		done := false
		node.Host.AcquireReadBuffer(int(res.BytesToHost), func(buf int) {
			node.Host.ReleaseReadBuffer(buf)
			done = true
		}, func(buf int) {
			node.Host.DeviceWriteChunk(buf, int(res.BytesToHost), true)
		})
		c.Run()
		if !done {
			return nil, fmt.Errorf("tablescan: match DMA never completed")
		}
	}
	res.Elapsed = c.Eng.Now() - start
	if res.Elapsed > 0 {
		res.RowsPerSec = float64(res.Rows) / res.Elapsed.Seconds()
	}
	res.CPUUtil = node.CPU.Utilization()
	return res, nil
}

// ScanHost is the conventional path: every table page crosses PCIe and
// the host filters in software with `threads` worker threads.
func ScanHost(c *core.Cluster, nodeID int, pages []core.PageAddr, pred Predicate, threads int) (*Result, error) {
	node := c.Node(nodeID)
	res := &Result{}
	if threads <= 0 {
		threads = 1
	}
	next := 0
	remaining := 0
	start := c.Eng.Now()
	rowsPerPage := RecordsPerPage(c.Params.PageSize())
	pageCost := sim.Time(rowsPerPage) * HostFilterCPUPerRow

	for w := 0; w < threads; w++ {
		th := node.CPU.NewThread()
		remaining++
		var step func()
		step = func() {
			if next >= len(pages) {
				remaining--
				return
			}
			i := next
			next++
			a := pages[i]
			node.ReadLocal(a.Card, a.Addr, func(data []byte, err error) {
				if err != nil {
					step()
					return
				}
				// Page DMA to host, then software filtering.
				node.Host.AcquireReadBuffer(len(data), func(buf int) {
					node.Host.ReleaseReadBuffer(buf)
					res.BytesToHost += int64(len(data))
					th.Do(pageCost, func() {
						if m, rows, derr := FilterPage(data, pred); derr == nil {
							res.Rows += rows
							res.Matches = append(res.Matches, m...)
						}
						step()
					})
				}, func(buf int) {
					node.Host.DeviceWriteChunk(buf, len(data), true)
				})
			})
		}
		step()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("tablescan: %d host threads never finished", remaining)
	}
	res.Elapsed = c.Eng.Now() - start
	if res.Elapsed > 0 {
		res.RowsPerSec = float64(res.Rows) / res.Elapsed.Seconds()
	}
	res.CPUUtil = node.CPU.Utilization()
	return res, nil
}

// BuildTable seeds `pages` pages of synthetic rows on a node and
// returns their addresses. Column values are deterministic: ColA is
// uniform in [0, 1e6), ColB in [0, 100).
func BuildTable(c *core.Cluster, nodeID, pages int, seed uint64) ([]core.PageAddr, error) {
	ps := c.Params.PageSize()
	perPage := RecordsPerPage(ps)
	rng := sim.NewRNG(seed)
	nextID := uint64(0)
	if err := c.SeedLinear(nodeID, pages, func(idx int, page []byte) {
		recs := make([]Record, perPage)
		for i := range recs {
			recs[i] = Record{
				ID:   nextID,
				ColA: int64(rng.Intn(1_000_000)),
				ColB: int64(rng.Intn(100)),
			}
			nextID++
		}
		enc, err := EncodeRecords(recs, ps)
		if err != nil {
			panic(err)
		}
		copy(page, enc)
	}); err != nil {
		return nil, err
	}
	addrs := make([]core.PageAddr, pages)
	for i := range addrs {
		addrs[i] = core.LinearPage(c.Params, nodeID, i)
	}
	return addrs, nil
}
