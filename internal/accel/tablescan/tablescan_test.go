package tablescan

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: 1, ColA: -5, ColB: 99},
		{ID: 2, ColA: 1 << 40, ColB: 0},
	}
	recs[0].Payload[0] = 0xaa
	recs[1].Payload[39] = 0xbb
	page, err := EncodeRecords(recs, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecords(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEncodeDecodeErrors(t *testing.T) {
	if _, err := EncodeRecords(make([]Record, 1000), 4096); err == nil {
		t.Fatal("oversized page accepted")
	}
	if _, err := DecodeRecords([]byte{1}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("short page: %v", err)
	}
	if _, err := DecodeRecords([]byte{255, 255, 255, 255}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("lying count: %v", err)
	}
}

func TestPredicateEval(t *testing.T) {
	r := Record{ColA: 10, ColB: -3}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{ColA, OpLT, 11}, true},
		{Predicate{ColA, OpLT, 10}, false},
		{Predicate{ColA, OpLE, 10}, true},
		{Predicate{ColA, OpEQ, 10}, true},
		{Predicate{ColA, OpGE, 10}, true},
		{Predicate{ColA, OpGT, 10}, false},
		{Predicate{ColB, OpEQ, -3}, true},
		{Predicate{ColB, OpGT, 0}, false},
	}
	for _, c := range cases {
		got, err := c.p.Eval(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%+v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := (Predicate{Col: 9}).Eval(r); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := (Predicate{Op: 9}).Eval(r); err == nil {
		t.Fatal("bad op accepted")
	}
}

// Property: encode/decode is identity for any record batch that fits.
func TestRecordsRoundTripProperty(t *testing.T) {
	prop := func(ids []uint64, a, b int64) bool {
		if len(ids) > 60 {
			ids = ids[:60]
		}
		recs := make([]Record, len(ids))
		for i, id := range ids {
			recs[i] = Record{ID: id, ColA: a + int64(i), ColB: b - int64(i)}
		}
		page, err := EncodeRecords(recs, 8192)
		if err != nil {
			return false
		}
		got, err := DecodeRecords(page)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func scanCluster(t *testing.T) *core.Cluster {
	t.Helper()
	p := core.DefaultParams(1)
	p.Geometry.BlocksPerChip = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestScanISPAndHostAgree(t *testing.T) {
	c := scanCluster(t)
	const pages = 96
	addrs, err := BuildTable(c, 0, pages, 17)
	if err != nil {
		t.Fatal(err)
	}
	pred := Predicate{Col: ColB, Op: OpLT, Value: 5} // ~5% selectivity

	isp, err := ScanISP(c, 0, addrs, pred)
	if err != nil {
		t.Fatal(err)
	}
	c2 := scanCluster(t)
	addrs2, err := BuildTable(c2, 0, pages, 17)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ScanHost(c2, 0, addrs2, pred, 8)
	if err != nil {
		t.Fatal(err)
	}

	if isp.Rows != host.Rows {
		t.Fatalf("rows scanned differ: %d vs %d", isp.Rows, host.Rows)
	}
	if len(isp.Matches) != len(host.Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(isp.Matches), len(host.Matches))
	}
	// Selectivity sanity: ~5% of rows.
	frac := float64(len(isp.Matches)) / float64(isp.Rows)
	if frac < 0.02 || frac > 0.09 {
		t.Fatalf("selectivity %.3f, want ~0.05", frac)
	}
	// Matches are genuinely filtered.
	for _, m := range isp.Matches {
		if m.ColB >= 5 {
			t.Fatalf("non-matching record returned: %+v", m)
		}
	}
}

func TestScanISPMovesLessData(t *testing.T) {
	c := scanCluster(t)
	const pages = 96
	addrs, err := BuildTable(c, 0, pages, 19)
	if err != nil {
		t.Fatal(err)
	}
	pred := Predicate{Col: ColB, Op: OpEQ, Value: 7} // ~1% selectivity
	isp, err := ScanISP(c, 0, addrs, pred)
	if err != nil {
		t.Fatal(err)
	}
	c2 := scanCluster(t)
	addrs2, _ := BuildTable(c2, 0, pages, 19)
	host, err := ScanHost(c2, 0, addrs2, pred, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The pushed-down scan ships only matches over PCIe.
	if isp.BytesToHost >= host.BytesToHost/20 {
		t.Fatalf("ISP moved %d bytes to host vs %d for the host scan; want ~50x less",
			isp.BytesToHost, host.BytesToHost)
	}
	// And scans faster than rows can cross PCIe.
	if isp.RowsPerSec <= host.RowsPerSec {
		t.Fatalf("ISP scan (%.0f rows/s) should beat host scan (%.0f rows/s)",
			isp.RowsPerSec, host.RowsPerSec)
	}
	if isp.CPUUtil > 0.02 {
		t.Fatalf("in-store scan used %.1f%% CPU", isp.CPUUtil*100)
	}
}

func TestBuildTableDeterministic(t *testing.T) {
	c := scanCluster(t)
	addrs, err := BuildTable(c, 0, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 4 {
		t.Fatalf("addrs = %d", len(addrs))
	}
	var first []Record
	c.Node(0).ReadLocal(addrs[0].Card, addrs[0].Addr, func(data []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		first, err = DecodeRecords(data)
		if err != nil {
			t.Fatal(err)
		}
	})
	c.Run()
	if len(first) != RecordsPerPage(c.Params.PageSize()) {
		t.Fatalf("page holds %d records, want %d", len(first), RecordsPerPage(c.Params.PageSize()))
	}
	// IDs are dense from zero.
	if first[0].ID != 0 || first[1].ID != 1 {
		t.Fatalf("ids not dense: %d %d", first[0].ID, first[1].ID)
	}
	_ = sim.Microsecond
}
