package lsh

import (
	"testing"
	"testing/quick"

	"repro/internal/altstore"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/sim"
)

func TestHammingDistance(t *testing.T) {
	cases := []struct {
		a, b []byte
		want int
	}{
		{[]byte{0x00}, []byte{0x00}, 0},
		{[]byte{0xff}, []byte{0x00}, 8},
		{[]byte{0b1010}, []byte{0b0101}, 4},
		{make([]byte, 16), make([]byte, 16), 0},
	}
	for _, c := range cases {
		if got := HammingDistance(c.a, c.b); got != c.want {
			t.Errorf("hamming(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	long := make([]byte, 100)
	long2 := make([]byte, 100)
	long2[99] = 0x80
	long2[0] = 0x01
	if got := HammingDistance(long, long2); got != 2 {
		t.Errorf("tail handling: got %d, want 2", got)
	}
}

// Property: hamming is a metric-ish: symmetric, zero iff equal, and
// equals popcount of xor.
func TestHammingProperty(t *testing.T) {
	prop := func(a, b [24]byte) bool {
		d1 := HammingDistance(a[:], b[:])
		d2 := HammingDistance(b[:], a[:])
		if d1 != d2 {
			return false
		}
		n := 0
		for i := range a {
			x := a[i] ^ b[i]
			for ; x != 0; x &= x - 1 {
				n++
			}
		}
		return d1 == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mkItems(n, size int, seed uint64) map[int][]byte {
	rng := sim.NewRNG(seed)
	items := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		b := make([]byte, size)
		rng.Bytes(b)
		items[i] = b
	}
	return items
}

func TestLSHFindsNearNeighbor(t *testing.T) {
	const itemBytes = 256
	items := mkItems(200, itemBytes, 1)
	ix, err := NewIndex(itemBytes, 8, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id, it := range items {
		if err := ix.Add(id, it); err != nil {
			t.Fatal(err)
		}
	}
	// Query = item 42 with a few flipped bits: LSH must shortlist 42.
	query := append([]byte(nil), items[42]...)
	for _, bit := range []int{3, 500, 1200} {
		query[bit/8] ^= 1 << (bit % 8)
	}
	cands, err := ix.Candidates(query)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range cands {
		if id == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("LSH bucket (size %d) missed the near neighbor", len(cands))
	}
	// Candidates should prune most of the dataset.
	if len(cands) > 150 {
		t.Fatalf("LSH pruned nothing: %d of 200 candidates", len(cands))
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex(0, 4, 8, 1); err == nil {
		t.Fatal("zero item size accepted")
	}
	ix, _ := NewIndex(16, 2, 8, 1)
	if err := ix.Add(0, make([]byte, 5)); err == nil {
		t.Fatal("wrong item size accepted")
	}
	if _, err := ix.Candidates(make([]byte, 16)); err != ErrNoItems {
		t.Fatalf("empty index query: %v", err)
	}
}

// --- backend runners -------------------------------------------------

func lshCluster(t *testing.T) *core.Cluster {
	t.Helper()
	p := core.DefaultParams(1)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// seedItems stores items as flash pages at linear indices.
func seedItems(t *testing.T, c *core.Cluster, items map[int][]byte) []core.PageAddr {
	t.Helper()
	n := len(items)
	if err := c.SeedLinear(0, n, func(idx int, page []byte) {
		copy(page, items[idx])
	}); err != nil {
		t.Fatal(err)
	}
	addrs := make([]core.PageAddr, n)
	for i := 0; i < n; i++ {
		addrs[i] = core.LinearPage(c.Params, 0, i)
	}
	return addrs
}

func idsUpTo(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestRunISPCorrectAndFast(t *testing.T) {
	c := lshCluster(t)
	ps := c.Params.PageSize()
	items := mkItems(400, ps, 3)
	addrs := seedItems(t, c, items)
	query := make([]byte, ps)
	sim.NewRNG(9).Bytes(query)

	res, err := RunISP(c, 0, addrs, idsUpTo(400), query, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantID, wantDist := NearestBrute(query, items)
	if res.BestID != wantID || res.BestDist != wantDist {
		t.Fatalf("ISP best (%d,%d) != brute force (%d,%d)", res.BestID, res.BestDist, wantID, wantDist)
	}
	// 2 cards x 1.07 GB/s logical -> ~260K cmp/s; paper reports 320K on
	// its hardware. Anything in the 200-300K band is the right shape.
	k := res.PerSec / 1000
	if k < 180 || k > 330 {
		t.Fatalf("ISP rate %.0fK cmp/s, want ~200-300K", k)
	}
}

func TestThrottledISPMatchesCap(t *testing.T) {
	c := lshCluster(t)
	ps := c.Params.PageSize()
	items := mkItems(300, ps, 4)
	addrs := seedItems(t, c, items)
	query := make([]byte, ps)
	throttle := sim.NewPipe(c.Eng, "throttle", 600_000_000, 0)

	res, err := RunISP(c, 0, addrs, idsUpTo(300), query, throttle)
	if err != nil {
		t.Fatal(err)
	}
	// 600 MB/s over 8 KB items = 73.2K cmp/s ceiling.
	k := res.PerSec / 1000
	if k < 55 || k > 74 {
		t.Fatalf("throttled ISP rate %.0fK cmp/s, want ~60-73K", k)
	}
}

func TestHostDRAMScalesWithThreads(t *testing.T) {
	ps := 8192
	items := mkItems(64, ps, 5)
	query := make([]byte, ps)
	rate := func(threads int) float64 {
		eng := sim.NewEngine()
		cpu, _ := hostmodel.New(eng, "h", hostmodel.DefaultConfig())
		cands := make([]int, 2000)
		for i := range cands {
			cands[i] = i % 64
		}
		res, err := RunHostDRAM(eng, cpu, items, cands, query, threads)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerSec
	}
	r4, r8, r16 := rate(4), rate(8), rate(16)
	if !(r4 < r8 && r8 < r16) {
		t.Fatalf("DRAM rate not scaling: %f %f %f", r4, r8, r16)
	}
	// 22us per compare per thread: 4 threads ~180K/s.
	if r4 < 140e3 || r4 > 200e3 {
		t.Fatalf("4-thread DRAM rate %.0f, want ~180K", r4)
	}
}

func TestISPBeatsHostOnSameDevice(t *testing.T) {
	// Figure 19: with the same throttled device, in-store processing
	// wins by >= 20%.
	mk := func() (*core.Cluster, []core.PageAddr, []byte, map[int][]byte) {
		c := lshCluster(t)
		ps := c.Params.PageSize()
		items := mkItems(300, ps, 6)
		addrs := seedItems(t, c, items)
		query := make([]byte, ps)
		return c, addrs, query, items
	}
	c1, addrs1, query, _ := mk()
	thr1 := sim.NewPipe(c1.Eng, "thr", 600_000_000, 0)
	isp, err := RunISP(c1, 0, addrs1, idsUpTo(300), query, thr1)
	if err != nil {
		t.Fatal(err)
	}
	c2, addrs2, query2, _ := mk()
	thr2 := sim.NewPipe(c2.Eng, "thr", 600_000_000, 0)
	sw, err := RunHostFlash(c2, 0, addrs2, idsUpTo(300), query2, 8, thr2)
	if err != nil {
		t.Fatal(err)
	}
	adv := isp.PerSec / sw.PerSec
	if adv < 1.15 || adv > 1.6 {
		t.Fatalf("ISP advantage %.2fx, want ~1.2x (ISP %.0f vs SW %.0f)", adv, isp.PerSec, sw.PerSec)
	}
}

func TestMixedDRAMCollapses(t *testing.T) {
	// Figure 17: 10% flash faults crater ram-cloud throughput; 5% disk
	// is worse still.
	ps := 8192
	items := mkItems(64, ps, 7)
	query := make([]byte, ps)
	cands := make([]int, 1500)
	for i := range cands {
		cands[i] = i % 64
	}
	run := func(pct int, disk bool) float64 {
		eng := sim.NewEngine()
		cpu, _ := hostmodel.New(eng, "h", hostmodel.DefaultConfig())
		var dev SecondaryDev
		if disk {
			dev, _ = altstore.NewHDD(eng, "hdd", altstore.DefaultHDD())
		} else {
			dev, _ = altstore.NewSSD(eng, "ssd", altstore.DefaultSSD())
		}
		res, err := RunMixedDRAM(eng, cpu, dev, items, cands, query, 8, pct, 11)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerSec
	}
	pure := run(0, false)
	flash10 := run(10, false)
	disk5 := run(5, true)
	if pure < 300e3 {
		t.Fatalf("pure DRAM at 8 threads %.0f, want > 300K", pure)
	}
	if flash10 > 100e3 {
		t.Fatalf("DRAM+10%%flash %.0f cmp/s, want < 100K (paper: <80K)", flash10)
	}
	if disk5 > 12e3 {
		t.Fatalf("DRAM+5%%disk %.0f cmp/s, want < 12K (paper: <10K)", disk5)
	}
	if !(disk5 < flash10 && flash10 < pure) {
		t.Fatalf("ordering broken: %f %f %f", pure, flash10, disk5)
	}
}

func TestSSDRandomVsSequential(t *testing.T) {
	// Figure 18: random off-the-shelf SSD is poor; sequentialized
	// accesses approach the throttled-BlueDBM level (~73K).
	ps := 8192
	items := mkItems(64, ps, 8)
	query := make([]byte, ps)
	cands := make([]int, 1200)
	for i := range cands {
		cands[i] = i % 64
	}
	run := func(seq bool) float64 {
		eng := sim.NewEngine()
		cpu, _ := hostmodel.New(eng, "h", hostmodel.DefaultConfig())
		ssd, _ := altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
		res, err := RunSSD(eng, cpu, ssd, items, cands, query, 8, seq)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerSec
	}
	rnd, seq := run(false), run(true)
	if rnd > 45e3 {
		t.Fatalf("random SSD %.0f cmp/s, should be well under throttled 73K", rnd)
	}
	if seq < 55e3 || seq > 76e3 {
		t.Fatalf("sequential SSD %.0f cmp/s, want ~60-73K (matching throttled)", seq)
	}
	if seq < 1.4*rnd {
		t.Fatalf("sequentializing should help dramatically: %f vs %f", seq, rnd)
	}
}
