package lsh

import (
	"fmt"

	"repro/internal/altstore"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/sim"
)

// Calibrated host-software costs (DESIGN.md §4).
const (
	// HammingCPUPerPage is one core's cost to Hamming-compare an 8 KB
	// item: with it, 4 host threads roughly match the 2.4 GB/s ISP
	// baseline, as in Figure 16.
	HammingCPUPerPage = 22 * sim.Microsecond
	// HostCmdOverheadBytes models the per-command software/DMA overhead
	// of the host I/O path, expressed as extra bytes through the
	// device: it yields the ~20% ISP advantage of Figure 19.
	HostCmdOverheadBytes = 1700
	// FaultPenalty is the kernel overhead of faulting flash/disk pages
	// into a DRAM-resident working set (mmap thrashing), per access —
	// the effect behind Figure 17's collapse.
	FaultPenalty = 700 * sim.Microsecond
	// ReadSyscallOverhead is the per-read software cost of the direct
	// I/O path used against off-the-shelf devices (Figure 18).
	ReadSyscallOverhead = 10 * sim.Microsecond
)

// Result is one backend run.
type Result struct {
	Comparisons int64
	Errors      int64
	Elapsed     sim.Time
	PerSec      float64
	BestID      int
	BestDist    int
}

func finishResult(r *Result, elapsed sim.Time) {
	r.Elapsed = elapsed
	if elapsed > 0 {
		r.PerSec = float64(r.Comparisons) / elapsed.Seconds()
	}
}

// RunISP streams candidate addresses to the node's in-store processor,
// which reads each item at flash bandwidth and Hamming-compares it
// against the query in-line (paper baseline; Figures 16 and 19). A
// non-nil throttle pipe caps device bandwidth (the "Baseline-T"
// configuration that matches the off-the-shelf SSD's 600 MB/s).
func RunISP(c *core.Cluster, nodeID int, candidates []core.PageAddr, ids []int,
	query []byte, throttle *sim.Pipe) (*Result, error) {

	if len(candidates) != len(ids) {
		return nil, fmt.Errorf("lsh: %d candidates but %d ids", len(candidates), len(ids))
	}
	node := c.Node(nodeID)
	res := &Result{BestID: -1, BestDist: int(^uint(0) >> 1)}
	if len(candidates) == 0 {
		return res, nil
	}
	// Engine sizing: enough request streams to saturate both cards.
	const engines = 16
	const window = 8
	start := c.Eng.Now()
	next := 0
	remaining := 0

	compare := func(i int, data []byte) {
		d := HammingDistance(query, data)
		if d < res.BestDist || (d == res.BestDist && ids[i] < res.BestID) {
			res.BestID, res.BestDist = ids[i], d
		}
		res.Comparisons++
	}

	for e := 0; e < engines; e++ {
		remaining++
		inflight := 0
		engineDone := false
		var pump func()
		maybeFinish := func() {
			if !engineDone && inflight == 0 && next >= len(candidates) {
				engineDone = true
				remaining--
			}
		}
		pump = func() {
			for inflight < window && next < len(candidates) {
				i := next
				next++
				inflight++
				node.ISPRead(candidates[i], func(data []byte, err error) {
					// finishOne runs when this candidate is fully
					// processed (including the throttle stage).
					finishOne := func() {
						inflight--
						pump()
						maybeFinish()
					}
					if err != nil {
						res.Errors++
						finishOne()
						return
					}
					if throttle != nil {
						throttle.Transfer(len(data), func() {
							compare(i, data)
							finishOne()
						})
						return
					}
					// The ISP compares at stream rate: no extra time.
					compare(i, data)
					finishOne()
				})
			}
		}
		pump()
		maybeFinish()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("lsh: %d ISP engines never finished", remaining)
	}
	finishResult(res, c.Eng.Now()-start)
	return res, nil
}

// RunHostDRAM is the ram-cloud configuration: the whole dataset in
// host DRAM, `threads` software threads scanning candidates
// (Figure 16's H-DRAM line).
func RunHostDRAM(eng *sim.Engine, cpu *hostmodel.CPU, items map[int][]byte,
	candidates []int, query []byte, threads int) (*Result, error) {

	res := &Result{BestID: -1, BestDist: int(^uint(0) >> 1)}
	if threads <= 0 {
		threads = 1
	}
	start := eng.Now()
	next := 0
	remaining := 0
	for w := 0; w < threads; w++ {
		th := cpu.NewThread()
		remaining++
		var step func()
		step = func() {
			if next >= len(candidates) {
				remaining--
				return
			}
			id := candidates[next]
			next++
			item := items[id]
			// Fetch from DRAM (shared bandwidth), then compare on core.
			cpu.ReadDRAM(len(item), func() {
				th.Do(HammingCPUPerPage, func() {
					d := HammingDistance(query, item)
					if d < res.BestDist || (d == res.BestDist && id < res.BestID) {
						res.BestID, res.BestDist = id, d
					}
					res.Comparisons++
					step()
				})
			})
		}
		step()
	}
	eng.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("lsh: %d DRAM threads never finished", remaining)
	}
	finishResult(res, eng.Now()-start)
	return res, nil
}

// RunHostFlash is the same-device-without-ISP configuration: host
// threads read candidate pages from the (optionally throttled) BlueDBM
// device over PCIe and compare in software (Figure 19's BlueDBM+SW).
func RunHostFlash(c *core.Cluster, nodeID int, candidates []core.PageAddr, ids []int,
	query []byte, threads int, throttle *sim.Pipe) (*Result, error) {

	node := c.Node(nodeID)
	res := &Result{BestID: -1, BestDist: int(^uint(0) >> 1)}
	if threads <= 0 {
		threads = 1
	}
	start := c.Eng.Now()
	next := 0
	remaining := 0
	for w := 0; w < threads; w++ {
		th := node.CPU.NewThread()
		remaining++
		var step func()
		step = func() {
			if next >= len(candidates) {
				remaining--
				return
			}
			i := next
			next++
			a := candidates[i]
			node.ReadLocal(a.Card, a.Addr, func(data []byte, err error) {
				if err != nil {
					step()
					return
				}
				deliver := func() {
					// PCIe DMA to the host, then software compare.
					node.Host.AcquireReadBuffer(len(data), func(buf int) {
						node.Host.ReleaseReadBuffer(buf)
						th.Do(HammingCPUPerPage, func() {
							d := HammingDistance(query, data)
							if d < res.BestDist || (d == res.BestDist && ids[i] < res.BestID) {
								res.BestID, res.BestDist = ids[i], d
							}
							res.Comparisons++
							step()
						})
					}, func(buf int) {
						node.Host.DeviceWriteChunk(buf, len(data), true)
					})
				}
				if throttle != nil {
					// Throttled device: pages cross the cap with the
					// host command overhead added.
					throttle.Transfer(len(data)+HostCmdOverheadBytes, deliver)
					return
				}
				deliver()
			})
		}
		step()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("lsh: %d host-flash threads never finished", remaining)
	}
	finishResult(res, c.Eng.Now()-start)
	return res, nil
}

// SecondaryDev abstracts the slow tier of a mixed DRAM working set.
type SecondaryDev interface {
	Read(size int, sequential bool, done func(error))
}

// RunMixedDRAM is Figure 17's ram-cloud-with-spill configuration: a
// fraction (pctSecondary %) of accesses miss DRAM and fault in from a
// secondary device (SSD or disk), paying the kernel fault penalty.
func RunMixedDRAM(eng *sim.Engine, cpu *hostmodel.CPU, dev SecondaryDev,
	items map[int][]byte, candidates []int, query []byte, threads, pctSecondary int,
	seed uint64) (*Result, error) {

	res := &Result{BestID: -1, BestDist: int(^uint(0) >> 1)}
	if threads <= 0 {
		threads = 1
	}
	rng := sim.NewRNG(seed)
	// Pre-draw which accesses miss, so thread interleaving cannot
	// change the workload.
	miss := make([]bool, len(candidates))
	for i := range miss {
		miss[i] = rng.Intn(100) < pctSecondary
	}
	start := eng.Now()
	next := 0
	remaining := 0
	var devErr error
	for w := 0; w < threads; w++ {
		th := cpu.NewThread()
		remaining++
		var step func()
		step = func() {
			if next >= len(candidates) {
				remaining--
				return
			}
			i := next
			next++
			id := candidates[i]
			item := items[id]
			compare := func() {
				th.Do(HammingCPUPerPage, func() {
					d := HammingDistance(query, item)
					if d < res.BestDist || (d == res.BestDist && id < res.BestID) {
						res.BestID, res.BestDist = id, d
					}
					res.Comparisons++
					step()
				})
			}
			if miss[i] {
				dev.Read(len(item), false, func(err error) {
					if err != nil {
						if devErr == nil {
							devErr = err
						}
						remaining--
						return
					}
					eng.After(FaultPenalty, compare)
				})
				return
			}
			cpu.ReadDRAM(len(item), compare)
		}
		step()
	}
	eng.Run()
	if devErr != nil {
		return nil, fmt.Errorf("lsh: secondary device: %w", devErr)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("lsh: %d mixed threads never finished", remaining)
	}
	finishResult(res, eng.Now()-start)
	return res, nil
}

// RunSSD is Figure 18's off-the-shelf configuration: host threads read
// every candidate from the M.2 SSD (randomly, or artificially
// sequentialized) and compare in software.
func RunSSD(eng *sim.Engine, cpu *hostmodel.CPU, ssd *altstore.SSD,
	items map[int][]byte, candidates []int, query []byte, threads int,
	sequential bool) (*Result, error) {

	res := &Result{BestID: -1, BestDist: int(^uint(0) >> 1)}
	if threads <= 0 {
		threads = 1
	}
	start := eng.Now()
	next := 0
	remaining := 0
	var devErr error
	for w := 0; w < threads; w++ {
		th := cpu.NewThread()
		remaining++
		var step func()
		step = func() {
			if next >= len(candidates) {
				remaining--
				return
			}
			id := candidates[next]
			next++
			item := items[id]
			ssd.Read(len(item), sequential, func(err error) {
				if err != nil {
					if devErr == nil {
						devErr = err
					}
					remaining--
					return
				}
				eng.After(ReadSyscallOverhead, func() {
					th.Do(HammingCPUPerPage, func() {
						d := HammingDistance(query, item)
						if d < res.BestDist || (d == res.BestDist && id < res.BestID) {
							res.BestID, res.BestDist = id, d
						}
						res.Comparisons++
						step()
					})
				})
			})
		}
		step()
	}
	eng.Run()
	if devErr != nil {
		return nil, fmt.Errorf("lsh: SSD: %w", devErr)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("lsh: %d SSD threads never finished", remaining)
	}
	finishResult(res, eng.Now()-start)
	return res, nil
}
