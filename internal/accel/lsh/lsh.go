// Package lsh implements BlueDBM's nearest-neighbor search accelerator
// (paper §7.1): Locality Sensitive Hashing over large binary items,
// with the Hamming-distance scan performed by an in-store processor
// next to the flash that holds the dataset.
//
// The LSH index itself (hash tables over sampled bit positions) is
// real and lives in host software; the accelerated portion — stream a
// hash bucket's item addresses to the device, compare every item
// against the query, return the best match — is what the evaluation's
// Figures 16-19 measure under different storage backends.
package lsh

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Index errors.
var (
	ErrItemSize = errors.New("lsh: items must all have the identical size")
	ErrNoItems  = errors.New("lsh: index is empty")
)

// HammingDistance counts differing bits between two equal-length byte
// slices — the distance function both the ISP engine and the software
// baselines compute (for real) on item pages.
func HammingDistance(a, b []byte) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("lsh: hamming over different lengths %d vs %d", len(a), len(b)))
	}
	d := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		x := le64(a[i:]) ^ le64(b[i:])
		d += bits.OnesCount64(x)
	}
	for ; i < len(a); i++ {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Index is a bit-sampling LSH index for Hamming space: table t hashes
// an item by concatenating `bitsPerHash` sampled bit positions.
// Similar items collide in at least one table with high probability.
type Index struct {
	itemBytes int
	tables    []table
	numItems  int
}

type table struct {
	positions []int            // sampled bit positions
	buckets   map[uint64][]int // hash -> item ids
}

// NewIndex creates an empty index for items of itemBytes bytes, with
// numTables hash tables of bitsPerHash sampled bits each.
func NewIndex(itemBytes, numTables, bitsPerHash int, seed uint64) (*Index, error) {
	if itemBytes <= 0 || numTables <= 0 || bitsPerHash <= 0 || bitsPerHash > 64 {
		return nil, fmt.Errorf("lsh: bad index shape (%d bytes, %d tables, %d bits)",
			itemBytes, numTables, bitsPerHash)
	}
	rng := sim.NewRNG(seed)
	ix := &Index{itemBytes: itemBytes}
	for t := 0; t < numTables; t++ {
		tb := table{buckets: make(map[uint64][]int)}
		for b := 0; b < bitsPerHash; b++ {
			tb.positions = append(tb.positions, rng.Intn(itemBytes*8))
		}
		ix.tables = append(ix.tables, tb)
	}
	return ix, nil
}

// hash computes table t's bucket for an item.
func (ix *Index) hash(t int, item []byte) uint64 {
	var h uint64
	for _, pos := range ix.tables[t].positions {
		h <<= 1
		if item[pos/8]>>(uint(pos)%8)&1 == 1 {
			h |= 1
		}
	}
	return h
}

// Add inserts an item under id. The caller keeps item storage (flash
// pages); the index stores only ids.
func (ix *Index) Add(id int, item []byte) error {
	if len(item) != ix.itemBytes {
		return fmt.Errorf("%w: got %d want %d", ErrItemSize, len(item), ix.itemBytes)
	}
	for t := range ix.tables {
		h := ix.hash(t, item)
		ix.tables[t].buckets[h] = append(ix.tables[t].buckets[h], id)
	}
	ix.numItems++
	return nil
}

// Items returns the number of indexed items.
func (ix *Index) Items() int { return ix.numItems }

// Candidates returns the ids sharing a bucket with the query in any
// table, deduplicated, in deterministic order. This is the address
// stream the host sends to the in-store processor.
func (ix *Index) Candidates(query []byte) ([]int, error) {
	if len(query) != ix.itemBytes {
		return nil, fmt.Errorf("%w: got %d want %d", ErrItemSize, len(query), ix.itemBytes)
	}
	if ix.numItems == 0 {
		return nil, ErrNoItems
	}
	seen := make(map[int]bool)
	var out []int
	for t := range ix.tables {
		for _, id := range ix.tables[t].buckets[ix.hash(t, query)] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out, nil
}

// NearestBrute scans items (id -> bytes) exhaustively; the reference
// the accelerated paths are validated against.
func NearestBrute(query []byte, items map[int][]byte) (bestID, bestDist int) {
	bestID, bestDist = -1, int(^uint(0)>>1)
	//simlint:allow maprange (lowest-distance-then-lowest-id selection reaches the same winner in any iteration order)
	for id, item := range items {
		if d := HammingDistance(query, item); d < bestDist || (d == bestDist && id < bestID) {
			bestID, bestDist = id, d
		}
	}
	return bestID, bestDist
}
