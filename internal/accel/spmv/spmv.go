// Package spmv implements the "Sparse-Matrix Based Linear Algebra
// Acceleration" the paper lists as planned work (§8). A large sparse
// matrix in CSR-like form is packed into flash pages, row-group by
// row-group; the in-store processor streams the pages and multiplies
// against a dense vector held in the device DRAM buffer, emitting only
// the dense result — so a matrix far larger than host DRAM is consumed
// at flash bandwidth with no host involvement.
//
// Values are int64 (fixed-point), which is what an FPGA datapath would
// use and keeps the simulation exact.
package spmv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/sim"
)

// SpMV errors.
var (
	ErrBadPage   = errors.New("spmv: malformed matrix page")
	ErrDimension = errors.New("spmv: dimension mismatch")
	ErrTooDense  = errors.New("spmv: row group exceeds one page")
)

// entry is one non-zero: (row, col, value).
type entry struct {
	row, col uint32
	val      int64
}

// entrySize is the packed size of one non-zero.
const entrySize = 4 + 4 + 8

// Matrix is a sparse matrix stored across flash pages.
type Matrix struct {
	Rows, Cols int
	pages      [][]entry // non-zeros per page, row-major order
}

// EncodePage packs a page's non-zeros: count then entries.
func EncodePage(entries []entry, pageSize int) ([]byte, error) {
	if 4+len(entries)*entrySize > pageSize {
		return nil, fmt.Errorf("%w: %d entries", ErrTooDense, len(entries))
	}
	page := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(page, uint32(len(entries)))
	off := 4
	for _, e := range entries {
		binary.LittleEndian.PutUint32(page[off:], e.row)
		binary.LittleEndian.PutUint32(page[off+4:], e.col)
		binary.LittleEndian.PutUint64(page[off+8:], uint64(e.val))
		off += entrySize
	}
	return page, nil
}

// DecodePage unpacks a matrix page.
func DecodePage(page []byte) ([]entry, error) {
	if len(page) < 4 {
		return nil, ErrBadPage
	}
	n := int(binary.LittleEndian.Uint32(page))
	if 4+n*entrySize > len(page) {
		return nil, fmt.Errorf("%w: count %d", ErrBadPage, n)
	}
	out := make([]entry, n)
	off := 4
	for i := range out {
		out[i].row = binary.LittleEndian.Uint32(page[off:])
		out[i].col = binary.LittleEndian.Uint32(page[off+4:])
		out[i].val = int64(binary.LittleEndian.Uint64(page[off+8:]))
		off += entrySize
	}
	return out, nil
}

// EntriesPerPage returns the page capacity in non-zeros.
func EntriesPerPage(pageSize int) int { return (pageSize - 4) / entrySize }

// BuildRandom generates a rows x cols matrix with ~nnzPerRow non-zeros
// per row and stores it on the node's flash.
func BuildRandom(c *core.Cluster, nodeID, rows, cols, nnzPerRow int, seed uint64) (*Matrix, []core.PageAddr, error) {
	if rows <= 0 || cols <= 0 || nnzPerRow <= 0 {
		return nil, nil, fmt.Errorf("spmv: bad shape %dx%d @%d", rows, cols, nnzPerRow)
	}
	rng := sim.NewRNG(seed)
	m := &Matrix{Rows: rows, Cols: cols}
	ps := c.Params.PageSize()
	capPer := EntriesPerPage(ps)

	var current []entry
	flush := func() {
		if len(current) > 0 {
			m.pages = append(m.pages, current)
			current = nil
		}
	}
	for r := 0; r < rows; r++ {
		n := 1 + rng.Intn(2*nnzPerRow-1)
		for k := 0; k < n; k++ {
			if len(current) == capPer {
				flush()
			}
			current = append(current, entry{
				row: uint32(r),
				col: uint32(rng.Intn(cols)),
				val: int64(rng.Intn(2001) - 1000),
			})
		}
	}
	flush()

	if len(m.pages) > core.PagesPerNode(c.Params) {
		return nil, nil, fmt.Errorf("spmv: matrix needs %d pages, node has %d",
			len(m.pages), core.PagesPerNode(c.Params))
	}
	if err := c.SeedLinear(nodeID, len(m.pages), func(idx int, page []byte) {
		enc, err := EncodePage(m.pages[idx], ps)
		if err != nil {
			panic(err)
		}
		copy(page, enc)
	}); err != nil {
		return nil, nil, err
	}
	addrs := make([]core.PageAddr, len(m.pages))
	for i := range addrs {
		addrs[i] = core.LinearPage(c.Params, nodeID, i)
	}
	return m, addrs, nil
}

// Pages returns the matrix's flash footprint in pages.
func (m *Matrix) Pages() int { return len(m.pages) }

// NNZ returns the number of stored non-zeros.
func (m *Matrix) NNZ() int {
	n := 0
	for _, p := range m.pages {
		n += len(p)
	}
	return n
}

// Reference computes y = A*x in memory (the oracle).
func (m *Matrix) Reference(x []int64) ([]int64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: x has %d, matrix has %d cols", ErrDimension, len(x), m.Cols)
	}
	y := make([]int64, m.Rows)
	for _, p := range m.pages {
		for _, e := range p {
			y[e.row] += e.val * x[e.col]
		}
	}
	return y, nil
}

// Result reports one multiply.
type Result struct {
	Y           []int64
	Elapsed     sim.Time
	NNZPerSec   float64
	BytesToHost int64
}

// MultiplyISP runs y = A*x with the in-store processor: the dense
// vector is DMAed into the device DRAM buffer once, matrix pages
// stream from flash through the multiply-accumulate engines, and only
// the dense result returns to the host.
func MultiplyISP(c *core.Cluster, nodeID int, m *Matrix, addrs []core.PageAddr, x []int64) (*Result, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: x has %d, matrix has %d cols", ErrDimension, len(x), m.Cols)
	}
	node := c.Node(nodeID)
	y := make([]int64, m.Rows)
	start := c.Eng.Now()

	// Ship x to the device DRAM buffer.
	shipped := false
	node.Host.ChargeSoftware(func() {
		node.Host.RPC(func() {
			node.Host.DeviceReadBuffer(8*len(x), func() { shipped = true })
		})
	})
	c.Run()
	if !shipped {
		return nil, fmt.Errorf("spmv: vector upload never completed")
	}

	const engines = 16
	const window = 8
	next := 0
	remaining := 0
	nnz := int64(0)
	for e := 0; e < engines; e++ {
		remaining++
		inflight := 0
		engineDone := false
		var pump func()
		maybeFinish := func() {
			if !engineDone && inflight == 0 && next >= len(addrs) {
				engineDone = true
				remaining--
			}
		}
		pump = func() {
			for inflight < window && next < len(addrs) {
				i := next
				next++
				inflight++
				node.ISPRead(addrs[i], func(data []byte, err error) {
					if err == nil {
						if entries, derr := DecodePage(data); derr == nil {
							// MAC units run at stream rate: no extra time.
							for _, en := range entries {
								y[en.row] += en.val * x[en.col]
								nnz++
							}
						}
					}
					inflight--
					pump()
					maybeFinish()
				})
			}
		}
		pump()
		maybeFinish()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("spmv: %d engines never finished", remaining)
	}

	// Dense result back to the host.
	resBytes := 8 * m.Rows
	returned := false
	node.Host.AcquireReadBuffer(resBytes, func(buf int) {
		node.Host.ReleaseReadBuffer(buf)
		returned = true
	}, func(buf int) {
		node.Host.DeviceWriteChunk(buf, resBytes, true)
	})
	c.Run()
	if !returned {
		return nil, fmt.Errorf("spmv: result DMA never completed")
	}

	res := &Result{Y: y, Elapsed: c.Eng.Now() - start, BytesToHost: int64(resBytes)}
	if res.Elapsed > 0 {
		res.NNZPerSec = float64(nnz) / res.Elapsed.Seconds()
	}
	return res, nil
}

// macCPUPerNNZ is the host cost per multiply-accumulate, including the
// irregular gather on x.
const macCPUPerNNZ = 8 * sim.Nanosecond

// MultiplyHost is the conventional path: pages cross PCIe, the host
// multiplies in software with `threads` workers.
func MultiplyHost(c *core.Cluster, nodeID int, m *Matrix, addrs []core.PageAddr, x []int64,
	cpu *hostmodel.CPU, threads int) (*Result, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: x has %d, matrix has %d cols", ErrDimension, len(x), m.Cols)
	}
	node := c.Node(nodeID)
	y := make([]int64, m.Rows)
	if threads <= 0 {
		threads = 1
	}
	start := c.Eng.Now()
	next := 0
	remaining := 0
	var nnz, toHost int64
	for w := 0; w < threads; w++ {
		th := cpu.NewThread()
		remaining++
		var step func()
		step = func() {
			if next >= len(addrs) {
				remaining--
				return
			}
			i := next
			next++
			a := addrs[i]
			node.ReadLocal(a.Card, a.Addr, func(data []byte, err error) {
				if err != nil {
					step()
					return
				}
				node.Host.AcquireReadBuffer(len(data), func(buf int) {
					node.Host.ReleaseReadBuffer(buf)
					toHost += int64(len(data))
					entries, derr := DecodePage(data)
					if derr != nil {
						step()
						return
					}
					th.Do(sim.Time(len(entries))*macCPUPerNNZ, func() {
						for _, en := range entries {
							y[en.row] += en.val * x[en.col]
							nnz++
						}
						step()
					})
				}, func(buf int) {
					node.Host.DeviceWriteChunk(buf, len(data), true)
				})
			})
		}
		step()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("spmv: %d host threads never finished", remaining)
	}
	res := &Result{Y: y, Elapsed: c.Eng.Now() - start, BytesToHost: toHost}
	if res.Elapsed > 0 {
		res.NNZPerSec = float64(nnz) / res.Elapsed.Seconds()
	}
	return res, nil
}
