package spmv

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/sim"
)

func spmvCluster(t *testing.T) *core.Cluster {
	t.Helper()
	p := core.DefaultParams(1)
	p.Geometry.BlocksPerChip = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func denseVector(n int, seed uint64) []int64 {
	rng := sim.NewRNG(seed)
	x := make([]int64, n)
	for i := range x {
		x[i] = int64(rng.Intn(201) - 100)
	}
	return x
}

func TestEncodeDecodePage(t *testing.T) {
	in := []entry{{row: 1, col: 2, val: -7}, {row: 3, col: 0, val: 1 << 40}}
	page, err := EncodePage(in, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePage(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := EncodePage(make([]entry, 10000), 4096); !errors.Is(err, ErrTooDense) {
		t.Fatalf("dense page: %v", err)
	}
	if _, err := DecodePage([]byte{1, 0}); !errors.Is(err, ErrBadPage) {
		t.Fatalf("short page: %v", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(rows, cols []uint32, vals []int64) bool {
		n := len(rows)
		if len(cols) < n {
			n = len(cols)
		}
		if len(vals) < n {
			n = len(vals)
		}
		if n > 200 {
			n = 200
		}
		in := make([]entry, n)
		for i := 0; i < n; i++ {
			in[i] = entry{row: rows[i], col: cols[i], val: vals[i]}
		}
		page, err := EncodePage(in, 8192)
		if err != nil {
			return false
		}
		got, err := DecodePage(page)
		if err != nil || len(got) != n {
			return false
		}
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestISPMatchesReference(t *testing.T) {
	c := spmvCluster(t)
	m, addrs, err := BuildRandom(c, 0, 300, 200, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := denseVector(200, 4)
	want, err := m.Reference(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiplyISP(c, 0, m, addrs, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Y[i] != want[i] {
			t.Fatalf("y[%d] = %d, want %d", i, res.Y[i], want[i])
		}
	}
	if res.NNZPerSec <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestHostMatchesISP(t *testing.T) {
	// Large enough that the multiply is bandwidth-dominated, not
	// setup-latency-dominated: ~120 flash pages of non-zeros.
	c := spmvCluster(t)
	m, addrs, err := BuildRandom(c, 0, 5000, 150, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := denseVector(150, 6)
	isp, err := MultiplyISP(c, 0, m, addrs, x)
	if err != nil {
		t.Fatal(err)
	}
	c2 := spmvCluster(t)
	m2, addrs2, err := BuildRandom(c2, 0, 5000, 150, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := hostmodel.New(c2.Eng, "h", hostmodel.DefaultConfig())
	host, err := MultiplyHost(c2, 0, m2, addrs2, x, cpu, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range isp.Y {
		if isp.Y[i] != host.Y[i] {
			t.Fatalf("y[%d] differs: %d vs %d", i, isp.Y[i], host.Y[i])
		}
	}
	// The in-store path moves only the dense result over PCIe.
	if isp.BytesToHost >= host.BytesToHost/10 {
		t.Fatalf("ISP moved %d bytes, host %d; want 10x+ reduction",
			isp.BytesToHost, host.BytesToHost)
	}
	if isp.NNZPerSec <= host.NNZPerSec {
		t.Fatalf("ISP %.0f nnz/s should beat host %.0f", isp.NNZPerSec, host.NNZPerSec)
	}
}

func TestDimensionChecks(t *testing.T) {
	c := spmvCluster(t)
	m, addrs, err := BuildRandom(c, 0, 50, 40, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reference(make([]int64, 3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("reference dim: %v", err)
	}
	if _, err := MultiplyISP(c, 0, m, addrs, make([]int64, 3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("ISP dim: %v", err)
	}
	if _, _, err := BuildRandom(c, 0, 0, 5, 1, 1); err == nil {
		t.Fatal("zero rows accepted")
	}
	if m.NNZ() == 0 || m.Pages() == 0 {
		t.Fatal("empty matrix built")
	}
}
