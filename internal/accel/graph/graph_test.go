package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func graphCluster(t *testing.T, nodes int) *core.Cluster {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEncodeDecodePage(t *testing.T) {
	nbs := []uint32{1, 5, 99, 1 << 30}
	page, err := EncodePage(nbs, 8192)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePage(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(nbs) {
		t.Fatalf("decoded %d neighbors, want %d", len(got), len(nbs))
	}
	for i := range nbs {
		if got[i] != nbs[i] {
			t.Fatalf("neighbor %d: %d != %d", i, got[i], nbs[i])
		}
	}
	if _, err := EncodePage(make([]uint32, 3000), 8192); !errors.Is(err, ErrTooManyEdges) {
		t.Fatalf("oversized list: %v", err)
	}
	if _, err := DecodePage([]byte{1}); !errors.Is(err, ErrBadPage) {
		t.Fatalf("short page: %v", err)
	}
	if _, err := DecodePage([]byte{255, 255, 0, 0, 1}); !errors.Is(err, ErrBadPage) {
		t.Fatalf("lying degree: %v", err)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) > 100 {
			raw = raw[:100]
		}
		page, err := EncodePage(raw, 4096)
		if err != nil {
			return false
		}
		got, err := DecodePage(page)
		if err != nil || len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAndWalkMatchesReference(t *testing.T) {
	c := graphCluster(t, 4)
	g, err := Build(c, Config{Vertices: 300, AvgDegree: 8, Seed: 5, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TraverseConfig{Start: 7, Steps: 50, Mode: ModeISPF, Seed: 13, Walkers: 1}
	res, err := Traverse(c, 0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 50 {
		t.Fatalf("steps = %d", res.Steps)
	}
	if want := ReferenceWalk(g, cfg); res.VisitSum != want {
		t.Fatalf("ISP walk checksum %x != reference %x", res.VisitSum, want)
	}
	// The same walk through the host path visits the same vertices.
	c2 := graphCluster(t, 4)
	g2, err := Build(c2, Config{Vertices: 300, AvgDegree: 8, Seed: 5, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Mode = ModeHF
	res2, err := Traverse(c2, 0, g2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.VisitSum != res.VisitSum {
		t.Fatal("H-F walk diverged from ISP-F walk")
	}
}

func TestFig20Ordering(t *testing.T) {
	// The paper's result: ISP-F ~3x H-RH-F; H-DRAM fastest; mixed
	// configurations in between, and ISP-F beats even DRAM+50%flash.
	rate := func(mode Mode, pct int) float64 {
		c := graphCluster(t, 4)
		g, err := Build(c, Config{Vertices: 200, AvgDegree: 6, Seed: 3, HomeNode: 0})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Traverse(c, 0, g, TraverseConfig{
			Start: 1, Steps: 150, Mode: mode, PctFlash: pct, Seed: 17, Walkers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LookupsPerSec
	}
	ispf := rate(ModeISPF, 0)
	hf := rate(ModeHF, 0)
	hrhf := rate(ModeHRHF, 0)
	f50 := rate(ModeMixed, 50)
	f30 := rate(ModeMixed, 30)
	hdram := rate(ModeHDRAM, 0)

	if !(ispf > hf && hf > hrhf) {
		t.Fatalf("ISP-F (%.0f) > H-F (%.0f) > H-RH-F (%.0f) violated", ispf, hf, hrhf)
	}
	if ratio := ispf / hrhf; ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("ISP-F/H-RH-F = %.2f, paper reports ~3x", ratio)
	}
	if !(f30 > f50 && f50 > hrhf) {
		t.Fatalf("mixed ordering broken: 30%%F %.0f, 50%%F %.0f, H-RH-F %.0f", f30, f50, hrhf)
	}
	if !(hdram > f30) {
		t.Fatalf("H-DRAM (%.0f) should top mixed 30%% (%.0f)", hdram, f30)
	}
	if ispf < f50 {
		t.Fatalf("ISP-F (%.0f) should beat DRAM+50%%flash (%.0f) — the paper's headline", ispf, f50)
	}
}

func TestParallelWalkers(t *testing.T) {
	c := graphCluster(t, 4)
	g, err := Build(c, Config{Vertices: 200, AvgDegree: 6, Seed: 21, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Traverse(c, 0, g, TraverseConfig{Start: 0, Steps: 60, Mode: ModeISPF, Seed: 2, Walkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Traverse(c, 0, g, TraverseConfig{Start: 0, Steps: 60, Mode: ModeISPF, Seed: 2, Walkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.Steps != 240 {
		t.Fatalf("4 walkers took %d steps, want 240", four.Steps)
	}
	// Independent chains overlap their latencies.
	if four.LookupsPerSec < 2*one.LookupsPerSec {
		t.Fatalf("4 walkers (%.0f/s) should roughly quadruple 1 walker (%.0f/s)",
			four.LookupsPerSec, one.LookupsPerSec)
	}
}

func TestBuildValidation(t *testing.T) {
	c := graphCluster(t, 2)
	if _, err := Build(c, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Build(c, Config{Vertices: 1 << 22, AvgDegree: 2, HomeNode: 0}); err == nil {
		t.Fatal("oversized graph accepted")
	}
}
