package graph

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Mode selects the traversal access path (Figure 20's bars).
type Mode int

// Traversal modes.
const (
	ModeISPF  Mode = iota // in-store processor reads remote flash directly
	ModeHF                // host reads remote flash over the integrated network
	ModeHRHF              // host reads remote flash via the remote host
	ModeHDRAM             // host reads remote DRAM via the remote host
	ModeMixed             // remote host serves from DRAM, PctFlash% miss to flash
)

func (m Mode) String() string {
	switch m {
	case ModeISPF:
		return "ISP-F"
	case ModeHF:
		return "H-F"
	case ModeHRHF:
		return "H-RH-F"
	case ModeHDRAM:
		return "H-DRAM"
	case ModeMixed:
		return "DRAM+flash"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// TraverseConfig parameterizes a run.
type TraverseConfig struct {
	Start    int
	Steps    int
	Mode     Mode
	PctFlash int // ModeMixed: percentage of lookups served from flash
	Seed     uint64
	Walkers  int // parallel dependent chains; 1 matches the paper
}

// Result reports a traversal.
type Result struct {
	Steps         int64
	Elapsed       sim.Time
	LookupsPerSec float64
	// VisitSum is a checksum over the visited vertex sequence so
	// different access paths can be verified to walk the same graph.
	VisitSum uint64
}

// Traverse performs dependent lookups from the home node.
func Traverse(c *core.Cluster, home int, g *Graph, cfg TraverseConfig) (*Result, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("graph: steps must be positive")
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = 1
	}
	node := c.Node(home)
	res := &Result{}
	start := c.Eng.Now()
	remaining := 0

	for w := 0; w < cfg.Walkers; w++ {
		remaining++
		rng := sim.NewRNG(cfg.Seed + uint64(w)*977)
		current := (cfg.Start + w*31) % g.Vertices()
		stepsLeft := cfg.Steps

		var step func()
		handle := func(data []byte, err error) {
			if err != nil {
				remaining--
				res.VisitSum = 0
				return
			}
			nbs, derr := DecodePage(data)
			if derr != nil {
				remaining--
				return
			}
			res.Steps++
			res.VisitSum = res.VisitSum*1099511628211 + uint64(current)
			if len(nbs) == 0 {
				current = rng.Intn(g.Vertices())
			} else {
				current = int(nbs[rng.Intn(len(nbs))])
			}
			stepsLeft--
			if stepsLeft == 0 {
				remaining--
				return
			}
			step()
		}
		step = func() {
			addr := g.PageOf(current)
			switch cfg.Mode {
			case ModeISPF:
				node.ISPRead(addr, handle)
			case ModeHF:
				node.HostRead(addr, core.PathHF, nil, handle)
			case ModeHRHF:
				node.HostRead(addr, core.PathHRHF, nil, handle)
			case ModeHDRAM:
				node.HostRead(addr, core.PathHD, nil, handle)
			case ModeMixed:
				if rng.Intn(100) < cfg.PctFlash {
					node.HostRead(addr, core.PathHRHF, nil, handle)
				} else {
					node.HostRead(addr, core.PathHD, nil, handle)
				}
			default:
				remaining--
				return
			}
		}
		step()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("graph: %d walkers never finished", remaining)
	}
	res.Elapsed = c.Eng.Now() - start
	if res.Elapsed > 0 {
		res.LookupsPerSec = float64(res.Steps) / res.Elapsed.Seconds()
	}
	return res, nil
}

// ReferenceWalk computes the same walk in memory (no simulation) for
// correctness checks. It mirrors Traverse with Walkers=1.
func ReferenceWalk(g *Graph, cfg TraverseConfig) uint64 {
	rng := sim.NewRNG(cfg.Seed)
	current := cfg.Start % g.Vertices()
	var sum uint64
	for s := 0; s < cfg.Steps; s++ {
		sum = sum*1099511628211 + uint64(current)
		nbs := g.RefNeighbors(current)
		if len(nbs) == 0 {
			current = rng.Intn(g.Vertices())
		} else {
			current = int(nbs[rng.Intn(len(nbs))])
		}
	}
	return sum
}
