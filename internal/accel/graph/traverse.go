package graph

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Mode selects the traversal access path (Figure 20's bars).
type Mode int

// Traversal modes.
const (
	ModeISPF  Mode = iota // in-store processor reads remote flash directly
	ModeHF                // host reads remote flash over the integrated network
	ModeHRHF              // host reads remote flash via the remote host
	ModeHDRAM             // host reads remote DRAM via the remote host
	ModeMixed             // remote host serves from DRAM, PctFlash% miss to flash
)

func (m Mode) String() string {
	switch m {
	case ModeISPF:
		return "ISP-F"
	case ModeHF:
		return "H-F"
	case ModeHRHF:
		return "H-RH-F"
	case ModeHDRAM:
		return "H-DRAM"
	case ModeMixed:
		return "DRAM+flash"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// TraverseConfig parameterizes a run.
type TraverseConfig struct {
	Start    int
	Steps    int
	Mode     Mode
	PctFlash int // ModeMixed: percentage of lookups served from flash
	Seed     uint64
	Walkers  int // parallel dependent chains; 1 matches the paper
}

// Walker-stream derivation constants: walker w's vertex-selection RNG
// is seeded Seed + w*walkerSeedStride, and its ModeMixed path-choice
// RNG Seed + w*walkerSeedStride + pathSeedOffset. Path choice MUST be
// an independent stream: drawing it from the walk RNG would make a
// Mixed walk visit a different vertex sequence than every other mode
// under the same seed, and the VisitSum cross-validation the checksum
// exists for could never pass.
const (
	walkerSeedStride = 977
	pathSeedOffset   = 7919
)

// WalkerSeed returns walker w's vertex-selection RNG seed; walker w
// also starts at WalkerStart. Exported so reference implementations
// (in-memory, in-store migrating) replay exactly the same walks.
func (cfg TraverseConfig) WalkerSeed(w int) uint64 {
	return cfg.Seed + uint64(w)*walkerSeedStride
}

// WalkerStart returns walker w's starting vertex in a graph of n
// vertices.
func (cfg TraverseConfig) WalkerStart(w, n int) int {
	return (cfg.Start + w*31) % n
}

// Result reports a traversal.
type Result struct {
	Steps         int64
	Elapsed       sim.Time
	LookupsPerSec float64
	// VisitSum is a checksum over the visited vertex sequences so
	// different access paths can be verified to walk the same graph:
	// walker 0's folded sum for a single walker, the XOR of the
	// per-walker sums otherwise (XOR is interleaving-independent, so
	// modes with different completion interleavings still compare).
	VisitSum uint64
	// VisitSums holds each walker's folded checksum, indexed by walker.
	VisitSums []uint64
}

// FoldVisit extends a walker's checksum with one visited vertex.
func FoldVisit(sum uint64, v int) uint64 {
	return sum*1099511628211 + uint64(v)
}

// AdvanceStep folds the visit of current into sum and draws the next
// vertex: a uniform restart on a dead end, a uniform neighbor pick
// otherwise. Every traversal implementation — the host-centric
// Traverse, the in-memory reference, ispvol's migrating in-store walk
// — advances through this one function: it consumes exactly one RNG
// draw per step, and the cross-arm VisitSum validation depends on all
// arms consuming the same stream identically.
func AdvanceStep(sum uint64, current int, nbs []uint32, vertices int, rng *sim.RNG) (uint64, int) {
	sum = FoldVisit(sum, current)
	if len(nbs) == 0 {
		return sum, rng.Intn(vertices)
	}
	return sum, int(nbs[rng.Intn(len(nbs))])
}

// CombineVisitSums derives the cross-mode VisitSum from per-walker sums.
func CombineVisitSums(sums []uint64) uint64 {
	if len(sums) == 1 {
		return sums[0]
	}
	var x uint64
	for _, s := range sums {
		x ^= s
	}
	return x
}

// Traverse performs dependent lookups from the home node and drains
// the cluster's event engine. A lookup that fails (read error or
// malformed adjacency page) fails the whole run: a truncated walk
// reported as success is how silent data loss looks in a benchmark.
func Traverse(c *core.Cluster, home int, g *Graph, cfg TraverseConfig) (*Result, error) {
	var res *Result
	var rerr error
	fired := false
	TraverseAsync(c, home, g, cfg, func(r *Result, err error) {
		res, rerr, fired = r, err, true
	})
	c.Run()
	if !fired {
		return nil, fmt.Errorf("graph: traversal never completed")
	}
	return res, rerr
}

// TraverseAsync starts the traversal and fires done in virtual time
// when every walker has finished (or the first failure is known); the
// caller drives the engine. It is the composable form used by
// experiments that co-run traversals with foreground load.
//
//simlint:once done
func TraverseAsync(c *core.Cluster, home int, g *Graph, cfg TraverseConfig, done func(*Result, error)) {
	if cfg.Steps <= 0 {
		done(nil, fmt.Errorf("graph: steps must be positive"))
		return
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = 1
	}
	node := c.Node(home)
	res := &Result{VisitSums: make([]uint64, cfg.Walkers)}
	start := c.Eng.Now()
	// All walkers are accounted for BEFORE any of them starts: a
	// walker that fails synchronously (bad mode, immediate send error)
	// must not zero the count while later walkers are still unspawned,
	// or done would fire more than once.
	remaining := cfg.Walkers
	var firstErr error
	finishWalker := func() {
		remaining--
		if remaining != 0 {
			return
		}
		if firstErr != nil {
			done(nil, firstErr)
			return
		}
		res.VisitSum = CombineVisitSums(res.VisitSums)
		res.Elapsed = c.Eng.Now() - start
		if res.Elapsed > 0 {
			res.LookupsPerSec = float64(res.Steps) / res.Elapsed.Seconds()
		}
		done(res, nil)
	}

	for w := 0; w < cfg.Walkers; w++ {
		w := w
		rng := sim.NewRNG(cfg.WalkerSeed(w))
		pathRNG := sim.NewRNG(cfg.WalkerSeed(w) + pathSeedOffset)
		current := cfg.WalkerStart(w, g.Vertices())
		stepsLeft := cfg.Steps

		var step func()
		fail := func(err error) {
			if firstErr == nil {
				firstErr = fmt.Errorf("graph: walker %d at vertex %d: %w", w, current, err)
			}
			finishWalker()
		}
		handle := func(data []byte, err error) {
			if err != nil {
				fail(err)
				return
			}
			nbs, derr := DecodePage(data)
			if derr != nil {
				fail(derr)
				return
			}
			res.Steps++
			res.VisitSums[w], current = AdvanceStep(res.VisitSums[w], current, nbs, g.Vertices(), rng)
			stepsLeft--
			if stepsLeft == 0 {
				finishWalker()
				return
			}
			step()
		}
		step = func() {
			addr := g.PageOf(current)
			switch cfg.Mode {
			case ModeISPF:
				node.ISPRead(addr, handle)
			case ModeHF:
				node.HostRead(addr, core.PathHF, nil, handle)
			case ModeHRHF:
				node.HostRead(addr, core.PathHRHF, nil, handle)
			case ModeHDRAM:
				node.HostRead(addr, core.PathHD, nil, handle)
			case ModeMixed:
				if pathRNG.Intn(100) < cfg.PctFlash {
					node.HostRead(addr, core.PathHRHF, nil, handle)
				} else {
					node.HostRead(addr, core.PathHD, nil, handle)
				}
			default:
				fail(fmt.Errorf("unknown mode %v", cfg.Mode))
				return
			}
		}
		step()
	}
}

// ReferenceWalk computes walker 0's walk in memory (no simulation)
// for correctness checks; it mirrors Traverse with Walkers=1.
func ReferenceWalk(g *Graph, cfg TraverseConfig) uint64 {
	return ReferenceWalkWalker(g, cfg, 0)
}

// ReferenceWalkWalker computes walker w's in-memory checksum: the
// oracle every access path — host-centric or migrating in-store — is
// validated against, one walker at a time.
func ReferenceWalkWalker(g *Graph, cfg TraverseConfig, w int) uint64 {
	rng := sim.NewRNG(cfg.WalkerSeed(w))
	current := cfg.WalkerStart(w, g.Vertices())
	var sum uint64
	for s := 0; s < cfg.Steps; s++ {
		sum, current = AdvanceStep(sum, current, g.RefNeighbors(current), g.Vertices(), rng)
	}
	return sum
}
