package graph

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestMixedVisitSumMatchesReference: ModeMixed must walk the same
// vertex sequence as every other mode under the same seed. Regression:
// path selection (flash-or-DRAM) used to draw from the SAME RNG as
// neighbor selection, so Mixed diverged and the VisitSum
// cross-validation the checksum exists for could never pass.
func TestMixedVisitSumMatchesReference(t *testing.T) {
	cfg := TraverseConfig{Start: 4, Steps: 80, Mode: ModeMixed, PctFlash: 50, Seed: 11, Walkers: 1}
	c := graphCluster(t, 4)
	g, err := Build(c, Config{Vertices: 250, AvgDegree: 7, Seed: 9, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Traverse(c, 0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceWalk(g, cfg); res.VisitSum != want {
		t.Fatalf("Mixed checksum %x != reference %x: path choice leaked into the walk RNG", res.VisitSum, want)
	}
	// And it matches an ISP-F walk of the same config directly.
	c2 := graphCluster(t, 4)
	g2, err := Build(c2, Config{Vertices: 250, AvgDegree: 7, Seed: 9, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Mode = ModeISPF
	res2, err := Traverse(c2, 0, g2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.VisitSum != res.VisitSum {
		t.Fatal("Mixed walk diverged from ISP-F walk")
	}
}

// TestPerWalkerChecksums: every walker's checksum must match its
// in-memory reference, and the aggregate is their XOR.
func TestPerWalkerChecksums(t *testing.T) {
	c := graphCluster(t, 4)
	g, err := Build(c, Config{Vertices: 200, AvgDegree: 6, Seed: 21, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TraverseConfig{Start: 0, Steps: 40, Mode: ModeISPF, Seed: 2, Walkers: 3}
	res, err := Traverse(c, 0, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VisitSums) != 3 {
		t.Fatalf("per-walker sums: %d, want 3", len(res.VisitSums))
	}
	var xor uint64
	for w, got := range res.VisitSums {
		want := ReferenceWalkWalker(g, cfg, w)
		if got != want {
			t.Fatalf("walker %d checksum %x != reference %x", w, got, want)
		}
		xor ^= got
	}
	if res.VisitSum != xor {
		t.Fatalf("aggregate VisitSum %x != xor %x", res.VisitSum, xor)
	}
}

// TestTraverseFailingReadPropagates: a walker whose page read fails
// must fail the run. Regression: the walker silently decremented the
// remaining count and the run reported success with a truncated Steps
// count.
func TestTraverseFailingReadPropagates(t *testing.T) {
	c := graphCluster(t, 2)
	const vertices = 40
	cfg := Config{Vertices: vertices, AvgDegree: 4, Seed: 3, HomeNode: 0}
	adj := GenAdjacency(cfg, c.Params.PageSize())
	// Point every vertex at an unwritten flash page: the very first
	// lookup fails at the device (nand refuses to read a free page).
	addrs := make([]core.PageAddr, vertices)
	for v := range addrs {
		addrs[v] = core.LinearPage(c.Params, 1, v)
	}
	g, err := NewStored(c, cfg, adj, addrs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Traverse(c, 0, g, TraverseConfig{Start: 1, Steps: 30, Mode: ModeISPF, Seed: 5, Walkers: 2})
	if err == nil {
		t.Fatalf("failing reads reported success: %+v", res)
	}
	if res != nil {
		t.Fatalf("failed run returned a result: %+v", res)
	}
	if !strings.Contains(err.Error(), "walker") {
		t.Fatalf("error lost walker context: %v", err)
	}
}

// TestTraverseDoneFiresOnce: a walker that fails synchronously at
// spawn time (unknown mode) must not fire the completion callback
// once per walker.
func TestTraverseDoneFiresOnce(t *testing.T) {
	c := graphCluster(t, 2)
	g, err := Build(c, Config{Vertices: 40, AvgDegree: 4, Seed: 3, HomeNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	TraverseAsync(c, 0, g, TraverseConfig{Start: 1, Steps: 10, Mode: Mode(99), Seed: 5, Walkers: 3},
		func(r *Result, err error) {
			fired++
			if err == nil {
				t.Fatal("unknown mode reported success")
			}
		})
	c.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times, want exactly once", fired)
	}
}

// TestStoredGraphWalksLikeBuilt: a NewStored graph over the same
// adjacency data walks to the same checksums as the oracle.
func TestStoredGraphWalksLikeBuilt(t *testing.T) {
	c := graphCluster(t, 2)
	const vertices = 60
	cfg := Config{Vertices: vertices, AvgDegree: 5, Seed: 8, HomeNode: 0}
	adj := GenAdjacency(cfg, c.Params.PageSize())
	ps := c.Params.PageSize()
	if err := c.SeedLinear(1, vertices, func(idx int, page []byte) {
		enc, err := EncodePage(adj[idx], ps)
		if err != nil {
			panic(err)
		}
		copy(page, enc)
	}); err != nil {
		t.Fatal(err)
	}
	addrs := make([]core.PageAddr, vertices)
	for v := range addrs {
		addrs[v] = core.LinearPage(c.Params, 1, v)
	}
	g, err := NewStored(c, cfg, adj, addrs)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := TraverseConfig{Start: 2, Steps: 50, Mode: ModeISPF, Seed: 6, Walkers: 1}
	res, err := Traverse(c, 0, g, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceWalk(g, tcfg); res.VisitSum != want {
		t.Fatalf("stored-graph walk %x != reference %x", res.VisitSum, want)
	}
	if g.OwnerOf(3) != 1 {
		t.Fatalf("OwnerOf(3) = %d, want 1", g.OwnerOf(3))
	}
}
