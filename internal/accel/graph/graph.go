// Package graph implements BlueDBM's distributed graph traversal
// workload (paper §7.2): adjacency lists stored as flash pages spread
// across the cluster, traversed by dependent lookups — each step's
// target is known only after the previous page has been read and
// parsed, making the workload latency-bound and extremely sensitive to
// the access path (Figure 20).
package graph

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Graph errors.
var (
	ErrTooManyEdges = errors.New("graph: adjacency list exceeds one page")
	ErrBadPage      = errors.New("graph: malformed adjacency page")
)

// Config describes a synthetic graph.
type Config struct {
	Vertices  int
	AvgDegree int
	Seed      uint64
	// HomeNode is excluded from vertex placement so that every lookup
	// from it is remote, matching the paper's remote-access experiment.
	HomeNode int
}

// Graph is a cluster-resident graph.
type Graph struct {
	cfg     Config
	cluster *core.Cluster
	adj     [][]uint32 // in-memory reference copy (for oracles/tests)
	placeOn []int      // storage nodes hosting vertices (striped layout)
	// addrs, when non-nil, pins vertex v's adjacency page to addrs[v]
	// explicitly instead of the striped SeedLinear layout — the form
	// used when the graph lives in a logical volume or file system and
	// page placement is whatever the FTLs chose.
	addrs []core.PageAddr
}

// EncodePage serializes an adjacency list into one flash page.
func EncodePage(neighbors []uint32, pageSize int) ([]byte, error) {
	if 4+4*len(neighbors) > pageSize {
		return nil, fmt.Errorf("%w: %d edges", ErrTooManyEdges, len(neighbors))
	}
	page := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(page, uint32(len(neighbors)))
	for i, nb := range neighbors {
		binary.LittleEndian.PutUint32(page[4+4*i:], nb)
	}
	return page, nil
}

// DecodePage parses an adjacency page.
func DecodePage(page []byte) ([]uint32, error) {
	if len(page) < 4 {
		return nil, ErrBadPage
	}
	deg := binary.LittleEndian.Uint32(page)
	if 4+4*int(deg) > len(page) {
		return nil, fmt.Errorf("%w: degree %d", ErrBadPage, deg)
	}
	out := make([]uint32, deg)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(page[4+4*i:])
	}
	return out, nil
}

// Build generates a random graph and stores its adjacency pages across
// the cluster's flash (one vertex per page, striped over all nodes
// except HomeNode).
func Build(c *core.Cluster, cfg Config) (*Graph, error) {
	if cfg.Vertices <= 0 || cfg.AvgDegree <= 0 {
		return nil, fmt.Errorf("graph: bad config %+v", cfg)
	}
	var hosts []int
	for n := 0; n < c.Nodes(); n++ {
		if n != cfg.HomeNode || c.Nodes() == 1 {
			hosts = append(hosts, n)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("graph: no storage nodes available")
	}
	perHost := (cfg.Vertices + len(hosts) - 1) / len(hosts)
	if perHost > core.PagesPerNode(c.Params) {
		return nil, fmt.Errorf("graph: %d vertices per node exceeds capacity %d",
			perHost, core.PagesPerNode(c.Params))
	}

	g := &Graph{cfg: cfg, cluster: c, placeOn: hosts}
	g.adj = GenAdjacency(cfg, c.Params.PageSize())

	// Store: vertex v -> host hosts[v % H], dense index v / H.
	ps := c.Params.PageSize()
	for h, host := range hosts {
		count := 0
		for v := h; v < cfg.Vertices; v += len(hosts) {
			count++
			_ = v
		}
		if count == 0 {
			continue
		}
		hostIdx := host
		if err := c.SeedLinear(host, count, func(idx int, page []byte) {
			v := h + idx*len(hosts)
			enc, err := EncodePage(g.adj[v], ps)
			if err != nil {
				panic(err)
			}
			copy(page, enc)
		}); err != nil {
			return nil, fmt.Errorf("graph: seeding node %d: %w", hostIdx, err)
		}
	}
	return g, nil
}

// GenAdjacency generates the synthetic adjacency lists for cfg,
// deterministically in cfg.Seed, capped so every list encodes into
// one page of pageSize bytes. It is the data half of Build, exported
// so graphs stored through other layers (a logical volume, a file
// system) hold exactly the same topology as a raw-flash Build with
// the same config.
func GenAdjacency(cfg Config, pageSize int) [][]uint32 {
	rng := sim.NewRNG(cfg.Seed)
	adj := make([][]uint32, cfg.Vertices)
	for v := range adj {
		deg := 1 + rng.Intn(2*cfg.AvgDegree-1)
		maxDeg := pageSize/4 - 1
		if deg > maxDeg {
			deg = maxDeg
		}
		nbs := make([]uint32, deg)
		for i := range nbs {
			nbs[i] = uint32(rng.Intn(cfg.Vertices))
		}
		adj[v] = nbs
	}
	return adj
}

// NewStored wraps a graph whose adjacency pages are ALREADY stored in
// the cluster, one vertex per page, with vertex v's page at addrs[v] —
// the form used when the graph lives in a logical volume (addresses
// from volume.PhysMap) or a cluster file (rfs.File.PhysicalAddrs).
// The addresses are snapshots: the backing store must stay read-only
// for the graph's lifetime, exactly like the ispvol queries' address
// lists. adj is the in-memory oracle matching the stored pages
// (usually GenAdjacency with the same config the pages were encoded
// from).
func NewStored(c *core.Cluster, cfg Config, adj [][]uint32, addrs []core.PageAddr) (*Graph, error) {
	if cfg.Vertices <= 0 || len(adj) != cfg.Vertices || len(addrs) != cfg.Vertices {
		return nil, fmt.Errorf("graph: stored graph shape mismatch: %d vertices, %d lists, %d addrs",
			cfg.Vertices, len(adj), len(addrs))
	}
	return &Graph{cfg: cfg, cluster: c, adj: adj, addrs: addrs}, nil
}

// PageOf returns the flash location of vertex v's adjacency page.
func (g *Graph) PageOf(v int) core.PageAddr {
	if g.addrs != nil {
		return g.addrs[v]
	}
	h := v % len(g.placeOn)
	return core.LinearPage(g.cluster.Params, g.placeOn[h], v/len(g.placeOn))
}

// OwnerOf returns the node holding vertex v's adjacency page — the
// node a migrating walker must run its next lookup on.
func (g *Graph) OwnerOf(v int) int { return g.PageOf(v).Node }

// Vertices returns the vertex count.
func (g *Graph) Vertices() int { return g.cfg.Vertices }

// RefNeighbors returns the in-memory adjacency list (oracle for tests).
func (g *Graph) RefNeighbors(v int) []uint32 { return g.adj[v] }
