package search

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/altstore"
	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/rfs"
	"repro/internal/sim"
)

func TestCompileFailureFunction(t *testing.T) {
	p, err := Compile([]byte("ababaca"))
	if err != nil {
		t.Fatal(err)
	}
	// Known MP failure function for "ababaca" (border lengths).
	want := []int{-1, 0, 0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if p.fail[i] != w {
			t.Fatalf("fail[%d] = %d, want %d (full: %v)", i, p.fail[i], w, p.fail)
		}
	}
	if _, err := Compile(nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestFindAllBasic(t *testing.T) {
	p, _ := Compile([]byte("abc"))
	got := p.FindAll([]byte("abcxabcabc"))
	want := []int64{0, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("matches %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("matches %v, want %v", got, want)
		}
	}
}

func TestOverlappingMatches(t *testing.T) {
	p, _ := Compile([]byte("aaa"))
	got := p.FindAll([]byte("aaaaa"))
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("overlapping matches %v, want [0 1 2]", got)
	}
}

func TestStreamingAcrossChunks(t *testing.T) {
	p, _ := Compile([]byte("needle"))
	hay := []byte("xxxneedlexxxneeneedlexx")
	want := p.FindAll(hay)
	// Feed in every possible split.
	for cut := 1; cut < len(hay); cut++ {
		sc := p.NewScanner()
		var got []int64
		sc.Feed(hay[:cut], func(pos int64) { got = append(got, pos) })
		sc.Feed(hay[cut:], func(pos int64) { got = append(got, pos) })
		if len(got) != len(want) {
			t.Fatalf("cut %d: %v, want %v", cut, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: %v, want %v", cut, got, want)
			}
		}
	}
}

// Property: streaming in random chunkings equals the bytes.Index oracle.
func TestScannerOracleProperty(t *testing.T) {
	prop := func(hay []byte, needleSeed uint8, splitSeed uint64) bool {
		// Small alphabet so matches actually happen.
		for i := range hay {
			hay[i] = 'a' + hay[i]%3
		}
		needle := []byte(strings.Repeat(string('a'+needleSeed%3), int(needleSeed%3)+1))
		p, err := Compile(needle)
		if err != nil {
			return false
		}
		// Oracle: scan with bytes.Index.
		var want []int64
		for i := 0; i+len(needle) <= len(hay); i++ {
			if bytes.Equal(hay[i:i+len(needle)], needle) {
				want = append(want, int64(i))
			}
		}
		// Random chunking.
		rng := sim.NewRNG(splitSeed)
		sc := p.NewScanner()
		var got []int64
		rest := hay
		for len(rest) > 0 {
			n := rng.Intn(len(rest)) + 1
			sc.Feed(rest[:n], func(pos int64) { got = append(got, pos) })
			rest = rest[n:]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// haystackGen builds deterministic text pages with needles planted at
// known positions.
func haystackGen(needle string, everyPages int, pageSize int) func(idx int, page []byte) {
	return func(idx int, page []byte) {
		for i := range page {
			page[i] = "abcdefgh"[(idx*31+i)%8]
		}
		if everyPages > 0 && idx%everyPages == 0 {
			// Plant one needle in the middle of the page (and one
			// spanning into the next page every 2*everyPages).
			copy(page[len(page)/2:], needle)
			if idx%(2*everyPages) == 0 && len(needle) > 1 {
				copy(page[len(page)-len(needle)/2:], needle[:len(needle)/2])
			}
		}
	}
}

func searchCluster(t *testing.T) (*core.Cluster, *rfs.FS) {
	t.Helper()
	p := core.DefaultParams(1)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := rfs.New(c.Node(0).NewIface(0, "fs"), c.Params.Geometry, rfs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c, fs
}

func TestSearchISPFindsPlantedNeedles(t *testing.T) {
	c, fs := searchCluster(t)
	needle := "BLUEDBM"
	const pages = 64
	gen := haystackGen(needle, 4, c.Params.PageSize())

	f, err := fs.Create("haystack")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, c.Params.PageSize())
	for i := 0; i < pages; i++ {
		for j := range buf {
			buf[j] = 0
		}
		gen(i, buf)
		var werr error
		f.AppendPage(buf, func(err error) { werr = err })
		c.Run()
		if werr != nil {
			t.Fatalf("page %d: %v", i, werr)
		}
	}

	res, err := SearchISP(c, 0, 0, f, []byte(needle))
	if err != nil {
		t.Fatal(err)
	}

	// Reference: scan the generated haystack in memory.
	hay := make([]byte, pages*c.Params.PageSize())
	for i := 0; i < pages; i++ {
		gen(i, hay[i*c.Params.PageSize():(i+1)*c.Params.PageSize()])
	}
	pat, _ := Compile([]byte(needle))
	want := pat.FindAll(hay)

	if len(res.Matches) != len(want) {
		t.Fatalf("ISP found %d matches, reference %d", len(res.Matches), len(want))
	}
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Fatalf("match %d: %d vs reference %d", i, res.Matches[i], want[i])
		}
	}
	if len(want) == 0 {
		t.Fatal("test is vacuous: no needles planted")
	}
}

func TestSearchISPThroughputNearFlashBandwidth(t *testing.T) {
	c, fs := searchCluster(t)
	// Large enough that the scan is steady-state, not ramp-dominated.
	const pages = 1024
	f, _ := fs.Create("big")
	buf := make([]byte, c.Params.PageSize())
	for i := 0; i < pages; i++ {
		var werr error
		f.AppendPage(buf, func(err error) { werr = err })
		c.Run()
		if werr != nil {
			t.Fatal(werr)
		}
	}
	res, err := SearchISP(c, 0, 0, f, []byte("zzz"))
	if err != nil {
		t.Fatal(err)
	}
	// One card: 8 buses x 150 MB/s raw = 1.2 GB/s; minus ECC overhead
	// the logical ceiling is ~1.07 GB/s. Paper reports 1.1 GB/s (92%).
	gb := res.Throughput / 1e9
	if gb < 0.85 || gb > 1.1 {
		t.Fatalf("ISP search throughput %.2f GB/s, want ~0.9-1.07", gb)
	}
	if res.CPUUtil > 0.01 {
		t.Fatalf("ISP search used %.1f%% host CPU, want ~0", res.CPUUtil*100)
	}
}

func TestSearchSoftwareMatchesReference(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := hostmodel.New(eng, "h", hostmodel.DefaultConfig())
	ssd, _ := altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
	needle := "BLUEDBM"
	const pages, pageSize = 48, 8192
	gen := haystackGen(needle, 4, pageSize)

	res, err := SearchSoftware(eng, cpu, ssd, pages, pageSize, gen, []byte(needle), 8)
	if err != nil {
		t.Fatal(err)
	}
	hay := make([]byte, pages*pageSize)
	for i := 0; i < pages; i++ {
		gen(i, hay[i*pageSize:(i+1)*pageSize])
	}
	pat, _ := Compile([]byte(needle))
	want := pat.FindAll(hay)
	if len(res.Matches) != len(want) {
		t.Fatalf("software found %d matches, reference %d", len(res.Matches), len(want))
	}
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Fatalf("match %d differs", i)
		}
	}
}

func TestSearchSoftwareSSDBoundAndCPUHungry(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := hostmodel.New(eng, "h", hostmodel.DefaultConfig())
	ssd, _ := altstore.NewSSD(eng, "m2", altstore.DefaultSSD())
	res, err := SearchSoftware(eng, cpu, ssd, 512, 8192, nil, []byte("xyz"), 16)
	if err != nil {
		t.Fatal(err)
	}
	mb := res.Throughput / 1e6
	if mb < 350 || mb > 620 {
		t.Fatalf("software-on-SSD %.0f MB/s, want IO-bound near 500-600", mb)
	}
	if res.CPUUtil < 0.4 || res.CPUUtil > 0.8 {
		t.Fatalf("software-on-SSD CPU %.0f%%, want ~65%%", res.CPUUtil*100)
	}
}

func TestSearchSoftwareHDDSlow(t *testing.T) {
	eng := sim.NewEngine()
	cpu, _ := hostmodel.New(eng, "h", hostmodel.DefaultConfig())
	hdd, _ := altstore.NewHDD(eng, "disk", altstore.DefaultHDD())
	res, err := SearchSoftware(eng, cpu, hdd, 512, 8192, nil, []byte("xyz"), 16)
	if err != nil {
		t.Fatal(err)
	}
	mb := res.Throughput / 1e6
	if mb > 150 {
		t.Fatalf("software-on-HDD %.0f MB/s, want disk-bound (<=147)", mb)
	}
	if res.CPUUtil > 0.25 {
		t.Fatalf("software-on-HDD CPU %.0f%%, want low (~13%%)", res.CPUUtil*100)
	}
}

// TestEdgeBytesAndJunctions: the distributed-scan residue helpers
// find exactly the boundary-straddling matches, and nothing else.
func TestEdgeBytesAndJunctions(t *testing.T) {
	pat, err := Compile([]byte("abcde"))
	if err != nil {
		t.Fatal(err)
	}
	if pat.EdgeLen() != 4 {
		t.Fatalf("edge len %d, want 4", pat.EdgeLen())
	}
	left := []byte("xxxxxxabc")  // needle starts 3 bytes before the boundary
	right := []byte("dexxxxxxx") // and ends 2 bytes after it
	_, tail := pat.EdgeBytes(left)
	head, _ := pat.EdgeBytes(right)
	const boundary = int64(9)
	got := pat.JunctionMatches(tail, head, boundary)
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("junction matches = %v, want [6]", got)
	}
	// A match fully inside the left page must NOT be reported by the
	// junction pass (the page's engine already found it).
	leftFull := []byte("xabcdexxx")
	_, tail2 := pat.EdgeBytes(leftFull)
	if got := pat.JunctionMatches(tail2, head, boundary); len(got) != 0 {
		t.Fatalf("junction reported in-page match: %v", got)
	}
	// A match starting exactly at the boundary belongs to the right
	// page's engine.
	rightFull := []byte("abcdexxxx")
	head3, _ := pat.EdgeBytes(rightFull)
	empty := []byte("xxxxxxxxx")
	_, tail3 := pat.EdgeBytes(empty)
	if got := pat.JunctionMatches(tail3, head3, boundary); len(got) != 0 {
		t.Fatalf("junction reported right-page match: %v", got)
	}
}

// TestJunctionSingleByteNeedle: a 1-byte needle cannot straddle.
func TestJunctionSingleByteNeedle(t *testing.T) {
	pat, err := Compile([]byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	if pat.EdgeLen() != 0 {
		t.Fatalf("edge len %d, want 0", pat.EdgeLen())
	}
	h, tl := pat.EdgeBytes([]byte("qqq"))
	if h != nil || tl != nil {
		t.Fatal("1-byte needle produced residues")
	}
	if got := pat.JunctionMatches([]byte("q"), []byte("q"), 10); got != nil {
		t.Fatalf("1-byte junction matches = %v", got)
	}
}
