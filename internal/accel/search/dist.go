package search

// Distributed-scan support: the striped logical volume puts adjacent
// logical pages on different cards — usually different NODES — so the
// per-node engines of a distributed search each see a non-contiguous
// subset of the haystack. Every engine scans its pages independently
// (scanner state reset per page, which finds exactly the matches fully
// inside a page), and ships the page-boundary residues — the first and
// last len(needle)-1 bytes of each page — to the origin alongside its
// match offsets. The origin then stitches each page junction from the
// two residues and scans it for the straddling matches no single
// engine could see. Residues are tiny (2·(m-1) bytes per page), so
// this preserves the ISP property that only match positions plus a
// trickle of metadata ever leave the storage device.

// EdgeLen returns the page-boundary residue length for this pattern:
// the longest prefix/suffix of a page a straddling match can overlap.
func (p *Pattern) EdgeLen() int { return len(p.needle) - 1 }

// EdgeBytes extracts one page's boundary residues: its first and last
// EdgeLen bytes (the whole page when shorter). The returned slices
// alias page; callers that retain them across page-buffer reuse must
// copy.
func (p *Pattern) EdgeBytes(page []byte) (head, tail []byte) {
	n := p.EdgeLen()
	if n <= 0 {
		return nil, nil
	}
	if n > len(page) {
		n = len(page)
	}
	return page[:n], page[len(page)-n:]
}

// JunctionMatches scans the boundary between two adjacent pages given
// the left page's tail residue and the right page's head residue, and
// returns the absolute start offsets of matches that STRADDLE the
// boundary (at absolute offset `boundary`). Matches fully inside
// either page are found by that page's engine and excluded here, so
// the union of per-page and junction matches is exact and
// duplicate-free.
func (p *Pattern) JunctionMatches(tail, head []byte, boundary int64) []int64 {
	n := p.EdgeLen()
	if n <= 0 {
		return nil // a 1-byte needle cannot straddle a boundary
	}
	start := boundary - int64(len(tail))
	sc := p.NewScanner()
	sc.Reset(start)
	var out []int64
	emit := func(pos int64) {
		// Straddlers start before the boundary and end after it. A
		// match ending exactly at the boundary lives in the left page;
		// one starting at it lives in the right page.
		if pos < boundary && pos+int64(len(p.needle)) > boundary {
			out = append(out, pos)
		}
	}
	sc.Feed(tail, emit)
	sc.Feed(head, emit)
	return out
}
