// Package search implements BlueDBM's string search accelerator (paper
// §7.3): Morris-Pratt pattern-matching engines integrated with the
// file system, the flash controller and application software. The host
// transfers the pattern and precomputed MP constants, streams physical
// addresses from the file system, and receives only match locations —
// the scan itself runs next to the flash at full device bandwidth with
// near-zero host CPU.
package search

import (
	"errors"
	"fmt"
)

// ErrEmptyPattern rejects empty needles.
var ErrEmptyPattern = errors.New("search: empty pattern")

// Pattern holds a compiled needle: the pattern bytes plus the
// Morris-Pratt failure function (the "precomputed MP constants" the
// host DMAs to the accelerator).
type Pattern struct {
	needle []byte
	fail   []int
}

// Compile precomputes the MP failure function.
func Compile(needle []byte) (*Pattern, error) {
	if len(needle) == 0 {
		return nil, ErrEmptyPattern
	}
	p := &Pattern{
		needle: append([]byte(nil), needle...),
		fail:   make([]int, len(needle)+1),
	}
	// fail[i] = length of the longest proper border of needle[:i].
	p.fail[0] = -1
	k := -1
	for i := 0; i < len(needle); i++ {
		for k >= 0 && needle[k] != needle[i] {
			k = p.fail[k]
		}
		k++
		p.fail[i+1] = k
	}
	return p, nil
}

// Len returns the needle length.
func (p *Pattern) Len() int { return len(p.needle) }

func (p *Pattern) String() string { return fmt.Sprintf("mp(%q)", p.needle) }

// Scanner is one streaming MP engine: bytes are fed in arbitrary
// chunks (flash pages) and match end-positions are emitted. State
// carries across chunk boundaries, so matches spanning pages are
// found — the property that lets engines scan page streams directly.
type Scanner struct {
	p      *Pattern
	state  int
	offset int64 // absolute position of the next byte to be fed
}

// NewScanner starts a scan at absolute offset 0.
func (p *Pattern) NewScanner() *Scanner {
	return &Scanner{p: p}
}

// Reset rewinds the scanner to the given absolute offset with clean
// match state (used when an engine jumps to a new haystack segment).
func (s *Scanner) Reset(offset int64) {
	s.state = 0
	s.offset = offset
}

// Feed scans one chunk, calling emit with the absolute start position
// of every match.
func (s *Scanner) Feed(chunk []byte, emit func(pos int64)) {
	needle, fail := s.p.needle, s.p.fail
	k := s.state
	for i, c := range chunk {
		for k >= 0 && needle[k] != c {
			k = fail[k]
		}
		k++
		if k == len(needle) {
			if emit != nil {
				emit(s.offset + int64(i) + 1 - int64(len(needle)))
			}
			k = fail[k]
		}
	}
	s.state = k
	s.offset += int64(len(chunk))
}

// FindAll returns every match position in a byte slice (reference
// implementation used by tests and the software-grep baseline).
func (p *Pattern) FindAll(haystack []byte) []int64 {
	var out []int64
	sc := p.NewScanner()
	sc.Feed(haystack, func(pos int64) { out = append(out, pos) })
	return out
}
