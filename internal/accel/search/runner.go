package search

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hostmodel"
	"repro/internal/nand"
	"repro/internal/rfs"
	"repro/internal/sim"
)

// EnginesPerBus is the paper's sizing: "Since 4 read commands can
// saturate a single flash bus, we use 4 engines per bus to maximize
// the flash bandwidth" (§7.3).
const EnginesPerBus = 4

// readWindow is each engine's in-flight read depth. It must span more
// chips than the file striping period, or engines whose segments align
// on the same chips convoy on a few buses while others idle.
const readWindow = 8

// Result reports one search run.
type Result struct {
	Matches    []int64  // match start offsets, sorted
	Bytes      int64    // haystack bytes scanned
	Elapsed    sim.Time // simulated time of the scan phase
	Throughput float64  // bytes/second
	CPUUtil    float64  // host CPU utilization during the scan
}

// SearchISP runs the hardware-accelerated search: MP engines inside
// the storage device scan a file at flash bandwidth. The host's role
// is only setup (pattern DMA + physical address stream from the file
// system) and receiving match positions.
func SearchISP(c *core.Cluster, nodeID, card int, f *rfs.File, needle []byte) (*Result, error) {
	pat, err := Compile(needle)
	if err != nil {
		return nil, err
	}
	paddrs, err := f.PhysicalAddrs()
	if err != nil {
		return nil, err
	}
	addrs := make([]nand.Addr, len(paddrs))
	for i, a := range paddrs {
		// This runner drives one card's private engine interfaces; a
		// file striped anywhere else must go through the distributed
		// ISP layer (ispvol.SearchFile) instead of being silently read
		// at the wrong location.
		if a.Node != nodeID || a.Card != card {
			return nil, fmt.Errorf("search: file page %d lives on n%d.card%d, not n%d.card%d; use ispvol.SearchFile for cluster files",
				i, a.Node, a.Card, nodeID, card)
		}
		addrs[i] = a.Addr
	}
	if len(addrs) == 0 {
		return &Result{}, nil
	}
	node := c.Node(nodeID)
	geo := c.Params.Geometry
	pageSize := geo.PageSize
	engines := EnginesPerBus * geo.Buses
	if engines > len(addrs) {
		engines = len(addrs)
	}

	// Host setup: transfer the pattern + MP constants to the device.
	setupDone := false
	node.Host.ChargeSoftware(func() {
		node.Host.RPC(func() {
			node.Host.DeviceReadBuffer(len(needle)+4*len(pat.fail), func() {
				setupDone = true
			})
		})
	})
	c.Run()
	if !setupDone {
		return nil, fmt.Errorf("search: accelerator setup did not complete")
	}

	// Divide the haystack into contiguous page segments, one per
	// engine, overlapping by one page so cross-boundary matches are
	// found exactly once. Segment length is nudged to be coprime with
	// the chip count: the file system stripes consecutive pages across
	// chips, and equal segment starts would put every engine on the
	// same chip at the same moment, convoying on a few buses.
	per := (len(addrs) + engines - 1) / engines
	chips := geo.Buses * geo.ChipsPerBus
	for per > 0 && gcd(per, chips) != 1 {
		per++
	}
	var all []int64
	remaining := 0
	start := c.Eng.Now()

	for e := 0; e < engines; e++ {
		firstPage := e * per
		if firstPage >= len(addrs) {
			break
		}
		lastPage := firstPage + per // exclusive; +1 page of overlap below
		if lastPage > len(addrs) {
			lastPage = len(addrs)
		}
		overlapEnd := lastPage
		if overlapEnd < len(addrs) {
			overlapEnd++ // read one page into the neighbor's segment
		}
		segStart := int64(firstPage) * int64(pageSize)
		segLimit := int64(lastPage) * int64(pageSize) // matches must start before this

		iface := node.NewIface(card, fmt.Sprintf("mp%d", e))
		sc := pat.NewScanner()
		sc.Reset(segStart)
		remaining++

		next := firstPage // next page index to request
		inflight := 0
		var pump func()
		var finish func()
		finish = func() {
			remaining--
		}
		pump = func() {
			for inflight < readWindow && next < overlapEnd {
				idx := next
				next++
				inflight++
				iface.ReadPhysical(addrs[idx], func(data []byte, err error) {
					inflight--
					if err != nil {
						// A failed page is skipped (its matches are lost);
						// hardware would report it out of band.
						sc.Reset(int64(idx+1) * int64(pageSize))
					} else {
						// The MP engine scans at line rate: no extra time.
						sc.Feed(data, func(pos int64) {
							if pos >= segStart && pos < segLimit {
								all = append(all, pos)
							}
						})
					}
					if inflight == 0 && next >= overlapEnd {
						finish()
						return
					}
					pump()
				})
			}
		}
		pump()
	}
	c.Run()
	if remaining != 0 {
		return nil, fmt.Errorf("search: %d engines never finished", remaining)
	}
	elapsed := c.Eng.Now() - start
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	bytes := int64(len(addrs)) * int64(pageSize)
	res := &Result{
		Matches: all,
		Bytes:   bytes,
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(bytes) / elapsed.Seconds()
	}
	// Only match positions return to the host: a tiny DMA, then a
	// negligible CPU charge. Utilization stays ~0.
	res.CPUUtil = node.CPU.Utilization()
	return res, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// DeviceReader abstracts the comparator devices (altstore SSD / HDD).
type DeviceReader interface {
	Read(size int, sequential bool, done func(error))
}

// GrepCPUPerByte is the software scan cost in nanoseconds per byte:
// calibrated so that grep-at-600MB/s consumes ~65% of a 24-core host
// and grep-on-HDD ~13-16% (paper Figure 21).
const GrepCPUPerByte = 26

// SearchSoftware runs the grep baseline: the host streams the haystack
// sequentially from dev and scans it in software with `threads` worker
// threads. gen supplies page contents (the same bytes the ISP path
// scanned) so results are comparable.
func SearchSoftware(eng *sim.Engine, cpu *hostmodel.CPU, dev DeviceReader,
	pages, pageSize int, gen func(idx int, page []byte), needle []byte, threads int) (*Result, error) {

	pat, err := Compile(needle)
	if err != nil {
		return nil, err
	}
	if threads <= 0 {
		threads = 1
	}
	workers := make([]*hostmodel.Thread, threads)
	scanners := make([]*Scanner, threads)
	for i := range workers {
		workers[i] = cpu.NewThread()
		scanners[i] = pat.NewScanner()
	}
	// Page i belongs to worker i%threads; give each scanner a stride-
	// aware offset by scanning page-contiguous shards.
	perShard := (pages + threads - 1) / threads

	var all []int64
	start := eng.Now()
	remaining := 0
	var devErr error
	cost := sim.Time(pageSize) * GrepCPUPerByte * sim.Nanosecond

	for w := 0; w < threads; w++ {
		first := w * perShard
		if first >= pages {
			break
		}
		last := first + perShard
		if last > pages {
			last = pages
		}
		// One page of overlap into the next shard so cross-boundary
		// matches are found (same scheme as the hardware engines);
		// segLimit deduplicates them.
		overlapEnd := last
		if overlapEnd < pages {
			overlapEnd++
		}
		segLimit := int64(last) * int64(pageSize)
		sc := scanners[w]
		sc.Reset(int64(first) * int64(pageSize))
		th := workers[w]
		remaining++
		idx := first
		var step func()
		step = func() {
			if idx >= overlapEnd {
				remaining--
				return
			}
			myIdx := idx
			idx++
			dev.Read(pageSize, true, func(err error) {
				if err != nil {
					if devErr == nil {
						devErr = err
					}
					remaining--
					return
				}
				th.Do(cost, func() {
					page := make([]byte, pageSize)
					if gen != nil {
						gen(myIdx, page)
					}
					sc.Feed(page, func(pos int64) {
						if pos < segLimit {
							all = append(all, pos)
						}
					})
					step()
				})
			})
		}
		step()
	}
	eng.Run()
	if devErr != nil {
		return nil, fmt.Errorf("search: device: %w", devErr)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("search: %d software shards never finished", remaining)
	}
	elapsed := eng.Now() - start
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	bytes := int64(pages) * int64(pageSize)
	res := &Result{Matches: all, Bytes: bytes, Elapsed: elapsed, CPUUtil: cpu.Utilization()}
	if elapsed > 0 {
		res.Throughput = float64(bytes) / elapsed.Seconds()
	}
	return res, nil
}
