package search

import (
	"testing"

	"repro/internal/isp"
	"repro/internal/rfs"
	"repro/internal/sim"
)

// TestCompetingQueriesShareAccelerator exercises the §4 scheduler: two
// application instances submit searches against one set of hardware MP
// engines; the FIFO scheduler serializes them, both complete, and
// results match the dedicated-run results.
func TestCompetingQueriesShareAccelerator(t *testing.T) {
	c, fs := searchCluster(t)
	needle := "SHARED"
	const pages = 96
	gen := haystackGen(needle, 6, c.Params.PageSize())

	mkFile := func(name string) *rfs.File {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, c.Params.PageSize())
		for i := 0; i < pages; i++ {
			for j := range buf {
				buf[j] = 0
			}
			gen(i, buf)
			var werr error
			f.AppendPage(buf, func(err error) { werr = err })
			c.Run()
			if werr != nil {
				t.Fatal(werr)
			}
		}
		return f
	}
	fileA := mkFile("a")
	fileB := mkFile("b")

	// One accelerator unit: queries serialize through the scheduler.
	sched, err := isp.NewScheduler("mp-search", 1)
	if err != nil {
		t.Fatal(err)
	}
	var results []*Result
	var order []string
	submit := func(name string, f *rfs.File) {
		sched.Submit(func(done func()) {
			res, err := SearchISP(c, 0, 0, f, []byte(needle))
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
			order = append(order, name)
			results = append(results, res)
			done()
		})
	}
	// A prior occupant holds the unit, so both queries must queue.
	var evict func()
	sched.Submit(func(done func()) { evict = done })
	submit("appA", fileA)
	submit("appB", fileB)
	if sched.Queued() != 2 {
		t.Fatalf("queued = %d, want 2 behind the occupant", sched.Queued())
	}
	evict() // FIFO drain: appA runs to completion, then appB
	c.Run()

	if len(results) != 2 {
		t.Fatalf("completed %d of 2 queries", len(results))
	}
	if order[0] != "appA" || order[1] != "appB" {
		t.Fatalf("FIFO order violated: %v", order)
	}
	if sched.Waits != 2 {
		t.Fatalf("waits = %d, want 2 (both apps queued)", sched.Waits)
	}
	// Identical haystacks: identical match sets.
	if len(results[0].Matches) == 0 || len(results[0].Matches) != len(results[1].Matches) {
		t.Fatalf("match counts differ: %d vs %d", len(results[0].Matches), len(results[1].Matches))
	}
	_ = sim.Microsecond
}
