package mapreduce

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func mrCluster(t *testing.T, nodes int) *core.Cluster {
	t.Helper()
	p := core.DefaultParams(nodes)
	p.Geometry.BlocksPerChip = 8
	p.Geometry.PagesPerBlock = 16
	c, err := core.NewCluster(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// shardGen mixes the node id into the page stream so shards differ.
func shardGen(seed uint64) func(node, idx int, page []byte) {
	return func(node, idx int, page []byte) {
		workload.TextPages(seed+uint64(node)*1009, "", 0)(idx, page)
	}
}

func TestTokenize(t *testing.T) {
	var got []string
	tokenize([]byte("flash  storage network\x00\x00dram"), func(w string) { got = append(got, w) })
	want := []string{"flash", "storage", "network", "dram"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens %v, want %v", got, want)
		}
	}
	tokenize(nil, func(string) { t.Fatal("token from empty page") })
}

func TestHashWordStableAndInRange(t *testing.T) {
	for _, w := range []string{"a", "flash", "network", ""} {
		p1, p2 := hashWord(w, 7), hashWord(w, 7)
		if p1 != p2 {
			t.Fatalf("hash unstable for %q", w)
		}
		if p1 < 0 || p1 >= 7 {
			t.Fatalf("partition %d out of range", p1)
		}
	}
}

func TestWordCountMatchesReference(t *testing.T) {
	const nodes = 4
	const pages = 24
	c := mrCluster(t, nodes)
	gen := shardGen(77)
	res, err := WordCount(c, Config{PagesPerNode: pages, Reducers: 8, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceCounts(nodes, pages, c.Params.PageSize(), gen)
	if len(res.Counts) != len(want) {
		t.Fatalf("distinct words %d, want %d", len(res.Counts), len(want))
	}
	for w, cnt := range want {
		if res.Counts[w] != cnt {
			t.Fatalf("count[%q] = %d, want %d", w, res.Counts[w], cnt)
		}
	}
	if res.PagesMapped != nodes*pages {
		t.Fatalf("mapped %d pages, want %d", res.PagesMapped, nodes*pages)
	}
	if res.BytesShuffled == 0 {
		t.Fatal("no shuffle traffic recorded")
	}
	if res.WordsPerSec <= 0 {
		t.Fatal("no throughput recorded")
	}
}

func TestWordCountSingleNode(t *testing.T) {
	c := mrCluster(t, 1)
	gen := shardGen(3)
	res, err := WordCount(c, Config{PagesPerNode: 8, Reducers: 2, Gen: gen})
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceCounts(1, 8, c.Params.PageSize(), gen)
	for w, cnt := range want {
		if res.Counts[w] != cnt {
			t.Fatalf("count[%q] = %d, want %d", w, res.Counts[w], cnt)
		}
	}
}

func TestTopWords(t *testing.T) {
	counts := map[string]int64{"b": 3, "a": 3, "c": 10, "d": 1}
	top := TopWords(counts, 3)
	if len(top) != 3 || top[0] != "c" || top[1] != "a" || top[2] != "b" {
		t.Fatalf("top = %v", top)
	}
	if got := TopWords(counts, 99); len(got) != 4 {
		t.Fatalf("overlong k: %v", got)
	}
}

func TestWordCountValidation(t *testing.T) {
	c := mrCluster(t, 2)
	if _, err := WordCount(c, Config{}); !errors.Is(err, ErrNoInput) {
		t.Fatalf("empty config: %v", err)
	}
}

func TestMapScalesWithNodes(t *testing.T) {
	// Twice the nodes map twice the data in roughly the same time: the
	// whole point of running map in-store on every shard.
	rate := func(nodes int) float64 {
		c := mrCluster(t, nodes)
		res, err := WordCount(c, Config{PagesPerNode: 24, Reducers: nodes, Gen: shardGen(9)})
		if err != nil {
			t.Fatal(err)
		}
		return res.WordsPerSec
	}
	r2, r4 := rate(2), rate(4)
	if r4 < 1.6*r2 {
		t.Fatalf("4 nodes (%.0f words/s) should roughly double 2 nodes (%.0f)", r4, r2)
	}
}
