// Package mapreduce implements the "BlueDBM-Optimized MapReduce" the
// paper plans in §8: the map phase runs in-store on every node,
// scanning that node's flash shard at device bandwidth, and the
// shuffle rides the integrated storage network directly from storage
// device to storage device — host software only sees the final
// reduced results. The demonstration job is word count over text
// shards.
package mapreduce

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// MapReduce errors.
var (
	ErrNoInput = errors.New("mapreduce: no input pages")
)

// Config describes a word-count job.
type Config struct {
	// PagesPerNode is each node's input shard size.
	PagesPerNode int
	// Reducers is the number of reduce partitions; partition p lives on
	// node p % cluster size.
	Reducers int
	// Gen produces the input pages (same generator on every node, with
	// the node id mixed into the page index so shards differ).
	Gen func(node, idx int, page []byte)
}

// Result is the completed job.
type Result struct {
	Counts        map[string]int64
	Elapsed       sim.Time
	BytesShuffled int64
	PagesMapped   int64
	WordsPerSec   float64
}

// tokenize splits a page into words (runs of non-space bytes,
// truncated at page boundaries; the oracle tokenizes identically).
func tokenize(page []byte, emit func(word string)) {
	start := -1
	for i, c := range page {
		if c == ' ' || c == 0 {
			if start >= 0 {
				emit(string(page[start:i]))
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		emit(string(page[start:]))
	}
}

// hashWord assigns a word to a reduce partition.
func hashWord(w string, parts int) int {
	var h uint32 = 2166136261
	for i := 0; i < len(w); i++ {
		h ^= uint32(w[i])
		h *= 16777619
	}
	return int(h % uint32(parts))
}

// partial is one mapper's contribution to one partition.
type partial struct {
	part   int
	counts map[string]int64
}

func (p *partial) wireSize() int {
	n := 8
	for w := range p.counts {
		n += len(w) + 8
	}
	return n
}

// endpoint index for the shuffle traffic.
const shuffleEP = core.EPUser

// WordCount runs the job across the whole cluster.
func WordCount(c *core.Cluster, cfg Config) (*Result, error) {
	if cfg.PagesPerNode <= 0 {
		return nil, ErrNoInput
	}
	if cfg.Reducers <= 0 {
		cfg.Reducers = c.Nodes()
	}
	nodes := c.Nodes()

	// Seed every node's shard.
	for n := 0; n < nodes; n++ {
		n := n
		if err := c.SeedLinear(n, cfg.PagesPerNode, func(idx int, page []byte) {
			if cfg.Gen != nil {
				cfg.Gen(n, idx, page)
			}
		}); err != nil {
			return nil, fmt.Errorf("mapreduce: seeding node %d: %w", n, err)
		}
	}

	res := &Result{Counts: make(map[string]int64)}
	start := c.Eng.Now()

	// Reducers: bind the shuffle endpoint on every node and merge
	// partials as they arrive. Each node expects one partial per
	// (mapper, partition-it-hosts) pair.
	expect := make([]int, nodes)
	for p := 0; p < cfg.Reducers; p++ {
		expect[p%nodes] += nodes
	}
	received := make([]int, nodes)
	eps := make([]*fabric.Endpoint, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		ep, err := c.Node(n).NetNode().BindEndpoint(shuffleEP)
		if err != nil {
			return nil, err
		}
		ep.OnReceive = func(_ fabric.NodeID, size int, payload any) {
			pt := payload.(*partial)
			for w, cnt := range pt.counts {
				res.Counts[w] += cnt
			}
			res.BytesShuffled += int64(size)
			received[n]++
		}
		eps[n] = ep
	}

	// Mappers: every node scans its own shard in-store and ships
	// partition partials to the reducers over the integrated network.
	const engines = 8
	const window = 4
	for n := 0; n < nodes; n++ {
		n := n
		node := c.Node(n)
		partials := make([]*partial, cfg.Reducers)
		for p := range partials {
			partials[p] = &partial{part: p, counts: make(map[string]int64)}
		}
		next := 0
		liveEngines := engines
		shuffle := func() {
			for _, pt := range partials {
				dst := fabric.NodeID(pt.part % nodes)
				if err := eps[n].Send(dst, pt.wireSize(), pt, nil); err != nil {
					panic(fmt.Sprintf("mapreduce: shuffle send: %v", err))
				}
			}
		}
		for e := 0; e < engines; e++ {
			inflight := 0
			engineDone := false
			var pump func()
			maybeFinish := func() {
				if !engineDone && inflight == 0 && next >= cfg.PagesPerNode {
					engineDone = true
					liveEngines--
					if liveEngines == 0 {
						shuffle()
					}
				}
			}
			pump = func() {
				for inflight < window && next < cfg.PagesPerNode {
					i := next
					next++
					inflight++
					a := core.LinearPage(c.Params, n, i)
					node.ReadLocal(a.Card, a.Addr, func(data []byte, err error) {
						if err == nil {
							// The map engine tokenizes at stream rate.
							tokenize(data, func(w string) {
								partials[hashWord(w, cfg.Reducers)].counts[w]++
							})
							res.PagesMapped++
						}
						inflight--
						pump()
						maybeFinish()
					})
				}
			}
			pump()
			maybeFinish()
		}
	}
	c.Run()

	for n := 0; n < nodes; n++ {
		if received[n] != expect[n] {
			return nil, fmt.Errorf("mapreduce: reducer node %d got %d of %d partials",
				n, received[n], expect[n])
		}
	}
	res.Elapsed = c.Eng.Now() - start
	if res.Elapsed > 0 {
		var words int64
		for _, v := range res.Counts {
			words += v
		}
		res.WordsPerSec = float64(words) / res.Elapsed.Seconds()
	}
	return res, nil
}

// ReferenceCounts computes the job's expected output in memory.
func ReferenceCounts(nodes, pagesPerNode, pageSize int, gen func(node, idx int, page []byte)) map[string]int64 {
	out := make(map[string]int64)
	page := make([]byte, pageSize)
	for n := 0; n < nodes; n++ {
		for i := 0; i < pagesPerNode; i++ {
			for j := range page {
				page[j] = 0
			}
			if gen != nil {
				gen(n, i, page)
			}
			tokenize(page, func(w string) { out[w]++ })
		}
	}
	return out
}

// TopWords returns the k most frequent words, ties broken
// alphabetically — a stable summary for display.
func TopWords(counts map[string]int64, k int) []string {
	type wc struct {
		w string
		c int64
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].w
	}
	return out
}
